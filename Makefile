GO ?= go

.PHONY: all build test race vet fmt-check ci test-fault bench bench-mem bench-transport bench-obs bench-lang bench-full bench-json clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# ci is the tier-1 gate: formatting, static checks, build, and the full test
# suite under the race detector.
ci: fmt-check vet build race

# test-fault is the fault-injection gate (also run by ci.sh): the failover,
# liveness, and teardown regression tests under the race detector — every
# scenario drives a real master/worker pair through a FaultConn (severed,
# wedged, or silently dropping connections).
test-fault:
	$(GO) test -race -count=1 -run 'Failover|Liveness|IdleTimeout|Standby|BroadcastsStop|AbortReleases|SendFailureTeardown' ./internal/dist/

# bench is the scheduler smoke gate (also run by ci.sh): one iteration of the
# figure 9/10 sweeps and the dispatch benchmark, enough to catch crashes or
# stalls in the dispatch fast path without a full measurement run.
bench:
	$(GO) test -bench 'Fig9|Fig10|Dispatch|Analyzer' -benchtime=1x -count=1 .

# bench-mem is the memory-path smoke gate (also run by ci.sh): the typed slab
# store and wire-encode benchmarks with allocation reporting, enough to catch
# regressions that reintroduce boxing or per-element allocation on the bulk
# store/fetch path.
bench-mem:
	$(GO) test -bench 'FieldStoreSlab|WireEncodeFrame|FieldFetchView' -benchmem -benchtime=100x -count=1 -run xxx .

# bench-transport is the distributed-transport smoke gate (also run by
# ci.sh): one framed and one gob-per-store distributed MJPEG encode over TCP
# loopback, enough to catch protocol or framing breaks on the store path.
bench-transport:
	$(GO) test -bench 'TransportMJPEG|FrameEncodeScatter' -benchtime=1x -count=1 -run xxx .

# bench-obs is the observability smoke gate (also run by ci.sh): one run of
# the figure 9/10 workloads under each observability setting (off, metrics,
# full tracing), plus the allocation test pinning the tracing-off dispatch
# path at zero allocs — enough to catch instrumentation leaking into the
# fast path.
bench-obs:
	$(GO) test -bench 'ObsOverhead' -benchtime=1x -count=1 -run xxx .
	$(GO) test -run DispatchTracingOffAllocFree -count=1 ./internal/runtime/

# bench-lang is the kernel-language back-end smoke gate (also run by ci.sh):
# one iteration of each kernel body under the closure interpreter, the
# register-bytecode VM, and the native Go baseline — enough to catch lowering
# fallbacks or VM crashes on the benchmark kernels.
bench-lang:
	$(GO) test -bench 'Lang(MulSum|KMeans|Wavefront)' -benchtime=1x -count=1 -run xxx .

# bench-full is the measurement run over the whole benchmark suite.
bench-full:
	$(GO) test -bench=. -benchmem .

# bench-json runs the scheduler A/B benchmarks and emits BENCH_scheduler.json.
bench-json:
	scripts/bench_json.sh

clean:
	$(GO) clean ./...
