GO ?= go

.PHONY: all build test race vet fmt-check ci bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# ci is the tier-1 gate: formatting, static checks, build, and the full test
# suite under the race detector.
ci: fmt-check vet build race

bench:
	$(GO) test -bench=. -benchmem .

clean:
	$(GO) clean ./...
