package p2g

// Analyzer equivalence stress: the sharded dependency analyzer must be
// observationally identical to the serial reference analyzer. Each case runs
// the same program under both Options.Analyzer settings with randomized (but
// seeded) worker counts, granularities, and shard counts and compares final
// field contents and per-kernel instance counts. Run under -race, this
// doubles as a concurrency stress of the per-shard mailboxes, cross-shard
// completion routing, and the two-phase quiescence protocol.

import (
	"io"
	"math/rand"
	"testing"

	"repro/internal/runtime"
	"repro/internal/video"
	"repro/internal/workloads"
)

// runBothAnalyzers executes prog() under the serial and the sharded analyzer
// with the given options and returns the two (node, report) pairs.
func runBothAnalyzers(t *testing.T, prog func() *Program, opts runtime.Options, shards int) (ref, sh *runtime.Node, refRep, shRep *runtime.Report) {
	t.Helper()
	run := func(kind runtime.AnalyzerKind) (*runtime.Node, *runtime.Report) {
		o := opts
		o.Analyzer = kind
		o.AnalyzerShards = shards
		o.Output = io.Discard
		n, err := runtime.NewNode(prog(), o)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := n.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Stalled) != 0 {
			t.Fatalf("analyzer %d stalled: %v", kind, rep.Stalled)
		}
		return n, rep
	}
	ref, refRep = run(runtime.AnalyzerSerial)
	sh, shRep = run(runtime.AnalyzerSharded)
	return
}

func TestAnalyzerEquivalenceMulSum(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for round := 0; round < 4; round++ {
		workers := 1 + rng.Intn(8)
		gran := 1 + rng.Intn(3)
		shards := 1 + rng.Intn(6)
		maxAge := 10 + rng.Intn(11)
		opts := runtime.Options{
			Workers:     workers,
			MaxAge:      maxAge,
			Granularity: map[string]int{"mul2": gran},
		}
		ref, sh, refRep, shRep := runBothAnalyzers(t, MulSum, opts, shards)
		for _, f := range []string{"m_data", "p_data"} {
			want := fieldFingerprint(t, ref, f, maxAge)
			got := fieldFingerprint(t, sh, f, maxAge)
			if want != got {
				t.Fatalf("round %d (workers=%d gran=%d shards=%d): field %s diverged:\nserial:\n%s\nsharded:\n%s",
					round, workers, gran, shards, f, want, got)
			}
		}
		if want, got := reportFingerprint(refRep), reportFingerprint(shRep); want != got {
			t.Fatalf("round %d: instance counts diverged:\nserial:\n%s\nsharded:\n%s", round, want, got)
		}
		if shRep.AnalyzerShards != shards {
			t.Fatalf("round %d: report shows %d shards, want %d", round, shRep.AnalyzerShards, shards)
		}
	}
}

func TestAnalyzerEquivalenceMJPEG(t *testing.T) {
	const frames = 2
	rng := rand.New(rand.NewSource(22))
	for round := 0; round < 2; round++ {
		workers := 1 + rng.Intn(8)
		shards := 2 + rng.Intn(5)
		prog := func() *Program {
			return workloads.MJPEG(workloads.MJPEGConfig{
				Source:  video.NewSynthetic(32, 32, frames, 7),
				FastDCT: true,
			})
		}
		ref, sh, refRep, shRep := runBothAnalyzers(t, prog, runtime.Options{Workers: workers}, shards)
		want, err := workloads.MJPEGStream(ref, frames)
		if err != nil {
			t.Fatal(err)
		}
		got, err := workloads.MJPEGStream(sh, frames)
		if err != nil {
			t.Fatal(err)
		}
		if string(want) != string(got) {
			t.Fatalf("round %d (workers=%d shards=%d): encoded streams differ (%d vs %d bytes)",
				round, workers, shards, len(want), len(got))
		}
		if w, g := reportFingerprint(refRep), reportFingerprint(shRep); w != g {
			t.Fatalf("round %d: instance counts diverged:\nserial:\n%s\nsharded:\n%s", round, w, g)
		}
	}
}

func TestAnalyzerEquivalenceKMeans(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for round := 0; round < 2; round++ {
		workers := 1 + rng.Intn(8)
		gran := 1 + rng.Intn(16)
		shards := 2 + rng.Intn(5)
		cfg := workloads.KMeansConfig{N: 120, K: 8, Iter: 3, Dim: 2, Seed: 7}
		opts := workloads.KMeansOptions(cfg, workers)
		opts.Granularity = map[string]int{"assign": gran}
		prog := func() *Program { return workloads.KMeans(cfg) }
		ref, sh, refRep, shRep := runBothAnalyzers(t, prog, opts, shards)
		for _, f := range []string{"centroids", "membership"} {
			want := fieldFingerprint(t, ref, f, cfg.Iter)
			got := fieldFingerprint(t, sh, f, cfg.Iter)
			if want != got {
				t.Fatalf("round %d (workers=%d gran=%d shards=%d): field %s diverged",
					round, workers, gran, shards, f)
			}
		}
		if w, g := reportFingerprint(refRep), reportFingerprint(shRep); w != g {
			t.Fatalf("round %d: instance counts diverged:\nserial:\n%s\nsharded:\n%s", round, w, g)
		}
	}
}
