package p2g

// Benchmarks mirroring the paper's evaluation artifacts (run the full
// parameter sweeps with cmd/p2gbench; these testing.B targets exercise the
// same code paths at sizes suitable for `go test -bench`):
//
//	BenchmarkFig9MJPEG     — figure 9: MJPEG encode across worker counts
//	BenchmarkFig10KMeans   — figure 10: K-means across worker counts
//	BenchmarkTableII*      — Table II rows: per-instance yDCT and VLC cost
//	BenchmarkTableIII*     — Table III rows: per-instance assign/refine cost
//	BenchmarkBaseline*     — §VIII-A standalone encoder / sequential K-means
//	BenchmarkDispatch      — per-instance dispatch overhead (Tables II/III)
//	BenchmarkGranularity   — §V-A data-granularity ablation
//	BenchmarkFusion        — figure 4 Age=3 task-combining ablation
//	BenchmarkPartition     — §IV HLS partitioning methods
//	BenchmarkDCT           — naive vs AAN fast DCT (ref [2])
//	BenchmarkFieldStoreSlab — bulk row store through the typed slab memory path
//	BenchmarkWireEncodeFrame — typed-slab wire encoding of one frame component
//	BenchmarkTransportMJPEG — distributed MJPEG encode over TCP loopback,
//	                          framed typed transport vs gob-per-store baseline
//	BenchmarkObsOverhead*  — tracing-off vs metrics vs full-tracing overhead
//	                          on the figure 9/10 workloads (gate: off ≈ free)

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/field"
	"repro/internal/graph"
	"repro/internal/kmeans"
	"repro/internal/lang"
	"repro/internal/mjpeg"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/video"
	"repro/internal/workloads"
)

func benchWorkers(b *testing.B, run func(workers int) error) {
	b.Helper()
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := run(w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchFig9MJPEG(b *testing.B, kind runtime.SchedulerKind) {
	const frames = 2
	benchWorkers(b, func(w int) error {
		prog := workloads.MJPEG(workloads.MJPEGConfig{
			Source:  video.NewCIFSource(frames, 42),
			FastDCT: true, // keep bench iterations fast; shape is identical
		})
		_, err := runtime.Run(prog, runtime.Options{Workers: w, Scheduler: kind})
		return err
	})
}

func BenchmarkFig9MJPEG(b *testing.B) { benchFig9MJPEG(b, runtime.SchedStealing) }

// BenchmarkFig9MJPEGRefQueue is the A/B baseline on the reference global
// ready queue (Options.Scheduler = SchedGlobal).
func BenchmarkFig9MJPEGRefQueue(b *testing.B) { benchFig9MJPEG(b, runtime.SchedGlobal) }

func benchFig10KMeans(b *testing.B, kind runtime.SchedulerKind) {
	cfg := workloads.KMeansConfig{N: 500, K: 25, Iter: 5, Dim: 2, Seed: 7}
	benchWorkers(b, func(w int) error {
		opts := workloads.KMeansOptions(cfg, w)
		opts.Scheduler = kind
		_, err := runtime.Run(workloads.KMeans(cfg), opts)
		return err
	})
}

func BenchmarkFig10KMeans(b *testing.B) { benchFig10KMeans(b, runtime.SchedStealing) }

// BenchmarkFig10KMeansRefQueue is the A/B baseline on the reference queue.
func BenchmarkFig10KMeansRefQueue(b *testing.B) { benchFig10KMeans(b, runtime.SchedGlobal) }

// BenchmarkAnalyzerSharded sweeps the analyzer shard count on the figure 10
// K-means 8-worker configuration (the workload whose scaling §VIII-B blames
// on the serial analyzer); BenchmarkAnalyzerSerial is the A/B reference.
func BenchmarkAnalyzerSharded(b *testing.B) {
	cfg := workloads.KMeansConfig{N: 500, K: 25, Iter: 5, Dim: 2, Seed: 7}
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := workloads.KMeansOptions(cfg, 8)
				opts.Analyzer = runtime.AnalyzerSharded
				opts.AnalyzerShards = shards
				if _, err := runtime.Run(workloads.KMeans(cfg), opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAnalyzerSerial(b *testing.B) {
	cfg := workloads.KMeansConfig{N: 500, K: 25, Iter: 5, Dim: 2, Seed: 7}
	for i := 0; i < b.N; i++ {
		opts := workloads.KMeansOptions(cfg, 8)
		opts.Analyzer = runtime.AnalyzerSerial
		if _, err := runtime.Run(workloads.KMeans(cfg), opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableII_DCT measures the work of one yDCT kernel instance with the
// naive transform — the paper's 170µs row.
func BenchmarkTableII_DCT(b *testing.B) {
	f, _ := video.NewCIFSource(1, 42).Next()
	blocks := mjpeg.ExtractBlocks(f.Y, f.W, f.H)
	qt := mjpeg.LumaQuant(75)
	var out mjpeg.Block
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mjpeg.DCTQuantBlock(&blocks[i%len(blocks)], qt, false, &out)
	}
}

// BenchmarkTableII_VLC measures one VLC+write instance: entropy coding a full
// CIF frame — the paper's 2160µs row.
func BenchmarkTableII_VLC(b *testing.B) {
	f, _ := video.NewCIFSource(1, 42).Next()
	enc := &mjpeg.Encoder{}
	qY, qC := enc.Tables()
	in := mjpeg.SplitYUV(f)
	var coeffs [3][]mjpeg.Block
	for ci := range in {
		qt := qY
		if ci > 0 {
			qt = qC
		}
		out := make([]mjpeg.Block, len(in[ci]))
		for i := range in[ci] {
			mjpeg.DCTQuantBlock(&in[ci][i], qt, true, &out[i])
		}
		coeffs[ci] = out
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mjpeg.EncodeFrameJPEG(&coeffs, f.W, f.H, qY, qC)
	}
}

// BenchmarkTableIII_Assign measures one assign kernel instance — the paper's
// 6.95µs row (n=2000, k=100).
func BenchmarkTableIII_Assign(b *testing.B) {
	pts := kmeans.Generate(2000, 2, 100, 7)
	cents := kmeans.InitialCentroids(pts, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kmeans.Assign(pts[i%len(pts)], cents)
	}
}

// BenchmarkTableIII_Refine measures one refine kernel instance — the paper's
// 92.91µs row.
func BenchmarkTableIII_Refine(b *testing.B) {
	pts := kmeans.Generate(2000, 2, 100, 7)
	cents := kmeans.InitialCentroids(pts, 100)
	membership := make([]int, len(pts))
	for i, p := range pts {
		membership[i] = kmeans.Assign(p, cents)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kmeans.Refine(i%100, pts, membership, cents[i%100])
	}
}

// BenchmarkBaselineMJPEG is the §VIII-A standalone single-threaded encoder,
// per CIF frame.
func BenchmarkBaselineMJPEG(b *testing.B) {
	f, _ := video.NewCIFSource(1, 42).Next()
	enc := &mjpeg.Encoder{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.EncodeFrame(f)
	}
}

func BenchmarkBaselineKMeansSequential(b *testing.B) {
	pts := kmeans.Generate(500, 2, 25, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kmeans.Sequential(pts, 25, 5)
	}
}

// BenchmarkDispatch isolates per-instance runtime overhead: mul2/plus5
// instances do almost no kernel work, so wall time is dominated by dispatch
// and analysis — the overhead column of Tables II/III. (The per-dispatch
// fast path itself is measured allocation-free by BenchmarkDispatchInstance
// in internal/runtime; this whole-run variant includes program build and
// analyzer work.)
func BenchmarkDispatch(b *testing.B) {
	for _, c := range []struct {
		name string
		kind runtime.SchedulerKind
	}{{"stealing", runtime.SchedStealing}, {"refqueue", runtime.SchedGlobal}} {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := runtime.Run(workloads.MulSum(), runtime.Options{Workers: 1, MaxAge: 100, Scheduler: c.kind})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(rep.Kernel("mul2").DispatchPer().Nanoseconds()), "dispatch-ns/inst")
				}
			}
		})
	}
}

func BenchmarkGranularity(b *testing.B) {
	cfg := workloads.KMeansConfig{N: 1000, K: 20, Iter: 4, Dim: 2, Seed: 7}
	for _, g := range []int{1, 32, 250} {
		b.Run(fmt.Sprintf("slab=%d", g), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := workloads.KMeansOptions(cfg, 2)
				opts.Granularity = map[string]int{"assign": g}
				if _, err := runtime.Run(workloads.KMeans(cfg), opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFusion(b *testing.B) {
	fused, err := core.Fuse(workloads.MulSum(), "mul2", "plus5")
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range []struct {
		name string
		prog func() *core.Program
	}{
		{"separate", workloads.MulSum},
		{"fused", func() *core.Program { return fused }},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := runtime.Run(c.prog(), runtime.Options{Workers: 2, MaxAge: 500}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPartition(b *testing.B) {
	prog := workloads.MJPEG(workloads.MJPEGConfig{Source: video.NewCIFSource(1, 1)})
	g := graph.BuildFinal(prog)
	topo := sched.NewTopology(4, 4)
	for _, m := range []sched.Method{sched.Greedy, sched.KL, sched.Tabu} {
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := sched.Partition(g, topo, m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDCT(b *testing.B) {
	f, _ := video.NewCIFSource(1, 42).Next()
	blocks := mjpeg.ExtractBlocks(f.Y, f.W, f.H)
	var out [64]float64
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mjpeg.DCTNaive(&blocks[i%len(blocks)], &out)
		}
	})
	b.Run("aan-fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mjpeg.DCTFast(&blocks[i%len(blocks)], &out)
		}
	})
}

// BenchmarkFieldStoreSlab measures the bulk row-store path of the typed slab
// memory layer: one 64-sample macroblock row per operation into a rank-2
// uint8 field — the hot store of the MJPEG input path. Steady-state rows move
// with a single typed copy and no allocation.
func BenchmarkFieldStoreSlab(b *testing.B) {
	const rows = 4096
	row := field.NewArray(field.Uint8, 64)
	for i := 0; i < 64; i++ {
		row.SetFlat(field.Int64Val(int64(i)), i)
	}
	sel := []field.SlabDim{{Fixed: true}, {}}
	var f *field.Field
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%rows == 0 {
			f = field.New("bench", field.Uint8, 2, false)
		}
		sel[0].Index = i % rows
		if _, err := f.StoreSlice(0, sel, row); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireEncodeFrame measures the dist wire encoding of one chroma
// frame component (396 macroblock rows of 64 int32 coefficients) through the
// length-prefixed typed-slab format.
func BenchmarkWireEncodeFrame(b *testing.B) {
	a := field.NewArray(field.Int32, 396, 64)
	for i := 0; i < a.Len(); i++ {
		a.SetFlat(field.Int64Val(int64(i%255-128)), i)
	}
	v := field.ArrayVal(a)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := v.GobEncode()
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(buf)))
	}
}

// BenchmarkFieldFetchView measures the zero-copy whole-generation fetch: a
// read-only view of one chroma frame component aliases the generation slab,
// so the per-dispatch cost is a refcount and a header write regardless of
// payload size. The "copy" sub-benchmark is the pre-view SnapshotInto path on
// the same generation, for the MB/op delta.
func BenchmarkFieldFetchView(b *testing.B) {
	a := field.NewArray(field.Int32, 396, 64)
	for i := 0; i < a.Len(); i++ {
		a.SetFlat(field.Int64Val(int64(i%255-128)), i)
	}
	f := field.New("bench", field.Int32, 2, true)
	if _, err := f.StoreAll(0, a); err != nil {
		b.Fatal(err)
	}
	f.MarkComplete(0)
	var dst field.Array
	b.Run("view", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tok, ok := f.FetchViewAll(0, &dst)
			if !ok {
				b.Fatal("view refused")
			}
			tok.Release()
		}
	})
	b.Run("copy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.SnapshotInto(0, &dst)
		}
	})
}

// BenchmarkFrameEncodeScatter measures building one store frame around a
// chroma-frame payload. The scatter path records the slab as a raw segment
// (no payload copy until the socket writev); the flatten sub-benchmark adds
// the one contiguous copy a non-FrameConn transport would pay.
func BenchmarkFrameEncodeScatter(b *testing.B) {
	a := field.NewArray(field.Int32, 396, 64)
	for i := 0; i < a.Len(); i++ {
		a.SetFlat(field.Int64Val(int64(i%255-128)), i)
	}
	sn := runtime.StoreNotice{
		Field: "bench", Age: 0, Whole: true, Value: field.ArrayVal(a),
	}
	b.Run("scatter", func(b *testing.B) {
		f := runtime.GetStoreFrame()
		defer runtime.PutStoreFrame(f)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.Reset("bench", 0)
			if err := f.Add(sn); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(f.Len()))
		}
	})
	b.Run("flatten", func(b *testing.B) {
		f := runtime.GetStoreFrame()
		defer runtime.PutStoreFrame(f)
		var out []byte
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.Reset("bench", 0)
			if err := f.Add(sn); err != nil {
				b.Fatal(err)
			}
			out = f.AppendTo(out[:0])
			b.SetBytes(int64(len(out)))
		}
	})
}

// runTransportMJPEG executes one distributed MJPEG encode across two TCP
// loopback workers and returns the total bytes that crossed the master's
// sockets (both directions, gob envelope included).
func runTransportMJPEG(frames int, disableFrames bool) (int64, error) {
	mkProg := func() *core.Program {
		return workloads.MJPEG(workloads.MJPEGConfig{
			Source:  video.NewSynthetic(128, 128, frames, 4),
			Quality: 70,
			FastDCT: true,
		})
	}
	l, err := dist.ListenTCP("127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer l.Close()
	const n = 2
	errc := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			conn, err := dist.DialTCP(l.Addr())
			if err != nil {
				errc <- err
				return
			}
			_, err = dist.RunWorker(dist.WorkerConfig{
				NodeID:        fmt.Sprintf("w%d", i),
				Cores:         2,
				Prog:          mkProg(),
				DisableFrames: disableFrames,
			}, conn)
			errc <- err
		}(i)
	}
	conns := make([]dist.Conn, n)
	for i := range conns {
		c, err := l.Accept()
		if err != nil {
			return 0, err
		}
		conns[i] = c
	}
	if _, err := dist.RunMaster(dist.MasterConfig{Prog: mkProg(), Method: sched.KL}, conns); err != nil {
		return 0, err
	}
	for i := 0; i < n; i++ {
		if e := <-errc; e != nil {
			return 0, e
		}
	}
	var total int64
	for _, c := range conns {
		if sr, ok := c.(dist.StatsReporter); ok {
			st := sr.Stats()
			total += st.SentBytes + st.RecvBytes
		}
	}
	return total, nil
}

// BenchmarkTransportMJPEG measures a whole distributed MJPEG encode over TCP
// loopback with two execution nodes: the batched typed-frame transport
// against the gob-per-store baseline (WorkerConfig.DisableFrames). ns/op is
// the end-to-end encode latency; wire-B/op is the measured socket traffic.
func BenchmarkTransportMJPEG(b *testing.B) {
	workloads.RegisterPayloads()
	const frames = 4
	for _, c := range []struct {
		name    string
		disable bool
	}{
		{"frames", false},
		{"gob-per-store", true},
	} {
		b.Run(c.name, func(b *testing.B) {
			var wireBytes int64
			for i := 0; i < b.N; i++ {
				n, err := runTransportMJPEG(frames, c.disable)
				if err != nil {
					b.Fatal(err)
				}
				wireBytes += n
			}
			b.ReportMetric(float64(wireBytes)/float64(b.N), "wire-B/op")
		})
	}
}

// runTransportMJPEGFailover executes one distributed MJPEG encode across two
// TCP loopback workers where the second worker's connection is severed
// mid-run and the master recovers it: reassign the lost partition to the
// survivor and replay the lost write-once generations from the shadow node.
// Returns total master-side wire bytes and the replayed-generation count.
//
// Workers are built from the spec via the factory rather than an injected
// Program: a rebuilt node must restart its stateful video source from frame
// zero, which only a factory-constructed program guarantees.
func runTransportMJPEGFailover(frames int) (wire, replayed int64, err error) {
	spec := fmt.Sprintf("mjpeg:frames=%d,w=128,h=128,quality=70,seed=4,fast=1", frames)
	prog, err := workloads.FromSpec(spec)
	if err != nil {
		return 0, 0, err
	}
	l, err := dist.ListenTCP("127.0.0.1:0")
	if err != nil {
		return 0, 0, err
	}
	defer l.Close()
	const n = 2
	errc := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			conn, err := dist.DialTCP(l.Addr())
			if err != nil {
				errc <- err
				return
			}
			_, err = dist.RunWorker(dist.WorkerConfig{
				NodeID:  fmt.Sprintf("w%d", i),
				Cores:   2,
				Factory: workloads.FromSpec,
			}, conn)
			errc <- err
		}(i)
	}
	conns := make([]dist.Conn, n)
	for i := range conns {
		c, err := l.Accept()
		if err != nil {
			return 0, 0, err
		}
		conns[i] = c
	}
	// Connections register in dial order on loopback often enough, but not
	// guaranteed; severing whichever registers second keeps the benchmark
	// deterministic in shape (one dead worker, one survivor) either way.
	conns[1] = dist.NewFaultConn(conns[1], dist.FaultPlan{SeverSendAt: 8})
	res, err := dist.RunMaster(dist.MasterConfig{
		Prog:     prog,
		Spec:     spec,
		Method:   sched.KL,
		Failover: true,
	}, conns)
	if err != nil {
		return 0, 0, err
	}
	if len(res.DeadWorkers) != 1 {
		return 0, 0, fmt.Errorf("dead workers = %v, want exactly one", res.DeadWorkers)
	}
	// Accept order need not match dial order, so either goroutine may own
	// the severed connection: exactly one worker dies by design, the other
	// must finish cleanly.
	var workerErrs []error
	for i := 0; i < n; i++ {
		if e := <-errc; e != nil {
			workerErrs = append(workerErrs, e)
		}
	}
	if len(workerErrs) > 1 {
		return 0, 0, fmt.Errorf("both workers failed: %v", workerErrs)
	}
	var total int64
	for _, c := range conns {
		if sr, ok := c.(dist.StatsReporter); ok {
			st := sr.Stats()
			total += st.SentBytes + st.RecvBytes
		}
	}
	return total, res.Replayed, nil
}

// BenchmarkTransportMJPEGFailover measures the end-to-end cost of surviving a
// worker death mid-encode: one of two TCP workers is severed after its fourth
// send and the master repartitions onto the survivor and replays the lost
// generations. Compare ns/op against BenchmarkTransportMJPEG/frames for the
// failover penalty; replayed-gens/op sizes the replay traffic.
func BenchmarkTransportMJPEGFailover(b *testing.B) {
	workloads.RegisterPayloads()
	const frames = 4
	var wireBytes, replayedGens int64
	for i := 0; i < b.N; i++ {
		wire, replayed, err := runTransportMJPEGFailover(frames)
		if err != nil {
			b.Fatal(err)
		}
		wireBytes += wire
		replayedGens += replayed
	}
	b.ReportMetric(float64(wireBytes)/float64(b.N), "wire-B/op")
	b.ReportMetric(float64(replayedGens)/float64(b.N), "replayed-gens/op")
}

// benchObsModes runs a workload under the three observability settings: no
// instrumentation at all (the default fast path — must track the plain
// figure-9/10 numbers), a live metrics registry (stage timers on), and
// metrics plus span tracing. Fresh registry/tracer per iteration, like the
// command-line tools allocate them.
func benchObsModes(b *testing.B, mkProg func() *core.Program, opts func() runtime.Options) {
	for _, c := range []struct {
		name    string
		metrics bool
		traced  bool
	}{
		{"off", false, false},
		{"metrics", true, false},
		{"traced", true, true},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := opts()
				if c.metrics {
					o.Metrics = obs.NewRegistry()
				}
				if c.traced {
					o.Tracer = obs.NewTracer(obs.DefaultTraceCapacity)
				}
				if _, err := runtime.Run(mkProg(), o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkObsOverheadMJPEG measures observability overhead on the figure 9
// MJPEG workload; the "off" case is the regression gate for the tracing-off
// fast path (ISSUE 6: ≤2% vs the plain Fig9 numbers).
func BenchmarkObsOverheadMJPEG(b *testing.B) {
	const frames = 2
	benchObsModes(b, func() *core.Program {
		return workloads.MJPEG(workloads.MJPEGConfig{
			Source:  video.NewCIFSource(frames, 42),
			FastDCT: true,
		})
	}, func() runtime.Options { return runtime.Options{Workers: 2} })
}

// BenchmarkObsOverheadKMeans is the same measurement on the figure 10
// K-means workload.
func BenchmarkObsOverheadKMeans(b *testing.B) {
	cfg := workloads.KMeansConfig{N: 500, K: 25, Iter: 5, Dim: 2, Seed: 7}
	benchObsModes(b, func() *core.Program { return workloads.KMeans(cfg) },
		func() runtime.Options { return workloads.KMeansOptions(cfg, 2) })
}

// BenchmarkLangCompile measures kernel-language compilation (the p2gc path).
func BenchmarkLangCompile(b *testing.B) {
	src := mustReadTestdata(b, "testdata/mulsum.p2g")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lang.Compile("mulsum", src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLangInterp compares interpreted kernel bodies against native Go
// bodies on the same program.
func BenchmarkLangInterp(b *testing.B) {
	src := mustReadTestdata(b, "testdata/mulsum.p2g")
	prog, err := lang.Compile("mulsum", src)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("interpreted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := runtime.Run(prog, runtime.Options{Workers: 1, MaxAge: 200, Output: io.Discard}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("native", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := runtime.Run(workloads.MulSum(), runtime.Options{Workers: 1, MaxAge: 200, Output: io.Discard}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func mustReadTestdata(b *testing.B, path string) string {
	b.Helper()
	data, err := readFile(path)
	if err != nil {
		b.Fatal(err)
	}
	return data
}

// ---- kernel-language back-end benchmarks ----------------------------------
//
// BenchmarkLang{MulSum,KMeans,Wavefront} measure one kernel body directly
// (no scheduler, no fetch/store machinery) under the closure interpreter,
// the register-bytecode VM, and a native Go transliteration of the same
// compute. The bytecode/closure ratio is the interpreter gap the bytecode
// back-end exists to close; the native column is the remaining headroom.

// §V mulsum arithmetic: repeated v = v*2+5 passes over a 512-element row.
const benchLangMulSumSrc = `
int32[] out;
calc:
  local int32[] r;
  %{
    for (int i = 0; i < 512; ++i) { put(r, i + 10, i); }
    for (int it = 0; it < 50; ++it) {
      for (int i = 0; i < 512; ++i) { put(r, get(r, i) * 2 + 5, i); }
    }
  %}
  store out(0) = r;
`

// Table III assign: nearest-centroid scan, float math in the inner loop.
const benchLangKMeansSrc = `
float64[] out;
assign:
  local float64[] cx;
  local float64[] best;
  %{
    for (int c = 0; c < 32; ++c) { put(cx, c * 0.5, c); }
    for (int p = 0; p < 256; ++p) {
      float px = p * 0.37;
      float bd = 1000000.0;
      for (int c = 0; c < 32; ++c) {
        float d = px - get(cx, c);
        d = d * d;
        if (d < bd) { bd = d; }
      }
      put(best, bd, p);
    }
  %}
  store out(0) = best;
`

// §III wavefront: each cell depends on its left, up and diagonal neighbours.
const benchLangWavefrontSrc = `
int32[][] out;
predict:
  local int32[][] p;
  %{
    for (int x = 0; x < 34; ++x) { put(p, 1, x, 0); }
    for (int y = 0; y < 34; ++y) { put(p, 1, 0, y); }
    for (int x = 1; x < 34; ++x) {
      for (int y = 1; y < 34; ++y) {
        int left = get(p, x - 1, y);
        int up = get(p, x, y - 1);
        int diag = get(p, x - 1, y - 1);
        put(p, (left + up + diag) % 255 + min(left, up), x, y);
      }
    }
  %}
  store out(0) = p;
`

var benchLangSink int64

func benchLangBody(b *testing.B, src, kernel string, native func() int64) {
	b.Helper()
	for _, be := range []struct {
		name string
		opts lang.Options
	}{
		{"closure", lang.Options{Backend: lang.BackendClosure}},
		{"bytecode", lang.Options{Backend: lang.BackendBytecode}},
	} {
		prog, err := lang.CompileOptions("bench", src, be.opts)
		if err != nil {
			b.Fatal(err)
		}
		if be.opts.Backend == lang.BackendBytecode {
			listings, err := lang.Disassemble("bench", src)
			if err != nil {
				b.Fatal(err)
			}
			for _, l := range listings {
				if l.Fallback {
					b.Fatalf("kernel %s fell back to closure: %s", l.Kernel, l.FallbackReason)
				}
			}
		}
		kd := prog.Kernel(kernel)
		ctx := core.NewCtx(kd, 0, nil, nil, io.Discard)
		b.Run(be.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx.Reset(0, nil)
				if err := kd.Body(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("native", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchLangSink = native()
		}
	})
}

func BenchmarkLangMulSum(b *testing.B) {
	benchLangBody(b, benchLangMulSumSrc, "calc", func() int64 {
		var r [512]int32
		for i := range r {
			r[i] = int32(i + 10)
		}
		for it := 0; it < 50; it++ {
			for i := range r {
				r[i] = r[i]*2 + 5
			}
		}
		return int64(r[0])
	})
}

func BenchmarkLangKMeans(b *testing.B) {
	benchLangBody(b, benchLangKMeansSrc, "assign", func() int64 {
		var cx [32]float64
		for c := range cx {
			cx[c] = float64(c) * 0.5
		}
		var best [256]float64
		for p := 0; p < 256; p++ {
			px := float64(p) * 0.37
			bd := 1000000.0
			for c := 0; c < 32; c++ {
				d := px - cx[c]
				d = d * d
				if d < bd {
					bd = d
				}
			}
			best[p] = bd
		}
		return int64(best[255])
	})
}

func BenchmarkLangWavefront(b *testing.B) {
	benchLangBody(b, benchLangWavefrontSrc, "predict", func() int64 {
		var p [34][34]int32
		for x := 0; x < 34; x++ {
			p[x][0] = 1
		}
		for y := 0; y < 34; y++ {
			p[0][y] = 1
		}
		for x := 1; x < 34; x++ {
			for y := 1; y < 34; y++ {
				left, up, diag := p[x-1][y], p[x][y-1], p[x-1][y-1]
				m := left
				if up < m {
					m = up
				}
				p[x][y] = (left+up+diag)%255 + m
			}
		}
		return int64(p[33][33])
	})
}
