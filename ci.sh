#!/bin/sh
# Tier-1 verification gate, equivalent to `make ci`: formatting, vet, build,
# and the full test suite under the race detector.
set -eu
cd "$(dirname "$0")"

out=$(gofmt -l .)
if [ -n "$out" ]; then
	echo "gofmt needed on:" >&2
	echo "$out" >&2
	exit 1
fi
go vet ./...
go build ./...
go test -race ./...
# Fault-injection gate (`make test-fault`): the failover, liveness, and
# teardown regression tests under the race detector, each driving a real
# master/worker pair through a severed, wedged, or silently dropping
# connection.
go test -race -count=1 -run 'Failover|Liveness|IdleTimeout|Standby|BroadcastsStop|AbortReleases|SendFailureTeardown' ./internal/dist/
# Scheduler smoke gate: one iteration of the figure 9/10 sweeps and the
# dispatch benchmark (`make bench`) to catch crashes or stalls in the
# dispatch fast path.
go test -bench 'Fig9|Fig10|Dispatch|Analyzer' -benchtime=1x -count=1 .
# Memory-path smoke gate (`make bench-mem`): the typed slab store and
# wire-encode benchmarks with allocation reporting.
go test -bench 'FieldStoreSlab|WireEncodeFrame|FieldFetchView' -benchmem -benchtime=100x -count=1 -run xxx .
# Distributed-transport smoke gate (`make bench-transport`): one framed and
# one gob-per-store distributed MJPEG encode over TCP loopback.
go test -bench 'TransportMJPEG|FrameEncodeScatter' -benchtime=1x -count=1 -run xxx .
# Observability smoke gate (`make bench-obs`): the figure 9/10 workloads under
# each observability setting, and the tracing-off dispatch path pinned at
# zero allocations per instance.
go test -bench 'ObsOverhead' -benchtime=1x -count=1 -run xxx .
go test -run DispatchTracingOffAllocFree -count=1 ./internal/runtime/
# Kernel-language back-end smoke gate (`make bench-lang`): each benchmark
# kernel body once under the closure interpreter, the register-bytecode VM,
# and the native Go baseline — catches lowering fallbacks and VM crashes.
go test -bench 'Lang(MulSum|KMeans|Wavefront)' -benchtime=1x -count=1 -run xxx .
