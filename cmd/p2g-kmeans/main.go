// p2g-kmeans runs the K-means clustering workload (paper figure 7) on the
// P2G runtime, or sequentially for comparison.
//
// Usage:
//
//	p2g-kmeans -n 2000 -k 100 -iters 10 -workers 4
//	p2g-kmeans -mode sequential -n 2000 -k 100 -iters 10
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/kmeans"
	"repro/internal/runtime"
	"repro/internal/workloads"
)

func main() {
	mode := flag.String("mode", "p2g", "p2g or sequential")
	n := flag.Int("n", 2000, "datapoints")
	k := flag.Int("k", 100, "clusters")
	dim := flag.Int("dim", 2, "point dimensionality")
	iters := flag.Int("iters", 10, "iterations")
	seed := flag.Uint64("seed", 7, "dataset seed")
	workers := flag.Int("workers", 4, "P2G worker threads")
	verbose := flag.Bool("v", false, "print per-iteration summaries (p2g mode)")
	flag.Parse()

	cfg := workloads.KMeansConfig{N: *n, K: *k, Dim: *dim, Iter: *iters, Seed: *seed}
	switch *mode {
	case "sequential":
		pts := kmeans.Generate(cfg.N, cfg.Dim, cfg.K, cfg.Seed)
		start := time.Now()
		res := kmeans.Sequential(pts, cfg.K, cfg.Iter)
		fmt.Printf("sequential: %v, final shift %.4f, inertia %.2f\n",
			time.Since(start), res.Shifts[len(res.Shifts)-1],
			kmeans.Inertia(pts, res.Centroids, res.Membership))
	case "p2g":
		opts := workloads.KMeansOptions(cfg, *workers)
		if *verbose {
			opts.Output = os.Stdout
		}
		node, err := runtime.NewNode(workloads.KMeans(cfg), opts)
		if err != nil {
			fail(err)
		}
		report, err := node.Run()
		if err != nil {
			fail(err)
		}
		fmt.Printf("p2g: %d workers, wall time %v\n%s", *workers, report.Wall, report.Table())
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "p2g-kmeans:", err)
	os.Exit(1)
}
