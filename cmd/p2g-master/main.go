// p2g-master runs a P2G master node (paper figure 1): it waits for a fixed
// number of execution nodes to register over TCP, partitions the chosen
// workload with the high-level scheduler, brokers events between nodes,
// detects global quiescence and prints the collected instrumentation.
//
// Usage:
//
//	p2g-master -listen :7420 -nodes 2 -workload kmeans:n=2000,k=100,iter=10
//	p2g-worker -master host:7420 -id a -cores 4 &
//	p2g-worker -master host:7420 -id b -cores 4 &
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/workloads"
)

func main() {
	listen := flag.String("listen", ":7420", "TCP listen address")
	nodes := flag.Int("nodes", 2, "execution nodes to wait for")
	workload := flag.String("workload", "mulsum", "workload spec (mulsum | kmeans:... | mjpeg:...)")
	method := flag.String("method", "kl", "partitioning method: greedy, kl or tabu")
	tracePath := flag.String("trace", "", "write a merged Chrome trace_event JSON of the whole cluster (master + every worker, clock-aligned)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metricz and the merged cluster /statusz on this address, e.g. :9090")
	failover := flag.Bool("failover", false, "recover from worker deaths: reassign the lost kernels and replay the lost field generations instead of failing the run")
	standbys := flag.Int("standbys", 0, "additional hot-spare workers to wait for (started with p2g-worker -standby); the first standby takes over when a worker dies")
	heartbeatMs := flag.Int("heartbeat", 0, "liveness heartbeat interval in ms (0 = 100ms default)")
	maxMissed := flag.Int("max-missed", 0, "heartbeats a worker may miss before being declared dead (0 = disabled, or 3 with -failover)")
	idleTimeout := flag.Duration("idle-timeout", 0, "bound every blocking transport operation, so a half-open worker connection errors instead of wedging (e.g. 30s; 0 = unbounded)")
	flag.Parse()

	workloads.RegisterPayloads()
	prog, err := workloads.FromSpec(*workload)
	if err != nil {
		fail(err)
	}
	var m sched.Method
	switch *method {
	case "greedy":
		m = sched.Greedy
	case "kl":
		m = sched.KL
	case "tabu":
		m = sched.Tabu
	default:
		fail(fmt.Errorf("unknown method %q", *method))
	}

	view := dist.NewClusterView(*workload)
	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer(obs.DefaultTraceCapacity)
	}
	reg := obs.NewRegistry()
	if *metricsAddr != "" {
		srv := obs.NewServer(*metricsAddr, reg, tracer, view.Status)
		if err := srv.Start(); err != nil {
			fail(err)
		}
		defer srv.Stop()
		fmt.Fprintf(os.Stderr, "p2g-master: serving introspection on http://%s\n", srv.Addr())
	}

	l, err := dist.ListenTCP(*listen)
	if err != nil {
		fail(err)
	}
	defer l.Close()
	fmt.Fprintf(os.Stderr, "p2g-master: listening on %s, waiting for %d nodes + %d standbys\n", l.Addr(), *nodes, *standbys)
	// Workers and standbys may connect in any order: peek at the first
	// message of each connection (MRegister vs MJoin) to classify it, then
	// push the message back so RunMaster's registration sees it.
	var conns, standbyConns []dist.Conn
	for len(conns) < *nodes || len(standbyConns) < *standbys {
		c, err := l.Accept()
		if err != nil {
			fail(err)
		}
		first, err := c.Recv()
		if err != nil {
			fail(fmt.Errorf("reading registration: %w", err))
		}
		switch first.Kind {
		case dist.MRegister:
			if len(conns) == *nodes {
				fail(fmt.Errorf("node %s connected but all %d execution slots are filled (start it with -standby?)", first.NodeID, *nodes))
			}
			conns = append(conns, dist.NewPushbackConn(c, first))
			fmt.Fprintf(os.Stderr, "p2g-master: node %s connected (%d/%d)\n", first.NodeID, len(conns), *nodes)
		case dist.MJoin:
			if len(standbyConns) == *standbys {
				fail(fmt.Errorf("standby %s connected but all %d standby slots are filled", first.NodeID, *standbys))
			}
			standbyConns = append(standbyConns, dist.NewPushbackConn(c, first))
			fmt.Fprintf(os.Stderr, "p2g-master: standby %s connected (%d/%d)\n", first.NodeID, len(standbyConns), *standbys)
		default:
			fail(fmt.Errorf("expected a registration, got %v", first.Kind))
		}
	}

	res, err := dist.RunMaster(dist.MasterConfig{
		Prog: prog, Method: m, Spec: *workload, View: view,
		Metrics: reg, Tracer: tracer, CollectTraces: tracer != nil,
		Failover:    *failover,
		Standbys:    standbyConns,
		Heartbeat:   time.Duration(*heartbeatMs) * time.Millisecond,
		MaxMissed:   *maxMissed,
		IdleTimeout: *idleTimeout,
	}, conns)
	if err != nil {
		fail(err)
	}
	for _, id := range res.DeadWorkers {
		fmt.Fprintf(os.Stderr, "p2g-master: worker %s died during the run; its kernels were reassigned (%d field generations replayed)\n", id, res.Replayed)
	}

	if tracer != nil {
		// One clock-aligned timeline: the master's own spans as pid 1,
		// each worker's pulled span buffer under its node id.
		bundles := append([]obs.NodeTrace{tracer.NodeTrace("master", 1)}, res.Traces...)
		f, err := os.Create(*tracePath)
		if err != nil {
			fail(err)
		}
		if err := obs.WriteMergedChromeTrace(f, bundles); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "p2g-master: merged cluster trace (%d nodes) written to %s\n", len(bundles), *tracePath)
	}

	fmt.Printf("workload %q partitioned with %s (cut %.1f, imbalance %.2f)\n",
		*workload, *method, res.Cost.Cut, res.Cost.Imbalance)
	var kernels []string
	for k := range res.Assignment {
		kernels = append(kernels, k)
	}
	sort.Strings(kernels)
	for _, k := range kernels {
		fmt.Printf("  %-16s -> node %d\n", k, res.Assignment[k])
	}
	var ids []string
	for id := range res.Reports {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Printf("-- %s --\n%s", id, res.Reports[id].Table())
	}

	// Transport summary: wire traffic per worker link plus the frame
	// counters the broker accumulated while forwarding batched stores.
	var totalIn, totalOut int64
	for i, c := range conns {
		sr, ok := c.(dist.StatsReporter)
		if !ok {
			continue
		}
		st := sr.Stats()
		totalIn += st.RecvBytes
		totalOut += st.SentBytes
		fmt.Printf("link %d: sent %d msgs / %d bytes, received %d msgs / %d bytes\n",
			i, st.SentMsgs, st.SentBytes, st.RecvMsgs, st.RecvBytes)
	}
	fmt.Printf("transport: %d bytes in, %d bytes out; %d store frames (%d frame bytes)\n",
		totalIn, totalOut,
		reg.Counter(obs.MDistFramesTotal).Load(),
		reg.Counter(obs.MDistFrameBytesTotal).Load())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "p2g-master:", err)
	os.Exit(1)
}
