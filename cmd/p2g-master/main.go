// p2g-master runs a P2G master node (paper figure 1): it waits for a fixed
// number of execution nodes to register over TCP, partitions the chosen
// workload with the high-level scheduler, brokers events between nodes,
// detects global quiescence and prints the collected instrumentation.
//
// Usage:
//
//	p2g-master -listen :7420 -nodes 2 -workload kmeans:n=2000,k=100,iter=10
//	p2g-worker -master host:7420 -id a -cores 4 &
//	p2g-worker -master host:7420 -id b -cores 4 &
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/workloads"
)

func main() {
	listen := flag.String("listen", ":7420", "TCP listen address")
	nodes := flag.Int("nodes", 2, "execution nodes to wait for")
	workload := flag.String("workload", "mulsum", "workload spec (mulsum | kmeans:... | mjpeg:...)")
	method := flag.String("method", "kl", "partitioning method: greedy, kl or tabu")
	tracePath := flag.String("trace", "", "write a merged Chrome trace_event JSON of the whole cluster (master + every worker, clock-aligned)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metricz and the merged cluster /statusz on this address, e.g. :9090")
	flag.Parse()

	workloads.RegisterPayloads()
	prog, err := workloads.FromSpec(*workload)
	if err != nil {
		fail(err)
	}
	var m sched.Method
	switch *method {
	case "greedy":
		m = sched.Greedy
	case "kl":
		m = sched.KL
	case "tabu":
		m = sched.Tabu
	default:
		fail(fmt.Errorf("unknown method %q", *method))
	}

	view := dist.NewClusterView(*workload)
	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer(obs.DefaultTraceCapacity)
	}
	reg := obs.NewRegistry()
	if *metricsAddr != "" {
		srv := obs.NewServer(*metricsAddr, reg, tracer, view.Status)
		if err := srv.Start(); err != nil {
			fail(err)
		}
		defer srv.Stop()
		fmt.Fprintf(os.Stderr, "p2g-master: serving introspection on http://%s\n", srv.Addr())
	}

	l, err := dist.ListenTCP(*listen)
	if err != nil {
		fail(err)
	}
	defer l.Close()
	fmt.Fprintf(os.Stderr, "p2g-master: listening on %s, waiting for %d nodes\n", l.Addr(), *nodes)
	conns := make([]dist.Conn, *nodes)
	for i := range conns {
		c, err := l.Accept()
		if err != nil {
			fail(err)
		}
		conns[i] = c
		fmt.Fprintf(os.Stderr, "p2g-master: node %d/%d connected\n", i+1, *nodes)
	}

	res, err := dist.RunMaster(dist.MasterConfig{
		Prog: prog, Method: m, Spec: *workload, View: view,
		Metrics: reg, Tracer: tracer, CollectTraces: tracer != nil,
	}, conns)
	if err != nil {
		fail(err)
	}

	if tracer != nil {
		// One clock-aligned timeline: the master's own spans as pid 1,
		// each worker's pulled span buffer under its node id.
		bundles := append([]obs.NodeTrace{tracer.NodeTrace("master", 1)}, res.Traces...)
		f, err := os.Create(*tracePath)
		if err != nil {
			fail(err)
		}
		if err := obs.WriteMergedChromeTrace(f, bundles); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "p2g-master: merged cluster trace (%d nodes) written to %s\n", len(bundles), *tracePath)
	}

	fmt.Printf("workload %q partitioned with %s (cut %.1f, imbalance %.2f)\n",
		*workload, *method, res.Cost.Cut, res.Cost.Imbalance)
	var kernels []string
	for k := range res.Assignment {
		kernels = append(kernels, k)
	}
	sort.Strings(kernels)
	for _, k := range kernels {
		fmt.Printf("  %-16s -> node %d\n", k, res.Assignment[k])
	}
	var ids []string
	for id := range res.Reports {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Printf("-- %s --\n%s", id, res.Reports[id].Table())
	}

	// Transport summary: wire traffic per worker link plus the frame
	// counters the broker accumulated while forwarding batched stores.
	var totalIn, totalOut int64
	for i, c := range conns {
		sr, ok := c.(dist.StatsReporter)
		if !ok {
			continue
		}
		st := sr.Stats()
		totalIn += st.RecvBytes
		totalOut += st.SentBytes
		fmt.Printf("link %d: sent %d msgs / %d bytes, received %d msgs / %d bytes\n",
			i, st.SentMsgs, st.SentBytes, st.RecvMsgs, st.RecvBytes)
	}
	fmt.Printf("transport: %d bytes in, %d bytes out; %d store frames (%d frame bytes)\n",
		totalIn, totalOut,
		reg.Counter(obs.MDistFramesTotal).Load(),
		reg.Counter(obs.MDistFrameBytesTotal).Load())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "p2g-master:", err)
	os.Exit(1)
}
