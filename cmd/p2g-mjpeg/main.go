// p2g-mjpeg encodes raw YUV 4:2:0 video (or the built-in synthetic source)
// to Motion JPEG, either through the P2G dataflow runtime or with the
// single-threaded baseline encoder the paper compares against.
//
// Usage:
//
//	p2g-mjpeg -frames 50 -o out.mjpeg                    # synthetic CIF, P2G
//	p2g-mjpeg -mode baseline -frames 50 -o out.mjpeg     # single-threaded
//	p2g-mjpeg -i clip.yuv -w 352 -h 288 -o out.mjpeg     # encode a file
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/mjpeg"
	"repro/internal/runtime"
	"repro/internal/video"
	"repro/internal/workloads"
)

func main() {
	mode := flag.String("mode", "p2g", "encoder: p2g or baseline")
	input := flag.String("i", "", "raw I420 input file (default: synthetic source)")
	width := flag.Int("w", video.CIFWidth, "frame width")
	height := flag.Int("h", video.CIFHeight, "frame height")
	frames := flag.Int("frames", 50, "frames to encode from the synthetic source")
	seed := flag.Uint64("seed", 42, "synthetic source seed")
	workers := flag.Int("workers", 4, "P2G worker threads")
	quality := flag.Int("quality", 75, "JPEG quality factor")
	fast := flag.Bool("fast", false, "use the AAN fast DCT")
	out := flag.String("o", "", "output MJPEG file (default: discard)")
	stats := flag.Bool("stats", true, "print the instrumentation table (p2g mode)")
	flag.Parse()

	var src video.Source
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		src = video.NewReader(f, *width, *height)
	} else {
		src = video.NewSynthetic(*width, *height, *frames, *seed)
	}

	// When the output is an .avi, collect the raw JPEG stream first and mux
	// it into a RIFF container at the end; otherwise stream directly.
	wantAVI := strings.HasSuffix(strings.ToLower(*out), ".avi")
	var collected bytes.Buffer
	var sink io.Writer = io.Discard
	var outFile *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		outFile = f
		if wantAVI {
			sink = &collected
		} else {
			sink = f
		}
	}
	finish := func() {
		if !wantAVI || outFile == nil {
			return
		}
		frames := mjpeg.SplitFrames(collected.Bytes())
		if err := mjpeg.WriteAVI(outFile, frames, *width, *height, 25); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d-frame AVI to %s\n", len(frames), *out)
	}

	switch *mode {
	case "baseline":
		enc := &mjpeg.Encoder{Quality: *quality, FastDCT: *fast}
		n, err := enc.EncodeStream(src, sink)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "baseline encoder: %d frames\n", n)
		finish()
	case "p2g":
		prog := workloads.MJPEG(workloads.MJPEGConfig{
			Source:  src,
			Quality: *quality,
			FastDCT: *fast,
			Out:     sink,
		})
		report, err := runtime.Run(prog, runtime.Options{Workers: *workers})
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "p2g encoder: %d workers, wall time %v\n", *workers, report.Wall)
		if *stats {
			fmt.Fprint(os.Stderr, report.Table())
		}
		finish()
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "p2g-mjpeg:", err)
	os.Exit(1)
}
