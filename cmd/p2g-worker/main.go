// p2g-worker runs a P2G execution node: it registers with a master over TCP,
// receives its kernel partition and executes it, exchanging store and
// completion events with the rest of the cluster through the master's
// publish-subscribe broker.
//
// Usage:
//
//	p2g-worker -master host:7420 -id node-a -cores 4
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dist"
	"repro/internal/workloads"
)

func main() {
	master := flag.String("master", "127.0.0.1:7420", "master address")
	id := flag.String("id", "", "node identifier (default: host PID based)")
	cores := flag.Int("cores", 2, "worker threads on this node")
	speed := flag.Float64("speed", 1, "relative speed factor reported to the master")
	flag.Parse()

	workloads.RegisterPayloads()
	if *id == "" {
		host, _ := os.Hostname()
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	conn, err := dist.DialTCP(*master)
	if err != nil {
		fail(err)
	}
	rep, err := dist.RunWorker(dist.WorkerConfig{
		NodeID:        *id,
		Cores:         *cores,
		Speed:         *speed,
		Factory:       workloads.FromSpec,
		BoundsFactory: workloads.SpecBounds,
		Output:        os.Stdout,
	}, conn)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "p2g-worker %s: done\n%s", *id, rep.Table())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "p2g-worker:", err)
	os.Exit(1)
}
