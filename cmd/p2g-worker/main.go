// p2g-worker runs a P2G execution node: it registers with a master over TCP,
// receives its kernel partition and executes it, exchanging store and
// completion events with the rest of the cluster through the master's
// publish-subscribe broker.
//
// Usage:
//
//	p2g-worker -master host:7420 -id node-a -cores 4
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/workloads"
)

func main() {
	master := flag.String("master", "127.0.0.1:7420", "master address")
	id := flag.String("id", "", "node identifier (default: host PID based)")
	cores := flag.Int("cores", 2, "worker threads on this node")
	speed := flag.Float64("speed", 1, "relative speed factor reported to the master")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON of this node's kernel instances")
	metricsAddr := flag.String("metrics-addr", "", "serve /metricz, /statusz and /tracez on this address, e.g. :9091")
	gobStores := flag.Bool("gob-stores", false, "send one gob-encoded store message per notice instead of batched typed frames (A/B baseline)")
	standby := flag.Bool("standby", false, "register as a hot spare: wait without a partition until the master promotes this node after a peer dies (requires the master to run with -failover and -standbys)")
	idleTimeout := flag.Duration("idle-timeout", 0, "bound every blocking transport operation once the run starts, so a dead master errors instead of wedging (e.g. 30s; 0 = unbounded)")
	flag.Parse()

	workloads.RegisterPayloads()
	if *id == "" {
		host, _ := os.Hostname()
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer(obs.DefaultTraceCapacity)
	}
	reg := obs.NewRegistry()
	if *metricsAddr != "" {
		srv := obs.NewServer(*metricsAddr, reg, tracer, func() any {
			return map[string]any{"node": *id, "cores": *cores, "master": *master}
		})
		if err := srv.Start(); err != nil {
			fail(err)
		}
		defer srv.Stop()
		fmt.Fprintf(os.Stderr, "p2g-worker: serving introspection on http://%s\n", srv.Addr())
	}

	conn, err := dist.DialTCP(*master)
	if err != nil {
		fail(err)
	}
	rep, err := dist.RunWorker(dist.WorkerConfig{
		NodeID:        *id,
		Cores:         *cores,
		Speed:         *speed,
		Factory:       workloads.FromSpec,
		BoundsFactory: workloads.SpecBounds,
		Output:        os.Stdout,
		DisableFrames: *gobStores,
		Standby:       *standby,
		IdleTimeout:   *idleTimeout,
		Metrics:       reg,
		Tracer:        tracer,
	}, conn)
	if err != nil {
		fail(err)
	}
	if rep == nil {
		// A standby the master never needed: released cleanly at shutdown.
		fmt.Fprintf(os.Stderr, "p2g-worker %s: standby released without promotion\n", *id)
		return
	}
	if tracer != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fail(err)
		}
		if err := tracer.WriteChromeTrace(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
	fmt.Fprintf(os.Stderr, "p2g-worker %s: done\n%s", *id, rep.Table())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "p2g-worker:", err)
	os.Exit(1)
}
