package main

import (
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/kmeans"
	"repro/internal/lang"
	"repro/internal/mjpeg"
	"repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/video"
	"repro/internal/workloads"
)

// meanStd returns the mean and standard deviation of durations in seconds.
func meanStd(ds []time.Duration) (float64, float64) {
	var sum float64
	for _, d := range ds {
		sum += d.Seconds()
	}
	mean := sum / float64(len(ds))
	var varsum float64
	for _, d := range ds {
		varsum += (d.Seconds() - mean) * (d.Seconds() - mean)
	}
	return mean, math.Sqrt(varsum / float64(len(ds)))
}

func mjpegProgram(fast bool) *core.Program {
	return workloads.MJPEG(workloads.MJPEGConfig{
		Source:  video.NewCIFSource(*frames, 42),
		FastDCT: fast,
	})
}

func kmeansCfg() workloads.KMeansConfig {
	return workloads.KMeansConfig{N: *kmN, K: *kmK, Iter: *kmIters, Dim: 2, Seed: 7}
}

// runInstrumented executes a workload once and returns its report. When the
// -trace or -metrics-addr flags are set, the run feeds the global tracer and
// registry (nil otherwise: zero observability overhead).
func runInstrumented(prog *core.Program, opts runtime.Options) (*runtime.Report, error) {
	opts.Metrics = benchReg
	opts.Tracer = benchTracer
	opts.Scheduler = schedulerKind()
	opts.Analyzer = analyzerKind()
	opts.AnalyzerShards = *shardsFlag
	opts.FetchCopy = *copyFlag
	node, err := runtime.NewNode(prog, opts)
	if err != nil {
		return nil, err
	}
	rep, err := node.Run()
	if err != nil {
		return nil, err
	}
	if len(rep.Stalled) > 0 {
		return nil, fmt.Errorf("stalled kernel-ages: %v", rep.Stalled)
	}
	return rep, nil
}

func golden() error {
	var out strings.Builder
	if _, err := runtime.Run(workloads.MulSum(), runtime.Options{Workers: 1, MaxAge: 1, Output: &out}); err != nil {
		return err
	}
	want := "10 11 12 13 14 \n20 22 24 26 28 \n25 27 29 31 33 \n50 54 58 62 66 \n"
	fmt.Print(out.String())
	if out.String() == want {
		fmt.Println("matches §V exactly: {10..14},{20,22,24,26,28} then {25,27,29,31,33},{50,54,58,62,66}")
	} else {
		fmt.Println("MISMATCH with the paper's §V sequence!")
	}
	return nil
}

// figSweep measures a workload across worker counts (real wall time on this
// host) and prints two analytical extrapolations next to it: one
// parameterized by the per-instance costs measured here, and one by the
// per-instance costs the paper itself reports (Tables II/III) — the latter
// regenerates the published curve shapes from the published numbers.
func figSweep(mkProg func() *core.Program, opts func(workers int) runtime.Options, paper sim.Model) error {
	// Instrument once with a single worker to parameterize the model.
	rep, err := runInstrumented(mkProg(), opts(1))
	if err != nil {
		return err
	}
	model := sim.Model{
		Kernels:          sim.FromReport(rep),
		AnalyzerPerEvent: sim.CalibrateAnalyzer(rep),
		Cores:            *simCores,
	}
	predicted, err := model.Sweep(*maxWorkers)
	if err != nil {
		return err
	}
	paper.Cores = *simCores
	paperFast, err := paper.Sweep(*maxWorkers)
	if err != nil {
		return err
	}
	slow := paper
	slow.Speed = 0.65           // the paper's Opteron runs ≈0.65x its Core i7
	slow.ContentionPenalty *= 2 // no turbo boost to absorb the serial bottleneck (§VIII-B)
	paperSlow, err := slow.Sweep(*maxWorkers)
	if err != nil {
		return err
	}

	fmt.Printf("%-8s %-22s %-12s %-12s %-12s\n", "workers",
		fmt.Sprintf("measured (%d runs) s", *runs),
		"model(ours)", "paper-i7", "paper-Opteron")
	for w := 1; w <= *maxWorkers; w++ {
		var ds []time.Duration
		var lastRep *runtime.Report
		for r := 0; r < *runs; r++ {
			rep, err := runInstrumented(mkProg(), opts(w))
			if err != nil {
				return err
			}
			ds = append(ds, rep.Wall)
			lastRep = rep
		}
		mean, std := meanStd(ds)
		fmt.Printf("%-8d %8.3f ± %-10.3f %-12.3f %-12.3f %-12.3f\n",
			w, mean, std, predicted[w-1].Seconds(), paperFast[w-1].Seconds(), paperSlow[w-1].Seconds())
		if *attrFlag && lastRep != nil && lastRep.Stages != nil {
			// Per-worker attribution is the bottleneck profile: watch
			// ready-wait and idle grow with w while exec stays flat (§VIII-B).
			fmt.Print(lastRep.Attribution())
		}
	}
	fmt.Printf("(our analyzer per-event cost calibrated at %v; worker work %.3fs, analyzer work %.3fs;\n",
		model.AnalyzerPerEvent, model.WorkerWork().Seconds(), model.AnalyzerWork().Seconds())
	fmt.Printf(" paper-cost model uses the published Table II/III per-instance times on %d cores)\n", *simCores)
	return nil
}

// paperMJPEGModel carries Table II's published per-instance costs.
func paperMJPEGModel() sim.Model {
	fr := int64(*frames)
	return sim.Model{
		Kernels: []sim.KernelCost{
			{Name: "read", Instances: fr + 1, KernelPer: 1642 * time.Microsecond, DispatchPer: 36 * time.Microsecond, Events: 4},
			{Name: "yDCT", Instances: fr * 1584, KernelPer: 170 * time.Microsecond, DispatchPer: 3 * time.Microsecond, Events: 2},
			{Name: "uDCT", Instances: fr * 396, KernelPer: 170 * time.Microsecond, DispatchPer: 3 * time.Microsecond, Events: 2},
			{Name: "vDCT", Instances: fr * 396, KernelPer: 171 * time.Microsecond, DispatchPer: 3 * time.Microsecond, Events: 2},
			{Name: "vlc", Instances: fr + 1, KernelPer: 2161 * time.Microsecond, DispatchPer: 3 * time.Microsecond, Events: 3},
		},
		AnalyzerPerEvent:  2 * time.Microsecond,
		ContentionPenalty: 0.05,
	}
}

// paperKMeansModel carries Table III's published per-instance costs.
func paperKMeansModel() sim.Model {
	cfg := kmeansCfg()
	return sim.Model{
		Kernels: []sim.KernelCost{
			{Name: "assign", Instances: int64(cfg.N * cfg.Iter), KernelPer: 6950 * time.Nanosecond, DispatchPer: 4070 * time.Nanosecond, Events: 2},
			{Name: "refine", Instances: int64(cfg.K * cfg.Iter), KernelPer: 93 * time.Microsecond, DispatchPer: 3210 * time.Nanosecond, Events: 2},
			{Name: "print", Instances: int64(cfg.Iter + 1), KernelPer: 379 * time.Microsecond, DispatchPer: time.Microsecond, Events: 1},
		},
		AnalyzerPerEvent:  2 * time.Microsecond,
		ContentionPenalty: 0.05,
	}
}

func fig9() error {
	return figSweep(func() *core.Program { return mjpegProgram(false) },
		func(w int) runtime.Options { return runtime.Options{Workers: w} },
		paperMJPEGModel())
}

func fig10() error {
	cfg := kmeansCfg()
	return figSweep(func() *core.Program { return workloads.KMeans(cfg) },
		func(w int) runtime.Options { return workloads.KMeansOptions(cfg, w) },
		paperKMeansModel())
}

func tableII() error {
	// One worker gives clean per-instance timings (on a host with fewer
	// cores than workers, oversubscription would inflate them).
	rep, err := runInstrumented(mjpegProgram(false), runtime.Options{Workers: 1})
	if err != nil {
		return err
	}
	fmt.Print(rep.Table())
	fmt.Printf("(paper: init 1, read/splityuv %d, yDCT %d, uDCT %d, vDCT %d, VLC/write %d instances\n",
		*frames+1, *frames*1584, *frames*396, *frames*396, *frames+1)
	fmt.Println(" for 50 frames: 51 / 80784 / 20196 / 20196 / 51; dispatch ~3µs, yDCT kernel ~170µs)")
	return nil
}

func tableIII() error {
	cfg := kmeansCfg()
	rep, err := runInstrumented(workloads.KMeans(cfg), workloads.KMeansOptions(cfg, 1))
	if err != nil {
		return err
	}
	fmt.Print(rep.Table())
	fmt.Printf("(paper: init 1, assign ~n·iters, refine k·iters = %d, print iters+1 = %d;\n",
		cfg.K*cfg.Iter, cfg.Iter+1)
	fmt.Println(" assign dispatch 4.07µs vs kernel 6.95µs — same order, which is what saturates the analyzer)")
	return nil
}

func baseline() error {
	enc := &mjpeg.Encoder{}
	var ds []time.Duration
	for r := 0; r < *runs; r++ {
		start := time.Now()
		if _, err := enc.EncodeStream(video.NewCIFSource(*frames, 42), io.Discard); err != nil {
			return err
		}
		ds = append(ds, time.Since(start))
	}
	mean, std := meanStd(ds)
	fmt.Printf("standalone single-threaded encoder: %.3f ± %.3f s for %d CIF frames\n", mean, std, *frames)

	for _, w := range []int{1, *maxWorkers} {
		var ps []time.Duration
		for r := 0; r < *runs; r++ {
			rep, err := runInstrumented(mjpegProgram(false), runtime.Options{Workers: w})
			if err != nil {
				return err
			}
			ps = append(ps, rep.Wall)
		}
		pm, pstd := meanStd(ps)
		fmt.Printf("P2G encoder, %d worker(s):            %.3f ± %.3f s (%.2fx the baseline)\n",
			w, pm, pstd, pm/mean)
	}
	fmt.Println("(paper §VIII-A: baseline 19s on the i7 / 30s on the Opteron; P2G with 1 worker")
	fmt.Println(" is the baseline plus dispatch overhead, and scales with added workers)")
	return nil
}

func granularity() error {
	cfg := kmeansCfg()
	fmt.Printf("%-14s %-14s %-20s\n", "assign slab", "wall s", "assign dispatch/inst")
	for _, g := range []int{1, 8, 32, 125, 250} {
		opts := workloads.KMeansOptions(cfg, *maxWorkers)
		opts.Granularity = map[string]int{"assign": g}
		var ds []time.Duration
		var disp time.Duration
		for r := 0; r < *runs; r++ {
			rep, err := runInstrumented(workloads.KMeans(cfg), opts)
			if err != nil {
				return err
			}
			ds = append(ds, rep.Wall)
			disp = rep.Kernel("assign").DispatchPer()
		}
		mean, std := meanStd(ds)
		fmt.Printf("%-14d %7.3f ±%5.3f %v\n", g, mean, std, disp)
	}
	// Adaptive mode picks its own slab size.
	opts := workloads.KMeansOptions(cfg, *maxWorkers)
	opts.Adaptive = true
	rep, err := runInstrumented(workloads.KMeans(cfg), opts)
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %7.3f        %v\n", "adaptive", rep.Wall.Seconds(), rep.Kernel("assign").DispatchPer())
	fmt.Println("(§VIII-B's remedy: larger slices per assign instance cut the analyzer's event load)")
	return nil
}

func fusion() error {
	const ages = 20000
	run := func(p *core.Program) (time.Duration, int64, int64, error) {
		var best time.Duration = math.MaxInt64
		var insts, events int64
		for r := 0; r < *runs; r++ {
			rep, err := runInstrumented(p, runtime.Options{Workers: 2, MaxAge: ages})
			if err != nil {
				return 0, 0, 0, err
			}
			if rep.Wall < best {
				best = rep.Wall
			}
			insts, events = 0, 0
			for _, k := range rep.Kernels {
				insts += k.Instances
				events += k.Instances + k.StoreOps
			}
		}
		return best, insts, events, nil
	}
	plain, pi, pe, err := run(workloads.MulSum())
	if err != nil {
		return err
	}
	fused, err := core.Fuse(workloads.MulSum(), "mul2", "plus5")
	if err != nil {
		return err
	}
	fusedWall, fi, fe, err := run(fused)
	if err != nil {
		return err
	}
	fmt.Printf("mul2 and plus5 separate: %v for %d ages, %d instances, %d analyzer events\n", plain, ages, pi, pe)
	fmt.Printf("mul2+plus5 fused:        %v (%.2fx), %d instances (%.2fx), %d analyzer events (%.2fx)\n",
		fusedWall, float64(plain)/float64(fusedWall),
		fi, float64(pi)/float64(fi), fe, float64(pe)/float64(fe))
	fmt.Println("(figure 4 Age=3: task combining nearly halves the instance count and the serial")
	fmt.Println(" analyzer's event load — the win grows with worker counts that saturate the analyzer)")
	return nil
}

func dct() error {
	f, _ := video.NewCIFSource(1, 42).Next()
	blocks := mjpeg.ExtractBlocks(f.Y, f.W, f.H)
	qt := mjpeg.LumaQuant(75)
	measure := func(fast bool) time.Duration {
		var out mjpeg.Block
		best := time.Duration(math.MaxInt64)
		for r := 0; r < *runs; r++ {
			start := time.Now()
			for i := range blocks {
				mjpeg.DCTQuantBlock(&blocks[i], qt, fast, &out)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	naive := measure(false)
	fast := measure(true)
	n := time.Duration(len(blocks))
	fmt.Printf("naive DCT+quant: %v per frame (%v per macroblock)\n", naive, naive/n)
	fmt.Printf("AAN fast DCT:    %v per frame (%v per macroblock), %.2fx faster\n",
		fast, fast/n, float64(naive)/float64(fast))
	fmt.Println("(§VIII-A: the paper's encoder uses the naive DCT and cites FastDCT [2] as the improvement)")
	return nil
}

func partition() error {
	for _, wl := range []struct {
		name string
		prog *core.Program
		rep  func() (*runtime.Report, error)
	}{
		{"mjpeg", mjpegProgram(true), func() (*runtime.Report, error) {
			p := workloads.MJPEG(workloads.MJPEGConfig{Source: video.NewCIFSource(2, 1), FastDCT: true})
			return runInstrumented(p, runtime.Options{Workers: 2})
		}},
		{"kmeans", workloads.KMeans(workloads.KMeansConfig{N: 500, K: 20, Iter: 5}), func() (*runtime.Report, error) {
			cfg := workloads.KMeansConfig{N: 500, K: 20, Iter: 5}
			return runInstrumented(workloads.KMeans(cfg), workloads.KMeansOptions(cfg, 2))
		}},
	} {
		rep, err := wl.rep()
		if err != nil {
			return err
		}
		g := graph.BuildFinal(wl.prog)
		sched.ApplyInstrumentation(g, rep)
		fmt.Printf("%s final graph (%d kernels, %d edges), instrumentation-weighted:\n",
			wl.name, len(g.Nodes), len(g.Edges))
		fmt.Printf("  %-8s %-8s %-12s %-10s\n", "nodes", "method", "cut", "imbalance")
		for _, nodes := range []int{2, 4, 8} {
			topo := sched.NewTopology(nodes, 4)
			for _, m := range []sched.Method{sched.Greedy, sched.KL, sched.Tabu} {
				_, cost, err := sched.Partition(g, topo, m)
				if err != nil {
					return err
				}
				fmt.Printf("  %-8d %-8s %-12.3g %-10.3f\n", nodes, m, cost.Cut, cost.Imbalance)
			}
		}
	}
	fmt.Println("(KL and tabu should never exceed greedy's cost; §IV's repartitioning loop uses these weights)")
	return nil
}

func distExp() error {
	workloads.RegisterPayloads()
	cfg := workloads.KMeansConfig{N: 600, Dim: 2, K: 20, Iter: 8, Seed: 3}
	want := kmeans.Sequential(kmeans.Generate(cfg.N, cfg.Dim, cfg.K, cfg.Seed), cfg.K, cfg.Iter)

	fmt.Printf("%-8s %-10s %-12s %s\n", "nodes", "wall s", "events", "deterministic")
	for _, nodes := range []int{1, 2, 3, 4} {
		masterConns := make([]dist.Conn, nodes)
		var wg sync.WaitGroup
		for i := 0; i < nodes; i++ {
			var wc dist.Conn
			masterConns[i], wc = dist.InprocPipe()
			wg.Add(1)
			go func(i int, conn dist.Conn) {
				defer wg.Done()
				_, _ = dist.RunWorker(dist.WorkerConfig{
					NodeID:       fmt.Sprintf("n%d", i),
					Cores:        2,
					Prog:         workloads.KMeans(cfg),
					KernelMaxAge: workloads.KMeansOptions(cfg, 1).KernelMaxAge,
				}, conn)
			}(i, wc)
		}
		start := time.Now()
		res, err := dist.RunMaster(dist.MasterConfig{Prog: workloads.KMeans(cfg), Method: sched.KL}, masterConns)
		wg.Wait()
		if err != nil {
			return err
		}
		wall := time.Since(start)
		var events int64
		for _, rep := range res.Reports {
			for _, k := range rep.Kernels {
				events += k.StoreOps + k.Instances
			}
		}
		cents, err := res.Shadow.Snapshot("centroids", cfg.Iter)
		if err != nil {
			return err
		}
		exact := cents.Extent(0) == cfg.K
		pts := workloads.CentroidPoints(cents)
		for c := 0; c < cfg.K && exact; c++ {
			if kmeans.SqDist(pts[c], want.Centroids[c]) != 0 {
				exact = false
			}
		}
		var names []string
		for k, n := range res.Assignment {
			names = append(names, fmt.Sprintf("%s→%d", k, n))
		}
		sort.Strings(names)
		fmt.Printf("%-8d %-10.3f %-12d %-6v %s\n", nodes, wall.Seconds(), events, exact, strings.Join(names, " "))
	}
	fmt.Println("(results are bit-identical to the sequential baseline on every node count: the")
	fmt.Println(" write-once semantics make distribution invisible to the outcome, per §III)")
	return nil
}

// wavefrontExp sweeps worker counts over the §III wavefront intra-prediction
// program written in the kernel language (testdata/wavefront.p2g), running
// both kernel-body back-ends at every width. The -backend flag selects which
// back-end is the primary column; the other runs as the reference so the
// interpreter gap is visible at every worker count.
func wavefrontExp() error {
	src, err := os.ReadFile("testdata/wavefront.p2g")
	if err != nil {
		return fmt.Errorf("reading testdata/wavefront.p2g (run from the repo root): %w", err)
	}
	primary := langOptions()
	reference := lang.Options{Backend: lang.BackendClosure}
	refName := "closure"
	if primary.Backend == lang.BackendClosure {
		reference = lang.Options{Backend: lang.BackendBytecode}
		refName = "bytecode"
	}
	measure := func(opts lang.Options, w int) (time.Duration, error) {
		prog, err := lang.CompileOptions("wavefront", string(src), opts)
		if err != nil {
			return 0, err
		}
		var ds []time.Duration
		for r := 0; r < *runs; r++ {
			rep, err := runInstrumented(prog, runtime.Options{Workers: w, Output: io.Discard})
			if err != nil {
				return 0, err
			}
			ds = append(ds, rep.Wall)
		}
		mean, _ := meanStd(ds)
		return time.Duration(mean * float64(time.Second)), nil
	}
	fmt.Printf("%-8s %-16s %-16s %s\n", "workers",
		*backendFlag+" s", refName+" s", "ratio")
	for w := 1; w <= *maxWorkers; w++ {
		p, err := measure(primary, w)
		if err != nil {
			return err
		}
		ref, err := measure(reference, w)
		if err != nil {
			return err
		}
		ratio := 0.0
		if p > 0 {
			ratio = ref.Seconds() / p.Seconds()
		}
		fmt.Printf("%-8d %-16.4f %-16.4f %.2fx\n", w, p.Seconds(), ref.Seconds(), ratio)
	}
	fmt.Printf("(mean of %d runs per cell; the kernel bodies are identical %s programs,\n", *runs, "kernel-language")
	fmt.Printf(" only the body back-end differs — see `go test -bench Lang` for body-only numbers)\n")
	return nil
}
