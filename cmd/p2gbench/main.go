// p2gbench regenerates every table and figure of the paper's evaluation
// (§VIII), plus the ablations DESIGN.md calls out. Each experiment prints
// the rows/series the paper reports; absolute numbers are hardware-dependent
// but the shapes are the reproduction target (see EXPERIMENTS.md).
//
// Usage:
//
//	p2gbench -experiment all            # everything (several minutes)
//	p2gbench -experiment fig9 -runs 10  # one experiment, paper-parity runs
//
// Experiments: tableI fig9 fig10 tableII tableIII baseline granularity
// fusion dct partition dist golden wavefront
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/lang"
	"repro/internal/obs"
	runtime2 "repro/internal/runtime"
)

var (
	runs        = flag.Int("runs", 3, "repetitions per configuration (paper: 10)")
	maxWorkers  = flag.Int("maxworkers", 8, "largest worker-thread count in sweeps")
	frames      = flag.Int("frames", 50, "MJPEG frames (paper: 50)")
	kmN         = flag.Int("n", 2000, "K-means datapoints (paper: 2000)")
	kmK         = flag.Int("k", 100, "K-means clusters (paper: 100)")
	kmIters     = flag.Int("iters", 10, "K-means iterations (paper: 10)")
	simCores    = flag.Int("simcores", 8, "core count of the simulated machines for fig9/fig10")
	tracePath   = flag.String("trace", "", "write a Chrome trace_event JSON of every instrumented run's kernel instances")
	attrFlag    = flag.Bool("attr", false, "print per-stage latency attribution (ready-wait, queue-wait, fetch, exec, store, idle) after every instrumented run")
	metricsAddr = flag.String("metrics-addr", "", "serve /metricz, /statusz and /tracez on this address while experiments run, e.g. :9090")
	schedFlag   = flag.String("scheduler", "stealing", "ready-queue implementation: stealing (work-stealing deques) or global (reference queue)")
	anFlag      = flag.String("analyzer", "sharded", "dependency-analyzer implementation: sharded (per-shard event channels) or serial (reference)")
	shardsFlag  = flag.Int("shards", 0, "analyzer shard count for -analyzer=sharded (0: auto from GOMAXPROCS)")
	copyFlag    = flag.Bool("fetchcopy", false, "disable zero-copy fetch views and snapshot every fetch (reference path)")
	backendFlag = flag.String("backend", "bytecode", "kernel-language back-end for .p2g experiments: bytecode (register VM) or closure (reference interpreter)")
)

// langOptions maps the -backend flag onto lang.Options.
func langOptions() lang.Options {
	if *backendFlag == "closure" {
		return lang.Options{Backend: lang.BackendClosure}
	}
	return lang.Options{Backend: lang.BackendBytecode}
}

// schedulerKind maps the -scheduler flag onto Options.Scheduler.
func schedulerKind() runtime2.SchedulerKind {
	if *schedFlag == "global" {
		return runtime2.SchedGlobal
	}
	return runtime2.SchedStealing
}

// analyzerKind maps the -analyzer flag onto Options.Analyzer.
func analyzerKind() runtime2.AnalyzerKind {
	if *anFlag == "serial" {
		return runtime2.AnalyzerSerial
	}
	return runtime2.AnalyzerSharded
}

// benchReg and benchTracer instrument every experiment's instrumented runs
// when the corresponding flag is set; both nil (zero overhead) otherwise.
var (
	benchReg    *obs.Registry
	benchTracer *obs.Tracer
)

type experiment struct {
	name string
	desc string
	run  func() error
}

func main() {
	which := flag.String("experiment", "all", "experiment id or 'all'")
	list := flag.Bool("list", false, "list experiments")
	flag.Parse()

	if *schedFlag != "stealing" && *schedFlag != "global" {
		fmt.Fprintf(os.Stderr, "p2gbench: unknown -scheduler %q (want stealing or global)\n", *schedFlag)
		os.Exit(2)
	}
	if *anFlag != "sharded" && *anFlag != "serial" {
		fmt.Fprintf(os.Stderr, "p2gbench: unknown -analyzer %q (want sharded or serial)\n", *anFlag)
		os.Exit(2)
	}
	if *backendFlag != "bytecode" && *backendFlag != "closure" {
		fmt.Fprintf(os.Stderr, "p2gbench: unknown -backend %q (want bytecode or closure)\n", *backendFlag)
		os.Exit(2)
	}

	if *tracePath != "" {
		benchTracer = obs.NewTracer(obs.DefaultTraceCapacity)
	}
	if *attrFlag {
		// Attribution needs the stage histograms, so -attr implies a live
		// registry even without -metrics-addr.
		benchReg = obs.NewRegistry()
	}
	var current string
	if *metricsAddr != "" && benchReg == nil {
		benchReg = obs.NewRegistry()
	}
	if *metricsAddr != "" {
		srv := obs.NewServer(*metricsAddr, benchReg, benchTracer, func() any {
			return map[string]string{"tool": "p2gbench", "experiment": current}
		})
		if err := srv.Start(); err != nil {
			fmt.Fprintf(os.Stderr, "p2gbench: %v\n", err)
			os.Exit(1)
		}
		defer srv.Stop()
		fmt.Fprintf(os.Stderr, "p2gbench: serving introspection on http://%s\n", srv.Addr())
	}

	experiments := []experiment{
		{"tableI", "test machine description (paper Table I)", tableI},
		{"golden", "figure 5 mul/sum golden output (§V)", golden},
		{"fig9", "MJPEG running time vs worker threads (paper figure 9)", fig9},
		{"fig10", "K-means running time vs worker threads (paper figure 10)", fig10},
		{"tableII", "MJPEG micro-benchmark (paper Table II)", tableII},
		{"tableIII", "K-means micro-benchmark (paper Table III)", tableIII},
		{"baseline", "P2G vs standalone single-threaded MJPEG encoder (§VIII-A)", baseline},
		{"granularity", "ablation: data-granularity coarsening (§V-A, §VIII-B)", granularity},
		{"fusion", "ablation: kernel fusion, figure 4 Age=3 (§V-A)", fusion},
		{"dct", "ablation: naive vs AAN fast DCT (§VIII-A, ref [2])", dct},
		{"partition", "extension: HLS partitioning quality (§IV)", partition},
		{"dist", "extension: distributed execution nodes (figure 1)", distExp},
		{"wavefront", "§III wavefront intra-prediction in the kernel language, back-end A/B", wavefrontExp},
	}
	if *list {
		for _, e := range experiments {
			fmt.Printf("%-12s %s\n", e.name, e.desc)
		}
		return
	}
	ran := false
	for _, e := range experiments {
		if *which != "all" && *which != e.name {
			continue
		}
		ran = true
		current = e.name
		fmt.Printf("==== %s: %s ====\n", e.name, e.desc)
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "p2gbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "p2gbench: unknown experiment %q (use -list)\n", *which)
		os.Exit(2)
	}
	if benchTracer != nil {
		if err := writeTrace(benchTracer, *tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "p2gbench: %v\n", err)
			os.Exit(1)
		}
		if n := benchTracer.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "p2gbench: trace ring overflowed, oldest %d spans dropped\n", n)
		}
	}
}

func writeTrace(tr *obs.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("writing trace: %w", err)
	}
	return f.Close()
}

func tableI() error {
	model := "unknown"
	if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(line, "model name") {
				if _, v, ok := strings.Cut(line, ":"); ok {
					model = strings.TrimSpace(v)
				}
				break
			}
		}
	}
	fmt.Printf("%-20s %s\n", "CPU-name", model)
	fmt.Printf("%-20s %d\n", "Logical threads", runtime.NumCPU())
	fmt.Printf("%-20s %s/%s\n", "Platform", runtime.GOOS, runtime.GOARCH)
	fmt.Printf("%-20s %s\n", "Go version", runtime.Version())
	fmt.Printf("(paper Table I: 4-way Core i7 860 2.8GHz and 8-way Opteron 8218 2.6GHz;\n")
	fmt.Printf(" fig9/fig10 extrapolate measured per-instance costs to %d cores via the\n", *simCores)
	fmt.Printf(" offline model in internal/sim, as §V-A suggests)\n")
	return nil
}
