// p2gc is the P2G kernel-language compiler driver: it checks .p2g programs,
// prints their dependency graphs (the paper's figures 2-4) in Graphviz DOT
// form, and disassembles the register bytecode the default back-end compiles
// kernel bodies to.
//
// Usage:
//
//	p2gc [-check] [-disasm] [-backend bytecode|closure] [-graph intermediate|final|dcdag] [-ages N] program.p2g
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/graph"
	"repro/internal/lang"
)

func main() {
	check := flag.Bool("check", false, "parse and validate only")
	disasm := flag.Bool("disasm", false, "print the register-bytecode listing for every kernel")
	backend := flag.String("backend", "bytecode", "kernel-body back-end: bytecode or closure")
	graphKind := flag.String("graph", "", "print a graph: intermediate, final or dcdag")
	ages := flag.Int("ages", 3, "ages to unroll for -graph dcdag")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: p2gc [-check] [-disasm] [-backend bytecode|closure] [-graph intermediate|final|dcdag] [-ages N] program.p2g")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	opts, err := backendOptions(*backend)
	if err != nil {
		fail("%v", err)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	name := strings.TrimSuffix(path, ".p2g")
	prog, err := lang.CompileOptions(name, string(src), opts)
	if err != nil {
		fail("%s:%v", path, err)
	}
	fin := graph.BuildFinal(prog)
	if err := fin.CheckSchedulable(); err != nil {
		fail("%s: %v", path, err)
	}
	if *disasm {
		listings, err := lang.Disassemble(name, string(src))
		if err != nil {
			fail("%s:%v", path, err)
		}
		for _, l := range listings {
			if l.Fallback {
				fmt.Printf("kernel %s: closure fallback (%s)\n", l.Kernel, l.FallbackReason)
				continue
			}
			fmt.Print(l.Text)
		}
		return
	}
	if *check {
		fmt.Printf("%s: %d fields, %d kernels, backend=%s, OK\n", path, len(prog.Fields), len(prog.Kernels), *backend)
		if opts.Backend == lang.BackendBytecode {
			listings, err := lang.Disassemble(name, string(src))
			if err != nil {
				fail("%s:%v", path, err)
			}
			for _, l := range listings {
				if l.Fallback {
					fmt.Printf("  kernel %-12s closure fallback: %s\n", l.Kernel, l.FallbackReason)
				} else {
					fmt.Printf("  kernel %-12s %d bytecode instructions\n", l.Kernel, l.Instructions)
				}
			}
		}
		return
	}
	switch *graphKind {
	case "":
		fmt.Printf("%s: %d fields, %d kernels\n", path, len(prog.Fields), len(prog.Kernels))
		for _, k := range prog.Kernels {
			fmt.Printf("  kernel %-12s fetches=%d stores=%d", k.Name, len(k.Fetches), len(k.Stores))
			switch {
			case k.RunOnce():
				fmt.Print("  [run-once]")
			case k.Source():
				fmt.Print("  [source]")
			}
			fmt.Println()
		}
	case "intermediate":
		fmt.Print(graph.BuildIntermediate(prog).DOT(prog.Name))
	case "final":
		fmt.Print(fin.DOT(prog.Name))
	case "dcdag":
		fmt.Print(graph.Unroll(fin, *ages).DOT(prog.Name))
	default:
		fail("unknown graph kind %q", *graphKind)
	}
}

func backendOptions(name string) (lang.Options, error) {
	switch name {
	case "bytecode":
		return lang.Options{Backend: lang.BackendBytecode}, nil
	case "closure":
		return lang.Options{Backend: lang.BackendClosure}, nil
	default:
		return lang.Options{}, fmt.Errorf("unknown backend %q (want bytecode or closure)", name)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "p2gc: "+format+"\n", args...)
	os.Exit(1)
}
