// p2gc is the P2G kernel-language compiler driver: it checks .p2g programs,
// prints their dependency graphs (the paper's figures 2-4) in Graphviz DOT
// form, and optionally runs them.
//
// Usage:
//
//	p2gc [-check] [-graph intermediate|final|dcdag] [-ages N] program.p2g
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/graph"
	"repro/internal/lang"
)

func main() {
	check := flag.Bool("check", false, "parse and validate only")
	graphKind := flag.String("graph", "", "print a graph: intermediate, final or dcdag")
	ages := flag.Int("ages", 3, "ages to unroll for -graph dcdag")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: p2gc [-check] [-graph intermediate|final|dcdag] [-ages N] program.p2g")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	name := strings.TrimSuffix(path, ".p2g")
	prog, err := lang.Compile(name, string(src))
	if err != nil {
		fail("%s:%v", path, err)
	}
	fin := graph.BuildFinal(prog)
	if err := fin.CheckSchedulable(); err != nil {
		fail("%s: %v", path, err)
	}
	if *check {
		fmt.Printf("%s: %d fields, %d kernels, OK\n", path, len(prog.Fields), len(prog.Kernels))
		return
	}
	switch *graphKind {
	case "":
		fmt.Printf("%s: %d fields, %d kernels\n", path, len(prog.Fields), len(prog.Kernels))
		for _, k := range prog.Kernels {
			fmt.Printf("  kernel %-12s fetches=%d stores=%d", k.Name, len(k.Fetches), len(k.Stores))
			switch {
			case k.RunOnce():
				fmt.Print("  [run-once]")
			case k.Source():
				fmt.Print("  [source]")
			}
			fmt.Println()
		}
	case "intermediate":
		fmt.Print(graph.BuildIntermediate(prog).DOT(prog.Name))
	case "final":
		fmt.Print(fin.DOT(prog.Name))
	case "dcdag":
		fmt.Print(graph.Unroll(fin, *ages).DOT(prog.Name))
	default:
		fail("unknown graph kind %q", *graphKind)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "p2gc: "+format+"\n", args...)
	os.Exit(1)
}
