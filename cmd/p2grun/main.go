// p2grun compiles and executes a P2G kernel-language program on a local
// execution node.
//
// Usage:
//
//	p2grun [-workers N] [-maxage N] [-bound kernel=age,...] program.p2g
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/lang"
	"repro/internal/runtime"
)

func main() {
	workers := flag.Int("workers", 1, "worker threads")
	maxAge := flag.Int("maxage", 0, "global age bound (0 = unbounded)")
	bounds := flag.String("bound", "", "per-kernel age bounds, e.g. assign=9,refine=9,print=10")
	stats := flag.Bool("stats", false, "print the instrumentation table after the run")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: p2grun [-workers N] [-maxage N] [-bound k=a,...] [-stats] program.p2g")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	prog, err := lang.Compile(strings.TrimSuffix(path, ".p2g"), string(src))
	if err != nil {
		fail("%s:%v", path, err)
	}

	opts := runtime.Options{Workers: *workers, MaxAge: *maxAge, Output: os.Stdout}
	if *bounds != "" {
		opts.KernelMaxAge = map[string]int{}
		for _, part := range strings.Split(*bounds, ",") {
			kv := strings.SplitN(part, "=", 2)
			if len(kv) != 2 {
				fail("bad -bound entry %q", part)
			}
			age, err := strconv.Atoi(kv[1])
			if err != nil {
				fail("bad -bound age in %q", part)
			}
			opts.KernelMaxAge[kv[0]] = age
		}
	}

	report, err := runtime.Run(prog, opts)
	if err != nil {
		fail("%v", err)
	}
	if len(report.Stalled) > 0 {
		fmt.Fprintln(os.Stderr, "p2grun: warning: stalled kernel-ages (unsatisfied dependencies):")
		for _, s := range report.Stalled {
			fmt.Fprintln(os.Stderr, "  ", s)
		}
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "\nwall time: %v\n%s", report.Wall, report.Table())
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "p2grun: "+format+"\n", args...)
	os.Exit(1)
}
