// p2grun compiles and executes a P2G kernel-language program on a local
// execution node.
//
// Usage:
//
//	p2grun [-workers N] [-maxage N] [-bound kernel=age,...] program.p2g
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/lang"
	"repro/internal/obs"
	"repro/internal/runtime"
)

func main() {
	workers := flag.Int("workers", 1, "worker threads")
	backend := flag.String("backend", "bytecode", "kernel-body back-end: bytecode or closure")
	maxAge := flag.Int("maxage", 0, "global age bound (0 = unbounded)")
	bounds := flag.String("bound", "", "per-kernel age bounds, e.g. assign=9,refine=9,print=10")
	stats := flag.Bool("stats", false, "print the instrumentation table after the run")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON file of kernel instances (open in chrome://tracing or ui.perfetto.dev)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metricz, /statusz and /tracez on this address during the run, e.g. :9090")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: p2grun [-workers N] [-backend bytecode|closure] [-maxage N] [-bound k=a,...] [-stats] [-trace out.json] [-metrics-addr :9090] program.p2g")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var copts lang.Options
	switch *backend {
	case "bytecode":
		copts.Backend = lang.BackendBytecode
	case "closure":
		copts.Backend = lang.BackendClosure
	default:
		fail("unknown backend %q (want bytecode or closure)", *backend)
	}
	prog, err := lang.CompileOptions(strings.TrimSuffix(path, ".p2g"), string(src), copts)
	if err != nil {
		fail("%s:%v", path, err)
	}

	opts := runtime.Options{Workers: *workers, MaxAge: *maxAge, Output: os.Stdout}
	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer(obs.DefaultTraceCapacity)
		opts.Tracer = tracer
	}
	var reg *obs.Registry
	var report *runtime.Report
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		opts.Metrics = reg
		srv := obs.NewServer(*metricsAddr, reg, tracer, func() any {
			return map[string]any{"program": path, "workers": *workers, "report": report}
		})
		if err := srv.Start(); err != nil {
			fail("%v", err)
		}
		defer srv.Stop()
		fmt.Fprintf(os.Stderr, "p2grun: serving introspection on http://%s\n", srv.Addr())
	}
	if *bounds != "" {
		opts.KernelMaxAge = map[string]int{}
		for _, part := range strings.Split(*bounds, ",") {
			kv := strings.SplitN(part, "=", 2)
			if len(kv) != 2 {
				fail("bad -bound entry %q", part)
			}
			age, err := strconv.Atoi(kv[1])
			if err != nil {
				fail("bad -bound age in %q", part)
			}
			opts.KernelMaxAge[kv[0]] = age
		}
	}

	report, err = runtime.Run(prog, opts)
	if err != nil {
		fail("%v", err)
	}
	if tracer != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fail("%v", err)
		}
		if err := tracer.WriteChromeTrace(f); err != nil {
			fail("writing trace: %v", err)
		}
		if err := f.Close(); err != nil {
			fail("%v", err)
		}
		if n := tracer.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "p2grun: trace ring overflowed, oldest %d spans dropped\n", n)
		}
	}
	if len(report.Stalled) > 0 {
		fmt.Fprintln(os.Stderr, "p2grun: warning: stalled kernel-ages (unsatisfied dependencies):")
		for _, s := range report.Stalled {
			fmt.Fprintln(os.Stderr, "  ", s)
		}
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "\nwall time: %v\n%s", report.Wall, report.Table())
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "p2grun: "+format+"\n", args...)
	os.Exit(1)
}
