package p2g

// Scheduler equivalence stress: the work-stealing scheduler must be
// observationally identical to the reference global queue. Each case runs
// the same program under both Options.Scheduler settings with randomized
// (but seeded) worker counts and granularities and compares final field
// contents and per-kernel instance counts. Run under -race, this doubles as
// a concurrency stress of the stealing deques and batched event flushes.

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/runtime"
	"repro/internal/video"
	"repro/internal/workloads"
)

// fieldFingerprint renders field generations 0..maxAge deterministically.
func fieldFingerprint(t *testing.T, n *runtime.Node, name string, maxAge int) string {
	t.Helper()
	var sb strings.Builder
	for age := 0; age <= maxAge; age++ {
		arr, err := n.Snapshot(name, age)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&sb, "%s(%d)=%s\n", name, age, arr.String())
	}
	return sb.String()
}

// reportFingerprint renders per-kernel instance and store counts.
func reportFingerprint(rep *runtime.Report) string {
	var sb strings.Builder
	for _, k := range rep.Kernels {
		fmt.Fprintf(&sb, "%s: %d insts, %d stores\n", k.Name, k.Instances, k.StoreOps)
	}
	return sb.String()
}

// runBoth executes build() under both schedulers with the given options and
// returns the two (node, report) pairs for comparison.
func runBoth(t *testing.T, prog func() *Program, opts runtime.Options) (ref, steal *runtime.Node, refRep, stealRep *runtime.Report) {
	t.Helper()
	run := func(kind runtime.SchedulerKind) (*runtime.Node, *runtime.Report) {
		o := opts
		o.Scheduler = kind
		o.Output = io.Discard
		n, err := runtime.NewNode(prog(), o)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := n.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Stalled) != 0 {
			t.Fatalf("scheduler %d stalled: %v", kind, rep.Stalled)
		}
		return n, rep
	}
	ref, refRep = run(runtime.SchedGlobal)
	steal, stealRep = run(runtime.SchedStealing)
	return
}

func TestSchedulerEquivalenceMulSum(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for round := 0; round < 4; round++ {
		workers := 1 + rng.Intn(8)
		gran := 1 + rng.Intn(3)
		maxAge := 10 + rng.Intn(11)
		opts := runtime.Options{
			Workers:     workers,
			MaxAge:      maxAge,
			Granularity: map[string]int{"mul2": gran},
		}
		ref, steal, refRep, stealRep := runBoth(t, MulSum, opts)
		for _, f := range []string{"m_data", "p_data"} {
			want := fieldFingerprint(t, ref, f, maxAge)
			got := fieldFingerprint(t, steal, f, maxAge)
			if want != got {
				t.Fatalf("round %d (workers=%d gran=%d): field %s diverged:\nref:\n%s\nstealing:\n%s",
					round, workers, gran, f, want, got)
			}
		}
		if want, got := reportFingerprint(refRep), reportFingerprint(stealRep); want != got {
			t.Fatalf("round %d: instance counts diverged:\nref:\n%s\nstealing:\n%s", round, want, got)
		}
	}
}

func TestSchedulerEquivalenceMJPEG(t *testing.T) {
	const frames = 2
	rng := rand.New(rand.NewSource(2))
	for round := 0; round < 2; round++ {
		workers := 1 + rng.Intn(8)
		prog := func() *Program {
			return workloads.MJPEG(workloads.MJPEGConfig{
				Source:  video.NewSynthetic(32, 32, frames, 7),
				FastDCT: true,
			})
		}
		ref, steal, refRep, stealRep := runBoth(t, prog, runtime.Options{Workers: workers})
		want, err := workloads.MJPEGStream(ref, frames)
		if err != nil {
			t.Fatal(err)
		}
		got, err := workloads.MJPEGStream(steal, frames)
		if err != nil {
			t.Fatal(err)
		}
		if string(want) != string(got) {
			t.Fatalf("round %d (workers=%d): encoded streams differ (%d vs %d bytes)",
				round, workers, len(want), len(got))
		}
		if w, g := reportFingerprint(refRep), reportFingerprint(stealRep); w != g {
			t.Fatalf("round %d: instance counts diverged:\nref:\n%s\nstealing:\n%s", round, w, g)
		}
	}
}

func TestSchedulerEquivalenceKMeans(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 2; round++ {
		workers := 1 + rng.Intn(8)
		gran := 1 + rng.Intn(16)
		cfg := workloads.KMeansConfig{N: 120, K: 8, Iter: 3, Dim: 2, Seed: 7}
		opts := workloads.KMeansOptions(cfg, workers)
		opts.Granularity = map[string]int{"assign": gran}
		prog := func() *Program { return workloads.KMeans(cfg) }
		ref, steal, refRep, stealRep := runBoth(t, prog, opts)
		for _, f := range []string{"centroids", "membership"} {
			want := fieldFingerprint(t, ref, f, cfg.Iter)
			got := fieldFingerprint(t, steal, f, cfg.Iter)
			if want != got {
				t.Fatalf("round %d (workers=%d gran=%d): field %s diverged", round, workers, gran, f)
			}
		}
		if w, g := reportFingerprint(refRep), reportFingerprint(stealRep); w != g {
			t.Fatalf("round %d: instance counts diverged:\nref:\n%s\nstealing:\n%s", round, w, g)
		}
	}
}
