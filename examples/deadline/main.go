// Deadline example: the paper's §V-B deadline mechanism in action. A live
// "transcoder" pipeline processes a stream of frames with a per-frame time
// budget; each encode instance polls a global timer and takes the high
// quality path while the budget holds, switching to a cheap fallback path —
// by storing to a different field, exactly as the paper describes — once the
// deadline has expired.
//
// Run with:
//
//	go run ./examples/deadline -frames 12 -budget 30
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/field"
)

func main() {
	frames := flag.Int("frames", 12, "frames in the live stream")
	budgetMS := flag.Int("budget", 30, "total deadline budget in milliseconds")
	workers := flag.Int("workers", 2, "P2G worker threads")
	flag.Parse()

	b := p2g.NewBuilder("deadline-transcode")
	b.Timer("t1")
	b.Field("input", p2g.Int32, 1, true)
	b.Field("highq", p2g.Int32, 1, true)
	b.Field("lowq", p2g.Int32, 1, true)

	b.Kernel("capture").Age("a").
		Local("frame", p2g.Int32, 1).
		StoreAll("input", p2g.AgeVar(0), "frame").
		Body(func(c *p2g.Ctx) error {
			if c.Age() >= *frames {
				return nil // end of stream
			}
			fr := c.Array("frame")
			for i := 0; i < 4; i++ {
				fr.Put(field.Int32Val(int32(c.Age()*100+i)), i)
			}
			return nil
		})

	budget := time.Duration(*budgetMS) * time.Millisecond
	b.Kernel("encode").Age("a").Index("x").
		Local("v", p2g.Int32, 0).
		Local("hq", p2g.Int32, 0).
		Local("lq", p2g.Int32, 0).
		Fetch("v", "input", p2g.AgeVar(0), p2g.Idx("x")).
		Store("highq", p2g.AgeVar(0), []p2g.IndexSpec{p2g.Idx("x")}, "hq").
		Store("lowq", p2g.AgeVar(0), []p2g.IndexSpec{p2g.Idx("x")}, "lq").
		Body(func(c *p2g.Ctx) error {
			late, err := c.Expired("t1", budget)
			if err != nil {
				return err
			}
			if late {
				// Fallback path: cheap transform, alternate field.
				c.SetInt32("lq", c.Int32("v")/2)
				return nil
			}
			// Primary path: "expensive" high-quality encode.
			time.Sleep(2 * time.Millisecond)
			c.SetInt32("hq", c.Int32("v")*10)
			return nil
		})

	b.Kernel("mux").Age("a").
		Local("h", p2g.Int32, 1).
		Local("l", p2g.Int32, 1).
		FetchAll("h", "highq", p2g.AgeVar(0)).
		FetchAll("l", "lowq", p2g.AgeVar(0)).
		Body(func(c *p2g.Ctx) error {
			h, l := c.Array("h"), c.Array("l")
			hi, lo := 0, 0
			for i := 0; i < h.Extent(0); i++ {
				if !h.At(i).IsZero() {
					hi++
				}
			}
			for i := 0; i < l.Extent(0); i++ {
				if !l.At(i).IsZero() {
					lo++
				}
			}
			c.Printf("frame %2d: %d blocks high quality, %d fallback\n", c.Age(), hi, lo)
			return nil
		})

	prog, err := b.Build()
	if err != nil {
		fail(err)
	}
	report, err := p2g.Run(prog, p2g.Options{Workers: *workers, Output: os.Stdout})
	if err != nil {
		fail(err)
	}
	fmt.Printf("\nstream of %d frames finished in %v; once the %v budget expired,\n", *frames, report.Wall, budget)
	fmt.Println("encode instances switched to the fallback path by storing to the alternate field.")
	fmt.Print(report.Table())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "deadline example:", err)
	os.Exit(1)
}
