// Distributed example: the full figure 1 architecture on one machine. A
// master node collects the topology from three in-process execution nodes,
// partitions the K-means workload with the high-level scheduler, brokers
// store/completion events between the nodes, detects global quiescence and
// gathers per-node instrumentation.
//
// Run with:
//
//	go run ./examples/distributed -nodes 3
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"

	"repro/internal/dist"
	"repro/internal/field"
	"repro/internal/kmeans"
	"repro/internal/sched"
	"repro/internal/workloads"
)

func main() {
	nodes := flag.Int("nodes", 3, "number of execution nodes")
	coresPer := flag.Int("cores", 2, "worker threads per node")
	flag.Parse()

	field.RegisterPayload(kmeans.Point{})
	cfg := workloads.KMeansConfig{N: 600, Dim: 2, K: 20, Iter: 8, Seed: 3}

	masterConns := make([]dist.Conn, *nodes)
	var wg sync.WaitGroup
	for i := 0; i < *nodes; i++ {
		var workerConn dist.Conn
		masterConns[i], workerConn = dist.InprocPipe()
		wg.Add(1)
		go func(i int, conn dist.Conn) {
			defer wg.Done()
			_, err := dist.RunWorker(dist.WorkerConfig{
				NodeID:       fmt.Sprintf("exec-node-%d", i),
				Cores:        *coresPer,
				Prog:         workloads.KMeans(cfg),
				KernelMaxAge: workloads.KMeansOptions(cfg, 1).KernelMaxAge,
			}, conn)
			if err != nil {
				fmt.Fprintf(os.Stderr, "node %d: %v\n", i, err)
			}
		}(i, workerConn)
	}

	res, err := dist.RunMaster(dist.MasterConfig{
		Prog:   workloads.KMeans(cfg),
		Method: sched.Tabu,
	}, masterConns)
	wg.Wait()
	if err != nil {
		fmt.Fprintln(os.Stderr, "master:", err)
		os.Exit(1)
	}

	fmt.Printf("partitioned K-means across %d nodes (tabu search, cut %.1f, imbalance %.2f):\n",
		*nodes, res.Cost.Cut, res.Cost.Imbalance)
	var kernels []string
	for k := range res.Assignment {
		kernels = append(kernels, k)
	}
	sort.Strings(kernels)
	for _, k := range kernels {
		fmt.Printf("  %-8s -> exec-node-%d\n", k, res.Assignment[k])
	}

	fmt.Println("\nper-node instrumentation:")
	var ids []string
	for id := range res.Reports {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Printf("-- %s --\n%s", id, res.Reports[id].Table())
	}

	// The master's shadow node holds the complete final state.
	cents, err := res.Shadow.Snapshot("centroids", cfg.Iter)
	if err != nil {
		fmt.Fprintln(os.Stderr, "snapshot:", err)
		os.Exit(1)
	}
	want := kmeans.Sequential(kmeans.Generate(cfg.N, cfg.Dim, cfg.K, cfg.Seed), cfg.K, cfg.Iter)
	pts := workloads.CentroidPoints(cents)
	exact := true
	for c := 0; c < cfg.K; c++ {
		if kmeans.SqDist(pts[c], want.Centroids[c]) != 0 {
			exact = false
		}
	}
	fmt.Printf("\nfinal centroids match the sequential baseline: %v\n", exact)
}
