// K-means example: run the paper's iterative clustering workload (figure 7)
// on the P2G runtime and verify the result against the sequential baseline.
//
// Run with:
//
//	go run ./examples/kmeans -n 2000 -k 100 -iters 10 -workers 4
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/kmeans"
	"repro/internal/workloads"
)

func main() {
	n := flag.Int("n", 2000, "number of datapoints (paper: 2000)")
	k := flag.Int("k", 100, "number of clusters (paper: 100)")
	iters := flag.Int("iters", 10, "iterations (paper: 10)")
	workers := flag.Int("workers", 4, "P2G worker threads")
	verbose := flag.Bool("v", false, "print per-iteration centroid summaries")
	flag.Parse()

	cfg := p2g.KMeansConfig{N: *n, K: *k, Iter: *iters, Dim: 2, Seed: 7}
	opts := p2g.KMeansOptions(cfg, *workers)
	if *verbose {
		opts.Output = os.Stdout
	}
	node, err := p2g.NewNode(p2g.KMeans(cfg), opts)
	if err != nil {
		fail(err)
	}
	report, err := node.Run()
	if err != nil {
		fail(err)
	}

	fmt.Printf("clustered %d points into %d clusters, %d iterations, %d workers: %v\n",
		*n, *k, *iters, *workers, report.Wall)
	fmt.Print(report.Table())

	// Verify against Lloyd's algorithm run sequentially.
	got, err := workloads.KMeansCentroids(node, *iters)
	if err != nil {
		fail(err)
	}
	pts := kmeans.Generate(cfg.N, cfg.Dim, cfg.K, cfg.Seed)
	want := kmeans.Sequential(pts, cfg.K, cfg.Iter)
	exact := true
	for c := range got {
		if kmeans.SqDist(got[c], want.Centroids[c]) != 0 {
			exact = false
		}
	}
	if exact {
		fmt.Println("centroids match the sequential baseline bit for bit")
	} else {
		fmt.Println("WARNING: centroids differ from the sequential baseline")
	}
	membership := make([]int, len(pts))
	for i, p := range pts {
		membership[i] = kmeans.Assign(p, got)
	}
	fmt.Printf("final inertia: %.2f\n", kmeans.Inertia(pts, got, membership))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "kmeans example:", err)
	os.Exit(1)
}
