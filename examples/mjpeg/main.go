// Motion JPEG example: encode a synthetic CIF sequence (the reproduction's
// stand-in for the paper's Foreman clip) with the P2G dataflow encoder,
// verify the result against the single-threaded baseline encoder, decode a
// frame and report fidelity.
//
// Run with:
//
//	go run ./examples/mjpeg -frames 10 -workers 4 -o /tmp/out.mjpeg
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/mjpeg"
	"repro/internal/video"
)

func main() {
	frames := flag.Int("frames", 10, "number of frames to encode")
	workers := flag.Int("workers", 4, "P2G worker threads")
	quality := flag.Int("quality", 75, "JPEG quality factor")
	fast := flag.Bool("fast", false, "use the AAN fast DCT instead of the naive one")
	out := flag.String("o", "", "write the MJPEG stream to this file")
	flag.Parse()

	prog := p2g.MJPEG(p2g.MJPEGConfig{
		Source:  video.NewCIFSource(*frames, 42),
		Quality: *quality,
		FastDCT: *fast,
	})
	node, err := p2g.NewNode(prog, p2g.Options{Workers: *workers})
	if err != nil {
		fail(err)
	}
	report, err := node.Run()
	if err != nil {
		fail(err)
	}
	stream, err := p2g.MJPEGStream(node, *frames)
	if err != nil {
		fail(err)
	}

	fmt.Printf("encoded %d CIF frames to %d bytes with %d workers in %v\n",
		*frames, len(stream), *workers, report.Wall)
	fmt.Print(report.Table())

	// The dataflow encoder must be bit-identical to the sequential one.
	var baseline bytes.Buffer
	enc := &mjpeg.Encoder{Quality: *quality, FastDCT: *fast}
	if _, err := enc.EncodeStream(video.NewCIFSource(*frames, 42), &baseline); err != nil {
		fail(err)
	}
	if bytes.Equal(stream, baseline.Bytes()) {
		fmt.Println("bitstream matches the single-threaded baseline encoder exactly")
	} else {
		fmt.Println("WARNING: bitstream differs from the baseline encoder")
	}

	// Decode the first frame and measure reconstruction quality.
	first := mjpeg.SplitFrames(stream)[0]
	dec, err := mjpeg.DecodeFrameJPEG(first)
	if err != nil {
		fail(err)
	}
	src, _ := video.NewCIFSource(*frames, 42).Next()
	fmt.Printf("frame 0: %dx%d, PSNR %.2f dB\n", dec.W, dec.H, video.PSNR(src, dec.Reconstruct()))

	if *out != "" {
		if err := os.WriteFile(*out, stream, 0o644); err != nil {
			fail(err)
		}
		fmt.Println("wrote", *out)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mjpeg example:", err)
	os.Exit(1)
}
