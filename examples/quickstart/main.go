// Quickstart: build and run the paper's figure 5 program (init, mul2, plus5,
// print) through the public API, then print the dependency graphs the
// schedulers work with.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"repro"
)

func main() {
	prog := p2g.MulSum()

	fmt.Println("== program output (ages 0..2) ==")
	report, err := p2g.Run(prog, p2g.Options{
		Workers: 4,
		MaxAge:  2, // the program is an endless aging cycle; bound it
		Output:  os.Stdout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "run:", err)
		os.Exit(1)
	}

	fmt.Println("== instrumentation (cf. paper tables II/III) ==")
	fmt.Print(report.Table())

	fmt.Println("== final implicit static dependency graph (figure 3) ==")
	final := p2g.BuildFinal(prog)
	fmt.Print(final.DOT("mulsum"))

	fmt.Println("== DC-DAG for 2 ages (figure 4) ==")
	fmt.Print(p2g.Unroll(final, 1).DOT("mulsum"))
}
