// SIFT example: the paper's second §III motivating pipeline — a scale-space
// keypoint detector whose stages decompose along different dimensions at
// different granularities: horizontal blur per image row, vertical blur per
// image column, extrema detection per interior row with neighbour fetches
// across rows and scale levels. The instrumentation table shows the
// per-stage instance counts the decomposition produces.
//
// Run with:
//
//	go run ./examples/sift -frames 3 -workers 4
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/sift"
	"repro/internal/video"
	"repro/internal/workloads"
)

func main() {
	frames := flag.Int("frames", 3, "frames to analyze")
	w := flag.Int("w", 96, "frame width")
	h := flag.Int("h", 64, "frame height")
	workers := flag.Int("workers", 4, "worker threads")
	flag.Parse()

	prog := p2g.SIFT(p2g.SIFTConfig{Source: video.NewSynthetic(*w, *h, *frames, 17)})
	node, err := p2g.NewNode(prog, p2g.Options{Workers: *workers, Output: os.Stdout})
	if err != nil {
		fail(err)
	}
	report, err := node.Run()
	if err != nil {
		fail(err)
	}
	fmt.Printf("\nanalyzed %d %dx%d frames in %v\n", *frames, *w, *h, report.Wall)
	fmt.Print(report.Table())

	// Verify frame 0 against the sequential reference.
	src := video.NewSynthetic(*w, *h, *frames, 17)
	f, _ := src.Next()
	want := sift.Sequential(sift.FromLuma(f.Y, f.W, f.H), sift.DefaultThreshold)
	got, err := workloads.SIFTKeypoints(node, 0)
	if err != nil {
		fail(err)
	}
	fmt.Printf("frame 0: %d keypoints; matches sequential reference: %v\n",
		len(got), len(got) == len(want.Keypoints))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sift example:", err)
	os.Exit(1)
}
