// Wavefront example: the paper's §III motivating case — H.264-style
// intra-frame prediction, where every sub-block depends on its left and top
// neighbours. The program never orders the blocks; the dependency analyzer
// derives the diagonal wavefront from the offset fetch coordinates, and the
// instrumentation shows all N*N blocks ran as independent instances.
//
// Run with:
//
//	go run ./examples/wavefront -blocks 32 -frames 4 -workers 4
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/workloads"
)

func main() {
	blocks := flag.Int("blocks", 32, "blocks per frame edge (NxN total)")
	frames := flag.Int("frames", 4, "frames to process")
	workers := flag.Int("workers", 4, "worker threads")
	flag.Parse()

	cfg := p2g.WavefrontConfig{Blocks: *blocks, Frames: *frames, Seed: 11}
	node, err := p2g.NewNode(p2g.Wavefront(cfg), p2g.Options{Workers: *workers})
	if err != nil {
		fail(err)
	}
	report, err := node.Run()
	if err != nil {
		fail(err)
	}
	fmt.Printf("intra-predicted %d frames of %dx%d blocks with %d workers in %v\n",
		*frames, *blocks, *blocks, *workers, report.Wall)
	fmt.Print(report.Table())

	// Verify against the raster-order sequential reference.
	in, err := node.Snapshot("input", 0)
	if err != nil {
		fail(err)
	}
	frame := make([][]int32, *blocks)
	for x := range frame {
		frame[x] = make([]int32, *blocks)
		for y := range frame[x] {
			frame[x][y] = in.At(x, y).Int32()
		}
	}
	want := workloads.WavefrontSequential(frame)
	pred, err := node.Snapshot("pred", 0)
	if err != nil {
		fail(err)
	}
	exact := true
	for x := 0; x < *blocks; x++ {
		for y := 0; y < *blocks; y++ {
			if pred.At(x+1, y+1).Int32() != want[x][y] {
				exact = false
			}
		}
	}
	fmt.Printf("reconstruction matches the sequential raster-order reference: %v\n", exact)
	fmt.Println("(no kernel ordered the blocks — the analyzer found the wavefront)")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wavefront example:", err)
	os.Exit(1)
}
