package core

import "repro/internal/field"

// Builder assembles a Program through a fluent interface. It is the Go-native
// front-end to P2G, mirroring the kernel language one statement at a time:
//
//	b := core.NewBuilder("mulsum")
//	b.Field("m_data", field.Int32, 1, true)
//	b.Field("p_data", field.Int32, 1, true)
//	b.Kernel("mul2").Age("a").Index("x").
//		Local("value", field.Int32, 0).
//		Fetch("value", "m_data", core.AgeVar(0), core.Idx("x")).
//		Store("p_data", core.AgeVar(0), core.Idx("x"), "value").
//		Body(func(c *core.Ctx) error {
//			c.SetInt32("value", c.Int32("value")*2)
//			return nil
//		})
//	prog, err := b.Build()
//
// Build validates the program; all structural errors surface there rather
// than panicking mid-construction.
type Builder struct {
	prog Program
}

// NewBuilder starts a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{prog: Program{Name: name}}
}

// Field declares a global field and returns the builder for chaining.
func (b *Builder) Field(name string, kind field.Kind, rank int, aged bool) *Builder {
	b.prog.Fields = append(b.prog.Fields, &FieldDecl{Name: name, Kind: kind, Rank: rank, Aged: aged})
	return b
}

// Timer declares a global timer.
func (b *Builder) Timer(name string) *Builder {
	b.prog.Timers = append(b.prog.Timers, name)
	return b
}

// Kernel starts a kernel declaration.
func (b *Builder) Kernel(name string) *KernelBuilder {
	k := &KernelDecl{Name: name}
	b.prog.Kernels = append(b.prog.Kernels, k)
	return &KernelBuilder{k: k}
}

// Build validates the assembled program and returns it.
func (b *Builder) Build() (*Program, error) {
	p := b.prog // shallow copy; declarations are shared intentionally
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// KernelBuilder assembles one kernel declaration.
type KernelBuilder struct {
	k *KernelDecl
}

// Age declares the kernel's age variable.
func (kb *KernelBuilder) Age(name string) *KernelBuilder {
	kb.k.AgeVar = name
	return kb
}

// Index declares one or more index variables.
func (kb *KernelBuilder) Index(names ...string) *KernelBuilder {
	kb.k.IndexVars = append(kb.k.IndexVars, names...)
	return kb
}

// Local declares a kernel-scope local; rank 0 is a scalar, rank >= 1 a local
// array.
func (kb *KernelBuilder) Local(name string, kind field.Kind, rank int) *KernelBuilder {
	kb.k.Locals = append(kb.k.Locals, LocalDecl{Name: name, Kind: kind, Rank: rank})
	return kb
}

// Fetch declares an element fetch: local = fieldName(age)[idx...].
func (kb *KernelBuilder) Fetch(local, fieldName string, age AgeExpr, idx ...IndexSpec) *KernelBuilder {
	if idx == nil {
		idx = []IndexSpec{}
	}
	kb.k.Fetches = append(kb.k.Fetches, FetchStmt{Local: local, Field: fieldName, Age: age, Index: idx})
	return kb
}

// FetchAll declares a whole-field fetch: local = fieldName(age).
func (kb *KernelBuilder) FetchAll(local, fieldName string, age AgeExpr) *KernelBuilder {
	kb.k.Fetches = append(kb.k.Fetches, FetchStmt{Local: local, Field: fieldName, Age: age})
	return kb
}

// Store declares an element store: fieldName(age)[idx...] = local.
func (kb *KernelBuilder) Store(fieldName string, age AgeExpr, idx []IndexSpec, local string) *KernelBuilder {
	if idx == nil {
		idx = []IndexSpec{}
	}
	kb.k.Stores = append(kb.k.Stores, StoreStmt{Field: fieldName, Age: age, Index: idx, Local: local})
	return kb
}

// StoreAll declares a whole-field store: fieldName(age) = local.
func (kb *KernelBuilder) StoreAll(fieldName string, age AgeExpr, local string) *KernelBuilder {
	kb.k.Stores = append(kb.k.Stores, StoreStmt{Field: fieldName, Age: age, Local: local})
	return kb
}

// Body installs the kernel body and returns the underlying declaration.
func (kb *KernelBuilder) Body(fn func(*Ctx) error) *KernelBuilder {
	kb.k.Body = fn
	return kb
}

// Decl returns the kernel declaration under construction.
func (kb *KernelBuilder) Decl() *KernelDecl { return kb.k }
