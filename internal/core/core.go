// Package core defines the P2G program model: field and kernel declarations,
// fetch and store statements over aged multi-dimensional fields, and the
// execution context handed to kernel bodies.
//
// A Program is a declarative description of a dataflow computation. Kernels
// never run in the order they are declared; the runtime's dependency analyzer
// derives all parallelism — data parallelism from the index variables of
// element fetches, task parallelism from the field-mediated producer/consumer
// relationships — exactly as the paper's low-level scheduler does.
//
// Programs are built either through the Builder in this package (the "native
// Go" front-end, analogous to the paper's compiled C++ kernels) or compiled
// from kernel-language source by package lang.
package core

import (
	"fmt"

	"repro/internal/field"
)

// FieldDecl declares a global field: its name, element kind, rank
// (dimensionality) and whether it is aged. Aged fields carry an extra
// generation dimension that lets cyclic programs keep write-once semantics.
type FieldDecl struct {
	Name string
	Kind field.Kind
	Rank int
	Aged bool
}

// AgeExpr is an age coordinate in a fetch or store statement: either the
// kernel's age variable plus a constant offset (`a`, `a+1`) or an absolute
// age (`0`).
type AgeExpr struct {
	// HasVar indicates the expression references the kernel's age variable.
	HasVar bool
	// Offset is added to the age variable, or is the absolute age if
	// HasVar is false.
	Offset int
}

// AgeVar returns the age expression `a+off` over the kernel's age variable.
func AgeVar(off int) AgeExpr { return AgeExpr{HasVar: true, Offset: off} }

// AgeAt returns the absolute age expression `age`.
func AgeAt(age int) AgeExpr { return AgeExpr{Offset: age} }

// Eval resolves the expression for a kernel instance running at age a.
func (e AgeExpr) Eval(a int) int {
	if e.HasVar {
		return a + e.Offset
	}
	return e.Offset
}

// String renders the expression in kernel-language syntax.
func (e AgeExpr) String() string {
	if !e.HasVar {
		return fmt.Sprintf("%d", e.Offset)
	}
	switch {
	case e.Offset == 0:
		return "a"
	case e.Offset > 0:
		return fmt.Sprintf("a+%d", e.Offset)
	default:
		return fmt.Sprintf("a-%d", -e.Offset)
	}
}

// IndexKind discriminates the forms an index coordinate can take.
type IndexKind uint8

// Index coordinate forms.
const (
	// IndexVarKind binds the coordinate to one of the kernel's index
	// variables; the kernel is instantiated once per value in range.
	IndexVarKind IndexKind = iota
	// IndexLitKind pins the coordinate to a constant.
	IndexLitKind
	// IndexAllKind spans the whole dimension: the fetch delivers a slab
	// (e.g. one macroblock row per instance). Slab fetches are satisfied
	// when the generation completes, like whole-field fetches, and are
	// only legal in fetch statements.
	IndexAllKind
)

// IndexSpec is one coordinate of an element fetch or store. Var coordinates
// may carry a constant offset (`x+1`), which is how wavefront dependencies —
// the paper's H.264 intra-prediction motivation in §III — are expressed:
// a kernel at (x, y) fetching pred(a)[x][y+1 - 1] etc.
type IndexSpec struct {
	Kind IndexKind
	Var  string
	Lit  int
	Off  int // constant offset added to Var coordinates
}

// Idx returns an index coordinate bound to index variable name.
func Idx(name string) IndexSpec { return IndexSpec{Kind: IndexVarKind, Var: name} }

// IdxOff returns an index coordinate bound to an index variable plus a
// constant offset (`x+1`).
func IdxOff(name string, off int) IndexSpec {
	return IndexSpec{Kind: IndexVarKind, Var: name, Off: off}
}

// Lit returns a constant index coordinate.
func Lit(v int) IndexSpec { return IndexSpec{Kind: IndexLitKind, Lit: v} }

// All returns a slab coordinate spanning the whole dimension.
func All() IndexSpec { return IndexSpec{Kind: IndexAllKind} }

// String renders the coordinate in kernel-language syntax.
func (s IndexSpec) String() string {
	switch s.Kind {
	case IndexVarKind:
		switch {
		case s.Off > 0:
			return fmt.Sprintf("%s+%d", s.Var, s.Off)
		case s.Off < 0:
			return fmt.Sprintf("%s-%d", s.Var, -s.Off)
		default:
			return s.Var
		}
	case IndexAllKind:
		return ""
	default:
		return fmt.Sprintf("%d", s.Lit)
	}
}

// Eval resolves the coordinate given the instance's index-variable bindings.
func (s IndexSpec) Eval(index map[string]int) int {
	if s.Kind == IndexLitKind {
		return s.Lit
	}
	return index[s.Var] + s.Off
}

// FetchStmt declares that a kernel reads from a field before its body runs.
// A nil Index fetches the whole field generation into an array local (gated
// on the generation being complete); otherwise each coordinate selects a
// single element (gated on that element being written).
type FetchStmt struct {
	Local string
	Field string
	Age   AgeExpr
	Index []IndexSpec
}

// Whole reports whether the statement fetches the entire field generation.
func (f FetchStmt) Whole() bool { return f.Index == nil }

// Slab reports whether the statement fetches a sub-slab (at least one All
// coordinate). Like whole-field fetches, slabs are gated on generation
// completeness.
func (f FetchStmt) Slab() bool {
	for _, s := range f.Index {
		if s.Kind == IndexAllKind {
			return true
		}
	}
	return false
}

// SlabRank counts the All coordinates — the rank of the local array a slab
// fetch delivers.
func (f FetchStmt) SlabRank() int {
	n := 0
	for _, s := range f.Index {
		if s.Kind == IndexAllKind {
			n++
		}
	}
	return n
}

// String renders the statement in kernel-language syntax.
func (f FetchStmt) String() string {
	s := fmt.Sprintf("fetch %s = %s(%s)", f.Local, f.Field, f.Age)
	for _, ix := range f.Index {
		s += "[" + ix.String() + "]"
	}
	return s + ";"
}

// StoreStmt declares that a kernel writes a local to a field after its body
// runs. A nil Index stores an array local as the entire generation; otherwise
// the coordinates select a single element. The store fires only if the local
// was bound during the instance (this is how alternate code paths and
// end-of-stream conditions suppress output).
type StoreStmt struct {
	Field string
	Age   AgeExpr
	Index []IndexSpec
	Local string
}

// Whole reports whether the statement stores the entire field generation.
func (s StoreStmt) Whole() bool { return s.Index == nil }

// Slab reports whether the statement stores a sub-slab (at least one All
// coordinate): the local array covers the free dimensions, fixed coordinates
// pin the rest. Slab stores complete in one bulk write, like whole-field
// stores of the covered region.
func (s StoreStmt) Slab() bool {
	for _, ix := range s.Index {
		if ix.Kind == IndexAllKind {
			return true
		}
	}
	return false
}

// SlabRank counts the All coordinates — the rank of the local array a slab
// store consumes.
func (s StoreStmt) SlabRank() int {
	n := 0
	for _, ix := range s.Index {
		if ix.Kind == IndexAllKind {
			n++
		}
	}
	return n
}

// String renders the statement in kernel-language syntax.
func (s StoreStmt) String() string {
	str := fmt.Sprintf("store %s(%s)", s.Field, s.Age)
	for _, ix := range s.Index {
		str += "[" + ix.String() + "]"
	}
	return str + " = " + s.Local + ";"
}

// LocalDecl declares a kernel-scope local: a scalar (Rank 0) or a local array
// of the given rank.
type LocalDecl struct {
	Name string
	Kind field.Kind
	Rank int
}

// KernelDecl declares a kernel: its parameters (age and index variables),
// locals, fetch and store statements, and the body that transforms fetched
// locals into stored locals.
type KernelDecl struct {
	Name string
	// AgeVar is the kernel's age parameter name, or "" for a run-once
	// kernel (like `init` in the paper's examples).
	AgeVar string
	// IndexVars are the kernel's index parameters, in declaration order.
	// Each must be bound to a field dimension by at least one element
	// fetch, which defines its range.
	IndexVars []string
	Locals    []LocalDecl
	Fetches   []FetchStmt
	Stores    []StoreStmt
	// Body transforms fetched locals into stored locals. A nil body is a
	// pure data-movement kernel.
	Body func(*Ctx) error
}

// Source reports whether the kernel is a source: it has an age variable but
// no fetches, so it self-schedules sequentially by age until it stops
// producing (the paper's read/splitYUV kernel).
func (k *KernelDecl) Source() bool { return k.AgeVar != "" && len(k.Fetches) == 0 }

// RunOnce reports whether the kernel has no age variable and therefore runs
// exactly once (the paper's init kernels).
func (k *KernelDecl) RunOnce() bool { return k.AgeVar == "" }

// Local returns the declaration of the named local, or nil.
func (k *KernelDecl) Local(name string) *LocalDecl {
	for i := range k.Locals {
		if k.Locals[i].Name == name {
			return &k.Locals[i]
		}
	}
	return nil
}

// Program is a complete P2G program: fields, kernels and global timers.
type Program struct {
	Name    string
	Fields  []*FieldDecl
	Kernels []*KernelDecl
	Timers  []string
}

// Field returns the named field declaration, or nil.
func (p *Program) Field(name string) *FieldDecl {
	for _, f := range p.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Kernel returns the named kernel declaration, or nil.
func (p *Program) Kernel(name string) *KernelDecl {
	for _, k := range p.Kernels {
		if k.Name == name {
			return k
		}
	}
	return nil
}

// Producers returns the kernels that store to the named field, with the age
// expressions they store at.
func (p *Program) Producers(fieldName string) []ProducerEdge {
	var out []ProducerEdge
	for _, k := range p.Kernels {
		for i := range k.Stores {
			if k.Stores[i].Field == fieldName {
				out = append(out, ProducerEdge{Kernel: k, Store: &k.Stores[i]})
			}
		}
	}
	return out
}

// Consumers returns the kernels that fetch from the named field, with the
// fetch statements involved.
func (p *Program) Consumers(fieldName string) []ConsumerEdge {
	var out []ConsumerEdge
	for _, k := range p.Kernels {
		for i := range k.Fetches {
			if k.Fetches[i].Field == fieldName {
				out = append(out, ConsumerEdge{Kernel: k, Fetch: &k.Fetches[i]})
			}
		}
	}
	return out
}

// ProducerEdge links a kernel to one of its store statements.
type ProducerEdge struct {
	Kernel *KernelDecl
	Store  *StoreStmt
}

// ConsumerEdge links a kernel to one of its fetch statements.
type ConsumerEdge struct {
	Kernel *KernelDecl
	Fetch  *FetchStmt
}
