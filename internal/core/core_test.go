package core

import (
	"strings"
	"testing"

	"repro/internal/field"
)

// mulSumProgram builds the paper's figure 5 program (init, mul2, plus5,
// print) with Go bodies. Shared by several tests.
func mulSumProgram(t testing.TB) *Program {
	t.Helper()
	b := NewBuilder("mulsum")
	b.Field("m_data", field.Int32, 1, true)
	b.Field("p_data", field.Int32, 1, true)

	b.Kernel("init").
		Local("values", field.Int32, 1).
		StoreAll("m_data", AgeAt(0), "values").
		Body(func(c *Ctx) error {
			vs := c.Array("values")
			for i := 0; i < 5; i++ {
				vs.Put(field.Int32Val(int32(i+10)), i)
			}
			return nil
		})

	b.Kernel("mul2").Age("a").Index("x").
		Local("value", field.Int32, 0).
		Fetch("value", "m_data", AgeVar(0), Idx("x")).
		Store("p_data", AgeVar(0), []IndexSpec{Idx("x")}, "value").
		Body(func(c *Ctx) error {
			c.SetInt32("value", c.Int32("value")*2)
			return nil
		})

	b.Kernel("plus5").Age("a").Index("x").
		Local("value", field.Int32, 0).
		Fetch("value", "p_data", AgeVar(0), Idx("x")).
		Store("m_data", AgeVar(1), []IndexSpec{Idx("x")}, "value").
		Body(func(c *Ctx) error {
			c.SetInt32("value", c.Int32("value")+5)
			return nil
		})

	b.Kernel("print").Age("a").
		Local("m", field.Int32, 1).
		Local("p", field.Int32, 1).
		FetchAll("m", "m_data", AgeVar(0)).
		FetchAll("p", "p_data", AgeVar(0)).
		Body(func(c *Ctx) error {
			m, p := c.Array("m"), c.Array("p")
			var sb strings.Builder
			for i := 0; i < m.Extent(0); i++ {
				sb.WriteString(m.At(i).String())
				sb.WriteByte(' ')
			}
			sb.WriteByte('\n')
			for i := 0; i < p.Extent(0); i++ {
				sb.WriteString(p.At(i).String())
				sb.WriteByte(' ')
			}
			sb.WriteByte('\n')
			c.Printf("%s", sb.String())
			return nil
		})

	prog, err := b.Build()
	if err != nil {
		t.Fatalf("building mulsum: %v", err)
	}
	return prog
}

func TestBuilderBuildsFig5Program(t *testing.T) {
	p := mulSumProgram(t)
	if p.Name != "mulsum" || len(p.Fields) != 2 || len(p.Kernels) != 4 {
		t.Fatalf("program shape: %d fields, %d kernels", len(p.Fields), len(p.Kernels))
	}
	if p.Field("m_data") == nil || p.Field("nope") != nil {
		t.Error("Field lookup")
	}
	if p.Kernel("mul2") == nil || p.Kernel("nope") != nil {
		t.Error("Kernel lookup")
	}
	if !p.Kernel("init").RunOnce() || p.Kernel("mul2").RunOnce() {
		t.Error("RunOnce classification")
	}
	if p.Kernel("init").Source() || p.Kernel("mul2").Source() {
		t.Error("Source classification (neither is a source)")
	}
	if p.Kernel("mul2").Local("value") == nil || p.Kernel("mul2").Local("zzz") != nil {
		t.Error("Local lookup")
	}
}

func TestProducersConsumers(t *testing.T) {
	p := mulSumProgram(t)
	prods := p.Producers("m_data")
	if len(prods) != 2 { // init and plus5
		t.Fatalf("m_data producers = %d, want 2", len(prods))
	}
	cons := p.Consumers("m_data")
	if len(cons) != 2 { // mul2 and print
		t.Fatalf("m_data consumers = %d, want 2", len(cons))
	}
	if len(p.Producers("nope")) != 0 || len(p.Consumers("nope")) != 0 {
		t.Error("unknown field should have no edges")
	}
}

func TestAgeExpr(t *testing.T) {
	if AgeVar(0).Eval(3) != 3 || AgeVar(1).Eval(3) != 4 || AgeAt(0).Eval(3) != 0 {
		t.Error("Eval")
	}
	cases := map[AgeExpr]string{
		AgeVar(0):  "a",
		AgeVar(2):  "a+2",
		AgeVar(-1): "a-1",
		AgeAt(7):   "7",
	}
	for e, want := range cases {
		if e.String() != want {
			t.Errorf("%#v.String() = %q, want %q", e, e.String(), want)
		}
	}
}

func TestIndexSpec(t *testing.T) {
	if Idx("x").String() != "x" || Lit(3).String() != "3" {
		t.Error("String")
	}
	idx := map[string]int{"x": 9}
	if Idx("x").Eval(idx) != 9 || Lit(3).Eval(idx) != 3 {
		t.Error("Eval")
	}
}

func TestStatementStrings(t *testing.T) {
	f := FetchStmt{Local: "v", Field: "m", Age: AgeVar(0), Index: []IndexSpec{Idx("x")}}
	if f.String() != "fetch v = m(a)[x];" {
		t.Errorf("fetch string %q", f.String())
	}
	fw := FetchStmt{Local: "v", Field: "m", Age: AgeAt(0)}
	if fw.String() != "fetch v = m(0);" || !fw.Whole() {
		t.Errorf("whole fetch string %q", fw.String())
	}
	s := StoreStmt{Field: "m", Age: AgeVar(1), Index: []IndexSpec{Idx("x")}, Local: "v"}
	if s.String() != "store m(a+1)[x] = v;" || s.Whole() {
		t.Errorf("store string %q", s.String())
	}
}

func TestValidateErrors(t *testing.T) {
	type tc struct {
		name  string
		build func() *Builder
		want  string
	}
	base := func() *Builder {
		b := NewBuilder("t")
		b.Field("f", field.Int32, 1, true)
		return b
	}
	cases := []tc{
		{"no kernels", func() *Builder { return base() }, "no kernels"},
		{"dup field", func() *Builder {
			b := base()
			b.Field("f", field.Int32, 1, true)
			b.Kernel("k").Body(nil)
			return b
		}, "duplicate field"},
		{"bad rank", func() *Builder {
			b := NewBuilder("t")
			b.Field("f", field.Int32, 0, true)
			b.Kernel("k")
			return b
		}, "rank must be >= 1"},
		{"bad kind", func() *Builder {
			b := NewBuilder("t")
			b.Field("f", field.Invalid, 1, true)
			b.Kernel("k")
			return b
		}, "invalid element kind"},
		{"dup kernel", func() *Builder {
			b := base()
			b.Kernel("k")
			b.Kernel("k")
			return b
		}, "duplicate kernel"},
		{"dup timer", func() *Builder {
			b := base()
			b.Timer("t1").Timer("t1")
			b.Kernel("k")
			return b
		}, "duplicate timer"},
		{"unknown field in fetch", func() *Builder {
			b := base()
			b.Kernel("k").Age("a").Index("x").Local("v", field.Int32, 0).
				Fetch("v", "zzz", AgeVar(0), Idx("x"))
			return b
		}, "unknown field"},
		{"unknown local in fetch", func() *Builder {
			b := base()
			b.Kernel("k").Age("a").Index("x").
				Fetch("v", "f", AgeVar(0), Idx("x"))
			return b
		}, "unknown local"},
		{"unknown index var", func() *Builder {
			b := base()
			b.Kernel("k").Age("a").Local("v", field.Int32, 0).
				Fetch("v", "f", AgeVar(0), Idx("x"))
			return b
		}, "unknown index variable"},
		{"future fetch", func() *Builder {
			b := base()
			b.Kernel("k").Age("a").Index("x").Local("v", field.Int32, 0).
				Fetch("v", "f", AgeVar(1), Idx("x"))
			return b
		}, "future age"},
		{"past store", func() *Builder {
			b := base()
			b.Kernel("k").Age("a").Index("x").Local("v", field.Int32, 0).
				Fetch("v", "f", AgeVar(0), Idx("x")).
				Store("f", AgeVar(-1), []IndexSpec{Idx("x")}, "v")
			return b
		}, "past age"},
		{"rank mismatch index", func() *Builder {
			b := base()
			b.Kernel("k").Age("a").Index("x").Local("v", field.Int32, 0).
				Fetch("v", "f", AgeVar(0), Idx("x"), Idx("x"))
			return b
		}, "index coordinates"},
		{"whole fetch rank mismatch", func() *Builder {
			b := base()
			b.Kernel("k").Age("a").Local("v", field.Int32, 2).
				FetchAll("v", "f", AgeVar(0))
			return b
		}, "whole-field fetch"},
		{"element fetch into array", func() *Builder {
			b := base()
			b.Kernel("k").Age("a").Index("x").Local("v", field.Int32, 1).
				Fetch("v", "f", AgeVar(0), Idx("x"))
			return b
		}, "element fetch into array local"},
		{"kind mismatch", func() *Builder {
			b := base()
			b.Kernel("k").Age("a").Index("x").Local("v", field.Float64, 0).
				Fetch("v", "f", AgeVar(0), Idx("x"))
			return b
		}, "incompatible"},
		{"unbound index var", func() *Builder {
			b := base()
			b.Kernel("k").Age("a").Index("x").Local("v", field.Int32, 0).
				Store("f", AgeVar(0), []IndexSpec{Idx("x")}, "v")
			return b
		}, "not bound by any offset-free element fetch"},
		{"age var without decl", func() *Builder {
			b := base()
			b.Kernel("k").Index("x").Local("v", field.Int32, 0).
				Fetch("v", "f", AgeVar(0), Idx("x"))
			return b
		}, "age variable but kernel has none"},
		{"non-aged field aged access", func() *Builder {
			b := NewBuilder("t")
			b.Field("f", field.Int32, 1, false)
			b.Kernel("k").Age("a").Index("x").Local("v", field.Int32, 0).
				Fetch("v", "f", AgeVar(0), Idx("x"))
			return b
		}, "must be accessed at age 0"},
		{"negative absolute age", func() *Builder {
			b := base()
			b.Kernel("k").Local("v", field.Int32, 1).
				FetchAll("v", "f", AgeAt(-1))
			return b
		}, "negative absolute age"},
		{"negative index literal", func() *Builder {
			b := base()
			b.Kernel("k").Age("a").Index("x").Local("v", field.Int32, 0).
				Fetch("v", "f", AgeVar(0), Idx("x")).
				Store("f", AgeVar(1), []IndexSpec{Lit(-2)}, "v")
			return b
		}, "negative index literal"},
		{"name collision", func() *Builder {
			b := base()
			b.Kernel("k").Age("a").Index("a")
			return b
		}, "collides"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := c.build().Build()
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestValidateAcceptsAnyKind(t *testing.T) {
	b := NewBuilder("t")
	b.Field("f", field.Any, 1, true)
	b.Kernel("k").Age("a").Index("x").Local("v", field.Int32, 0).
		Fetch("v", "f", AgeVar(0), Idx("x"))
	if _, err := b.Build(); err != nil {
		t.Fatalf("Any field should accept any local kind: %v", err)
	}
}

func TestCtxBasics(t *testing.T) {
	p := mulSumProgram(t)
	k := p.Kernel("mul2")
	var out strings.Builder
	c := NewCtx(k, 3, map[string]int{"x": 2}, nil, &out)
	if c.Kernel() != k || c.Age() != 3 || c.Index("x") != 2 {
		t.Error("ctx metadata")
	}
	if c.Bound("value") {
		t.Error("locals start unbound")
	}
	c.SetInt32("value", 21)
	if !c.Bound("value") || c.Int32("value") != 21 {
		t.Error("Set binds")
	}
	c.Printf("age=%d", c.Age())
	if out.String() != "age=3" {
		t.Errorf("Printf output %q", out.String())
	}
	if c.Stopped() {
		t.Error("not stopped yet")
	}
	c.Stop()
	if !c.Stopped() {
		t.Error("Stop")
	}
	if c.Now().IsZero() {
		t.Error("Now without timers should fall back to wall clock")
	}
	if _, err := c.Expired("t", 0); err == nil {
		t.Error("Expired without timers should error")
	}
}

func TestCtxPanicsOnUnknownNames(t *testing.T) {
	p := mulSumProgram(t)
	c := NewCtx(p.Kernel("mul2"), 0, map[string]int{"x": 0}, nil, nil)
	for name, fn := range map[string]func(){
		"unknown index": func() { c.Index("zzz") },
		"unknown local": func() { c.Get("zzz") },
		"set unknown":   func() { c.Set("zzz", field.Int32Val(1)) },
		"array scalar":  func() { c.Array("value") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCtxArrayBinds(t *testing.T) {
	p := mulSumProgram(t)
	c := NewCtx(p.Kernel("init"), 0, nil, nil, nil)
	if c.Bound("values") {
		t.Error("array local starts unbound")
	}
	a := c.Array("values")
	if !c.Bound("values") {
		t.Error("Array access binds")
	}
	a.Put(field.Int32Val(1), 0)
	if c.Array("values").At(0).Int32() != 1 {
		t.Error("array mutation visible through ctx")
	}
}

func TestCtxTypedAccessors(t *testing.T) {
	b := NewBuilder("t")
	b.Field("f", field.Any, 1, true)
	kb := b.Kernel("k").
		Local("i", field.Int64, 0).
		Local("f64", field.Float64, 0).
		Local("o", field.Any, 0)
	_ = kb
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := NewCtx(p.Kernel("k"), 0, nil, nil, nil)
	c.SetInt64("i", 1<<40)
	if c.Int64("i") != 1<<40 {
		t.Error("int64 accessor")
	}
	c.SetFloat64("f64", 2.5)
	if c.Float64("f64") != 2.5 {
		t.Error("float64 accessor")
	}
	obj := &struct{ x int }{1}
	c.SetObj("o", obj)
	if c.Obj("o") != obj {
		t.Error("obj accessor")
	}
}
