package core

import (
	"fmt"
	"io"
	"time"

	"repro/internal/deadline"
	"repro/internal/field"
)

// Ctx is the execution context of one kernel instance. The runtime populates
// it with the instance's age, index-variable bindings and fetched locals,
// runs the kernel body, and then applies the declared stores for every local
// the body left bound.
//
// Binding rules (what makes a declared store fire):
//   - a local fetched by a fetch statement is bound;
//   - a scalar local becomes bound when the body calls Set (or a typed
//     setter);
//   - an array local becomes bound the first time the body accesses it with
//     Array (mutating a local array implies producing it).
//
// Leaving a store's source local unbound suppresses that store, which is how
// kernels take alternate code paths (deadline timeouts, end of stream).
//
// A Ctx is sized once for its kernel and can be reused across instances via
// Reset, which is how the runtime's pooled dispatch path avoids per-instance
// allocation. Locals are kept in slices parallel to the kernel's Locals
// declaration; lookups by name are linear scans over the handful of locals a
// kernel declares, which beats map construction on the hot path.
type Ctx struct {
	kernel *KernelDecl
	age    int
	// coords holds the instance's index-variable values in IndexVars order
	// (aliased from the scheduler's instance state, never mutated here).
	coords []int
	vals   []field.Value
	bound  []bool
	// inited marks locals whose default value exists; array locals are
	// materialized lazily so a fetched array never pays for a placeholder.
	inited []bool
	// arrs caches one reusable Array per array local. The cache survives
	// Reset: each instance's array local is the same backing storage,
	// reshaped in place (default locals via ResetEmpty, fetch destinations
	// via SnapshotInto/FetchSlice). This is safe under the documented Ctx
	// contract — never retain values out of a context that will be reset —
	// and is what makes steady-state whole-field fetches allocation-free.
	arrs   []*field.Array
	stop   bool
	timers *deadline.TimerSet
	out    io.Writer
}

// NewReusableCtx allocates a context sized for kernel k. It is the runtime's
// pooled-dispatch constructor: call Reset before each instance, and never
// retain values out of a context that will be reset.
func NewReusableCtx(k *KernelDecl, timers *deadline.TimerSet, out io.Writer) *Ctx {
	return &Ctx{
		kernel: k,
		vals:   make([]field.Value, len(k.Locals)),
		bound:  make([]bool, len(k.Locals)),
		inited: make([]bool, len(k.Locals)),
		arrs:   make([]*field.Array, len(k.Locals)),
		timers: timers,
		out:    out,
	}
}

// Reset prepares the context for a new instance of the same kernel at the
// given age and index coordinates (in IndexVars order; the slice is aliased,
// not copied). Every local becomes unbound and its previous value is
// released, so a pooled Ctx cannot leak values across instances.
func (c *Ctx) Reset(age int, coords []int) {
	c.age = age
	c.coords = coords
	c.stop = false
	for i := range c.vals {
		c.vals[i] = field.Value{}
		c.bound[i] = false
		c.inited[i] = false
	}
}

// NewCtx assembles a context for one instance from an index-variable map.
// The runtime's hot path uses NewReusableCtx/Reset instead; this constructor
// remains for program transforms (Fuse) and for tests and alternative
// runtimes that drive kernel bodies directly.
func NewCtx(k *KernelDecl, age int, index map[string]int, timers *deadline.TimerSet, out io.Writer) *Ctx {
	c := NewReusableCtx(k, timers, out)
	c.age = age
	if len(k.IndexVars) > 0 {
		coords := make([]int, len(k.IndexVars))
		for i, v := range k.IndexVars {
			coords[i] = index[v]
		}
		c.coords = coords
	}
	return c
}

// localIndex returns the position of the named local in the kernel's Locals
// declaration, or -1.
func (c *Ctx) localIndex(name string) int {
	for i := range c.kernel.Locals {
		if c.kernel.Locals[i].Name == name {
			return i
		}
	}
	return -1
}

// Kernel returns the kernel declaration this instance executes.
func (c *Ctx) Kernel() *KernelDecl { return c.kernel }

// Age returns the instance's age (0 for run-once kernels).
func (c *Ctx) Age() int { return c.age }

// Index returns the value of the named index variable. It panics on unknown
// variables, which indicates a program bug.
func (c *Ctx) Index(name string) int {
	for i, v := range c.kernel.IndexVars {
		if v == name {
			if i < len(c.coords) {
				return c.coords[i]
			}
			return 0
		}
	}
	panic(fmt.Sprintf("p2g: kernel %s has no index variable %q", c.kernel.Name, name))
}

// Get returns the named local's current value. Unknown locals panic.
func (c *Ctx) Get(name string) field.Value {
	i := c.localIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("p2g: kernel %s has no local %q", c.kernel.Name, name))
	}
	return c.get(i)
}

// get returns the local at position i, materializing its default (zero
// scalar or empty array) on first access. Array defaults reuse the context's
// cached backing storage.
func (c *Ctx) get(i int) field.Value {
	if !c.inited[i] {
		l := &c.kernel.Locals[i]
		if l.Rank > 0 {
			a := c.arrs[i]
			if a == nil {
				a = field.NewArray(l.Kind, make([]int, l.Rank)...)
				c.arrs[i] = a
			} else {
				a.ResetEmpty(l.Kind, l.Rank)
			}
			c.vals[i] = field.ArrayVal(a)
		} else {
			c.vals[i] = field.Zero(l.Kind)
		}
		c.inited[i] = true
	}
	return c.vals[i]
}

// LocalValue returns the local at position i in the kernel's Locals
// declaration, materializing its default like Get, without binding it. It is
// the by-index read hook for compiled kernel bodies (the lang bytecode VM),
// which resolve locals to positions at compile time and skip the name scan.
func (c *Ctx) LocalValue(i int) field.Value { return c.get(i) }

// SetLocalValue assigns the local at position i and marks it bound — the
// by-index counterpart of Set for compiled kernel bodies.
func (c *Ctx) SetLocalValue(i int, v field.Value) {
	c.vals[i] = v
	c.inited[i] = true
	c.bound[i] = true
}

// LocalArray returns the array local at position i and marks it bound — the
// by-index counterpart of Array for compiled kernel bodies.
func (c *Ctx) LocalArray(i int) *field.Array {
	v := c.get(i)
	if !v.IsArray() {
		panic(fmt.Sprintf("p2g: local %q of kernel %s is not an array", c.kernel.Locals[i].Name, c.kernel.Name))
	}
	c.bound[i] = true
	return v.Array()
}

// Coord returns the index-variable value at position i in IndexVars order,
// or 0 when the runtime bound fewer coordinates — the by-index counterpart of
// Index for compiled kernel bodies.
func (c *Ctx) Coord(i int) int {
	if i < len(c.coords) {
		return c.coords[i]
	}
	return 0
}

// Set assigns the named local and marks it bound.
func (c *Ctx) Set(name string, v field.Value) {
	i := c.localIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("p2g: kernel %s has no local %q", c.kernel.Name, name))
	}
	c.vals[i] = v
	c.inited[i] = true
	c.bound[i] = true
}

// BindFetched is used by the runtime to install a fetched value; it binds the
// local like Set.
func (c *Ctx) BindFetched(name string, v field.Value) { c.Set(name, v) }

// FetchDest returns the reusable destination array for the named array local
// without initializing or binding it. The runtime fills it in place
// (SnapshotInto/FetchSlice overwrite kind, extents and contents) and then
// installs it with BindFetched, so steady-state whole-field and slab fetches
// reuse the same backing storage across instances.
func (c *Ctx) FetchDest(name string) *field.Array {
	i := c.localIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("p2g: kernel %s has no local %q", c.kernel.Name, name))
	}
	a := c.arrs[i]
	if a == nil {
		l := &c.kernel.Locals[i]
		rank := l.Rank
		if rank < 1 {
			rank = 1
		}
		a = field.NewArray(l.Kind, make([]int, rank)...)
		c.arrs[i] = a
	}
	return a
}

// Bound reports whether the named local has been bound in this instance.
func (c *Ctx) Bound(name string) bool {
	i := c.localIndex(name)
	return i >= 0 && c.bound[i]
}

// Int32 returns the named scalar local as int32.
func (c *Ctx) Int32(name string) int32 { return c.Get(name).Int32() }

// Int64 returns the named scalar local as int64.
func (c *Ctx) Int64(name string) int64 { return c.Get(name).Int64() }

// Float64 returns the named scalar local as float64.
func (c *Ctx) Float64(name string) float64 { return c.Get(name).Float64() }

// Obj returns the named Any local's payload.
func (c *Ctx) Obj(name string) any { return c.Get(name).Obj() }

// SetInt32 assigns an int32 scalar local.
func (c *Ctx) SetInt32(name string, v int32) { c.Set(name, field.Int32Val(v)) }

// SetInt64 assigns an int64 scalar local.
func (c *Ctx) SetInt64(name string, v int64) { c.Set(name, field.Int64Val(v)) }

// SetFloat64 assigns a float64 scalar local.
func (c *Ctx) SetFloat64(name string, v float64) { c.Set(name, field.Float64Val(v)) }

// SetObj assigns an Any scalar local.
func (c *Ctx) SetObj(name string, v any) { c.Set(name, field.AnyVal(v)) }

// Array returns the named array local for reading or in-place mutation and
// marks it bound (mutating a local array implies producing it).
func (c *Ctx) Array(name string) *field.Array {
	i := c.localIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("p2g: kernel %s has no local %q", c.kernel.Name, name))
	}
	v := c.get(i)
	if !v.IsArray() {
		panic(fmt.Sprintf("p2g: local %q of kernel %s is not an array", name, c.kernel.Name))
	}
	c.bound[i] = true
	return v.Array()
}

// Stop marks a source kernel as finished: no instance will be scheduled for
// the next age. Calling Stop from non-source kernels is allowed and ignored
// by the runtime.
func (c *Ctx) Stop() { c.stop = true }

// Stopped reports whether the body called Stop.
func (c *Ctx) Stopped() bool { return c.stop }

// Printf writes formatted output to the program's output stream (the kernel
// language's cout). Instances run in parallel; each Printf call is a single
// Write, so lines from different instances interleave but do not tear.
func (c *Ctx) Printf(format string, args ...any) {
	if c.out != nil {
		fmt.Fprintf(c.out, format, args...)
	}
}

// Now returns the current instant on the program's deadline clock.
func (c *Ctx) Now() time.Time {
	if c.timers == nil {
		return time.Now()
	}
	return c.timers.Now()
}

// ResetTimer records the current instant as the named global timer's
// reference point (`t1 = now`).
func (c *Ctx) ResetTimer(name string) {
	if c.timers != nil {
		c.timers.Reset(name)
	}
}

// Expired reports whether more than d has passed since the named timer's
// reference point (`now > t1 + d`). It returns false with an error for
// undeclared timers.
func (c *Ctx) Expired(name string, d time.Duration) (bool, error) {
	if c.timers == nil {
		return false, fmt.Errorf("p2g: program has no timers")
	}
	return c.timers.Expired(name, d)
}

// Timers exposes the underlying timer set (nil if the program declared no
// timers and the runtime did not install one).
func (c *Ctx) Timers() *deadline.TimerSet { return c.timers }
