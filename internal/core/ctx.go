package core

import (
	"fmt"
	"io"
	"time"

	"repro/internal/deadline"
	"repro/internal/field"
)

// Ctx is the execution context of one kernel instance. The runtime populates
// it with the instance's age, index-variable bindings and fetched locals,
// runs the kernel body, and then applies the declared stores for every local
// the body left bound.
//
// Binding rules (what makes a declared store fire):
//   - a local fetched by a fetch statement is bound;
//   - a scalar local becomes bound when the body calls Set (or a typed
//     setter);
//   - an array local becomes bound the first time the body accesses it with
//     Array (mutating a local array implies producing it).
//
// Leaving a store's source local unbound suppresses that store, which is how
// kernels take alternate code paths (deadline timeouts, end of stream).
type Ctx struct {
	kernel *KernelDecl
	age    int
	index  map[string]int
	vals   map[string]field.Value
	bound  map[string]bool
	stop   bool
	timers *deadline.TimerSet
	out    io.Writer
}

// NewCtx assembles a context for one instance. The runtime is the only
// expected caller, but the constructor is exported so tests and alternative
// runtimes can drive kernel bodies directly.
func NewCtx(k *KernelDecl, age int, index map[string]int, timers *deadline.TimerSet, out io.Writer) *Ctx {
	c := &Ctx{
		kernel: k,
		age:    age,
		index:  index,
		vals:   make(map[string]field.Value, len(k.Locals)),
		bound:  make(map[string]bool, len(k.Locals)),
		timers: timers,
		out:    out,
	}
	for _, l := range k.Locals {
		if l.Rank > 0 {
			c.vals[l.Name] = field.ArrayVal(field.NewArray(l.Kind, make([]int, l.Rank)...))
		} else {
			c.vals[l.Name] = field.Zero(l.Kind)
		}
	}
	return c
}

// Kernel returns the kernel declaration this instance executes.
func (c *Ctx) Kernel() *KernelDecl { return c.kernel }

// Age returns the instance's age (0 for run-once kernels).
func (c *Ctx) Age() int { return c.age }

// Index returns the value of the named index variable. It panics on unknown
// variables, which indicates a program bug.
func (c *Ctx) Index(name string) int {
	v, ok := c.index[name]
	if !ok {
		panic(fmt.Sprintf("p2g: kernel %s has no index variable %q", c.kernel.Name, name))
	}
	return v
}

// Get returns the named local's current value. Unknown locals panic.
func (c *Ctx) Get(name string) field.Value {
	v, ok := c.vals[name]
	if !ok {
		panic(fmt.Sprintf("p2g: kernel %s has no local %q", c.kernel.Name, name))
	}
	return v
}

// Set assigns the named local and marks it bound.
func (c *Ctx) Set(name string, v field.Value) {
	if _, ok := c.vals[name]; !ok {
		panic(fmt.Sprintf("p2g: kernel %s has no local %q", c.kernel.Name, name))
	}
	c.vals[name] = v
	c.bound[name] = true
}

// BindFetched is used by the runtime to install a fetched value; it binds the
// local like Set.
func (c *Ctx) BindFetched(name string, v field.Value) { c.Set(name, v) }

// Bound reports whether the named local has been bound in this instance.
func (c *Ctx) Bound(name string) bool { return c.bound[name] }

// Int32 returns the named scalar local as int32.
func (c *Ctx) Int32(name string) int32 { return c.Get(name).Int32() }

// Int64 returns the named scalar local as int64.
func (c *Ctx) Int64(name string) int64 { return c.Get(name).Int64() }

// Float64 returns the named scalar local as float64.
func (c *Ctx) Float64(name string) float64 { return c.Get(name).Float64() }

// Obj returns the named Any local's payload.
func (c *Ctx) Obj(name string) any { return c.Get(name).Obj() }

// SetInt32 assigns an int32 scalar local.
func (c *Ctx) SetInt32(name string, v int32) { c.Set(name, field.Int32Val(v)) }

// SetInt64 assigns an int64 scalar local.
func (c *Ctx) SetInt64(name string, v int64) { c.Set(name, field.Int64Val(v)) }

// SetFloat64 assigns a float64 scalar local.
func (c *Ctx) SetFloat64(name string, v float64) { c.Set(name, field.Float64Val(v)) }

// SetObj assigns an Any scalar local.
func (c *Ctx) SetObj(name string, v any) { c.Set(name, field.AnyVal(v)) }

// Array returns the named array local for reading or in-place mutation and
// marks it bound (mutating a local array implies producing it).
func (c *Ctx) Array(name string) *field.Array {
	v := c.Get(name)
	if !v.IsArray() {
		panic(fmt.Sprintf("p2g: local %q of kernel %s is not an array", name, c.kernel.Name))
	}
	c.bound[name] = true
	return v.Array()
}

// Stop marks a source kernel as finished: no instance will be scheduled for
// the next age. Calling Stop from non-source kernels is allowed and ignored
// by the runtime.
func (c *Ctx) Stop() { c.stop = true }

// Stopped reports whether the body called Stop.
func (c *Ctx) Stopped() bool { return c.stop }

// Printf writes formatted output to the program's output stream (the kernel
// language's cout). Instances run in parallel; each Printf call is a single
// Write, so lines from different instances interleave but do not tear.
func (c *Ctx) Printf(format string, args ...any) {
	if c.out != nil {
		fmt.Fprintf(c.out, format, args...)
	}
}

// Now returns the current instant on the program's deadline clock.
func (c *Ctx) Now() time.Time {
	if c.timers == nil {
		return time.Now()
	}
	return c.timers.Now()
}

// ResetTimer records the current instant as the named global timer's
// reference point (`t1 = now`).
func (c *Ctx) ResetTimer(name string) {
	if c.timers != nil {
		c.timers.Reset(name)
	}
}

// Expired reports whether more than d has passed since the named timer's
// reference point (`now > t1 + d`). It returns false with an error for
// undeclared timers.
func (c *Ctx) Expired(name string, d time.Duration) (bool, error) {
	if c.timers == nil {
		return false, fmt.Errorf("p2g: program has no timers")
	}
	return c.timers.Expired(name, d)
}

// Timers exposes the underlying timer set (nil if the program declared no
// timers and the runtime did not install one).
func (c *Ctx) Timers() *deadline.TimerSet { return c.timers }
