package core

import (
	"fmt"
	"io"
)

// Out returns the program output stream of this context (the kernel
// language's cout target). Used by program transforms that run kernel bodies
// in sub-contexts.
func (c *Ctx) Out() io.Writer { return c.out }

// Fuse returns a copy of the program in which kernel down is merged into
// kernel up, implementing the low-level scheduler's task-combining decision
// from the paper's figure 4 (Age=3): the two kernels become one, down's
// fetches of fields produced by up are satisfied in-memory, and both kernels'
// store operations are deferred until both bodies have run. Up's stores are
// preserved (other kernels, like the paper's print, may still read the
// intermediate field).
//
// Fusion requires a direct element-wise pipeline: every fetch of down on a
// field stored by up must be an element fetch whose age expression and index
// coordinates are structurally identical to up's element store. Programs that
// do not meet the conditions are rejected with an error.
func Fuse(p *Program, upName, downName string) (*Program, error) {
	up := p.Kernel(upName)
	down := p.Kernel(downName)
	if up == nil || down == nil {
		return nil, fmt.Errorf("p2g: fuse: unknown kernel %q or %q", upName, downName)
	}
	if up == down {
		return nil, fmt.Errorf("p2g: fuse: cannot fuse kernel %q with itself", upName)
	}
	if (up.AgeVar == "") != (down.AgeVar == "") {
		return nil, fmt.Errorf("p2g: fuse: %q and %q disagree on having an age variable", upName, downName)
	}

	produced := map[string][]*StoreStmt{}
	for i := range up.Stores {
		s := &up.Stores[i]
		produced[s.Field] = append(produced[s.Field], s)
	}

	// Split down's fetches into internal (satisfied by up's stores) and
	// external ones.
	var internal []FetchStmt
	var external []FetchStmt
	for _, f := range down.Fetches {
		stores, ok := produced[f.Field]
		if !ok {
			external = append(external, f)
			continue
		}
		if f.Whole() {
			return nil, fmt.Errorf("p2g: fuse: %q whole-field fetch of %q cannot be satisfied inside one instance of %q", downName, f.Field, upName)
		}
		matched := false
		for _, s := range stores {
			if s.Whole() || s.Age != f.Age || len(s.Index) != len(f.Index) {
				continue
			}
			same := true
			for i := range s.Index {
				if s.Index[i] != f.Index[i] {
					same = false
					break
				}
			}
			if same {
				matched = true
				break
			}
		}
		if !matched {
			return nil, fmt.Errorf("p2g: fuse: %q fetch %s does not align element-wise with a store of %q", downName, f.String(), upName)
		}
		internal = append(internal, f)
	}
	if len(internal) == 0 {
		return nil, fmt.Errorf("p2g: fuse: %q does not consume any field produced by %q", downName, upName)
	}

	const upPrefix, downPrefix = "u__", "d__"
	fused := &KernelDecl{
		Name:   upName + "+" + downName,
		AgeVar: up.AgeVar,
	}
	fused.IndexVars = append(fused.IndexVars, up.IndexVars...)
	for _, iv := range down.IndexVars {
		dup := false
		for _, have := range fused.IndexVars {
			if have == iv {
				dup = true
				break
			}
		}
		if !dup {
			fused.IndexVars = append(fused.IndexVars, iv)
		}
	}
	for _, l := range up.Locals {
		fused.Locals = append(fused.Locals, LocalDecl{Name: upPrefix + l.Name, Kind: l.Kind, Rank: l.Rank})
	}
	for _, l := range down.Locals {
		fused.Locals = append(fused.Locals, LocalDecl{Name: downPrefix + l.Name, Kind: l.Kind, Rank: l.Rank})
	}
	for _, f := range up.Fetches {
		nf := f
		nf.Local = upPrefix + f.Local
		fused.Fetches = append(fused.Fetches, nf)
	}
	for _, f := range external {
		nf := f
		nf.Local = downPrefix + f.Local
		fused.Fetches = append(fused.Fetches, nf)
	}
	for _, s := range up.Stores {
		ns := s
		ns.Local = upPrefix + s.Local
		fused.Stores = append(fused.Stores, ns)
	}
	for _, s := range down.Stores {
		ns := s
		ns.Local = downPrefix + s.Local
		fused.Stores = append(fused.Stores, ns)
	}

	upDecl, downDecl := up, down
	internalFetches := append([]FetchStmt(nil), internal...)
	externalFetches := append([]FetchStmt(nil), external...)
	fused.Body = func(c *Ctx) error {
		subIndex := func(vars []string) map[string]int {
			m := make(map[string]int, len(vars))
			for _, v := range vars {
				m[v] = c.Index(v)
			}
			return m
		}
		upCtx := NewCtx(upDecl, c.Age(), subIndex(upDecl.IndexVars), c.Timers(), c.Out())
		for _, f := range upDecl.Fetches {
			upCtx.BindFetched(f.Local, c.Get(upPrefix+f.Local))
		}
		if upDecl.Body != nil {
			if err := upDecl.Body(upCtx); err != nil {
				return fmt.Errorf("fused %s: %w", upDecl.Name, err)
			}
		}
		if upCtx.Stopped() {
			c.Stop()
		}
		for _, s := range upDecl.Stores {
			if upCtx.Bound(s.Local) {
				c.Set(upPrefix+s.Local, upCtx.Get(s.Local))
			}
		}

		// Feed down's internal fetches from up's store sources. If any
		// source is unbound, the unfused down instance would never have
		// become runnable, so skip the down body entirely.
		downCtx := NewCtx(downDecl, c.Age(), subIndex(downDecl.IndexVars), c.Timers(), c.Out())
		for _, f := range internalFetches {
			src := findStoreSource(upDecl, f)
			if !upCtx.Bound(src) {
				return nil
			}
			downCtx.BindFetched(f.Local, upCtx.Get(src))
		}
		for _, f := range externalFetches {
			downCtx.BindFetched(f.Local, c.Get(downPrefix+f.Local))
		}
		if downDecl.Body != nil {
			if err := downDecl.Body(downCtx); err != nil {
				return fmt.Errorf("fused %s: %w", downDecl.Name, err)
			}
		}
		if downCtx.Stopped() {
			c.Stop()
		}
		for _, s := range downDecl.Stores {
			if downCtx.Bound(s.Local) {
				c.Set(downPrefix+s.Local, downCtx.Get(s.Local))
			}
		}
		return nil
	}

	np := &Program{Name: p.Name + "+fused", Timers: p.Timers, Fields: p.Fields}
	for _, k := range p.Kernels {
		switch k {
		case up:
			np.Kernels = append(np.Kernels, fused)
		case down:
			// dropped; replaced by the fused kernel
		default:
			np.Kernels = append(np.Kernels, k)
		}
	}
	if err := np.Validate(); err != nil {
		return nil, fmt.Errorf("p2g: fuse produced an invalid program: %w", err)
	}
	return np, nil
}

// findStoreSource returns the local that up stores into the field/position
// the fetch f reads. Alignment was verified by Fuse.
func findStoreSource(up *KernelDecl, f FetchStmt) string {
	for i := range up.Stores {
		s := &up.Stores[i]
		if s.Field != f.Field || s.Whole() || s.Age != f.Age || len(s.Index) != len(f.Index) {
			continue
		}
		same := true
		for j := range s.Index {
			if s.Index[j] != f.Index[j] {
				same = false
				break
			}
		}
		if same {
			return s.Local
		}
	}
	return ""
}
