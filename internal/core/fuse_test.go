package core

import (
	"strings"
	"testing"

	"repro/internal/field"
)

func TestFuseMul2Plus5Structure(t *testing.T) {
	p := mulSumProgram(t)
	fp, err := Fuse(p, "mul2", "plus5")
	if err != nil {
		t.Fatal(err)
	}
	if len(fp.Kernels) != 3 {
		t.Fatalf("fused program has %d kernels, want 3", len(fp.Kernels))
	}
	fk := fp.Kernel("mul2+plus5")
	if fk == nil {
		t.Fatal("fused kernel missing")
	}
	// The internal fetch of p_data is gone; m_data fetch remains.
	if len(fk.Fetches) != 1 || fk.Fetches[0].Field != "m_data" {
		t.Fatalf("fused fetches: %v", fk.Fetches)
	}
	// Both stores remain: p_data (read by print) and m_data(a+1).
	if len(fk.Stores) != 2 {
		t.Fatalf("fused stores: %v", fk.Stores)
	}
	fields := map[string]bool{}
	for _, s := range fk.Stores {
		fields[s.Field] = true
	}
	if !fields["p_data"] || !fields["m_data"] {
		t.Error("fused kernel should store both p_data and m_data")
	}
	// Original program is untouched.
	if p.Kernel("mul2") == nil || p.Kernel("plus5") == nil {
		t.Error("Fuse must not mutate the source program")
	}
}

func TestFuseBodySemantics(t *testing.T) {
	p := mulSumProgram(t)
	fp, err := Fuse(p, "mul2", "plus5")
	if err != nil {
		t.Fatal(err)
	}
	fk := fp.Kernel("mul2+plus5")
	c := NewCtx(fk, 0, map[string]int{"x": 0}, nil, nil)
	// Simulate the runtime: install the fetched m_data element.
	c.BindFetched("u__value", field.Int32Val(10))
	if err := fk.Body(c); err != nil {
		t.Fatal(err)
	}
	// mul2: 10*2 = 20 stored to p_data; plus5: 20+5 = 25 stored to m_data.
	if !c.Bound("u__value") || c.Int32("u__value") != 20 {
		t.Errorf("up store local = %v", c.Get("u__value"))
	}
	if !c.Bound("d__value") || c.Int32("d__value") != 25 {
		t.Errorf("down store local = %v", c.Get("d__value"))
	}
}

func TestFuseErrors(t *testing.T) {
	p := mulSumProgram(t)
	cases := []struct {
		up, down string
		want     string
	}{
		{"nope", "plus5", "unknown kernel"},
		{"mul2", "mul2", "with itself"},
		{"mul2", "print", "whole-field fetch"},
		{"plus5", "init", "disagree on having an age"},
		{"init", "print", "disagree on having an age"},
		{"print", "mul2", "does not consume"},
	}
	for _, c := range cases {
		if _, err := Fuse(p, c.up, c.down); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Fuse(%s,%s) error = %v, want containing %q", c.up, c.down, err, c.want)
		}
	}
}

func TestFuseMisalignedIndexRejected(t *testing.T) {
	b := NewBuilder("t")
	b.Field("f", field.Int32, 1, true)
	b.Field("g", field.Int32, 1, true)
	b.Kernel("up").Age("a").Index("x").
		Local("v", field.Int32, 0).
		Fetch("v", "f", AgeVar(0), Idx("x")).
		Store("g", AgeVar(0), []IndexSpec{Lit(0)}, "v").
		Body(nil)
	b.Kernel("down").Age("a").Index("y").
		Local("w", field.Int32, 0).
		Fetch("w", "g", AgeVar(0), Idx("y")).
		Store("f", AgeVar(1), []IndexSpec{Idx("y")}, "w").
		Body(nil)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Fuse(p, "up", "down"); err == nil || !strings.Contains(err.Error(), "align") {
		t.Fatalf("misaligned fuse error = %v", err)
	}
}

func TestFuseSkipsDownWhenUpSuppresses(t *testing.T) {
	// If up leaves its store local unbound, down must not run (the unfused
	// down instance would never have been dispatched).
	b := NewBuilder("t")
	b.Field("f", field.Int32, 1, true)
	b.Field("g", field.Int32, 1, true)
	b.Field("h", field.Int32, 1, true)
	downRan := false
	b.Kernel("up").Age("a").Index("x").
		Local("v", field.Int32, 0).
		Local("o", field.Int32, 0).
		Fetch("v", "f", AgeVar(0), Idx("x")).
		Store("g", AgeVar(0), []IndexSpec{Idx("x")}, "o").
		Body(func(c *Ctx) error {
			// Never binds o.
			return nil
		})
	b.Kernel("down").Age("a").Index("x").
		Local("w", field.Int32, 0).
		Fetch("w", "g", AgeVar(0), Idx("x")).
		Store("h", AgeVar(0), []IndexSpec{Idx("x")}, "w").
		Body(func(c *Ctx) error {
			downRan = true
			return nil
		})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	fp, err := Fuse(p, "up", "down")
	if err != nil {
		t.Fatal(err)
	}
	fk := fp.Kernel("up+down")
	c := NewCtx(fk, 0, map[string]int{"x": 0}, nil, nil)
	c.BindFetched("u__v", field.Int32Val(1))
	if err := fk.Body(c); err != nil {
		t.Fatal(err)
	}
	if downRan {
		t.Error("down body ran despite suppressed upstream store")
	}
	if c.Bound("d__w") {
		t.Error("down store local must stay unbound")
	}
}
