package core

import (
	"fmt"

	"repro/internal/field"
)

// Validate checks the structural correctness of a program. It verifies that
// names resolve, ranks and kinds line up, every index variable has a range
// (is bound by an element fetch), and age expressions cannot reference the
// future. The runtime assumes a validated program.
func (p *Program) Validate() error {
	fields := make(map[string]*FieldDecl, len(p.Fields))
	for _, f := range p.Fields {
		if f.Name == "" {
			return fmt.Errorf("p2g: field with empty name")
		}
		if _, dup := fields[f.Name]; dup {
			return fmt.Errorf("p2g: duplicate field %q", f.Name)
		}
		if f.Rank < 1 {
			return fmt.Errorf("p2g: field %q: rank must be >= 1, got %d", f.Name, f.Rank)
		}
		if f.Kind == field.Invalid {
			return fmt.Errorf("p2g: field %q: invalid element kind", f.Name)
		}
		fields[f.Name] = f
	}

	timers := make(map[string]bool, len(p.Timers))
	for _, t := range p.Timers {
		if t == "" {
			return fmt.Errorf("p2g: timer with empty name")
		}
		if timers[t] {
			return fmt.Errorf("p2g: duplicate timer %q", t)
		}
		timers[t] = true
	}

	kernels := make(map[string]bool, len(p.Kernels))
	for _, k := range p.Kernels {
		if k.Name == "" {
			return fmt.Errorf("p2g: kernel with empty name")
		}
		if kernels[k.Name] {
			return fmt.Errorf("p2g: duplicate kernel %q", k.Name)
		}
		kernels[k.Name] = true
		if err := p.validateKernel(k, fields); err != nil {
			return err
		}
	}
	if len(p.Kernels) == 0 {
		return fmt.Errorf("p2g: program %q has no kernels", p.Name)
	}
	return nil
}

func (p *Program) validateKernel(k *KernelDecl, fields map[string]*FieldDecl) error {
	errf := func(format string, args ...any) error {
		return fmt.Errorf("p2g: kernel %q: %s", k.Name, fmt.Sprintf(format, args...))
	}

	names := map[string]string{} // name -> what it is
	declare := func(name, what string) error {
		if name == "" {
			return errf("%s with empty name", what)
		}
		if prev, dup := names[name]; dup {
			return errf("%s %q collides with %s of the same name", what, name, prev)
		}
		names[name] = what
		return nil
	}
	if k.AgeVar != "" {
		if err := declare(k.AgeVar, "age variable"); err != nil {
			return err
		}
	}
	for _, iv := range k.IndexVars {
		if err := declare(iv, "index variable"); err != nil {
			return err
		}
	}
	locals := map[string]*LocalDecl{}
	for i := range k.Locals {
		l := &k.Locals[i]
		if err := declare(l.Name, "local"); err != nil {
			return err
		}
		if l.Rank < 0 {
			return errf("local %q: negative rank", l.Name)
		}
		if l.Kind == field.Invalid {
			return errf("local %q: invalid kind", l.Name)
		}
		locals[l.Name] = l
	}

	indexVarSet := map[string]bool{}
	for _, iv := range k.IndexVars {
		indexVarSet[iv] = false // false until bound by a fetch
	}

	checkAge := func(stmt string, age AgeExpr, f *FieldDecl, isFetch bool) error {
		if age.HasVar && k.AgeVar == "" {
			return errf("%s references age variable but kernel has none", stmt)
		}
		if !f.Aged {
			if age.HasVar || age.Offset != 0 {
				return errf("%s: non-aged field %q must be accessed at age 0", stmt, f.Name)
			}
			return nil
		}
		if age.HasVar && isFetch && age.Offset > 0 {
			return errf("%s: fetching a future age (offset %+d) can never be satisfied", stmt, age.Offset)
		}
		if age.HasVar && !isFetch && age.Offset < 0 {
			return errf("%s: storing to a past age (offset %+d) violates write-once ordering", stmt, age.Offset)
		}
		if !age.HasVar && age.Offset < 0 {
			return errf("%s: negative absolute age %d", stmt, age.Offset)
		}
		return nil
	}

	checkIndex := func(stmt string, idx []IndexSpec, f *FieldDecl, binds bool) error {
		if idx == nil {
			return nil // whole-field access
		}
		if len(idx) != f.Rank {
			return errf("%s: %d index coordinates for rank-%d field %q", stmt, len(idx), f.Rank, f.Name)
		}
		for _, ix := range idx {
			switch ix.Kind {
			case IndexVarKind:
				if _, ok := indexVarSet[ix.Var]; !ok {
					return errf("%s: unknown index variable %q", stmt, ix.Var)
				}
				if binds && ix.Off == 0 {
					indexVarSet[ix.Var] = true
				}
			case IndexLitKind:
				if ix.Lit < 0 {
					return errf("%s: negative index literal %d", stmt, ix.Lit)
				}
			case IndexAllKind:
				// Legal in both fetches (slab fetch, gated on generation
				// completeness) and stores (bulk slab store).
			default:
				return errf("%s: invalid index spec", stmt)
			}
		}
		return nil
	}

	compatible := func(a, b field.Kind) bool {
		return a == b || a == field.Any || b == field.Any
	}

	for i := range k.Fetches {
		fs := &k.Fetches[i]
		stmt := fs.String()
		f, ok := fields[fs.Field]
		if !ok {
			return errf("%s: unknown field %q", stmt, fs.Field)
		}
		l, ok := locals[fs.Local]
		if !ok {
			return errf("%s: unknown local %q", stmt, fs.Local)
		}
		if err := checkAge(stmt, fs.Age, f, true); err != nil {
			return err
		}
		if err := checkIndex(stmt, fs.Index, f, true); err != nil {
			return err
		}
		switch {
		case fs.Whole():
			if l.Rank != f.Rank {
				return errf("%s: whole-field fetch into rank-%d local (field rank %d)", stmt, l.Rank, f.Rank)
			}
		case fs.Slab():
			if l.Rank != fs.SlabRank() {
				return errf("%s: slab fetch of rank %d into rank-%d local", stmt, fs.SlabRank(), l.Rank)
			}
		default:
			if l.Rank != 0 {
				return errf("%s: element fetch into array local %q", stmt, l.Name)
			}
		}
		if !compatible(l.Kind, f.Kind) {
			return errf("%s: local kind %s incompatible with field kind %s", stmt, l.Kind, f.Kind)
		}
	}

	for i := range k.Stores {
		ss := &k.Stores[i]
		stmt := ss.String()
		f, ok := fields[ss.Field]
		if !ok {
			return errf("%s: unknown field %q", stmt, ss.Field)
		}
		l, ok := locals[ss.Local]
		if !ok {
			return errf("%s: unknown local %q", stmt, ss.Local)
		}
		if err := checkAge(stmt, ss.Age, f, false); err != nil {
			return err
		}
		if err := checkIndex(stmt, ss.Index, f, false); err != nil {
			return err
		}
		switch {
		case ss.Whole():
			if l.Rank != f.Rank {
				return errf("%s: whole-field store from rank-%d local (field rank %d)", stmt, l.Rank, f.Rank)
			}
		case ss.Slab():
			if l.Rank != ss.SlabRank() {
				return errf("%s: slab store of rank %d from rank-%d local", stmt, ss.SlabRank(), l.Rank)
			}
		default:
			if l.Rank != 0 {
				return errf("%s: element store from array local %q", stmt, l.Name)
			}
		}
		if !compatible(l.Kind, f.Kind) {
			return errf("%s: local kind %s incompatible with field kind %s", stmt, l.Kind, f.Kind)
		}
	}

	for iv, bound := range indexVarSet {
		if !bound {
			return errf("index variable %q is not bound by any offset-free element fetch, so its range is undefined", iv)
		}
	}

	if k.AgeVar != "" && len(k.Fetches) > 0 {
		// Without an age-variable fetch there is nothing to drive the
		// creation of per-age instances: the kernel would have an
		// unbounded instance set for every absolute-age store event.
		anyAged := false
		for i := range k.Fetches {
			if k.Fetches[i].Age.HasVar {
				anyAged = true
				break
			}
		}
		if !anyAged {
			return errf("aged kernel must have at least one fetch that uses its age variable")
		}
	}

	if k.RunOnce() {
		for i := range k.Fetches {
			if k.Fetches[i].Age.HasVar {
				return errf("run-once kernel uses age variable in fetch")
			}
		}
		for i := range k.Stores {
			if k.Stores[i].Age.HasVar {
				return errf("run-once kernel uses age variable in store")
			}
		}
	}
	return nil
}
