// Package deadline implements P2G's global timers and deadline expressions.
//
// The paper (§V-B) lets a program declare a global timer (`timer t1;`), update
// it from kernel code (`t1 = now`) and branch on deadline conditions such as
// `t1 + 100ms`, taking an alternate code path — typically storing to a
// different field — when a timeout occurs. TimerSet is the runtime-side
// realization: a named set of monotonic reference points shared by all kernel
// instances of a running program.
package deadline

import (
	"fmt"
	"sync"
	"time"
)

// Clock abstracts time for tests. The zero Clock uses the real monotonic
// clock.
type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// FakeClock is a manually-advanced clock for deterministic deadline tests.
type FakeClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewFakeClock returns a FakeClock starting at an arbitrary fixed instant.
func NewFakeClock() *FakeClock {
	return &FakeClock{now: time.Unix(1_000_000, 0)}
}

// Now returns the fake current time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the fake clock forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// TimerSet holds a program's named global timers. All methods are safe for
// concurrent use by kernel instances running on multiple workers.
type TimerSet struct {
	clock Clock
	mu    sync.Mutex
	marks map[string]time.Time
}

// NewTimerSet creates a TimerSet over the given clock; a nil clock selects
// the real monotonic clock. Each name in names is initialized to the current
// instant, matching the paper's semantics that a declared timer starts at
// program launch.
func NewTimerSet(clock Clock, names ...string) *TimerSet {
	if clock == nil {
		clock = realClock{}
	}
	ts := &TimerSet{clock: clock, marks: make(map[string]time.Time, len(names))}
	now := clock.Now()
	for _, n := range names {
		ts.marks[n] = now
	}
	return ts
}

// Now returns the current instant on the set's clock.
func (ts *TimerSet) Now() time.Time { return ts.clock.Now() }

// Reset records the current instant as timer name's reference point
// (the kernel-language statement `t1 = now`). Resetting an undeclared timer
// declares it on the fly.
func (ts *TimerSet) Reset(name string) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.marks[name] = ts.clock.Now()
}

// Elapsed returns the time since the timer's reference point. It returns an
// error for undeclared timers so kernel code fails loudly on typos.
func (ts *TimerSet) Elapsed(name string) (time.Duration, error) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	m, ok := ts.marks[name]
	if !ok {
		return 0, fmt.Errorf("deadline: timer %q not declared", name)
	}
	return ts.clock.Now().Sub(m), nil
}

// Expired reports whether more than d has passed since the timer's reference
// point — the kernel-language condition `now > t1 + d`. Undeclared timers
// report an error.
func (ts *TimerSet) Expired(name string, d time.Duration) (bool, error) {
	e, err := ts.Elapsed(name)
	if err != nil {
		return false, err
	}
	return e > d, nil
}

// Names returns the declared timer names, unordered.
func (ts *TimerSet) Names() []string {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]string, 0, len(ts.marks))
	for n := range ts.marks {
		out = append(out, n)
	}
	return out
}
