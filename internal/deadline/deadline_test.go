package deadline

import (
	"sort"
	"sync"
	"testing"
	"time"
)

func TestTimerSetBasics(t *testing.T) {
	clk := NewFakeClock()
	ts := NewTimerSet(clk, "t1", "t2")

	e, err := ts.Elapsed("t1")
	if err != nil || e != 0 {
		t.Fatalf("fresh timer elapsed = %v, %v", e, err)
	}
	clk.Advance(50 * time.Millisecond)
	e, err = ts.Elapsed("t1")
	if err != nil || e != 50*time.Millisecond {
		t.Fatalf("elapsed after advance = %v, %v", e, err)
	}

	exp, err := ts.Expired("t1", 100*time.Millisecond)
	if err != nil || exp {
		t.Fatalf("should not be expired yet: %v, %v", exp, err)
	}
	clk.Advance(51 * time.Millisecond)
	exp, err = ts.Expired("t1", 100*time.Millisecond)
	if err != nil || !exp {
		t.Fatalf("should be expired: %v, %v", exp, err)
	}
}

func TestTimerReset(t *testing.T) {
	clk := NewFakeClock()
	ts := NewTimerSet(clk, "t1")
	clk.Advance(time.Second)
	ts.Reset("t1")
	e, err := ts.Elapsed("t1")
	if err != nil || e != 0 {
		t.Fatalf("elapsed after reset = %v, %v", e, err)
	}
}

func TestUndeclaredTimer(t *testing.T) {
	ts := NewTimerSet(NewFakeClock())
	if _, err := ts.Elapsed("missing"); err == nil {
		t.Error("Elapsed of undeclared timer should error")
	}
	if _, err := ts.Expired("missing", time.Second); err == nil {
		t.Error("Expired of undeclared timer should error")
	}
	// Reset declares on the fly.
	ts.Reset("fresh")
	if _, err := ts.Elapsed("fresh"); err != nil {
		t.Errorf("timer declared by Reset: %v", err)
	}
}

func TestTimerNames(t *testing.T) {
	ts := NewTimerSet(NewFakeClock(), "b", "a")
	names := ts.Names()
	sort.Strings(names)
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names = %v", names)
	}
}

func TestRealClockDefault(t *testing.T) {
	ts := NewTimerSet(nil, "t")
	if ts.Now().IsZero() {
		t.Error("real clock should return a non-zero time")
	}
	e, err := ts.Elapsed("t")
	if err != nil || e < 0 {
		t.Errorf("elapsed on real clock: %v, %v", e, err)
	}
}

func TestTimerSetConcurrent(t *testing.T) {
	clk := NewFakeClock()
	ts := NewTimerSet(clk, "t")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				ts.Reset("t")
				if _, err := ts.Elapsed("t"); err != nil {
					t.Error(err)
					return
				}
				clk.Advance(time.Microsecond)
			}
		}()
	}
	wg.Wait()
}
