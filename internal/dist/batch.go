package dist

import (
	"sync"

	"repro/internal/obs"
	"repro/internal/runtime"
)

// Flush thresholds for the store batcher: a generation's frame is emitted
// early once it holds this many bytes or entries, bounding both message size
// and the master's replay cost per frame. Generations smaller than the
// thresholds ride until the kernel age completes (or the next ping).
const (
	frameFlushBytes   = 64 << 10
	frameFlushEntries = 512
)

// genKey identifies one field generation.
type genKey struct {
	field string
	age   int
}

// storeBatcher coalesces per-row store notices into whole-generation frames
// on the worker send path. Stores accumulate per (field, age); flushAll emits
// pending frames in first-store order, which — combined with flushing before
// every MDone — preserves the per-origin stores-before-done order the master
// broker and downstream consumers rely on.
//
// Frames are never reused after emission: the in-process transport moves
// *Msg by pointer, so a recycled buffer would alias an in-flight message.
type storeBatcher struct {
	mu     sync.Mutex
	frames map[genKey]*runtime.StoreFrame
	order  []genKey
	emit   func(*Msg)

	mFrames *obs.Counter
	mBytes  *obs.Counter
	mStores *obs.Counter
}

// newStoreBatcher creates a batcher that hands finished frames to emit.
// Metrics handles may be nil (obs metrics are nil-safe).
func newStoreBatcher(emit func(*Msg), reg *obs.Registry) *storeBatcher {
	return &storeBatcher{
		frames:  map[genKey]*runtime.StoreFrame{},
		emit:    emit,
		mFrames: reg.Counter(obs.MDistFramesTotal),
		mBytes:  reg.Counter(obs.MDistFrameBytesTotal),
		mStores: reg.Counter(obs.MDistFrameStores),
	}
}

// add appends one store notice to its generation's frame, emitting the frame
// immediately when it crosses a flush threshold. Safe on a nil batcher.
func (b *storeBatcher) add(sn runtime.StoreNotice) error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	k := genKey{field: sn.Field, age: sn.Age}
	f := b.frames[k]
	if f == nil {
		f = &runtime.StoreFrame{}
		f.Reset(sn.Field, sn.Age)
		b.frames[k] = f
		b.order = append(b.order, k)
	}
	if err := f.Add(sn); err != nil {
		return err
	}
	if f.Len() >= frameFlushBytes || f.Entries() >= frameFlushEntries {
		b.emitLocked(k, f)
	}
	return nil
}

// flushAll emits every pending frame in first-store order. Safe on a nil
// batcher.
func (b *storeBatcher) flushAll() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, k := range b.order {
		if f := b.frames[k]; f != nil {
			b.emitLocked(k, f)
		}
	}
	b.order = b.order[:0]
}

// emitLocked sends one frame and forgets it; the caller holds b.mu. The key
// stays in b.order when called from add — flushAll skips the deleted entry.
func (b *storeBatcher) emitLocked(k genKey, f *runtime.StoreFrame) {
	delete(b.frames, k)
	b.mFrames.Inc()
	b.mBytes.Add(int64(f.Len()))
	b.mStores.Add(int64(f.Entries()))
	b.emit(&Msg{Kind: MStoreFrame, Field: k.field, Age: k.age, Frame: f.Bytes()})
}
