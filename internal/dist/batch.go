package dist

import (
	"hash/fnv"
	"sync"

	"repro/internal/obs"
	"repro/internal/runtime"
)

// Flush thresholds for the store batcher: a generation's frame is emitted
// early once it holds this many bytes or entries, bounding both message size
// and the master's replay cost per frame. Generations smaller than the
// thresholds ride until the kernel age completes (or the next ping).
const (
	frameFlushBytes   = 64 << 10
	frameFlushEntries = 512
)

// genKey identifies one field generation.
type genKey struct {
	field string
	age   int
}

// storeBatcher coalesces per-row store notices into whole-generation frames
// on the worker send path. Stores accumulate per (field, age); flushAll emits
// pending frames in first-store order, which — combined with flushing before
// every MDone — preserves the per-origin stores-before-done order the master
// broker and downstream consumers rely on.
//
// Frames come from the runtime frame pool and are handed to emit together
// with the routing envelope (whose Frame field is left nil): the transport
// either writes the frame's segments scatter-gather and recycles it, or
// flattens it into a fresh slice first — the in-process transport moves *Msg
// by pointer, so a recycled buffer must never ride inside an in-flight
// message.
type storeBatcher struct {
	mu     sync.Mutex
	frames map[genKey]*runtime.StoreFrame
	traces map[genKey]uint64
	order  []genKey
	emit   func(*Msg, *runtime.StoreFrame)

	// Causal tracing (nil tracer disables it and keeps frames in the
	// untraced v1 layout): each frame gets a cluster-unique trace id —
	// node-seed in the high bits, a local sequence in the low bits — stamped
	// into both the frame header and the Msg envelope, and emission records
	// the flow-start span of the frame's cross-node journey.
	tracer *obs.Tracer
	seed   uint64
	seq    uint64

	mFrames *obs.Counter
	mBytes  *obs.Counter
	mStores *obs.Counter
}

// newStoreBatcher creates a batcher that hands finished frames to emit.
// Metrics handles may be nil (obs metrics are nil-safe); a nil tracer
// disables causal trace ids.
func newStoreBatcher(emit func(*Msg, *runtime.StoreFrame), reg *obs.Registry, nodeID string, tracer *obs.Tracer) *storeBatcher {
	h := fnv.New64a()
	h.Write([]byte(nodeID))
	return &storeBatcher{
		frames:  map[genKey]*runtime.StoreFrame{},
		traces:  map[genKey]uint64{},
		emit:    emit,
		tracer:  tracer,
		seed:    h.Sum64(),
		mFrames: reg.Counter(obs.MDistFramesTotal),
		mBytes:  reg.Counter(obs.MDistFrameBytesTotal),
		mStores: reg.Counter(obs.MDistFrameStores),
	}
}

// add appends one store notice to its generation's frame, emitting the frame
// immediately when it crosses a flush threshold. Safe on a nil batcher.
func (b *storeBatcher) add(sn runtime.StoreNotice) error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	k := genKey{field: sn.Field, age: sn.Age}
	f := b.frames[k]
	if f == nil {
		f = runtime.GetStoreFrame()
		if b.tracer != nil {
			// Low 32 bits are the local sequence (nonzero), high bits the
			// node seed: unique across the cluster for practical runs.
			b.seq++
			trace := (b.seed << 32) | (b.seq & 0xffffffff)
			b.traces[k] = trace
			f.ResetTraced(sn.Field, sn.Age, trace)
		} else {
			f.Reset(sn.Field, sn.Age)
		}
		b.frames[k] = f
		b.order = append(b.order, k)
	}
	if err := f.Add(sn); err != nil {
		return err
	}
	if f.Len() >= frameFlushBytes || f.Entries() >= frameFlushEntries {
		b.emitLocked(k, f)
	}
	return nil
}

// flushAll emits every pending frame in first-store order. Safe on a nil
// batcher.
func (b *storeBatcher) flushAll() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, k := range b.order {
		if f := b.frames[k]; f != nil {
			b.emitLocked(k, f)
		}
	}
	b.order = b.order[:0]
}

// emitLocked sends one frame and forgets it; the caller holds b.mu. The key
// stays in b.order when called from add — flushAll skips the deleted entry.
func (b *storeBatcher) emitLocked(k genKey, f *runtime.StoreFrame) {
	trace := b.traces[k]
	delete(b.frames, k)
	delete(b.traces, k)
	b.mFrames.Inc()
	b.mBytes.Add(int64(f.Len()))
	b.mStores.Add(int64(f.Entries()))
	emitFrom := b.tracer.Now()
	b.emit(&Msg{Kind: MStoreFrame, Field: k.field, Age: k.age, Trace: trace}, f)
	if tr := b.tracer; tr != nil {
		// Flow start of the frame's causal journey: handing the encoded
		// generation to the transport.
		tr.Record(obs.Span{
			Name: "emit " + k.field, Cat: "dist", Ph: obs.PhaseComplete,
			TS: emitFrom, Dur: tr.Now() - emitFrom,
			Age: k.age, Trace: trace, Flow: obs.FlowStart,
		})
	}
}
