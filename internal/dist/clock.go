package dist

import (
	"fmt"
	"time"
)

// clockProbes is the number of echo exchanges per worker during the
// handshake; the probe with the smallest round trip gives the least-skewed
// offset estimate.
const clockProbes = 5

// estimateClockOffset measures a worker's clock offset relative to the local
// (master) clock, Cristian-style: send a stamped probe, let the worker echo
// its own clock reading, and assume the echo was taken halfway through the
// round trip. The estimate from the smallest-RTT probe wins — queueing delay
// only ever inflates the RTT, so the fastest exchange is the most symmetric.
// Returns the offset in nanoseconds (worker clock minus master clock).
//
// Runs during the handshake, between registration and assignment, while the
// connection is otherwise silent. Loopback RTTs are tens of microseconds, so
// the estimate aligns node timelines to well under a typical span duration;
// it is a visualization aid, not a distributed-clock guarantee.
func estimateClockOffset(c Conn, probes int) (int64, error) {
	if probes <= 0 {
		probes = clockProbes
	}
	var best int64
	bestRTT := int64(-1)
	for i := 0; i < probes; i++ {
		t0 := time.Now().UnixNano()
		if err := c.Send(&Msg{Kind: MClockProbe, SentNs: t0}); err != nil {
			return 0, fmt.Errorf("dist: clock probe: %w", err)
		}
		m, err := c.Recv()
		t1 := time.Now().UnixNano()
		if err != nil {
			return 0, fmt.Errorf("dist: clock echo: %w", err)
		}
		if m.Kind != MClockEcho || m.SentNs != t0 {
			return 0, fmt.Errorf("dist: clock sync: unexpected %v", m.Kind)
		}
		rtt := t1 - t0
		if bestRTT < 0 || rtt < bestRTT {
			bestRTT = rtt
			best = m.NodeNs - (t0 + rtt/2)
		}
	}
	return best, nil
}
