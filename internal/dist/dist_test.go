package dist

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/kmeans"
	"repro/internal/mjpeg"
	"repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/video"
	"repro/internal/workloads"
)

func init() {
	field.RegisterPayload(kmeans.Point{})
}

// runDistributed executes a program across n in-process workers and returns
// the master result plus per-worker reports.
func runDistributed(t *testing.T, build func() any, n int, wcfg func(i int) WorkerConfig) *MasterResult {
	t.Helper()
	masterConns := make([]Conn, n)
	workerConns := make([]Conn, n)
	for i := 0; i < n; i++ {
		masterConns[i], workerConns[i] = InprocPipe()
	}
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := RunWorker(wcfg(i), workerConns[i]); err != nil {
				errs <- fmt.Errorf("worker %d: %w", i, err)
			}
		}(i)
	}
	prog := wcfg(0).Prog // master shares the program structure
	res, err := RunMaster(MasterConfig{Prog: prog, Method: sched.KL}, masterConns)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDistributedMulSum(t *testing.T) {
	for _, workers := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("nodes=%d", workers), func(t *testing.T) {
			res := runDistributed(t, nil, workers, func(i int) WorkerConfig {
				return WorkerConfig{
					NodeID: fmt.Sprintf("w%d", i),
					Cores:  2,
					Prog:   workloads.MulSum(),
					MaxAge: 8,
				}
			})
			// Reference: single-node execution.
			ref, err := runtime.NewNode(workloads.MulSum(), runtime.Options{Workers: 2, MaxAge: 8})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ref.Run(); err != nil {
				t.Fatal(err)
			}
			for a := 0; a <= 8; a++ {
				for _, f := range []string{"m_data", "p_data"} {
					want, _ := ref.Snapshot(f, a)
					got, err := res.Shadow.Snapshot(f, a)
					if err != nil {
						t.Fatal(err)
					}
					if !got.Equal(want) {
						t.Fatalf("nodes=%d: %s(%d) = %v, want %v", workers, f, a, got, want)
					}
				}
			}
			// Every kernel is assigned to exactly one node, and total
			// instances match the single-node run.
			if len(res.Assignment) != 4 {
				t.Errorf("assignment %v", res.Assignment)
			}
			var total int64
			for _, rep := range res.Reports {
				total += rep.TotalInstances()
			}
			refRep, _ := runtime.Run(workloads.MulSum(), runtime.Options{Workers: 1, MaxAge: 8})
			if total != refRep.TotalInstances() {
				t.Errorf("distributed ran %d instances, single node %d", total, refRep.TotalInstances())
			}
		})
	}
}

func TestDistributedKMeansMatchesSequential(t *testing.T) {
	cfg := workloads.KMeansConfig{N: 120, Dim: 2, K: 6, Iter: 4, Seed: 9}
	res := runDistributed(t, nil, 2, func(i int) WorkerConfig {
		return WorkerConfig{
			NodeID:       fmt.Sprintf("w%d", i),
			Cores:        2,
			Prog:         workloads.KMeans(cfg),
			KernelMaxAge: workloads.KMeansOptions(cfg, 1).KernelMaxAge,
		}
	})
	want := kmeans.Sequential(kmeans.Generate(cfg.N, cfg.Dim, cfg.K, cfg.Seed), cfg.K, cfg.Iter)
	got, err := res.Shadow.Snapshot("centroids", cfg.Iter)
	if err != nil {
		t.Fatal(err)
	}
	if got.Extent(0) != cfg.K {
		t.Fatalf("%d centroids in shadow", got.Extent(0))
	}
	pts := workloads.CentroidPoints(got)
	for c := 0; c < cfg.K; c++ {
		if kmeans.SqDist(pts[c], want.Centroids[c]) != 0 {
			t.Fatalf("centroid %d: distributed %v, sequential %v", c, pts[c], want.Centroids[c])
		}
	}
}

func TestDistributedReportsCoverKernels(t *testing.T) {
	res := runDistributed(t, nil, 2, func(i int) WorkerConfig {
		return WorkerConfig{NodeID: fmt.Sprintf("w%d", i), Cores: 1, Prog: workloads.MulSum(), MaxAge: 3}
	})
	counts := map[string]int64{}
	for _, rep := range res.Reports {
		for _, k := range rep.Kernels {
			counts[k.Name] += k.Instances
		}
	}
	if counts["mul2"] != 20 || counts["plus5"] != 20 || counts["print"] != 4 || counts["init"] != 1 {
		t.Errorf("instance counts %v", counts)
	}
	// Each kernel ran only on its assigned node.
	for _, rep := range res.Reports {
		_ = rep
	}
	if res.Cost.Imbalance < 1 {
		t.Errorf("cost %+v", res.Cost)
	}
}

func TestDistributedOverTCP(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 2
	var wg sync.WaitGroup
	errs := make(chan error, n+1)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := DialTCP(l.Addr())
			if err != nil {
				errs <- err
				return
			}
			if _, err := RunWorker(WorkerConfig{
				NodeID: fmt.Sprintf("tcp%d", i),
				Cores:  2,
				Prog:   workloads.MulSum(),
				MaxAge: 5,
			}, conn); err != nil {
				errs <- fmt.Errorf("worker %d: %w", i, err)
			}
		}(i)
	}
	conns := make([]Conn, n)
	for i := range conns {
		c, err := l.Accept()
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}
	res, err := RunMaster(MasterConfig{Prog: workloads.MulSum(), Method: sched.Greedy}, conns)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if err != nil {
		t.Fatal(err)
	}
	s, err := res.Shadow.Snapshot("m_data", 5)
	if err != nil {
		t.Fatal(err)
	}
	// m(a+1) = m(a)*2+5 from {10..14}.
	vals := []int32{10, 11, 12, 13, 14}
	for a := 0; a < 5; a++ {
		for i, v := range vals {
			vals[i] = v*2 + 5
		}
	}
	if !s.Equal(field.ArrayFromInt32(vals)) {
		t.Errorf("TCP run m_data(5) = %v, want %v", s, vals)
	}
}

func TestValueGobRoundTrip(t *testing.T) {
	vals := []field.Value{
		field.Int32Val(-5),
		field.Float64Val(2.5),
		field.StringVal("hi"),
		field.BoolVal(true),
		field.AnyVal(kmeans.Point{1, 2}),
		field.ArrayVal(field.ArrayFromInt32([]int32{1, 2, 3})),
	}
	for _, v := range vals {
		data, err := v.GobEncode()
		if err != nil {
			t.Fatal(err)
		}
		var back field.Value
		if err := back.GobDecode(data); err != nil {
			t.Fatal(err)
		}
		if v.IsArray() {
			if !back.IsArray() || !back.Array().Equal(v.Array()) {
				t.Errorf("array round trip: %v -> %v", v, back)
			}
			continue
		}
		if v.Kind() == field.Any {
			p := back.Obj().(kmeans.Point)
			if kmeans.SqDist(p, v.Obj().(kmeans.Point)) != 0 {
				t.Errorf("payload round trip: %v", back.Obj())
			}
			continue
		}
		if !back.Equal(v) {
			t.Errorf("round trip %v -> %v", v, back)
		}
	}
}

func TestInprocPipeSemantics(t *testing.T) {
	a, b := InprocPipe()
	if err := a.Send(&Msg{Kind: MPing}); err != nil {
		t.Fatal(err)
	}
	m, err := b.Recv()
	if err != nil || m.Kind != MPing {
		t.Fatal("basic send/recv")
	}
	a.Close()
	if err := b.Send(&Msg{Kind: MPing}); err == nil {
		t.Error("send to closed peer should fail")
	}
	if _, err := b.Recv(); err == nil {
		t.Error("recv from closed peer should eventually fail")
	}
}

func TestMasterValidation(t *testing.T) {
	if _, err := RunMaster(MasterConfig{Prog: workloads.MulSum()}, nil); err == nil {
		t.Error("no workers should error")
	}
}

func TestWorkerErrorsPropagate(t *testing.T) {
	mc, wc := InprocPipe()
	done := make(chan error, 1)
	go func() {
		// Worker with neither program nor factory fails at assignment.
		_, err := RunWorker(WorkerConfig{NodeID: "w", Cores: 1}, wc)
		done <- err
	}()
	m, err := mc.Recv()
	if err != nil || m.Kind != MRegister {
		t.Fatal("registration")
	}
	if err := mc.Send(&Msg{Kind: MAssign, Kernels: []string{"x"}}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil {
		t.Error("worker without program should fail")
	}
}

// TestWeightedRepartition exercises the §IV feedback loop: a first run's
// merged instrumentation weights the final graph of a second run, whose
// assignment then reflects measured load rather than unit weights.
func TestWeightedRepartition(t *testing.T) {
	cfg := workloads.KMeansConfig{N: 200, Dim: 2, K: 8, Iter: 4, Seed: 5}
	wcfg := func(i int) WorkerConfig {
		return WorkerConfig{
			NodeID:       fmt.Sprintf("w%d", i),
			Cores:        2,
			Prog:         workloads.KMeans(cfg),
			KernelMaxAge: workloads.KMeansOptions(cfg, 1).KernelMaxAge,
		}
	}
	run := func(weights *runtime.Report) *MasterResult {
		const n = 2
		masterConns := make([]Conn, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			var wc Conn
			masterConns[i], wc = InprocPipe()
			wg.Add(1)
			go func(i int, conn Conn) {
				defer wg.Done()
				if _, err := RunWorker(wcfg(i), conn); err != nil {
					t.Errorf("worker %d: %v", i, err)
				}
			}(i, wc)
		}
		res, err := RunMaster(MasterConfig{Prog: workloads.KMeans(cfg), Method: sched.KL, Weights: weights}, masterConns)
		wg.Wait()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := run(nil)
	var reports []*runtime.Report
	for _, r := range first.Reports {
		reports = append(reports, r)
	}
	merged := runtime.MergeReports(reports...)
	if merged.Kernel("assign").Instances != int64(cfg.N*cfg.Iter) {
		t.Fatalf("merged assign instances = %d", merged.Kernel("assign").Instances)
	}
	second := run(merged)
	// The weighted run still completes and produces identical results.
	a, _ := first.Shadow.Snapshot("centroids", cfg.Iter)
	b, _ := second.Shadow.Snapshot("centroids", cfg.Iter)
	if !a.Equal(b) {
		t.Error("weighted repartition changed the computation's result")
	}
	// assign dominates measured load; it must not share a node with every
	// other kernel unless the partitioner found that optimal — at minimum
	// the assignment is complete and the run reported per-node stats.
	if len(second.Assignment) != 4 || len(second.Reports) != 2 {
		t.Errorf("assignment %v reports %d", second.Assignment, len(second.Reports))
	}
}

// TestDistributedKernelFailure injects a failing kernel body on one node and
// verifies the whole cluster shuts down with the error instead of hanging.
func TestDistributedKernelFailure(t *testing.T) {
	mkProg := func() *core.Program {
		b := core.NewBuilder("boom")
		b.Field("f", field.Int32, 1, true)
		b.Field("g", field.Int32, 1, true)
		b.Kernel("src").
			Local("v", field.Int32, 1).
			StoreAll("f", core.AgeAt(0), "v").
			Body(func(c *core.Ctx) error {
				c.Array("v").Put(field.Int32Val(1), 0)
				return nil
			})
		b.Kernel("bad").Age("a").Index("x").
			Local("v", field.Int32, 0).
			Fetch("v", "f", core.AgeVar(0), core.Idx("x")).
			Store("g", core.AgeVar(0), []core.IndexSpec{core.Idx("x")}, "v").
			Body(func(c *core.Ctx) error {
				return errors.New("injected failure")
			})
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	const n = 2
	masterConns := make([]Conn, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		var wc Conn
		masterConns[i], wc = InprocPipe()
		wg.Add(1)
		go func(i int, conn Conn) {
			defer wg.Done()
			_, _ = RunWorker(WorkerConfig{NodeID: fmt.Sprintf("w%d", i), Cores: 1, Prog: mkProg()}, conn)
		}(i, wc)
	}
	done := make(chan error, 1)
	go func() {
		_, err := RunMaster(MasterConfig{Prog: mkProg(), Method: sched.Greedy}, masterConns)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "injected failure") {
			t.Fatalf("master error = %v, want injected failure", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cluster hung on kernel failure")
	}
	wg.Wait()
}

// TestSnapshotRequest exercises the MSnapshotReq/MSnapshot protocol pair.
func TestSnapshotRequest(t *testing.T) {
	mc, wc := InprocPipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = RunWorker(WorkerConfig{NodeID: "w", Cores: 1, Prog: workloads.MulSum(), MaxAge: 2}, wc)
	}()
	if m, err := mc.Recv(); err != nil || m.Kind != MRegister {
		t.Fatalf("register: %v", err)
	}
	all := []string{"init", "mul2", "plus5", "print"}
	if err := mc.Send(&Msg{Kind: MAssign, Kernels: all}); err != nil {
		t.Fatal(err)
	}
	if err := mc.Send(&Msg{Kind: MStart}); err != nil {
		t.Fatal(err)
	}
	// Wait for quiescence the simple way: ping until idle.
	for {
		if err := mc.Send(&Msg{Kind: MPing}); err != nil {
			t.Fatal(err)
		}
		m, err := mc.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Kind == MStatus && m.Idle && m.Sent > 0 {
			break
		}
	}
	if err := mc.Send(&Msg{Kind: MSnapshotReq, Field: "m_data", Age: 1}); err != nil {
		t.Fatal(err)
	}
	for {
		m, err := mc.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Kind != MSnapshot {
			continue
		}
		if m.Field != "m_data" || m.Age != 1 || m.Arr == nil {
			t.Fatalf("snapshot msg %+v", m)
		}
		if !m.Arr.Equal(field.ArrayFromInt32([]int32{25, 27, 29, 31, 33})) {
			t.Fatalf("snapshot contents %v", m.Arr)
		}
		break
	}
	// Unknown field produces an MError reply but the worker keeps running.
	if err := mc.Send(&Msg{Kind: MSnapshotReq, Field: "zzz", Age: 0}); err != nil {
		t.Fatal(err)
	}
	for {
		m, err := mc.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Kind == MError {
			break
		}
	}
	if err := mc.Send(&Msg{Kind: MStopReq}); err != nil {
		t.Fatal(err)
	}
	for {
		m, err := mc.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Kind == MReport {
			break
		}
	}
	<-done
}

// TestDistributedMJPEG runs the full Motion JPEG pipeline across two nodes —
// macroblock payloads and encoded frames cross the wire as gob Any values —
// and compares the bitstream with the single-threaded baseline encoder.
func TestDistributedMJPEG(t *testing.T) {
	workloads.RegisterPayloads()
	const frames = 3
	mkProg := func() *core.Program {
		return workloads.MJPEG(workloads.MJPEGConfig{
			Source:  video.NewSynthetic(32, 32, frames, 4),
			Quality: 70,
		})
	}
	res := runDistributed(t, nil, 2, func(i int) WorkerConfig {
		return WorkerConfig{NodeID: fmt.Sprintf("w%d", i), Cores: 2, Prog: mkProg()}
	})
	var stream []byte
	for a := 0; a < frames; a++ {
		s, err := res.Shadow.Snapshot("bitstream", a)
		if err != nil {
			t.Fatal(err)
		}
		if s.Extent(0) == 0 {
			t.Fatalf("frame %d missing from shadow bitstream", a)
		}
		stream = append(stream, s.At(0).Obj().([]byte)...)
	}
	var baseline bytes.Buffer
	enc := &mjpeg.Encoder{Quality: 70}
	if _, err := enc.EncodeStream(video.NewSynthetic(32, 32, frames, 4), &baseline); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stream, baseline.Bytes()) {
		t.Errorf("distributed bitstream (%d bytes) differs from baseline (%d bytes)",
			len(stream), baseline.Len())
	}
}
