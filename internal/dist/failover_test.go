package dist

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/mjpeg"
	"repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/video"
	"repro/internal/workloads"
)

// mulSumReference runs MulSum on a single node and returns it for snapshot
// comparison; failover runs must reproduce its state bit for bit.
func mulSumReference(t *testing.T) *runtime.Node {
	t.Helper()
	ref, err := runtime.NewNode(workloads.MulSum(), runtime.Options{Workers: 2, MaxAge: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	return ref
}

func assertMulSumShadow(t *testing.T, res *MasterResult, ref *runtime.Node) {
	t.Helper()
	for a := 0; a <= 8; a++ {
		for _, f := range []string{"m_data", "p_data"} {
			want, _ := ref.Snapshot(f, a)
			got, err := res.Shadow.Snapshot(f, a)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("%s(%d) = %v, want %v", f, a, got, want)
			}
		}
	}
}

// TestFailoverSurvivorTakeover kills one of two workers mid-run (its
// connection severs on its Nth send) with failover enabled: the master must
// reassign the lost kernels to the survivor, replay the lost write-once
// generations, and finish with exactly the state a clean run produces.
func TestFailoverSurvivorTakeover(t *testing.T) {
	ref := mulSumReference(t)
	const n = 2
	masterConns := make([]Conn, n)
	workerErrs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		var wc Conn
		masterConns[i], wc = InprocPipe()
		if i == 1 {
			// w1 dies abruptly at its 12th send: registration plus a stretch
			// of stores and completions, then the connection severs mid-run.
			wc = NewFaultConn(wc, FaultPlan{SeverSendAt: 12})
		}
		wg.Add(1)
		go func(i int, conn Conn) {
			defer wg.Done()
			_, workerErrs[i] = RunWorker(WorkerConfig{
				NodeID: fmt.Sprintf("w%d", i), Cores: 2,
				Prog: workloads.MulSum(), MaxAge: 8,
			}, conn)
		}(i, wc)
	}
	res, err := RunMaster(MasterConfig{
		Prog: workloads.MulSum(), Method: sched.KL, Failover: true,
	}, masterConns)
	wg.Wait()
	if err != nil {
		t.Fatalf("failover run failed: %v", err)
	}
	if workerErrs[0] != nil {
		t.Fatalf("survivor failed: %v", workerErrs[0])
	}
	if workerErrs[1] == nil {
		t.Fatal("killed worker returned cleanly despite its severed connection")
	}
	if len(res.DeadWorkers) != 1 || res.DeadWorkers[0] != "w1" {
		t.Fatalf("DeadWorkers = %v, want [w1]", res.DeadWorkers)
	}
	if res.Replayed == 0 {
		t.Fatal("no generations were replayed to the survivor")
	}
	if _, ok := res.Reports["w0"]; !ok {
		t.Fatalf("missing survivor report: %v", res.Reports)
	}
	assertMulSumShadow(t, res, ref)
}

// TestFailoverStandbyTakeover: same kill, but a hot standby (registered with
// MJoin) is waiting. The master must promote it, replay the lost state to it,
// and finish bit-identically; the promoted standby returns a real report.
func TestFailoverStandbyTakeover(t *testing.T) {
	ref := mulSumReference(t)
	const n = 2
	masterConns := make([]Conn, n)
	workerErrs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		var wc Conn
		masterConns[i], wc = InprocPipe()
		if i == 1 {
			wc = NewFaultConn(wc, FaultPlan{SeverSendAt: 12})
		}
		wg.Add(1)
		go func(i int, conn Conn) {
			defer wg.Done()
			_, workerErrs[i] = RunWorker(WorkerConfig{
				NodeID: fmt.Sprintf("w%d", i), Cores: 2,
				Prog: workloads.MulSum(), MaxAge: 8,
			}, conn)
		}(i, wc)
	}
	sbMaster, sbWorker := InprocPipe()
	var sbRep *runtime.Report
	var sbErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		sbRep, sbErr = RunWorker(WorkerConfig{
			NodeID: "spare", Cores: 2,
			Prog: workloads.MulSum(), MaxAge: 8, Standby: true,
		}, sbWorker)
	}()
	res, err := RunMaster(MasterConfig{
		Prog: workloads.MulSum(), Method: sched.KL, Failover: true,
		Standbys: []Conn{sbMaster},
	}, masterConns)
	wg.Wait()
	if err != nil {
		t.Fatalf("failover run failed: %v", err)
	}
	if workerErrs[0] != nil {
		t.Fatalf("survivor failed: %v", workerErrs[0])
	}
	if sbErr != nil {
		t.Fatalf("promoted standby failed: %v", sbErr)
	}
	if sbRep == nil {
		t.Fatal("promoted standby returned no report")
	}
	if len(res.DeadWorkers) != 1 || res.DeadWorkers[0] != "w1" {
		t.Fatalf("DeadWorkers = %v, want [w1]", res.DeadWorkers)
	}
	if _, ok := res.Reports["spare"]; !ok {
		t.Fatalf("standby report missing: %v", res.Reports)
	}
	assertMulSumShadow(t, res, ref)
}

// TestStandbyReleasedCleanly: a standby the run never needs must be released
// at shutdown — RunWorker returns (nil, nil), not an error.
func TestStandbyReleasedCleanly(t *testing.T) {
	const n = 2
	masterConns := make([]Conn, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		var wc Conn
		masterConns[i], wc = InprocPipe()
		wg.Add(1)
		go func(i int, conn Conn) {
			defer wg.Done()
			if _, err := RunWorker(WorkerConfig{
				NodeID: fmt.Sprintf("w%d", i), Cores: 1,
				Prog: workloads.MulSum(), MaxAge: 4,
			}, conn); err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i, wc)
	}
	sbMaster, sbWorker := InprocPipe()
	released := make(chan struct{})
	go func() {
		defer close(released)
		rep, err := RunWorker(WorkerConfig{
			NodeID: "spare", Cores: 1,
			Prog: workloads.MulSum(), MaxAge: 4, Standby: true,
		}, sbWorker)
		if rep != nil || err != nil {
			t.Errorf("unused standby returned (%v, %v), want (nil, nil)", rep, err)
		}
	}()
	res, err := RunMaster(MasterConfig{
		Prog: workloads.MulSum(), Method: sched.KL, Failover: true,
		Standbys: []Conn{sbMaster},
	}, masterConns)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DeadWorkers) != 0 || res.Replayed != 0 {
		t.Fatalf("clean run recorded deaths %v / %d replays", res.DeadWorkers, res.Replayed)
	}
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("standby was never released")
	}
}

// TestMasterIdleTimeoutNamesWedgedWorker (regression): a half-open worker
// connection — the peer machine is gone but no RST ever arrives, so the
// worker just falls silent — used to wedge RunMaster forever in a blocking
// Recv. With an idle timeout set, the master must return promptly with an
// error naming the wedged worker.
func TestMasterIdleTimeoutNamesWedgedWorker(t *testing.T) {
	const n = 2
	masterConns := make([]Conn, n)
	var wedged *FaultConn
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		var wc Conn
		masterConns[i], wc = InprocPipe()
		if i == 1 {
			// Everything after registration blocks: the half-open case.
			wedged = NewFaultConn(wc, FaultPlan{WedgeSendAt: 2})
			wc = wedged
		}
		wg.Add(1)
		go func(i int, conn Conn) {
			defer wg.Done()
			// w1 is expected to fail once the wedge releases; w0 must not.
			_, err := RunWorker(WorkerConfig{
				NodeID: fmt.Sprintf("w%d", i), Cores: 1,
				Prog: workloads.MulSum(), MaxAge: 8,
			}, conn)
			if i == 0 && err != nil {
				t.Errorf("healthy worker failed: %v", err)
			}
		}(i, wc)
	}
	done := make(chan error, 1)
	go func() {
		_, err := RunMaster(MasterConfig{
			Prog: workloads.MulSum(), Method: sched.KL,
			IdleTimeout: 200 * time.Millisecond,
		}, masterConns)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("master succeeded with a wedged worker")
		}
		if !strings.Contains(err.Error(), "w1") || !strings.Contains(err.Error(), "idle timeout") {
			t.Fatalf("error %q does not name the wedged worker and the idle timeout", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("master wedged on a half-open worker connection")
	}
	// Release the wedge so the blocked worker goroutine can tear down.
	wedged.Close()
	wg.Wait()
}

// TestLivenessCatchesSilentPartition (regression): a worker whose sends are
// silently discarded (its half of the connection stays open, so no transport
// error ever fires) must be declared dead by the heartbeat monitor — without
// failover the run fails naming the worker instead of hanging.
func TestLivenessCatchesSilentPartition(t *testing.T) {
	const n = 2
	masterConns := make([]Conn, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		var wc Conn
		masterConns[i], wc = InprocPipe()
		if i == 1 {
			// Registration goes through; every later send vanishes.
			wc = NewFaultConn(wc, FaultPlan{DropSendFrom: 2})
		}
		wg.Add(1)
		go func(i int, conn Conn) {
			defer wg.Done()
			// w1's connection is eventually closed by the master; both exits
			// are tolerated here, correctness is asserted master-side.
			_, _ = RunWorker(WorkerConfig{
				NodeID: fmt.Sprintf("w%d", i), Cores: 1,
				Prog: workloads.MulSum(), MaxAge: 8,
			}, conn)
		}(i, wc)
	}
	done := make(chan error, 1)
	go func() {
		_, err := RunMaster(MasterConfig{
			Prog: workloads.MulSum(), Method: sched.KL,
			Heartbeat: 50 * time.Millisecond, MaxMissed: 4,
		}, masterConns)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("master succeeded despite a silently partitioned worker")
		}
		if !strings.Contains(err.Error(), "w1") || !strings.Contains(err.Error(), "missed") {
			t.Fatalf("error %q does not name the silent worker and the missed heartbeats", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("liveness monitor never fired on a silent partition")
	}
	wg.Wait()
}

// TestLivenessDuringStopPhase (regression): quiescence used to trust a stale
// heartbeat forever — a worker that died right after its last idle status
// (and after MStopReq went out) hung report collection with no timeout. The
// liveness monitor must keep running through the stop phase and fail the run
// naming the worker.
func TestLivenessDuringStopPhase(t *testing.T) {
	prog := bigStoreProg(t, 4)
	mc, wc := InprocPipe()
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		// Scripted worker: run the protocol honestly up to the stop request,
		// then die silently — the connection stays open but the final report
		// never comes.
		if err := wc.Send(&Msg{Kind: MRegister, NodeID: "w0", Cores: 1, Speed: 1}); err != nil {
			return
		}
		for {
			m, err := wc.Recv()
			if err != nil {
				return
			}
			switch m.Kind {
			case MStart:
				// Behave as if src ran: one whole generation plus its
				// completion, giving the shadow a quiescent state to match
				// the idle heartbeats below.
				arr := field.ArrayFromInt32([]int32{0, 1, 2, 3})
				wc.Send(&Msg{Kind: MStore, Store: runtime.StoreNotice{Field: "data", Age: 0, Whole: true, Value: field.ArrayVal(arr)}})
				wc.Send(&Msg{Kind: MDone, Kernel: "src", Age: 0})
			case MPing:
				wc.Send(&Msg{Kind: MStatus, Idle: true, Sent: 2, Received: 0})
			case MStopReq:
				return // dead: no MReport, connection left open
			}
		}
	}()
	done := make(chan error, 1)
	go func() {
		_, err := RunMaster(MasterConfig{
			Prog: prog, Method: sched.Greedy,
			Heartbeat: 50 * time.Millisecond, MaxMissed: 4,
		}, []Conn{mc})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("master collected a report from a dead worker")
		}
		if !strings.Contains(err.Error(), "w0") || !strings.Contains(err.Error(), "missed") {
			t.Fatalf("error %q does not name the dead worker and the missed heartbeats", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("master hung waiting for a dead worker's report")
	}
	<-workerDone
}

// failoverBoomProg: "src" stores a generation, "bad" consumes it and fails.
// The fetch dependency guarantees the failure fires mid-protocol, with the
// other worker's state still live.
func failoverBoomProg(t *testing.T) *core.Program {
	t.Helper()
	b := core.NewBuilder("boom")
	b.Field("f", field.Int32, 1, true)
	b.Field("g", field.Int32, 1, true)
	b.Kernel("src").
		Local("v", field.Int32, 1).
		StoreAll("f", core.AgeAt(0), "v").
		Body(func(c *core.Ctx) error {
			c.Array("v").Put(field.Int32Val(1), 0)
			return nil
		})
	b.Kernel("bad").Age("a").Index("x").
		Local("v", field.Int32, 0).
		Fetch("v", "f", core.AgeVar(0), core.Idx("x")).
		Store("g", core.AgeVar(0), []core.IndexSpec{core.Idx("x")}, "v").
		Body(func(c *core.Ctx) error {
			return errors.New("boom failure")
		})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestMasterFailureBroadcastsStop (regression): when the run fails (here: a
// worker's kernel errors), the master used to just close every connection.
// Survivors then saw a transport error and exited through the error path,
// reported as failures with their node state torn down abruptly. The master
// must broadcast MStopReq first so survivors shut down through the normal
// stop path and return nil.
func TestMasterFailureBroadcastsStop(t *testing.T) {
	const n = 2
	masterConns := make([]Conn, n)
	workerErrs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		var wc Conn
		masterConns[i], wc = InprocPipe()
		wg.Add(1)
		go func(i int, conn Conn) {
			defer wg.Done()
			_, workerErrs[i] = RunWorker(WorkerConfig{
				NodeID: fmt.Sprintf("w%d", i), Cores: 1, Prog: failoverBoomProg(t),
			}, conn)
		}(i, wc)
	}
	_, err := RunMaster(MasterConfig{Prog: failoverBoomProg(t), Method: sched.Greedy}, masterConns)
	wg.Wait()
	if err == nil || !strings.Contains(err.Error(), "boom failure") {
		t.Fatalf("master error = %v, want the injected kernel failure", err)
	}
	var failed, clean int
	for i := 0; i < n; i++ {
		if workerErrs[i] != nil {
			failed++
		} else {
			clean++
		}
	}
	// Exactly one worker hosted the failing kernel; the other must have been
	// stopped cleanly instead of erroring on a closed connection.
	if failed != 1 || clean != 1 {
		t.Fatalf("worker exits: %v — want one failure (the faulty kernel's host) and one clean stop", workerErrs)
	}
}

// TestMasterAbortReleasesHandshakeWorkers (regression): a master that failed
// before the broker loop existed (bad registration, partition error, ...)
// used to just return, leaving every already-connected worker blocked in its
// handshake forever. It must broadcast the reason and close.
func TestMasterAbortReleasesHandshakeWorkers(t *testing.T) {
	good, goodWorker := InprocPipe()
	bad, badWorker := InprocPipe()
	// The bad "worker" speaks garbage first, failing the master's
	// registration phase while the good worker sits in its handshake.
	if err := badWorker.Send(&Msg{Kind: MPing}); err != nil {
		t.Fatal(err)
	}
	workerDone := make(chan error, 1)
	go func() {
		_, err := RunWorker(WorkerConfig{
			NodeID: "good", Cores: 1, Prog: workloads.MulSum(), MaxAge: 2,
		}, goodWorker)
		workerDone <- err
	}()
	_, err := RunMaster(MasterConfig{Prog: workloads.MulSum(), Method: sched.Greedy}, []Conn{good, bad})
	if err == nil || !strings.Contains(err.Error(), "expected registration") {
		t.Fatalf("master error = %v, want registration failure", err)
	}
	select {
	case werr := <-workerDone:
		if werr == nil || !strings.Contains(werr.Error(), "master reported error") {
			t.Fatalf("worker error = %v, want the master's abort reason", werr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker still blocked in its handshake after the master aborted")
	}
}

// distMJPEGFailover runs the MJPEG pipeline across two TCP workers with the
// second worker's connection severing mid-stream, and returns the master's
// outcome. The survivor must exit cleanly when failover is on. Workers build
// the program from the spec via the factory — required for failover, since a
// rebuilt node must restart the video source from frame zero rather than
// resume a half-consumed stream.
func distMJPEGFailover(t *testing.T, frames int, failover bool) (*MasterResult, error) {
	t.Helper()
	spec := fmt.Sprintf("mjpeg:frames=%d,w=32,h=32,quality=70,seed=4", frames)
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 2
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := DialTCP(l.Addr())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			if i == 1 {
				// tcp1 dies abruptly a few messages into the run.
				conn = NewFaultConn(conn, FaultPlan{SeverSendAt: 4})
			}
			_, werr := RunWorker(WorkerConfig{
				NodeID: fmt.Sprintf("tcp%d", i), Cores: 2, Factory: workloads.FromSpec,
			}, conn)
			if i == 0 && failover && werr != nil {
				t.Errorf("survivor failed: %v", werr)
			}
		}(i)
	}
	conns := make([]Conn, n)
	for i := range conns {
		c, err := l.Accept()
		if err != nil {
			t.Error(err)
			return nil, err
		}
		conns[i] = c
	}
	prog, err := workloads.FromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunMaster(MasterConfig{
		Prog: prog, Spec: spec, Method: sched.KL, Failover: failover,
	}, conns)
	wg.Wait()
	return res, err
}

// TestFailoverMJPEGOverTCP is the acceptance scenario: the MJPEG pipeline
// over real TCP, one worker killed mid-stream. With failover on, the
// bitstream must come out bit-identical to the single-node encoder; with it
// off, the run must fail promptly with an error naming the killed worker.
func TestFailoverMJPEGOverTCP(t *testing.T) {
	workloads.RegisterPayloads()
	const frames = 4
	var baseline bytes.Buffer
	enc := &mjpeg.Encoder{Quality: 70}
	if _, err := enc.EncodeStream(video.NewSynthetic(32, 32, frames, 4), &baseline); err != nil {
		t.Fatal(err)
	}

	t.Run("failover-on-bit-identical", func(t *testing.T) {
		res, err := distMJPEGFailover(t, frames, true)
		if err != nil {
			t.Fatalf("failover run failed: %v", err)
		}
		if len(res.DeadWorkers) != 1 || res.DeadWorkers[0] != "tcp1" {
			t.Fatalf("DeadWorkers = %v, want [tcp1]", res.DeadWorkers)
		}
		var stream []byte
		for a := 0; a < frames; a++ {
			s, err := res.Shadow.Snapshot("bitstream", a)
			if err != nil {
				t.Fatal(err)
			}
			if s.Extent(0) == 0 {
				t.Fatalf("frame %d missing from shadow bitstream", a)
			}
			stream = append(stream, s.At(0).Obj().([]byte)...)
		}
		if !bytes.Equal(stream, baseline.Bytes()) {
			t.Errorf("failover bitstream (%d bytes) differs from baseline (%d bytes)",
				len(stream), baseline.Len())
		}
	})
	t.Run("failover-off-named-error", func(t *testing.T) {
		done := make(chan error, 1)
		go func() {
			_, err := distMJPEGFailover(t, frames, false)
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("fail-fast run succeeded despite a killed worker")
			}
			if !strings.Contains(err.Error(), "tcp1") {
				t.Fatalf("error %q does not name the killed worker", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("fail-fast run hung on a killed worker")
		}
	})
}

// TestFailoverRecoveryDoesNotCascade (regression): reassignment and replay
// run inside the master's main loop, so recovering a large shadow can
// outlast the liveness window — and nobody is pinged while it runs. That
// silence is the master's own, not the workers', and must not be counted
// against them: one death must not cascade into falsely declaring every
// healthy survivor dead. Every master-side link here is artificially slowed
// so the replay takes several liveness windows.
func TestFailoverRecoveryDoesNotCascade(t *testing.T) {
	b := core.NewBuilder("cascade")
	b.Field("data", field.Int32, 1, true)
	// Self-feeding source: consumes its own output, so the rebuilt worker's
	// kernel set consumes "data" and the recovery replays every generation.
	b.Kernel("gen").Age("a").
		Local("v", field.Int32, 1).
		FetchAll("v", "data", core.AgeVar(0)).
		StoreAll("data", core.AgeVar(1), "v").
		Body(func(c *core.Ctx) error { return nil })
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	const gens = 40
	// The victim's stores cross a link delayed up to 20ms per message, so it
	// must stay visibly alive (busy heartbeats) long enough for the master
	// to ingest all of them — only then does it fall silent, guaranteeing
	// the recovery replays the full shadow.
	const silenceAfter = 1200 * time.Millisecond
	// Scripted worker: whichever node the partitioner hands "gen" plays the
	// victim. The other node stays healthy but quiet: it answers every ping
	// and otherwise only counts the data the master sends it.
	mkWorker := func(conn Conn, id string) chan error {
		done := make(chan error, 1)
		go func() {
			done <- func() error {
				if err := conn.Send(&Msg{Kind: MRegister, NodeID: id, Cores: 1, Speed: 1}); err != nil {
					return err
				}
				victim := false
				var started time.Time
				var received int64
				for {
					m, err := conn.Recv()
					if err != nil {
						if victim {
							return nil // master closed the declared-dead node
						}
						return err
					}
					if victim && !started.IsZero() && time.Since(started) > silenceAfter {
						for { // silent death: connection open, no replies
							if _, err := conn.Recv(); err != nil {
								return nil
							}
						}
					}
					switch m.Kind {
					case MAssign:
						for _, k := range m.Kernels {
							if k == "gen" {
								victim = true
							}
						}
					case MStart:
						if victim {
							started = time.Now()
							for a := 0; a < gens; a++ {
								arr := field.ArrayFromInt32([]int32{int32(a), int32(a * 2)})
								if err := conn.Send(&Msg{Kind: MStore, Store: runtime.StoreNotice{Field: "data", Age: a, Whole: true, Value: field.ArrayVal(arr)}}); err != nil {
									return err
								}
							}
						}
					case MStore, MStoreFrame, MDone:
						received++
					case MReassign:
						received = 0 // rebuilt from scratch, like a real worker
					case MPing:
						// The victim reports busy so the run cannot quiesce
						// before its death; the survivor is honestly idle.
						st := &Msg{Kind: MStatus, Idle: !victim, Received: received}
						if victim {
							st.Sent = gens
						}
						if err := conn.Send(st); err != nil {
							return err
						}
					case MStopReq:
						return conn.Send(&Msg{Kind: MReport, Report: &runtime.Report{}})
					}
				}
			}()
		}()
		return done
	}

	mc0, wc0 := InprocPipe()
	mc1, wc1 := InprocPipe()
	w0 := mkWorker(wc0, "w0")
	w1 := mkWorker(wc1, "w1")
	// Liveness window 60ms x 4 = 240ms; replaying 40 generations across a
	// 20ms-per-message link takes ~800ms, several windows deep. The poll
	// interval is raised above the cost of one delayed ping round (2 sends
	// x 20ms inline) so the master still drains replies between rounds: a
	// healthy ping round trip is ~60ms, well inside the window, and the
	// only way the survivor can look stale is the master's own recovery
	// stall.
	slow := FaultPlan{Delay: 20 * time.Millisecond, DelayEvery: 1}
	res, err := RunMaster(MasterConfig{
		Prog: prog, Method: sched.Greedy, Failover: true,
		Heartbeat: 60 * time.Millisecond, MaxMissed: 4,
		PollInterval: 100 * time.Millisecond,
	}, []Conn{NewFaultConn(mc0, slow), NewFaultConn(mc1, slow)})
	if err != nil {
		t.Fatalf("recovery cascaded into failure: %v", err)
	}
	if len(res.DeadWorkers) != 1 {
		t.Fatalf("dead workers = %v, want exactly the victim", res.DeadWorkers)
	}
	if res.Replayed < gens {
		t.Fatalf("replayed %d generations, want at least %d", res.Replayed, gens)
	}
	for _, c := range []chan error{w0, w1} {
		select {
		case err := <-c:
			if err != nil {
				t.Fatalf("worker failed: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("worker never released")
		}
	}
}
