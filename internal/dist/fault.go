package dist

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Fault injection for the failover and liveness tests: FaultConn wraps a Conn
// and misbehaves on schedule — severing, wedging, dropping or delaying at the
// Nth message — so tests can kill a worker mid-run or simulate a half-open
// connection deterministically. Counters are atomic and the delay jitter is
// seeded, so runs are reproducible under -race.

// FaultPlan schedules the misbehavior of one FaultConn. Message counts are
// 1-based and independent per direction; zero disables that fault.
type FaultPlan struct {
	// SeverSendAt closes the underlying connection instead of performing the
	// Nth send — the abrupt process-death case: the peer sees EOF/RST.
	SeverSendAt int64
	// SeverRecvAt closes the underlying connection instead of performing the
	// Nth receive.
	SeverRecvAt int64
	// WedgeSendAt blocks the Nth and later sends until the conn is closed —
	// the half-open case seen from a sender.
	WedgeSendAt int64
	// WedgeRecvAt blocks the Nth and later receives until the conn is
	// closed — the half-open case: the peer is gone but no RST ever arrives,
	// so nothing is ever delivered and nothing errors.
	WedgeRecvAt int64
	// DropSendFrom silently discards the Nth and later sends (they report
	// success). The peer keeps its half of the connection open but hears
	// nothing more — the silent-partition case liveness must catch.
	DropSendFrom int64
	// Delay sleeps up to this duration (seeded-random jitter) before every
	// DelayEvery-th message in either direction.
	Delay      time.Duration
	DelayEvery int64
	// Seed feeds the jitter source; the zero seed is replaced with 1.
	Seed int64
}

// FaultConn wraps a Conn with scheduled faults. It forwards FrameConn,
// StatsReporter and IdleTimeoutConn when the underlying transport implements
// them (SendFrame counts as one send against the plan).
type FaultConn struct {
	under Conn
	plan  FaultPlan

	sends atomic.Int64
	recvs atomic.Int64

	mu     sync.Mutex
	rng    *rand.Rand
	closed chan struct{}
	once   sync.Once
}

// NewFaultConn wraps c with the given fault plan.
func NewFaultConn(c Conn, plan FaultPlan) *FaultConn {
	seed := plan.Seed
	if seed == 0 {
		seed = 1
	}
	return &FaultConn{
		under:  c,
		plan:   plan,
		rng:    rand.New(rand.NewSource(seed)),
		closed: make(chan struct{}),
	}
}

// Sends returns how many send operations have been attempted.
func (c *FaultConn) Sends() int64 { return c.sends.Load() }

// Recvs returns how many receive operations have been attempted.
func (c *FaultConn) Recvs() int64 { return c.recvs.Load() }

func (c *FaultConn) maybeDelay(n int64) {
	if c.plan.Delay <= 0 || c.plan.DelayEvery <= 0 || n%c.plan.DelayEvery != 0 {
		return
	}
	c.mu.Lock()
	d := time.Duration(c.rng.Int63n(int64(c.plan.Delay) + 1))
	c.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
}

// wedge blocks until the conn is closed, then reports the closure.
func (c *FaultConn) wedge(op string) error {
	<-c.closed
	return fmt.Errorf("dist: fault-injected wedge on %s released by close", op)
}

func (c *FaultConn) checkSend() (drop bool, err error) {
	n := c.sends.Add(1)
	if c.plan.SeverSendAt > 0 && n >= c.plan.SeverSendAt {
		c.Close()
		return false, fmt.Errorf("dist: fault-injected sever at send %d", n)
	}
	if c.plan.WedgeSendAt > 0 && n >= c.plan.WedgeSendAt {
		return false, c.wedge("send")
	}
	c.maybeDelay(n)
	if c.plan.DropSendFrom > 0 && n >= c.plan.DropSendFrom {
		return true, nil
	}
	return false, nil
}

func (c *FaultConn) Send(m *Msg) error {
	drop, err := c.checkSend()
	if err != nil {
		return err
	}
	if drop {
		return nil
	}
	return c.under.Send(m)
}

// SendFrame forwards scatter-gather sends when the underlying transport
// supports them, flattening into a plain Send otherwise.
func (c *FaultConn) SendFrame(m *Msg, segs net.Buffers) error {
	drop, err := c.checkSend()
	if err != nil {
		return err
	}
	if drop {
		return nil
	}
	if fc, ok := c.under.(FrameConn); ok {
		return fc.SendFrame(m, segs)
	}
	env := *m
	var flat []byte
	for _, s := range segs {
		flat = append(flat, s...)
	}
	env.Frame = flat
	env.FrameLen = 0
	return c.under.Send(&env)
}

func (c *FaultConn) Recv() (*Msg, error) {
	n := c.recvs.Add(1)
	if c.plan.SeverRecvAt > 0 && n >= c.plan.SeverRecvAt {
		c.Close()
		return nil, fmt.Errorf("dist: fault-injected sever at recv %d", n)
	}
	if c.plan.WedgeRecvAt > 0 && n >= c.plan.WedgeRecvAt {
		return nil, c.wedge("recv")
	}
	c.maybeDelay(n)
	return c.under.Recv()
}

func (c *FaultConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return c.under.Close()
}

// SetIdleTimeout forwards to the underlying transport when supported.
func (c *FaultConn) SetIdleTimeout(d time.Duration) {
	SetConnIdleTimeout(c.under, d)
}

// Stats forwards to the underlying transport when supported.
func (c *FaultConn) Stats() ConnStats {
	if sr, ok := c.under.(StatsReporter); ok {
		return sr.Stats()
	}
	return ConnStats{}
}
