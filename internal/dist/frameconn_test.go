package dist

import (
	"bytes"
	"net"
	"testing"

	"repro/internal/field"
	"repro/internal/runtime"
)

// tcpPair returns a connected TCP loopback pair (client, server).
func tcpPair(t *testing.T) (Conn, Conn) {
	t.Helper()
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	dialed := make(chan Conn, 1)
	errs := make(chan error, 1)
	go func() {
		c, err := DialTCP(l.Addr())
		if err != nil {
			errs <- err
			return
		}
		dialed <- c
	}()
	srv, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	var cli Conn
	select {
	case cli = <-dialed:
	case err := <-errs:
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close(); srv.Close() })
	return cli, srv
}

// scatterFrame builds a store frame whose payload is large enough to be
// recorded as raw segments rather than copied into the header buffer.
func scatterFrame(t *testing.T) *runtime.StoreFrame {
	t.Helper()
	vals := make([]float64, 512)
	for i := range vals {
		vals[i] = float64(i) * 0.25
	}
	f := runtime.GetStoreFrame()
	f.Reset("pixels", 3)
	if err := f.Add(runtime.StoreNotice{
		Field: "pixels", Age: 3, Whole: true,
		Value: field.ArrayVal(field.ArrayFromFloat64(vals)),
	}); err != nil {
		t.Fatal(err)
	}
	if err := f.Add(runtime.StoreNotice{
		Field: "pixels", Age: 3, Elem: []int{7},
		Value: field.Float64Val(1.5),
	}); err != nil {
		t.Fatal(err)
	}
	if len(f.Segments()) < 2 { // header buf + ≥1 raw slab segment
		t.Fatalf("payload not recorded scatter-gather: %d segments", len(f.Segments()))
	}
	return f
}

// TestTCPSendFrameRoundTrip: a scatter-gather SendFrame must arrive as a
// regular MStoreFrame message — Frame materialized bit-identically to the
// flattened encoding, FrameLen zeroed, envelope fields intact, and the
// sender's shared *Msg unmutated.
func TestTCPSendFrameRoundTrip(t *testing.T) {
	cli, srv := tcpPair(t)
	fc, ok := cli.(FrameConn)
	if !ok {
		t.Fatal("TCP connection does not implement FrameConn")
	}

	f := scatterFrame(t)
	want := f.AppendTo(nil)
	m := &Msg{Kind: MStoreFrame, Field: "pixels", Age: 3, Trace: 0xBEEF}
	if err := fc.SendFrame(m, f.Segments()); err != nil {
		t.Fatal(err)
	}
	if m.Frame != nil || m.FrameLen != 0 {
		t.Fatalf("SendFrame mutated the shared envelope: Frame=%d bytes FrameLen=%d",
			len(m.Frame), m.FrameLen)
	}

	got, err := srv.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != MStoreFrame || got.Field != "pixels" || got.Age != 3 || got.Trace != 0xBEEF {
		t.Fatalf("envelope corrupted: %+v", got)
	}
	if got.FrameLen != 0 {
		t.Fatalf("receiver exposed split form: FrameLen=%d", got.FrameLen)
	}
	if !bytes.Equal(got.Frame, want) {
		t.Fatalf("raw frame differs: got %d bytes, want %d", len(got.Frame), len(want))
	}
	var notices []runtime.StoreNotice
	if err := runtime.DecodeStoreFrame(got.Frame, func(sn runtime.StoreNotice) error {
		notices = append(notices, sn)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(notices) != 2 || notices[0].Field != "pixels" || notices[0].Age != 3 || !notices[0].Whole {
		t.Fatalf("decoded frame wrong: %+v", notices)
	}
	runtime.PutStoreFrame(f)
}

// TestTCPSendFrameInterleaved proves the raw-bytes framing leaves the gob
// stream aligned: plain Sends before, between, and after SendFrames must all
// arrive intact and in order.
func TestTCPSendFrameInterleaved(t *testing.T) {
	cli, srv := tcpPair(t)
	fc := cli.(FrameConn)

	f := scatterFrame(t)
	want := f.AppendTo(nil)
	defer runtime.PutStoreFrame(f)

	if err := cli.Send(&Msg{Kind: MRegister, NodeID: "n0"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := fc.SendFrame(&Msg{Kind: MStoreFrame, Field: "pixels", Age: i}, f.Segments()); err != nil {
			t.Fatal(err)
		}
		if err := cli.Send(&Msg{Kind: MDone, Field: "pixels", Age: i}); err != nil {
			t.Fatal(err)
		}
	}

	if m, err := srv.Recv(); err != nil || m.Kind != MRegister || m.NodeID != "n0" {
		t.Fatalf("first message: %+v, %v", m, err)
	}
	for i := 0; i < 3; i++ {
		m, err := srv.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Kind != MStoreFrame || m.Age != i || !bytes.Equal(m.Frame, want) {
			t.Fatalf("frame %d corrupted: kind=%v age=%d len=%d", i, m.Kind, m.Age, len(m.Frame))
		}
		m, err = srv.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Kind != MDone || m.Age != i {
			t.Fatalf("done %d corrupted: %+v", i, m)
		}
	}

	// Master-forward shape: a received frame goes back out as one raw buffer.
	if err := fc.SendFrame(&Msg{Kind: MStoreFrame, Field: "pixels", Age: 9}, net.Buffers{want}); err != nil {
		t.Fatal(err)
	}
	m, err := srv.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Age != 9 || !bytes.Equal(m.Frame, want) {
		t.Fatalf("forwarded frame corrupted: age=%d len=%d", m.Age, len(m.Frame))
	}
}
