package dist

import (
	"fmt"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/sched"
)

// MasterConfig configures a master node run.
type MasterConfig struct {
	// Prog is the program to distribute. Every participating node must
	// construct the same program (kernel bodies are code, not data).
	Prog *core.Program
	// Method selects the HLS partitioning algorithm.
	Method sched.Method
	// Spec is an optional program identifier forwarded to workers that
	// build their program from a registry (the cmd tools).
	Spec string
	// Weights, when set, applies instrumentation from a previous run to
	// the final graph before partitioning — the repartitioning feedback
	// loop of §IV ("using instrumentation data collected from the nodes
	// executing the workload the final graph can be weighted ... and
	// repartitioned").
	Weights *runtime.Report
	// PollInterval is the quiescence-detection ping period; zero selects
	// 2ms.
	PollInterval time.Duration
	// View, when set, is kept current with the run's phase, assignment and
	// per-worker heartbeats — it backs the master's /statusz endpoint.
	View *ClusterView
	// Metrics, when set, instruments the master's shadow node, and the
	// broker additionally records per-worker message flight times
	// (clock-offset corrected) under obs.MStageFlightNs.
	Metrics *obs.Registry
	// Tracer, when set, records the master's own spans: the shadow node's
	// lifecycle plus one broker span per forwarded store frame, tagged with
	// the frame's causal trace id.
	Tracer *obs.Tracer
	// CollectTraces pulls every worker's span buffer at shutdown
	// (MTraceReq/MTrace) into MasterResult.Traces, clock-aligned and ready
	// for obs.WriteMergedChromeTrace. Implied by Tracer for the handshake's
	// clock sync, but useful alone: workers trace, the master only merges.
	CollectTraces bool
}

// MasterResult is the outcome of a distributed run.
type MasterResult struct {
	// Assignment maps kernel names to worker indices.
	Assignment map[string]int
	// Cost is the HLS cost of the chosen assignment.
	Cost sched.Cost
	// Reports holds each worker's instrumentation report by node ID.
	Reports map[string]*runtime.Report
	// Shadow is the master's field replica: it observed every store, so
	// Snapshot on it returns the complete program state.
	Shadow *runtime.Node
	// Traces holds each worker's clock-aligned span bundle (only with
	// CollectTraces); append the master's own tracer bundle and hand the
	// lot to obs.WriteMergedChromeTrace for one cluster-wide timeline.
	Traces []obs.NodeTrace
	// ClockOffsets maps node IDs to their estimated clock offset relative
	// to the master (nanoseconds, worker minus master); empty when the run
	// was not observed (no metrics, tracer, or trace collection).
	ClockOffsets map[string]int64
}

// RunMaster drives a distributed execution over already-established worker
// connections: registration, partitioning, assignment, event brokering,
// global quiescence detection, shutdown and report collection.
func RunMaster(cfg MasterConfig, conns []Conn) (*MasterResult, error) {
	if len(conns) == 0 {
		return nil, fmt.Errorf("dist: master needs at least one worker")
	}
	if err := cfg.Prog.Validate(); err != nil {
		return nil, err
	}
	poll := cfg.PollInterval
	if poll <= 0 {
		poll = 2 * time.Millisecond
	}

	// Registration: collect the global topology.
	topo := sched.Topology{Bandwidth: 1}
	ids := make([]string, len(conns))
	for i, c := range conns {
		m, err := c.Recv()
		if err != nil {
			return nil, fmt.Errorf("dist: waiting for registration: %w", err)
		}
		if m.Kind != MRegister {
			return nil, fmt.Errorf("dist: expected registration, got %v", m.Kind)
		}
		ids[i] = m.NodeID
		topo = topo.Add(m.NodeID, m.Cores, m.Speed)
		cfg.View.registerWorker(i, m.NodeID, m.Cores, m.Speed)
	}

	// Clock sync: estimate each worker's offset so spans and flight times
	// land on one timeline. Gated on observability being requested — the
	// probes add handshake round trips, and workers that predate the
	// protocol extension tolerate them but plain runs shouldn't pay.
	observed := cfg.Metrics != nil || cfg.Tracer != nil || cfg.CollectTraces
	offsets := make([]int64, len(conns))
	if observed {
		for i, c := range conns {
			off, err := estimateClockOffset(c, clockProbes)
			if err != nil {
				return nil, fmt.Errorf("dist: syncing clock of %s: %w", ids[i], err)
			}
			offsets[i] = off
		}
	}
	cfg.View.setPhase("partitioning")

	// Partition the final implicit static dependency graph, weighted with
	// prior instrumentation when available.
	fin := graph.BuildFinal(cfg.Prog)
	if err := fin.CheckSchedulable(); err != nil {
		return nil, err
	}
	if cfg.Weights != nil {
		sched.ApplyInstrumentation(fin, cfg.Weights)
	}
	assign, cost, err := sched.Partition(fin, topo, cfg.Method)
	if err != nil {
		return nil, err
	}
	kernelNode := make(map[string]int, len(fin.Nodes))
	kernelsOf := make([][]string, len(conns))
	for i, kn := range fin.Nodes {
		kernelNode[kn.Name] = assign[i]
		kernelsOf[assign[i]] = append(kernelsOf[assign[i]], kn.Name)
	}
	cfg.View.setAssignment(kernelNode, cfg.Method.String())

	// Subscriber maps: which workers consume each field, and which workers
	// need each kernel's completion events (they consume a field it
	// stores).
	fieldSubs := make(map[string][]int)
	kernelSubs := make(map[string][]int)
	consumes := make([]map[string]bool, len(conns))
	for i := range conns {
		consumes[i] = map[string]bool{}
		for _, kn := range kernelsOf[i] {
			k := cfg.Prog.Kernel(kn)
			for _, f := range k.Fetches {
				consumes[i][f.Field] = true
			}
		}
	}
	for _, f := range cfg.Prog.Fields {
		for i := range conns {
			if consumes[i][f.Name] {
				fieldSubs[f.Name] = append(fieldSubs[f.Name], i)
			}
		}
	}
	for _, k := range cfg.Prog.Kernels {
		seen := map[int]bool{}
		for _, s := range k.Stores {
			for _, i := range fieldSubs[s.Field] {
				if !seen[i] {
					seen[i] = true
					kernelSubs[k.Name] = append(kernelSubs[k.Name], i)
				}
			}
		}
	}

	// The master's shadow node replicates all fields (every kernel is
	// remote from its perspective), giving complete final state.
	allRemote := make(map[string]bool, len(cfg.Prog.Kernels))
	for _, k := range cfg.Prog.Kernels {
		allRemote[k.Name] = true
	}
	shadow, err := runtime.NewNode(cfg.Prog, runtime.Options{
		Workers:       1,
		RemoteKernels: allRemote,
		NoAutoQuiesce: true,
		Metrics:       cfg.Metrics,
		Tracer:        cfg.Tracer,
	})
	if err != nil {
		return nil, err
	}
	shadowDone := make(chan error, 1)
	go func() {
		_, err := shadow.Run()
		shadowDone <- err
	}()
	// Master-side frame accounting (nil-safe when cfg.Metrics is nil), plus
	// per-worker message flight histograms when metrics are on.
	mFrames := cfg.Metrics.Counter(obs.MDistFramesTotal)
	mFrameBytes := cfg.Metrics.Counter(obs.MDistFrameBytesTotal)
	hFlight := make([]*obs.Histogram, len(conns))
	if cfg.Metrics != nil {
		for i := range conns {
			hFlight[i] = cfg.Metrics.Histogram(obs.Label(obs.MStageFlightNs, "node", ids[i]))
		}
	}

	// Assign partitions and start; MStart carries the clock-sync result so
	// workers can correct master-stamped timestamps.
	for i, c := range conns {
		if err := c.Send(&Msg{Kind: MAssign, Kernels: kernelsOf[i], Spec: cfg.Spec, TraceOn: cfg.CollectTraces}); err != nil {
			return nil, err
		}
	}
	for i, c := range conns {
		if err := c.Send(&Msg{Kind: MStart, OffsetNs: offsets[i], Synced: observed, SentNs: time.Now().UnixNano()}); err != nil {
			return nil, err
		}
	}
	cfg.View.setPhase("running")

	// Broker loop: fan worker events to subscribers and the shadow.
	type inbound struct {
		from int
		msg  *Msg
		err  error
	}
	// Readers select on brokerStop so they exit once RunMaster returns:
	// after a failure the main loop stops draining inboxes, and a reader
	// blocked on the full buffer would otherwise leak (its Recv keeps
	// producing until the closed connection errors out).
	inboxes := make(chan inbound, 1024)
	brokerStop := make(chan struct{})
	defer close(brokerStop)
	for i, c := range conns {
		go func(i int, c Conn) {
			for {
				m, err := c.Recv()
				select {
				case inboxes <- inbound{from: i, msg: m, err: err}:
				case <-brokerStop:
					return
				}
				if err != nil {
					return
				}
			}
		}(i, c)
	}

	forwarded := make([]int64, len(conns))
	status := make([]Msg, len(conns))
	statusSeen := make([]bool, len(conns))
	reports := map[string]*runtime.Report{}
	var traces []obs.NodeTrace
	stableRounds := 0
	var lastTotal int64 = -1
	stopSent := false

	// observeFlight records how long a worker message spent in flight:
	// master receive time minus the worker's send stamp rebased to the
	// master clock. Clamped at zero — the offset estimate has RTT/2 error,
	// so fast messages can appear to arrive before they left.
	observeFlight := func(from int, m *Msg) {
		if hFlight[from] == nil || m.SentNs == 0 {
			return
		}
		flight := time.Now().UnixNano() - (m.SentNs - offsets[from])
		if flight < 0 {
			flight = 0
		}
		hFlight[from].Observe(time.Duration(flight))
	}

	forward := func(from int, subs []int, m *Msg) error {
		for _, i := range subs {
			if i == from {
				continue
			}
			// Frame payloads skip gob on capable transports: the broker
			// writes the received bytes raw after a copied envelope, so a
			// frame is gob-encoded at most zero times on the fan-out path.
			// SendFrame never mutates m, which all subscribers share.
			if fc, ok := conns[i].(FrameConn); ok && len(m.Frame) > 0 {
				if err := fc.SendFrame(m, net.Buffers{m.Frame}); err != nil {
					return err
				}
			} else if err := conns[i].Send(m); err != nil {
				return err
			}
			forwarded[i]++
		}
		return nil
	}

	ticker := time.NewTicker(poll)
	defer ticker.Stop()

	fail := func(err error) (*MasterResult, error) {
		cfg.View.setPhase("failed: " + err.Error())
		for _, c := range conns {
			c.Close()
		}
		shadow.Stop()
		<-shadowDone
		return nil, err
	}

	for len(reports) < len(conns) {
		select {
		case in := <-inboxes:
			if in.err != nil {
				if _, have := reports[ids[in.from]]; have {
					continue // connection closed after its report: fine
				}
				return fail(fmt.Errorf("dist: worker %s: %w", ids[in.from], in.err))
			}
			m := in.msg
			observeFlight(in.from, m)
			switch m.Kind {
			case MStore:
				if err := shadow.InjectStore(m.Store); err != nil {
					return fail(fmt.Errorf("dist: shadow store: %w", err))
				}
				if err := forward(in.from, fieldSubs[m.Store.Field], m); err != nil {
					return fail(err)
				}
			case MStoreFrame:
				// The envelope's Field/Age mirror the frame header, so
				// routing needs no decode; the frame bytes are forwarded
				// to subscribers as-is and only replayed into the shadow.
				brokerFrom := cfg.Tracer.Now()
				if err := shadow.InjectStoreFrame(m.Frame); err != nil {
					return fail(fmt.Errorf("dist: shadow store frame: %w", err))
				}
				mFrames.Inc()
				mFrameBytes.Add(int64(len(m.Frame)))
				if err := forward(in.from, fieldSubs[m.Field], m); err != nil {
					return fail(err)
				}
				if tr := cfg.Tracer; tr != nil {
					// The broker hop of the frame's causal trace: replay
					// into the shadow plus fan-out to subscribers.
					tr.Record(obs.Span{
						Name: "broker " + m.Field, Cat: "dist", Ph: obs.PhaseComplete,
						TS: brokerFrom, Dur: tr.Now() - brokerFrom,
						Age: m.Age, Trace: m.Trace, Flow: obs.FlowStep,
					})
				}
			case MDone:
				if err := shadow.InjectRemoteDone(m.Kernel, m.Age); err != nil {
					return fail(fmt.Errorf("dist: shadow done: %w", err))
				}
				if err := forward(in.from, kernelSubs[m.Kernel], m); err != nil {
					return fail(err)
				}
			case MStatus:
				status[in.from] = *m
				statusSeen[in.from] = true
				cfg.View.updateWorker(in.from, m.Idle, m.Sent, m.Received, m.Metrics)
			case MTrace:
				traces = append(traces, obs.NodeTrace{
					Node:        ids[in.from],
					PID:         in.from + 2, // pid 1 is the master's lane
					StartUnixNs: m.TraceStartNs,
					OffsetNs:    offsets[in.from],
					Dropped:     m.TraceDropped,
					Spans:       m.Spans,
				})
			case MReport:
				reports[ids[in.from]] = m.Report
				cfg.View.workerDone(in.from, m.Report)
			case MError:
				return fail(fmt.Errorf("dist: worker %s failed: %s", ids[in.from], m.Err))
			}
		case <-ticker.C:
			if stopSent {
				continue
			}
			quiet := true
			var total int64
			for i := range conns {
				if !statusSeen[i] || !status[i].Idle || status[i].Received != forwarded[i] {
					quiet = false
				}
				total += status[i].Sent + status[i].Received
			}
			if quiet && shadow.Idle() && total == lastTotal {
				stableRounds++
			} else {
				stableRounds = 0
			}
			lastTotal = total
			if stableRounds >= 2 {
				stopSent = true
				for _, c := range conns {
					// Pull span buffers before the stop: per-connection
					// FIFO ordering guarantees each MTrace reply arrives
					// before its MReport, so report collection still
					// terminates the loop.
					if cfg.CollectTraces {
						if err := c.Send(&Msg{Kind: MTraceReq}); err != nil {
							return fail(err)
						}
					}
					if err := c.Send(&Msg{Kind: MStopReq}); err != nil {
						return fail(err)
					}
				}
				continue
			}
			for i := range conns {
				statusSeen[i] = false
				if err := conns[i].Send(&Msg{Kind: MPing, SentNs: time.Now().UnixNano()}); err != nil {
					return fail(err)
				}
			}
		}
	}

	shadow.Stop()
	if err := <-shadowDone; err != nil {
		return nil, err
	}
	for _, c := range conns {
		c.Close()
	}
	cfg.View.setPhase("done")
	clockOffsets := map[string]int64{}
	if observed {
		for i, id := range ids {
			clockOffsets[id] = offsets[i]
		}
	}
	return &MasterResult{
		Assignment:   kernelNode,
		Cost:         cost,
		Reports:      reports,
		Shadow:       shadow,
		Traces:       traces,
		ClockOffsets: clockOffsets,
	}, nil
}
