package dist

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/sched"
)

// MasterConfig configures a master node run.
type MasterConfig struct {
	// Prog is the program to distribute. Every participating node must
	// construct the same program (kernel bodies are code, not data).
	Prog *core.Program
	// Method selects the HLS partitioning algorithm.
	Method sched.Method
	// Spec is an optional program identifier forwarded to workers that
	// build their program from a registry (the cmd tools).
	Spec string
	// Weights, when set, applies instrumentation from a previous run to
	// the final graph before partitioning — the repartitioning feedback
	// loop of §IV ("using instrumentation data collected from the nodes
	// executing the workload the final graph can be weighted ... and
	// repartitioned").
	Weights *runtime.Report
	// PollInterval is the quiescence-detection ping period; zero selects
	// 2ms.
	PollInterval time.Duration
	// View, when set, is kept current with the run's phase, assignment and
	// per-worker heartbeats — it backs the master's /statusz endpoint.
	View *ClusterView
	// Metrics, when set, instruments the master's shadow node.
	Metrics *obs.Registry
}

// MasterResult is the outcome of a distributed run.
type MasterResult struct {
	// Assignment maps kernel names to worker indices.
	Assignment map[string]int
	// Cost is the HLS cost of the chosen assignment.
	Cost sched.Cost
	// Reports holds each worker's instrumentation report by node ID.
	Reports map[string]*runtime.Report
	// Shadow is the master's field replica: it observed every store, so
	// Snapshot on it returns the complete program state.
	Shadow *runtime.Node
}

// RunMaster drives a distributed execution over already-established worker
// connections: registration, partitioning, assignment, event brokering,
// global quiescence detection, shutdown and report collection.
func RunMaster(cfg MasterConfig, conns []Conn) (*MasterResult, error) {
	if len(conns) == 0 {
		return nil, fmt.Errorf("dist: master needs at least one worker")
	}
	if err := cfg.Prog.Validate(); err != nil {
		return nil, err
	}
	poll := cfg.PollInterval
	if poll <= 0 {
		poll = 2 * time.Millisecond
	}

	// Registration: collect the global topology.
	topo := sched.Topology{Bandwidth: 1}
	ids := make([]string, len(conns))
	for i, c := range conns {
		m, err := c.Recv()
		if err != nil {
			return nil, fmt.Errorf("dist: waiting for registration: %w", err)
		}
		if m.Kind != MRegister {
			return nil, fmt.Errorf("dist: expected registration, got %v", m.Kind)
		}
		ids[i] = m.NodeID
		topo = topo.Add(m.NodeID, m.Cores, m.Speed)
		cfg.View.registerWorker(i, m.NodeID, m.Cores, m.Speed)
	}
	cfg.View.setPhase("partitioning")

	// Partition the final implicit static dependency graph, weighted with
	// prior instrumentation when available.
	fin := graph.BuildFinal(cfg.Prog)
	if err := fin.CheckSchedulable(); err != nil {
		return nil, err
	}
	if cfg.Weights != nil {
		sched.ApplyInstrumentation(fin, cfg.Weights)
	}
	assign, cost, err := sched.Partition(fin, topo, cfg.Method)
	if err != nil {
		return nil, err
	}
	kernelNode := make(map[string]int, len(fin.Nodes))
	kernelsOf := make([][]string, len(conns))
	for i, kn := range fin.Nodes {
		kernelNode[kn.Name] = assign[i]
		kernelsOf[assign[i]] = append(kernelsOf[assign[i]], kn.Name)
	}
	cfg.View.setAssignment(kernelNode, cfg.Method.String())

	// Subscriber maps: which workers consume each field, and which workers
	// need each kernel's completion events (they consume a field it
	// stores).
	fieldSubs := make(map[string][]int)
	kernelSubs := make(map[string][]int)
	consumes := make([]map[string]bool, len(conns))
	for i := range conns {
		consumes[i] = map[string]bool{}
		for _, kn := range kernelsOf[i] {
			k := cfg.Prog.Kernel(kn)
			for _, f := range k.Fetches {
				consumes[i][f.Field] = true
			}
		}
	}
	for _, f := range cfg.Prog.Fields {
		for i := range conns {
			if consumes[i][f.Name] {
				fieldSubs[f.Name] = append(fieldSubs[f.Name], i)
			}
		}
	}
	for _, k := range cfg.Prog.Kernels {
		seen := map[int]bool{}
		for _, s := range k.Stores {
			for _, i := range fieldSubs[s.Field] {
				if !seen[i] {
					seen[i] = true
					kernelSubs[k.Name] = append(kernelSubs[k.Name], i)
				}
			}
		}
	}

	// The master's shadow node replicates all fields (every kernel is
	// remote from its perspective), giving complete final state.
	allRemote := make(map[string]bool, len(cfg.Prog.Kernels))
	for _, k := range cfg.Prog.Kernels {
		allRemote[k.Name] = true
	}
	shadow, err := runtime.NewNode(cfg.Prog, runtime.Options{
		Workers:       1,
		RemoteKernels: allRemote,
		NoAutoQuiesce: true,
		Metrics:       cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	shadowDone := make(chan error, 1)
	go func() {
		_, err := shadow.Run()
		shadowDone <- err
	}()
	// Master-side frame accounting (nil-safe when cfg.Metrics is nil).
	mFrames := cfg.Metrics.Counter(obs.MDistFramesTotal)
	mFrameBytes := cfg.Metrics.Counter(obs.MDistFrameBytesTotal)

	// Assign partitions and start.
	for i, c := range conns {
		if err := c.Send(&Msg{Kind: MAssign, Kernels: kernelsOf[i], Spec: cfg.Spec}); err != nil {
			return nil, err
		}
	}
	for _, c := range conns {
		if err := c.Send(&Msg{Kind: MStart}); err != nil {
			return nil, err
		}
	}
	cfg.View.setPhase("running")

	// Broker loop: fan worker events to subscribers and the shadow.
	type inbound struct {
		from int
		msg  *Msg
		err  error
	}
	// Readers select on brokerStop so they exit once RunMaster returns:
	// after a failure the main loop stops draining inboxes, and a reader
	// blocked on the full buffer would otherwise leak (its Recv keeps
	// producing until the closed connection errors out).
	inboxes := make(chan inbound, 1024)
	brokerStop := make(chan struct{})
	defer close(brokerStop)
	for i, c := range conns {
		go func(i int, c Conn) {
			for {
				m, err := c.Recv()
				select {
				case inboxes <- inbound{from: i, msg: m, err: err}:
				case <-brokerStop:
					return
				}
				if err != nil {
					return
				}
			}
		}(i, c)
	}

	forwarded := make([]int64, len(conns))
	status := make([]Msg, len(conns))
	statusSeen := make([]bool, len(conns))
	reports := map[string]*runtime.Report{}
	stableRounds := 0
	var lastTotal int64 = -1
	stopSent := false

	forward := func(from int, subs []int, m *Msg) error {
		for _, i := range subs {
			if i == from {
				continue
			}
			if err := conns[i].Send(m); err != nil {
				return err
			}
			forwarded[i]++
		}
		return nil
	}

	ticker := time.NewTicker(poll)
	defer ticker.Stop()

	fail := func(err error) (*MasterResult, error) {
		cfg.View.setPhase("failed: " + err.Error())
		for _, c := range conns {
			c.Close()
		}
		shadow.Stop()
		<-shadowDone
		return nil, err
	}

	for len(reports) < len(conns) {
		select {
		case in := <-inboxes:
			if in.err != nil {
				if _, have := reports[ids[in.from]]; have {
					continue // connection closed after its report: fine
				}
				return fail(fmt.Errorf("dist: worker %s: %w", ids[in.from], in.err))
			}
			m := in.msg
			switch m.Kind {
			case MStore:
				if err := shadow.InjectStore(m.Store); err != nil {
					return fail(fmt.Errorf("dist: shadow store: %w", err))
				}
				if err := forward(in.from, fieldSubs[m.Store.Field], m); err != nil {
					return fail(err)
				}
			case MStoreFrame:
				// The envelope's Field/Age mirror the frame header, so
				// routing needs no decode; the frame bytes are forwarded
				// to subscribers as-is and only replayed into the shadow.
				if err := shadow.InjectStoreFrame(m.Frame); err != nil {
					return fail(fmt.Errorf("dist: shadow store frame: %w", err))
				}
				mFrames.Inc()
				mFrameBytes.Add(int64(len(m.Frame)))
				if err := forward(in.from, fieldSubs[m.Field], m); err != nil {
					return fail(err)
				}
			case MDone:
				if err := shadow.InjectRemoteDone(m.Kernel, m.Age); err != nil {
					return fail(fmt.Errorf("dist: shadow done: %w", err))
				}
				if err := forward(in.from, kernelSubs[m.Kernel], m); err != nil {
					return fail(err)
				}
			case MStatus:
				status[in.from] = *m
				statusSeen[in.from] = true
				cfg.View.updateWorker(in.from, m.Idle, m.Sent, m.Received, m.Metrics)
			case MReport:
				reports[ids[in.from]] = m.Report
				cfg.View.workerDone(in.from, m.Report)
			case MError:
				return fail(fmt.Errorf("dist: worker %s failed: %s", ids[in.from], m.Err))
			}
		case <-ticker.C:
			if stopSent {
				continue
			}
			quiet := true
			var total int64
			for i := range conns {
				if !statusSeen[i] || !status[i].Idle || status[i].Received != forwarded[i] {
					quiet = false
				}
				total += status[i].Sent + status[i].Received
			}
			if quiet && shadow.Idle() && total == lastTotal {
				stableRounds++
			} else {
				stableRounds = 0
			}
			lastTotal = total
			if stableRounds >= 2 {
				stopSent = true
				for _, c := range conns {
					if err := c.Send(&Msg{Kind: MStopReq}); err != nil {
						return fail(err)
					}
				}
				continue
			}
			for i := range conns {
				statusSeen[i] = false
				if err := conns[i].Send(&Msg{Kind: MPing}); err != nil {
					return fail(err)
				}
			}
		}
	}

	shadow.Stop()
	if err := <-shadowDone; err != nil {
		return nil, err
	}
	for _, c := range conns {
		c.Close()
	}
	cfg.View.setPhase("done")
	return &MasterResult{
		Assignment: kernelNode,
		Cost:       cost,
		Reports:    reports,
		Shadow:     shadow,
	}, nil
}
