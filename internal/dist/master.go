package dist

import (
	"fmt"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/sched"
)

// MasterConfig configures a master node run.
type MasterConfig struct {
	// Prog is the program to distribute. Every participating node must
	// construct the same program (kernel bodies are code, not data).
	Prog *core.Program
	// Method selects the HLS partitioning algorithm.
	Method sched.Method
	// Spec is an optional program identifier forwarded to workers that
	// build their program from a registry (the cmd tools).
	Spec string
	// Weights, when set, applies instrumentation from a previous run to
	// the final graph before partitioning — the repartitioning feedback
	// loop of §IV ("using instrumentation data collected from the nodes
	// executing the workload the final graph can be weighted ... and
	// repartitioned").
	Weights *runtime.Report
	// PollInterval is the quiescence-detection ping period; zero selects
	// 2ms.
	PollInterval time.Duration
	// View, when set, is kept current with the run's phase, assignment and
	// per-worker heartbeats — it backs the master's /statusz endpoint.
	View *ClusterView
	// Metrics, when set, instruments the master's shadow node, and the
	// broker additionally records per-worker message flight times
	// (clock-offset corrected) under obs.MStageFlightNs.
	Metrics *obs.Registry
	// Tracer, when set, records the master's own spans: the shadow node's
	// lifecycle plus one broker span per forwarded store frame, tagged with
	// the frame's causal trace id.
	Tracer *obs.Tracer
	// CollectTraces pulls every worker's span buffer at shutdown
	// (MTraceReq/MTrace) into MasterResult.Traces, clock-aligned and ready
	// for obs.WriteMergedChromeTrace. Implied by Tracer for the handshake's
	// clock sync, but useful alone: workers trace, the master only merges.
	CollectTraces bool

	// Failover enables recovery from worker failures: a dead worker's
	// kernels are reassigned (to a standby from Standbys, else to survivors
	// via a fresh HLS partition over the remaining topology) and the
	// affected workers rebuild and receive the lost write-once field
	// generations replayed from the master's shadow node. Off (the
	// default), a worker failure fails the run — the fail-fast A/B
	// reference.
	Failover bool
	// Heartbeat is the liveness accounting interval: a worker silent for
	// MaxMissed of these is declared dead. Zero selects 100ms. (Status
	// pings still go at PollInterval; any inbound message counts as a
	// heartbeat.)
	Heartbeat time.Duration
	// MaxMissed is the number of missed heartbeat intervals after which a
	// worker is declared dead. Zero disables the liveness monitor unless
	// Failover is on, which defaults it to 3.
	MaxMissed int
	// IdleTimeout, when positive, bounds every blocking transport
	// operation on the worker connections (see IdleTimeoutConn), so a
	// half-open connection surfaces as a worker-named error instead of
	// wedging RunMaster forever. It must comfortably exceed the longest
	// legitimate silence (worker teardown between MStopReq and MReport).
	IdleTimeout time.Duration
	// Standbys are connections to spare workers that registered with MJoin
	// instead of MRegister: they receive no initial partition and wait;
	// on a worker death (with Failover) the first standby is promoted via
	// MAssign/MStart. Unused standbys are released with MStopReq at
	// shutdown.
	Standbys []Conn
}

// MasterResult is the outcome of a distributed run.
type MasterResult struct {
	// Assignment maps kernel names to worker indices (reflecting any
	// failover reassignments).
	Assignment map[string]int
	// Cost is the HLS cost of the chosen assignment.
	Cost sched.Cost
	// Reports holds each worker's instrumentation report by node ID.
	Reports map[string]*runtime.Report
	// Shadow is the master's field replica: it observed every store, so
	// Snapshot on it returns the complete program state.
	Shadow *runtime.Node
	// Traces holds each worker's clock-aligned span bundle (only with
	// CollectTraces); append the master's own tracer bundle and hand the
	// lot to obs.WriteMergedChromeTrace for one cluster-wide timeline.
	Traces []obs.NodeTrace
	// ClockOffsets maps node IDs to their estimated clock offset relative
	// to the master (nanoseconds, worker minus master); empty when the run
	// was not observed (no metrics, tracer, or trace collection).
	ClockOffsets map[string]int64
	// DeadWorkers lists node IDs declared dead during the run (failover
	// runs only; a death without failover fails the run instead).
	DeadWorkers []string
	// Replayed counts field generations replayed to rebuilt workers.
	Replayed int64
}

// doneRec is one producer completion, recorded for dedup (a rebuilt worker
// re-executes its kernels and re-announces their completions) and for replay
// ordering (a rebuilt worker must hear about remote completions after the
// replayed stores — a done marks generations complete, and under merge mode
// a store into a completed generation is silently dropped).
type doneRec struct {
	kernel string
	age    int
}

// RunMaster drives a distributed execution over already-established worker
// connections: registration, partitioning, assignment, event brokering,
// global quiescence detection, failure detection and recovery, shutdown and
// report collection.
func RunMaster(cfg MasterConfig, conns []Conn) (*MasterResult, error) {
	if len(conns) == 0 {
		return nil, fmt.Errorf("dist: master needs at least one worker")
	}
	poll := cfg.PollInterval
	if poll <= 0 {
		poll = 2 * time.Millisecond
	}
	heartbeat := cfg.Heartbeat
	if heartbeat <= 0 {
		heartbeat = 100 * time.Millisecond
	}
	maxMissed := cfg.MaxMissed
	if maxMissed <= 0 && cfg.Failover {
		maxMissed = 3
	}
	var liveTimeout time.Duration
	if maxMissed > 0 {
		liveTimeout = time.Duration(maxMissed) * heartbeat
	}
	if cfg.IdleTimeout > 0 {
		for _, c := range conns {
			SetConnIdleTimeout(c, cfg.IdleTimeout)
		}
		for _, c := range cfg.Standbys {
			SetConnIdleTimeout(c, cfg.IdleTimeout)
		}
	}
	cfg.View.setLiveness(heartbeat, maxMissed, cfg.Failover, len(cfg.Standbys))

	// abort fails the run before the broker loop exists. Every worker is
	// blocked in its handshake at this point; telling them why (and closing)
	// lets them tear down instead of waiting forever on a master that
	// already returned.
	abort := func(err error) error {
		cfg.View.setPhase("failed: " + err.Error())
		for _, c := range conns {
			c.Send(&Msg{Kind: MError, Err: err.Error()})
			c.Close()
		}
		for _, c := range cfg.Standbys {
			c.Send(&Msg{Kind: MError, Err: err.Error()})
			c.Close()
		}
		return err
	}

	if err := cfg.Prog.Validate(); err != nil {
		return nil, abort(err)
	}

	// Registration: collect the global topology.
	type workerCap struct {
		cores int
		speed float64
	}
	topo := sched.Topology{Bandwidth: 1}
	ids := make([]string, len(conns))
	caps := make([]workerCap, len(conns))
	for i, c := range conns {
		m, err := c.Recv()
		if err != nil {
			return nil, abort(fmt.Errorf("dist: waiting for registration: %w", err))
		}
		if m.Kind != MRegister {
			return nil, abort(fmt.Errorf("dist: expected registration, got %v", m.Kind))
		}
		ids[i] = m.NodeID
		caps[i] = workerCap{cores: m.Cores, speed: m.Speed}
		topo = topo.Add(m.NodeID, m.Cores, m.Speed)
		cfg.View.registerWorker(i, m.NodeID, m.Cores, m.Speed)
	}
	// Standby registration: they join the roster but not the topology.
	type standbyWorker struct {
		conn   Conn
		id     string
		cores  int
		speed  float64
		offset int64
	}
	var standbys []standbyWorker
	for _, c := range cfg.Standbys {
		m, err := c.Recv()
		if err != nil {
			return nil, abort(fmt.Errorf("dist: waiting for standby join: %w", err))
		}
		if m.Kind != MJoin {
			return nil, abort(fmt.Errorf("dist: expected standby join, got %v", m.Kind))
		}
		standbys = append(standbys, standbyWorker{conn: c, id: m.NodeID, cores: m.Cores, speed: m.Speed})
	}

	// Clock sync: estimate each worker's offset so spans and flight times
	// land on one timeline. Gated on observability being requested — the
	// probes add handshake round trips, and workers that predate the
	// protocol extension tolerate them but plain runs shouldn't pay.
	observed := cfg.Metrics != nil || cfg.Tracer != nil || cfg.CollectTraces
	offsets := make([]int64, len(conns))
	if observed {
		for i, c := range conns {
			off, err := estimateClockOffset(c, clockProbes)
			if err != nil {
				return nil, abort(fmt.Errorf("dist: syncing clock of %s: %w", ids[i], err))
			}
			offsets[i] = off
		}
		for i := range standbys {
			off, err := estimateClockOffset(standbys[i].conn, clockProbes)
			if err != nil {
				return nil, abort(fmt.Errorf("dist: syncing clock of standby %s: %w", standbys[i].id, err))
			}
			standbys[i].offset = off
		}
	}
	cfg.View.setPhase("partitioning")

	// Partition the final implicit static dependency graph, weighted with
	// prior instrumentation when available.
	fin := graph.BuildFinal(cfg.Prog)
	if err := fin.CheckSchedulable(); err != nil {
		return nil, abort(err)
	}
	if cfg.Weights != nil {
		sched.ApplyInstrumentation(fin, cfg.Weights)
	}
	assign, cost, err := sched.Partition(fin, topo, cfg.Method)
	if err != nil {
		return nil, abort(err)
	}
	kernelNode := make(map[string]int, len(fin.Nodes))
	kernelsOf := make([][]string, len(conns))
	for i, kn := range fin.Nodes {
		kernelNode[kn.Name] = assign[i]
		kernelsOf[assign[i]] = append(kernelsOf[assign[i]], kn.Name)
	}
	cfg.View.setAssignment(kernelNode, cfg.Method.String())

	// Subscriber maps: which workers consume each field, and which workers
	// need each kernel's completion events (they consume a field it
	// stores). Rebuilt by rebuildSubs after every reassignment.
	dead := make([]bool, len(conns))
	var fieldSubs map[string][]int
	var kernelSubs map[string][]int
	var consumes []map[string]bool
	rebuildSubs := func() {
		fieldSubs = make(map[string][]int)
		kernelSubs = make(map[string][]int)
		consumes = make([]map[string]bool, len(conns))
		for i := range conns {
			consumes[i] = map[string]bool{}
			for _, kn := range kernelsOf[i] {
				k := cfg.Prog.Kernel(kn)
				for _, f := range k.Fetches {
					consumes[i][f.Field] = true
				}
			}
		}
		for _, f := range cfg.Prog.Fields {
			for i := range conns {
				if !dead[i] && consumes[i][f.Name] {
					fieldSubs[f.Name] = append(fieldSubs[f.Name], i)
				}
			}
		}
		for _, k := range cfg.Prog.Kernels {
			seen := map[int]bool{}
			for _, s := range k.Stores {
				for _, i := range fieldSubs[s.Field] {
					if !seen[i] {
						seen[i] = true
						kernelSubs[k.Name] = append(kernelSubs[k.Name], i)
					}
				}
			}
		}
	}
	rebuildSubs()

	// The master's shadow node replicates all fields (every kernel is
	// remote from its perspective), giving complete final state. Under
	// failover it runs merge-tolerant: rebuilt workers re-execute their
	// kernels and their re-sent stores reach the shadow a second time.
	allRemote := make(map[string]bool, len(cfg.Prog.Kernels))
	for _, k := range cfg.Prog.Kernels {
		allRemote[k.Name] = true
	}
	shadow, err := runtime.NewNode(cfg.Prog, runtime.Options{
		Workers:       1,
		RemoteKernels: allRemote,
		NoAutoQuiesce: true,
		Metrics:       cfg.Metrics,
		Tracer:        cfg.Tracer,
		MergeStores:   cfg.Failover,
	})
	if err != nil {
		return nil, abort(err)
	}
	shadowDone := make(chan error, 1)
	go func() {
		_, err := shadow.Run()
		shadowDone <- err
	}()
	// Master-side frame accounting (nil-safe when cfg.Metrics is nil), plus
	// per-worker message flight histograms when metrics are on.
	mFrames := cfg.Metrics.Counter(obs.MDistFramesTotal)
	mFrameBytes := cfg.Metrics.Counter(obs.MDistFrameBytesTotal)
	mDeaths := cfg.Metrics.Counter(obs.MDistWorkerDeaths)
	mFailovers := cfg.Metrics.Counter(obs.MDistFailovers)
	mReplayed := cfg.Metrics.Counter(obs.MDistReplayedGens)
	hFlight := make([]*obs.Histogram, len(conns))
	if cfg.Metrics != nil {
		for i := range conns {
			hFlight[i] = cfg.Metrics.Histogram(obs.Label(obs.MStageFlightNs, "node", ids[i]))
		}
	}

	// Assign partitions and start; MStart carries the clock-sync result so
	// workers can correct master-stamped timestamps.
	for i, c := range conns {
		if err := c.Send(&Msg{Kind: MAssign, Kernels: kernelsOf[i], Spec: cfg.Spec, TraceOn: cfg.CollectTraces, Failover: cfg.Failover}); err != nil {
			shadow.Stop()
			<-shadowDone
			return nil, abort(err)
		}
	}
	for i, c := range conns {
		if err := c.Send(&Msg{Kind: MStart, OffsetNs: offsets[i], Synced: observed, SentNs: time.Now().UnixNano()}); err != nil {
			shadow.Stop()
			<-shadowDone
			return nil, abort(err)
		}
	}
	cfg.View.setPhase("running")

	// Broker loop: fan worker events to subscribers and the shadow.
	type inbound struct {
		from int
		msg  *Msg
		err  error
	}
	// Readers select on brokerStop so they exit once RunMaster returns:
	// after a failure the main loop stops draining inboxes, and a reader
	// blocked on the full buffer would otherwise leak (its Recv keeps
	// producing until the closed connection errors out).
	inboxes := make(chan inbound, 1024)
	brokerStop := make(chan struct{})
	defer close(brokerStop)
	startReader := func(i int, c Conn) {
		go func() {
			for {
				m, err := c.Recv()
				select {
				case inboxes <- inbound{from: i, msg: m, err: err}:
				case <-brokerStop:
					return
				}
				if err != nil {
					return
				}
			}
		}()
	}
	for i, c := range conns {
		startReader(i, c)
	}

	forwarded := make([]int64, len(conns))
	status := make([]Msg, len(conns))
	statusSeen := make([]bool, len(conns))
	lastHeard := make([]time.Time, len(conns))
	for i := range lastHeard {
		lastHeard[i] = time.Now()
	}
	reports := map[string]*runtime.Report{}
	doneSeen := map[doneRec]bool{}
	var doneLog []doneRec
	var traces []obs.NodeTrace
	var deadIDs []string
	var replayedGens int64
	stableRounds := 0
	var lastTotal int64 = -1
	stopSent := false
	// backlog holds inbound messages drained while the main loop was busy
	// replaying generations to a rebuilt worker: replay sends many frames
	// without returning to the select, and a full inboxes channel would
	// stall the readers (and transitively the workers' send paths).
	var backlog []inbound
	drain := func(buf []inbound) []inbound {
		for {
			select {
			case in := <-inboxes:
				buf = append(buf, in)
			default:
				return buf
			}
		}
	}

	// observeFlight records how long a worker message spent in flight:
	// master receive time minus the worker's send stamp rebased to the
	// master clock. Clamped at zero — the offset estimate has RTT/2 error,
	// so fast messages can appear to arrive before they left.
	observeFlight := func(from int, m *Msg) {
		if hFlight[from] == nil || m.SentNs == 0 {
			return
		}
		flight := time.Now().UnixNano() - (m.SentNs - offsets[from])
		if flight < 0 {
			flight = 0
		}
		hFlight[from].Observe(time.Duration(flight))
	}

	var die func(i int, cause error) error

	forward := func(from int, subs []int, m *Msg) error {
		for _, i := range subs {
			if i == from || dead[i] {
				continue
			}
			// Frame payloads skip gob on capable transports: the broker
			// writes the received bytes raw after a copied envelope, so a
			// frame is gob-encoded at most zero times on the fan-out path.
			// SendFrame never mutates m, which all subscribers share.
			var err error
			if fc, ok := conns[i].(FrameConn); ok && len(m.Frame) > 0 {
				err = fc.SendFrame(m, net.Buffers{m.Frame})
			} else {
				err = conns[i].Send(m)
			}
			if err != nil {
				if derr := die(i, err); derr != nil {
					return derr
				}
				continue
			}
			forwarded[i]++
		}
		return nil
	}

	// replayTo re-sends a rebuilt worker the message stream it would have
	// received from the start of the run: every live generation of every
	// field it consumes (from the shadow, as store frames), then every
	// remote producer completion it subscribes to, in original order.
	// Stores strictly before dones — a done marks its generations complete,
	// and merge mode silently drops stores into completed generations.
	replayTo := func(t int) error {
		forwarded[t] = 0
		status[t] = Msg{}
		statusSeen[t] = false
		lastHeard[t] = time.Now()
		for _, fd := range cfg.Prog.Fields {
			if !consumes[t][fd.Name] {
				continue
			}
			ages, err := shadow.FieldAges(fd.Name)
			if err != nil {
				return err
			}
			for _, age := range ages {
				genFrom := cfg.Tracer.Now()
				fr, err := shadow.EncodeGenerationFrame(fd.Name, age)
				if err != nil {
					return fmt.Errorf("dist: encoding replay of %s(%d): %w", fd.Name, age, err)
				}
				if fr == nil {
					continue
				}
				env := &Msg{Kind: MStoreFrame, Field: fd.Name, Age: age, SentNs: time.Now().UnixNano()}
				var serr error
				if fc, ok := conns[t].(FrameConn); ok {
					serr = fc.SendFrame(env, fr.Segments())
				} else {
					env.Frame = fr.AppendTo(nil)
					serr = conns[t].Send(env)
				}
				runtime.PutStoreFrame(fr)
				if serr != nil {
					return fmt.Errorf("dist: replaying %s(%d) to %s: %w", fd.Name, age, ids[t], serr)
				}
				forwarded[t]++
				replayedGens++
				mReplayed.Inc()
				if tr := cfg.Tracer; tr != nil {
					tr.Record(obs.Span{
						Name: "replay " + fd.Name, Cat: "dist", Ph: obs.PhaseComplete,
						TS: genFrom, Dur: tr.Now() - genFrom, Age: age,
					})
				}
				// Keep the readers moving while replay hogs the main loop.
				backlog = drain(backlog)
			}
		}
		local := map[string]bool{}
		for _, k := range kernelsOf[t] {
			local[k] = true
		}
		subscribed := map[string]bool{}
		for k, subs := range kernelSubs {
			for _, i := range subs {
				if i == t {
					subscribed[k] = true
				}
			}
		}
		for _, d := range doneLog {
			if local[d.kernel] || !subscribed[d.kernel] {
				continue
			}
			if err := conns[t].Send(&Msg{Kind: MDone, Kernel: d.kernel, Age: d.age, SentNs: time.Now().UnixNano()}); err != nil {
				return fmt.Errorf("dist: replaying completion %s(%d) to %s: %w", d.kernel, d.age, ids[t], err)
			}
			forwarded[t]++
		}
		return nil
	}

	// recoverWorker reassigns a dead worker's kernels — to the first
	// standby when one is waiting, else to survivors chosen by a fresh HLS
	// partition over the remaining topology (survivors keep their existing
	// kernels; moving a live kernel would force a needless rebuild) — and
	// replays the lost state to every affected worker.
	recoverWorker := func(i int) error {
		lost := kernelsOf[i]
		kernelsOf[i] = nil
		rebuildSubs()
		if len(lost) == 0 {
			return nil
		}
		mFailovers.Inc()
		failFrom := cfg.Tracer.Now()
		var targets []int
		if len(standbys) > 0 {
			sb := standbys[0]
			standbys = standbys[1:]
			t := len(conns)
			conns = append(conns, sb.conn)
			ids = append(ids, sb.id)
			caps = append(caps, workerCap{cores: sb.cores, speed: sb.speed})
			offsets = append(offsets, sb.offset)
			forwarded = append(forwarded, 0)
			status = append(status, Msg{})
			statusSeen = append(statusSeen, false)
			dead = append(dead, false)
			lastHeard = append(lastHeard, time.Now())
			kernelsOf = append(kernelsOf, lost)
			var h *obs.Histogram
			if cfg.Metrics != nil {
				h = cfg.Metrics.Histogram(obs.Label(obs.MStageFlightNs, "node", sb.id))
			}
			hFlight = append(hFlight, h)
			topo = topo.Add(sb.id, sb.cores, sb.speed)
			cfg.View.registerWorker(t, sb.id, sb.cores, sb.speed)
			cfg.View.setLiveness(heartbeat, maxMissed, cfg.Failover, len(standbys))
			if err := sb.conn.Send(&Msg{Kind: MAssign, Kernels: lost, Spec: cfg.Spec, TraceOn: cfg.CollectTraces, Failover: cfg.Failover}); err != nil {
				return fmt.Errorf("dist: assigning standby %s: %w", sb.id, err)
			}
			if err := sb.conn.Send(&Msg{Kind: MStart, OffsetNs: sb.offset, Synced: observed, SentNs: time.Now().UnixNano()}); err != nil {
				return fmt.Errorf("dist: starting standby %s: %w", sb.id, err)
			}
			startReader(t, sb.conn)
			targets = append(targets, t)
		} else {
			surv := sched.Topology{Bandwidth: topo.Bandwidth}
			var survIdx []int
			for j := range conns {
				if dead[j] {
					continue
				}
				surv = surv.Add(ids[j], caps[j].cores, caps[j].speed)
				survIdx = append(survIdx, j)
			}
			if len(survIdx) == 0 {
				return fmt.Errorf("dist: no surviving workers to take over %d kernels of %s", len(lost), ids[i])
			}
			assign2, _, err := sched.Partition(fin, surv, cfg.Method)
			if err != nil {
				return fmt.Errorf("dist: repartitioning after loss of %s: %w", ids[i], err)
			}
			lostSet := map[string]bool{}
			for _, k := range lost {
				lostSet[k] = true
			}
			seen := map[int]bool{}
			for gi, kn := range fin.Nodes {
				if !lostSet[kn.Name] {
					continue
				}
				t := survIdx[assign2[gi]]
				kernelsOf[t] = append(kernelsOf[t], kn.Name)
				if !seen[t] {
					seen[t] = true
					targets = append(targets, t)
				}
			}
			for _, t := range targets {
				if err := conns[t].Send(&Msg{Kind: MReassign, Kernels: kernelsOf[t], Spec: cfg.Spec, TraceOn: cfg.CollectTraces, Failover: cfg.Failover}); err != nil {
					return fmt.Errorf("dist: reassigning to %s: %w", ids[t], err)
				}
			}
		}
		for _, t := range targets {
			for _, k := range kernelsOf[t] {
				kernelNode[k] = t
			}
		}
		rebuildSubs()
		cfg.View.setAssignment(kernelNode, cfg.Method.String())
		for _, t := range targets {
			if err := replayTo(t); err != nil {
				return err
			}
		}
		// Rebuilding and replaying a large shadow can outlast the liveness
		// window, and this loop was not reading while it ran: the silence
		// is the master's, not the workers'. Restart every live worker's
		// clock so one recovery does not cascade into false deaths.
		refreshed := time.Now()
		for j := range lastHeard {
			if !dead[j] {
				lastHeard[j] = refreshed
			}
		}
		if tr := cfg.Tracer; tr != nil {
			tr.Record(obs.Span{
				Name: "failover " + ids[i], Cat: "dist", Ph: obs.PhaseComplete,
				TS: failFrom, Dur: tr.Now() - failFrom,
			})
		}
		// The cluster must restabilize from scratch: the rebuilt workers
		// re-execute their kernels before quiescence means anything.
		stableRounds = 0
		lastTotal = -1
		return nil
	}

	// die declares a worker dead. Without failover it returns the error
	// that fails the run (named after the worker); with failover it
	// recovers — unless quiescence was already reached, in which case all
	// data is safe in the shadow and only the worker's report is lost.
	die = func(i int, cause error) error {
		if dead[i] {
			return nil
		}
		dead[i] = true
		deadIDs = append(deadIDs, ids[i])
		conns[i].Close()
		mDeaths.Inc()
		cfg.View.workerDead(i)
		if !cfg.Failover {
			return fmt.Errorf("dist: worker %s: %w", ids[i], cause)
		}
		if stopSent {
			return nil
		}
		return recoverWorker(i)
	}

	ticker := time.NewTicker(poll)
	defer ticker.Stop()

	fail := func(err error) (*MasterResult, error) {
		cfg.View.setPhase("failed: " + err.Error())
		// Tell survivors to stop before closing: a worker that only saw
		// its connection drop would return an error with its node state
		// still live, while MStopReq routes it through the normal stop
		// path (teardown, slab release). Best effort — the broken
		// connection that caused the failure will refuse the send.
		for i, c := range conns {
			if dead[i] {
				continue
			}
			c.Send(&Msg{Kind: MStopReq})
			c.Close()
		}
		for _, sb := range standbys {
			sb.conn.Send(&Msg{Kind: MStopReq})
			sb.conn.Close()
		}
		shadow.Stop()
		<-shadowDone
		return nil, err
	}

	needReports := func() bool {
		for i := range conns {
			if dead[i] {
				continue
			}
			if _, ok := reports[ids[i]]; !ok {
				return true
			}
		}
		return false
	}

	for !stopSent || needReports() {
		var in inbound
		gotMsg := false
		if len(backlog) > 0 {
			in = backlog[0]
			backlog = backlog[1:]
			gotMsg = true
		} else {
			select {
			case in = <-inboxes:
				gotMsg = true
			case <-ticker.C:
			}
		}
		if !gotMsg {
			now := time.Now()
			// Liveness runs in every phase — including after the stop was
			// sent, where a worker dying between its last heartbeat and
			// its report would otherwise hang report collection forever.
			if liveTimeout > 0 {
				for i := range conns {
					if dead[i] {
						continue
					}
					if _, have := reports[ids[i]]; have {
						continue
					}
					if silent := now.Sub(lastHeard[i]); silent > liveTimeout {
						cause := fmt.Errorf("missed %d heartbeats (silent %v, liveness window %v)", maxMissed, silent.Round(time.Millisecond), liveTimeout)
						if err := die(i, cause); err != nil {
							return fail(err)
						}
					}
				}
			}
			if stopSent {
				continue
			}
			quiet := true
			var total int64
			for i := range conns {
				if dead[i] {
					continue
				}
				if !statusSeen[i] || !status[i].Idle || status[i].Received != forwarded[i] {
					quiet = false
				}
				// A stale heartbeat must not count toward quiescence: the
				// worker has to have been heard from within the liveness
				// window, or its Idle claim describes a world that may no
				// longer exist.
				if liveTimeout > 0 && now.Sub(lastHeard[i]) > liveTimeout {
					quiet = false
				}
				total += status[i].Sent + status[i].Received
			}
			if quiet && shadow.Idle() && total == lastTotal {
				stableRounds++
			} else {
				stableRounds = 0
			}
			lastTotal = total
			if stableRounds >= 2 {
				stopSent = true
				for i, c := range conns {
					if dead[i] {
						continue
					}
					// Pull span buffers before the stop: per-connection
					// FIFO ordering guarantees each MTrace reply arrives
					// before its MReport, so report collection still
					// terminates the loop.
					if cfg.CollectTraces {
						if err := c.Send(&Msg{Kind: MTraceReq}); err != nil {
							if derr := die(i, err); derr != nil {
								return fail(derr)
							}
							continue
						}
					}
					if err := c.Send(&Msg{Kind: MStopReq}); err != nil {
						if derr := die(i, err); derr != nil {
							return fail(derr)
						}
					}
				}
				// Release the standbys that were never needed.
				for _, sb := range standbys {
					sb.conn.Send(&Msg{Kind: MStopReq})
					sb.conn.Close()
				}
				standbys = nil
				continue
			}
			for i := range conns {
				if dead[i] {
					continue
				}
				statusSeen[i] = false
				if err := conns[i].Send(&Msg{Kind: MPing, SentNs: time.Now().UnixNano()}); err != nil {
					if derr := die(i, err); derr != nil {
						return fail(derr)
					}
				}
			}
			continue
		}

		if in.err != nil {
			if _, have := reports[ids[in.from]]; have {
				continue // connection closed after its report: fine
			}
			if dead[in.from] {
				continue
			}
			if err := die(in.from, in.err); err != nil {
				return fail(err)
			}
			continue
		}
		m := in.msg
		lastHeard[in.from] = time.Now()
		observeFlight(in.from, m)
		if dead[in.from] {
			// A declared-dead worker's buffered data is still valid (it was
			// produced before the death was noticed and its generations are
			// write-once), but its control messages describe a worker that
			// no longer participates.
			switch m.Kind {
			case MStore, MStoreFrame, MDone:
			default:
				continue
			}
		}
		switch m.Kind {
		case MStore:
			if err := shadow.InjectStore(m.Store); err != nil {
				return fail(fmt.Errorf("dist: shadow store: %w", err))
			}
			if err := forward(in.from, fieldSubs[m.Store.Field], m); err != nil {
				return fail(err)
			}
		case MStoreFrame:
			// The envelope's Field/Age mirror the frame header, so
			// routing needs no decode; the frame bytes are forwarded
			// to subscribers as-is and only replayed into the shadow.
			brokerFrom := cfg.Tracer.Now()
			if err := shadow.InjectStoreFrame(m.Frame); err != nil {
				return fail(fmt.Errorf("dist: shadow store frame: %w", err))
			}
			mFrames.Inc()
			mFrameBytes.Add(int64(len(m.Frame)))
			if err := forward(in.from, fieldSubs[m.Field], m); err != nil {
				return fail(err)
			}
			if tr := cfg.Tracer; tr != nil {
				// The broker hop of the frame's causal trace: replay
				// into the shadow plus fan-out to subscribers.
				tr.Record(obs.Span{
					Name: "broker " + m.Field, Cat: "dist", Ph: obs.PhaseComplete,
					TS: brokerFrom, Dur: tr.Now() - brokerFrom,
					Age: m.Age, Trace: m.Trace, Flow: obs.FlowStep,
				})
			}
		case MDone:
			d := doneRec{kernel: m.Kernel, age: m.Age}
			if doneSeen[d] {
				// A rebuilt worker re-executes its kernels and re-announces
				// completions the cluster already accounted for. Injecting
				// a duplicate would overshoot the shadow's producer count
				// and mark generations complete while a slower producer is
				// still storing — merge mode would then silently drop its
				// legitimate stores.
				continue
			}
			doneSeen[d] = true
			doneLog = append(doneLog, d)
			if err := shadow.InjectRemoteDone(m.Kernel, m.Age); err != nil {
				return fail(fmt.Errorf("dist: shadow done: %w", err))
			}
			if err := forward(in.from, kernelSubs[m.Kernel], m); err != nil {
				return fail(err)
			}
		case MStatus:
			status[in.from] = *m
			statusSeen[in.from] = true
			cfg.View.updateWorker(in.from, m.Idle, m.Sent, m.Received, m.Metrics)
		case MTrace:
			traces = append(traces, obs.NodeTrace{
				Node:        ids[in.from],
				PID:         in.from + 2, // pid 1 is the master's lane
				StartUnixNs: m.TraceStartNs,
				OffsetNs:    offsets[in.from],
				Dropped:     m.TraceDropped,
				Spans:       m.Spans,
			})
		case MReport:
			reports[ids[in.from]] = m.Report
			cfg.View.workerDone(in.from, m.Report)
		case MError:
			return fail(fmt.Errorf("dist: worker %s failed: %s", ids[in.from], m.Err))
		}
	}

	shadow.Stop()
	if err := <-shadowDone; err != nil {
		return nil, err
	}
	for _, c := range conns {
		c.Close()
	}
	for _, sb := range standbys {
		sb.conn.Send(&Msg{Kind: MStopReq})
		sb.conn.Close()
	}
	cfg.View.setPhase("done")
	clockOffsets := map[string]int64{}
	if observed {
		for i, id := range ids {
			clockOffsets[id] = offsets[i]
		}
	}
	return &MasterResult{
		Assignment:   kernelNode,
		Cost:         cost,
		Reports:      reports,
		Shadow:       shadow,
		Traces:       traces,
		ClockOffsets: clockOffsets,
		DeadWorkers:  deadIDs,
		Replayed:     replayedGens,
	}, nil
}
