package dist

import (
	"repro/internal/field"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// MsgKind enumerates protocol messages.
type MsgKind uint8

// Protocol message kinds, in rough lifecycle order.
const (
	MRegister    MsgKind = iota // worker → master: here I am, this is my capacity
	MAssign                     // master → worker: your kernel partition
	MStart                      // master → worker: begin execution
	MStore                      // worker ↔ master: a store event (forwarded to subscribers)
	MDone                       // worker ↔ master: a kernel-age completed
	MPing                       // master → worker: report status
	MStatus                     // worker → master: idle state and event counters
	MStopReq                    // master → worker: quiesce reached, shut down
	MReport                     // worker → master: final instrumentation report
	MSnapshotReq                // master → worker: send a field generation
	MSnapshot                   // worker → master: field generation contents
	MError                      // either direction: fatal error
)

// Msg is the single wire envelope; Kind selects which fields are meaningful.
// A flat struct keeps gob encoding simple and self-describing.
type Msg struct {
	Kind MsgKind

	// MRegister
	NodeID string
	Cores  int
	Speed  float64

	// MAssign
	Kernels []string // kernel names the worker executes
	Spec    string   // program spec for workers that build the program from a registry

	// MStore
	Store runtime.StoreNotice

	// MDone
	Kernel string
	Age    int

	// MStatus
	Idle     bool
	Sent     int64
	Received int64
	// Metrics is the worker's registry snapshot, carried on every
	// heartbeat so the master's /statusz shows live per-kernel stats.
	Metrics *obs.MetricsSnapshot

	// MReport
	Report *runtime.Report

	// MSnapshotReq / MSnapshot
	Field string
	Arr   *field.Array

	// MError
	Err string
}
