package dist

import (
	"strconv"

	"repro/internal/field"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// MsgKind enumerates protocol messages.
type MsgKind uint8

// Protocol message kinds, in rough lifecycle order.
const (
	MRegister    MsgKind = iota // worker → master: here I am, this is my capacity
	MAssign                     // master → worker: your kernel partition
	MStart                      // master → worker: begin execution
	MStore                      // worker ↔ master: a store event (forwarded to subscribers)
	MDone                       // worker ↔ master: a kernel-age completed
	MPing                       // master → worker: report status
	MStatus                     // worker → master: idle state and event counters
	MStopReq                    // master → worker: quiesce reached, shut down
	MReport                     // worker → master: final instrumentation report
	MSnapshotReq                // master → worker: send a field generation
	MSnapshot                   // worker → master: field generation contents
	MError                      // either direction: fatal error
	MStoreFrame                 // worker ↔ master: a batched store-notice frame (forwarded raw)
	MClockProbe                 // master → worker: clock-offset probe (handshake, Cristian-style)
	MClockEcho                  // worker → master: probe echo with the worker's clock reading
	MTraceReq                   // master → worker: send your span buffer (shutdown)
	MTrace                      // worker → master: span buffer + trace alignment data
	MJoin                       // standby worker → master: available for takeover, not initial partition
	MReassign                   // master → worker: replacement kernel partition after a peer died
)

// String returns the lifecycle name of the message kind, for handshake and
// protocol error messages.
func (k MsgKind) String() string {
	switch k {
	case MRegister:
		return "MRegister"
	case MAssign:
		return "MAssign"
	case MStart:
		return "MStart"
	case MStore:
		return "MStore"
	case MDone:
		return "MDone"
	case MPing:
		return "MPing"
	case MStatus:
		return "MStatus"
	case MStopReq:
		return "MStopReq"
	case MReport:
		return "MReport"
	case MSnapshotReq:
		return "MSnapshotReq"
	case MSnapshot:
		return "MSnapshot"
	case MError:
		return "MError"
	case MStoreFrame:
		return "MStoreFrame"
	case MClockProbe:
		return "MClockProbe"
	case MClockEcho:
		return "MClockEcho"
	case MTraceReq:
		return "MTraceReq"
	case MTrace:
		return "MTrace"
	case MJoin:
		return "MJoin"
	case MReassign:
		return "MReassign"
	}
	return "MsgKind(" + strconv.Itoa(int(k)) + ")"
}

// Msg is the single wire envelope; Kind selects which fields are meaningful.
// A flat struct keeps gob encoding simple and self-describing.
type Msg struct {
	Kind MsgKind

	// MRegister
	NodeID string
	Cores  int
	Speed  float64

	// MAssign / MReassign
	Kernels []string // kernel names the worker executes
	Spec    string   // program spec for workers that build the program from a registry
	// Failover tells the worker the master is running with failover enabled:
	// the worker builds its node with merge-tolerant stores so replayed
	// generations and re-executed kernels are idempotent (see
	// runtime.Options.MergeStores).
	Failover bool

	// MStore
	Store runtime.StoreNotice

	// MStoreFrame: a whole-generation batch of store notices encoded by
	// runtime.StoreFrame. Field and Age mirror the frame header so the
	// master broker routes by subscription without decoding the payload;
	// Trace mirrors the frame's causal trace id (0 when tracing is off).
	Frame []byte
	Trace uint64
	// FrameLen carries the frame payload out-of-band: a transport that
	// supports scatter-gather sends (FrameConn) encodes the envelope with
	// Frame nil and FrameLen set, then writes the raw frame bytes directly
	// after it on the stream. Recv materializes the bytes back into Frame
	// and zeroes FrameLen, so receivers never observe the split form. Gob
	// omits zero fields, so envelopes without a raw frame are byte-
	// identical to before.
	FrameLen int

	// SentNs is the sender's wall clock (UnixNano) when the message was
	// handed to the transport. Stamped only on freshly allocated messages —
	// the broker forwards messages by pointer, so forwarded envelopes keep
	// the original stamp. The master interprets it on every worker message
	// (workers allocate all their sends); workers interpret it only on
	// MPing, the one inbound kind the master always allocates itself.
	SentNs int64

	// MClockEcho: the worker's clock (UnixNano) at echo time; SentNs echoes
	// the probe's stamp so the master matches probe to reply.
	NodeNs int64

	// MStart: the worker's estimated clock offset (worker clock minus
	// master clock, nanoseconds) measured during the handshake; Synced
	// reports whether an estimate was made at all.
	OffsetNs int64
	Synced   bool

	// MAssign: the master will pull span buffers at shutdown
	// (CollectTraces), so a worker without its own tracer should create
	// one — cluster tracing needs only the master's -trace flag.
	TraceOn bool

	// MTrace: the worker's span buffer with its alignment data (see
	// obs.NodeTrace).
	Spans        []obs.Span
	TraceStartNs int64
	TraceDropped int64

	// MDone
	Kernel string
	Age    int

	// MStatus
	Idle     bool
	Sent     int64
	Received int64
	// Metrics is the worker's registry snapshot, carried on every
	// heartbeat so the master's /statusz shows live per-kernel stats.
	Metrics *obs.MetricsSnapshot

	// MReport
	Report *runtime.Report

	// MSnapshotReq / MSnapshot
	Field string
	Arr   *field.Array

	// MError
	Err string
}
