//go:build race

package dist

// raceEnabled reports whether the race detector is active; the pool-reuse
// regression test skips its allocation assertions under it because sync.Pool
// drops a fraction of Puts on purpose when racing.
const raceEnabled = true
