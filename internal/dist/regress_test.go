package dist

import (
	"bytes"
	"errors"
	"fmt"
	goruntime "runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/mjpeg"
	"repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/video"
	"repro/internal/workloads"
)

// TestStartHandshakeError: a wrong-kind start message used to produce
// "dist: waiting for start: <nil>" because the nil Recv error and the
// unexpected kind shared one format string. The error must now name the
// offending kind, and surface the master's reason when an MError arrived.
func TestStartHandshakeError(t *testing.T) {
	cases := []struct {
		name string
		msg  *Msg
		want []string
	}{
		{"wrong kind", &Msg{Kind: MPing}, []string{"waiting for start", "MPing"}},
		{"master error", &Msg{Kind: MError, Err: "partition failed"}, []string{"waiting for start", "partition failed"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mc, wc := InprocPipe()
			done := make(chan error, 1)
			go func() {
				_, err := RunWorker(WorkerConfig{NodeID: "w", Cores: 1, Prog: workloads.MulSum(), MaxAge: 2}, wc)
				done <- err
			}()
			if m, err := mc.Recv(); err != nil || m.Kind != MRegister {
				t.Fatalf("registration: %v", err)
			}
			if err := mc.Send(&Msg{Kind: MAssign, Kernels: []string{"init", "mul2", "plus5", "print"}}); err != nil {
				t.Fatal(err)
			}
			if err := mc.Send(tc.msg); err != nil {
				t.Fatal(err)
			}
			err := <-done
			if err == nil {
				t.Fatal("worker accepted a bad start handshake")
			}
			for _, want := range tc.want {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q does not mention %q", err, want)
				}
			}
			if strings.Contains(err.Error(), "<nil>") {
				t.Errorf("error %q still formats the nil transport error", err)
			}
		})
	}
}

// failAfterConn passes through to the wrapped Conn but fails every Send after
// the first n — a half-closed pipe: the worker can still receive (or block
// receiving) while its sends go nowhere.
type failAfterConn struct {
	Conn
	allow atomic.Int64
}

func (c *failAfterConn) Send(m *Msg) error {
	if c.allow.Add(-1) < 0 {
		return errors.New("simulated half-closed pipe")
	}
	return c.Conn.Send(m)
}

// TestWorkerSendFailureTeardown: a worker whose sends fail must tear down
// promptly even if the master never speaks again. The old loop polled sendErr
// only before a blocking Recv, so a dead send path went unnoticed until the
// next ping.
func TestWorkerSendFailureTeardown(t *testing.T) {
	mc, wc := InprocPipe()
	fc := &failAfterConn{Conn: wc}
	fc.allow.Store(1) // registration only; every later send fails
	done := make(chan error, 1)
	go func() {
		_, err := RunWorker(WorkerConfig{NodeID: "w", Cores: 1, Prog: workloads.MulSum(), MaxAge: 4}, fc)
		done <- err
	}()
	if m, err := mc.Recv(); err != nil || m.Kind != MRegister {
		t.Fatalf("registration: %v", err)
	}
	if err := mc.Send(&Msg{Kind: MAssign, Kernels: []string{"init", "mul2", "plus5", "print"}}); err != nil {
		t.Fatal(err)
	}
	if err := mc.Send(&Msg{Kind: MStart}); err != nil {
		t.Fatal(err)
	}
	// The master now goes silent. The worker's first store/done send fails;
	// the run loop must notice via sendErr without waiting for a receive.
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "sending to master") {
			t.Fatalf("worker error = %v, want send failure", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker stalled on a dead send path")
	}
}

// TestBrokerReadersExit: after a master failure the per-connection reader
// goroutines must exit even when far more messages are queued than the inbox
// buffer holds. The old readers blocked forever sending into the full inbox.
func TestBrokerReadersExit(t *testing.T) {
	baseline := goroutineCountStable(t)
	mc, wc := InprocPipe()
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		if err := wc.Send(&Msg{Kind: MRegister, NodeID: "w", Cores: 1, Speed: 1}); err != nil {
			return
		}
		wc.Recv() // assignment
		wc.Recv() // start
		// Flood stores to an unknown field: the first one fails the
		// master's shadow inject; the rest overfill the 1024-entry conn
		// buffer plus the 1024-entry inbox so the reader must block.
		for i := 0; i < 3000; i++ {
			if wc.Send(&Msg{Kind: MStore, Store: runtime.StoreNotice{Field: "nope", Value: field.Int32Val(1)}}) != nil {
				break
			}
		}
		wc.Close()
	}()
	_, err := RunMaster(MasterConfig{Prog: workloads.MulSum(), Method: sched.Greedy}, []Conn{mc})
	if err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Fatalf("master error = %v, want unknown-field failure", err)
	}
	<-workerDone
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := goruntime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d now vs %d before\n%s",
				n, baseline, buf[:goruntime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// goroutineCountStable samples the goroutine count after giving leftover
// goroutines from earlier tests a moment to finish.
func goroutineCountStable(t *testing.T) int {
	t.Helper()
	last := goruntime.NumGoroutine()
	for i := 0; i < 50; i++ {
		time.Sleep(2 * time.Millisecond)
		n := goruntime.NumGoroutine()
		if n == last {
			return n
		}
		last = n
	}
	return last
}

// bigStoreProg stores one elems-element int32 generation; the slab dominates
// the run's allocations so pool reuse across runs is measurable.
func bigStoreProg(t testing.TB, elems int) *core.Program {
	t.Helper()
	b := core.NewBuilder("big")
	b.Field("data", field.Int32, 1, true)
	b.Kernel("src").
		Local("v", field.Int32, 1).
		StoreAll("data", core.AgeAt(0), "v").
		Body(func(c *core.Ctx) error {
			vs := c.Array("v")
			for i := 0; i < elems; i++ {
				vs.Put(field.Int32Val(int32(i)), i)
			}
			return nil
		})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// driveWorker scripts a minimal master over mc: assign every kernel, start,
// ping to quiescence, stop, and collect the report.
func driveWorker(t *testing.T, mc Conn, kernels []string) {
	t.Helper()
	if m, err := mc.Recv(); err != nil || m.Kind != MRegister {
		t.Fatalf("registration: %v", err)
	}
	if err := mc.Send(&Msg{Kind: MAssign, Kernels: kernels}); err != nil {
		t.Fatal(err)
	}
	if err := mc.Send(&Msg{Kind: MStart}); err != nil {
		t.Fatal(err)
	}
	for {
		if err := mc.Send(&Msg{Kind: MPing}); err != nil {
			t.Fatal(err)
		}
		m, err := mc.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Kind == MStatus && m.Idle && m.Sent > 0 {
			break
		}
		if m.Kind == MStatus {
			time.Sleep(200 * time.Microsecond)
		}
	}
	if err := mc.Send(&Msg{Kind: MStopReq}); err != nil {
		t.Fatal(err)
	}
	for {
		m, err := mc.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Kind == MReport {
			return
		}
	}
}

// TestWorkerReleasePoolReuse: RunWorker must return its node's generations to
// the slab pools on shutdown (the MStopReq path used to skip Release), so a
// long-lived worker process reuses slabs across back-to-back programs instead
// of growing without bound.
func TestWorkerReleasePoolReuse(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool deliberately drops Puts under the race detector")
	}
	const elems = 1 << 16
	slabBytes := uint64(4 * elems)
	prog := bigStoreProg(t, elems)
	runOnce := func() {
		mc, wc := InprocPipe()
		done := make(chan error, 1)
		go func() {
			_, err := RunWorker(WorkerConfig{NodeID: "w", Cores: 1, Prog: prog}, wc)
			done <- err
		}()
		driveWorker(t, mc, []string{"src"})
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		mc.Close()
	}

	// sync.Pool is sharded per P and Get prefers the local shard, so stray
	// small generations parked on other Ps by earlier tests can shadow the
	// released slab. One P makes pool traffic (and the drain) deterministic.
	defer goruntime.GOMAXPROCS(goruntime.GOMAXPROCS(1))
	field.DrainAgePoolsForTest()
	// sync.Pool empties on GC; pin collection off so a mid-measurement
	// cycle cannot turn pool hits into reallocations.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	var m0, m1, m2 goruntime.MemStats
	goruntime.ReadMemStats(&m0)
	runOnce()
	goruntime.ReadMemStats(&m1)
	runOnce()
	goruntime.ReadMemStats(&m2)
	first := m1.TotalAlloc - m0.TotalAlloc
	second := m2.TotalAlloc - m1.TotalAlloc
	if second+slabBytes/2 > first {
		t.Errorf("second run allocated %d bytes vs first %d: released slabs (%d bytes) were not reused",
			second, first, slabBytes)
	}
}

// TestStoreBatcherFlush covers the batcher's three emission triggers: the
// entry-count threshold, the byte threshold, and flushAll in first-store
// order; emitted frames must decode back to the original notices.
func TestStoreBatcherFlush(t *testing.T) {
	var msgs []*Msg
	b := newStoreBatcher(func(m *Msg, f *runtime.StoreFrame) {
		m.Frame = f.AppendTo(nil)
		msgs = append(msgs, m)
		runtime.PutStoreFrame(f)
	}, nil, "test", nil)

	for i := 0; i < frameFlushEntries; i++ {
		if err := b.add(runtime.StoreNotice{Field: "f", Age: 1, Elem: []int{i}, Value: field.Int32Val(int32(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if len(msgs) != 1 {
		t.Fatalf("%d frames after %d entries, want 1", len(msgs), frameFlushEntries)
	}
	if msgs[0].Kind != MStoreFrame || msgs[0].Field != "f" || msgs[0].Age != 1 {
		t.Fatalf("frame envelope %+v", msgs[0])
	}
	var n int
	if err := runtime.DecodeStoreFrame(msgs[0].Frame, func(sn runtime.StoreNotice) error {
		if sn.Field != "f" || sn.Age != 1 || sn.Elem[0] != n || sn.Value.Int64() != int64(n) {
			return fmt.Errorf("entry %d decoded as %+v", n, sn)
		}
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != frameFlushEntries {
		t.Fatalf("decoded %d entries, want %d", n, frameFlushEntries)
	}

	// One store bigger than the byte threshold flushes immediately.
	big := field.NewArray(field.Uint8, frameFlushBytes+1)
	if err := b.add(runtime.StoreNotice{Field: "g", Age: 0, Whole: true, Value: field.ArrayVal(big)}); err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 || msgs[1].Field != "g" {
		t.Fatalf("byte threshold did not flush: %d frames", len(msgs))
	}

	// flushAll emits pending generations in first-store order.
	script := []runtime.StoreNotice{
		{Field: "a", Age: 0, Elem: []int{0}, Value: field.Int32Val(1)},
		{Field: "b", Age: 0, Elem: []int{0}, Value: field.Int32Val(2)},
		{Field: "a", Age: 1, Elem: []int{0}, Value: field.Int32Val(3)},
		{Field: "a", Age: 0, Elem: []int{1}, Value: field.Int32Val(4)},
	}
	for _, sn := range script {
		if err := b.add(sn); err != nil {
			t.Fatal(err)
		}
	}
	b.flushAll()
	order := msgs[2:]
	if len(order) != 3 {
		t.Fatalf("flushAll emitted %d frames, want 3", len(order))
	}
	wantOrder := []genKey{{"a", 0}, {"b", 0}, {"a", 1}}
	for i, w := range wantOrder {
		if order[i].Field != w.field || order[i].Age != w.age {
			t.Errorf("frame %d is %s(%d), want %s(%d)", i, order[i].Field, order[i].Age, w.field, w.age)
		}
	}
	b.flushAll() // idempotent on empty state
	if len(msgs) != 5 {
		t.Errorf("empty flushAll emitted frames")
	}
	// Nil batcher (frames disabled) is a no-op.
	var nilB *storeBatcher
	if err := nilB.add(script[0]); err != nil {
		t.Error(err)
	}
	nilB.flushAll()
}

// distMJPEGOverTCP runs the MJPEG pipeline across two TCP workers and
// returns the shadow's concatenated bitstream.
func distMJPEGOverTCP(t *testing.T, frames int, disableFrames bool) []byte {
	t.Helper()
	mkProg := func() *core.Program {
		return workloads.MJPEG(workloads.MJPEGConfig{
			Source:  video.NewSynthetic(32, 32, frames, 4),
			Quality: 70,
		})
	}
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 2
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := DialTCP(l.Addr())
			if err != nil {
				errs <- err
				return
			}
			if _, err := RunWorker(WorkerConfig{
				NodeID:        fmt.Sprintf("tcp%d", i),
				Cores:         2,
				Prog:          mkProg(),
				DisableFrames: disableFrames,
			}, conn); err != nil {
				errs <- fmt.Errorf("worker %d: %w", i, err)
			}
		}(i)
	}
	conns := make([]Conn, n)
	for i := range conns {
		c, err := l.Accept()
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}
	res, err := RunMaster(MasterConfig{Prog: mkProg(), Method: sched.KL}, conns)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if err != nil {
		t.Fatal(err)
	}
	var stream []byte
	for a := 0; a < frames; a++ {
		s, err := res.Shadow.Snapshot("bitstream", a)
		if err != nil {
			t.Fatal(err)
		}
		if s.Extent(0) == 0 {
			t.Fatalf("frame %d missing from shadow bitstream", a)
		}
		stream = append(stream, s.At(0).Obj().([]byte)...)
	}
	return stream
}

// TestDistributedMJPEGOverTCPBitIdentical: the framed transport (and its gob
// A/B baseline) must produce a bitstream identical to the single-node
// encoder, over real TCP with gob envelopes.
func TestDistributedMJPEGOverTCPBitIdentical(t *testing.T) {
	workloads.RegisterPayloads()
	const frames = 3
	var baseline bytes.Buffer
	enc := &mjpeg.Encoder{Quality: 70}
	if _, err := enc.EncodeStream(video.NewSynthetic(32, 32, frames, 4), &baseline); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name          string
		disableFrames bool
	}{
		{"frames", false},
		{"gob-per-store", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			stream := distMJPEGOverTCP(t, frames, tc.disableFrames)
			if !bytes.Equal(stream, baseline.Bytes()) {
				t.Errorf("distributed bitstream (%d bytes) differs from baseline (%d bytes)",
					len(stream), baseline.Len())
			}
		})
	}
}
