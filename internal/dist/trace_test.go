package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/video"
	"repro/internal/workloads"
)

// TestClockOffsetEstimate runs the Cristian-style probe exchange against a
// fake worker whose clock is skewed by a known amount; over an in-process
// pipe the RTT is microseconds, so the estimate must land near the skew.
func TestClockOffsetEstimate(t *testing.T) {
	const skew = 50 * time.Millisecond
	mc, wc := InprocPipe()
	done := make(chan error, 1)
	go func() {
		defer close(done)
		for i := 0; i < clockProbes; i++ {
			m, err := wc.Recv()
			if err != nil {
				done <- err
				return
			}
			if m.Kind != MClockProbe {
				done <- fmt.Errorf("fake worker got %v, want MClockProbe", m.Kind)
				return
			}
			if err := wc.Send(&Msg{
				Kind:   MClockEcho,
				SentNs: m.SentNs,
				NodeNs: time.Now().Add(skew).UnixNano(),
			}); err != nil {
				done <- err
				return
			}
		}
	}()
	off, err := estimateClockOffset(mc, clockProbes)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	diff := off - skew.Nanoseconds()
	if diff < 0 {
		diff = -diff
	}
	// Generous tolerance for a loaded single-core CI host; the skew is 25×
	// bigger, so a sign error or an unsubtracted RTT would still fail.
	if diff > (2 * time.Millisecond).Nanoseconds() {
		t.Errorf("offset = %v, want ~%v (err %v)", time.Duration(off), skew, time.Duration(diff))
	}
}

// TestClockOffsetEstimateError covers the failure path: a peer that answers
// with the wrong kind aborts the sync instead of producing a junk offset.
func TestClockOffsetEstimateError(t *testing.T) {
	mc, wc := InprocPipe()
	go func() {
		m, _ := wc.Recv()
		wc.Send(&Msg{Kind: MStatus, SentNs: m.SentNs})
	}()
	if _, err := estimateClockOffset(mc, 1); err == nil {
		t.Error("estimateClockOffset accepted a non-echo reply")
	}
}

// TestDistributedTraceMerged is the tentpole end-to-end check: MJPEG over two
// TCP workers with tracing on everywhere must yield one merged, clock-aligned
// Chrome trace — master broker spans and both workers' emit/inject spans
// linked by shared causal trace ids.
func TestDistributedTraceMerged(t *testing.T) {
	workloads.RegisterPayloads()
	const frames = 3
	mkProg := func() *core.Program {
		return workloads.MJPEG(workloads.MJPEGConfig{
			Source:  video.NewSynthetic(32, 32, frames, 4),
			Quality: 70,
		})
	}

	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 2
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := DialTCP(l.Addr())
			if err != nil {
				errs <- err
				return
			}
			// Worker 0 brings its own tracer; worker 1 has none and must
			// get one from the assignment's TraceOn bit — cluster tracing
			// only requires the master's flag.
			var tracer *obs.Tracer
			if i == 0 {
				tracer = obs.NewTracer(obs.DefaultTraceCapacity)
			}
			if _, err := RunWorker(WorkerConfig{
				NodeID:  fmt.Sprintf("w%d", i),
				Cores:   2,
				Prog:    mkProg(),
				Metrics: obs.NewRegistry(),
				Tracer:  tracer,
			}, conn); err != nil {
				errs <- fmt.Errorf("worker %d: %w", i, err)
			}
		}(i)
	}
	conns := make([]Conn, n)
	for i := range conns {
		c, err := l.Accept()
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}
	masterTracer := obs.NewTracer(obs.DefaultTraceCapacity)
	res, err := RunMaster(MasterConfig{
		Prog: mkProg(), Method: sched.KL,
		Metrics: obs.NewRegistry(), Tracer: masterTracer, CollectTraces: true,
	}, conns)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if err != nil {
		t.Fatal(err)
	}

	// Every worker handed its span buffer and clock offset to the master.
	if len(res.Traces) != n {
		t.Fatalf("collected %d node traces, want %d", len(res.Traces), n)
	}
	if len(res.ClockOffsets) != n {
		t.Fatalf("clock offsets %v, want %d entries", res.ClockOffsets, n)
	}
	emitTraces := map[uint64]bool{}
	injectTraces := map[uint64]bool{}
	for _, nt := range res.Traces {
		if nt.Node == "" || nt.PID < 2 || nt.StartUnixNs == 0 {
			t.Errorf("node trace bundle incomplete: %+v", nt)
		}
		if len(nt.Spans) == 0 {
			t.Errorf("node %s sent no spans", nt.Node)
		}
		for _, s := range nt.Spans {
			if s.Trace == 0 || s.Cat != "dist" {
				continue
			}
			switch s.Flow {
			case obs.FlowStart:
				emitTraces[s.Trace] = true
			case obs.FlowFinish:
				injectTraces[s.Trace] = true
			}
		}
	}
	if len(emitTraces) == 0 {
		t.Error("no emit spans with causal trace ids on any worker")
	}
	brokerTraces := map[uint64]bool{}
	for _, s := range masterTracer.Spans() {
		if s.Cat == "dist" && s.Trace != 0 && s.Flow == obs.FlowStep {
			brokerTraces[s.Trace] = true
		}
	}
	if len(brokerTraces) == 0 {
		t.Error("master recorded no broker spans with causal trace ids")
	}
	// Causality: a frame emitted on one node was brokered by the master, and
	// at least one brokered frame was injected on a subscriber node.
	linked := 0
	for id := range emitTraces {
		if brokerTraces[id] {
			linked++
		}
	}
	if linked == 0 {
		t.Errorf("no trace id appears in both an emit span (%d) and a broker span (%d)",
			len(emitTraces), len(brokerTraces))
	}
	crossed := 0
	for id := range injectTraces {
		if brokerTraces[id] {
			crossed++
		}
	}
	if crossed == 0 {
		t.Errorf("no trace id crossed broker (%d) to inject (%d)",
			len(brokerTraces), len(injectTraces))
	}

	// Workers reported stage attribution including transport flight.
	for id, rep := range res.Reports {
		if rep.Stages == nil {
			t.Errorf("node %s report has no stage attribution", id)
			continue
		}
		if rep.Stages.FlightNs < 0 {
			t.Errorf("node %s FlightNs = %d", id, rep.Stages.FlightNs)
		}
	}

	// The merged file is valid Chrome trace JSON: one process per node, all
	// timestamps on one non-negative timeline, flow events linking nodes.
	bundles := append([]obs.NodeTrace{masterTracer.NodeTrace("master", 1)}, res.Traces...)
	var buf bytes.Buffer
	if err := obs.WriteMergedChromeTrace(&buf, bundles); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Cat  string         `json:"cat"`
			PID  int            `json:"pid"`
			TS   float64        `json:"ts"`
			ID   string         `json:"id"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	procs := map[int]string{}
	flowPhases := map[string]bool{}
	pids := map[int]bool{}
	for _, ev := range f.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			procs[ev.PID], _ = ev.Args["name"].(string)
			continue
		}
		pids[ev.PID] = true
		if ev.TS < 0 {
			t.Fatalf("event %q at negative ts %f", ev.Name, ev.TS)
		}
		if ev.Cat == "dist.flow" {
			if ev.ID == "" {
				t.Fatalf("flow event without id: %+v", ev)
			}
			flowPhases[ev.Ph] = true
		}
	}
	if len(procs) != n+1 {
		t.Errorf("process_name metadata for %d pids, want %d: %v", len(procs), n+1, procs)
	}
	if len(pids) != n+1 {
		t.Errorf("events span %d pids, want %d", len(pids), n+1)
	}
	for _, ph := range []string{"s", "t", "f"} {
		if !flowPhases[ph] {
			t.Errorf("merged trace has no %q flow events (got %v)", ph, flowPhases)
		}
	}
}
