// Package dist implements P2G's distributed layer (paper figure 1): a master
// node that collects the global topology, partitions the workload with the
// high-level scheduler and assigns partitions to execution nodes; execution
// nodes that run their partition on the local runtime; and the event-based
// publish-subscribe distribution of store and completion events between
// nodes.
//
// Messages flow over a Transport. Two implementations are provided: an
// in-process transport (for tests and single-machine experiments) and TCP
// with gob encoding (for real deployments via cmd/p2g-master and
// cmd/p2g-worker). The master acts as the pub-sub broker: each worker
// publishes its store/done events once, and the master forwards them to the
// nodes whose kernels subscribe to the stored fields, preserving per-origin
// order.
package dist

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// Conn is a bidirectional, ordered message channel between two nodes.
type Conn interface {
	Send(*Msg) error
	Recv() (*Msg, error)
	Close() error
}

// FrameConn is implemented by transports that can send a store-frame payload
// scatter-gather style: the envelope is encoded with Frame nil and FrameLen
// set, then the segment vector is written raw (writev) after it, so slab
// bytes reach the socket without an intermediate contiguous copy. SendFrame
// must not mutate m — the broker shares one envelope across subscribers —
// and must not retain segs past the call.
type FrameConn interface {
	Conn
	SendFrame(m *Msg, segs net.Buffers) error
}

// ConnStats holds cumulative transport counters for one connection end.
// Byte counts cover the encoded wire form; the in-process transport moves
// pointers, so its byte counts stay zero.
type ConnStats struct {
	SentMsgs  int64
	RecvMsgs  int64
	SentBytes int64
	RecvBytes int64
}

// StatsReporter is implemented by transports that count their traffic; the
// worker and master fold these counters into metrics and reports.
type StatsReporter interface {
	Stats() ConnStats
}

// connStats tracks a connection's traffic with atomics (Send and Recv run
// on different goroutines).
type connStats struct {
	sentMsgs, recvMsgs, sentBytes, recvBytes atomic.Int64
}

func (s *connStats) Stats() ConnStats {
	return ConnStats{
		SentMsgs:  s.sentMsgs.Load(),
		RecvMsgs:  s.recvMsgs.Load(),
		SentBytes: s.sentBytes.Load(),
		RecvBytes: s.recvBytes.Load(),
	}
}

// Listener accepts inbound connections.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	Addr() string
}

// ---- in-process transport ----

type inprocConn struct {
	out  chan<- *Msg
	in   <-chan *Msg
	once sync.Once
	done chan struct{}
	peer *inprocConn
	connStats
}

// InprocPipe returns a connected pair of in-process connections.
func InprocPipe() (Conn, Conn) {
	ab := make(chan *Msg, 1024)
	ba := make(chan *Msg, 1024)
	a := &inprocConn{out: ab, in: ba, done: make(chan struct{})}
	b := &inprocConn{out: ba, in: ab, done: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

func (c *inprocConn) Send(m *Msg) error {
	// Check closure first: the buffered data channel may still have room,
	// and select would otherwise pick it nondeterministically.
	select {
	case <-c.done:
		return fmt.Errorf("dist: send on closed connection")
	case <-c.peer.done:
		return fmt.Errorf("dist: peer closed")
	default:
	}
	select {
	case <-c.done:
		return fmt.Errorf("dist: send on closed connection")
	case <-c.peer.done:
		return fmt.Errorf("dist: peer closed")
	case c.out <- m:
		c.sentMsgs.Add(1)
		return nil
	}
}

func (c *inprocConn) Recv() (*Msg, error) {
	select {
	case m := <-c.in:
		c.recvMsgs.Add(1)
		return m, nil
	case <-c.done:
		return nil, fmt.Errorf("dist: connection closed")
	case <-c.peer.done:
		// Drain anything already queued before reporting closure.
		select {
		case m := <-c.in:
			c.recvMsgs.Add(1)
			return m, nil
		default:
			return nil, fmt.Errorf("dist: peer closed")
		}
	}
}

func (c *inprocConn) Close() error {
	c.once.Do(func() { close(c.done) })
	return nil
}

// ---- TCP transport ----

type tcpConn struct {
	nc  net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
	// br feeds the decoder and the raw frame reads after SendFrame-split
	// envelopes. gob uses it as an io.ByteReader and so never reads ahead
	// past a message boundary, leaving the raw frame bytes for Recv.
	br *bufio.Reader
	mu sync.Mutex
	connStats
}

// countingWriter / countingReader wrap the TCP stream so the gob encoders
// count encoded wire bytes as a side effect.
type countingWriter struct {
	w io.Writer
	n *atomic.Int64
}

func (cw countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n.Add(int64(n))
	return n, err
}

type countingReader struct {
	r io.Reader
	n *atomic.Int64
}

func (cr countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n.Add(int64(n))
	return n, err
}

// DialTCP connects to a master's TCP listener.
func DialTCP(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: dialing %s: %w", addr, err)
	}
	return newTCPConn(nc), nil
}

func newTCPConn(nc net.Conn) Conn {
	c := &tcpConn{nc: nc}
	c.enc = gob.NewEncoder(countingWriter{w: nc, n: &c.sentBytes})
	c.br = bufio.NewReader(countingReader{r: nc, n: &c.recvBytes})
	c.dec = gob.NewDecoder(c.br)
	return c
}

func (c *tcpConn) Send(m *Msg) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(m); err != nil {
		return err
	}
	c.sentMsgs.Add(1)
	return nil
}

// SendFrame implements FrameConn: the envelope goes through gob with
// FrameLen announcing the payload, then the segments hit the socket raw via
// net.Buffers (writev on platforms that support it) — no contiguous copy of
// the frame is ever built on the send side.
func (c *tcpConn) SendFrame(m *Msg, segs net.Buffers) error {
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	env := *m // the caller may share m across subscribers; never mutate it
	env.Frame = nil
	env.FrameLen = total
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(&env); err != nil {
		return err
	}
	n, err := segs.WriteTo(c.nc)
	c.sentBytes.Add(n)
	if err != nil {
		return err
	}
	c.sentMsgs.Add(1)
	return nil
}

// maxRecvFrameLen bounds the raw frame allocation on receive, so a corrupt
// or malicious FrameLen cannot demand unbounded memory.
const maxRecvFrameLen = 1 << 30

func (c *tcpConn) Recv() (*Msg, error) {
	m := &Msg{}
	if err := c.dec.Decode(m); err != nil {
		return nil, err
	}
	if m.FrameLen != 0 {
		if m.FrameLen < 0 || m.FrameLen > maxRecvFrameLen {
			return nil, fmt.Errorf("dist: frame length %d out of range", m.FrameLen)
		}
		raw := make([]byte, m.FrameLen)
		if _, err := io.ReadFull(c.br, raw); err != nil {
			return nil, fmt.Errorf("dist: reading raw store frame: %w", err)
		}
		m.Frame = raw
		m.FrameLen = 0
	}
	c.recvMsgs.Add(1)
	return m, nil
}

func (c *tcpConn) Close() error { return c.nc.Close() }

type tcpListener struct{ l net.Listener }

// ListenTCP opens a TCP listener for a master node; addr may use port 0 for
// an ephemeral port (see Addr).
func ListenTCP(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: listening on %s: %w", addr, err)
	}
	return &tcpListener{l: l}, nil
}

func (t *tcpListener) Accept() (Conn, error) {
	nc, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	return newTCPConn(nc), nil
}

func (t *tcpListener) Close() error { return t.l.Close() }
func (t *tcpListener) Addr() string { return t.l.Addr().String() }
