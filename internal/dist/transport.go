// Package dist implements P2G's distributed layer (paper figure 1): a master
// node that collects the global topology, partitions the workload with the
// high-level scheduler and assigns partitions to execution nodes; execution
// nodes that run their partition on the local runtime; and the event-based
// publish-subscribe distribution of store and completion events between
// nodes.
//
// Messages flow over a Transport. Two implementations are provided: an
// in-process transport (for tests and single-machine experiments) and TCP
// with gob encoding (for real deployments via cmd/p2g-master and
// cmd/p2g-worker). The master acts as the pub-sub broker: each worker
// publishes its store/done events once, and the master forwards them to the
// nodes whose kernels subscribe to the stored fields, preserving per-origin
// order.
package dist

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Conn is a bidirectional, ordered message channel between two nodes.
type Conn interface {
	Send(*Msg) error
	Recv() (*Msg, error)
	Close() error
}

// IdleTimeoutConn is implemented by transports whose operations can be
// deadline-bounded. With a non-zero timeout, a Recv that sees no message for
// the duration — and, on TCP, a Send that cannot make progress — fails with
// an error containing "idle timeout" instead of blocking forever. This is the
// failure-detection primitive: a half-open TCP connection (peer machine gone,
// no RST ever arrives) otherwise wedges a blocking read indefinitely.
type IdleTimeoutConn interface {
	Conn
	SetIdleTimeout(d time.Duration)
}

// SetConnIdleTimeout applies an idle timeout when the transport supports one;
// it is a no-op otherwise, so callers need not type-switch.
func SetConnIdleTimeout(c Conn, d time.Duration) {
	if ic, ok := c.(IdleTimeoutConn); ok {
		ic.SetIdleTimeout(d)
	}
}

// FrameConn is implemented by transports that can send a store-frame payload
// scatter-gather style: the envelope is encoded with Frame nil and FrameLen
// set, then the segment vector is written raw (writev) after it, so slab
// bytes reach the socket without an intermediate contiguous copy. SendFrame
// must not mutate m — the broker shares one envelope across subscribers —
// and must not retain segs past the call.
type FrameConn interface {
	Conn
	SendFrame(m *Msg, segs net.Buffers) error
}

// ConnStats holds cumulative transport counters for one connection end.
// Byte counts cover the encoded wire form; the in-process transport moves
// pointers, so its byte counts stay zero.
type ConnStats struct {
	SentMsgs  int64
	RecvMsgs  int64
	SentBytes int64
	RecvBytes int64
}

// StatsReporter is implemented by transports that count their traffic; the
// worker and master fold these counters into metrics and reports.
type StatsReporter interface {
	Stats() ConnStats
}

// connStats tracks a connection's traffic with atomics (Send and Recv run
// on different goroutines).
type connStats struct {
	sentMsgs, recvMsgs, sentBytes, recvBytes atomic.Int64
}

func (s *connStats) Stats() ConnStats {
	return ConnStats{
		SentMsgs:  s.sentMsgs.Load(),
		RecvMsgs:  s.recvMsgs.Load(),
		SentBytes: s.sentBytes.Load(),
		RecvBytes: s.recvBytes.Load(),
	}
}

// Listener accepts inbound connections.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	Addr() string
}

// ---- in-process transport ----

type inprocConn struct {
	out  chan<- *Msg
	in   <-chan *Msg
	once sync.Once
	done chan struct{}
	peer *inprocConn
	idle atomic.Int64 // idle timeout in nanoseconds; 0 = none
	connStats
}

// SetIdleTimeout implements IdleTimeoutConn: Recv fails after d of silence.
func (c *inprocConn) SetIdleTimeout(d time.Duration) { c.idle.Store(int64(d)) }

// InprocPipe returns a connected pair of in-process connections.
func InprocPipe() (Conn, Conn) {
	ab := make(chan *Msg, 1024)
	ba := make(chan *Msg, 1024)
	a := &inprocConn{out: ab, in: ba, done: make(chan struct{})}
	b := &inprocConn{out: ba, in: ab, done: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

func (c *inprocConn) Send(m *Msg) error {
	// Check closure first: the buffered data channel may still have room,
	// and select would otherwise pick it nondeterministically.
	select {
	case <-c.done:
		return fmt.Errorf("dist: send on closed connection")
	case <-c.peer.done:
		return fmt.Errorf("dist: peer closed")
	default:
	}
	select {
	case <-c.done:
		return fmt.Errorf("dist: send on closed connection")
	case <-c.peer.done:
		return fmt.Errorf("dist: peer closed")
	case c.out <- m:
		c.sentMsgs.Add(1)
		return nil
	}
}

func (c *inprocConn) Recv() (*Msg, error) {
	var timeout <-chan time.Time
	if d := c.idle.Load(); d > 0 {
		t := time.NewTimer(time.Duration(d))
		defer t.Stop()
		timeout = t.C
	}
	select {
	case m := <-c.in:
		c.recvMsgs.Add(1)
		return m, nil
	case <-c.done:
		return nil, fmt.Errorf("dist: connection closed")
	case <-timeout:
		return nil, fmt.Errorf("dist: idle timeout after %v", time.Duration(c.idle.Load()))
	case <-c.peer.done:
		// Drain anything already queued before reporting closure.
		select {
		case m := <-c.in:
			c.recvMsgs.Add(1)
			return m, nil
		default:
			return nil, fmt.Errorf("dist: peer closed")
		}
	}
}

func (c *inprocConn) Close() error {
	c.once.Do(func() { close(c.done) })
	return nil
}

// ---- TCP transport ----

type tcpConn struct {
	nc  net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
	// br feeds the decoder and the raw frame reads after SendFrame-split
	// envelopes. gob uses it as an io.ByteReader and so never reads ahead
	// past a message boundary, leaving the raw frame bytes for Recv.
	br   *bufio.Reader
	mu   sync.Mutex
	idle atomic.Int64 // idle timeout in nanoseconds; 0 = none
	connStats
}

// SetIdleTimeout implements IdleTimeoutConn: every subsequent Recv arms a
// read deadline and every Send a write deadline, so a half-open peer surfaces
// as an error instead of a forever-blocked syscall. Zero clears any armed
// deadline.
func (c *tcpConn) SetIdleTimeout(d time.Duration) {
	c.idle.Store(int64(d))
	if d == 0 {
		c.nc.SetDeadline(time.Time{})
	}
}

// idleErr rewraps a deadline-exceeded transport error so callers (and
// humans) see the liveness meaning, not just "i/o timeout".
func (c *tcpConn) idleErr(op string, err error) error {
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		return fmt.Errorf("dist: idle timeout after %v (%s): %w", time.Duration(c.idle.Load()), op, err)
	}
	return err
}

// countingWriter / countingReader wrap the TCP stream so the gob encoders
// count encoded wire bytes as a side effect.
type countingWriter struct {
	w io.Writer
	n *atomic.Int64
}

func (cw countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n.Add(int64(n))
	return n, err
}

type countingReader struct {
	r io.Reader
	n *atomic.Int64
}

func (cr countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n.Add(int64(n))
	return n, err
}

// DialTCP connects to a master's TCP listener.
func DialTCP(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: dialing %s: %w", addr, err)
	}
	return newTCPConn(nc), nil
}

func newTCPConn(nc net.Conn) Conn {
	c := &tcpConn{nc: nc}
	c.enc = gob.NewEncoder(countingWriter{w: nc, n: &c.sentBytes})
	c.br = bufio.NewReader(countingReader{r: nc, n: &c.recvBytes})
	c.dec = gob.NewDecoder(c.br)
	return c
}

func (c *tcpConn) Send(m *Msg) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d := c.idle.Load(); d > 0 {
		c.nc.SetWriteDeadline(time.Now().Add(time.Duration(d)))
	}
	if err := c.enc.Encode(m); err != nil {
		return c.idleErr("send", err)
	}
	c.sentMsgs.Add(1)
	return nil
}

// SendFrame implements FrameConn: the envelope goes through gob with
// FrameLen announcing the payload, then the segments hit the socket raw via
// net.Buffers (writev on platforms that support it) — no contiguous copy of
// the frame is ever built on the send side.
func (c *tcpConn) SendFrame(m *Msg, segs net.Buffers) error {
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	env := *m // the caller may share m across subscribers; never mutate it
	env.Frame = nil
	env.FrameLen = total
	c.mu.Lock()
	defer c.mu.Unlock()
	if d := c.idle.Load(); d > 0 {
		c.nc.SetWriteDeadline(time.Now().Add(time.Duration(d)))
	}
	if err := c.enc.Encode(&env); err != nil {
		return c.idleErr("send", err)
	}
	n, err := segs.WriteTo(c.nc)
	c.sentBytes.Add(n)
	if err != nil {
		return c.idleErr("send", err)
	}
	c.sentMsgs.Add(1)
	return nil
}

// maxRecvFrameLen bounds the raw frame allocation on receive, so a corrupt
// or malicious FrameLen cannot demand unbounded memory.
const maxRecvFrameLen = 1 << 30

func (c *tcpConn) Recv() (*Msg, error) {
	if d := c.idle.Load(); d > 0 {
		c.nc.SetReadDeadline(time.Now().Add(time.Duration(d)))
	}
	m := &Msg{}
	if err := c.dec.Decode(m); err != nil {
		return nil, c.idleErr("recv", err)
	}
	if m.FrameLen != 0 {
		if m.FrameLen < 0 || m.FrameLen > maxRecvFrameLen {
			return nil, fmt.Errorf("dist: frame length %d out of range", m.FrameLen)
		}
		if d := c.idle.Load(); d > 0 {
			c.nc.SetReadDeadline(time.Now().Add(time.Duration(d)))
		}
		raw := make([]byte, m.FrameLen)
		if _, err := io.ReadFull(c.br, raw); err != nil {
			return nil, fmt.Errorf("dist: reading raw store frame: %w", c.idleErr("recv", err))
		}
		m.Frame = raw
		m.FrameLen = 0
	}
	c.recvMsgs.Add(1)
	return m, nil
}

func (c *tcpConn) Close() error { return c.nc.Close() }

// pushbackConn replays one already-received message before delegating to the
// underlying connection. The master CLI uses it to classify inbound workers
// (MRegister vs MJoin) at accept time without consuming the registration that
// RunMaster expects to read itself. All optional transport capabilities
// (FrameConn, StatsReporter, IdleTimeoutConn) forward, so wrapping costs the
// connection nothing.
type pushbackConn struct {
	under Conn
	mu    sync.Mutex
	first *Msg
}

// NewPushbackConn wraps c so its next Recv returns first.
func NewPushbackConn(c Conn, first *Msg) Conn {
	return &pushbackConn{under: c, first: first}
}

func (c *pushbackConn) Send(m *Msg) error { return c.under.Send(m) }

func (c *pushbackConn) SendFrame(m *Msg, segs net.Buffers) error {
	if fc, ok := c.under.(FrameConn); ok {
		return fc.SendFrame(m, segs)
	}
	env := *m
	var flat []byte
	for _, s := range segs {
		flat = append(flat, s...)
	}
	env.Frame = flat
	env.FrameLen = 0
	return c.under.Send(&env)
}

func (c *pushbackConn) Recv() (*Msg, error) {
	c.mu.Lock()
	if m := c.first; m != nil {
		c.first = nil
		c.mu.Unlock()
		return m, nil
	}
	c.mu.Unlock()
	return c.under.Recv()
}

func (c *pushbackConn) Close() error { return c.under.Close() }

// SetIdleTimeout forwards to the underlying transport when supported.
func (c *pushbackConn) SetIdleTimeout(d time.Duration) { SetConnIdleTimeout(c.under, d) }

// Stats forwards to the underlying transport when supported.
func (c *pushbackConn) Stats() ConnStats {
	if sr, ok := c.under.(StatsReporter); ok {
		return sr.Stats()
	}
	return ConnStats{}
}

type tcpListener struct{ l net.Listener }

// ListenTCP opens a TCP listener for a master node; addr may use port 0 for
// an ephemeral port (see Addr).
func ListenTCP(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: listening on %s: %w", addr, err)
	}
	return &tcpListener{l: l}, nil
}

func (t *tcpListener) Accept() (Conn, error) {
	nc, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	return newTCPConn(nc), nil
}

func (t *tcpListener) Close() error { return t.l.Close() }
func (t *tcpListener) Addr() string { return t.l.Addr().String() }
