package dist

import (
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/runtime"
)

// ClusterView is a thread-safe, continuously updated view of a running
// master node, built for the /statusz introspection endpoint: the current
// phase, the partition assignment, and per-worker status merged from
// heartbeats (idle state, event counters, and the kernel stats carried in
// each worker's metric snapshot). All mutating methods are safe on a nil
// receiver, so RunMaster updates its view unconditionally.
type ClusterView struct {
	mu sync.Mutex
	st ClusterStatus
}

// ClusterStatus is the JSON shape served by /statusz on a master.
type ClusterStatus struct {
	Workload   string         `json:"workload,omitempty"`
	Phase      string         `json:"phase"`
	Method     string         `json:"method,omitempty"`
	Assignment map[string]int `json:"assignment,omitempty"`
	// Liveness configuration: a worker silent for MaxMissed heartbeat
	// intervals is declared dead; with Failover its kernels are reassigned
	// and replayed, otherwise the run fails. Standbys counts spare workers
	// available for takeover.
	HeartbeatMs int64          `json:"heartbeat_ms,omitempty"`
	MaxMissed   int            `json:"max_missed,omitempty"`
	Failover    bool           `json:"failover,omitempty"`
	Standbys    int            `json:"standbys,omitempty"`
	Workers     []WorkerStatus `json:"workers,omitempty"`
	// Cluster is the merge of all worker metric snapshots: counters and
	// gauges sum, histogram buckets add — the whole-cluster totals.
	Cluster *obs.MetricsSnapshot `json:"cluster,omitempty"`
}

// WorkerStatus is one worker's row in the cluster view.
type WorkerStatus struct {
	ID       string  `json:"id"`
	Cores    int     `json:"cores"`
	Speed    float64 `json:"speed"`
	Idle     bool    `json:"idle"`
	Sent     int64   `json:"sent"`
	Received int64   `json:"received"`
	Done     bool    `json:"done"`
	// Dead marks a worker the liveness monitor declared lost.
	Dead     bool      `json:"dead,omitempty"`
	LastSeen time.Time `json:"last_seen,omitempty"`
	// Kernels is derived live from the heartbeat metric snapshot (and
	// replaced by the final report's rows once the worker is done).
	Kernels []runtime.KernelStats `json:"kernels,omitempty"`
	// Metrics is the worker's latest raw snapshot.
	Metrics *obs.MetricsSnapshot `json:"metrics,omitempty"`
}

// NewClusterView creates a view in the "waiting" phase.
func NewClusterView(workload string) *ClusterView {
	return &ClusterView{st: ClusterStatus{Workload: workload, Phase: "waiting"}}
}

// Status returns a copy of the current cluster state (typed any so it plugs
// directly into obs.NewServer's status callback).
func (v *ClusterView) Status() any {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	out := v.st
	out.Workers = append([]WorkerStatus(nil), v.st.Workers...)
	if len(out.Workers) > 0 {
		merged := &obs.MetricsSnapshot{
			Counters:   map[string]int64{},
			Gauges:     map[string]int64{},
			Histograms: map[string]obs.HistogramSnapshot{},
		}
		have := false
		for _, w := range out.Workers {
			if w.Metrics != nil {
				merged.Merge(w.Metrics)
				have = true
			}
		}
		if have {
			out.Cluster = merged
		}
	}
	return out
}

func (v *ClusterView) setPhase(phase string) {
	if v == nil {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.st.Phase = phase
}

func (v *ClusterView) registerWorker(i int, id string, cores int, speed float64) {
	if v == nil {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	for len(v.st.Workers) <= i {
		v.st.Workers = append(v.st.Workers, WorkerStatus{})
	}
	v.st.Workers[i] = WorkerStatus{ID: id, Cores: cores, Speed: speed}
}

func (v *ClusterView) setAssignment(assign map[string]int, method string) {
	if v == nil {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.st.Assignment = assign
	v.st.Method = method
}

// updateWorker folds one heartbeat into the view.
func (v *ClusterView) updateWorker(i int, idle bool, sent, received int64, snap *obs.MetricsSnapshot) {
	if v == nil {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if i < 0 || i >= len(v.st.Workers) {
		return
	}
	w := &v.st.Workers[i]
	w.Idle = idle
	w.Sent = sent
	w.Received = received
	w.LastSeen = time.Now()
	if snap != nil {
		w.Metrics = snap
		w.Kernels = KernelStatsFromSnapshot(snap)
	}
}

// setLiveness records the run's failure-detection configuration.
func (v *ClusterView) setLiveness(heartbeat time.Duration, maxMissed int, failover bool, standbys int) {
	if v == nil {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.st.HeartbeatMs = heartbeat.Milliseconds()
	v.st.MaxMissed = maxMissed
	v.st.Failover = failover
	v.st.Standbys = standbys
}

// workerDead marks a worker the liveness monitor declared lost.
func (v *ClusterView) workerDead(i int) {
	if v == nil {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if i < 0 || i >= len(v.st.Workers) {
		return
	}
	v.st.Workers[i].Dead = true
	v.st.Workers[i].Idle = false
}

// workerDone records the final report of one worker.
func (v *ClusterView) workerDone(i int, rep *runtime.Report) {
	if v == nil {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if i < 0 || i >= len(v.st.Workers) {
		return
	}
	v.st.Workers[i].Done = true
	v.st.Workers[i].Idle = true
	if rep != nil {
		v.st.Workers[i].Kernels = append([]runtime.KernelStats(nil), rep.Kernels...)
	}
}

// KernelStatsFromSnapshot reconstructs per-kernel stats rows from the
// labeled kernel counters of a metric snapshot, sorted by kernel name. This
// is how the master shows live Table II/III rows for a worker mid-run.
func KernelStatsFromSnapshot(s *obs.MetricsSnapshot) []runtime.KernelStats {
	if s == nil {
		return nil
	}
	rows := map[string]*runtime.KernelStats{}
	row := func(kernel string) *runtime.KernelStats {
		if r, ok := rows[kernel]; ok {
			return r
		}
		r := &runtime.KernelStats{Name: kernel}
		rows[kernel] = r
		return r
	}
	for full, val := range s.Counters {
		name, kernel := obs.SplitLabel(full)
		if kernel == "" {
			continue
		}
		switch name {
		case obs.MKernelInstances:
			row(kernel).Instances = val
		case obs.MKernelDispatchNs:
			row(kernel).DispatchTotal = time.Duration(val)
		case obs.MKernelTimeNs:
			row(kernel).KernelTotal = time.Duration(val)
		case obs.MKernelStoreOps:
			row(kernel).StoreOps = val
		}
	}
	out := make([]runtime.KernelStats, 0, len(rows))
	for _, r := range rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
