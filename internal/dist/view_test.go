package dist

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/workloads"
)

// TestClusterViewLifecycle runs a real distributed execution with a view
// attached and checks the view went through the whole lifecycle: workers
// registered, assignment recorded, heartbeat metrics merged, final reports
// folded in, phase "done".
func TestClusterViewLifecycle(t *testing.T) {
	const n = 2
	view := NewClusterView("mulsum")
	masterConns := make([]Conn, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		var wc Conn
		masterConns[i], wc = InprocPipe()
		wg.Add(1)
		go func(i int, conn Conn) {
			defer wg.Done()
			if _, err := RunWorker(WorkerConfig{
				NodeID: fmt.Sprintf("w%d", i),
				Cores:  2,
				Prog:   workloads.MulSum(),
				MaxAge: 6,
			}, conn); err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i, wc)
	}
	if _, err := RunMaster(MasterConfig{Prog: workloads.MulSum(), Method: sched.KL, View: view}, masterConns); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	st, ok := view.Status().(ClusterStatus)
	if !ok {
		t.Fatalf("Status() returned %T", view.Status())
	}
	if st.Phase != "done" {
		t.Errorf("phase = %q, want done", st.Phase)
	}
	if st.Workload != "mulsum" || st.Method != "kl" {
		t.Errorf("workload/method = %q/%q", st.Workload, st.Method)
	}
	if len(st.Assignment) != 4 {
		t.Errorf("assignment %v", st.Assignment)
	}
	if len(st.Workers) != n {
		t.Fatalf("workers = %d, want %d", len(st.Workers), n)
	}
	var instances int64
	for i, w := range st.Workers {
		if w.ID != fmt.Sprintf("w%d", i) || w.Cores != 2 {
			t.Errorf("worker %d registration: %+v", i, w)
		}
		if !w.Done || !w.Idle {
			t.Errorf("worker %d not done/idle: %+v", i, w)
		}
		if w.LastSeen.IsZero() {
			t.Errorf("worker %d never heartbeat", i)
		}
		if w.Metrics == nil {
			t.Errorf("worker %d heartbeat carried no metric snapshot", i)
		}
		for _, k := range w.Kernels {
			instances += k.Instances
		}
	}
	ref, _ := runtime.Run(workloads.MulSum(), runtime.Options{Workers: 1, MaxAge: 6})
	if want := ref.TotalInstances(); instances != want {
		t.Errorf("view kernels total %d instances, want %d", instances, want)
	}
	if st.Cluster == nil {
		t.Fatal("no merged cluster snapshot")
	}
	if got := st.Cluster.Counters[obs.MDispatchesTotal]; got != ref.TotalInstances() {
		t.Errorf("merged cluster dispatches = %d, want %d", got, ref.TotalInstances())
	}

	// The view must serve as a JSON payload for /statusz.
	if _, err := json.Marshal(view.Status()); err != nil {
		t.Errorf("view status not JSON-marshalable: %v", err)
	}
}

// TestClusterViewNilSafe checks every mutator is a no-op on a nil view, which
// is how RunMaster calls them when no view is configured.
func TestClusterViewNilSafe(t *testing.T) {
	var v *ClusterView
	v.setPhase("x")
	v.registerWorker(0, "w", 1, 1)
	v.setAssignment(map[string]int{"k": 0}, "kl")
	v.updateWorker(0, true, 1, 2, nil)
	v.workerDone(0, nil)
	if v.Status() != nil {
		t.Error("nil view Status() should be nil")
	}
}

// TestKernelStatsFromSnapshot reconstructs Table II rows from labeled
// counters.
func TestKernelStatsFromSnapshot(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter(obs.Label(obs.MKernelInstances, "kernel", "mul2")).Add(7)
	reg.Counter(obs.Label(obs.MKernelDispatchNs, "kernel", "mul2")).Add(7000)
	reg.Counter(obs.Label(obs.MKernelTimeNs, "kernel", "mul2")).Add(700)
	reg.Counter(obs.Label(obs.MKernelStoreOps, "kernel", "mul2")).Add(14)
	reg.Counter(obs.Label(obs.MKernelInstances, "kernel", "init")).Add(1)
	reg.Counter("unrelated_total").Add(99)

	rows := KernelStatsFromSnapshot(reg.Snapshot())
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Name != "init" || rows[1].Name != "mul2" {
		t.Errorf("rows not sorted: %+v", rows)
	}
	m := rows[1]
	if m.Instances != 7 || m.DispatchTotal != 7000*time.Nanosecond || m.KernelTotal != 700*time.Nanosecond || m.StoreOps != 14 {
		t.Errorf("mul2 row %+v", m)
	}
	if KernelStatsFromSnapshot(nil) != nil {
		t.Error("nil snapshot should give nil rows")
	}
}

// TestWorkerReportCarriesTransport checks the final worker reports include
// the connection's message counters (bytes stay zero in-process).
func TestWorkerReportCarriesTransport(t *testing.T) {
	res := runDistributed(t, nil, 2, func(i int) WorkerConfig {
		return WorkerConfig{NodeID: fmt.Sprintf("w%d", i), Cores: 1, Prog: workloads.MulSum(), MaxAge: 4}
	})
	for id, rep := range res.Reports {
		if rep.SentMsgs == 0 || rep.RecvMsgs == 0 {
			t.Errorf("worker %s report transport: %d sent / %d recv msgs", id, rep.SentMsgs, rep.RecvMsgs)
		}
	}
	merged := runtime.MergeReports(res.Reports["w0"], res.Reports["w1"])
	if merged.SentMsgs != res.Reports["w0"].SentMsgs+res.Reports["w1"].SentMsgs {
		t.Errorf("merged transport %d", merged.SentMsgs)
	}
}
