package dist

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// WorkerConfig configures one execution node.
type WorkerConfig struct {
	// NodeID identifies the node in the topology and reports.
	NodeID string
	// Cores is the worker-thread count reported to the master and used
	// locally.
	Cores int
	// Speed is the relative speed factor reported to the master (0 means
	// 1.0).
	Speed float64
	// Prog is the program; it must be structurally identical to the
	// master's. When nil, Factory builds it from the assignment's Spec.
	Prog *core.Program
	// Factory builds the program from the spec carried in the assignment
	// message (used by cmd/p2g-worker, where programs come from a
	// registry).
	Factory func(spec string) (*core.Program, error)
	// BoundsFactory derives per-kernel age bounds from the spec; used with
	// Factory when KernelMaxAge is nil.
	BoundsFactory func(spec string) map[string]int
	// Output receives kernel Printf output.
	Output io.Writer
	// MaxAge and Granularity mirror the runtime options.
	MaxAge       int
	KernelMaxAge map[string]int
	Granularity  map[string]int

	// DisableFrames reverts the send path to one gob-encoded MStore per
	// store notice (the pre-framing wire behavior). Kept for A/B
	// comparison: the transport benchmark and the worker binary's
	// -gob-stores flag use it.
	DisableFrames bool

	// Standby registers this worker as a hot spare: it sends MJoin instead
	// of MRegister, receives no initial partition, and waits (answering
	// clock probes) until the master either promotes it after a peer's
	// death (MAssign/MStart, with the lost state replayed) or releases it
	// with MStopReq — in which case RunWorker returns (nil, nil).
	Standby bool
	// IdleTimeout, when positive, bounds every blocking transport operation
	// on the master connection once the run has started, so a silently dead
	// master surfaces as an error instead of wedging the worker forever.
	// Not armed during the handshake — registration and (for standbys) the
	// wait for promotion are legitimately unbounded.
	IdleTimeout time.Duration

	// Metrics receives the node's full instrumentation and is snapshotted
	// into every status heartbeat; when nil a private registry is created
	// so the master's cluster view still sees live per-kernel stats.
	Metrics *obs.Registry
	// Tracer records kernel-instance lifecycle spans on this node.
	Tracer *obs.Tracer
}

// handshakeErr formats the failure of a blocking handshake receive: a
// transport error, an MError carrying the master's reason, or an unexpected
// message kind.
func handshakeErr(phase string, m *Msg, err error) error {
	switch {
	case err != nil:
		return fmt.Errorf("dist: waiting for %s: %w", phase, err)
	case m.Kind == MError:
		return fmt.Errorf("dist: waiting for %s: master reported error: %s", phase, m.Err)
	default:
		return fmt.Errorf("dist: waiting for %s: unexpected %v", phase, m.Kind)
	}
}

// RunWorker executes one node of a distributed run over an established
// connection to the master. It returns the local instrumentation report.
// A standby worker that was never promoted returns (nil, nil).
func RunWorker(cfg WorkerConfig, conn Conn) (*runtime.Report, error) {
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	speed := cfg.Speed
	if speed <= 0 {
		speed = 1
	}
	regKind := MRegister
	if cfg.Standby {
		regKind = MJoin
	}
	if err := conn.Send(&Msg{Kind: regKind, NodeID: cfg.NodeID, Cores: cfg.Cores, Speed: speed}); err != nil {
		return nil, err
	}

	// An observed master interleaves clock probes between registration and
	// assignment; answer them with this node's clock until the assignment
	// arrives (unobserved masters send none). A standby sits in this loop
	// for as long as the cluster stays healthy.
	var assign *Msg
	for {
		m, err := conn.Recv()
		if err != nil {
			return nil, handshakeErr("assignment", m, err)
		}
		if m.Kind == MClockProbe {
			if err := conn.Send(&Msg{Kind: MClockEcho, SentNs: m.SentNs, NodeNs: time.Now().UnixNano()}); err != nil {
				return nil, fmt.Errorf("dist: answering clock probe: %w", err)
			}
			continue
		}
		if m.Kind == MStopReq {
			// Released before ever being assigned work: the run finished (or
			// failed) without needing this standby.
			return nil, nil
		}
		assign = m
		break
	}
	if assign.Kind != MAssign {
		return nil, handshakeErr("assignment", assign, nil)
	}
	if assign.TraceOn && cfg.Tracer == nil {
		// The master will pull span buffers at shutdown; give it something
		// to pull even when this worker wasn't started with -trace.
		cfg.Tracer = obs.NewTracer(obs.DefaultTraceCapacity)
	}
	prog := cfg.Prog
	if prog == nil {
		if cfg.Factory == nil {
			return nil, fmt.Errorf("dist: worker has neither a program nor a factory")
		}
		built, err := cfg.Factory(assign.Spec)
		if err != nil {
			return nil, fmt.Errorf("dist: building program %q: %w", assign.Spec, err)
		}
		prog = built
	}
	if cfg.KernelMaxAge == nil && cfg.BoundsFactory != nil {
		cfg.KernelMaxAge = cfg.BoundsFactory(assign.Spec)
	}

	var sent, received atomic.Int64
	sendErr := make(chan error, 1)
	send := func(m *Msg) {
		// Every message through here is freshly allocated, so stamping is
		// race-free; the master turns the stamp into a flight measurement.
		m.SentNs = time.Now().UnixNano()
		if err := conn.Send(m); err != nil {
			select {
			case sendErr <- err:
			default:
			}
		}
	}
	// sendFrame routes a batched store frame: scatter-gather on transports
	// that support it (slab bytes go straight to the socket), flattened into
	// a fresh slice otherwise (the in-process transport moves *Msg by
	// pointer, so a pooled buffer must not ride inside it). Either way the
	// frame is recycled afterwards.
	sendFrame := func(m *Msg, f *runtime.StoreFrame) {
		m.SentNs = time.Now().UnixNano()
		var err error
		if fc, ok := conn.(FrameConn); ok {
			err = fc.SendFrame(m, f.Segments())
		} else {
			m.Frame = f.AppendTo(nil)
			err = conn.Send(m)
		}
		runtime.PutStoreFrame(f)
		if err != nil {
			select {
			case sendErr <- err:
			default:
			}
		}
	}

	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	// updateTransport folds the connection's traffic counters into the
	// registry (as gauges: each sample replaces the last) right before a
	// snapshot or report, so heartbeats carry current transport totals.
	updateTransport := func() ConnStats {
		var st ConnStats
		if sr, ok := conn.(StatsReporter); ok {
			st = sr.Stats()
			reg.Gauge(obs.MTransportSentMsgs).Set(st.SentMsgs)
			reg.Gauge(obs.MTransportRecvMsgs).Set(st.RecvMsgs)
			reg.Gauge(obs.MTransportSentBytes).Set(st.SentBytes)
			reg.Gauge(obs.MTransportRecvBytes).Set(st.RecvBytes)
		}
		return st
	}

	// Flight accounting: master-stamped pings measured against this node's
	// clock, corrected by the handshake's offset estimate. The baseline
	// projects only this run's flight time into the report (the registry
	// may be shared across runs).
	hFlight := reg.Histogram(obs.MStageFlightNs)
	flightBase := hFlight.SumNs()

	// The node (and its batcher) is rebuilt from scratch whenever the
	// master reassigns kernels after a peer's death, so construction lives
	// in a closure. rep/runErr are written by the run goroutine strictly
	// before close(runDone) and read only after it, so rebuilds are
	// race-free.
	var (
		node    *runtime.Node
		batcher *storeBatcher
		runDone chan struct{}
		rep     *runtime.Report
		runErr  error
	)
	buildNode := func(kernels []string, failover bool) error {
		local := map[string]bool{}
		for _, k := range kernels {
			local[k] = true
		}
		remote := map[string]bool{}
		for _, k := range prog.Kernels {
			if !local[k.Name] {
				remote[k.Name] = true
			}
		}
		// The store batcher coalesces per-row notices into whole-generation
		// MStoreFrame messages; it is flushed before every MDone (keeping
		// the per-origin stores-before-done order) and on every ping
		// (bounding how long an incomplete generation can sit unsent). With
		// a tracer it also stamps each frame with a causal trace id and
		// records the emit span.
		batcher = nil
		if !cfg.DisableFrames {
			batcher = newStoreBatcher(sendFrame, reg, cfg.NodeID, cfg.Tracer)
		}
		b := batcher
		n, err := runtime.NewNode(prog, runtime.Options{
			Workers:       cfg.Cores,
			MaxAge:        cfg.MaxAge,
			KernelMaxAge:  cfg.KernelMaxAge,
			Granularity:   cfg.Granularity,
			Output:        cfg.Output,
			RemoteKernels: remote,
			NoAutoQuiesce: true,
			Metrics:       reg,
			Tracer:        cfg.Tracer,
			MergeStores:   failover,
			OnStore: func(sn runtime.StoreNotice) {
				sent.Add(1)
				if b != nil {
					if err := b.add(sn); err != nil {
						send(&Msg{Kind: MError, Err: err.Error()})
						select {
						case sendErr <- err:
						default:
						}
					}
					return
				}
				send(&Msg{Kind: MStore, Store: sn})
			},
			OnKernelDone: func(kernel string, age int) {
				sent.Add(1)
				b.flushAll()
				send(&Msg{Kind: MDone, Kernel: kernel, Age: age})
			},
		})
		if err != nil {
			return err
		}
		node = n
		return nil
	}
	startRun := func() {
		done := make(chan struct{})
		runDone = done
		n := node
		go func() {
			r, err := n.Run()
			rep, runErr = r, err
			close(done)
			// A failed run can end before the master requests a stop; report
			// it proactively so the cluster shuts down instead of waiting for
			// a quiescence that can never be detected.
			if err != nil {
				send(&Msg{Kind: MError, Err: err.Error()})
			}
		}()
	}

	if err := buildNode(assign.Kernels, assign.Failover); err != nil {
		send(&Msg{Kind: MError, Err: err.Error()})
		return nil, err
	}

	start, err := conn.Recv()
	if err != nil || start.Kind != MStart {
		node.Release()
		return nil, handshakeErr("start", start, err)
	}
	// Clock-sync result: offset is this node's clock minus the master's, so
	// master-equivalent local time is local − offset.
	clockOffset, synced := start.OffsetNs, start.Synced
	if cfg.IdleTimeout > 0 {
		SetConnIdleTimeout(conn, cfg.IdleTimeout)
	}

	startRun()
	// teardown stops the local run and returns its field generations to the
	// slab pools; every exit path below goes through it (a long-lived worker
	// process runs many programs over one process lifetime).
	teardown := func() {
		node.Stop()
		<-runDone
		node.Release()
	}

	// Receive on a separate goroutine so the main loop can select a failed
	// send (a dead master) without waiting for the master to speak next.
	// Closing the connection on return unblocks the receiver; the stop
	// channel reaps it if it is blocked handing over a message.
	type recvMsg struct {
		m   *Msg
		err error
	}
	recvCh := make(chan recvMsg)
	recvStop := make(chan struct{})
	defer close(recvStop)
	defer conn.Close()
	go func() {
		for {
			m, err := conn.Recv()
			select {
			case recvCh <- recvMsg{m: m, err: err}:
			case <-recvStop:
				return
			}
			if err != nil {
				return
			}
		}
	}()

	// stopAndReport runs the orderly shutdown the master requested: stop the
	// node, surface a failed run, fold transport totals into the report and
	// ship it. Reached from MStopReq and from a send failure that raced one.
	stopAndReport := func() (*runtime.Report, error) {
		node.Stop()
		<-runDone
		if runErr != nil {
			send(&Msg{Kind: MError, Err: runErr.Error()})
			node.Release()
			return rep, runErr
		}
		if st := updateTransport(); rep != nil {
			rep.SentMsgs = st.SentMsgs
			rep.RecvMsgs = st.RecvMsgs
			rep.SentBytes = st.SentBytes
			rep.RecvBytes = st.RecvBytes
			if rep.Stages != nil {
				rep.Stages.FlightNs = hFlight.SumNs() - flightBase
			}
		}
		send(&Msg{Kind: MReport, Report: rep})
		// Release only after the report is out: a long-lived worker
		// (cmd/p2g-worker) reuses the slab pools for its next program.
		node.Release()
		return rep, nil
	}

	for {
		var in recvMsg
		// Prefer inbound traffic over a pending send failure: when the
		// master stops and closes in one breath, a status send can fail
		// just before the already-queued MStopReq is read, and the stop
		// (clean teardown through the normal path) must win over reporting
		// that race as an error. A genuinely dead master still surfaces —
		// nothing more arrives, so the send failure is selected next.
		select {
		case in = <-recvCh:
		default:
			select {
			case err := <-sendErr:
				// The failure may have raced a stop the master issued just
				// before the link broke (stop, then close — with this send
				// already failing). Drain what the connection still delivers
				// for a bounded moment: an in-flight MStopReq means this is
				// an orderly shutdown, not a dead link.
				grace := time.NewTimer(250 * time.Millisecond)
				for {
					select {
					case gin := <-recvCh:
						if gin.err == nil && gin.m.Kind == MStopReq {
							grace.Stop()
							return stopAndReport()
						}
						if gin.err != nil {
							grace.Stop()
							teardown()
							return rep, fmt.Errorf("dist: sending to master: %w", err)
						}
						// Data racing the failure is moot — the run ends
						// either way; keep draining within the window.
					case <-grace.C:
						teardown()
						return rep, fmt.Errorf("dist: sending to master: %w", err)
					}
				}
			case in = <-recvCh:
			}
		}
		if in.err != nil {
			teardown()
			return rep, fmt.Errorf("dist: master connection: %w", in.err)
		}
		m := in.m
		switch m.Kind {
		case MStore:
			received.Add(1)
			if err := node.InjectStore(m.Store); err != nil {
				send(&Msg{Kind: MError, Err: err.Error()})
				teardown()
				return rep, err
			}
		case MStoreFrame:
			received.Add(1)
			injectFrom := cfg.Tracer.Now()
			if err := node.InjectStoreFrame(m.Frame); err != nil {
				send(&Msg{Kind: MError, Err: err.Error()})
				teardown()
				return rep, err
			}
			if tr := cfg.Tracer; tr != nil {
				// Terminal hop of the frame's causal trace: the remote
				// generation lands in this node's field replica.
				tr.Record(obs.Span{
					Name: "inject " + m.Field, Cat: "dist", Ph: obs.PhaseComplete,
					TS: injectFrom, Dur: tr.Now() - injectFrom,
					Age: m.Age, Trace: m.Trace, Flow: obs.FlowFinish,
				})
			}
		case MDone:
			received.Add(1)
			if err := node.InjectRemoteDone(m.Kernel, m.Age); err != nil {
				send(&Msg{Kind: MError, Err: err.Error()})
				teardown()
				return rep, err
			}
		case MReassign:
			// A peer died and the master handed this worker a replacement
			// partition. Tear the node down and rebuild from scratch: the
			// replayed generations that follow this message (the connection
			// is FIFO) restore the remote field state, and the local kernels
			// re-execute from age zero — their stores merge idempotently
			// into peers that already hold them. Counters restart at zero to
			// match the master's reset accounting.
			node.Stop()
			<-runDone
			node.Release()
			if runErr != nil {
				return rep, runErr
			}
			// Re-execution only reproduces the lost stores if the kernels
			// restart from their initial state. A factory-built program is
			// rebuilt wholesale, so stateful kernel closures — a video
			// source mid-stream, most importantly — start over instead of
			// resuming where the torn-down node left them. A directly
			// injected Prog is reused as-is and must be restartable.
			if cfg.Factory != nil && m.Spec != "" {
				built, err := cfg.Factory(m.Spec)
				if err != nil {
					err = fmt.Errorf("dist: rebuilding program %q: %w", m.Spec, err)
					send(&Msg{Kind: MError, Err: err.Error()})
					return rep, err
				}
				prog = built
			}
			sent.Store(0)
			received.Store(0)
			if err := buildNode(m.Kernels, m.Failover); err != nil {
				send(&Msg{Kind: MError, Err: err.Error()})
				return rep, err
			}
			startRun()
		case MPing:
			if synced && m.SentNs != 0 {
				// Master→worker flight: the ping's master-clock stamp
				// against local time rebased to the master clock. Clamped
				// at zero (the offset estimate has RTT/2 error).
				flight := (time.Now().UnixNano() - clockOffset) - m.SentNs
				if flight < 0 {
					flight = 0
				}
				hFlight.Observe(time.Duration(flight))
			}
			batcher.flushAll()
			updateTransport()
			send(&Msg{Kind: MStatus, Idle: node.Idle(), Sent: sent.Load(), Received: received.Load(), Metrics: reg.Snapshot()})
		case MTraceReq:
			// Ship the span buffer with its alignment anchor; an untraced
			// node replies with an empty bundle so the master's collection
			// logic needs no special case.
			send(&Msg{
				Kind:         MTrace,
				Spans:        cfg.Tracer.Spans(),
				TraceStartNs: cfg.Tracer.StartUnixNs(),
				TraceDropped: cfg.Tracer.Dropped(),
			})
		case MSnapshotReq:
			arr, err := node.Snapshot(m.Field, m.Age)
			if err != nil {
				send(&Msg{Kind: MError, Err: err.Error()})
				continue
			}
			send(&Msg{Kind: MSnapshot, Field: m.Field, Age: m.Age, Arr: arr})
		case MStopReq:
			return stopAndReport()
		default:
			teardown()
			return rep, fmt.Errorf("dist: unexpected %v from master", m.Kind)
		}
	}
}
