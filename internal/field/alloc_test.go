package field

import (
	"runtime/debug"
	"testing"
)

// The allocation budgets below are regression guards for the typed memory
// path: the steady-state store/fetch hot paths must stay allocation-free, and
// dropped generations must recycle through the slab pool instead of
// reallocating.

// TestStoreSliceAllocFree: storing a 64-byte row into an age whose extents
// already cover it is a single typed copy with no allocation.
func TestStoreSliceAllocFree(t *testing.T) {
	const runs, rows = 100, 102
	f := New("u8", Uint8, 2, false)
	row := NewArray(Uint8, 64)
	for i := 0; i < 64; i++ {
		row.SetFlat(Int64Val(int64(i)), i)
	}
	// Pre-size by storing the last row first, so the measured stores never grow.
	if _, err := f.StoreSlice(0, []SlabDim{{Fixed: true, Index: rows - 1}, {}}, row); err != nil {
		t.Fatal(err)
	}
	next := 0
	avg := testing.AllocsPerRun(runs, func() {
		if _, err := f.StoreSlice(0, []SlabDim{{Fixed: true, Index: next}, {}}, row); err != nil {
			t.Fatal(err)
		}
		next++
	})
	if avg != 0 {
		t.Errorf("StoreSlice into existing age: %.1f allocs/op, want 0", avg)
	}
}

// TestSnapshotIntoAllocFree: whole-age fetch into a reused destination array
// is allocation-free once the destination has capacity.
func TestSnapshotIntoAllocFree(t *testing.T) {
	f := New("f64", Float64, 2, false)
	src := NewArray(Float64, 32, 8)
	for i := 0; i < src.Len(); i++ {
		src.SetFlat(Float64Val(float64(i)), i)
	}
	if _, err := f.StoreAll(0, src); err != nil {
		t.Fatal(err)
	}
	dst := &Array{}
	f.SnapshotInto(0, dst) // warm the destination's capacity
	avg := testing.AllocsPerRun(100, func() {
		f.SnapshotInto(0, dst)
	})
	if avg != 0 {
		t.Errorf("SnapshotInto: %.1f allocs/op, want 0", avg)
	}
	if dst.At(3, 4).Float64() != float64(3*8+4) {
		t.Error("snapshot contents wrong")
	}
}

// TestDropRecreateHitsPool: dropping an age and re-creating it checks slab
// storage back out of the pool — the cycle stays within a small constant
// budget (the growing store's extents copy) instead of reallocating the
// generation.
func TestDropRecreateHitsPool(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool deliberately drops Puts under the race detector")
	}
	f := New("i32", Int32, 1, true)
	src := NewArray(Int32, 256)
	for i := 0; i < src.Len(); i++ {
		src.SetFlat(Int64Val(int64(i)), i)
	}
	const age = 7
	if _, err := f.StoreAll(age, src); err != nil {
		t.Fatal(err)
	}
	// sync.Pool empties on GC; pin collection off so a mid-measurement cycle
	// cannot turn pool hits into reallocations.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	avg := testing.AllocsPerRun(100, func() {
		if !f.DropAge(age) {
			t.Fatal("age not live")
		}
		if _, err := f.StoreAll(age, src); err != nil {
			t.Fatal(err)
		}
	})
	// A small constant is tolerated: the growing store returns an extents
	// copy in its StoreResult, plus pool bookkeeping. Without recycling the
	// cycle costs the whole generation (slab + written bitmap + ageStore).
	if avg > 2 {
		t.Errorf("drop+recreate cycle: %.1f allocs/op, want <= 2", avg)
	}
}
