package field

import (
	"fmt"
	"strings"
)

// Array is a local, mutable, rank-N array of Values. Kernel bodies use Arrays
// for `local` fields and for whole-field fetches; unlike global Fields,
// Arrays have no write-once restriction and no ages. Arrays grow implicitly:
// Put past the current extent resizes the array, mirroring the implicit
// resizing of global fields.
type Array struct {
	kind    Kind
	extents []int
	data    []Value
}

// NewArray creates an array with the given element kind and extents. A rank-1
// array with extent 0 is the canonical "empty local field" that grows via Put.
func NewArray(kind Kind, extents ...int) *Array {
	if len(extents) == 0 {
		extents = []int{0}
	}
	n := 1
	for _, e := range extents {
		if e < 0 {
			panic(fmt.Sprintf("field: negative extent %d", e))
		}
		n *= e
	}
	return &Array{kind: kind, extents: append([]int(nil), extents...), data: make([]Value, n)}
}

// ArrayFromInt32 builds a rank-1 int32 array from a Go slice.
func ArrayFromInt32(vs []int32) *Array {
	a := NewArray(Int32, len(vs))
	for i, v := range vs {
		a.data[i] = Int32Val(v)
	}
	return a
}

// ArrayFromFloat64 builds a rank-1 float64 array from a Go slice.
func ArrayFromFloat64(vs []float64) *Array {
	a := NewArray(Float64, len(vs))
	for i, v := range vs {
		a.data[i] = Float64Val(v)
	}
	return a
}

// Int32Slice returns the rank-1 array's contents as a Go slice.
func (a *Array) Int32Slice() []int32 {
	out := make([]int32, len(a.data))
	for i, v := range a.data {
		out[i] = v.Int32()
	}
	return out
}

// Float64Slice returns the rank-1 array's contents as a Go slice.
func (a *Array) Float64Slice() []float64 {
	out := make([]float64, len(a.data))
	for i, v := range a.data {
		out[i] = v.Float64()
	}
	return out
}

// Kind returns the element kind.
func (a *Array) Kind() Kind { return a.kind }

// Rank returns the number of dimensions.
func (a *Array) Rank() int { return len(a.extents) }

// Extent returns the size of dimension d. It returns 0 for out-of-range
// dimensions, matching the kernel language's permissive extent() builtin.
func (a *Array) Extent(d int) int {
	if d < 0 || d >= len(a.extents) {
		return 0
	}
	return a.extents[d]
}

// Extents returns a copy of all dimension sizes.
func (a *Array) Extents() []int { return append([]int(nil), a.extents...) }

// Len returns the total number of elements.
func (a *Array) Len() int { return len(a.data) }

// flatten converts a multi-dimensional index to a flat offset, or -1 if any
// coordinate is out of bounds.
func (a *Array) flatten(idx []int) int {
	if len(idx) != len(a.extents) {
		return -1
	}
	off := 0
	for d, i := range idx {
		if i < 0 || i >= a.extents[d] {
			return -1
		}
		off = off*a.extents[d] + i
	}
	return off
}

// At returns the element at the given coordinates. It panics on rank mismatch
// or out-of-bounds access, as the kernel language's get() does.
func (a *Array) At(idx ...int) Value {
	off := a.flatten(idx)
	if off < 0 {
		panic(fmt.Sprintf("field: get %v out of bounds for extents %v", idx, a.extents))
	}
	return a.data[off]
}

// AtFlat returns the element at flat offset i in row-major order.
func (a *Array) AtFlat(i int) Value { return a.data[i] }

// Set stores v at the given coordinates. It panics if idx is out of bounds;
// use Put for the growing store.
func (a *Array) Set(v Value, idx ...int) {
	off := a.flatten(idx)
	if off < 0 {
		panic(fmt.Sprintf("field: set %v out of bounds for extents %v", idx, a.extents))
	}
	a.data[off] = v.Convert(a.kind)
}

// SetFlat stores v at flat offset i in row-major order.
func (a *Array) SetFlat(v Value, i int) { a.data[i] = v.Convert(a.kind) }

// Put stores v at the given coordinates, growing the array as needed so that
// every coordinate is in range. This implements the kernel language's
// put(values, v, i) builtin and the implicit-resize semantics of fields.
func (a *Array) Put(v Value, idx ...int) {
	if len(idx) != len(a.extents) {
		panic(fmt.Sprintf("field: put rank mismatch: %d coordinates for rank-%d array", len(idx), len(a.extents)))
	}
	grew := false
	newExt := append([]int(nil), a.extents...)
	for d, i := range idx {
		if i < 0 {
			panic(fmt.Sprintf("field: put negative index %d", i))
		}
		if i >= newExt[d] {
			newExt[d] = i + 1
			grew = true
		}
	}
	if grew {
		a.Grow(newExt...)
	}
	a.Set(v, idx...)
}

// Grow resizes the array to the given extents, which must be at least the
// current extents in every dimension. Existing elements keep their
// coordinates; new elements are zero values.
func (a *Array) Grow(extents ...int) {
	if len(extents) != len(a.extents) {
		panic(fmt.Sprintf("field: grow rank mismatch: %d extents for rank-%d array", len(extents), len(a.extents)))
	}
	same := true
	for d, e := range extents {
		if e < a.extents[d] {
			panic(fmt.Sprintf("field: grow would shrink dimension %d from %d to %d", d, a.extents[d], e))
		}
		if e != a.extents[d] {
			same = false
		}
	}
	if same {
		return
	}
	// Rank-1 fast path with amortized doubling: Put-driven growth (the
	// kernel language's append idiom) costs O(n) total instead of O(n²).
	if len(a.extents) == 1 {
		n := extents[0]
		if n <= cap(a.data) {
			a.data = a.data[:n]
		} else {
			c := 2 * cap(a.data)
			if c < n {
				c = n
			}
			nd := make([]Value, n, c)
			copy(nd, a.data)
			a.data = nd
		}
		a.extents[0] = n
		return
	}
	n := 1
	for _, e := range extents {
		n *= e
	}
	nd := make([]Value, n)
	if len(a.data) > 0 {
		idx := make([]int, len(a.extents))
		for off := range a.data {
			noff := 0
			for d := range idx {
				noff = noff*extents[d] + idx[d]
			}
			nd[noff] = a.data[off]
			for d := len(idx) - 1; d >= 0; d-- {
				idx[d]++
				if idx[d] < a.extents[d] {
					break
				}
				idx[d] = 0
			}
		}
	}
	a.extents = append([]int(nil), extents...)
	a.data = nd
}

// Clone returns a deep copy of the array. Element payloads of kind Any are
// shared (they are treated as immutable once stored).
func (a *Array) Clone() *Array {
	c := &Array{kind: a.kind, extents: append([]int(nil), a.extents...), data: make([]Value, len(a.data))}
	for i, v := range a.data {
		if v.IsArray() {
			c.data[i] = ArrayVal(v.Array().Clone())
		} else {
			c.data[i] = v
		}
	}
	return c
}

// Equal reports element-wise equality of two arrays.
func (a *Array) Equal(o *Array) bool {
	if a == nil || o == nil {
		return a == o
	}
	if a.kind != o.kind || len(a.extents) != len(o.extents) {
		return false
	}
	for d := range a.extents {
		if a.extents[d] != o.extents[d] {
			return false
		}
	}
	for i := range a.data {
		if !a.data[i].Equal(o.data[i]) {
			return false
		}
	}
	return true
}

// String formats the array like {1, 2, 3} (rank-1) or nested braces.
func (a *Array) String() string {
	var b strings.Builder
	a.format(&b, 0, 0)
	return b.String()
}

func (a *Array) format(b *strings.Builder, dim, base int) {
	b.WriteByte('{')
	stride := 1
	for d := dim + 1; d < len(a.extents); d++ {
		stride *= a.extents[d]
	}
	for i := 0; i < a.extents[dim]; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		if dim == len(a.extents)-1 {
			b.WriteString(a.data[base+i].String())
		} else {
			a.format(b, dim+1, base+i*stride)
		}
	}
	b.WriteByte('}')
}
