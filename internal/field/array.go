package field

import (
	"fmt"
	"strings"
)

// Array is a local, mutable, rank-N array of elements. Kernel bodies use
// Arrays for `local` fields and for whole-field fetches; unlike global Fields,
// Arrays have no write-once restriction and no ages. Arrays grow implicitly:
// Put past the current extent resizes the array, mirroring the implicit
// resizing of global fields.
//
// Storage is a kind-specialized flat slab (see slab.go). Scalar access via
// At/Set boxes and unboxes Values at the boundary; the typed accessors
// (Uint8s, Int32s, Int64s, Float64s) expose the live flat backing so kernels
// can read and write whole rows with plain Go slice operations.
type Array struct {
	kind    Kind
	extents []int
	data    slab

	// view marks an array whose slab aliases a field generation
	// (Field.FetchViewAll/FetchViewSlice) instead of owning its storage.
	// Boxed mutations (Set/SetFlat/Put/Grow) copy-on-write through unshare;
	// the typed accessors expose the aliased backing and must be treated as
	// read-only by view holders.
	view bool
}

// NewArray creates an array with the given element kind and extents. A rank-1
// array with extent 0 is the canonical "empty local field" that grows via Put.
func NewArray(kind Kind, extents ...int) *Array {
	if len(extents) == 0 {
		extents = []int{0}
	}
	n := 1
	for _, e := range extents {
		if e < 0 {
			panic(fmt.Sprintf("field: negative extent %d", e))
		}
		n *= e
	}
	return &Array{kind: kind, extents: append([]int(nil), extents...), data: newSlab(kind, n)}
}

// ArrayFromInt32 builds a rank-1 int32 array from a Go slice (copied).
func ArrayFromInt32(vs []int32) *Array {
	a := NewArray(Int32, len(vs))
	copy(a.data.i32, vs)
	return a
}

// ArrayFromFloat64 builds a rank-1 float64 array from a Go slice (copied).
func ArrayFromFloat64(vs []float64) *Array {
	a := NewArray(Float64, len(vs))
	copy(a.data.f64, vs)
	return a
}

// ArrayFromUint8 builds a rank-1 uint8 array from a Go slice (copied).
func ArrayFromUint8(vs []uint8) *Array {
	a := NewArray(Uint8, len(vs))
	copy(a.data.u8, vs)
	return a
}

// Int32Slice returns a copy of the rank-1 array's contents as a Go slice.
func (a *Array) Int32Slice() []int32 {
	out := make([]int32, a.Len())
	if a.data.class == classI32 {
		copy(out, a.data.i32)
		return out
	}
	for i := range out {
		out[i] = a.data.get(a.kind, i).Int32()
	}
	return out
}

// Float64Slice returns a copy of the rank-1 array's contents as a Go slice.
func (a *Array) Float64Slice() []float64 {
	out := make([]float64, a.Len())
	if a.data.class == classF64 {
		copy(out, a.data.f64)
		return out
	}
	for i := range out {
		out[i] = a.data.get(a.kind, i).Float64()
	}
	return out
}

// Uint8s returns the live flat backing of a uint8/bool-kind array in row-major
// order. Mutations are visible to the array; the slice is invalidated by
// Grow/Put past the extent. It panics for other kinds.
func (a *Array) Uint8s() []uint8 {
	if a.data.class != classU8 {
		panic(fmt.Sprintf("field: Uint8s on %s array", a.kind))
	}
	return a.data.u8
}

// Int32s returns the live flat backing of an int32-kind array in row-major
// order. Mutations are visible to the array; the slice is invalidated by
// Grow/Put past the extent. It panics for other kinds.
func (a *Array) Int32s() []int32 {
	if a.data.class != classI32 {
		panic(fmt.Sprintf("field: Int32s on %s array", a.kind))
	}
	return a.data.i32
}

// Int64s returns the live flat backing of an int64-kind array in row-major
// order. Mutations are visible to the array; the slice is invalidated by
// Grow/Put past the extent. It panics for other kinds.
func (a *Array) Int64s() []int64 {
	if a.data.class != classI64 {
		panic(fmt.Sprintf("field: Int64s on %s array", a.kind))
	}
	return a.data.i64
}

// Float64s returns the live flat backing of a float32/float64-kind array in
// row-major order. Mutations are visible to the array; the slice is
// invalidated by Grow/Put past the extent. It panics for other kinds.
func (a *Array) Float64s() []float64 {
	if a.data.class != classF64 {
		panic(fmt.Sprintf("field: Float64s on %s array", a.kind))
	}
	return a.data.f64
}

// Kind returns the element kind.
func (a *Array) Kind() Kind { return a.kind }

// Rank returns the number of dimensions.
func (a *Array) Rank() int { return len(a.extents) }

// Extent returns the size of dimension d. It returns 0 for out-of-range
// dimensions, matching the kernel language's permissive extent() builtin.
func (a *Array) Extent(d int) int {
	if d < 0 || d >= len(a.extents) {
		return 0
	}
	return a.extents[d]
}

// Extents returns a copy of all dimension sizes.
func (a *Array) Extents() []int { return append([]int(nil), a.extents...) }

// Len returns the total number of elements.
func (a *Array) Len() int { return a.data.len() }

// flatten converts a multi-dimensional index to a flat offset, or -1 if any
// coordinate is out of bounds.
func (a *Array) flatten(idx []int) int {
	if len(idx) != len(a.extents) {
		return -1
	}
	off := 0
	for d, i := range idx {
		if i < 0 || i >= a.extents[d] {
			return -1
		}
		off = off*a.extents[d] + i
	}
	return off
}

// At returns the element at the given coordinates. It panics on rank mismatch
// or out-of-bounds access, as the kernel language's get() does.
func (a *Array) At(idx ...int) Value {
	off := a.flatten(idx)
	if off < 0 {
		panic(fmt.Sprintf("field: get %v out of bounds for extents %v", idx, a.extents))
	}
	return a.data.get(a.kind, off)
}

// AtFlat returns the element at flat offset i in row-major order.
func (a *Array) AtFlat(i int) Value { return a.data.get(a.kind, i) }

// Set stores v at the given coordinates. It panics if idx is out of bounds;
// use Put for the growing store.
func (a *Array) Set(v Value, idx ...int) {
	off := a.flatten(idx)
	if off < 0 {
		panic(fmt.Sprintf("field: set %v out of bounds for extents %v", idx, a.extents))
	}
	a.unshare()
	a.data.set(a.kind, off, v)
}

// SetFlat stores v at flat offset i in row-major order.
func (a *Array) SetFlat(v Value, i int) {
	a.unshare()
	a.data.set(a.kind, i, v)
}

// unshare materializes a private copy of a view array's aliased backing
// before a mutation, so writes never reach the field generation the view
// came from.
func (a *Array) unshare() {
	if !a.view {
		return
	}
	src := a.data
	a.view = false
	a.data = slab{class: src.class}
	a.data.alloc(src.len(), src.len())
	a.data.copyRange(0, &src, 0, src.len())
}

// Put stores v at the given coordinates, growing the array as needed so that
// every coordinate is in range. This implements the kernel language's
// put(values, v, i) builtin and the implicit-resize semantics of fields.
func (a *Array) Put(v Value, idx ...int) {
	if len(idx) != len(a.extents) {
		panic(fmt.Sprintf("field: put rank mismatch: %d coordinates for rank-%d array", len(idx), len(a.extents)))
	}
	grew := false
	for d, i := range idx {
		if i < 0 {
			panic(fmt.Sprintf("field: put negative index %d", i))
		}
		if i >= a.extents[d] {
			grew = true
		}
	}
	if grew {
		newExt := make([]int, len(a.extents))
		for d := range newExt {
			newExt[d] = a.extents[d]
			if idx[d] >= newExt[d] {
				newExt[d] = idx[d] + 1
			}
		}
		a.Grow(newExt...)
	}
	a.Set(v, idx...)
}

// Grow resizes the array to the given extents, which must be at least the
// current extents in every dimension. Existing elements keep their
// coordinates; new elements are zero values.
func (a *Array) Grow(extents ...int) {
	if len(extents) != len(a.extents) {
		panic(fmt.Sprintf("field: grow rank mismatch: %d extents for rank-%d array", len(extents), len(a.extents)))
	}
	same := true
	for d, e := range extents {
		if e < a.extents[d] {
			panic(fmt.Sprintf("field: grow would shrink dimension %d from %d to %d", d, a.extents[d], e))
		}
		if e != a.extents[d] {
			same = false
		}
	}
	if same {
		return
	}
	// Growing a view must not touch the aliased generation (in particular a
	// classStr resize appends to the shared arena); take a private copy
	// first.
	a.unshare()
	n := 1
	onlyOuter := true
	for d, e := range extents {
		n *= e
		if d > 0 && e != a.extents[d] {
			onlyOuter = false
		}
	}
	// Fast path: growth confined to the outermost dimension (or an empty
	// array taking any shape) preserves flat row-major offsets, so the slab
	// resizes in place with amortized doubling instead of remapping — this
	// also keeps pooled/cached backing capacity alive across reuse.
	if onlyOuter || a.data.len() == 0 {
		a.data.resize(n, 2*a.data.capacity())
		copy(a.extents, extents)
		return
	}
	nd := newSlab(a.kind, n)
	remapSlab(&nd, extents, &a.data, a.extents)
	a.extents = append([]int(nil), extents...)
	a.data = nd
}

// remapSlab copies every element of src (laid out with srcExt) into dst (laid
// out with the elementwise-larger dstExt), preserving coordinates. Both slabs
// must share a class.
func remapSlab(dst *slab, dstExt []int, src *slab, srcExt []int) {
	n := src.len()
	if n == 0 {
		return
	}
	// Rows along the innermost dimension stay contiguous in both layouts, so
	// copy a row at a time.
	last := len(srcExt) - 1
	rowLen := srcExt[last]
	if rowLen == 0 {
		return
	}
	idx := make([]int, len(srcExt))
	for off := 0; off < n; off += rowLen {
		noff := 0
		for d := range idx {
			noff = noff*dstExt[d] + idx[d]
		}
		dst.copyRange(noff, src, off, rowLen)
		for d := last - 1; d >= 0; d-- {
			idx[d]++
			if idx[d] < srcExt[d] {
				break
			}
			idx[d] = 0
		}
	}
}

// FlatOffset64 converts int64 coordinates (the bytecode VM's register
// representation) to a flat row-major offset, or -1 on rank mismatch or any
// out-of-bounds coordinate — the same contract as the internal flatten.
func (a *Array) FlatOffset64(idx []int64) int {
	if len(idx) != len(a.extents) {
		return -1
	}
	off := 0
	for d, i := range idx {
		if i < 0 || i >= int64(a.extents[d]) {
			return -1
		}
		off = off*a.extents[d] + int(i)
	}
	return off
}

// FlatGetInt reads the element at flat offset off of an integer-class array
// (uint8/bool/int32/int64) as its int64 payload, without boxing. It panics for
// other storage classes.
func (a *Array) FlatGetInt(off int) int64 {
	switch a.data.class {
	case classU8:
		return int64(a.data.u8[off])
	case classI32:
		return int64(a.data.i32[off])
	case classI64:
		return a.data.i64[off]
	default:
		panic(fmt.Sprintf("field: FlatGetInt on %s array", a.kind))
	}
}

// FlatGetFloat reads the element at flat offset off of a float-class array as
// its float64 payload, without boxing. It panics for other storage classes.
func (a *Array) FlatGetFloat(off int) float64 {
	if a.data.class != classF64 {
		panic(fmt.Sprintf("field: FlatGetFloat on %s array", a.kind))
	}
	return a.data.f64[off]
}

// FlatSetInt stores x at flat offset off of an integer-class array with the
// same coercion as slab.set (width truncation, Bool normalized to 0/1),
// copy-on-write through unshare for views. It panics for other classes.
func (a *Array) FlatSetInt(off int, x int64) {
	a.unshare()
	switch a.data.class {
	case classU8:
		if a.kind == Bool {
			if x != 0 {
				x = 1
			} else {
				x = 0
			}
		}
		a.data.u8[off] = uint8(x)
	case classI32:
		a.data.i32[off] = int32(x)
	case classI64:
		a.data.i64[off] = x
	default:
		panic(fmt.Sprintf("field: FlatSetInt on %s array", a.kind))
	}
}

// FlatSetFloat stores x at flat offset off of a float-class array,
// copy-on-write through unshare for views. It panics for other classes.
func (a *Array) FlatSetFloat(off int, x float64) {
	a.unshare()
	if a.data.class != classF64 {
		panic(fmt.Sprintf("field: FlatSetFloat on %s array", a.kind))
	}
	a.data.f64[off] = x
}

// Clone returns a deep copy of the array. Element payloads of kind Any are
// shared (they are treated as immutable once stored), but nested array values
// are cloned.
func (a *Array) Clone() *Array {
	c := &Array{kind: a.kind, extents: append([]int(nil), a.extents...), data: newSlab(a.kind, a.data.len())}
	if a.data.class == classVal {
		for i, v := range a.data.vs {
			if v.IsArray() {
				c.data.vs[i] = ArrayVal(v.Array().Clone())
			} else {
				c.data.vs[i] = v
			}
		}
	} else {
		c.data.copyRange(0, &a.data, 0, a.data.len())
	}
	return c
}

// CloneInto makes dst a deep copy of the array, reusing dst's backing storage
// where capacity allows. It is the allocation-free steady-state counterpart
// of Clone for reused per-instance destination arrays.
func (a *Array) CloneInto(dst *Array) {
	dst.resetShape(a.kind, a.extents)
	if a.data.class == classVal {
		for i, v := range a.data.vs {
			if v.IsArray() {
				dst.data.vs[i] = ArrayVal(v.Array().Clone())
			} else {
				dst.data.vs[i] = v
			}
		}
		return
	}
	dst.data.copyRange(0, &a.data, 0, a.data.len())
}

// resetShape repurposes the array in place: kind set to k, extents copied from
// ext, backing slab resized to the product of ext. Contents are unspecified
// after the call (callers overwrite every element); reuses the extents slice
// and slab capacity when possible.
func (a *Array) resetShape(k Kind, ext []int) {
	n := 1
	for _, e := range ext {
		n *= e
	}
	if cap(a.extents) >= len(ext) {
		a.extents = a.extents[:len(ext)]
		copy(a.extents, ext)
	} else {
		a.extents = append([]int(nil), ext...)
	}
	cls := classOf(k)
	a.kind = k
	if a.view {
		// A view's slab belongs to a field generation: never reuse it as a
		// copy destination. Drop the alias and allocate privately below.
		a.view = false
		a.data = slab{class: cls}
	}
	if a.data.class != cls {
		a.data = newSlab(k, n)
		return
	}
	if n <= a.data.capacity() {
		// Zero only matters for callers that do not overwrite every slot;
		// all resetShape callers overwrite, but stale classVal references
		// would pin memory (and a stale classStr arena would grow without
		// bound), so drop them.
		if cls == classVal || cls == classStr {
			a.data.clearFull()
		}
		a.data.reslice(n)
		return
	}
	a.data.alloc(n, n)
}

// aliasSlab points the array at n elements of src starting at flat offset
// base, without copying: the backing slices alias src (three-index sliced so
// appends can never spill into the generation), extents are copied from ext,
// and the array is marked as a view. Only Field view fetches call this.
func (a *Array) aliasSlab(k Kind, ext []int, src *slab, base, n int) {
	if cap(a.extents) >= len(ext) {
		a.extents = a.extents[:len(ext)]
		copy(a.extents, ext)
	} else {
		a.extents = append([]int(nil), ext...)
	}
	a.kind = k
	a.view = true
	d := slab{class: src.class}
	switch src.class {
	case classU8:
		d.u8 = src.u8[base : base+n : base+n]
	case classI32:
		d.i32 = src.i32[base : base+n : base+n]
	case classI64:
		d.i64 = src.i64[base : base+n : base+n]
	case classF64:
		d.f64 = src.f64[base : base+n : base+n]
	case classStr:
		d.off = src.off[base : base+n : base+n]
		d.lens = src.lens[base : base+n : base+n]
		d.str = src.str // offsets are arena-absolute
	default:
		d.vs = src.vs[base : base+n : base+n]
	}
	a.data = d
}

// ResetEmpty repurposes the array in place as an empty array of the given
// kind and rank (all extents zero), reusing backing capacity. Pooled kernel
// contexts use it to recycle local-array storage across instances.
func (a *Array) ResetEmpty(k Kind, rank int) { a.resetZero(k, rank) }

// resetZero repurposes the array as an empty rank-`rank` array of kind k with
// all-zero extents, without allocating for small ranks.
func (a *Array) resetZero(k Kind, rank int) {
	var buf [4]int
	var ext []int
	if rank <= len(buf) {
		ext = buf[:rank]
	} else {
		ext = make([]int, rank)
	}
	a.resetShape(k, ext)
}

// Equal reports element-wise equality of two arrays.
func (a *Array) Equal(o *Array) bool {
	if a == nil || o == nil {
		return a == o
	}
	if a.kind != o.kind || len(a.extents) != len(o.extents) {
		return false
	}
	for d := range a.extents {
		if a.extents[d] != o.extents[d] {
			return false
		}
	}
	return a.data.equalRange(&o.data, a.data.len())
}

// String formats the array like {1, 2, 3} (rank-1) or nested braces.
func (a *Array) String() string {
	var b strings.Builder
	a.format(&b, 0, 0)
	return b.String()
}

func (a *Array) format(b *strings.Builder, dim, base int) {
	b.WriteByte('{')
	stride := 1
	for d := dim + 1; d < len(a.extents); d++ {
		stride *= a.extents[d]
	}
	for i := 0; i < a.extents[dim]; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		if dim == len(a.extents)-1 {
			b.WriteString(a.data.get(a.kind, base+i).String())
		} else {
			a.format(b, dim+1, base+i*stride)
		}
	}
	b.WriteByte('}')
}
