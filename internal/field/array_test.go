package field

import (
	"testing"
	"testing/quick"
)

func TestNewArrayDefaults(t *testing.T) {
	a := NewArray(Int32)
	if a.Rank() != 1 || a.Extent(0) != 0 || a.Len() != 0 {
		t.Fatalf("default array should be rank-1 extent-0, got rank %d extent %d", a.Rank(), a.Extent(0))
	}
	b := NewArray(Float64, 2, 3)
	if b.Rank() != 2 || b.Len() != 6 {
		t.Fatalf("2x3 array: rank %d len %d", b.Rank(), b.Len())
	}
	if b.Extent(0) != 2 || b.Extent(1) != 3 || b.Extent(2) != 0 || b.Extent(-1) != 0 {
		t.Error("Extent bounds behaviour")
	}
}

func TestArraySetAt(t *testing.T) {
	a := NewArray(Int32, 2, 3)
	v := int32(0)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			a.Set(Int32Val(v), i, j)
			v++
		}
	}
	if a.At(1, 2).Int32() != 5 || a.At(0, 0).Int32() != 0 {
		t.Error("row-major layout broken")
	}
	if a.AtFlat(5).Int32() != 5 {
		t.Error("AtFlat disagrees with row-major order")
	}
	a.SetFlat(Int32Val(99), 0)
	if a.At(0, 0).Int32() != 99 {
		t.Error("SetFlat")
	}
}

func TestArrayOutOfBoundsPanics(t *testing.T) {
	a := NewArray(Int32, 2)
	for name, fn := range map[string]func(){
		"get-oob":      func() { a.At(2) },
		"get-rank":     func() { a.At(0, 0) },
		"set-oob":      func() { a.Set(Int32Val(1), -1) },
		"put-rank":     func() { a.Put(Int32Val(1), 0, 0) },
		"put-negative": func() { a.Put(Int32Val(1), -2) },
		"grow-rank":    func() { a.Grow(1, 1) },
		"grow-shrink":  func() { a.Grow(1) },
		"neg-extent":   func() { NewArray(Int32, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestArrayPutGrows(t *testing.T) {
	a := NewArray(Int32)
	for i := 0; i < 5; i++ {
		a.Put(Int32Val(int32(i+10)), i)
	}
	if a.Extent(0) != 5 {
		t.Fatalf("extent after puts = %d, want 5", a.Extent(0))
	}
	want := []int32{10, 11, 12, 13, 14}
	got := a.Int32Slice()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slice = %v, want %v", got, want)
		}
	}
}

func TestArrayGrow2DPreservesCoordinates(t *testing.T) {
	a := NewArray(Int32, 2, 2)
	a.Set(Int32Val(1), 0, 0)
	a.Set(Int32Val(2), 0, 1)
	a.Set(Int32Val(3), 1, 0)
	a.Set(Int32Val(4), 1, 1)
	a.Grow(3, 4)
	if a.Extent(0) != 3 || a.Extent(1) != 4 {
		t.Fatalf("extents after grow: %v", a.Extents())
	}
	if a.At(0, 0).Int32() != 1 || a.At(0, 1).Int32() != 2 || a.At(1, 0).Int32() != 3 || a.At(1, 1).Int32() != 4 {
		t.Error("grow lost element coordinates")
	}
	if a.At(2, 3).Kind() != Invalid && a.At(2, 3).Int32() != 0 {
		t.Error("new elements should be zero")
	}
	// Growing to the same extents is a no-op.
	before := a.Len()
	a.Grow(3, 4)
	if a.Len() != before {
		t.Error("no-op grow reallocated")
	}
}

func TestArrayPut2D(t *testing.T) {
	a := NewArray(Int32, 1, 1)
	a.Put(Int32Val(7), 2, 3)
	if a.Extent(0) != 3 || a.Extent(1) != 4 {
		t.Fatalf("extents = %v", a.Extents())
	}
	if a.At(2, 3).Int32() != 7 {
		t.Error("put value lost")
	}
}

func TestArrayCloneIsDeep(t *testing.T) {
	a := ArrayFromInt32([]int32{1, 2, 3})
	c := a.Clone()
	c.Set(Int32Val(99), 0)
	if a.At(0).Int32() != 1 {
		t.Error("clone aliases original")
	}
	if !a.Equal(a.Clone()) {
		t.Error("clone should be Equal")
	}
	// Nested arrays are cloned too.
	outer := NewArray(Any, 1)
	inner := ArrayFromInt32([]int32{5})
	outer.Set(ArrayVal(inner), 0)
	oc := outer.Clone()
	oc.At(0).Array().Set(Int32Val(6), 0)
	if inner.At(0).Int32() != 5 {
		t.Error("nested clone aliases inner array")
	}
}

func TestArrayEqualEdgeCases(t *testing.T) {
	var nilA *Array
	if !nilA.Equal(nil) {
		t.Error("nil == nil")
	}
	if nilA.Equal(NewArray(Int32, 1)) {
		t.Error("nil != non-nil")
	}
	if NewArray(Int32, 2).Equal(NewArray(Int64, 2)) {
		t.Error("kind mismatch")
	}
	if NewArray(Int32, 2).Equal(NewArray(Int32, 3)) {
		t.Error("extent mismatch")
	}
	if NewArray(Int32, 2).Equal(NewArray(Int32, 2, 1)) {
		t.Error("rank mismatch")
	}
}

func TestArrayString2D(t *testing.T) {
	a := NewArray(Int32, 2, 2)
	a.Set(Int32Val(1), 0, 0)
	a.Set(Int32Val(2), 0, 1)
	a.Set(Int32Val(3), 1, 0)
	a.Set(Int32Val(4), 1, 1)
	if got := a.String(); got != "{{1, 2}, {3, 4}}" {
		t.Errorf("String() = %q", got)
	}
}

func TestFloat64SliceAndFrom(t *testing.T) {
	a := ArrayFromFloat64([]float64{1.5, -2})
	got := a.Float64Slice()
	if len(got) != 2 || got[0] != 1.5 || got[1] != -2 {
		t.Errorf("Float64Slice = %v", got)
	}
}

// Property: Put then At returns the stored value for arbitrary non-negative
// coordinates (bounded to keep allocation small).
func TestQuickPutAt(t *testing.T) {
	f := func(i, j uint8, v int32) bool {
		a := NewArray(Int32, 1, 1)
		x, y := int(i%32), int(j%32)
		a.Put(Int32Val(v), x, y)
		return a.At(x, y).Int32() == v && a.Extent(0) >= x+1 && a.Extent(1) >= y+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Grow never changes existing elements.
func TestQuickGrowPreserves(t *testing.T) {
	f := func(vals []int32, extra uint8) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 64 {
			vals = vals[:64]
		}
		a := ArrayFromInt32(vals)
		a.Grow(len(vals) + int(extra%16))
		for i, v := range vals {
			if a.At(i).Int32() != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Clone is Equal to its source and mutation-independent.
func TestQuickCloneEqual(t *testing.T) {
	f := func(vals []int32) bool {
		a := ArrayFromInt32(vals)
		c := a.Clone()
		if !a.Equal(c) {
			return false
		}
		if len(vals) > 0 {
			c.Set(Int32Val(c.At(0).Int32()+1), 0)
			if a.At(0).Int32() == c.At(0).Int32() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
