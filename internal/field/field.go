package field

import (
	"fmt"
	"sync"
)

// ErrWriteTwice is wrapped by errors returned when write-once semantics are
// violated (a second store to the same field position within one age).
var ErrWriteTwice = fmt.Errorf("write-once violation")

// Field is a global, aged, rank-N, write-once array — the central P2G data
// abstraction. Each age holds an independent generation of the field's data;
// a position may be stored once per age. Extents start at zero in every
// dimension (unless declared) and grow implicitly as stores land past the
// current extent. An age becomes "complete" when the runtime's dependency
// analyzer determines that every producer kernel instance for that age has
// finished; completeness gates whole-field fetches.
type Field struct {
	name string
	kind Kind
	rank int
	aged bool

	mu     sync.RWMutex
	ages   map[int]*ageStore
	minAge int // ages below this have been garbage collected
}

// ageStore holds one generation of field data.
type ageStore struct {
	extents  []int
	data     []Value
	written  []bool
	writes   int
	complete bool
	dropped  bool
}

// New creates a field. Rank must be at least 1. Non-aged fields behave as a
// single age-0 generation; storing to any other age is an error.
func New(name string, kind Kind, rank int, aged bool) *Field {
	if rank < 1 {
		panic(fmt.Sprintf("field %s: rank must be >= 1, got %d", name, rank))
	}
	return &Field{name: name, kind: kind, rank: rank, aged: aged, ages: make(map[int]*ageStore)}
}

// Name returns the field's declared name.
func (f *Field) Name() string { return f.name }

// Kind returns the element kind.
func (f *Field) Kind() Kind { return f.kind }

// Rank returns the number of dimensions.
func (f *Field) Rank() int { return f.rank }

// Aged reports whether the field was declared with the `age` attribute.
func (f *Field) Aged() bool { return f.aged }

func (f *Field) age(a int, create bool) *ageStore {
	if !f.aged && a != 0 {
		panic(fmt.Sprintf("field %s: access to age %d of non-aged field", f.name, a))
	}
	s := f.ages[a]
	if s == nil && create {
		if a < f.minAge {
			panic(fmt.Sprintf("field %s: store to garbage-collected age %d", f.name, a))
		}
		s = &ageStore{extents: make([]int, f.rank), data: nil, written: nil}
		f.ages[a] = s
	}
	return s
}

// StoreResult describes the effect of a store for the dependency analyzer.
type StoreResult struct {
	// Grew is true if the store enlarged the field's extent at this age.
	Grew bool
	// Extents is the extent after the store (a copy).
	Extents []int
	// Count is the number of elements written by this store.
	Count int
}

func (s *ageStore) grow(extents []int) {
	same := true
	for d, e := range extents {
		if e < s.extents[d] {
			extents[d] = s.extents[d]
		} else if e > s.extents[d] {
			same = false
		}
	}
	if same {
		return
	}
	// Rank-1 fast path: extend in place with amortized doubling, so
	// element-by-element stores (the dominant pattern for per-macroblock
	// kernels) cost O(n) total instead of O(n²) remapping.
	if len(extents) == 1 {
		n := extents[0]
		if n <= cap(s.data) {
			s.data = s.data[:n]
			s.written = s.written[:n]
		} else {
			c := 2 * cap(s.data)
			if c < n {
				c = n
			}
			nd := make([]Value, n, c)
			nw := make([]bool, n, c)
			copy(nd, s.data)
			copy(nw, s.written)
			s.data, s.written = nd, nw
		}
		s.extents[0] = n
		return
	}
	n := 1
	for _, e := range extents {
		n *= e
	}
	nd := make([]Value, n)
	nw := make([]bool, n)
	if len(s.data) > 0 {
		idx := make([]int, len(s.extents))
		for off := range s.data {
			noff := 0
			for d := range idx {
				noff = noff*extents[d] + idx[d]
			}
			nd[noff] = s.data[off]
			nw[noff] = s.written[off]
			for d := len(idx) - 1; d >= 0; d-- {
				idx[d]++
				if idx[d] < s.extents[d] {
					break
				}
				idx[d] = 0
			}
		}
	}
	s.extents = extents
	s.data = nd
	s.written = nw
}

func (s *ageStore) flatten(idx []int) int {
	off := 0
	for d, i := range idx {
		if i < 0 || i >= s.extents[d] {
			return -1
		}
		off = off*s.extents[d] + i
	}
	return off
}

// Store writes a single element at (age, idx...), growing the extent if the
// index lies past it. It returns ErrWriteTwice (wrapped) if the position was
// already written at this age.
func (f *Field) Store(age int, v Value, idx ...int) (StoreResult, error) {
	if len(idx) != f.rank {
		return StoreResult{}, fmt.Errorf("field %s: store rank mismatch: %d coordinates for rank-%d field", f.name, len(idx), f.rank)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.age(age, true)
	if s.complete {
		return StoreResult{}, fmt.Errorf("field %s(%d): store after age marked complete", f.name, age)
	}
	grew := false
	ext := append([]int(nil), s.extents...)
	for d, i := range idx {
		if i < 0 {
			return StoreResult{}, fmt.Errorf("field %s: negative index %d", f.name, i)
		}
		if i >= ext[d] {
			ext[d] = i + 1
			grew = true
		}
	}
	if grew {
		s.grow(ext)
	}
	off := s.flatten(idx)
	if s.written[off] {
		return StoreResult{}, fmt.Errorf("field %s(%d)%v: %w", f.name, age, idx, ErrWriteTwice)
	}
	s.data[off] = v.Convert(f.kind)
	s.written[off] = true
	s.writes++
	return StoreResult{Grew: grew, Extents: append([]int(nil), s.extents...), Count: 1}, nil
}

// StoreAll writes an entire generation from a local array: extents are set to
// the array's extents (growing as needed) and every element is written. It
// fails if any covered position was already written.
func (f *Field) StoreAll(age int, a *Array) (StoreResult, error) {
	if a.Rank() != f.rank {
		return StoreResult{}, fmt.Errorf("field %s: whole-field store rank mismatch: rank-%d array into rank-%d field", f.name, a.Rank(), f.rank)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.age(age, true)
	if s.complete {
		return StoreResult{}, fmt.Errorf("field %s(%d): store after age marked complete", f.name, age)
	}
	grew := false
	ext := append([]int(nil), s.extents...)
	for d := 0; d < f.rank; d++ {
		if a.Extent(d) > ext[d] {
			ext[d] = a.Extent(d)
			grew = true
		}
	}
	if grew {
		s.grow(ext)
	}
	// Walk the array in row-major order and map into the (possibly larger)
	// field extents.
	idx := make([]int, f.rank)
	n := a.Len()
	for flat := 0; flat < n; flat++ {
		off := s.flatten(idx)
		if s.written[off] {
			return StoreResult{}, fmt.Errorf("field %s(%d)%v: %w", f.name, age, idx, ErrWriteTwice)
		}
		s.data[off] = a.AtFlat(flat).Convert(f.kind)
		s.written[off] = true
		s.writes++
		for d := f.rank - 1; d >= 0; d-- {
			idx[d]++
			if idx[d] < a.Extent(d) {
				break
			}
			idx[d] = 0
		}
	}
	return StoreResult{Grew: grew, Extents: append([]int(nil), s.extents...), Count: n}, nil
}

// At returns the element at (age, idx...). The second result is false if the
// position has not been written (or is out of the current extent).
func (f *Field) At(age int, idx ...int) (Value, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	s := f.ages[age]
	if s == nil {
		return Value{}, false
	}
	off := s.flatten(idx)
	if off < 0 || !s.written[off] {
		return Value{}, false
	}
	return s.data[off], true
}

// Snapshot copies the entire generation at the given age into a local Array.
// Unwritten positions are zero values. Snapshotting a non-existent age yields
// an empty array with zero extents.
func (f *Field) Snapshot(age int) *Array {
	f.mu.RLock()
	defer f.mu.RUnlock()
	s := f.ages[age]
	if s == nil {
		return NewArray(f.kind, make([]int, f.rank)...)
	}
	a := NewArray(f.kind, s.extents...)
	copy(a.data, s.data)
	return a
}

// Extents returns the current extents at the given age (zeros if the age has
// never been stored to).
func (f *Field) Extents(age int) []int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	s := f.ages[age]
	if s == nil {
		return make([]int, f.rank)
	}
	return append([]int(nil), s.extents...)
}

// Writes returns the number of elements written at the given age.
func (f *Field) Writes(age int) int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	s := f.ages[age]
	if s == nil {
		return 0
	}
	return s.writes
}

// MarkComplete records that all producers for the given age have finished.
// Subsequent stores to that age fail. It is idempotent.
func (f *Field) MarkComplete(age int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.age(age, true).complete = true
}

// Complete reports whether the age has been marked complete.
func (f *Field) Complete(age int) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	s := f.ages[age]
	return s != nil && s.complete
}

// DropAge garbage collects a single generation, releasing its storage. It
// reports whether the age was live.
func (f *Field) DropAge(age int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.ages[age]; !ok {
		return false
	}
	delete(f.ages, age)
	return true
}

// DropAgesBelow garbage collects every generation with age < min, releasing
// its storage. It returns the number of generations dropped. Dropped ages can
// no longer be stored to or fetched from; the runtime only drops ages whose
// consumers have all finished.
func (f *Field) DropAgesBelow(min int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for a := range f.ages {
		if a < min {
			delete(f.ages, a)
			n++
		}
	}
	if min > f.minAge {
		f.minAge = min
	}
	return n
}

// Ages returns the set of live (non-collected) ages, unordered.
func (f *Field) Ages() []int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]int, 0, len(f.ages))
	for a := range f.ages {
		out = append(out, a)
	}
	return out
}

// MemoryElems returns the total number of element slots currently allocated
// across all live ages; used by the garbage-collection tests and the
// instrumentation report.
func (f *Field) MemoryElems() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	n := 0
	for _, s := range f.ages {
		n += len(s.data)
	}
	return n
}

// SlabDim selects one dimension of a Slab read: either a fixed coordinate or
// (the zero value) the whole dimension.
type SlabDim struct {
	Fixed bool
	Index int
}

// Slab copies a sub-slab of the generation at the given age: fixed
// dimensions are dropped, free dimensions become the dimensions of the
// resulting array (in field order). Out-of-range fixed coordinates yield an
// empty array.
func (f *Field) Slab(age int, sel []SlabDim) *Array {
	if len(sel) != f.rank {
		panic(fmt.Sprintf("field %s: slab rank mismatch: %d selectors for rank-%d field", f.name, len(sel), f.rank))
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	var freeExt []int
	s := f.ages[age]
	for d, sd := range sel {
		if sd.Fixed {
			if s == nil || sd.Index < 0 || sd.Index >= s.extents[d] {
				s = nil // out of range: deliver an empty slab
			}
			continue
		}
		if s == nil {
			freeExt = append(freeExt, 0)
		} else {
			freeExt = append(freeExt, s.extents[d])
		}
	}
	if len(freeExt) == 0 {
		freeExt = []int{0}
	}
	out := NewArray(f.kind, freeExt...)
	if s == nil || out.Len() == 0 {
		return out
	}
	idx := make([]int, f.rank)
	for d, sd := range sel {
		if sd.Fixed {
			idx[d] = sd.Index
		}
	}
	flat := 0
	var walk func(d int)
	walk = func(d int) {
		if d == f.rank {
			out.SetFlat(s.data[s.flatten(idx)], flat)
			flat++
			return
		}
		if sel[d].Fixed {
			walk(d + 1)
			return
		}
		for i := 0; i < s.extents[d]; i++ {
			idx[d] = i
			walk(d + 1)
		}
	}
	walk(0)
	return out
}
