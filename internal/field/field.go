package field

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrWriteTwice is wrapped by errors returned when write-once semantics are
// violated (a second store to the same field position within one age).
var ErrWriteTwice = fmt.Errorf("write-once violation")

// Field is a global, aged, rank-N, write-once array — the central P2G data
// abstraction. Each age holds an independent generation of the field's data;
// a position may be stored once per age. Extents start at zero in every
// dimension (unless declared) and grow implicitly as stores land past the
// current extent. An age becomes "complete" when the runtime's dependency
// analyzer determines that every producer kernel instance for that age has
// finished; completeness gates whole-field fetches.
//
// Generation storage is a kind-specialized flat slab (see slab.go): typed Go
// slices for numeric/bool kinds, []Value only for String/Any. Dropped
// generations return their slabs to per-class pools so steady-state aged
// pipelines stop allocating generation storage.
type Field struct {
	name string
	kind Kind
	rank int
	aged bool

	mu     sync.RWMutex
	ages   map[int]*ageStore
	minAge int // ages below this have been garbage collected

	// merge relaxes write-once enforcement for failover replay: a store to
	// an already-written position, or to a completed age, is silently
	// skipped instead of erroring. Replayed generations and re-executed
	// deterministic kernels then merge into identical state. See
	// SetMergeStores.
	merge bool
}

// ageStore holds one generation of field data.
type ageStore struct {
	extents  []int
	data     slab
	written  []bool
	writes   int
	complete bool

	// View lifetime: views counts live read-only views aliasing data (see
	// FetchViewAll/FetchViewSlice); detached marks a generation dropped from
	// its field while views were still in flight. Recycling into the age
	// pools happens exactly once, by whichever of "last view released" and
	// "generation dropped" runs second — the CompareAndSwap on detached is
	// the claim.
	views    atomic.Int32
	detached atomic.Bool
}

// agePools recycles dropped generations per storage class. Pooled stores are
// fully reset on checkout; slab growth re-zeroes recycled capacity (see
// slab.resize), so a recycled generation is indistinguishable from a fresh
// one.
var agePools [numSlabClasses]sync.Pool

func newAgeStore(kind Kind, rank int) *ageStore {
	cls := classOf(kind)
	if v := agePools[cls].Get(); v != nil {
		s := v.(*ageStore)
		s.reset(rank)
		return s
	}
	return &ageStore{extents: make([]int, rank), data: slab{class: cls}}
}

// reset prepares a pooled store for reuse as an empty generation.
func (s *ageStore) reset(rank int) {
	if cap(s.extents) >= rank {
		s.extents = s.extents[:rank]
		clear(s.extents)
	} else {
		s.extents = make([]int, rank)
	}
	s.data.reslice(0)
	s.written = s.written[:0]
	s.writes = 0
	s.complete = false
	// Defensive: a correctly recycled store reaches the pool with no views
	// and detached already consumed.
	s.views.Store(0)
	s.detached.Store(false)
}

// DrainAgePoolsForTest empties the package-level generation pools so a test
// starts from a deterministic pool state. The pools are shared by every Field
// in the process, so pool-reuse regression tests in dependent packages (e.g.
// dist's worker-release test) need this; it has no other use.
func DrainAgePoolsForTest() {
	for i := range agePools {
		for agePools[i].Get() != nil {
		}
	}
}

// recycle returns a dropped generation to its class pool. Any slabs are
// cleared eagerly so dropped payload references are released now, not at next
// reuse; String slabs truncate their arena for the same reason.
func recycleAge(s *ageStore) {
	if s.data.class == classVal || s.data.class == classStr {
		s.data.clearFull()
	}
	agePools[s.data.class].Put(s)
}

// detach removes a generation from circulation on the drop path: recycle
// immediately when no views alias its slab, otherwise leave the recycle to
// the last ViewToken.Release. New views cannot appear — the caller holds the
// field lock and has already unlinked the store from f.ages.
func (s *ageStore) detach() {
	if s.views.Load() == 0 {
		recycleAge(s)
		return
	}
	s.detached.Store(true)
	// A release may have dropped views to zero between the load above and
	// the detached store, in which case its CompareAndSwap saw false and did
	// not recycle; re-check and claim.
	if s.views.Load() == 0 && s.detached.CompareAndSwap(true, false) {
		recycleAge(s)
	}
}

// ViewToken pins one generation's slab against recycling while a read-only
// view (FetchViewAll/FetchViewSlice) aliases it. The zero token is a valid
// no-op. Release must be called exactly once per acquired token.
type ViewToken struct{ s *ageStore }

// Release drops the view's pin. If the generation was dropped from its field
// while this view was in flight, the last release recycles the slab.
func (t ViewToken) Release() {
	s := t.s
	if s == nil {
		return
	}
	if s.views.Add(-1) == 0 && s.detached.CompareAndSwap(true, false) {
		recycleAge(s)
	}
}

// New creates a field. Rank must be at least 1. Non-aged fields behave as a
// single age-0 generation; storing to any other age is an error.
func New(name string, kind Kind, rank int, aged bool) *Field {
	if rank < 1 {
		panic(fmt.Sprintf("field %s: rank must be >= 1, got %d", name, rank))
	}
	return &Field{name: name, kind: kind, rank: rank, aged: aged, ages: make(map[int]*ageStore)}
}

// Name returns the field's declared name.
func (f *Field) Name() string { return f.name }

// Kind returns the element kind.
func (f *Field) Kind() Kind { return f.kind }

// Rank returns the number of dimensions.
func (f *Field) Rank() int { return f.rank }

// Aged reports whether the field was declared with the `age` attribute.
func (f *Field) Aged() bool { return f.aged }

// SetMergeStores toggles merge-tolerant stores. With merge on, a store that
// would violate write-once (position already written, or the age already
// marked complete) becomes a silent no-op instead of an error: replaying a
// generation or re-executing a deterministic kernel after a node failure is
// then idempotent at the storage layer. The cost is that genuine write-twice
// program errors are masked while the mode is on, so the runtime only enables
// it when failover is requested.
func (f *Field) SetMergeStores(on bool) {
	f.mu.Lock()
	f.merge = on
	f.mu.Unlock()
}

func (f *Field) age(a int, create bool) *ageStore {
	if !f.aged && a != 0 {
		panic(fmt.Sprintf("field %s: access to age %d of non-aged field", f.name, a))
	}
	s := f.ages[a]
	if s == nil && create {
		if a < f.minAge {
			panic(fmt.Sprintf("field %s: store to garbage-collected age %d", f.name, a))
		}
		s = newAgeStore(f.kind, f.rank)
		f.ages[a] = s
	}
	return s
}

// StoreResult describes the effect of a store for the dependency analyzer.
type StoreResult struct {
	// Grew is true if the store enlarged the field's extent at this age.
	Grew bool
	// Extents is the extent after the store (a copy). It is only populated
	// when Grew is true; stores within the current extent — the steady-state
	// hot path — return a nil Extents so every store does not allocate.
	Extents []int
	// Count is the number of elements written by this store.
	Count int
}

func (s *ageStore) grow(extents []int) {
	same := true
	onlyOuter := true
	for d, e := range extents {
		if e < s.extents[d] {
			extents[d] = s.extents[d]
		} else if e > s.extents[d] {
			same = false
			if d > 0 {
				onlyOuter = false
			}
		}
	}
	if same {
		return
	}
	n := 1
	for _, e := range extents {
		n *= e
	}
	// Fast path: growth confined to the outermost dimension preserves every
	// element's flat offset, and an empty generation has nothing to remap —
	// extend in place with amortized doubling (reusing pooled capacity).
	// Element-by-element and row-by-row stores — the dominant patterns for
	// per-macroblock kernels — cost O(n) total instead of O(n²) remapping.
	if onlyOuter || s.data.len() == 0 {
		s.data.resize(n, 2*s.data.capacity())
		s.written = growBools(s.written, n)
		copy(s.extents, extents)
		return
	}
	nd := newSlab0(s.data.class, n)
	nw := make([]bool, n)
	if s.data.len() > 0 {
		remapSlab(&nd, extents, &s.data, s.extents)
		idx := make([]int, len(s.extents))
		for off := range s.written {
			noff := 0
			for d := range idx {
				noff = noff*extents[d] + idx[d]
			}
			nw[noff] = s.written[off]
			for d := len(idx) - 1; d >= 0; d-- {
				idx[d]++
				if idx[d] < s.extents[d] {
					break
				}
				idx[d] = 0
			}
		}
	}
	copy(s.extents, extents)
	s.data = nd
	s.written = nw
}

// newSlab0 builds a zeroed slab of the given class directly.
func newSlab0(cls slabClass, n int) slab {
	s := slab{class: cls}
	s.alloc(n, n)
	return s
}

// growBools extends a bool slice to length n with amortized doubling,
// zeroing recycled capacity.
func growBools(b []bool, n int) []bool {
	if n <= cap(b) {
		old := len(b)
		b = b[:n]
		clear(b[old:n])
		return b
	}
	c := 2 * cap(b)
	if c < n {
		c = n
	}
	nb := make([]bool, n, c)
	copy(nb, b)
	return nb
}

func (s *ageStore) flatten(idx []int) int {
	off := 0
	for d, i := range idx {
		if i < 0 || i >= s.extents[d] {
			return -1
		}
		off = off*s.extents[d] + i
	}
	return off
}

// growResult fills the StoreResult extents copy for a store that grew the
// generation. Only growing stores allocate.
func (s *ageStore) growResult(count int) (StoreResult, error) {
	return StoreResult{Grew: true, Extents: append([]int(nil), s.extents...), Count: count}, nil
}

// Store writes a single element at (age, idx...), growing the extent if the
// index lies past it. It returns ErrWriteTwice (wrapped) if the position was
// already written at this age.
func (f *Field) Store(age int, v Value, idx ...int) (StoreResult, error) {
	if len(idx) != f.rank {
		return StoreResult{}, fmt.Errorf("field %s: store rank mismatch: %d coordinates for rank-%d field", f.name, len(idx), f.rank)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.age(age, true)
	if s.complete {
		if f.merge {
			return StoreResult{}, nil
		}
		return StoreResult{}, fmt.Errorf("field %s(%d): store after age marked complete", f.name, age)
	}
	grew := false
	for d, i := range idx {
		if i < 0 {
			return StoreResult{}, fmt.Errorf("field %s: negative index %d", f.name, i)
		}
		if i >= s.extents[d] {
			grew = true
		}
	}
	if grew {
		ext := make([]int, f.rank)
		for d := range ext {
			ext[d] = s.extents[d]
			if idx[d] >= ext[d] {
				ext[d] = idx[d] + 1
			}
		}
		s.grow(ext)
	}
	off := s.flatten(idx)
	if s.written[off] {
		if f.merge {
			if grew {
				return s.growResult(0)
			}
			return StoreResult{}, nil
		}
		return StoreResult{}, fmt.Errorf("field %s(%d)%v: %w", f.name, age, idx, ErrWriteTwice)
	}
	s.data.set(f.kind, off, v)
	s.written[off] = true
	s.writes++
	if grew {
		return s.growResult(1)
	}
	return StoreResult{Count: 1}, nil
}

// StoreAll writes an entire generation from a local array: extents are set to
// the array's extents (growing as needed) and every element is written. It
// fails if any covered position was already written.
func (f *Field) StoreAll(age int, a *Array) (StoreResult, error) {
	if a.Rank() != f.rank {
		return StoreResult{}, fmt.Errorf("field %s: whole-field store rank mismatch: rank-%d array into rank-%d field", f.name, a.Rank(), f.rank)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.age(age, true)
	if s.complete {
		if f.merge {
			return StoreResult{}, nil
		}
		return StoreResult{}, fmt.Errorf("field %s(%d): store after age marked complete", f.name, age)
	}
	grew := false
	for d := 0; d < f.rank; d++ {
		if a.Extent(d) > s.extents[d] {
			grew = true
		}
	}
	if grew {
		ext := make([]int, f.rank)
		for d := range ext {
			ext[d] = s.extents[d]
			if a.Extent(d) > ext[d] {
				ext[d] = a.Extent(d)
			}
		}
		s.grow(ext)
	}
	n := a.Len()
	// Bulk path: the array covers the whole (previously empty) generation
	// with a raw-copy-compatible representation — one typed copy.
	if s.writes == 0 && rawCopyCompatible(f.kind, a.kind) && extentsEqual(s.extents, a.extents) {
		s.data.copyRange(0, &a.data, 0, n)
		for i := range s.written {
			s.written[i] = true
		}
		s.writes = n
		if grew {
			return s.growResult(n)
		}
		return StoreResult{Count: n}, nil
	}
	// General path: walk the array in row-major order and map into the
	// (possibly larger) field extents.
	idx := make([]int, f.rank)
	count := 0
	for flat := 0; flat < n; flat++ {
		off := s.flatten(idx)
		if s.written[off] {
			if !f.merge {
				return StoreResult{}, fmt.Errorf("field %s(%d)%v: %w", f.name, age, idx, ErrWriteTwice)
			}
		} else {
			s.data.set(f.kind, off, a.data.get(a.kind, flat))
			s.written[off] = true
			s.writes++
			count++
		}
		for d := f.rank - 1; d >= 0; d-- {
			idx[d]++
			if idx[d] < a.Extent(d) {
				break
			}
			idx[d] = 0
		}
	}
	if grew {
		return s.growResult(count)
	}
	return StoreResult{Count: count}, nil
}

func extentsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for d := range a {
		if a[d] != b[d] {
			return false
		}
	}
	return true
}

// StoreSlice writes a sub-slab of the generation at (age, sel) from a local
// array: fixed selector dimensions pin a coordinate, free dimensions are
// covered by the array's extents in field order. The generation grows as
// needed; every covered position obeys write-once. When the fixed dimensions
// form a prefix and the trailing field extents match the array's (the
// store-one-row case), the data moves with a single typed copy.
func (f *Field) StoreSlice(age int, sel []SlabDim, a *Array) (StoreResult, error) {
	if len(sel) != f.rank {
		return StoreResult{}, fmt.Errorf("field %s: slice store rank mismatch: %d selectors for rank-%d field", f.name, len(sel), f.rank)
	}
	free := 0
	fixedPrefix := true
	for _, sd := range sel {
		if sd.Fixed {
			if sd.Index < 0 {
				return StoreResult{}, fmt.Errorf("field %s: negative index %d", f.name, sd.Index)
			}
			if free > 0 {
				fixedPrefix = false
			}
		} else {
			free++
		}
	}
	if free == 0 {
		return StoreResult{}, fmt.Errorf("field %s: slice store with no free dimensions (use Store)", f.name)
	}
	if a.Rank() != free {
		return StoreResult{}, fmt.Errorf("field %s: slice store rank mismatch: rank-%d array for %d free dimensions", f.name, a.Rank(), free)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.age(age, true)
	if s.complete {
		if f.merge {
			return StoreResult{}, nil
		}
		return StoreResult{}, fmt.Errorf("field %s(%d): store after age marked complete", f.name, age)
	}
	// Required extent per dimension: fixed index + 1, or the array's extent
	// for the matching free dimension.
	grew := false
	j := 0
	for d, sd := range sel {
		want := 0
		if sd.Fixed {
			want = sd.Index + 1
		} else {
			want = a.Extent(j)
			j++
		}
		if want > s.extents[d] {
			grew = true
		}
	}
	if grew {
		ext := make([]int, f.rank)
		j = 0
		for d, sd := range sel {
			ext[d] = s.extents[d]
			want := 0
			if sd.Fixed {
				want = sd.Index + 1
			} else {
				want = a.Extent(j)
				j++
			}
			if want > ext[d] {
				ext[d] = want
			}
		}
		s.grow(ext)
	}
	n := a.Len()
	if n == 0 {
		if grew {
			return s.growResult(0)
		}
		return StoreResult{}, nil
	}
	// Contiguous fast path: fixed dims form a prefix and every free field
	// dimension after the first matches the array's extent, so the covered
	// region is one flat run.
	contig := fixedPrefix && rawCopyCompatible(f.kind, a.kind)
	if contig {
		j = 0
		for d, sd := range sel {
			if sd.Fixed {
				continue
			}
			if j > 0 && s.extents[d] != a.Extent(j) {
				contig = false
				break
			}
			j++
		}
	}
	if contig {
		base := 0
		j = 0
		for d, sd := range sel {
			i := 0
			if sd.Fixed {
				i = sd.Index
			}
			base = base*s.extents[d] + i
		}
		overlap := false
		for i := base; i < base+n; i++ {
			if s.written[i] {
				if !f.merge {
					return StoreResult{}, fmt.Errorf("field %s(%d) slice at %d: %w", f.name, age, i, ErrWriteTwice)
				}
				// Merge mode: an overlapping run needs the element-wise
				// walk below; undo nothing (no positions marked yet).
				overlap = true
				break
			}
		}
		if !overlap {
			for i := base; i < base+n; i++ {
				s.written[i] = true
			}
			s.data.copyRange(base, &a.data, 0, n)
			s.writes += n
			if grew {
				return s.growResult(n)
			}
			return StoreResult{Count: n}, nil
		}
	}
	// General path: walk the array in row-major order, pinning fixed dims.
	idx := make([]int, f.rank)
	for d, sd := range sel {
		if sd.Fixed {
			idx[d] = sd.Index
		}
	}
	freeDims := make([]int, 0, free)
	for d, sd := range sel {
		if !sd.Fixed {
			freeDims = append(freeDims, d)
		}
	}
	count := 0
	for flat := 0; flat < n; flat++ {
		off := s.flatten(idx)
		if s.written[off] {
			if !f.merge {
				return StoreResult{}, fmt.Errorf("field %s(%d)%v: %w", f.name, age, idx, ErrWriteTwice)
			}
		} else {
			s.data.set(f.kind, off, a.data.get(a.kind, flat))
			s.written[off] = true
			s.writes++
			count++
		}
		for k := free - 1; k >= 0; k-- {
			d := freeDims[k]
			idx[d]++
			if idx[d] < a.Extent(k) {
				break
			}
			idx[d] = 0
		}
	}
	if grew {
		return s.growResult(count)
	}
	return StoreResult{Count: count}, nil
}

// At returns the element at (age, idx...). The second result is false if the
// position has not been written (or is out of the current extent).
func (f *Field) At(age int, idx ...int) (Value, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	s := f.ages[age]
	if s == nil {
		return Value{}, false
	}
	off := s.flatten(idx)
	if off < 0 || !s.written[off] {
		return Value{}, false
	}
	return s.data.get(f.kind, off), true
}

// Snapshot copies the entire generation at the given age into a fresh local
// Array. Unwritten positions are zero values. Snapshotting a non-existent age
// yields an empty array with zero extents.
func (f *Field) Snapshot(age int) *Array {
	a := &Array{}
	f.SnapshotInto(age, a)
	return a
}

// SnapshotInto copies the entire generation at the given age into dst,
// reusing dst's backing storage when capacity allows — the allocation-free
// whole-field fetch path for reused per-instance destination arrays.
func (f *Field) SnapshotInto(age int, dst *Array) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	s := f.ages[age]
	if s == nil {
		dst.resetZero(f.kind, f.rank)
		return
	}
	dst.resetShape(f.kind, s.extents)
	dst.data.copyRange(0, &s.data, 0, s.data.len())
}

// FetchViewAll points dst at the whole generation's slab without copying —
// the zero-copy counterpart of SnapshotInto. It is only legal once the
// generation is complete (write-once + completeness makes the slab immutable);
// it returns false, leaving dst untouched, when the age is absent or not yet
// complete, and callers then fall back to the copying path. On success the
// returned token pins the slab: DropAge/DropAgesBelow/Release defer recycling
// until the token's Release. dst must be treated as read-only while the view
// is live; boxed mutations copy-on-write, but the typed accessors
// (Uint8s/Int32s/...) expose the field's own storage.
func (f *Field) FetchViewAll(age int, dst *Array) (ViewToken, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	s := f.ages[age]
	if s == nil || !s.complete {
		return ViewToken{}, false
	}
	dst.aliasSlab(f.kind, s.extents, &s.data, 0, s.data.len())
	s.views.Add(1)
	return ViewToken{s: s}, true
}

// FetchViewSlice points dst at a contiguous sub-slab of the generation
// without copying — the zero-copy counterpart of FetchSlice. Only selectors
// whose fixed dimensions form a prefix describe one contiguous run, and only
// complete generations are immutable, so it returns false (dst untouched) for
// non-prefix selectors, out-of-range fixed coordinates, absent ages, and
// incomplete generations; callers fall back to the copying FetchSlice. The
// returned token pins the slab exactly as in FetchViewAll.
func (f *Field) FetchViewSlice(age int, sel []SlabDim, dst *Array) (ViewToken, bool) {
	if len(sel) != f.rank {
		panic(fmt.Sprintf("field %s: slab rank mismatch: %d selectors for rank-%d field", f.name, len(sel), f.rank))
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	s := f.ages[age]
	if s == nil || !s.complete {
		return ViewToken{}, false
	}
	var freeExtBuf [4]int
	freeExt := freeExtBuf[:0]
	base, n := 0, 1
	seenFree := false
	for d, sd := range sel {
		if sd.Fixed {
			if seenFree {
				return ViewToken{}, false // fixed dims must form a prefix
			}
			if sd.Index < 0 || sd.Index >= s.extents[d] {
				return ViewToken{}, false // out of range: copying path delivers empty
			}
			base = base*s.extents[d] + sd.Index
			continue
		}
		seenFree = true
		base = base * s.extents[d]
		freeExt = append(freeExt, s.extents[d])
		n *= s.extents[d]
	}
	if !seenFree {
		return ViewToken{}, false // no free dimensions: not a slab fetch
	}
	dst.aliasSlab(f.kind, freeExt, &s.data, base, n)
	s.views.Add(1)
	return ViewToken{s: s}, true
}

// Extents returns the current extents at the given age (zeros if the age has
// never been stored to).
func (f *Field) Extents(age int) []int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	s := f.ages[age]
	if s == nil {
		return make([]int, f.rank)
	}
	return append([]int(nil), s.extents...)
}

// Extent returns the current extent of dimension d at the given age without
// allocating (0 if the age has never been stored to).
func (f *Field) Extent(age, d int) int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	s := f.ages[age]
	if s == nil || d < 0 || d >= len(s.extents) {
		return 0
	}
	return s.extents[d]
}

// Writes returns the number of elements written at the given age.
func (f *Field) Writes(age int) int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	s := f.ages[age]
	if s == nil {
		return 0
	}
	return s.writes
}

// MarkComplete records that all producers for the given age have finished.
// Subsequent stores to that age fail. It is idempotent.
func (f *Field) MarkComplete(age int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.age(age, true).complete = true
}

// Complete reports whether the age has been marked complete.
func (f *Field) Complete(age int) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	s := f.ages[age]
	return s != nil && s.complete
}

// DropAge garbage collects a single generation, returning its storage to the
// slab pool (deferred to the last view release if views are in flight). It
// reports whether the age was live.
func (f *Field) DropAge(age int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.ages[age]
	if !ok {
		return false
	}
	delete(f.ages, age)
	s.detach()
	return true
}

// DropAgesBelow garbage collects every generation with age < min, returning
// storage to the slab pool. It returns the number of generations dropped.
// Dropped ages can no longer be stored to or fetched from; the runtime only
// drops ages whose consumers have all finished.
func (f *Field) DropAgesBelow(min int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for a, s := range f.ages {
		if a < min {
			delete(f.ages, a)
			s.detach()
			n++
		}
	}
	if min > f.minAge {
		f.minAge = min
	}
	return n
}

// Release drops every live generation into the slab pools, leaving the field
// empty but reusable. A run's mid-stream garbage collection only recycles
// ages whose consumers finished; the youngest generations are still live when
// the run ends and would otherwise be discarded to the GC. Releasing them
// lets the next run grow inside recycled capacity instead of reallocating.
// Snapshots taken earlier are unaffected — they are copies.
func (f *Field) Release() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for a, s := range f.ages {
		delete(f.ages, a)
		s.detach()
	}
}

// Ages returns the set of live (non-collected) ages, unordered.
func (f *Field) Ages() []int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]int, 0, len(f.ages))
	for a := range f.ages {
		out = append(out, a)
	}
	return out
}

// MemoryElems returns the total number of element slots currently allocated
// across all live ages; used by the garbage-collection tests and the
// instrumentation report.
func (f *Field) MemoryElems() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	n := 0
	for _, s := range f.ages {
		n += s.data.len()
	}
	return n
}

// SlabDim selects one dimension of a Slab read: either a fixed coordinate or
// (the zero value) the whole dimension.
type SlabDim struct {
	Fixed bool
	Index int
}

// Slab copies a sub-slab of the generation at the given age into a fresh
// array: fixed dimensions are dropped, free dimensions become the dimensions
// of the resulting array (in field order). Out-of-range fixed coordinates
// yield an empty array.
func (f *Field) Slab(age int, sel []SlabDim) *Array {
	a := &Array{}
	f.FetchSlice(age, sel, a)
	return a
}

// FetchSlice copies a sub-slab of the generation at the given age into dst,
// reusing dst's backing storage when capacity allows. Fixed dimensions are
// dropped; free dimensions become dst's dimensions in field order.
// Out-of-range fixed coordinates yield an empty array. When the fixed
// dimensions form a prefix (the fetch-one-row case) the data moves with a
// single typed copy.
func (f *Field) FetchSlice(age int, sel []SlabDim, dst *Array) {
	if len(sel) != f.rank {
		panic(fmt.Sprintf("field %s: slab rank mismatch: %d selectors for rank-%d field", f.name, len(sel), f.rank))
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	var freeExtBuf [4]int
	freeExt := freeExtBuf[:0]
	s := f.ages[age]
	if s != nil {
		for d, sd := range sel {
			if sd.Fixed && (sd.Index < 0 || sd.Index >= s.extents[d]) {
				s = nil // out of range: deliver an empty slab
				break
			}
		}
	}
	fixedPrefix := true
	for d, sd := range sel {
		if sd.Fixed {
			if len(freeExt) > 0 {
				fixedPrefix = false
			}
			continue
		}
		if s == nil {
			freeExt = append(freeExt, 0)
		} else {
			freeExt = append(freeExt, s.extents[d])
		}
	}
	if len(freeExt) == 0 {
		freeExt = append(freeExt, 0)
	}
	dst.resetShape(f.kind, freeExt)
	n := dst.Len()
	if s == nil || n == 0 {
		return
	}
	if fixedPrefix {
		// The selected region is a contiguous suffix block.
		base := 0
		for d, sd := range sel {
			i := 0
			if sd.Fixed {
				i = sd.Index
			}
			base = base*s.extents[d] + i
		}
		dst.data.copyRange(0, &s.data, base, n)
		return
	}
	// General path: walk free dims before the last fixed dim elementwise and
	// copy the contiguous run spanned by the trailing free dims.
	lastFixed := -1
	for d, sd := range sel {
		if sd.Fixed {
			lastFixed = d
		}
	}
	runLen := 1
	for d := lastFixed + 1; d < f.rank; d++ {
		runLen *= s.extents[d]
	}
	idx := make([]int, f.rank)
	for d, sd := range sel {
		if sd.Fixed {
			idx[d] = sd.Index
		}
	}
	flat := 0
	var walk func(d int)
	walk = func(d int) {
		if d > lastFixed {
			dst.data.copyRange(flat, &s.data, s.flatten(idx), runLen)
			flat += runLen
			return
		}
		if sel[d].Fixed {
			walk(d + 1)
			return
		}
		for i := 0; i < s.extents[d]; i++ {
			idx[d] = i
			walk(d + 1)
		}
	}
	if runLen > 0 {
		walk(0)
	}
}
