package field

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestFieldBasics(t *testing.T) {
	f := New("m_data", Int32, 1, true)
	if f.Name() != "m_data" || f.Kind() != Int32 || f.Rank() != 1 || !f.Aged() {
		t.Fatal("metadata accessors")
	}
	if _, ok := f.At(0, 0); ok {
		t.Error("unwritten element should not be readable")
	}
	res, err := f.Store(0, Int32Val(42), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Grew || res.Extents[0] != 4 || res.Count != 1 {
		t.Errorf("store result %+v", res)
	}
	v, ok := f.At(0, 3)
	if !ok || v.Int32() != 42 {
		t.Error("read back stored element")
	}
	if _, ok := f.At(0, 2); ok {
		t.Error("gap element should not read as written")
	}
	if f.Writes(0) != 1 {
		t.Error("write count")
	}
}

func TestFieldWriteOnce(t *testing.T) {
	f := New("x", Int32, 1, true)
	if _, err := f.Store(0, Int32Val(1), 0); err != nil {
		t.Fatal(err)
	}
	_, err := f.Store(0, Int32Val(2), 0)
	if !errors.Is(err, ErrWriteTwice) {
		t.Fatalf("second store should violate write-once, got %v", err)
	}
	// Same index, higher age is allowed (aging).
	if _, err := f.Store(1, Int32Val(2), 0); err != nil {
		t.Fatalf("aged store should succeed: %v", err)
	}
	v, _ := f.At(0, 0)
	if v.Int32() != 1 {
		t.Error("failed store must not overwrite")
	}
}

func TestFieldStoreAll(t *testing.T) {
	f := New("vals", Int32, 1, true)
	a := ArrayFromInt32([]int32{10, 11, 12, 13, 14})
	res, err := f.StoreAll(0, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 5 || res.Extents[0] != 5 || !res.Grew {
		t.Errorf("store-all result %+v", res)
	}
	snap := f.Snapshot(0)
	if !snap.Equal(a) {
		t.Errorf("snapshot %v != stored %v", snap, a)
	}
	// Overlapping whole-field store violates write-once.
	if _, err := f.StoreAll(0, ArrayFromInt32([]int32{1})); !errors.Is(err, ErrWriteTwice) {
		t.Errorf("overlapping StoreAll: %v", err)
	}
	// Element store into covered region also fails.
	if _, err := f.Store(0, Int32Val(9), 2); !errors.Is(err, ErrWriteTwice) {
		t.Errorf("element store into covered region: %v", err)
	}
	// Element store past the covered region succeeds.
	if _, err := f.Store(0, Int32Val(9), 7); err != nil {
		t.Errorf("element store past region: %v", err)
	}
}

func TestFieldStoreAllRankMismatch(t *testing.T) {
	f := New("m", Int32, 2, true)
	if _, err := f.StoreAll(0, ArrayFromInt32([]int32{1})); err == nil {
		t.Error("rank mismatch should fail")
	}
	if _, err := f.Store(0, Int32Val(1), 0); err == nil {
		t.Error("element store rank mismatch should fail")
	}
	if _, err := f.Store(0, Int32Val(1), 0, -1); err == nil {
		t.Error("negative index should fail")
	}
}

func TestFieldGrowthRemaps2D(t *testing.T) {
	f := New("m", Int32, 2, true)
	if _, err := f.Store(0, Int32Val(1), 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Store(0, Int32Val(2), 2, 3); err != nil {
		t.Fatal(err)
	}
	v, ok := f.At(0, 0, 0)
	if !ok || v.Int32() != 1 {
		t.Error("growth lost earlier element")
	}
	v, ok = f.At(0, 2, 3)
	if !ok || v.Int32() != 2 {
		t.Error("growth lost later element")
	}
	ext := f.Extents(0)
	if ext[0] != 3 || ext[1] != 4 {
		t.Errorf("extents %v", ext)
	}
}

func TestFieldAges(t *testing.T) {
	f := New("m", Int32, 1, true)
	for a := 0; a < 4; a++ {
		if _, err := f.Store(a, Int32Val(int32(a*10)), 0); err != nil {
			t.Fatal(err)
		}
	}
	ages := f.Ages()
	if len(ages) != 4 {
		t.Fatalf("ages %v", ages)
	}
	for a := 0; a < 4; a++ {
		v, ok := f.At(a, 0)
		if !ok || v.Int32() != int32(a*10) {
			t.Errorf("age %d value", a)
		}
	}
}

func TestFieldNonAged(t *testing.T) {
	f := New("m", Int32, 1, false)
	if _, err := f.Store(0, Int32Val(1), 0); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("storing to age 1 of non-aged field should panic")
		}
	}()
	_, _ = f.Store(1, Int32Val(1), 0)
}

func TestFieldCompleteGating(t *testing.T) {
	f := New("m", Int32, 1, true)
	if f.Complete(0) {
		t.Error("fresh age should not be complete")
	}
	f.MarkComplete(0)
	if !f.Complete(0) {
		t.Error("MarkComplete")
	}
	if _, err := f.Store(0, Int32Val(1), 0); err == nil {
		t.Error("store after complete must fail")
	}
	f.MarkComplete(0) // idempotent
	if !f.Complete(0) {
		t.Error("idempotent MarkComplete")
	}
	if f.Complete(5) {
		t.Error("other ages unaffected")
	}
}

func TestFieldGC(t *testing.T) {
	f := New("m", Int32, 1, true)
	for a := 0; a < 10; a++ {
		if _, err := f.Store(a, Int32Val(1), 0); err != nil {
			t.Fatal(err)
		}
	}
	before := f.MemoryElems()
	if before != 10 {
		t.Fatalf("memory elems before GC = %d", before)
	}
	if n := f.DropAgesBelow(7); n != 7 {
		t.Fatalf("dropped %d, want 7", n)
	}
	if f.MemoryElems() != 3 {
		t.Errorf("memory elems after GC = %d", f.MemoryElems())
	}
	if _, ok := f.At(3, 0); ok {
		t.Error("collected age must not be readable")
	}
	if _, ok := f.At(8, 0); !ok {
		t.Error("live age must stay readable")
	}
	defer func() {
		if recover() == nil {
			t.Error("store to collected age should panic")
		}
	}()
	_, _ = f.Store(2, Int32Val(1), 0)
}

func TestFieldSnapshotMissingAge(t *testing.T) {
	f := New("m", Int32, 2, true)
	s := f.Snapshot(5)
	if s.Rank() != 2 || s.Len() != 0 {
		t.Errorf("snapshot of missing age: rank %d len %d", s.Rank(), s.Len())
	}
	ext := f.Extents(5)
	if ext[0] != 0 || ext[1] != 0 {
		t.Errorf("extents of missing age %v", ext)
	}
	if f.Writes(5) != 0 {
		t.Error("writes of missing age")
	}
}

func TestFieldRankValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("rank 0 should panic")
		}
	}()
	New("bad", Int32, 0, false)
}

func TestFieldConcurrentStores(t *testing.T) {
	f := New("m", Int32, 1, true)
	const n = 1000
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := f.Store(0, Int32Val(int32(i)), i); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if f.Writes(0) != n {
		t.Fatalf("writes = %d", f.Writes(0))
	}
	for i := 0; i < n; i++ {
		v, ok := f.At(0, i)
		if !ok || v.Int32() != int32(i) {
			t.Fatalf("element %d lost during concurrent growth", i)
		}
	}
}

func TestFieldConcurrentWriteOnceRace(t *testing.T) {
	// Many goroutines race to write the same cell; exactly one must win.
	f := New("m", Int32, 1, true)
	const n = 64
	var wg sync.WaitGroup
	wins := make(chan int32, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := f.Store(0, Int32Val(int32(i)), 0); err == nil {
				wins <- int32(i)
			}
		}(i)
	}
	wg.Wait()
	close(wins)
	var winners []int32
	for w := range wins {
		winners = append(winners, w)
	}
	if len(winners) != 1 {
		t.Fatalf("expected exactly 1 winner, got %d", len(winners))
	}
	v, _ := f.At(0, 0)
	if v.Int32() != winners[0] {
		t.Error("stored value is not the winner's")
	}
}

// Property: storing a random permutation of indices element-by-element and
// then snapshotting equals storing the whole array at once.
func TestQuickElementVsWholeStore(t *testing.T) {
	f := func(vals []int32) bool {
		if len(vals) > 128 {
			vals = vals[:128]
		}
		whole := New("w", Int32, 1, true)
		if _, err := whole.StoreAll(0, ArrayFromInt32(vals)); err != nil {
			return false
		}
		elem := New("e", Int32, 1, true)
		// Store back-to-front to exercise growth remapping.
		for i := len(vals) - 1; i >= 0; i-- {
			if _, err := elem.Store(0, Int32Val(vals[i]), i); err != nil {
				return false
			}
		}
		return whole.Snapshot(0).Equal(elem.Snapshot(0))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: write-once holds for any sequence of (age, index) store attempts —
// a duplicate (age, index) pair always errors, a fresh pair always succeeds.
func TestQuickWriteOnce(t *testing.T) {
	type op struct{ Age, Idx uint8 }
	f := func(ops []op) bool {
		fld := New("m", Int32, 1, true)
		seen := map[[2]int]bool{}
		for _, o := range ops {
			a, i := int(o.Age%8), int(o.Idx%8)
			_, err := fld.Store(a, Int32Val(1), i)
			dup := seen[[2]int{a, i}]
			if dup && !errors.Is(err, ErrWriteTwice) {
				return false
			}
			if !dup && err != nil {
				return false
			}
			seen[[2]int{a, i}] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
