// Package field implements P2G's central data abstraction: multi-dimensional,
// typed, write-once fields with aging and implicit resizing.
//
// A Field is a global, rank-N array of elements. Every element position may be
// written exactly once per age; storing to the same position again requires a
// higher age (the paper's "aging" mechanism, which turns cyclic programs into
// an unrolled acyclic execution). Extents are not fixed up front: storing past
// the current extent grows the field (the paper's "implicit resizing").
//
// Fields are safe for concurrent use. The runtime guarantees that an element
// is only fetched after it has been stored, so readers never observe a
// half-written element; the locking here protects the field's metadata and
// backing storage across concurrent stores and resizes.
package field

import "fmt"

// Kind enumerates the element types a field or local array can hold.
type Kind uint8

// Element kinds. Any holds an arbitrary Go value and is used by native Go
// kernels that pass rich payloads (e.g. an 8x8 macroblock) through a field.
const (
	Invalid Kind = iota
	Int32
	Int64
	Float32
	Float64
	Uint8
	Bool
	String
	Any
)

var kindNames = [...]string{
	Invalid: "invalid",
	Int32:   "int32",
	Int64:   "int64",
	Float32: "float32",
	Float64: "float64",
	Uint8:   "uint8",
	Bool:    "bool",
	String:  "string",
	Any:     "any",
}

// String returns the kernel-language spelling of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindByName resolves a kernel-language type name ("int32", "float64", ...)
// to its Kind. It returns Invalid for unknown names.
func KindByName(name string) Kind {
	for k, n := range kindNames {
		if n == name && Kind(k) != Invalid {
			return Kind(k)
		}
	}
	return Invalid
}

// Numeric reports whether values of the kind support arithmetic.
func (k Kind) Numeric() bool {
	switch k {
	case Int32, Int64, Float32, Float64, Uint8:
		return true
	}
	return false
}

// Integer reports whether the kind is an integer type.
func (k Kind) Integer() bool {
	switch k {
	case Int32, Int64, Uint8:
		return true
	}
	return false
}

// Float reports whether the kind is a floating-point type.
func (k Kind) Float() bool {
	return k == Float32 || k == Float64
}
