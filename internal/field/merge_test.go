package field

import (
	"errors"
	"testing"
)

// TestMergeStoresSkipsDuplicates: with SetMergeStores on, a store into an
// already-written position is silently skipped (first write wins — the
// failover-replay idempotence contract) and a store into a completed age is a
// no-op, while fresh positions still land and are counted.
func TestMergeStoresSkipsDuplicates(t *testing.T) {
	f := New("m", Int32, 1, true)
	f.SetMergeStores(true)

	if _, err := f.Store(0, Int32Val(7), 2); err != nil {
		t.Fatal(err)
	}
	res, err := f.Store(0, Int32Val(9), 2)
	if err != nil || res.Count != 0 {
		t.Fatalf("duplicate element store: %+v, %v; want silent skip", res, err)
	}
	if v, ok := f.At(0, 2); !ok || v.Int64() != 7 {
		t.Fatalf("first write did not win: %v, %v", v, ok)
	}

	// StoreAll over a partially written generation writes only the fresh
	// positions and reports their count.
	res, err = f.StoreAll(0, ArrayFromInt32([]int32{1, 2, 3, 4}))
	if err != nil || res.Count != 3 {
		t.Fatalf("overlapping StoreAll: %+v, %v; want 3 fresh writes", res, err)
	}
	if v, _ := f.At(0, 2); v.Int64() != 7 {
		t.Fatalf("StoreAll overwrote a written position: %v", v)
	}
	if v, _ := f.At(0, 3); v.Int64() != 4 {
		t.Fatalf("StoreAll skipped a fresh position: %v", v)
	}

	// StoreSlice over the same region skips the overlap element-wise.
	res, err = f.StoreSlice(0, []SlabDim{{}}, ArrayFromInt32([]int32{9, 9, 9, 9}))
	if err != nil || res.Count != 0 {
		t.Fatalf("fully overlapping StoreSlice: %+v, %v; want zero writes", res, err)
	}
	if v, _ := f.At(0, 0); v.Int64() != 1 {
		t.Fatalf("StoreSlice overwrote a written position: %v", v)
	}

	// A completed age absorbs all store shapes silently.
	f.MarkComplete(0)
	if _, err := f.Store(0, Int32Val(1), 0); err != nil {
		t.Fatalf("element store into complete age: %v", err)
	}
	if _, err := f.StoreAll(0, ArrayFromInt32([]int32{8})); err != nil {
		t.Fatalf("whole store into complete age: %v", err)
	}
	if _, err := f.StoreSlice(0, []SlabDim{{}}, ArrayFromInt32([]int32{8})); err != nil {
		t.Fatalf("slice store into complete age: %v", err)
	}
	if f.Writes(0) != 4 {
		t.Fatalf("writes after complete-age stores = %d, want 4", f.Writes(0))
	}
}

// TestMergeStoresOffKeepsWriteOnce: the merge escape hatch must not weaken
// the default write-once contract — duplicates still fail with ErrWriteTwice,
// including through the StoreSlice contiguous fast path, and a failed
// overlapping slice store must not leave partial written marks behind.
func TestMergeStoresOffKeepsWriteOnce(t *testing.T) {
	f := New("w", Int32, 1, true)
	if _, err := f.Store(0, Int32Val(1), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Store(0, Int32Val(2), 1); !errors.Is(err, ErrWriteTwice) {
		t.Fatalf("duplicate store error = %v, want ErrWriteTwice", err)
	}
	// Contiguous slice overlapping position 1: must fail without marking
	// positions 0, 2, 3 written.
	if _, err := f.StoreSlice(0, []SlabDim{{}}, ArrayFromInt32([]int32{5, 6, 7, 8})); !errors.Is(err, ErrWriteTwice) {
		t.Fatalf("overlapping slice store error = %v, want ErrWriteTwice", err)
	}
	if f.Writes(0) != 1 {
		t.Fatalf("failed slice store left %d writes, want 1", f.Writes(0))
	}
	if _, err := f.StoreAll(0, ArrayFromInt32([]int32{5, 6})); !errors.Is(err, ErrWriteTwice) {
		t.Fatalf("overlapping StoreAll error = %v, want ErrWriteTwice", err)
	}
}
