//go:build !race

package field

const raceEnabled = false
