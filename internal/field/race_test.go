//go:build race

package field

// raceEnabled reports whether the race detector is active; the allocation
// budget tests skip pool-hit assertions under it because sync.Pool drops a
// fraction of Puts on purpose when racing.
const raceEnabled = true
