package field

// Slab storage: kind-specialized flat backing for Field generations and local
// Arrays. Instead of a []Value (a ~64-byte boxed struct per element), each
// storage class keeps a flat typed slice — []uint8, []int32, []int64,
// []float64 — with []Value retained only as the fallback for Any elements.
// String elements live in an offset+length byte arena (classStr) so string
// rows neither box nor allocate per element. Scalar Get/Put boundaries still
// speak boxed Values; bulk paths (whole-generation snapshots, slab fetches,
// slice stores, the wire format) move the typed representation directly with
// copy.

// slabClass partitions element kinds into storage classes.
type slabClass uint8

const (
	classVal slabClass = iota // Any, Invalid: boxed fallback
	classU8                   // Uint8, Bool (bools normalize to 0/1)
	classI32                  // Int32
	classI64                  // Int64
	classF64                  // Float32, Float64 (float32 keeps the full
	// float64 representation, matching the boxed Value layout)
	classStr // String: offset+length views into a shared byte arena
	numSlabClasses
)

func classOf(k Kind) slabClass {
	switch k {
	case Uint8, Bool:
		return classU8
	case Int32:
		return classI32
	case Int64:
		return classI64
	case Float32, Float64:
		return classF64
	case String:
		return classStr
	default:
		return classVal
	}
}

// slab is the flat storage for one generation or one local array. Exactly one
// of the slices (chosen by class) is in use; the others stay nil.
//
// classStr layout: element i occupies str[off[i] : off[i]+lens[i]-1]. The
// length field uses len+1 coding so the zero value means "unset" (the boxed
// Value{} an untouched slot reports): lens[i] == 0 is unset, lens[i] == k+1 is
// a string of k bytes. The arena is append-only — overwriting an element
// orphans its old bytes until the slab is cleared, which write-once fields
// never do and local string arrays do rarely.
type slab struct {
	class slabClass
	u8    []uint8
	i32   []int32
	i64   []int64
	f64   []float64
	vs    []Value
	off   []uint32
	lens  []uint32
	str   []byte
}

func newSlab(k Kind, n int) slab {
	s := slab{class: classOf(k)}
	s.alloc(n, n)
	return s
}

func (s *slab) alloc(n, c int) {
	switch s.class {
	case classU8:
		s.u8 = make([]uint8, n, c)
	case classI32:
		s.i32 = make([]int32, n, c)
	case classI64:
		s.i64 = make([]int64, n, c)
	case classF64:
		s.f64 = make([]float64, n, c)
	case classStr:
		s.off = make([]uint32, n, c)
		s.lens = make([]uint32, n, c)
		s.str = s.str[:0] // keep any recycled arena capacity
	default:
		s.vs = make([]Value, n, c)
	}
}

func (s *slab) len() int {
	switch s.class {
	case classU8:
		return len(s.u8)
	case classI32:
		return len(s.i32)
	case classI64:
		return len(s.i64)
	case classF64:
		return len(s.f64)
	case classStr:
		return len(s.lens)
	default:
		return len(s.vs)
	}
}

func (s *slab) capacity() int {
	switch s.class {
	case classU8:
		return cap(s.u8)
	case classI32:
		return cap(s.i32)
	case classI64:
		return cap(s.i64)
	case classF64:
		return cap(s.f64)
	case classStr:
		return cap(s.lens)
	default:
		return cap(s.vs)
	}
}

// reslice sets the length to n, which must be within capacity. Newly exposed
// elements must already be zero (guaranteed by alloc and by clearFull on pool
// checkout).
func (s *slab) reslice(n int) {
	switch s.class {
	case classU8:
		s.u8 = s.u8[:n]
	case classI32:
		s.i32 = s.i32[:n]
	case classI64:
		s.i64 = s.i64[:n]
	case classF64:
		s.f64 = s.f64[:n]
	case classStr:
		s.off = s.off[:n]
		s.lens = s.lens[:n]
	default:
		s.vs = s.vs[:n]
	}
}

// zeroRange zeroes elements [i, j). classStr arena bytes stay in place (the
// offset/length entries going zero makes them unreachable).
func (s *slab) zeroRange(i, j int) {
	switch s.class {
	case classU8:
		clear(s.u8[i:j])
	case classI32:
		clear(s.i32[i:j])
	case classI64:
		clear(s.i64[i:j])
	case classF64:
		clear(s.f64[i:j])
	case classStr:
		clear(s.off[i:j])
		clear(s.lens[i:j])
	default:
		clear(s.vs[i:j])
	}
}

// resize grows the slab to length n, reallocating with the given capacity if
// the current capacity is too small. Existing elements are preserved; newly
// exposed elements are zeroed even when the backing capacity is recycled.
func (s *slab) resize(n, c int) {
	if n <= s.capacity() {
		old := s.len()
		s.reslice(n)
		s.zeroRange(old, n)
		return
	}
	if c < n {
		c = n
	}
	switch s.class {
	case classU8:
		nd := make([]uint8, n, c)
		copy(nd, s.u8)
		s.u8 = nd
	case classI32:
		nd := make([]int32, n, c)
		copy(nd, s.i32)
		s.i32 = nd
	case classI64:
		nd := make([]int64, n, c)
		copy(nd, s.i64)
		s.i64 = nd
	case classF64:
		nd := make([]float64, n, c)
		copy(nd, s.f64)
		s.f64 = nd
	case classStr:
		no := make([]uint32, n, c)
		copy(no, s.off)
		s.off = no
		nl := make([]uint32, n, c)
		copy(nl, s.lens)
		s.lens = nl
		// The arena carries over: offsets stay valid across a resize.
	default:
		nd := make([]Value, n, c)
		copy(nd, s.vs)
		s.vs = nd
	}
}

// clearFull zeroes the slab out to its full capacity and sets the length to
// zero, so later within-capacity reslices expose zeroed memory. Used when a
// slab is recycled through an age pool.
func (s *slab) clearFull() {
	switch s.class {
	case classU8:
		s.u8 = s.u8[:cap(s.u8)]
		clear(s.u8)
		s.u8 = s.u8[:0]
	case classI32:
		s.i32 = s.i32[:cap(s.i32)]
		clear(s.i32)
		s.i32 = s.i32[:0]
	case classI64:
		s.i64 = s.i64[:cap(s.i64)]
		clear(s.i64)
		s.i64 = s.i64[:0]
	case classF64:
		s.f64 = s.f64[:cap(s.f64)]
		clear(s.f64)
		s.f64 = s.f64[:0]
	case classStr:
		s.off = s.off[:cap(s.off)]
		clear(s.off)
		s.off = s.off[:0]
		s.lens = s.lens[:cap(s.lens)]
		clear(s.lens)
		s.lens = s.lens[:0]
		// Truncate the arena but keep its capacity for reuse; gets copy out,
		// so stale bytes beyond the length are never observable.
		s.str = s.str[:0]
	default:
		s.vs = s.vs[:cap(s.vs)]
		clear(s.vs)
		s.vs = s.vs[:0]
	}
}

// rawCopyCompatible reports whether elements of kind src can be copied into
// storage of kind dst without per-element conversion: the kinds share a slab
// class and the conversion is the identity on the stored representation.
func rawCopyCompatible(dst, src Kind) bool {
	if dst == src {
		return true
	}
	dc := classOf(dst)
	if dc != classOf(src) {
		return false
	}
	switch dc {
	case classF64:
		return true // float32 and float64 share the float64 representation
	case classU8:
		return dst == Uint8 // bool slabs hold 0/1, valid uint8 values
	default:
		return false
	}
}

// get boxes element i as a Value of kind k.
func (s *slab) get(k Kind, i int) Value {
	switch s.class {
	case classU8:
		return Value{kind: k, i: int64(s.u8[i])}
	case classI32:
		return Value{kind: k, i: int64(s.i32[i])}
	case classI64:
		return Value{kind: k, i: s.i64[i]}
	case classF64:
		return Value{kind: k, f: s.f64[i]}
	case classStr:
		l := s.lens[i]
		if l == 0 {
			return Value{} // unset, like an untouched boxed slot
		}
		o := s.off[i]
		// Copy out: the arena is zeroed/reused on recycle, so the returned
		// string must not alias it.
		return Value{kind: k, s: string(s.str[o : o+l-1])}
	default:
		return s.vs[i]
	}
}

// set unboxes v into slot i with the same coercion semantics as
// Value.Convert(k): integer kinds truncate to their width, Bool normalizes to
// 0/1, float kinds keep the full float64 representation.
func (s *slab) set(k Kind, i int, v Value) {
	switch s.class {
	case classU8:
		if k == Bool {
			if v.Bool() {
				s.u8[i] = 1
			} else {
				s.u8[i] = 0
			}
		} else {
			s.u8[i] = uint8(v.Int64())
		}
	case classI32:
		s.i32[i] = int32(v.Int64())
	case classI64:
		s.i64[i] = v.Int64()
	case classF64:
		s.f64[i] = v.Float64()
	case classStr:
		if v.IsArray() {
			// Boxed storage kept array values verbatim in String slots; the
			// arena cannot. No code path stores arrays into String fields.
			panic("field: array value stored into a String slab element")
		}
		cs := v.Convert(k).s
		s.off[i] = uint32(len(s.str))
		s.lens[i] = uint32(len(cs) + 1)
		s.str = append(s.str, cs...)
	default:
		s.vs[i] = v.Convert(k)
	}
}

// copyRange copies n elements from src[soff:] into s[doff:] with a single
// typed copy. Both slabs must have the same class.
func (s *slab) copyRange(doff int, src *slab, soff, n int) {
	switch s.class {
	case classU8:
		copy(s.u8[doff:doff+n], src.u8[soff:soff+n])
	case classI32:
		copy(s.i32[doff:doff+n], src.i32[soff:soff+n])
	case classI64:
		copy(s.i64[doff:doff+n], src.i64[soff:soff+n])
	case classF64:
		copy(s.f64[doff:doff+n], src.f64[soff:soff+n])
	case classStr:
		for i := 0; i < n; i++ {
			l := src.lens[soff+i]
			if l == 0 {
				s.off[doff+i], s.lens[doff+i] = 0, 0
				continue
			}
			o := src.off[soff+i]
			s.off[doff+i] = uint32(len(s.str))
			s.lens[doff+i] = l
			s.str = append(s.str, src.str[o:o+l-1]...)
		}
	default:
		copy(s.vs[doff:doff+n], src.vs[soff:soff+n])
	}
}

// equalRange reports element-wise equality of the first n elements of s and
// o. Both slabs must have the same class; classVal elements compare with
// Value.Equal.
func (s *slab) equalRange(o *slab, n int) bool {
	switch s.class {
	case classU8:
		for i := 0; i < n; i++ {
			if s.u8[i] != o.u8[i] {
				return false
			}
		}
	case classI32:
		for i := 0; i < n; i++ {
			if s.i32[i] != o.i32[i] {
				return false
			}
		}
	case classI64:
		for i := 0; i < n; i++ {
			if s.i64[i] != o.i64[i] {
				return false
			}
		}
	case classF64:
		for i := 0; i < n; i++ {
			if s.f64[i] != o.f64[i] {
				return false
			}
		}
	case classStr:
		for i := 0; i < n; i++ {
			sl, ol := s.lens[i], o.lens[i]
			if sl != ol {
				return false
			}
			if sl == 0 {
				continue
			}
			if string(s.str[s.off[i]:s.off[i]+sl-1]) != string(o.str[o.off[i]:o.off[i]+ol-1]) {
				return false
			}
		}
	default:
		for i := 0; i < n; i++ {
			if !s.vs[i].Equal(o.vs[i]) {
				return false
			}
		}
	}
	return true
}
