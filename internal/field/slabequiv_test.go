package field

import (
	"fmt"
	"math/rand"
	"testing"
)

// boxedRef is the pre-slab reference implementation of one field generation:
// a flat []Value with elementwise growth, exactly the storage the Field used
// before kind-specialized slabs. The property test drives a Field and a
// boxedRef with the same randomized operation sequence and requires identical
// observable behavior, which pins the slab representation to the boxed
// semantics for every kind.
type boxedRef struct {
	kind    Kind
	extents []int
	data    []Value
	written []bool
}

func newBoxedRef(kind Kind, rank int) *boxedRef {
	return &boxedRef{kind: kind, extents: make([]int, rank)}
}

func (r *boxedRef) flatten(idx []int) int {
	off := 0
	for d, i := range idx {
		if i < 0 || i >= r.extents[d] {
			return -1
		}
		off = off*r.extents[d] + i
	}
	return off
}

func (r *boxedRef) grow(want []int) {
	same := true
	ext := make([]int, len(r.extents))
	for d := range ext {
		ext[d] = r.extents[d]
		if want[d] > ext[d] {
			ext[d] = want[d]
			same = false
		}
	}
	if same {
		return
	}
	n := 1
	for _, e := range ext {
		n *= e
	}
	nd := make([]Value, n)
	nw := make([]bool, n)
	if len(r.data) > 0 {
		idx := make([]int, len(r.extents))
		for off := range r.data {
			noff := 0
			for d := range idx {
				noff = noff*ext[d] + idx[d]
			}
			nd[noff] = r.data[off]
			nw[noff] = r.written[off]
			for d := len(idx) - 1; d >= 0; d-- {
				idx[d]++
				if idx[d] < r.extents[d] {
					break
				}
				idx[d] = 0
			}
		}
	}
	r.extents = ext
	r.data = nd
	r.written = nw
}

func (r *boxedRef) store(v Value, idx []int) {
	want := make([]int, len(idx))
	for d, i := range idx {
		want[d] = i + 1
	}
	r.grow(want)
	off := r.flatten(idx)
	r.data[off] = v.Convert(r.kind)
	r.written[off] = true
}

// covered visits every position a slice store with the given selector and
// free-dimension extents would write, returning false from the visitor to
// stop early.
func (r *boxedRef) coveredBySlice(sel []SlabDim, freeExt []int, visit func(idx []int) bool) {
	idx := make([]int, len(sel))
	var rec func(d, j int) bool
	rec = func(d, j int) bool {
		if d == len(sel) {
			return visit(idx)
		}
		if sel[d].Fixed {
			idx[d] = sel[d].Index
			return rec(d+1, j)
		}
		for i := 0; i < freeExt[j]; i++ {
			idx[d] = i
			if !rec(d+1, j+1) {
				return false
			}
		}
		return true
	}
	rec(0, 0)
}

// refZero is the value an unwritten position reads as in the boxed model: the
// zero Value for reference-kind storage, the kind's zero for numeric slabs.
func refZero(k Kind) Value {
	if cls := classOf(k); cls == classVal || cls == classStr {
		return Value{}
	}
	return Zero(k)
}

// randValue draws a value whose payload exercises the kind's full range —
// including out-of-range integers, so canonical truncation is covered.
func randValue(rng *rand.Rand, k Kind) Value {
	switch k {
	case Uint8, Int32, Int64:
		return Int64Val(int64(rng.Uint64()))
	case Bool:
		return BoolVal(rng.Intn(2) == 1)
	case Float32, Float64:
		return Float64Val(rng.NormFloat64() * 1e6)
	case String:
		return StringVal(fmt.Sprintf("s%d", rng.Intn(1000)))
	default:
		return AnyVal(rng.Intn(1000))
	}
}

func valEq(a, b Value) bool { return a.String() == b.String() && a.Kind() == b.Kind() }

// TestSlabMatchesBoxedReference drives every element kind through randomized
// store/fetch/slice/grow sequences against the boxed reference model.
func TestSlabMatchesBoxedReference(t *testing.T) {
	kinds := []Kind{Uint8, Bool, Int32, Int64, Float32, Float64, String, Any}
	for _, k := range kinds {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			for _, rank := range []int{1, 2, 3} {
				rng := rand.New(rand.NewSource(int64(42 + rank + int(k)<<4)))
				f := New("equiv", k, rank, false)
				ref := newBoxedRef(k, rank)
				dst := &Array{}

				randIdx := func() []int {
					idx := make([]int, rank)
					for d := range idx {
						idx[d] = rng.Intn(6)
					}
					return idx
				}
				randSel := func() ([]SlabDim, int) {
					for {
						sel := make([]SlabDim, rank)
						free := 0
						for d := range sel {
							if rng.Intn(2) == 0 {
								sel[d] = SlabDim{Fixed: true, Index: rng.Intn(5)}
							} else {
								free++
							}
						}
						if free > 0 {
							return sel, free
						}
					}
				}

				for op := 0; op < 300; op++ {
					switch rng.Intn(6) {
					case 0: // element store
						idx := randIdx()
						v := randValue(rng, k)
						off := ref.flatten(idx)
						if off >= 0 && ref.written[off] {
							if _, err := f.Store(0, v, idx...); err == nil {
								t.Fatalf("rank %d op %d: store at written %v did not error", rank, op, idx)
							}
							continue
						}
						if _, err := f.Store(0, v, idx...); err != nil {
							t.Fatalf("rank %d op %d: store %v: %v", rank, op, idx, err)
						}
						ref.store(v, idx)
					case 1: // slice store
						sel, free := randSel()
						freeExt := make([]int, free)
						for j := range freeExt {
							freeExt[j] = 1 + rng.Intn(4)
						}
						conflict := false
						ref.coveredBySlice(sel, freeExt, func(idx []int) bool {
							if off := ref.flatten(idx); off >= 0 && ref.written[off] {
								conflict = true
								return false
							}
							return true
						})
						if conflict {
							continue // partial-failure states are not modeled
						}
						a := NewArray(k, freeExt...)
						vals := make([]Value, a.Len())
						for i := range vals {
							vals[i] = randValue(rng, k)
							a.SetFlat(vals[i], i)
						}
						if _, err := f.StoreSlice(0, sel, a); err != nil {
							t.Fatalf("rank %d op %d: slice store %v: %v", rank, op, sel, err)
						}
						i := 0
						ref.coveredBySlice(sel, freeExt, func(idx []int) bool {
							ref.store(vals[i], idx)
							i++
							return true
						})
					case 2: // element fetch
						idx := randIdx()
						got, ok := f.At(0, idx...)
						off := ref.flatten(idx)
						wantOK := off >= 0 && ref.written[off]
						if ok != wantOK {
							t.Fatalf("rank %d op %d: At%v ok=%v, ref %v", rank, op, idx, ok, wantOK)
						}
						if ok && !valEq(got, ref.data[off]) {
							t.Fatalf("rank %d op %d: At%v = %v, ref %v", rank, op, idx, got, ref.data[off])
						}
					case 3: // whole fetch
						f.SnapshotInto(0, dst)
						if !extentsEqual(dst.Extents(), ref.extents) {
							t.Fatalf("rank %d op %d: snapshot extents %v, ref %v", rank, op, dst.Extents(), ref.extents)
						}
						for i := 0; i < dst.Len(); i++ {
							want := refZero(k)
							if ref.written[i] {
								want = ref.data[i]
							}
							if got := dst.AtFlat(i); !valEq(got, want) {
								t.Fatalf("rank %d op %d: snapshot[%d] = %v, ref %v", rank, op, i, got, want)
							}
						}
					case 4: // slice fetch
						sel, _ := randSel()
						f.FetchSlice(0, sel, dst)
						outOfRange := false
						wantExt := []int{}
						for d, sd := range sel {
							if sd.Fixed {
								if sd.Index >= ref.extents[d] {
									outOfRange = true
								}
								continue
							}
							wantExt = append(wantExt, ref.extents[d])
						}
						if outOfRange {
							if dst.Len() != 0 {
								t.Fatalf("rank %d op %d: out-of-range slab has %d elems", rank, op, dst.Len())
							}
							continue
						}
						if len(wantExt) == 0 {
							wantExt = []int{0}
						}
						for j, e := range wantExt {
							if dst.Extent(j) != e {
								t.Fatalf("rank %d op %d: slab extent %d = %d, want %d", rank, op, j, dst.Extent(j), e)
							}
						}
						flat := 0
						ref.coveredBySlice(sel, wantExt, func(idx []int) bool {
							off := ref.flatten(idx)
							want := refZero(k)
							if off >= 0 && ref.written[off] {
								want = ref.data[off]
							}
							if got := dst.AtFlat(flat); !valEq(got, want) {
								t.Fatalf("rank %d op %d: slab[%d]%v = %v, ref %v", rank, op, flat, idx, got, want)
							}
							flat++
							return true
						})
					case 5: // extents
						for d := 0; d < rank; d++ {
							if got := f.Extent(0, d); got != ref.extents[d] {
								t.Fatalf("rank %d op %d: extent %d = %d, ref %d", rank, op, d, got, ref.extents[d])
							}
						}
					}
				}
			}
		})
	}
}
