package field

import (
	"fmt"
	"reflect"
	"strconv"
)

// Value is the dynamic scalar/array representation used throughout P2G: field
// elements, kernel locals and interpreter values are all Values. A Value is
// either a scalar of some numeric kind, a bool, a string, an arbitrary Go
// payload (Kind Any), or a local multi-dimensional Array.
//
// Values are small and passed by value; Arrays are referenced by pointer, so
// copying a Value that wraps an Array aliases the array. The runtime copies
// arrays explicitly at fetch/store boundaries to preserve write-once
// semantics.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	obj  any
	arr  *Array
}

// Zero returns the zero value of the given kind.
func Zero(k Kind) Value { return Value{kind: k} }

// Int32Val wraps an int32 scalar.
func Int32Val(v int32) Value { return Value{kind: Int32, i: int64(v)} }

// Int64Val wraps an int64 scalar.
func Int64Val(v int64) Value { return Value{kind: Int64, i: v} }

// Uint8Val wraps a uint8 scalar.
func Uint8Val(v uint8) Value { return Value{kind: Uint8, i: int64(v)} }

// Float32Val wraps a float32 scalar.
func Float32Val(v float32) Value { return Value{kind: Float32, f: float64(v)} }

// Float64Val wraps a float64 scalar.
func Float64Val(v float64) Value { return Value{kind: Float64, f: v} }

// BoolVal wraps a bool.
func BoolVal(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: Bool, i: i}
}

// StringVal wraps a string.
func StringVal(v string) Value { return Value{kind: String, s: v} }

// AnyVal wraps an arbitrary Go payload.
func AnyVal(v any) Value { return Value{kind: Any, obj: v} }

// ArrayVal wraps a local array.
func ArrayVal(a *Array) Value { return Value{kind: a.kind, arr: a} }

// Kind returns the element kind. For array values this is the array's element
// kind; use IsArray to distinguish.
func (v Value) Kind() Kind { return v.kind }

// IsArray reports whether the value wraps an Array.
func (v Value) IsArray() bool { return v.arr != nil }

// IsZero reports whether the value is the uninitialized Value.
func (v Value) IsZero() bool { return v == Value{} }

// Array returns the wrapped array, or nil if the value is a scalar.
func (v Value) Array() *Array { return v.arr }

// Int32 returns the scalar as int32, converting between numeric kinds.
func (v Value) Int32() int32 { return int32(v.Int64()) }

// Uint8 returns the scalar as uint8, converting between numeric kinds.
func (v Value) Uint8() uint8 { return uint8(v.Int64()) }

// Int64 returns the scalar as int64, converting between numeric kinds.
func (v Value) Int64() int64 {
	if v.kind.Float() {
		return int64(v.f)
	}
	return v.i
}

// Float64 returns the scalar as float64, converting between numeric kinds.
func (v Value) Float64() float64 {
	if v.kind.Float() {
		return v.f
	}
	return float64(v.i)
}

// Float32 returns the scalar as float32, converting between numeric kinds.
func (v Value) Float32() float32 { return float32(v.Float64()) }

// Bool returns the scalar interpreted as a truth value (non-zero is true).
func (v Value) Bool() bool {
	if v.kind.Float() {
		return v.f != 0
	}
	return v.i != 0
}

// Str returns the wrapped string (empty for non-string values).
func (v Value) Str() string { return v.s }

// Obj returns the wrapped Go payload (nil for non-Any values).
func (v Value) Obj() any { return v.obj }

// IntValOf wraps an already-canonical integer-class payload as a value of
// kind k (Uint8, Int32, Int64 or Bool). It is the boxing hook for compiled
// kernel back-ends, which keep payloads canonical in registers; the caller
// guarantees x fits k (in particular 0/1 for Bool), so no truncation is
// applied. Use Value.Convert when the payload is not known to be canonical.
func IntValOf(k Kind, x int64) Value { return Value{kind: k, i: x} }

// FloatValOf wraps a float payload as a value of kind k (Float32 or Float64),
// keeping the full float64 representation exactly like Value.Convert does —
// no float32 rounding for Float32.
func FloatValOf(k Kind, f float64) Value { return Value{kind: k, f: f} }

// StrValOf wraps a string payload as a value of kind k (String, or Any for
// the Convert(Any) representation of a string).
func StrValOf(k Kind, s string) Value { return Value{kind: k, s: s} }

// Convert coerces the value to the target kind. Converting an array value
// returns it unchanged (arrays carry their own kind). Converting to Any wraps
// nothing; the value keeps its representation but reports kind Any. Integer
// conversions truncate to the target width, so a converted value has a
// canonical representation regardless of whether it lives in a boxed Value or
// a typed slab.
func (v Value) Convert(k Kind) Value {
	if v.arr != nil || v.kind == k {
		return v
	}
	switch k {
	case Int32:
		return Value{kind: k, i: int64(int32(v.Int64()))}
	case Int64:
		return Value{kind: k, i: v.Int64()}
	case Uint8:
		return Value{kind: k, i: int64(uint8(v.Int64()))}
	case Float32, Float64:
		return Value{kind: k, f: v.Float64()}
	case Bool:
		return BoolVal(v.Bool())
	case String:
		return StringVal(v.String())
	case Any:
		nv := v
		nv.kind = Any
		return nv
	}
	return Zero(k)
}

// Equal reports deep equality of two values. Arrays compare element-wise;
// Any payloads compare with reflect.DeepEqual, so slice-backed payloads are
// compared by content.
func (v Value) Equal(o Value) bool {
	if v.IsArray() != o.IsArray() {
		return false
	}
	if v.IsArray() {
		return v.arr.Equal(o.arr)
	}
	if v.kind != o.kind {
		return false
	}
	switch {
	case v.kind == String:
		return v.s == o.s
	case v.kind == Any:
		return reflect.DeepEqual(v.obj, o.obj)
	case v.kind.Float():
		return v.f == o.f
	default:
		return v.i == o.i
	}
}

// String formats the value for diagnostics and the kernel-language cout
// stream.
func (v Value) String() string {
	if v.arr != nil {
		return v.arr.String()
	}
	switch {
	case v.kind == Invalid:
		return "<unset>"
	case v.kind == String:
		return v.s
	case v.kind == Any:
		return fmt.Sprintf("%v", v.obj)
	case v.kind == Bool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case v.kind.Float():
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	default:
		return strconv.FormatInt(v.i, 10)
	}
}
