package field

import (
	"testing"
	"testing/quick"
)

func TestKindNames(t *testing.T) {
	cases := map[Kind]string{
		Int32: "int32", Int64: "int64", Float32: "float32", Float64: "float64",
		Uint8: "uint8", Bool: "bool", String: "string", Any: "any",
	}
	for k, name := range cases {
		if k.String() != name {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), name)
		}
		if got := KindByName(name); got != k {
			t.Errorf("KindByName(%q) = %v, want %v", name, got, k)
		}
	}
	if KindByName("nope") != Invalid {
		t.Errorf("KindByName(nope) should be Invalid")
	}
	if KindByName("invalid") != Invalid {
		t.Errorf("KindByName(invalid) should not resolve")
	}
	if Kind(200).String() == "" {
		t.Errorf("out-of-range kind should still format")
	}
}

func TestKindPredicates(t *testing.T) {
	if !Int32.Numeric() || !Float64.Numeric() || !Uint8.Numeric() {
		t.Error("numeric kinds misclassified")
	}
	if Bool.Numeric() || String.Numeric() || Any.Numeric() {
		t.Error("non-numeric kinds misclassified")
	}
	if !Int64.Integer() || Float32.Integer() {
		t.Error("Integer misclassified")
	}
	if !Float32.Float() || Int32.Float() {
		t.Error("Float misclassified")
	}
}

func TestScalarRoundTrips(t *testing.T) {
	if Int32Val(-7).Int32() != -7 {
		t.Error("int32 round trip")
	}
	if Int64Val(1<<40).Int64() != 1<<40 {
		t.Error("int64 round trip")
	}
	if Uint8Val(200).Uint8() != 200 {
		t.Error("uint8 round trip")
	}
	if Float32Val(1.5).Float32() != 1.5 {
		t.Error("float32 round trip")
	}
	if Float64Val(-2.25).Float64() != -2.25 {
		t.Error("float64 round trip")
	}
	if !BoolVal(true).Bool() || BoolVal(false).Bool() {
		t.Error("bool round trip")
	}
	if StringVal("hi").Str() != "hi" {
		t.Error("string round trip")
	}
	type payload struct{ x int }
	p := &payload{42}
	if AnyVal(p).Obj() != p {
		t.Error("any round trip")
	}
}

func TestValueConversions(t *testing.T) {
	if Float64Val(3.9).Int64() != 3 {
		t.Error("float→int should truncate")
	}
	if Int32Val(3).Float64() != 3.0 {
		t.Error("int→float")
	}
	if Int32Val(0).Bool() || !Int32Val(2).Bool() {
		t.Error("int truthiness")
	}
	if Float64Val(0.5).Bool() != true || Float64Val(0).Bool() {
		t.Error("float truthiness")
	}
	v := Int32Val(7).Convert(Float64)
	if v.Kind() != Float64 || v.Float64() != 7 {
		t.Error("Convert to float64")
	}
	v = Float64Val(7.7).Convert(Int32)
	if v.Kind() != Int32 || v.Int32() != 7 {
		t.Error("Convert to int32")
	}
	v = Int32Val(1).Convert(Bool)
	if v.Kind() != Bool || !v.Bool() {
		t.Error("Convert to bool")
	}
	v = Int32Val(12).Convert(String)
	if v.Kind() != String || v.Str() != "12" {
		t.Error("Convert to string")
	}
	v = Int32Val(12).Convert(Any)
	if v.Kind() != Any || v.Int64() != 12 {
		t.Error("Convert to any keeps representation")
	}
	// Converting to the same kind is the identity.
	orig := Float32Val(2.5)
	if orig.Convert(Float32) != orig {
		t.Error("identity conversion changed value")
	}
}

func TestValueEqual(t *testing.T) {
	if !Int32Val(5).Equal(Int32Val(5)) {
		t.Error("equal scalars")
	}
	if Int32Val(5).Equal(Int64Val(5)) {
		t.Error("different kinds should not be Equal")
	}
	if Int32Val(5).Equal(Int32Val(6)) {
		t.Error("different values")
	}
	if !StringVal("a").Equal(StringVal("a")) || StringVal("a").Equal(StringVal("b")) {
		t.Error("string equality")
	}
	a1 := ArrayFromInt32([]int32{1, 2})
	a2 := ArrayFromInt32([]int32{1, 2})
	a3 := ArrayFromInt32([]int32{1, 3})
	if !ArrayVal(a1).Equal(ArrayVal(a2)) {
		t.Error("equal arrays")
	}
	if ArrayVal(a1).Equal(ArrayVal(a3)) {
		t.Error("unequal arrays")
	}
	if ArrayVal(a1).Equal(Int32Val(1)) {
		t.Error("array vs scalar")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int32Val(-3), "-3"},
		{Float64Val(2.5), "2.5"},
		{BoolVal(true), "true"},
		{BoolVal(false), "false"},
		{StringVal("x"), "x"},
		{Value{}, "<unset>"},
		{ArrayVal(ArrayFromInt32([]int32{1, 2, 3})), "{1, 2, 3}"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestValueZeroAndIsZero(t *testing.T) {
	if !(Value{}).IsZero() {
		t.Error("zero Value should be IsZero")
	}
	if Zero(Int32).IsZero() {
		t.Error("Zero(Int32) carries a kind, not IsZero")
	}
	if Zero(Int32).Int32() != 0 {
		t.Error("Zero(Int32) should read as 0")
	}
}

// Property: int64 values survive a round trip through Value for the whole
// representable range.
func TestQuickInt64RoundTrip(t *testing.T) {
	f := func(v int64) bool { return Int64Val(v).Int64() == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: converting int32 → float64 → int32 is the identity (float64 holds
// all int32 exactly).
func TestQuickInt32FloatRoundTrip(t *testing.T) {
	f := func(v int32) bool {
		return Int32Val(v).Convert(Float64).Convert(Int32).Int32() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Equal is reflexive for scalar values.
func TestQuickEqualReflexive(t *testing.T) {
	f := func(v int64, g float64, s string) bool {
		return Int64Val(v).Equal(Int64Val(v)) &&
			Float64Val(g).Equal(Float64Val(g)) &&
			StringVal(s).Equal(StringVal(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
