package field

import (
	"fmt"
	goruntime "runtime"
	"sync"
	"testing"
)

// TestFetchViewAllBasics: a whole-generation view reads the same values as a
// snapshot, only once the generation is complete, without copying the slab.
func TestFetchViewAllBasics(t *testing.T) {
	f := New("v", Int32, 1, true)
	a := ArrayFromInt32([]int32{10, 20, 30, 40})
	if _, err := f.StoreAll(0, a); err != nil {
		t.Fatal(err)
	}
	var dst Array
	if _, ok := f.FetchViewAll(0, &dst); ok {
		t.Fatal("view granted on an incomplete generation")
	}
	f.MarkComplete(0)
	tok, ok := f.FetchViewAll(0, &dst)
	if !ok {
		t.Fatal("view refused on a complete generation")
	}
	defer tok.Release()
	if !dst.Equal(f.Snapshot(0)) {
		t.Fatalf("view %v != snapshot %v", &dst, f.Snapshot(0))
	}
	// The view aliases the generation slab, not a copy.
	if &dst.Int32s()[0] != &f.Snapshot(0).Int32s()[0] {
		// Snapshot copies, so compare against the field's own storage via a
		// second view instead.
		var dst2 Array
		tok2, _ := f.FetchViewAll(0, &dst2)
		defer tok2.Release()
		if &dst.Int32s()[0] != &dst2.Int32s()[0] {
			t.Fatal("two views of one generation alias different slabs")
		}
	}
}

// TestFetchViewSlice: prefix-fixed selectors alias the row run; non-prefix
// selectors and out-of-range coordinates fall back (return false).
func TestFetchViewSlice(t *testing.T) {
	f := New("m", Float64, 2, true)
	m := NewArray(Float64, 3, 4)
	for i := 0; i < m.Len(); i++ {
		m.SetFlat(Float64Val(float64(i)), i)
	}
	if _, err := f.StoreAll(0, m); err != nil {
		t.Fatal(err)
	}
	f.MarkComplete(0)

	var dst Array
	sel := []SlabDim{{Fixed: true, Index: 1}, {}}
	tok, ok := f.FetchViewSlice(0, sel, &dst)
	if !ok {
		t.Fatal("prefix-fixed slice view refused")
	}
	var want Array
	f.FetchSlice(0, sel, &want)
	if !dst.Equal(&want) {
		t.Fatalf("slice view %v != copied fetch %v", &dst, &want)
	}
	tok.Release()

	// Fixed dim after a free dim: not a contiguous run, must fall back.
	if _, ok := f.FetchViewSlice(0, []SlabDim{{}, {Fixed: true, Index: 2}}, &dst); ok {
		t.Fatal("non-prefix selector got a view")
	}
	// Out-of-range coordinate.
	if _, ok := f.FetchViewSlice(0, []SlabDim{{Fixed: true, Index: 9}, {}}, &dst); ok {
		t.Fatal("out-of-range selector got a view")
	}
}

// TestViewCopyOnWrite: mutating a view through the boxed setters must not
// write through to the field.
func TestViewCopyOnWrite(t *testing.T) {
	for _, k := range []Kind{Int32, String} {
		t.Run(k.String(), func(t *testing.T) {
			f := New("c", k, 1, true)
			for i := 0; i < 4; i++ {
				v := Int32Val(int32(i))
				if k == String {
					v = StringVal(fmt.Sprintf("s%d", i))
				}
				if _, err := f.Store(0, v, i); err != nil {
					t.Fatal(err)
				}
			}
			f.MarkComplete(0)
			before := f.Snapshot(0)
			var dst Array
			tok, ok := f.FetchViewAll(0, &dst)
			if !ok {
				t.Fatal("view refused")
			}
			defer tok.Release()
			dst.Set(StringVal("mutated"), 2)
			if got := dst.AtFlat(2).String(); got != "mutated" && k == String {
				t.Fatalf("view mutation lost: %q", got)
			}
			if !f.Snapshot(0).Equal(before) {
				t.Fatalf("view mutation wrote through to the field: %v", f.Snapshot(0))
			}
			// Growing an unshared ex-view must also leave the field alone
			// (classStr growth appends to the arena).
			dst.Grow(8)
			dst.Set(StringVal("tail"), 7)
			if !f.Snapshot(0).Equal(before) {
				t.Fatalf("view growth corrupted the field: %v", f.Snapshot(0))
			}
		})
	}
}

func arrInt64(vs []int64) *Array {
	a := NewArray(Int64, len(vs))
	copy(a.Int64s(), vs)
	return a
}

// TestViewPinsSlabAcrossDrop: DropAge with a live view must defer recycling
// to the last Release — no view ever observes a recycled slab.
func TestViewPinsSlabAcrossDrop(t *testing.T) {
	defer goruntime.GOMAXPROCS(goruntime.GOMAXPROCS(1))
	DrainAgePoolsForTest()

	f := New("p", Int32, 1, true)
	const n = 64
	vals := make([]int32, n)
	for i := range vals {
		vals[i] = int32(i)
	}
	if _, err := f.StoreAll(0, ArrayFromInt32(vals)); err != nil {
		t.Fatal(err)
	}
	f.MarkComplete(0)

	var dst Array
	tok, ok := f.FetchViewAll(0, &dst)
	if !ok {
		t.Fatal("view refused")
	}
	if !f.DropAge(0) {
		t.Fatal("age not live")
	}
	if s := agePools[classI32].Get(); s != nil {
		t.Fatal("slab recycled into the pool while a view is live")
	}
	for i := 0; i < n; i++ {
		if got := dst.AtFlat(i).Int32(); got != int32(i) {
			t.Fatalf("view[%d] = %d after drop, want %d", i, got, i)
		}
	}
	tok.Release()
	s, _ := agePools[classI32].Get().(*ageStore)
	if s == nil {
		t.Fatal("slab not recycled after the last view release")
	}
	if &s.data.i32[:1][0] != &dst.data.i32[0] {
		t.Fatal("recycled slab is not the viewed slab")
	}
}

// TestViewReleaseAgeKept: releasing a view of a still-live age must NOT
// recycle the slab out from under the field.
func TestViewReleaseAgeKept(t *testing.T) {
	defer goruntime.GOMAXPROCS(goruntime.GOMAXPROCS(1))
	DrainAgePoolsForTest()

	f := New("k", Int64, 1, true)
	if _, err := f.StoreAll(0, arrInt64([]int64{1, 2, 3})); err != nil {
		t.Fatal(err)
	}
	f.MarkComplete(0)
	var dst Array
	tok, _ := f.FetchViewAll(0, &dst)
	tok.Release()
	if s := agePools[classI64].Get(); s != nil {
		t.Fatal("release of a view recycled a live generation")
	}
	if v, ok := f.At(0, 1); !ok || v.Int64() != 2 {
		t.Fatal("generation corrupted by view release")
	}
}

// TestViewRefcountConcurrentStress races view acquisition/release against
// generation drops and pool-recycling stores under -race: every view must
// read its generation's original values, never a cleared or reused slab.
func TestViewRefcountConcurrentStress(t *testing.T) {
	f := New("r", Int64, 1, true)
	const ages, n = 24, 128
	row := make([]int64, n)
	for g := 0; g < ages; g++ {
		for i := range row {
			row[i] = int64(g)
		}
		if _, err := f.StoreAll(g, arrInt64(row)); err != nil {
			t.Fatal(err)
		}
		f.MarkComplete(g)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			var dst Array
			for it := 0; it < 400; it++ {
				g := (seed + it) % ages
				tok, ok := f.FetchViewAll(g, &dst)
				if !ok {
					continue // already dropped
				}
				for i := 0; i < dst.Len(); i++ {
					if got := dst.AtFlat(i).Int64(); got != int64(g) {
						select {
						case errs <- fmt.Errorf("view of age %d read %d at %d", g, got, i):
						default:
						}
						break
					}
				}
				tok.Release()
			}
		}(w)
	}
	// Drop ages and immediately create recycling pressure: new generations
	// pull slabs from the pool and overwrite them, so a refcount bug turns
	// into a visible wrong read (or a race report).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for g := 0; g < ages; g++ {
			f.DropAge(g)
			for i := range row {
				row[i] = int64(1000 + g)
			}
			if _, err := f.StoreAll(ages+g, arrInt64(row)); err != nil {
				errs <- err
				return
			}
			f.MarkComplete(ages + g)
			goruntime.Gosched()
		}
	}()
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// TestViewFetchZeroAllocs pins the whole-generation view fetch at zero
// allocations per op once the destination array exists.
func TestViewFetchZeroAllocs(t *testing.T) {
	f := New("z", Float64, 1, true)
	vals := make([]float64, 256)
	if _, err := f.StoreAll(0, ArrayFromFloat64(vals)); err != nil {
		t.Fatal(err)
	}
	f.MarkComplete(0)
	var dst Array
	allocs := testing.AllocsPerRun(200, func() {
		tok, ok := f.FetchViewAll(0, &dst)
		if !ok {
			t.Fatal("view refused")
		}
		tok.Release()
	})
	if allocs != 0 {
		t.Errorf("view fetch allocates %.1f per op, want 0", allocs)
	}
}

// TestArenaStringStoreAllocBudget pins the arena string store at ≤1
// allocation per row: a whole-generation store of String rows costs a few
// slab/arena allocations amortized over all rows, where the boxed []Value
// path allocated a string copy per element.
func TestArenaStringStoreAllocBudget(t *testing.T) {
	const rows = 256
	src := NewArray(String, rows)
	for i := 0; i < rows; i++ {
		src.SetFlat(StringVal(fmt.Sprintf("payload-%04d", i)), i)
	}
	f := New("s", String, 1, true)
	age := 0
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := f.StoreAll(age, src); err != nil {
			t.Fatal(err)
		}
		f.MarkComplete(age)
		f.DropAge(age) // recycle, so steady-state cost is measured
		age++
	})
	perRow := allocs / rows
	if perRow > 1 {
		t.Errorf("arena string store allocates %.2f per row (%.0f per generation), want ≤1", perRow, allocs)
	}
}
