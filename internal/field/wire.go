package field

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// wireValue is the gob representation of a Value. Any payloads are carried
// through gob's interface mechanism; concrete payload types crossing node
// boundaries must be registered with RegisterPayload.
type wireValue struct {
	Kind    Kind
	IsArr   bool
	I       int64
	F       float64
	S       string
	HasObj  bool
	Obj     any
	Extents []int
	Elems   []Value
}

// RegisterPayload registers a concrete Go type carried inside Any values so
// it can cross node boundaries; it wraps gob.Register.
func RegisterPayload(v any) { gob.Register(v) }

// GobEncode implements gob.GobEncoder for Array by delegating to the Value
// encoding.
func (a *Array) GobEncode() ([]byte, error) { return ArrayVal(a).GobEncode() }

// GobDecode implements gob.GobDecoder for Array.
func (a *Array) GobDecode(data []byte) error {
	var v Value
	if err := v.GobDecode(data); err != nil {
		return err
	}
	if v.arr == nil {
		return fmt.Errorf("field: decoded value is not an array")
	}
	*a = *v.arr
	return nil
}

// GobEncode implements gob.GobEncoder for Value.
func (v Value) GobEncode() ([]byte, error) {
	w := wireValue{Kind: v.kind, I: v.i, F: v.f, S: v.s}
	if v.obj != nil {
		w.HasObj = true
		w.Obj = v.obj
	}
	if v.arr != nil {
		w.IsArr = true
		w.Extents = v.arr.extents
		w.Elems = v.arr.data
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("field: encoding value: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder for Value.
func (v *Value) GobDecode(data []byte) error {
	var w wireValue
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return fmt.Errorf("field: decoding value: %w", err)
	}
	*v = Value{kind: w.Kind, i: w.I, f: w.F, s: w.S}
	if w.HasObj {
		v.obj = w.Obj
	}
	if w.IsArr {
		n := 1
		for _, e := range w.Extents {
			n *= e
		}
		if len(w.Elems) != n {
			return fmt.Errorf("field: decoded array has %d elements for extents %v", len(w.Elems), w.Extents)
		}
		v.arr = &Array{kind: w.Kind, extents: w.Extents, data: w.Elems}
	}
	return nil
}
