package field

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"unsafe"
)

// Wire format: a compact, length-prefixed binary encoding of Values and
// Arrays. Scalars encode as (version, kind, flags, payload); arrays add
// varint extents followed by the typed slab payload — raw bytes for
// uint8/bool slabs, fixed-width little-endian words for int32/int64/float64
// slabs — so a whole generation crosses the wire as one typed block instead
// of a gob-encoded Value per element. String/Any elements fall back to
// per-element recursion, with Any payloads carried by gob (register concrete
// types with RegisterPayload).

const wireVersion = 1

const (
	wireFlagArr = 1 << iota
	wireFlagObj
)

// anyBox wraps an interface payload so gob round-trips the concrete type.
type anyBox struct{ V any }

// RegisterPayload registers a concrete Go type carried inside Any values so
// it can cross node boundaries; it wraps gob.Register.
func RegisterPayload(v any) { gob.Register(v) }

// GobEncode implements gob.GobEncoder for Array by delegating to the Value
// encoding.
func (a *Array) GobEncode() ([]byte, error) { return ArrayVal(a).GobEncode() }

// GobDecode implements gob.GobDecoder for Array.
func (a *Array) GobDecode(data []byte) error {
	var v Value
	if err := v.GobDecode(data); err != nil {
		return err
	}
	if v.arr == nil {
		return fmt.Errorf("field: decoded value is not an array")
	}
	*a = *v.arr
	return nil
}

// GobEncode implements gob.GobEncoder for Value using the typed-slab binary
// format (the name is historical: gob is only used for Any payloads).
func (v Value) GobEncode() ([]byte, error) {
	buf := make([]byte, 0, v.wireSizeHint())
	return v.appendWire(buf)
}

func (v Value) wireSizeHint() int {
	if v.arr == nil {
		return 16 + len(v.s)
	}
	n := v.arr.Len()
	switch v.arr.data.class {
	case classU8:
		return 16 + n
	case classI32:
		return 16 + 4*n
	case classStr:
		return 16 + n + len(v.arr.data.str)
	default:
		return 16 + 8*n
	}
}

func (v Value) appendWire(buf []byte) ([]byte, error) {
	flags := byte(0)
	if v.arr != nil {
		flags |= wireFlagArr
	}
	if v.obj != nil {
		flags |= wireFlagObj
	}
	buf = append(buf, wireVersion, byte(v.kind), flags)
	if v.arr != nil {
		return v.arr.appendWire(buf)
	}
	// Scalar payload. Any values keep whatever representation they carried
	// before conversion, so encode every channel that can be populated.
	switch {
	case v.kind == String:
		buf = appendString(buf, v.s)
	case v.kind == Any || v.kind == Invalid:
		buf = binary.AppendVarint(buf, v.i)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.f))
		buf = appendString(buf, v.s)
	case v.kind.Float():
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.f))
	default:
		buf = binary.AppendVarint(buf, v.i)
	}
	if v.obj != nil {
		var ob bytes.Buffer
		if err := gob.NewEncoder(&ob).Encode(anyBox{V: v.obj}); err != nil {
			return nil, fmt.Errorf("field: encoding payload: %w", err)
		}
		buf = binary.AppendUvarint(buf, uint64(ob.Len()))
		buf = append(buf, ob.Bytes()...)
	}
	return buf, nil
}

func (a *Array) appendWire(buf []byte) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(len(a.extents)))
	for _, e := range a.extents {
		buf = binary.AppendUvarint(buf, uint64(e))
	}
	switch a.data.class {
	case classU8:
		buf = append(buf, a.data.u8...)
	case classI32:
		for _, x := range a.data.i32 {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(x))
		}
	case classI64:
		for _, x := range a.data.i64 {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(x))
		}
	case classF64:
		for _, x := range a.data.f64 {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
		}
	case classStr:
		// Arena payload: per element the len+1 code, then the raw bytes — no
		// per-element boxing or recursion. Unset (0) and empty ("" → 1) stay
		// distinct, matching the in-memory coding.
		for i, l := range a.data.lens {
			buf = binary.AppendUvarint(buf, uint64(l))
			if l > 0 {
				o := a.data.off[i]
				buf = append(buf, a.data.str[o:o+l-1]...)
			}
		}
	default:
		for _, v := range a.data.vs {
			eb, err := v.appendWire(nil)
			if err != nil {
				return nil, err
			}
			buf = binary.AppendUvarint(buf, uint64(len(eb)))
			buf = append(buf, eb...)
		}
	}
	return buf, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// wireReader is a cursor over an encoded buffer.
type wireReader struct {
	buf []byte
	off int
}

var errWireShort = fmt.Errorf("field: truncated wire value")

func (r *wireReader) take(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.buf) {
		return nil, errWireShort
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *wireReader) byte() (byte, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *wireReader) uvarint() (uint64, error) {
	x, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, errWireShort
	}
	r.off += n
	return x, nil
}

func (r *wireReader) varint() (int64, error) {
	x, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		return 0, errWireShort
	}
	r.off += n
	return x, nil
}

func (r *wireReader) uint64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// AppendWireValue appends the wire-format v1 encoding of v to buf and
// returns the extended buffer. It is the append-style form of Value.GobEncode
// for embedding values inside larger frames (see runtime.StoreFrame): encoded
// values are self-delimiting, so no length prefix is needed.
func AppendWireValue(buf []byte, v Value) ([]byte, error) { return v.appendWire(buf) }

// hostLittleEndian reports whether the host stores multi-byte words
// little-endian, i.e. whether typed slabs already match the wire byte order.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// SplitWireArray appends the header of the wire encoding of v (version, kind,
// flags, extents) to buf and returns the extended buffer together with the
// payload bytes, which alias v's slab rather than being copied. The
// concatenation header||payload is bit-identical to AppendWireValue(buf, v).
//
// Splitting is only possible when the payload is already wire byte order in
// memory: uint8/bool slabs always, and the fixed-width numeric slabs on
// little-endian hosts. Otherwise (String/Any arrays, scalars, attached
// payload objects, big-endian hosts) it returns (buf, nil, false) with buf
// unchanged and the caller falls back to the copying encoder.
//
// The returned payload is only valid while the slab backing v is alive and
// unrecycled; callers must hold a reference (e.g. a fetched Array or a view
// token) until the bytes have been consumed.
func SplitWireArray(buf []byte, v Value) ([]byte, []byte, bool) {
	a := v.arr
	if a == nil || v.obj != nil {
		return buf, nil, false
	}
	var payload []byte
	switch a.data.class {
	case classU8:
		payload = a.data.u8
	case classI32:
		if !hostLittleEndian {
			return buf, nil, false
		}
		if n := len(a.data.i32); n > 0 {
			payload = unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(a.data.i32))), 4*n)
		}
	case classI64:
		if !hostLittleEndian {
			return buf, nil, false
		}
		if n := len(a.data.i64); n > 0 {
			payload = unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(a.data.i64))), 8*n)
		}
	case classF64:
		if !hostLittleEndian {
			return buf, nil, false
		}
		if n := len(a.data.f64); n > 0 {
			payload = unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(a.data.f64))), 8*n)
		}
	default:
		return buf, nil, false
	}
	buf = append(buf, wireVersion, byte(v.kind), wireFlagArr)
	buf = binary.AppendUvarint(buf, uint64(len(a.extents)))
	for _, e := range a.extents {
		buf = binary.AppendUvarint(buf, uint64(e))
	}
	return buf, payload, true
}

// DecodeWireValue decodes one wire-format value from the front of data and
// returns it together with the number of bytes consumed. Trailing bytes are
// left for the caller.
func DecodeWireValue(data []byte) (Value, int, error) {
	r := &wireReader{buf: data}
	var v Value
	if err := v.readWire(r); err != nil {
		return Value{}, 0, err
	}
	return v, r.off, nil
}

// GobDecode implements gob.GobDecoder for Value.
func (v *Value) GobDecode(data []byte) error {
	r := &wireReader{buf: data}
	if err := v.readWire(r); err != nil {
		return err
	}
	if r.off != len(data) {
		return fmt.Errorf("field: %d trailing bytes after wire value", len(data)-r.off)
	}
	return nil
}

func (v *Value) readWire(r *wireReader) error {
	ver, err := r.byte()
	if err != nil {
		return err
	}
	if ver != wireVersion {
		return fmt.Errorf("field: unknown wire version %d", ver)
	}
	kb, err := r.byte()
	if err != nil {
		return err
	}
	flags, err := r.byte()
	if err != nil {
		return err
	}
	kind := Kind(kb)
	*v = Value{kind: kind}
	if flags&wireFlagArr != 0 {
		arr, err := readWireArray(r, kind)
		if err != nil {
			return err
		}
		v.arr = arr
		return nil
	}
	switch {
	case kind == String:
		if v.s, err = r.string(); err != nil {
			return err
		}
	case kind == Any || kind == Invalid:
		if v.i, err = r.varint(); err != nil {
			return err
		}
		bits, err := r.uint64()
		if err != nil {
			return err
		}
		v.f = math.Float64frombits(bits)
		if v.s, err = r.string(); err != nil {
			return err
		}
	case kind.Float():
		bits, err := r.uint64()
		if err != nil {
			return err
		}
		v.f = math.Float64frombits(bits)
	default:
		if v.i, err = r.varint(); err != nil {
			return err
		}
	}
	if flags&wireFlagObj != 0 {
		n, err := r.uvarint()
		if err != nil {
			return err
		}
		ob, err := r.take(int(n))
		if err != nil {
			return err
		}
		var box anyBox
		if err := gob.NewDecoder(bytes.NewReader(ob)).Decode(&box); err != nil {
			return fmt.Errorf("field: decoding payload: %w", err)
		}
		v.obj = box.V
	}
	return nil
}

func (r *wireReader) string() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	b, err := r.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func readWireArray(r *wireReader, kind Kind) (*Array, error) {
	rank, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if rank == 0 || rank > 64 {
		return nil, fmt.Errorf("field: decoded array rank %d out of range", rank)
	}
	remaining := len(r.buf) - r.off
	extents := make([]int, rank)
	zero := false
	for d := range extents {
		e, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if e > uint64(remaining) { // every element costs >= 1 byte
			return nil, errWireShort
		}
		extents[d] = int(e)
		if e == 0 {
			zero = true
		}
	}
	n := 1
	if zero {
		n = 0
	} else {
		for _, e := range extents {
			n *= e
			if n > remaining {
				return nil, errWireShort
			}
		}
	}
	cls := classOf(kind)
	a := &Array{kind: kind, extents: extents, data: newSlab(kind, n)}
	switch cls {
	case classU8:
		b, err := r.take(n)
		if err != nil {
			return nil, err
		}
		copy(a.data.u8, b)
	case classI32:
		b, err := r.take(4 * n)
		if err != nil {
			return nil, err
		}
		for i := range a.data.i32 {
			a.data.i32[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
		}
	case classI64:
		b, err := r.take(8 * n)
		if err != nil {
			return nil, err
		}
		for i := range a.data.i64 {
			a.data.i64[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
		}
	case classF64:
		b, err := r.take(8 * n)
		if err != nil {
			return nil, err
		}
		for i := range a.data.f64 {
			a.data.f64[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
		}
	case classStr:
		for i := 0; i < n; i++ {
			l, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if l == 0 {
				continue // unset element
			}
			b, err := r.take(int(l - 1)) // bounds-checked against the buffer
			if err != nil {
				return nil, err
			}
			a.data.off[i] = uint32(len(a.data.str))
			a.data.lens[i] = uint32(l)
			a.data.str = append(a.data.str, b...)
		}
	default:
		for i := range a.data.vs {
			en, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			eb, err := r.take(int(en))
			if err != nil {
				return nil, err
			}
			er := &wireReader{buf: eb}
			if err := a.data.vs[i].readWire(er); err != nil {
				return nil, err
			}
			if er.off != len(eb) {
				return nil, fmt.Errorf("field: trailing bytes in array element")
			}
		}
	}
	return a, nil
}
