package field

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"testing"
	"testing/quick"
)

// Property: scalar values of every numeric kind survive gob round trips.
func TestQuickWireScalars(t *testing.T) {
	f := func(i int64, fl float64, s string, b bool) bool {
		for _, v := range []Value{
			Int64Val(i), Float64Val(fl), StringVal(s), BoolVal(b),
			Int32Val(int32(i)), Uint8Val(uint8(i)), Float32Val(float32(fl)),
		} {
			data, err := v.GobEncode()
			if err != nil {
				return false
			}
			var back Value
			if err := back.GobDecode(data); err != nil {
				return false
			}
			if !back.Equal(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: rank-1 and rank-2 arrays survive gob round trips.
func TestQuickWireArrays(t *testing.T) {
	f := func(vals []int32, w uint8) bool {
		a := ArrayFromInt32(vals)
		data, err := a.GobEncode()
		if err != nil {
			return false
		}
		back := &Array{}
		if err := back.GobDecode(data); err != nil {
			return false
		}
		if !back.Equal(a) {
			return false
		}
		// rank-2
		cols := int(w%4) + 1
		m := NewArray(Float64, 3, cols)
		for i := 0; i < m.Len(); i++ {
			m.SetFlat(Float64Val(float64(i)*0.5), i)
		}
		data, err = m.GobEncode()
		if err != nil {
			return false
		}
		back = &Array{}
		if err := back.GobDecode(data); err != nil {
			return false
		}
		return back.Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWireThroughGobStream(t *testing.T) {
	// Values nested in a struct, as the dist layer sends them.
	type envelope struct {
		V Value
		A *Array
	}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	want := envelope{V: Int32Val(7), A: ArrayFromFloat64([]float64{1.5, 2.5})}
	if err := enc.Encode(want); err != nil {
		t.Fatal(err)
	}
	var got envelope
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !got.V.Equal(want.V) || !got.A.Equal(want.A) {
		t.Errorf("round trip %+v", got)
	}
}

func TestWireDecodeErrors(t *testing.T) {
	var v Value
	if err := v.GobDecode([]byte("garbage")); err == nil {
		t.Error("garbage should fail to decode")
	}
	var a Array
	// A scalar value is not an array.
	data, err := Int32Val(1).GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.GobDecode(data); err == nil {
		t.Error("scalar payload should not decode into an Array")
	}
}

// Property: String arrays — including unset slots and empty strings, which
// the arena codes distinctly — survive round trips through the per-element
// uvarint+bytes payload.
func TestQuickWireStringArrays(t *testing.T) {
	f := func(vals []string, skip uint8) bool {
		n := len(vals) + 1
		a := NewArray(String, n)
		for i, s := range vals {
			if skip > 0 && i%int(skip) == 0 {
				continue // leave unset: lens==0 must survive the round trip
			}
			a.SetFlat(StringVal(s), i)
		}
		a.SetFlat(StringVal(""), n-1) // empty-but-set is distinct from unset
		data, err := a.GobEncode()
		if err != nil {
			return false
		}
		back := &Array{}
		if err := back.GobDecode(data); err != nil {
			return false
		}
		if !back.Equal(a) {
			return false
		}
		// Unset slots must decode as unset (Invalid), not as "".
		return !back.AtFlat(n - 1).Equal(Value{})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Any arrays (the boxed fallback) still round-trip after the arena
// split moved String out of classVal.
func TestQuickWireAnyArrays(t *testing.T) {
	f := func(is []int64) bool {
		a := NewArray(Any, len(is)+1)
		for i, x := range is {
			if i%2 == 0 {
				a.SetFlat(Int64Val(x), i)
			} else {
				a.SetFlat(StringVal(fmt.Sprintf("v%d", x)), i)
			}
		}
		data, err := a.GobEncode()
		if err != nil {
			return false
		}
		back := &Array{}
		if err := back.GobDecode(data); err != nil {
			return false
		}
		return back.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestWireStringArrayTruncation decodes every proper prefix of an encoded
// String array: each must fail cleanly (or decode to a valid value), never
// panic or over-read.
func TestWireStringArrayTruncation(t *testing.T) {
	a := NewArray(String, 8)
	for i := 0; i < 8; i += 2 { // every other slot unset
		a.SetFlat(StringVal(fmt.Sprintf("element-%d-payload", i)), i)
	}
	data, err := a.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		var v Value
		if err := v.GobDecode(data[:cut]); err == nil {
			t.Fatalf("decode of %d/%d-byte prefix succeeded", cut, len(data))
		}
	}
}

// TestWireStringArrayCorruption flips each byte of an encoded String array;
// decode must never panic, and huge corrupted lengths must be rejected by
// the bounds checks rather than trigger giant allocations.
func TestWireStringArrayCorruption(t *testing.T) {
	a := NewArray(String, 6)
	for i := 0; i < 6; i++ {
		a.SetFlat(StringVal(fmt.Sprintf("row-%d", i)), i)
	}
	data, err := a.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	mut := make([]byte, len(data))
	for pos := 0; pos < len(data); pos++ {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			copy(mut, data)
			mut[pos] ^= flip
			var v Value
			// Error or success are both fine; panics and over-reads are not.
			_ = v.GobDecode(mut)
		}
	}
}

// TestSplitWireArrayEquivalence: for every splittable class, header+payload
// must be bit-identical to the copying encoder; reference classes must
// refuse the split with buf untouched.
func TestSplitWireArrayEquivalence(t *testing.T) {
	arrays := []*Array{
		ArrayFromUint8([]uint8{1, 2, 3, 4, 5}),
		ArrayFromInt32([]int32{-1, 1 << 20, 7}),
		ArrayFromFloat64([]float64{3.14, -2.5, 0}),
		NewArray(Int64, 4),
		NewArray(Bool, 3),
		NewArray(Float64, 0), // empty payload
	}
	for _, a := range arrays {
		v := ArrayVal(a)
		want, err := AppendWireValue(nil, v)
		if err != nil {
			t.Fatal(err)
		}
		prefix := []byte{0xAA, 0xBB}
		hdr, payload, ok := SplitWireArray(prefix, v)
		if !ok {
			t.Fatalf("%v array refused the split", a.Kind())
		}
		got := append(append([]byte(nil), hdr[len(prefix):]...), payload...)
		if !bytes.Equal(got, want) {
			t.Fatalf("%v array split differs:\nsplit %x\ncopy  %x", a.Kind(), got, want)
		}
	}
	for _, v := range []Value{
		ArrayVal(func() *Array { a := NewArray(String, 3); a.SetFlat(StringVal("x"), 0); return a }()),
		ArrayVal(NewArray(Any, 2)),
		Int32Val(7), // scalar
	} {
		buf := []byte{1, 2, 3}
		out, payload, ok := SplitWireArray(buf, v)
		if ok || payload != nil || len(out) != len(buf) {
			t.Fatalf("%v accepted the split (ok=%v payload=%v out=%x)", v.Kind(), ok, payload, out)
		}
	}
}

func TestWireRegisteredPayload(t *testing.T) {
	type blob struct{ X int }
	RegisterPayload(blob{})
	v := AnyVal(blob{42})
	data, err := v.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var back Value
	if err := back.GobDecode(data); err != nil {
		t.Fatal(err)
	}
	if back.Obj().(blob).X != 42 {
		t.Errorf("payload %v", back.Obj())
	}
}
