package field

import (
	"bytes"
	"encoding/gob"
	"testing"
	"testing/quick"
)

// Property: scalar values of every numeric kind survive gob round trips.
func TestQuickWireScalars(t *testing.T) {
	f := func(i int64, fl float64, s string, b bool) bool {
		for _, v := range []Value{
			Int64Val(i), Float64Val(fl), StringVal(s), BoolVal(b),
			Int32Val(int32(i)), Uint8Val(uint8(i)), Float32Val(float32(fl)),
		} {
			data, err := v.GobEncode()
			if err != nil {
				return false
			}
			var back Value
			if err := back.GobDecode(data); err != nil {
				return false
			}
			if !back.Equal(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: rank-1 and rank-2 arrays survive gob round trips.
func TestQuickWireArrays(t *testing.T) {
	f := func(vals []int32, w uint8) bool {
		a := ArrayFromInt32(vals)
		data, err := a.GobEncode()
		if err != nil {
			return false
		}
		back := &Array{}
		if err := back.GobDecode(data); err != nil {
			return false
		}
		if !back.Equal(a) {
			return false
		}
		// rank-2
		cols := int(w%4) + 1
		m := NewArray(Float64, 3, cols)
		for i := 0; i < m.Len(); i++ {
			m.SetFlat(Float64Val(float64(i)*0.5), i)
		}
		data, err = m.GobEncode()
		if err != nil {
			return false
		}
		back = &Array{}
		if err := back.GobDecode(data); err != nil {
			return false
		}
		return back.Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWireThroughGobStream(t *testing.T) {
	// Values nested in a struct, as the dist layer sends them.
	type envelope struct {
		V Value
		A *Array
	}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	want := envelope{V: Int32Val(7), A: ArrayFromFloat64([]float64{1.5, 2.5})}
	if err := enc.Encode(want); err != nil {
		t.Fatal(err)
	}
	var got envelope
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !got.V.Equal(want.V) || !got.A.Equal(want.A) {
		t.Errorf("round trip %+v", got)
	}
}

func TestWireDecodeErrors(t *testing.T) {
	var v Value
	if err := v.GobDecode([]byte("garbage")); err == nil {
		t.Error("garbage should fail to decode")
	}
	var a Array
	// A scalar value is not an array.
	data, err := Int32Val(1).GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.GobDecode(data); err == nil {
		t.Error("scalar payload should not decode into an Array")
	}
}

func TestWireRegisteredPayload(t *testing.T) {
	type blob struct{ X int }
	RegisterPayload(blob{})
	v := AnyVal(blob{42})
	data, err := v.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var back Value
	if err := back.GobDecode(data); err != nil {
		t.Fatal(err)
	}
	if back.Obj().(blob).X != 42 {
		t.Errorf("payload %v", back.Obj())
	}
}
