// Package graph derives P2G's dependency graphs from a program: the
// intermediate implicit static dependency graph (paper figure 2, kernels and
// fields as vertices), the final implicit static dependency graph (figure 3,
// field vertices merged away, kernel-to-kernel edges), and the dynamically
// created directed acyclic dependency graph (DC-DAG, figure 4) obtained by
// unrolling ages.
//
// The final graph is the input to the high-level scheduler's partitioning
// (package sched); the DC-DAG is what the low-level scheduler effectively
// executes, and what tools print for offline analysis.
package graph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// VertexKind discriminates intermediate-graph vertices.
type VertexKind uint8

// Vertex kinds of the intermediate graph.
const (
	KernelVertex VertexKind = iota
	FieldVertex
)

// Vertex is a node of the intermediate graph.
type Vertex struct {
	Name string
	Kind VertexKind
}

// Arc is a directed edge of the intermediate graph: kernel→field for store
// statements, field→kernel for fetch statements. Label carries the age
// expression in kernel-language syntax.
type Arc struct {
	From, To string
	Label    string
}

// Intermediate is the implicit static dependency graph of figure 2.
type Intermediate struct {
	Vertices []Vertex
	Arcs     []Arc
}

// BuildIntermediate derives the intermediate graph from the program's fetch
// and store statements.
func BuildIntermediate(p *core.Program) *Intermediate {
	g := &Intermediate{}
	for _, k := range p.Kernels {
		g.Vertices = append(g.Vertices, Vertex{Name: k.Name, Kind: KernelVertex})
	}
	for _, f := range p.Fields {
		g.Vertices = append(g.Vertices, Vertex{Name: f.Name, Kind: FieldVertex})
	}
	for _, k := range p.Kernels {
		for _, s := range k.Stores {
			g.Arcs = append(g.Arcs, Arc{From: k.Name, To: s.Field, Label: s.Age.String()})
		}
		for _, f := range k.Fetches {
			g.Arcs = append(g.Arcs, Arc{From: f.Field, To: k.Name, Label: f.Age.String()})
		}
	}
	return g
}

// DOT renders the intermediate graph in Graphviz format; field vertices are
// drawn as boxes, kernels as ellipses.
func (g *Intermediate) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", name)
	for _, v := range g.Vertices {
		shape := "ellipse"
		if v.Kind == FieldVertex {
			shape = "box"
		}
		fmt.Fprintf(&b, "  %q [shape=%s];\n", v.Name, shape)
	}
	for _, a := range g.Arcs {
		fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", a.From, a.To, a.Label)
	}
	b.WriteString("}\n")
	return b.String()
}

// Edge is a kernel-to-kernel edge of the final graph: From produced Field,
// To consumes it. AgeDelta is the number of ages the data crosses (consumer
// age minus producer age); a positive delta is an aging edge, which is what
// lets cyclic programs unroll into a DAG. Weight carries communication volume
// for partitioning (instances observed, or 1 before instrumentation).
//
// Progressive marks a same-age edge whose producing store coordinates lead
// the consuming fetch coordinates by a strictly positive index offset in some
// dimension (and never trail): instance-level dependencies then always point
// "forward" through the index space, so the edge cannot deadlock even inside
// a cycle — the wavefront pattern of H.264 intra prediction (§III).
type Edge struct {
	From, To    string
	Field       string
	AgeDelta    int
	Abs         bool // consumer uses an absolute-age fetch (data crosses all ages)
	Progressive bool
	Weight      float64
}

// Node is a kernel node of the final graph; Weight carries computational cost
// for partitioning (kernel time observed, or 1 before instrumentation).
type Node struct {
	Name   string
	Weight float64
}

// Final is the final implicit static dependency graph of figure 3: field
// vertices are merged away, leaving weighted kernel-to-kernel edges.
type Final struct {
	Nodes []Node
	Edges []Edge
}

// BuildFinal derives the final graph by merging every producer→field→consumer
// path of the intermediate graph into a single edge.
func BuildFinal(p *core.Program) *Final {
	g := &Final{}
	for _, k := range p.Kernels {
		g.Nodes = append(g.Nodes, Node{Name: k.Name, Weight: 1})
	}
	for _, f := range p.Fields {
		for _, pe := range p.Producers(f.Name) {
			for _, ce := range p.Consumers(f.Name) {
				e := Edge{From: pe.Kernel.Name, To: ce.Kernel.Name, Field: f.Name, Weight: 1}
				switch {
				case pe.Store.Age.HasVar && ce.Fetch.Age.HasVar:
					e.AgeDelta = pe.Store.Age.Offset - ce.Fetch.Age.Offset
				case !ce.Fetch.Age.HasVar && pe.Store.Age.HasVar,
					!pe.Store.Age.HasVar && ce.Fetch.Age.HasVar:
					e.Abs = true
				default:
					// Both absolute: connected only if the same age.
					if pe.Store.Age.Offset != ce.Fetch.Age.Offset {
						continue
					}
				}
				e.Progressive = progressive(pe.Store.Index, ce.Fetch.Index)
				g.Edges = append(g.Edges, e)
			}
		}
	}
	return g
}

// Node returns the named node, or nil.
func (g *Final) Node(name string) *Node {
	for i := range g.Nodes {
		if g.Nodes[i].Name == name {
			return &g.Nodes[i]
		}
	}
	return nil
}

// SetNodeWeights installs computational weights (e.g. total kernel time per
// kernel from instrumentation). Unknown names are ignored.
func (g *Final) SetNodeWeights(w map[string]float64) {
	for i := range g.Nodes {
		if v, ok := w[g.Nodes[i].Name]; ok {
			g.Nodes[i].Weight = v
		}
	}
}

// SetEdgeWeights installs communication weights keyed by "from→to:field".
func (g *Final) SetEdgeWeights(w map[string]float64) {
	for i := range g.Edges {
		if v, ok := w[g.Edges[i].Key()]; ok {
			g.Edges[i].Weight = v
		}
	}
}

// Key identifies an edge for weighting: "from→to:field".
func (e Edge) Key() string { return e.From + "→" + e.To + ":" + e.Field }

// DOT renders the final graph.
func (g *Final) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", name)
	for _, n := range g.Nodes {
		fmt.Fprintf(&b, "  %q [label=\"%s (%.3g)\"];\n", n.Name, n.Name, n.Weight)
	}
	for _, e := range g.Edges {
		lbl := e.Field
		if e.Abs {
			lbl += " (abs)"
		} else if e.AgeDelta != 0 {
			lbl += fmt.Sprintf(" (+%d)", e.AgeDelta)
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", e.From, e.To, lbl)
	}
	b.WriteString("}\n")
	return b.String()
}

// progressive reports whether a same-age store→fetch pair advances strictly
// through the index space: the store's variable coordinates lead the fetch's
// by a non-negative offset in every dimension and a positive one somewhere.
// Such dependencies order instances into a wavefront and cannot deadlock.
func progressive(store, fetch []core.IndexSpec) bool {
	if store == nil || fetch == nil || len(store) != len(fetch) {
		return false
	}
	leads := false
	for d := range store {
		s, f := store[d], fetch[d]
		if s.Kind != core.IndexVarKind || f.Kind != core.IndexVarKind || s.Var != f.Var {
			// Literal or slab coordinates give no ordering information;
			// require variable-to-variable comparison on this dimension.
			if s.Kind == core.IndexLitKind && f.Kind == core.IndexLitKind && s.Lit == f.Lit {
				continue // same fixed coordinate: neutral
			}
			return false
		}
		switch {
		case s.Off > f.Off:
			leads = true
		case s.Off < f.Off:
			return false
		}
	}
	return leads
}

// CheckSchedulable verifies the final graph has no zero-delay cycle: a cycle
// whose edges are all within a single age can never be satisfied (each kernel
// would wait on the other within the same generation). Cycles that cross an
// age boundary (positive total delta, like mul2/plus5) are fine — aging
// unrolls them — as are progressive (wavefront-ordered) edges.
func (g *Final) CheckSchedulable() error {
	// DFS over edges with AgeDelta == 0, not Abs and not Progressive.
	adj := map[string][]string{}
	for _, e := range g.Edges {
		if e.AgeDelta == 0 && !e.Abs && !e.Progressive {
			adj[e.From] = append(adj[e.From], e.To)
		}
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var cycle []string
	var dfs func(string) bool
	dfs = func(u string) bool {
		color[u] = gray
		for _, v := range adj[u] {
			switch color[v] {
			case gray:
				cycle = append(cycle, v, u)
				return true
			case white:
				if dfs(v) {
					cycle = append(cycle, u)
					return true
				}
			}
		}
		color[u] = black
		return false
	}
	for _, n := range g.Nodes {
		if color[n.Name] == white && dfs(n.Name) {
			return fmt.Errorf("graph: zero-delay cycle through %s: the program can never satisfy its own dependencies within one age", strings.Join(cycle, " ← "))
		}
	}
	return nil
}

// DCNode is one vertex of the unrolled DC-DAG: a kernel at a concrete age.
type DCNode struct {
	Kernel string
	Age    int
}

// DCDAG is the dynamically created directed acyclic dependency graph of
// figure 4: the final graph unrolled over a bounded range of ages.
type DCDAG struct {
	Nodes []DCNode
	Edges [][2]int // indices into Nodes
}

// Unroll expands the final graph over ages 0..maxAge. Edges whose target age
// falls outside the range are dropped; absolute-age edges fan out from the
// producer's age to every age.
func Unroll(g *Final, maxAge int) *DCDAG {
	d := &DCDAG{}
	idx := map[DCNode]int{}
	node := func(k string, a int) int {
		n := DCNode{Kernel: k, Age: a}
		if i, ok := idx[n]; ok {
			return i
		}
		idx[n] = len(d.Nodes)
		d.Nodes = append(d.Nodes, n)
		return len(d.Nodes) - 1
	}
	for _, n := range g.Nodes {
		for a := 0; a <= maxAge; a++ {
			node(n.Name, a)
		}
	}
	for _, e := range g.Edges {
		for a := 0; a <= maxAge; a++ {
			if e.Abs {
				for b := 0; b <= maxAge; b++ {
					d.Edges = append(d.Edges, [2]int{node(e.From, a), node(e.To, b)})
				}
				continue
			}
			ta := a + e.AgeDelta
			if ta >= 0 && ta <= maxAge {
				d.Edges = append(d.Edges, [2]int{node(e.From, a), node(e.To, ta)})
			}
		}
	}
	return d
}

// TopoOrder returns a topological order of the DC-DAG, or an error if the
// unrolled graph still contains a cycle (which CheckSchedulable would have
// flagged on the final graph).
func (d *DCDAG) TopoOrder() ([]DCNode, error) {
	indeg := make([]int, len(d.Nodes))
	adj := make([][]int, len(d.Nodes))
	for _, e := range d.Edges {
		if e[0] == e[1] {
			return nil, fmt.Errorf("graph: self-dependent node %v in DC-DAG", d.Nodes[e[0]])
		}
		adj[e[0]] = append(adj[e[0]], e[1])
		indeg[e[1]]++
	}
	var queue []int
	for i, deg := range indeg {
		if deg == 0 {
			queue = append(queue, i)
		}
	}
	// Deterministic order: by (age, kernel) among available nodes.
	less := func(i, j int) bool {
		a, b := d.Nodes[queue[i]], d.Nodes[queue[j]]
		if a.Age != b.Age {
			return a.Age < b.Age
		}
		return a.Kernel < b.Kernel
	}
	var order []DCNode
	for len(queue) > 0 {
		sort.Slice(queue, less)
		u := queue[0]
		queue = queue[1:]
		order = append(order, d.Nodes[u])
		for _, v := range adj[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(order) != len(d.Nodes) {
		return nil, fmt.Errorf("graph: DC-DAG contains a cycle (%d of %d nodes ordered)", len(order), len(d.Nodes))
	}
	return order, nil
}

// DOT renders the DC-DAG, grouping nodes by age like figure 4.
func (d *DCDAG) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n", name)
	byAge := map[int][]DCNode{}
	maxAge := 0
	for _, n := range d.Nodes {
		byAge[n.Age] = append(byAge[n.Age], n)
		if n.Age > maxAge {
			maxAge = n.Age
		}
	}
	for a := 0; a <= maxAge; a++ {
		fmt.Fprintf(&b, "  subgraph cluster_age%d {\n    label=\"Age=%d\";\n", a, a)
		ns := byAge[a]
		sort.Slice(ns, func(i, j int) bool { return ns[i].Kernel < ns[j].Kernel })
		for _, n := range ns {
			fmt.Fprintf(&b, "    \"%s@%d\";\n", n.Kernel, n.Age)
		}
		b.WriteString("  }\n")
	}
	for _, e := range d.Edges {
		f, t := d.Nodes[e[0]], d.Nodes[e[1]]
		fmt.Fprintf(&b, "  \"%s@%d\" -> \"%s@%d\";\n", f.Kernel, f.Age, t.Kernel, t.Age)
	}
	b.WriteString("}\n")
	return b.String()
}
