package graph

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/field"
)

// fig5 builds the structure of the paper's figure 5 program (bodies omitted;
// graphs only depend on declarations).
func fig5(t *testing.T) *core.Program {
	t.Helper()
	b := core.NewBuilder("mulsum")
	b.Field("m_data", field.Int32, 1, true)
	b.Field("p_data", field.Int32, 1, true)
	b.Kernel("init").
		Local("values", field.Int32, 1).
		StoreAll("m_data", core.AgeAt(0), "values").Body(nil)
	b.Kernel("mul2").Age("a").Index("x").
		Local("value", field.Int32, 0).
		Fetch("value", "m_data", core.AgeVar(0), core.Idx("x")).
		Store("p_data", core.AgeVar(0), []core.IndexSpec{core.Idx("x")}, "value").Body(nil)
	b.Kernel("plus5").Age("a").Index("x").
		Local("value", field.Int32, 0).
		Fetch("value", "p_data", core.AgeVar(0), core.Idx("x")).
		Store("m_data", core.AgeVar(1), []core.IndexSpec{core.Idx("x")}, "value").Body(nil)
	b.Kernel("print").Age("a").
		Local("m", field.Int32, 1).Local("p", field.Int32, 1).
		FetchAll("m", "m_data", core.AgeVar(0)).
		FetchAll("p", "p_data", core.AgeVar(0)).Body(nil)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestIntermediateGraphFig2(t *testing.T) {
	g := BuildIntermediate(fig5(t))
	if len(g.Vertices) != 6 { // 4 kernels + 2 fields
		t.Fatalf("vertices = %d, want 6", len(g.Vertices))
	}
	kinds := map[string]VertexKind{}
	for _, v := range g.Vertices {
		kinds[v.Name] = v.Kind
	}
	if kinds["m_data"] != FieldVertex || kinds["mul2"] != KernelVertex {
		t.Error("vertex kinds")
	}
	// Arcs: init→m_data, mul2→p_data, plus5→m_data (stores);
	// m_data→mul2, p_data→plus5, m_data→print, p_data→print (fetches).
	if len(g.Arcs) != 7 {
		t.Fatalf("arcs = %d, want 7", len(g.Arcs))
	}
	has := func(from, to string) bool {
		for _, a := range g.Arcs {
			if a.From == from && a.To == to {
				return true
			}
		}
		return false
	}
	for _, pair := range [][2]string{
		{"init", "m_data"}, {"mul2", "p_data"}, {"plus5", "m_data"},
		{"m_data", "mul2"}, {"p_data", "plus5"}, {"m_data", "print"}, {"p_data", "print"},
	} {
		if !has(pair[0], pair[1]) {
			t.Errorf("missing arc %s -> %s", pair[0], pair[1])
		}
	}
}

func TestFinalGraphFig3(t *testing.T) {
	g := BuildFinal(fig5(t))
	if len(g.Nodes) != 4 {
		t.Fatalf("nodes = %d", len(g.Nodes))
	}
	type key struct {
		from, to string
		delta    int
	}
	got := map[key]bool{}
	for _, e := range g.Edges {
		got[key{e.From, e.To, e.AgeDelta}] = true
	}
	// init→mul2 and init→print via m_data (abs edges carry delta 0 + Abs flag,
	// tested below); mul2→plus5 delta 0; plus5→mul2 delta +1 (the aging edge
	// that unrolls the cycle); mul2→print delta 0; plus5→print delta +1.
	for _, k := range []key{
		{"mul2", "plus5", 0}, {"plus5", "mul2", 1},
		{"mul2", "print", 0}, {"plus5", "print", 1},
	} {
		if !got[k] {
			t.Errorf("missing final edge %+v (have %v)", k, got)
		}
	}
	abs := 0
	for _, e := range g.Edges {
		if e.Abs {
			abs++
			if e.From != "init" {
				t.Errorf("unexpected abs edge %+v", e)
			}
		}
	}
	if abs != 2 { // init's absolute store reaches mul2 and print
		t.Errorf("abs edges = %d, want 2", abs)
	}
	if err := g.CheckSchedulable(); err != nil {
		t.Errorf("fig5 should be schedulable: %v", err)
	}
}

func TestFinalGraphWeights(t *testing.T) {
	g := BuildFinal(fig5(t))
	g.SetNodeWeights(map[string]float64{"mul2": 42, "zzz": 1})
	if g.Node("mul2").Weight != 42 {
		t.Error("node weight not applied")
	}
	if g.Node("zzz") != nil {
		t.Error("unknown node lookup")
	}
	var k string
	for _, e := range g.Edges {
		if e.From == "mul2" && e.To == "plus5" {
			k = e.Key()
		}
	}
	g.SetEdgeWeights(map[string]float64{k: 7})
	found := false
	for _, e := range g.Edges {
		if e.Key() == k && e.Weight == 7 {
			found = true
		}
	}
	if !found {
		t.Error("edge weight not applied")
	}
}

func TestZeroDelayCycleDetected(t *testing.T) {
	b := core.NewBuilder("bad")
	b.Field("f", field.Int32, 1, true)
	b.Field("g", field.Int32, 1, true)
	b.Kernel("A").Age("a").Index("x").
		Local("v", field.Int32, 0).
		Fetch("v", "g", core.AgeVar(0), core.Idx("x")).
		Store("f", core.AgeVar(0), []core.IndexSpec{core.Idx("x")}, "v").Body(nil)
	b.Kernel("B").Age("a").Index("x").
		Local("v", field.Int32, 0).
		Fetch("v", "f", core.AgeVar(0), core.Idx("x")).
		Store("g", core.AgeVar(0), []core.IndexSpec{core.Idx("x")}, "v").Body(nil)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := BuildFinal(p)
	if err := g.CheckSchedulable(); err == nil {
		t.Fatal("zero-delay cycle should be rejected")
	} else if !strings.Contains(err.Error(), "zero-delay cycle") {
		t.Fatalf("error = %v", err)
	}
}

func TestUnrollDCDAGFig4(t *testing.T) {
	g := BuildFinal(fig5(t))
	d := Unroll(g, 3)
	if len(d.Nodes) != 16 { // 4 kernels x 4 ages
		t.Fatalf("DC-DAG nodes = %d, want 16", len(d.Nodes))
	}
	order, err := d.TopoOrder()
	if err != nil {
		t.Fatalf("unrolled cyclic program must be acyclic: %v", err)
	}
	pos := map[DCNode]int{}
	for i, n := range order {
		pos[n] = i
	}
	// Dependencies hold in the order: mul2@a before plus5@a before mul2@a+1.
	for a := 0; a < 3; a++ {
		if pos[DCNode{"mul2", a}] > pos[DCNode{"plus5", a}] {
			t.Errorf("mul2@%d should precede plus5@%d", a, a)
		}
		if pos[DCNode{"plus5", a}] > pos[DCNode{"mul2", a + 1}] {
			t.Errorf("plus5@%d should precede mul2@%d", a, a+1)
		}
	}
}

func TestDOTOutputs(t *testing.T) {
	p := fig5(t)
	ig := BuildIntermediate(p).DOT("mulsum")
	for _, want := range []string{"digraph", "m_data", "shape=box", "mul2"} {
		if !strings.Contains(ig, want) {
			t.Errorf("intermediate DOT missing %q", want)
		}
	}
	fg := BuildFinal(p).DOT("mulsum")
	for _, want := range []string{"digraph", "mul2", "p_data"} {
		if !strings.Contains(fg, want) {
			t.Errorf("final DOT missing %q", want)
		}
	}
	dd := Unroll(BuildFinal(p), 2).DOT("mulsum")
	for _, want := range []string{"cluster_age0", "cluster_age2", "mul2@1"} {
		if !strings.Contains(dd, want) {
			t.Errorf("DC-DAG DOT missing %q", want)
		}
	}
}

func TestTopoOrderDetectsSelfLoop(t *testing.T) {
	d := &DCDAG{Nodes: []DCNode{{"A", 0}}, Edges: [][2]int{{0, 0}}}
	if _, err := d.TopoOrder(); err == nil {
		t.Error("self loop should error")
	}
}

func TestProgressiveEdges(t *testing.T) {
	// A wavefront kernel: fetches pred(a)[x][y+1] and pred(a)[x+1][y],
	// stores pred(a)[x+1][y+1] — a same-age self-cycle that is nonetheless
	// schedulable because every dependency advances through the index
	// space.
	b := core.NewBuilder("wf")
	b.Field("in", field.Int32, 2, true)
	b.Field("pred", field.Int32, 2, true)
	b.Kernel("predict").Age("a").Index("x", "y").
		Local("c", field.Int32, 0).
		Local("l", field.Int32, 0).
		Local("t", field.Int32, 0).
		Local("r", field.Int32, 0).
		Fetch("c", "in", core.AgeVar(0), core.Idx("x"), core.Idx("y")).
		Fetch("t", "pred", core.AgeVar(0), core.Idx("x"), core.IdxOff("y", 1)).
		Fetch("l", "pred", core.AgeVar(0), core.IdxOff("x", 1), core.Idx("y")).
		Store("pred", core.AgeVar(0), []core.IndexSpec{core.IdxOff("x", 1), core.IdxOff("y", 1)}, "r").
		Body(nil)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := BuildFinal(p)
	prog := 0
	for _, e := range g.Edges {
		if e.From == "predict" && e.To == "predict" {
			if !e.Progressive {
				t.Errorf("self edge %+v should be progressive", e)
			}
			prog++
		}
	}
	if prog != 2 {
		t.Errorf("expected 2 progressive self edges, got %d", prog)
	}
	if err := g.CheckSchedulable(); err != nil {
		t.Errorf("wavefront should be schedulable: %v", err)
	}
}

func TestNonProgressiveCycleStillRejected(t *testing.T) {
	// A same-age self-cycle with equal coordinates cannot make progress.
	b := core.NewBuilder("bad")
	b.Field("f", field.Int32, 1, true)
	b.Field("g", field.Int32, 1, true)
	b.Kernel("k").Age("a").Index("x").
		Local("v", field.Int32, 0).
		Local("w", field.Int32, 0).
		Fetch("v", "f", core.AgeVar(0), core.Idx("x")).
		Fetch("w", "g", core.AgeVar(0), core.Idx("x")).
		Store("g", core.AgeVar(0), []core.IndexSpec{core.Idx("x")}, "w").
		Body(nil)
	b.Kernel("src").
		Local("v", field.Int32, 1).
		StoreAll("f", core.AgeAt(0), "v").Body(nil)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := BuildFinal(p).CheckSchedulable(); err == nil {
		t.Error("same-coordinate self cycle must be rejected")
	}
	// Trailing offsets (store behind the fetch) are also rejected.
	if progressive(
		[]core.IndexSpec{core.Idx("x")},
		[]core.IndexSpec{core.IdxOff("x", 1)},
	) {
		t.Error("store trailing fetch is not progressive")
	}
	if progressive(nil, nil) || progressive([]core.IndexSpec{core.Lit(0)}, []core.IndexSpec{core.Lit(1)}) {
		t.Error("degenerate specs are not progressive")
	}
}
