// Package kmeans implements the K-means clustering substrate for the P2G
// evaluation workload (paper §VII-A): deterministic dataset generation, the
// assign and refine steps used by the P2G kernels, and a sequential baseline
// the dataflow version is verified against.
package kmeans

import (
	"fmt"
	"math"
)

// Point is a point in d-dimensional Euclidean space.
type Point []float64

// Clone returns a copy of the point.
func (p Point) Clone() Point { return append(Point(nil), p...) }

// SqDist returns the squared Euclidean distance between two points.
func SqDist(a, b Point) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// splitmix64 is a small deterministic PRNG used for dataset generation, so
// datasets are identical across platforms and runs.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

func (s *splitmix64) float() float64 { return float64(s.next()>>11) / (1 << 53) }

// Generate produces n points of the given dimensionality drawn around
// `clusters` well-separated centers — the "randomly generated data set" of
// §VIII-B, but reproducible. The same seed yields the same dataset.
func Generate(n, dim, clusters int, seed uint64) []Point {
	if n <= 0 || dim <= 0 || clusters <= 0 {
		panic(fmt.Sprintf("kmeans: invalid Generate(%d, %d, %d)", n, dim, clusters))
	}
	rng := splitmix64(seed)
	centers := make([]Point, clusters)
	for c := range centers {
		centers[c] = make(Point, dim)
		for d := range centers[c] {
			centers[c][d] = rng.float() * 100
		}
	}
	pts := make([]Point, n)
	for i := range pts {
		c := centers[rng.next()%uint64(clusters)]
		p := make(Point, dim)
		for d := range p {
			// Uniform jitter around the center; spread 6 keeps clusters
			// distinguishable without being trivially separable.
			p[d] = c[d] + (rng.float()-0.5)*6
		}
		pts[i] = p
	}
	return pts
}

// InitialCentroids selects k points of the dataset as starting centroids.
// The paper selects k datapoints "randomly"; for reproducibility this picks
// a deterministic spread (every n/k-th point).
func InitialCentroids(points []Point, k int) []Point {
	if k <= 0 || k > len(points) {
		panic(fmt.Sprintf("kmeans: k=%d for %d points", k, len(points)))
	}
	out := make([]Point, k)
	step := len(points) / k
	for i := 0; i < k; i++ {
		out[i] = points[i*step].Clone()
	}
	return out
}

// Assign returns the index of the centroid nearest to p — the body of the
// paper's per-datapoint assign kernel.
func Assign(p Point, centroids []Point) int {
	best, bestD := 0, math.Inf(1)
	for c, cent := range centroids {
		if d := SqDist(p, cent); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// AssignFlat is Assign over flat row-major storage: p is one point of `dim`
// coordinates and centroids holds k*dim values, row per centroid. The
// arithmetic (accumulation order, comparison) is identical to Assign, so the
// two produce bit-identical results.
func AssignFlat(p []float64, centroids []float64, dim int) int {
	best, bestD := 0, math.Inf(1)
	for c := 0; c*dim+dim <= len(centroids); c++ {
		row := centroids[c*dim : c*dim+dim]
		var s float64
		for i, cv := range row {
			d := p[i] - cv
			s += d * d
		}
		if s < bestD {
			best, bestD = c, s
		}
	}
	return best
}

// RefineFlat is Refine over flat row-major storage: points holds n*dim values,
// membership one cluster id per point, prev and out one centroid row of `dim`
// values each. out receives the new centroid; the arithmetic is identical to
// Refine, so results match bit for bit.
func RefineFlat(c int, points []float64, dim int, membership []int32, prev, out []float64) {
	for d := range out {
		out[d] = 0
	}
	n := 0
	for i, m := range membership {
		if int(m) != c {
			continue
		}
		row := points[i*dim : i*dim+dim]
		for d := 0; d < dim; d++ {
			out[d] += row[d]
		}
		n++
	}
	if n == 0 {
		copy(out, prev)
		return
	}
	for d := range out {
		out[d] /= float64(n)
	}
}

// Refine returns the new centroid for cluster c: the mean of the member
// points, or the previous centroid if the cluster is empty — the body of the
// paper's per-cluster refine kernel.
func Refine(c int, points []Point, membership []int, prev Point) Point {
	dim := len(prev)
	sum := make(Point, dim)
	n := 0
	for i, m := range membership {
		if m != c {
			continue
		}
		for d := 0; d < dim; d++ {
			sum[d] += points[i][d]
		}
		n++
	}
	if n == 0 {
		return prev.Clone()
	}
	for d := range sum {
		sum[d] /= float64(n)
	}
	return sum
}

// Result holds the output of a K-means run.
type Result struct {
	Centroids  []Point
	Membership []int
	// Shifts[i] is the total centroid movement in iteration i; a shift of
	// zero means the algorithm converged at that iteration.
	Shifts []float64
}

// Sequential runs iters iterations of Lloyd's algorithm single-threaded —
// the baseline the P2G version is checked against (identical arithmetic, so
// results must match bit for bit).
func Sequential(points []Point, k, iters int) *Result {
	cents := InitialCentroids(points, k)
	res := &Result{Membership: make([]int, len(points))}
	for it := 0; it < iters; it++ {
		for i, p := range points {
			res.Membership[i] = Assign(p, cents)
		}
		next := make([]Point, k)
		var shift float64
		for c := 0; c < k; c++ {
			next[c] = Refine(c, points, res.Membership, cents[c])
			shift += math.Sqrt(SqDist(next[c], cents[c]))
		}
		cents = next
		res.Shifts = append(res.Shifts, shift)
	}
	res.Centroids = cents
	return res
}

// Inertia returns the sum of squared distances from each point to its
// assigned centroid — the quantity K-means minimizes; used to verify that
// iterations improve the clustering.
func Inertia(points []Point, centroids []Point, membership []int) float64 {
	var s float64
	for i, p := range points {
		s += SqDist(p, centroids[membership[i]])
	}
	return s
}
