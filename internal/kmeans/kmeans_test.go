package kmeans

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(100, 2, 5, 42)
	b := Generate(100, 2, 5, 42)
	for i := range a {
		if SqDist(a[i], b[i]) != 0 {
			t.Fatalf("point %d differs between equal seeds", i)
		}
	}
	c := Generate(100, 2, 5, 43)
	same := true
	for i := range a {
		if SqDist(a[i], c[i]) != 0 {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical datasets")
	}
}

func TestGenerateShape(t *testing.T) {
	pts := Generate(50, 3, 4, 1)
	if len(pts) != 50 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		if len(p) != 3 {
			t.Fatal("dimensionality")
		}
	}
	for _, bad := range [][3]int{{0, 2, 2}, {2, 0, 2}, {2, 2, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Generate%v should panic", bad)
				}
			}()
			Generate(bad[0], bad[1], bad[2], 0)
		}()
	}
}

func TestInitialCentroids(t *testing.T) {
	pts := Generate(100, 2, 3, 7)
	cents := InitialCentroids(pts, 10)
	if len(cents) != 10 {
		t.Fatal("centroid count")
	}
	// Centroids are copies, not aliases.
	cents[0][0] += 1000
	if pts[0][0] == cents[0][0] {
		t.Error("centroid aliases dataset")
	}
	defer func() {
		if recover() == nil {
			t.Error("k > n should panic")
		}
	}()
	InitialCentroids(pts[:5], 10)
}

// Property: Assign returns an index whose distance is minimal.
func TestQuickAssignIsNearest(t *testing.T) {
	f := func(seed uint64) bool {
		rngPts := Generate(20, 2, 3, seed)
		cents := rngPts[:5]
		p := rngPts[10]
		got := Assign(p, cents)
		for c := range cents {
			if SqDist(p, cents[c]) < SqDist(p, cents[got]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRefineMeanAndEmpty(t *testing.T) {
	pts := []Point{{0, 0}, {2, 0}, {0, 2}, {10, 10}}
	membership := []int{0, 0, 0, 1}
	c0 := Refine(0, pts, membership, Point{9, 9})
	if c0[0] != 2.0/3 || c0[1] != 2.0/3 {
		t.Errorf("refine mean = %v", c0)
	}
	// Empty cluster keeps the previous centroid.
	prev := Point{5, 5}
	c2 := Refine(2, pts, membership, prev)
	if c2[0] != 5 || c2[1] != 5 {
		t.Errorf("empty cluster centroid = %v", c2)
	}
	c2[0] = 99
	if prev[0] == 99 {
		t.Error("refine must copy the previous centroid, not alias it")
	}
}

func TestSequentialConvergesOnSeparatedClusters(t *testing.T) {
	// Three well-separated clusters: K-means with k=3 must converge and
	// inertia must be non-increasing across iterations.
	var pts []Point
	rng := splitmix64(9)
	centers := []Point{{0, 0}, {100, 0}, {0, 100}}
	for i := 0; i < 300; i++ {
		c := centers[i%3]
		pts = append(pts, Point{c[0] + rng.float(), c[1] + rng.float()})
	}
	res := Sequential(pts, 3, 15)
	if res.Shifts[len(res.Shifts)-1] != 0 {
		t.Errorf("expected convergence, final shift %v", res.Shifts[len(res.Shifts)-1])
	}
	// Each final centroid sits inside one true cluster.
	for _, c := range res.Centroids {
		ok := false
		for _, tc := range centers {
			if SqDist(c, tc) < 4 {
				ok = true
			}
		}
		if !ok {
			t.Errorf("centroid %v is not near any true center", c)
		}
	}
	if in := Inertia(pts, res.Centroids, res.Membership); in > float64(len(pts)) {
		t.Errorf("inertia %v too high for unit-jitter clusters", in)
	}
}

func TestSequentialInertiaNonIncreasing(t *testing.T) {
	pts := Generate(500, 2, 10, 3)
	prev := math.Inf(1)
	for iters := 1; iters <= 8; iters++ {
		res := Sequential(pts, 10, iters)
		in := Inertia(pts, res.Centroids, res.Membership)
		// Allow tiny numerical slack; Lloyd's algorithm is monotone.
		if in > prev*1.0000001 {
			t.Fatalf("inertia increased at iteration %d: %v -> %v", iters, prev, in)
		}
		prev = in
	}
}

func TestSequentialDeterministic(t *testing.T) {
	pts := Generate(200, 2, 5, 5)
	a := Sequential(pts, 5, 10)
	b := Sequential(pts, 5, 10)
	for c := range a.Centroids {
		if SqDist(a.Centroids[c], b.Centroids[c]) != 0 {
			t.Fatal("sequential runs differ")
		}
	}
}
