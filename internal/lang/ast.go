package lang

import "repro/internal/field"

// File is a parsed kernel-language source file.
type File struct {
	Fields  []FieldDecl
	Timers  []TimerDecl
	Kernels []KernelDef
}

// FieldDecl is a top-level field declaration: `int32[] m_data age;`.
type FieldDecl struct {
	Tok  Token
	Kind field.Kind
	Rank int
	Name string
	Aged bool
}

// TimerDecl is `timer t1;`.
type TimerDecl struct {
	Tok  Token
	Name string
}

// KernelDef is one kernel definition: `name:` followed by its statements.
type KernelDef struct {
	Tok     Token
	Name    string
	AgeVar  string
	Indexes []string
	Locals  []LocalDecl
	Fetches []FetchDecl
	Stores  []StoreDecl
	Blocks  []Block // code blocks in source order
}

// LocalDecl is `local int32[] values;`.
type LocalDecl struct {
	Tok  Token
	Kind field.Kind
	Rank int
	Name string
}

// AgeRef is an age expression in a field reference: var, var+offset, or
// absolute literal.
type AgeRef struct {
	Tok    Token
	Var    string // "" for absolute
	Offset int
}

// IndexRef is one index coordinate: a variable (optionally with a constant
// offset, `x+1`), a literal, or a slab spanning the whole dimension (`[]`).
type IndexRef struct {
	Tok Token
	Var string // "" for literal or slab
	Lit int
	Off int // constant offset on Var coordinates
	All bool
}

// FieldRef is `name(age)[i][j]...`; empty Index means the whole field.
type FieldRef struct {
	Tok   Token
	Field string
	Age   AgeRef
	Index []IndexRef
	Whole bool
}

// FetchDecl is `fetch local = fieldref;`.
type FetchDecl struct {
	Tok   Token
	Local string
	Ref   FieldRef
}

// StoreDecl is `store fieldref = local;`.
type StoreDecl struct {
	Tok   Token
	Ref   FieldRef
	Local string
}

// ---- Code-block AST (the C-like native language) ----

// Block is a `%{ ... %}` code block or a braced statement list.
type Block struct {
	Tok   Token
	Stmts []Stmt
}

// Stmt is a code-block statement.
type Stmt interface{ stmt() }

// DeclStmt declares a block-local variable: `int i = 0;`.
type DeclStmt struct {
	Tok  Token
	Kind field.Kind
	Name string
	Init Expr // may be nil
}

// AssignStmt is `lhs op= expr;` where op is one of =, +=, -=, *=, /=, %=.
type AssignStmt struct {
	Tok  Token
	Name string
	Op   string
	Val  Expr
}

// IncStmt is `x++;` or `x--;` (also usable as a for-loop post clause).
type IncStmt struct {
	Tok  Token
	Name string
	Op   string // "++" or "--"
}

// IfStmt is `if (cond) { } else { }`.
type IfStmt struct {
	Tok  Token
	Cond Expr
	Then Block
	Else *Block // nil when absent
}

// ForStmt is `for (init; cond; post) { }`; any clause may be nil.
type ForStmt struct {
	Tok  Token
	Init Stmt
	Cond Expr
	Post Stmt
	Body Block
}

// WhileStmt is `while (cond) { }`.
type WhileStmt struct {
	Tok  Token
	Cond Expr
	Body Block
}

// BreakStmt and ContinueStmt are loop controls.
type BreakStmt struct{ Tok Token }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Tok Token }

// CoutStmt is `cout << a << b << endl;`.
type CoutStmt struct {
	Tok  Token
	Args []Expr
}

// ExprStmt is a bare expression statement (typically a builtin call like
// put(...)).
type ExprStmt struct {
	Tok Token
	X   Expr
}

// StopStmt is `stop;` — marks a source kernel finished (our spelling of the
// paper's "the read loop ends when the kernel stops storing").
type StopStmt struct{ Tok Token }

func (DeclStmt) stmt()     {}
func (AssignStmt) stmt()   {}
func (IncStmt) stmt()      {}
func (IfStmt) stmt()       {}
func (ForStmt) stmt()      {}
func (WhileStmt) stmt()    {}
func (BreakStmt) stmt()    {}
func (ContinueStmt) stmt() {}
func (CoutStmt) stmt()     {}
func (ExprStmt) stmt()     {}
func (StopStmt) stmt()     {}
func (Block) stmt()        {}

// Expr is a code-block expression.
type Expr interface{ expr() }

// IntLit is an integer literal.
type IntLit struct {
	Tok Token
	V   int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	Tok Token
	V   float64
}

// StrLit is a string literal (only meaningful in cout).
type StrLit struct {
	Tok Token
	V   string
}

// Ident references a variable: block-local, kernel local, age or index
// variable, or the special `endl`.
type Ident struct {
	Tok  Token
	Name string
}

// BinExpr is a binary operation.
type BinExpr struct {
	Tok  Token
	Op   string
	L, R Expr
}

// UnExpr is unary minus or logical not.
type UnExpr struct {
	Tok Token
	Op  string
	X   Expr
}

// CallExpr is a builtin call: put, get, extent, sqrt, abs, min, max, now,
// expired, reset.
type CallExpr struct {
	Tok  Token
	Name string
	Args []Expr
}

func (IntLit) expr()   {}
func (FloatLit) expr() {}
func (StrLit) expr()   {}
func (Ident) expr()    {}
func (BinExpr) expr()  {}
func (UnExpr) expr()   {}
func (CallExpr) expr() {}
