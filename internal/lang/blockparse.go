package lang

import (
	"strconv"

	"repro/internal/field"
)

// codeBlock parses `%{ stmts %}`.
func (p *parser) codeBlock() (Block, error) {
	start := p.next() // %{
	blk := Block{Tok: start}
	for {
		t := p.cur()
		if t.Kind == TBlockEnd {
			p.next()
			return blk, nil
		}
		if t.Kind == TEOF {
			return blk, errAt(start, "unterminated %%{ block")
		}
		s, err := p.stmt()
		if err != nil {
			return blk, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
}

// bracedBlock parses `{ stmts }` or a single statement (C-style bodies).
func (p *parser) bracedBlock() (Block, error) {
	if p.cur().Kind == TPunct && p.cur().Text == "{" {
		start := p.next()
		blk := Block{Tok: start}
		for {
			t := p.cur()
			if t.Kind == TPunct && t.Text == "}" {
				p.next()
				return blk, nil
			}
			if t.Kind == TEOF || t.Kind == TBlockEnd {
				return blk, errAt(start, "unterminated { block")
			}
			s, err := p.stmt()
			if err != nil {
				return blk, err
			}
			blk.Stmts = append(blk.Stmts, s)
		}
	}
	s, err := p.stmt()
	if err != nil {
		return Block{}, err
	}
	return Block{Tok: p.cur(), Stmts: []Stmt{s}}, nil
}

// stmt parses one code-block statement.
func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	if t.Kind == TPunct && t.Text == "{" {
		return p.bracedBlock()
	}
	if t.Kind != TIdent && !(t.Kind == TPunct && (t.Text == "++" || t.Text == "--")) {
		return nil, errAt(t, "expected statement, found %s", t)
	}
	switch t.Text {
	case "if":
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.bracedBlock()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Tok: t, Cond: cond, Then: then}
		if p.cur().Kind == TIdent && p.cur().Text == "else" {
			p.next()
			els, err := p.bracedBlock()
			if err != nil {
				return nil, err
			}
			st.Else = &els
		}
		return *st, nil
	case "while":
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.bracedBlock()
		if err != nil {
			return nil, err
		}
		return WhileStmt{Tok: t, Cond: cond, Body: body}, nil
	case "for":
		return p.forStmt()
	case "break":
		p.next()
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return BreakStmt{Tok: t}, nil
	case "continue":
		p.next()
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return ContinueStmt{Tok: t}, nil
	case "stop":
		p.next()
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return StopStmt{Tok: t}, nil
	case "cout":
		p.next()
		st := CoutStmt{Tok: t}
		for p.accept("<<") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.Args = append(st.Args, e)
		}
		if len(st.Args) == 0 {
			return nil, errAt(t, "cout needs at least one << argument")
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return st, nil
	}
	s, err := p.simpleStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return s, nil
}

// simpleStmt parses declarations, assignments, increments and expression
// statements — the statement forms legal in for-clauses (no trailing ';').
func (p *parser) simpleStmt() (Stmt, error) {
	t := p.cur()
	// Prefix increment: ++i / --i.
	if t.Kind == TPunct && (t.Text == "++" || t.Text == "--") {
		p.next()
		v, err := p.ident()
		if err != nil {
			return nil, err
		}
		return IncStmt{Tok: t, Name: v.Text, Op: t.Text}, nil
	}
	if t.Kind != TIdent {
		return nil, errAt(t, "expected statement, found %s", t)
	}
	// Declaration: `int i = 0` / `float x`.
	if k := typeKind(t.Text); k != field.Invalid && p.peek().Kind == TIdent {
		p.next()
		name, _ := p.ident()
		d := DeclStmt{Tok: t, Kind: k, Name: name.Text}
		if p.accept("=") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			d.Init = e
		}
		return d, nil
	}
	// Assignment, increment or expression statement.
	if p.peek().Kind == TPunct {
		switch op := p.peek().Text; op {
		case "=", "+=", "-=", "*=", "/=", "%=":
			name := p.next()
			p.next()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			return AssignStmt{Tok: name, Name: name.Text, Op: op, Val: e}, nil
		case "++", "--":
			name := p.next()
			opTok := p.next()
			return IncStmt{Tok: name, Name: name.Text, Op: opTok.Text}, nil
		}
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	return ExprStmt{Tok: t, X: e}, nil
}

func (p *parser) forStmt() (Stmt, error) {
	t := p.next() // for
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	st := ForStmt{Tok: t}
	if !p.accept(";") {
		init, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		st.Init = init
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	if !p.accept(";") {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Cond = cond
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	if !(p.cur().Kind == TPunct && p.cur().Text == ")") {
		post, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		st.Post = post
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.bracedBlock()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

// Operator precedence, lowest to highest.
var precedence = map[string]int{
	"||": 1,
	"&&": 2,
	"==": 3, "!=": 3,
	"<": 4, "<=": 4, ">": 4, ">=": 4,
	"+": 5, "-": 5,
	"*": 6, "/": 6, "%": 6,
}

func (p *parser) expr() (Expr, error) { return p.binExpr(1) }

func (p *parser) binExpr(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TPunct {
			return lhs, nil
		}
		prec, ok := precedence[t.Text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = BinExpr{Tok: t, Op: t.Text, L: lhs, R: rhs}
	}
}

func (p *parser) unary() (Expr, error) {
	t := p.cur()
	if t.Kind == TPunct && (t.Text == "-" || t.Text == "!") {
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return UnExpr{Tok: t, Op: t.Text, X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TInt:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, errAt(t, "bad integer literal %q", t.Text)
		}
		return IntLit{Tok: t, V: v}, nil
	case TFloat:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, errAt(t, "bad float literal %q", t.Text)
		}
		return FloatLit{Tok: t, V: v}, nil
	case TString:
		p.next()
		return StrLit{Tok: t, V: t.Text}, nil
	case TIdent:
		p.next()
		if p.accept("(") {
			call := CallExpr{Tok: t, Name: t.Text}
			if !p.accept(")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.accept(")") {
						break
					}
					if _, err := p.expect(","); err != nil {
						return nil, err
					}
				}
			}
			return call, nil
		}
		return Ident{Tok: t, Name: t.Text}, nil
	case TPunct:
		if t.Text == "(" {
			p.next()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, errAt(t, "expected expression, found %s", t)
}
