package lang

// Register bytecode for kernel bodies. The closure interpreter in compile.go
// walks a tree of Go closures with every operand boxed in a field.Value; this
// back-end lowers the same AST to a flat instruction slice executed by a
// switch-dispatch VM (vm.go): scalars live in unboxed int64/float64/string
// register files partitioned at compile time by the declared kinds, array
// accesses index the typed slab backing directly, and control flow is jump
// offsets. The closure back-end stays selectable (Options.Backend) as the A/B
// reference; the differential tests in bytecode_test.go and fuzz_test.go pin
// the two to bit-identical results.
//
// Instruction encoding: one opcode plus four int32 operands {a, b, c, d}.
// Operand roles by convention: a is the destination register (or jump target
// for opJmp, local index for stores), b/c are sources or auxiliary indices,
// d carries a constant-table index (runtime error sites, boxed-arith sites)
// or the coordinate count for array ops. Register operands are indices into
// the frame's class-specific file: i (int64), f (float64), s (string),
// v (boxed field.Value). Jumps are absolute instruction indices.

import (
	"fmt"
	"strings"
	"sync"
)

type opcode uint8

// Opcodes. Suffix conventions: I/F/S/V name the register class an op works
// in; ops that move between classes name source and destination (opI2F).
const (
	// control flow
	opRet  opcode = iota // return nil
	opJmp                // a=target
	opJzI                // a=ireg  b=target: jump if i[a] == 0
	opJnzI               // a=ireg  b=target: jump if i[a] != 0
	opJzF                // a=freg  b=target: jump if f[a] == 0 (NaN is truthy)
	opJzV                // a=vreg  b=target: jump if !v[a].Bool()
	opErr                // a=errIdx: return errs[a]
	opStop               // ctx.Stop()

	// constants and moves
	opLdI   // a=dst b=constIdx (ints)
	opLdF   // a=dst b=constIdx (floats)
	opLdS   // a=dst b=constIdx (strs)
	opZeroV // a=dst b=kind: field.Zero(kind)
	opMovI  // a=dst b=src
	opMovF
	opMovS
	opMovV

	// conversions between register classes (Value.Convert semantics)
	opI2F     // f[a] = float64(i[b])
	opF2I     // i[a] = int64(f[b])
	opTrunc32 // i[a] = int64(int32(i[b]))
	opTruncU8 // i[a] = int64(uint8(i[b]))
	opBoolI   // i[a] = (i[b] != 0)
	opBoolF   // i[a] = (f[b] != 0)
	opBoolV   // i[a] = v[b].Bool()
	opNotI    // i[a] = (i[b] == 0)
	opNotF    // i[a] = (f[b] == 0)
	opNotV    // i[a] = !v[b].Bool()
	opI2S     // s[a] = FormatInt(i[b])
	opF2S     // s[a] = FormatFloat(f[b], 'g', -1, 64)
	opB2S     // s[a] = "true"/"false" from i[b]
	opV2S     // s[a] = v[b].String()
	opBoxI    // v[a] = Value{kind c, i: i[b]} (payload already canonical)
	opBoxF    // v[a] = Value{kind c, f: f[b]}
	opBoxS    // v[a] = Value{kind c, s: s[b]}
	opConvV   // v[a] = v[b].Convert(kind c)
	opUnboxVI // i[a] = v[b].Int64()
	opUnboxVF // f[a] = v[b].Float64()

	// integer arithmetic (a=dst b,c=src; d=errIdx where noted)
	opAddI
	opSubI
	opMulI
	opDivI // d=errIdx: division by zero
	opModI // d=errIdx: modulo by zero
	opNegI // a=dst b=src

	// float arithmetic
	opAddF
	opSubF
	opMulF
	opDivF // d=errIdx: division by zero
	opNegF

	// strings
	opConcatS // s[a] = s[b] + s[c]

	// comparisons (i[a] = 0/1; float variants use the interpreter's
	// compareFloat total order, under which NaN compares equal to everything)
	opEqI
	opNeI
	opLtI
	opLeI
	opGtI
	opGeI
	opEqF
	opNeF
	opLtF
	opLeF
	opGtF
	opGeF
	opEqS
	opNeS

	// boxed fallback ops for Any-kind operands: identical helpers to the
	// closure interpreter, so dynamic-kind semantics cannot drift
	opArithV // v[a] = arith(sites[d], v[b], v[c])
	opIncV   // v[a] = v[b] incremented by c (float/int by dynamic kind)
	opNegV   // v[a] = -v[b] by dynamic kind
	opAbsV
	opMinV // v[a] = min(v[b], v[c]) with the interpreter's dynamic rules
	opMaxV

	// math builtins
	opSqrtF // f[a] = sqrt(f[b]); d=errIdx: sqrt of negative value
	opFloorF
	opCosF
	opSinF
	opPowF // f[a] = pow(f[b], f[c])
	opAbsI
	opAbsF
	opMinI // i[a] = min(i[b], i[c]) payload order
	opMaxI
	opMinF // f[a] = math.Min(f[b], f[c])
	opMaxF

	// kernel context: scalar locals by declaration index, age, coordinates
	opLdLI  // i[a] = ctx.LocalValue(b).Int64()
	opLdLF  // f[a] = ctx.LocalValue(b).Float64()
	opLdLS  // s[a] = ctx.LocalValue(b).Str()
	opLdLV  // v[a] = ctx.LocalValue(b)
	opStLI  // ctx.SetLocalValue(a, Value{kind c, i: i[b]})
	opStLF  // ctx.SetLocalValue(a, Value{kind c, f: f[b]})
	opStLS  // ctx.SetLocalValue(a, StringVal(s[b]))
	opStLV  // ctx.SetLocalValue(a, v[b])
	opLdAge // i[a] = ctx.Age()
	opLdIdx // i[a] = ctx.Coord(b)

	// arrays: b=local index, c=first of d contiguous int coordinate regs;
	// out-of-range coordinates take the boxed At/Put cold path so panics and
	// implicit grow match the interpreter exactly
	opGetI // i[a] = arr(b).FlatGetInt(off)
	opGetF // f[a] = arr(b).FlatGetFloat(off)
	opGetV // v[a] = arr(b).AtFlat(off)
	opPutI // a=local index, b=value reg: arr(a).FlatSetInt(off, i[b])
	opPutF
	opPutV
	opExtent // i[a] = arr(b).Extent(int(i[c]))

	// timers and clock
	opNow        // i[a] = ctx.Now().UnixMilli()
	opExpired    // i[a] = ctx.Expired(timers[b], i[c] ms); errors propagate
	opResetTimer // ctx.ResetTimer(timers[a])

	// cout: appends into the frame's byte buffer, flushed in one Printf
	opCoutClear
	opCoutI // append FormatInt(i[a])
	opCoutF // append FormatFloat(f[a], 'g', -1, 64)
	opCoutB // append "true"/"false" from i[a]
	opCoutS // append s[a]
	opCoutV // append v[a].String()
	opCoutFlush

	numOpcodes
)

var opNames = [numOpcodes]string{
	opRet: "ret", opJmp: "jmp", opJzI: "jzi", opJnzI: "jnzi", opJzF: "jzf",
	opJzV: "jzv", opErr: "err", opStop: "stop",
	opLdI: "ldi", opLdF: "ldf", opLdS: "lds", opZeroV: "zerov",
	opMovI: "movi", opMovF: "movf", opMovS: "movs", opMovV: "movv",
	opI2F: "i2f", opF2I: "f2i", opTrunc32: "trunc32", opTruncU8: "truncu8",
	opBoolI: "booli", opBoolF: "boolf", opBoolV: "boolv",
	opNotI: "noti", opNotF: "notf", opNotV: "notv",
	opI2S: "i2s", opF2S: "f2s", opB2S: "b2s", opV2S: "v2s",
	opBoxI: "boxi", opBoxF: "boxf", opBoxS: "boxs", opConvV: "convv",
	opUnboxVI: "unboxvi", opUnboxVF: "unboxvf",
	opAddI: "addi", opSubI: "subi", opMulI: "muli", opDivI: "divi",
	opModI: "modi", opNegI: "negi",
	opAddF: "addf", opSubF: "subf", opMulF: "mulf", opDivF: "divf",
	opNegF: "negf", opConcatS: "concats",
	opEqI: "eqi", opNeI: "nei", opLtI: "lti", opLeI: "lei", opGtI: "gti",
	opGeI: "gei", opEqF: "eqf", opNeF: "nef", opLtF: "ltf", opLeF: "lef",
	opGtF: "gtf", opGeF: "gef", opEqS: "eqs", opNeS: "nes",
	opArithV: "arithv", opIncV: "incv", opNegV: "negv", opAbsV: "absv",
	opMinV: "minv", opMaxV: "maxv",
	opSqrtF: "sqrtf", opFloorF: "floorf", opCosF: "cosf", opSinF: "sinf",
	opPowF: "powf", opAbsI: "absi", opAbsF: "absf",
	opMinI: "mini", opMaxI: "maxi", opMinF: "minf", opMaxF: "maxf",
	opLdLI: "ldli", opLdLF: "ldlf", opLdLS: "ldls", opLdLV: "ldlv",
	opStLI: "stli", opStLF: "stlf", opStLS: "stls", opStLV: "stlv",
	opLdAge: "ldage", opLdIdx: "ldidx",
	opGetI: "geti", opGetF: "getf", opGetV: "getv",
	opPutI: "puti", opPutF: "putf", opPutV: "putv", opExtent: "extent",
	opNow: "now", opExpired: "expired", opResetTimer: "resettimer",
	opCoutClear: "coutclear", opCoutI: "couti", opCoutF: "coutf",
	opCoutB: "coutb", opCoutS: "couts", opCoutV: "coutv",
	opCoutFlush: "coutflush",
}

// instr is one bytecode instruction. See the operand-role conventions in the
// package comment above the opcode list.
type instr struct {
	op         opcode
	a, b, c, d int32
}

// boxSite records the operator and source position of a boxed arithmetic
// instruction so opArithV reports errors identical to the interpreter's.
type boxSite struct {
	op  string
	tok Token
}

// bcProg is one kernel body lowered to bytecode, plus its constant tables and
// a pool of execution frames. A bcProg is immutable after lowering and safe
// for concurrent execution; each invocation checks a frame out of the pool,
// so steady-state body execution does not allocate.
type bcProg struct {
	kernel     string
	code       []instr
	ints       []int64
	floats     []float64
	strs       []string
	errs       []error // precomputed runtime errors (sites are static)
	sites      []boxSite
	timerNames []string

	nI, nF, nS, nV int // register file sizes
	nArr           int // array-local cache size (len(kernel.Locals))

	frames sync.Pool
}

// constant interning; the tables are tiny, so linear scans beat maps.

func (p *bcProg) intConst(x int64) int32 {
	for i, v := range p.ints {
		if v == x {
			return int32(i)
		}
	}
	p.ints = append(p.ints, x)
	return int32(len(p.ints) - 1)
}

func (p *bcProg) floatConst(x float64) int32 {
	// No deduplication: bit-distinct values (-0.0, NaN payloads) must stay
	// distinct and the table stays tiny anyway.
	p.floats = append(p.floats, x)
	return int32(len(p.floats) - 1)
}

func (p *bcProg) strConst(x string) int32 {
	for i, v := range p.strs {
		if v == x {
			return int32(i)
		}
	}
	p.strs = append(p.strs, x)
	return int32(len(p.strs) - 1)
}

func (p *bcProg) errConst(err error) int32 {
	p.errs = append(p.errs, err)
	return int32(len(p.errs) - 1)
}

func (p *bcProg) siteConst(op string, tok Token) int32 {
	p.sites = append(p.sites, boxSite{op: op, tok: tok})
	return int32(len(p.sites) - 1)
}

func (p *bcProg) timerConst(name string) int32 {
	for i, v := range p.timerNames {
		if v == name {
			return int32(i)
		}
	}
	p.timerNames = append(p.timerNames, name)
	return int32(len(p.timerNames) - 1)
}

// disasm renders the program as an annotated listing for p2gc -disasm.
func (p *bcProg) disasm(localNames []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel %s: %d instructions, registers i=%d f=%d s=%d v=%d\n",
		p.kernel, len(p.code), p.nI, p.nF, p.nS, p.nV)
	local := func(i int32) string {
		if int(i) < len(localNames) {
			return localNames[i]
		}
		return fmt.Sprintf("#%d", i)
	}
	for pc, in := range p.code {
		fmt.Fprintf(&b, "%4d  %-10s %4d %4d %4d %4d", pc, opNames[in.op], in.a, in.b, in.c, in.d)
		switch in.op {
		case opLdI:
			fmt.Fprintf(&b, "  ; i%d = %d", in.a, p.ints[in.b])
		case opLdF:
			fmt.Fprintf(&b, "  ; f%d = %g", in.a, p.floats[in.b])
		case opLdS:
			fmt.Fprintf(&b, "  ; s%d = %q", in.a, p.strs[in.b])
		case opJmp:
			fmt.Fprintf(&b, "  ; -> %d", in.a)
		case opJzI, opJnzI, opJzF, opJzV:
			fmt.Fprintf(&b, "  ; -> %d", in.b)
		case opErr:
			fmt.Fprintf(&b, "  ; error: %v", p.errs[in.a])
		case opDivI, opModI, opDivF, opSqrtF:
			fmt.Fprintf(&b, "  ; on error: %v", p.errs[in.d])
		case opArithV:
			fmt.Fprintf(&b, "  ; op %q", p.sites[in.d].op)
		case opLdLI, opLdLF, opLdLS, opLdLV:
			fmt.Fprintf(&b, "  ; local %s", local(in.b))
		case opStLI, opStLF, opStLS, opStLV:
			fmt.Fprintf(&b, "  ; local %s", local(in.a))
		case opGetI, opGetF, opGetV, opExtent:
			fmt.Fprintf(&b, "  ; array %s", local(in.b))
		case opPutI, opPutF, opPutV:
			fmt.Fprintf(&b, "  ; array %s", local(in.a))
		case opExpired:
			fmt.Fprintf(&b, "  ; timer %s", p.timerNames[in.b])
		case opResetTimer:
			fmt.Fprintf(&b, "  ; timer %s", p.timerNames[in.a])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
