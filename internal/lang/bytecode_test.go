package lang

// Tests pinning the register-bytecode back-end against the closure
// interpreter: the two must agree bit-for-bit on field contents, cout output
// and error surfaces for every program either can run.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/field"
	"repro/internal/runtime"
)

// TestBytecodeNoFallbackOnTestdata asserts that every kernel of every
// testdata program lowers to bytecode — the testdata corpus is the coverage
// floor for the lowering.
func TestBytecodeNoFallbackOnTestdata(t *testing.T) {
	for _, name := range []string{"mulsum", "kmeans", "wavefront", "dctstats"} {
		listings, err := Disassemble(name, readTestdata(t, name+".p2g"))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, l := range listings {
			if l.Fallback {
				t.Errorf("%s: kernel %s fell back to closure: %s", name, l.Kernel, l.FallbackReason)
			} else if l.Instructions == 0 {
				t.Errorf("%s: kernel %s lowered to zero instructions", name, l.Kernel)
			}
		}
	}
}

// equivRun compiles src with the given back-end, runs it and returns the node
// (for snapshots) plus the captured cout output.
func equivRun(t *testing.T, name, src string, be Backend, opts runtime.Options) (*runtime.Node, string) {
	t.Helper()
	prog, err := CompileOptions(name, src, Options{Backend: be})
	if err != nil {
		t.Fatalf("%s backend %d: compile: %v", name, be, err)
	}
	var out strings.Builder
	opts.Output = &out
	node, err := runtime.NewNode(prog, opts)
	if err != nil {
		t.Fatalf("%s backend %d: node: %v", name, be, err)
	}
	rep, err := node.Run()
	if err != nil {
		t.Fatalf("%s backend %d: run: %v", name, be, err)
	}
	if len(rep.Stalled) > 0 {
		t.Fatalf("%s backend %d: stalled: %v", name, be, rep.Stalled)
	}
	return node, out.String()
}

// sortedLines canonicalizes multi-worker cout output, whose interleaving is
// scheduler-dependent but whose line set is not.
func sortedLines(s string) []string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	sort.Strings(lines)
	return lines
}

// TestBytecodeClosureEquivalence is the randomized stress gate: every
// testdata program runs under both back-ends with randomized worker counts,
// and fields must match bit-for-bit at every age while cout output matches
// line-for-line.
func TestBytecodeClosureEquivalence(t *testing.T) {
	cases := []struct {
		name string
		opts runtime.Options
		ages int // snapshot ages 0..ages inclusive
	}{
		{"mulsum", runtime.Options{MaxAge: 6}, 6},
		{"kmeans", runtime.Options{KernelMaxAge: map[string]int{"assign": 4, "refine": 4, "print": 5}}, 5},
		{"wavefront", runtime.Options{}, 2},
		{"dctstats", runtime.Options{}, 2},
	}
	rng := rand.New(rand.NewSource(0x9901))
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			src := readTestdata(t, tc.name+".p2g")
			for trial := 0; trial < 3; trial++ {
				opts := tc.opts
				opts.Workers = 1 + rng.Intn(8)
				bcNode, bcOut := equivRun(t, tc.name, src, BackendBytecode, opts)
				clNode, clOut := equivRun(t, tc.name, src, BackendClosure, opts)
				if opts.Workers == 1 {
					if bcOut != clOut {
						t.Fatalf("workers=1 output diverged:\nbytecode: %q\nclosure:  %q", bcOut, clOut)
					}
				} else if bc, cl := sortedLines(bcOut), sortedLines(clOut); fmt.Sprint(bc) != fmt.Sprint(cl) {
					t.Fatalf("workers=%d output line sets diverged:\nbytecode: %q\nclosure:  %q", opts.Workers, bc, cl)
				}
				prog, err := Compile(tc.name, src)
				if err != nil {
					t.Fatal(err)
				}
				for _, fd := range prog.Fields {
					for age := 0; age <= tc.ages; age++ {
						bs, err := bcNode.Snapshot(fd.Name, age)
						if err != nil {
							t.Fatal(err)
						}
						cs, err := clNode.Snapshot(fd.Name, age)
						if err != nil {
							t.Fatal(err)
						}
						if !bs.Equal(cs) {
							t.Fatalf("workers=%d field %s(%d) diverged:\nbytecode: %v\nclosure:  %v",
								opts.Workers, fd.Name, age, bs, cs)
						}
					}
				}
			}
		})
	}
}

// TestBytecodeRuntimeErrorParity runs programs whose kernels fail at run
// time and checks both back-ends surface the identical error string.
func TestBytecodeRuntimeErrorParity(t *testing.T) {
	cases := map[string]string{
		"int-div-zero": `int32[] out;
k:
  local int32[] r;
  %{
    int a = 7; int b = 0;
    put(r, a / b, 0);
  %}
  store out(0) = r;`,
		"int-mod-zero": `int32[] out;
k:
  local int32[] r;
  %{
    int a = 7; int b = 0;
    put(r, a % b, 0);
  %}
  store out(0) = r;`,
		"float-div-zero": `int32[] out;
k:
  local int32[] r;
  %{
    float a = 7.5; float b = 0.0;
    put(r, a / b, 0);
  %}
  store out(0) = r;`,
		"float-mod": `int32[] out;
k:
  local int32[] r;
  %{
    float a = 7.5; float b = 2.0;
    put(r, a % b, 0);
  %}
  store out(0) = r;`,
		"string-sub": `int32[] out;
k:
  local int32[] r;
  %{
    string s = "ab";
    s = s - "b";
    put(r, 1, 0);
  %}
  store out(0) = r;`,
		"sqrt-negative": `int32[] out;
k:
  local int32[] r;
  %{
    float a = 0.0 - 4.0;
    put(r, sqrt(a), 0);
  %}
  store out(0) = r;`,
	}
	for name, src := range cases {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			errFor := func(be Backend) string {
				prog, err := CompileOptions(name, src, Options{Backend: be})
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				_, err = runtime.Run(prog, runtime.Options{Workers: 1})
				if err == nil {
					t.Fatalf("backend %d: expected runtime error", be)
				}
				return err.Error()
			}
			bc, cl := errFor(BackendBytecode), errFor(BackendClosure)
			if bc != cl {
				t.Errorf("error surfaces diverged:\nbytecode: %s\nclosure:  %s", bc, cl)
			}
		})
	}
}

// TestArithEdgeCases pins the shared scalar-arithmetic semantics both
// back-ends are built on: two's-complement wraparound, zero-divide errors,
// mixed-kind promotion and the string operators.
func TestArithEdgeCases(t *testing.T) {
	i64 := field.Int64Val
	f64 := field.Float64Val
	str := field.StringVal
	cases := []struct {
		name    string
		op      string
		l, r    field.Value
		want    field.Value
		wantErr string
	}{
		{name: "int-overflow-wraps", op: "+", l: i64(math.MaxInt64), r: i64(1), want: i64(math.MinInt64)},
		{name: "int-underflow-wraps", op: "-", l: i64(math.MinInt64), r: i64(1), want: i64(math.MaxInt64)},
		{name: "int-mul-wraps", op: "*", l: i64(math.MaxInt64), r: i64(2), want: i64(-2)},
		{name: "int-div-zero", op: "/", l: i64(1), r: i64(0), wantErr: "division by zero"},
		{name: "int-mod-zero", op: "%", l: i64(1), r: i64(0), wantErr: "modulo by zero"},
		{name: "int-div-trunc", op: "/", l: i64(-7), r: i64(2), want: i64(-3)},
		{name: "int-mod-sign", op: "%", l: i64(-7), r: i64(2), want: i64(-1)},
		{name: "float-promote-left", op: "+", l: f64(1.5), r: i64(2), want: f64(3.5)},
		{name: "float-promote-right", op: "*", l: i64(2), r: f64(0.5), want: f64(1)},
		{name: "float-div-zero", op: "/", l: f64(1), r: f64(0), wantErr: "division by zero"},
		{name: "float-neg-zero-div", op: "/", l: f64(1), r: f64(math.Copysign(0, -1)), wantErr: "division by zero"},
		{name: "float-mod-undefined", op: "%", l: f64(7), r: f64(2), wantErr: "% is not defined on floats"},
		{name: "string-concat", op: "+", l: str("a"), r: str("b"), want: str("ab")},
		{name: "string-concat-int", op: "+", l: str("n="), r: i64(3), want: str("n=3")},
		{name: "string-eq", op: "==", l: str("x"), r: str("x"), want: field.BoolVal(true)},
		{name: "string-ne", op: "!=", l: str("x"), r: str("y"), want: field.BoolVal(true)},
		{name: "string-sub-error", op: "-", l: str("a"), r: str("b"), wantErr: `operator "-" not defined on strings`},
		{name: "bool-promotes-int", op: "+", l: field.BoolVal(true), r: i64(1), want: i64(2)},
	}
	for _, tc := range cases {
		got, err := arith(Token{}, tc.op, tc.l, tc.r)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
			continue
		}
		if got.Kind() != tc.want.Kind() || !got.Equal(tc.want) {
			t.Errorf("%s: %v %s %v = %v (%v), want %v (%v)",
				tc.name, tc.l, tc.op, tc.r, got, got.Kind(), tc.want, tc.want.Kind())
		}
	}
}

// TestCompareTotalOrder pins the comparison helpers the VM mirrors with
// branch-form instructions: NaN compares equal to everything (the
// interpreter's non-IEEE total order) and the int compare is exact.
func TestCompareTotalOrder(t *testing.T) {
	nan := math.NaN()
	if c := compareFloat(nan, 5); c != 0 {
		t.Errorf("compareFloat(NaN, 5) = %d, want 0", c)
	}
	if c := compareFloat(5, nan); c != 0 {
		t.Errorf("compareFloat(5, NaN) = %d, want 0", c)
	}
	if c := compareFloat(nan, nan); c != 0 {
		t.Errorf("compareFloat(NaN, NaN) = %d, want 0", c)
	}
	if c := compareFloat(math.Copysign(0, -1), 0); c != 0 {
		t.Errorf("compareFloat(-0, +0) = %d, want 0", c)
	}
	if c := compareFloat(math.Inf(-1), math.Inf(1)); c != -1 {
		t.Errorf("compareFloat(-Inf, +Inf) = %d, want -1", c)
	}
	if c := compareInt(math.MinInt64, math.MaxInt64); c != -1 {
		t.Errorf("compareInt(min, max) = %d, want -1", c)
	}
	if c := compareInt(-1, -1); c != 0 {
		t.Errorf("compareInt(-1, -1) = %d, want 0", c)
	}
	// The equivalence the VM relies on: a NaN operand must take the "=="
	// branch through arith exactly like compareFloat says.
	v, err := arith(Token{}, "==", field.Float64Val(nan), field.Float64Val(3)) //nolint:staticcheck
	if err != nil || !v.Bool() {
		t.Errorf("arith(NaN == 3) = %v, %v; want true (total order)", v, err)
	}
	v, err = arith(Token{}, "<", field.Float64Val(nan), field.Float64Val(3))
	if err != nil || v.Bool() {
		t.Errorf("arith(NaN < 3) = %v, %v; want false", v, err)
	}
}
