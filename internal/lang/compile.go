package lang

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/field"
)

// Backend selects how `%{ %}` code blocks execute at runtime.
type Backend uint8

const (
	// BackendBytecode lowers kernel bodies to register bytecode executed by
	// the switch-dispatch VM in vm.go — the default. Kernels the lowering
	// cannot represent exactly (e.g. fetches from Any fields) silently keep
	// the closure interpreter; Disassemble reports such fallbacks.
	BackendBytecode Backend = iota
	// BackendClosure keeps the closure-compiled tree interpreter for every
	// kernel. It is the A/B reference the bytecode back-end is differentially
	// tested against.
	BackendClosure
)

// Options configures compilation.
type Options struct {
	Backend Backend
}

// Compile parses kernel-language source and lowers it to a core.Program whose
// kernel bodies execute the `%{ %}` blocks through the default back-end (the
// register-bytecode VM). The program name is used for diagnostics only.
func Compile(name, src string) (*core.Program, error) {
	return CompileOptions(name, src, Options{})
}

// CompileOptions is Compile with an explicit back-end selection.
func CompileOptions(name, src string, opts Options) (*core.Program, error) {
	file, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileFileOptions(name, file, opts)
}

// CompileFile lowers a parsed file to a core.Program.
func CompileFile(name string, file *File) (*core.Program, error) {
	return CompileFileOptions(name, file, Options{})
}

// CompileFileOptions is CompileFile with an explicit back-end selection.
func CompileFileOptions(name string, file *File, opts Options) (*core.Program, error) {
	b := core.NewBuilder(name)
	fields := map[string]FieldDecl{}
	for _, fd := range file.Fields {
		if _, dup := fields[fd.Name]; dup {
			return nil, errAt(fd.Tok, "duplicate field %q", fd.Name)
		}
		fields[fd.Name] = fd
		b.Field(fd.Name, fd.Kind, fd.Rank, fd.Aged)
	}
	timers := map[string]bool{}
	for _, td := range file.Timers {
		timers[td.Name] = true
		b.Timer(td.Name)
	}
	for i := range file.Kernels {
		kd := &file.Kernels[i]
		kb := b.Kernel(kd.Name)
		if kd.AgeVar != "" {
			kb.Age(kd.AgeVar)
		}
		kb.Index(kd.Indexes...)
		for _, l := range kd.Locals {
			kb.Local(l.Name, l.Kind, l.Rank)
		}
		for _, f := range kd.Fetches {
			age, err := lowerAge(kd, f.Ref.Age)
			if err != nil {
				return nil, err
			}
			if f.Ref.Whole {
				kb.FetchAll(f.Local, f.Ref.Field, age)
			} else {
				idx, err := lowerIndex(kd, f.Ref)
				if err != nil {
					return nil, err
				}
				kb.Fetch(f.Local, f.Ref.Field, age, idx...)
			}
		}
		for _, s := range kd.Stores {
			age, err := lowerAge(kd, s.Ref.Age)
			if err != nil {
				return nil, err
			}
			if s.Ref.Whole {
				kb.StoreAll(s.Ref.Field, age, s.Local)
			} else {
				idx, err := lowerIndex(kd, s.Ref)
				if err != nil {
					return nil, err
				}
				kb.Store(s.Ref.Field, age, idx, s.Local)
			}
		}
		// The closure compile always runs first: it is the single source of
		// compile-time errors, so both back-ends reject exactly the same
		// programs.
		body, err := compileKernelBody(kd, timers)
		if err != nil {
			return nil, err
		}
		if opts.Backend == BackendBytecode {
			if bp, lerr := lowerKernelBody(kd, timers, fields); lerr == nil {
				body = bp.body()
			}
		}
		kb.Body(body)
	}
	return b.Build()
}

func lowerAge(k *KernelDef, a AgeRef) (core.AgeExpr, error) {
	if a.Var == "" {
		return core.AgeAt(a.Offset), nil
	}
	if a.Var != k.AgeVar {
		return core.AgeExpr{}, errAt(a.Tok, "age expression uses %q but kernel %s declares age variable %q", a.Var, k.Name, k.AgeVar)
	}
	return core.AgeVar(a.Offset), nil
}

func lowerIndex(k *KernelDef, ref FieldRef) ([]core.IndexSpec, error) {
	out := make([]core.IndexSpec, len(ref.Index))
	for i, ir := range ref.Index {
		if ir.All {
			out[i] = core.All()
			continue
		}
		if ir.Var == "" {
			out[i] = core.Lit(ir.Lit)
			continue
		}
		found := false
		for _, iv := range k.Indexes {
			if iv == ir.Var {
				found = true
				break
			}
		}
		if !found {
			return nil, errAt(ir.Tok, "index %q is not an index variable of kernel %s", ir.Var, k.Name)
		}
		out[i] = core.IdxOff(ir.Var, ir.Off)
	}
	return out, nil
}

// ---- code-block compilation ----

// ctrl is loop-control flow state threaded through statement closures.
type ctrl uint8

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlContinue
)

type env struct {
	ctx   *core.Ctx
	slots []field.Value
}

type exprFn func(*env) (field.Value, error)
type stmtFn func(*env) (ctrl, error)

// varKind classifies an identifier during compilation.
type varKind uint8

const (
	vUnknown varKind = iota
	vSlot            // block-local variable
	vLocal           // kernel scalar local
	vArray           // kernel array local
	vAge             // kernel age variable
	vIndex           // kernel index variable
	vTimer           // global timer
	vEndl            // the endl stream manipulator
)

type binding struct {
	kind varKind
	slot int
	typ  field.Kind // declared kind for vSlot/vLocal
}

type kcompiler struct {
	k      *KernelDef
	timers map[string]bool
	scopes []map[string]binding
	nslots int
}

func compileKernelBody(k *KernelDef, timers map[string]bool) (func(*core.Ctx) error, error) {
	kc := &kcompiler{k: k, timers: timers}
	kc.push()
	var stmts []stmtFn
	for _, blk := range k.Blocks {
		for _, s := range blk.Stmts {
			fn, err := kc.stmt(s)
			if err != nil {
				return nil, err
			}
			stmts = append(stmts, fn)
		}
	}
	kc.pop()
	nslots := kc.nslots
	return func(ctx *core.Ctx) error {
		e := &env{ctx: ctx, slots: make([]field.Value, nslots)}
		for _, fn := range stmts {
			if _, err := fn(e); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

func (kc *kcompiler) push() { kc.scopes = append(kc.scopes, map[string]binding{}) }
func (kc *kcompiler) pop()  { kc.scopes = kc.scopes[:len(kc.scopes)-1] }

func (kc *kcompiler) declare(tok Token, name string, typ field.Kind) (binding, error) {
	top := kc.scopes[len(kc.scopes)-1]
	if _, dup := top[name]; dup {
		return binding{}, errAt(tok, "variable %q redeclared in the same scope", name)
	}
	bd := binding{kind: vSlot, slot: kc.nslots, typ: typ}
	kc.nslots++
	top[name] = bd
	return bd, nil
}

// resolve classifies an identifier: innermost block scope first, then kernel
// locals, age/index variables, timers and endl.
func (kc *kcompiler) resolve(name string) binding {
	for i := len(kc.scopes) - 1; i >= 0; i-- {
		if bd, ok := kc.scopes[i][name]; ok {
			return bd
		}
	}
	for _, l := range kc.k.Locals {
		if l.Name == name {
			if l.Rank > 0 {
				return binding{kind: vArray, typ: l.Kind}
			}
			return binding{kind: vLocal, typ: l.Kind}
		}
	}
	if name == kc.k.AgeVar && name != "" {
		return binding{kind: vAge}
	}
	for _, iv := range kc.k.Indexes {
		if iv == name {
			return binding{kind: vIndex}
		}
	}
	if kc.timers[name] {
		return binding{kind: vTimer}
	}
	if name == "endl" {
		return binding{kind: vEndl}
	}
	return binding{kind: vUnknown}
}

func (kc *kcompiler) stmt(s Stmt) (stmtFn, error) {
	switch st := s.(type) {
	case DeclStmt:
		var init exprFn
		if st.Init != nil {
			var err error
			init, err = kc.expr(st.Init)
			if err != nil {
				return nil, err
			}
		}
		bd, err := kc.declare(st.Tok, st.Name, st.Kind)
		if err != nil {
			return nil, err
		}
		slot, typ := bd.slot, bd.typ
		return func(e *env) (ctrl, error) {
			v := field.Zero(typ)
			if init != nil {
				iv, err := init(e)
				if err != nil {
					return ctrlNone, err
				}
				v = iv.Convert(typ)
			}
			e.slots[slot] = v
			return ctrlNone, nil
		}, nil

	case AssignStmt:
		return kc.assign(st)

	case IncStmt:
		delta := int64(1)
		if st.Op == "--" {
			delta = -1
		}
		return kc.rmw(st.Tok, st.Name, func(v field.Value) (field.Value, error) {
			if v.Kind().Float() {
				return field.Float64Val(v.Float64() + float64(delta)), nil
			}
			return field.Int64Val(v.Int64() + delta), nil
		})

	case IfStmt:
		cond, err := kc.expr(st.Cond)
		if err != nil {
			return nil, err
		}
		then, err := kc.block(st.Then)
		if err != nil {
			return nil, err
		}
		var els stmtFn
		if st.Else != nil {
			els, err = kc.block(*st.Else)
			if err != nil {
				return nil, err
			}
		}
		return func(e *env) (ctrl, error) {
			c, err := cond(e)
			if err != nil {
				return ctrlNone, err
			}
			if c.Bool() {
				return then(e)
			}
			if els != nil {
				return els(e)
			}
			return ctrlNone, nil
		}, nil

	case WhileStmt:
		cond, err := kc.expr(st.Cond)
		if err != nil {
			return nil, err
		}
		body, err := kc.block(st.Body)
		if err != nil {
			return nil, err
		}
		return loopFn(nil, cond, nil, body), nil

	case ForStmt:
		kc.push()
		var init, post stmtFn
		var err error
		if st.Init != nil {
			init, err = kc.stmt(st.Init)
			if err != nil {
				return nil, err
			}
		}
		var cond exprFn
		if st.Cond != nil {
			cond, err = kc.expr(st.Cond)
			if err != nil {
				return nil, err
			}
		}
		if st.Post != nil {
			post, err = kc.stmt(st.Post)
			if err != nil {
				return nil, err
			}
		}
		body, err := kc.block(st.Body)
		if err != nil {
			return nil, err
		}
		kc.pop()
		return loopFn(init, cond, post, body), nil

	case BreakStmt:
		return func(*env) (ctrl, error) { return ctrlBreak, nil }, nil
	case ContinueStmt:
		return func(*env) (ctrl, error) { return ctrlContinue, nil }, nil
	case StopStmt:
		return func(e *env) (ctrl, error) {
			e.ctx.Stop()
			return ctrlNone, nil
		}, nil

	case CoutStmt:
		var args []exprFn
		for _, a := range st.Args {
			fn, err := kc.expr(a)
			if err != nil {
				return nil, err
			}
			args = append(args, fn)
		}
		return func(e *env) (ctrl, error) {
			var sb []byte
			for _, fn := range args {
				v, err := fn(e)
				if err != nil {
					return ctrlNone, err
				}
				sb = append(sb, v.String()...)
			}
			e.ctx.Printf("%s", sb)
			return ctrlNone, nil
		}, nil

	case ExprStmt:
		fn, err := kc.expr(st.X)
		if err != nil {
			return nil, err
		}
		return func(e *env) (ctrl, error) {
			_, err := fn(e)
			return ctrlNone, err
		}, nil

	case Block:
		return kc.block(st)
	}
	return nil, fmt.Errorf("lang: unhandled statement %T", s)
}

func (kc *kcompiler) block(b Block) (stmtFn, error) {
	kc.push()
	defer kc.pop()
	var stmts []stmtFn
	for _, s := range b.Stmts {
		fn, err := kc.stmt(s)
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, fn)
	}
	return func(e *env) (ctrl, error) {
		for _, fn := range stmts {
			c, err := fn(e)
			if err != nil || c != ctrlNone {
				return c, err
			}
		}
		return ctrlNone, nil
	}, nil
}

func loopFn(init stmtFn, cond exprFn, post stmtFn, body stmtFn) stmtFn {
	return func(e *env) (ctrl, error) {
		if init != nil {
			if _, err := init(e); err != nil {
				return ctrlNone, err
			}
		}
		for {
			if cond != nil {
				c, err := cond(e)
				if err != nil {
					return ctrlNone, err
				}
				if !c.Bool() {
					return ctrlNone, nil
				}
			}
			c, err := body(e)
			if err != nil {
				return ctrlNone, err
			}
			if c == ctrlBreak {
				return ctrlNone, nil
			}
			if post != nil {
				if _, err := post(e); err != nil {
					return ctrlNone, err
				}
			}
		}
	}
}

// assign handles `name op= expr`, including the timer form `t1 = now`.
func (kc *kcompiler) assign(st AssignStmt) (stmtFn, error) {
	bd := kc.resolve(st.Name)
	if bd.kind == vTimer {
		if st.Op != "=" {
			return nil, errAt(st.Tok, "timers only support plain assignment")
		}
		if id, ok := st.Val.(Ident); !ok || id.Name != "now" {
			return nil, errAt(st.Tok, "timers can only be assigned `now`")
		}
		name := st.Name
		return func(e *env) (ctrl, error) {
			e.ctx.ResetTimer(name)
			return ctrlNone, nil
		}, nil
	}
	val, err := kc.expr(st.Val)
	if err != nil {
		return nil, err
	}
	if st.Op == "=" {
		return kc.write(st.Tok, st.Name, val)
	}
	op := st.Op[:1] // "+=" -> "+"
	tok := st.Tok
	return kc.rmw(st.Tok, st.Name, func(old field.Value) (field.Value, error) {
		return field.Value{}, nil // replaced below
	}, func(e *env) (field.Value, error) {
		return val(e)
	}, op, tok)
}

// write compiles an assignment of the evaluated expression to a variable.
func (kc *kcompiler) write(tok Token, name string, val exprFn) (stmtFn, error) {
	bd := kc.resolve(name)
	switch bd.kind {
	case vSlot:
		slot, typ := bd.slot, bd.typ
		return func(e *env) (ctrl, error) {
			v, err := val(e)
			if err != nil {
				return ctrlNone, err
			}
			e.slots[slot] = v.Convert(typ)
			return ctrlNone, nil
		}, nil
	case vLocal:
		typ := bd.typ
		return func(e *env) (ctrl, error) {
			v, err := val(e)
			if err != nil {
				return ctrlNone, err
			}
			e.ctx.Set(name, v.Convert(typ))
			return ctrlNone, nil
		}, nil
	case vAge, vIndex:
		return nil, errAt(tok, "%q is read-only", name)
	case vArray:
		return nil, errAt(tok, "assign to array %q with put()", name)
	default:
		return nil, errAt(tok, "undefined variable %q", name)
	}
}

// rmw compiles a read-modify-write. Two call shapes: with a pure transform
// (IncStmt), or with (valFn, op, tok) for compound assignment.
func (kc *kcompiler) rmw(tok Token, name string, transform func(field.Value) (field.Value, error), extra ...any) (stmtFn, error) {
	var valFn exprFn
	var op string
	if len(extra) == 3 {
		valFn = extra[0].(func(*env) (field.Value, error))
		op = extra[1].(string)
		tok = extra[2].(Token)
	}
	bd := kc.resolve(name)
	read, err := kc.readVar(tok, name, bd)
	if err != nil {
		return nil, err
	}
	apply := func(e *env, old field.Value) (field.Value, error) {
		if valFn == nil {
			return transform(old)
		}
		rhs, err := valFn(e)
		if err != nil {
			return field.Value{}, err
		}
		return arith(tok, op, old, rhs)
	}
	switch bd.kind {
	case vSlot:
		slot, typ := bd.slot, bd.typ
		return func(e *env) (ctrl, error) {
			nv, err := apply(e, e.slots[slot])
			if err != nil {
				return ctrlNone, err
			}
			e.slots[slot] = nv.Convert(typ)
			return ctrlNone, nil
		}, nil
	case vLocal:
		typ := bd.typ
		return func(e *env) (ctrl, error) {
			old, err := read(e)
			if err != nil {
				return ctrlNone, err
			}
			nv, err := apply(e, old)
			if err != nil {
				return ctrlNone, err
			}
			e.ctx.Set(name, nv.Convert(typ))
			return ctrlNone, nil
		}, nil
	default:
		return nil, errAt(tok, "cannot modify %q", name)
	}
}

func (kc *kcompiler) readVar(tok Token, name string, bd binding) (exprFn, error) {
	switch bd.kind {
	case vSlot:
		slot := bd.slot
		return func(e *env) (field.Value, error) { return e.slots[slot], nil }, nil
	case vLocal:
		return func(e *env) (field.Value, error) { return e.ctx.Get(name), nil }, nil
	case vAge:
		return func(e *env) (field.Value, error) { return field.Int64Val(int64(e.ctx.Age())), nil }, nil
	case vIndex:
		return func(e *env) (field.Value, error) { return field.Int64Val(int64(e.ctx.Index(name))), nil }, nil
	case vEndl:
		return func(*env) (field.Value, error) { return field.StringVal("\n"), nil }, nil
	case vArray:
		return nil, errAt(tok, "array %q must be accessed with get()/put()/extent()", name)
	default:
		return nil, errAt(tok, "undefined variable %q", name)
	}
}

func (kc *kcompiler) expr(x Expr) (exprFn, error) {
	switch ex := x.(type) {
	case IntLit:
		v := field.Int64Val(ex.V)
		return func(*env) (field.Value, error) { return v, nil }, nil
	case FloatLit:
		v := field.Float64Val(ex.V)
		return func(*env) (field.Value, error) { return v, nil }, nil
	case StrLit:
		v := field.StringVal(ex.V)
		return func(*env) (field.Value, error) { return v, nil }, nil
	case Ident:
		return kc.readVar(ex.Tok, ex.Name, kc.resolve(ex.Name))
	case UnExpr:
		sub, err := kc.expr(ex.X)
		if err != nil {
			return nil, err
		}
		op := ex.Op
		return func(e *env) (field.Value, error) {
			v, err := sub(e)
			if err != nil {
				return field.Value{}, err
			}
			if op == "!" {
				return field.BoolVal(!v.Bool()), nil
			}
			if v.Kind().Float() {
				return field.Float64Val(-v.Float64()), nil
			}
			return field.Int64Val(-v.Int64()), nil
		}, nil
	case BinExpr:
		l, err := kc.expr(ex.L)
		if err != nil {
			return nil, err
		}
		r, err := kc.expr(ex.R)
		if err != nil {
			return nil, err
		}
		op, tok := ex.Op, ex.Tok
		if op == "&&" || op == "||" {
			return func(e *env) (field.Value, error) {
				lv, err := l(e)
				if err != nil {
					return field.Value{}, err
				}
				if op == "&&" && !lv.Bool() {
					return field.BoolVal(false), nil
				}
				if op == "||" && lv.Bool() {
					return field.BoolVal(true), nil
				}
				rv, err := r(e)
				if err != nil {
					return field.Value{}, err
				}
				return field.BoolVal(rv.Bool()), nil
			}, nil
		}
		return func(e *env) (field.Value, error) {
			lv, err := l(e)
			if err != nil {
				return field.Value{}, err
			}
			rv, err := r(e)
			if err != nil {
				return field.Value{}, err
			}
			return arith(tok, op, lv, rv)
		}, nil
	case CallExpr:
		return kc.call(ex)
	}
	return nil, fmt.Errorf("lang: unhandled expression %T", x)
}

// arith applies a binary operator with C-like promotion: float64 if either
// side is floating, int64 otherwise.
func arith(tok Token, op string, l, r field.Value) (field.Value, error) {
	isCmp := op == "==" || op == "!=" || op == "<" || op == "<=" || op == ">" || op == ">="
	if l.Kind() == field.String || r.Kind() == field.String {
		if op == "+" {
			return field.StringVal(l.String() + r.String()), nil
		}
		if op == "==" {
			return field.BoolVal(l.String() == r.String()), nil
		}
		if op == "!=" {
			return field.BoolVal(l.String() != r.String()), nil
		}
		return field.Value{}, errAt(tok, "operator %q not defined on strings", op)
	}
	if l.Kind().Float() || r.Kind().Float() {
		a, b := l.Float64(), r.Float64()
		if isCmp {
			return cmpResult(op, compareFloat(a, b)), nil
		}
		switch op {
		case "+":
			return field.Float64Val(a + b), nil
		case "-":
			return field.Float64Val(a - b), nil
		case "*":
			return field.Float64Val(a * b), nil
		case "/":
			if b == 0 {
				return field.Value{}, errAt(tok, "division by zero")
			}
			return field.Float64Val(a / b), nil
		case "%":
			return field.Value{}, errAt(tok, "%% is not defined on floats")
		}
	}
	a, b := l.Int64(), r.Int64()
	if isCmp {
		return cmpResult(op, compareInt(a, b)), nil
	}
	switch op {
	case "+":
		return field.Int64Val(a + b), nil
	case "-":
		return field.Int64Val(a - b), nil
	case "*":
		return field.Int64Val(a * b), nil
	case "/":
		if b == 0 {
			return field.Value{}, errAt(tok, "division by zero")
		}
		return field.Int64Val(a / b), nil
	case "%":
		if b == 0 {
			return field.Value{}, errAt(tok, "modulo by zero")
		}
		return field.Int64Val(a % b), nil
	}
	return field.Value{}, errAt(tok, "unknown operator %q", op)
}

func compareInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func compareFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpResult(op string, c int) field.Value {
	var b bool
	switch op {
	case "==":
		b = c == 0
	case "!=":
		b = c != 0
	case "<":
		b = c < 0
	case "<=":
		b = c <= 0
	case ">":
		b = c > 0
	case ">=":
		b = c >= 0
	}
	return field.BoolVal(b)
}

// call compiles a builtin call.
func (kc *kcompiler) call(ex CallExpr) (exprFn, error) {
	argIdent := func(i int) (string, error) {
		if i >= len(ex.Args) {
			return "", errAt(ex.Tok, "%s: missing argument %d", ex.Name, i+1)
		}
		id, ok := ex.Args[i].(Ident)
		if !ok {
			return "", errAt(ex.Tok, "%s: argument %d must be a name", ex.Name, i+1)
		}
		return id.Name, nil
	}
	compileArgs := func(from int) ([]exprFn, error) {
		var fns []exprFn
		for _, a := range ex.Args[from:] {
			fn, err := kc.expr(a)
			if err != nil {
				return nil, err
			}
			fns = append(fns, fn)
		}
		return fns, nil
	}
	wantArgs := func(n int) error {
		if len(ex.Args) != n {
			return errAt(ex.Tok, "%s expects %d argument(s), got %d", ex.Name, n, len(ex.Args))
		}
		return nil
	}

	switch ex.Name {
	case "put": // put(arr, value, idx...)
		name, err := argIdent(0)
		if err != nil {
			return nil, err
		}
		if kc.resolve(name).kind != vArray {
			return nil, errAt(ex.Tok, "put: %q is not an array local", name)
		}
		if len(ex.Args) < 3 {
			return nil, errAt(ex.Tok, "put expects (array, value, index...)")
		}
		args, err := compileArgs(1)
		if err != nil {
			return nil, err
		}
		return func(e *env) (field.Value, error) {
			vals := make([]field.Value, len(args))
			for i, fn := range args {
				var err error
				if vals[i], err = fn(e); err != nil {
					return field.Value{}, err
				}
			}
			idx := make([]int, len(vals)-1)
			for i, v := range vals[1:] {
				idx[i] = int(v.Int64())
			}
			e.ctx.Array(name).Put(vals[0], idx...)
			return vals[0], nil
		}, nil

	case "get": // get(arr, idx...)
		name, err := argIdent(0)
		if err != nil {
			return nil, err
		}
		if kc.resolve(name).kind != vArray {
			return nil, errAt(ex.Tok, "get: %q is not an array local", name)
		}
		if len(ex.Args) < 2 {
			return nil, errAt(ex.Tok, "get expects (array, index...)")
		}
		args, err := compileArgs(1)
		if err != nil {
			return nil, err
		}
		return func(e *env) (field.Value, error) {
			idx := make([]int, len(args))
			for i, fn := range args {
				v, err := fn(e)
				if err != nil {
					return field.Value{}, err
				}
				idx[i] = int(v.Int64())
			}
			return e.ctx.Array(name).At(idx...), nil
		}, nil

	case "extent": // extent(arr, dim)
		name, err := argIdent(0)
		if err != nil {
			return nil, err
		}
		if kc.resolve(name).kind != vArray {
			return nil, errAt(ex.Tok, "extent: %q is not an array local", name)
		}
		if err := wantArgs(2); err != nil {
			return nil, err
		}
		dim, err := kc.expr(ex.Args[1])
		if err != nil {
			return nil, err
		}
		return func(e *env) (field.Value, error) {
			d, err := dim(e)
			if err != nil {
				return field.Value{}, err
			}
			return field.Int64Val(int64(e.ctx.Array(name).Extent(int(d.Int64())))), nil
		}, nil

	case "sqrt", "abs", "floor", "cos", "sin":
		if err := wantArgs(1); err != nil {
			return nil, err
		}
		arg, err := kc.expr(ex.Args[0])
		if err != nil {
			return nil, err
		}
		name, tok := ex.Name, ex.Tok
		return func(e *env) (field.Value, error) {
			v, err := arg(e)
			if err != nil {
				return field.Value{}, err
			}
			switch name {
			case "sqrt":
				if v.Float64() < 0 {
					return field.Value{}, errAt(tok, "sqrt of negative value")
				}
				return field.Float64Val(math.Sqrt(v.Float64())), nil
			case "floor":
				return field.Float64Val(math.Floor(v.Float64())), nil
			case "cos":
				return field.Float64Val(math.Cos(v.Float64())), nil
			case "sin":
				return field.Float64Val(math.Sin(v.Float64())), nil
			default: // abs
				if v.Kind().Float() {
					return field.Float64Val(math.Abs(v.Float64())), nil
				}
				i := v.Int64()
				if i < 0 {
					i = -i
				}
				return field.Int64Val(i), nil
			}
		}, nil

	case "min", "max", "pow":
		if err := wantArgs(2); err != nil {
			return nil, err
		}
		args, err := compileArgs(0)
		if err != nil {
			return nil, err
		}
		name := ex.Name
		return func(e *env) (field.Value, error) {
			a, err := args[0](e)
			if err != nil {
				return field.Value{}, err
			}
			b, err := args[1](e)
			if err != nil {
				return field.Value{}, err
			}
			switch name {
			case "pow":
				return field.Float64Val(math.Pow(a.Float64(), b.Float64())), nil
			case "min":
				if a.Kind().Float() || b.Kind().Float() {
					return field.Float64Val(math.Min(a.Float64(), b.Float64())), nil
				}
				if a.Int64() < b.Int64() {
					return a, nil
				}
				return b, nil
			default: // max
				if a.Kind().Float() || b.Kind().Float() {
					return field.Float64Val(math.Max(a.Float64(), b.Float64())), nil
				}
				if a.Int64() > b.Int64() {
					return a, nil
				}
				return b, nil
			}
		}, nil

	case "now": // milliseconds on the program clock
		if err := wantArgs(0); err != nil {
			return nil, err
		}
		return func(e *env) (field.Value, error) {
			return field.Int64Val(e.ctx.Now().UnixMilli()), nil
		}, nil

	case "expired": // expired(timer, ms)
		name, err := argIdent(0)
		if err != nil {
			return nil, err
		}
		if kc.resolve(name).kind != vTimer {
			return nil, errAt(ex.Tok, "expired: %q is not a declared timer", name)
		}
		if err := wantArgs(2); err != nil {
			return nil, err
		}
		ms, err := kc.expr(ex.Args[1])
		if err != nil {
			return nil, err
		}
		return func(e *env) (field.Value, error) {
			d, err := ms(e)
			if err != nil {
				return field.Value{}, err
			}
			exp, err := e.ctx.Expired(name, time.Duration(d.Int64())*time.Millisecond)
			if err != nil {
				return field.Value{}, err
			}
			return field.BoolVal(exp), nil
		}, nil

	case "reset": // reset(timer)
		name, err := argIdent(0)
		if err != nil {
			return nil, err
		}
		if kc.resolve(name).kind != vTimer {
			return nil, errAt(ex.Tok, "reset: %q is not a declared timer", name)
		}
		if err := wantArgs(1); err != nil {
			return nil, err
		}
		return func(e *env) (field.Value, error) {
			e.ctx.ResetTimer(name)
			return field.BoolVal(true), nil
		}, nil
	}
	return nil, errAt(ex.Tok, "unknown function %q", ex.Name)
}
