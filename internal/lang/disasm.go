package lang

// Disassembly of the bytecode back-end for p2gc -disasm and the -check
// report.

// Listing is the lowering result for one kernel: either an annotated bytecode
// listing or a fallback notice when the kernel keeps the closure interpreter.
type Listing struct {
	Kernel         string
	Fallback       bool   // kernel could not be lowered; closure body is used
	FallbackReason string // why, when Fallback is true
	Instructions   int    // bytecode length (0 on fallback)
	Text           string // annotated listing (empty on fallback)
}

// Disassemble compiles kernel-language source and returns per-kernel bytecode
// listings. Compile errors are reported exactly as Compile reports them.
func Disassemble(name, src string) ([]Listing, error) {
	file, err := Parse(src)
	if err != nil {
		return nil, err
	}
	fields := map[string]FieldDecl{}
	for _, fd := range file.Fields {
		if _, dup := fields[fd.Name]; dup {
			return nil, errAt(fd.Tok, "duplicate field %q", fd.Name)
		}
		fields[fd.Name] = fd
	}
	timers := map[string]bool{}
	for _, td := range file.Timers {
		timers[td.Name] = true
	}
	out := make([]Listing, 0, len(file.Kernels))
	for i := range file.Kernels {
		kd := &file.Kernels[i]
		// Surface the same compile errors as the real compile.
		if _, err := compileKernelBody(kd, timers); err != nil {
			return nil, err
		}
		bp, lerr := lowerKernelBody(kd, timers, fields)
		if lerr != nil {
			out = append(out, Listing{Kernel: kd.Name, Fallback: true, FallbackReason: lerr.Error()})
			continue
		}
		names := make([]string, len(kd.Locals))
		for j, l := range kd.Locals {
			names[j] = l.Name
		}
		out = append(out, Listing{
			Kernel:       kd.Name,
			Instructions: len(bp.code),
			Text:         bp.disasm(names),
		})
	}
	return out, nil
}
