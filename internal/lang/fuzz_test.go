package lang

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/runtime"
)

// Property: the lexer and parser never panic — arbitrary byte soup either
// parses or returns a positioned error.
func TestQuickParserNeverPanics(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("parser panicked on %q: %v", src, r)
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: random token-shaped fragments inside a code block never panic
// the compiler either.
func TestQuickCompilerNeverPanics(t *testing.T) {
	fragments := []string{
		"int i = 0;", "i += 1;", "for (;;) { break; }", "put(arr, 1, 0);",
		"cout << 1 << endl;", "if (i < 3) { i = 4; } else { i = 5; }",
		"while (i > 0) { i--; }", "x = y;", "int i = get(arr, 0);",
		"stop;", "continue;", "float f = sqrt(2.0);", "z(1,2,3);",
	}
	f := func(picks []uint8) bool {
		var body strings.Builder
		for _, p := range picks {
			body.WriteString(fragments[int(p)%len(fragments)])
			body.WriteByte('\n')
		}
		src := "int32[] f age;\nk:\n local int32[] arr;\n %{\n" + body.String() + "%}\n"
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("compiler panicked on:\n%s\n%v", src, r)
			}
		}()
		_, _ = Compile("fuzz", src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: programs that do compile also run without panicking (errors are
// fine) under a bounded runtime.
func TestFragmentsRunSafely(t *testing.T) {
	srcs := []string{
		// division guarded by zero -> runtime error, not panic
		"int32[] f;\nk:\n local int32[] r;\n %{ int a = 1; int b = 0; put(r, a, 0); if (b != 0) { put(r, a/b, 1); } %}\n store f(0) = r;",
		// deep loop nesting
		"int32[] f;\nk:\n local int32[] r;\n %{ int s = 0; for (int i=0;i<3;++i) { for (int j=0;j<3;++j) { for (int q=0;q<3;++q) { s += 1; } } } put(r, s, 0); %}\n store f(0) = r;",
		// string concatenation in expressions
		"int32[] f;\nk:\n local int32[] r;\n %{ cout << \"a\" + \"b\" << endl; put(r, 1, 0); %}\n store f(0) = r;",
	}
	for i, src := range srcs {
		prog, err := Compile("frag", src)
		if err != nil {
			t.Fatalf("fragment %d: %v", i, err)
		}
		if _, err := runtime.Run(prog, runtime.Options{Workers: 1, MaxAge: 2}); err != nil {
			t.Fatalf("fragment %d: %v", i, err)
		}
	}
}

// ---- differential fuzz: bytecode vs closure -------------------------------

// exprGen builds random, always-parseable kernel-body expressions over a
// fixed set of declared locals. Generated programs may fail at run time
// (division by zero, sqrt of a negative) — that is part of the property: both
// back-ends must fail identically.
type exprGen struct {
	rng *rand.Rand
}

func (g *exprGen) pick(xs []string) string { return xs[g.rng.Intn(len(xs))] }

var (
	genIntVars   = []string{"i0", "i1", "i2"}
	genFloatVars = []string{"f0", "f1"}
	genStrVars   = []string{"s0"}
	genIntOps    = []string{"+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!=", "&&", "||"}
	genFloatOps  = []string{"+", "-", "*", "/", "<", "<=", ">", ">=", "==", "!="}
)

func (g *exprGen) intExpr(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		if g.rng.Intn(2) == 0 {
			return fmt.Sprint(g.rng.Intn(21) - 10)
		}
		return g.pick(genIntVars)
	}
	switch g.rng.Intn(8) {
	case 0:
		// 0-x rather than -x: a negative literal operand would lex as "--".
		return "(0 - " + g.intExpr(depth-1) + ")"
	case 1:
		return "(!" + g.intExpr(depth-1) + ")"
	case 2:
		return "min(" + g.intExpr(depth-1) + ", " + g.intExpr(depth-1) + ")"
	case 3:
		return "max(" + g.intExpr(depth-1) + ", " + g.intExpr(depth-1) + ")"
	case 4:
		return "abs(" + g.intExpr(depth-1) + ")"
	case 5:
		return "get(r, " + fmt.Sprint(g.rng.Intn(8)) + ")"
	default:
		return "(" + g.intExpr(depth-1) + " " + g.pick(genIntOps) + " " + g.intExpr(depth-1) + ")"
	}
}

func (g *exprGen) floatExpr(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		if g.rng.Intn(2) == 0 {
			return fmt.Sprintf("%d.%d", g.rng.Intn(9), g.rng.Intn(100))
		}
		return g.pick(genFloatVars)
	}
	switch g.rng.Intn(7) {
	case 0:
		return "sqrt(abs(" + g.floatExpr(depth-1) + "))"
	case 1:
		return "min(" + g.floatExpr(depth-1) + ", " + g.floatExpr(depth-1) + ")"
	case 2:
		return "max(" + g.floatExpr(depth-1) + ", " + g.intExpr(depth-1) + ")"
	case 3:
		return "floor(" + g.floatExpr(depth-1) + ")"
	case 4:
		// Mixed-kind promotion: int op float must match in both back-ends.
		return "(" + g.intExpr(depth-1) + " " + g.pick(genFloatOps) + " " + g.floatExpr(depth-1) + ")"
	default:
		return "(" + g.floatExpr(depth-1) + " " + g.pick(genFloatOps) + " " + g.floatExpr(depth-1) + ")"
	}
}

func (g *exprGen) strExpr(depth int) string {
	if depth <= 0 || g.rng.Intn(2) == 0 {
		if g.rng.Intn(2) == 0 {
			return `"` + string(rune('a'+g.rng.Intn(4))) + `"`
		}
		return g.pick(genStrVars)
	}
	if g.rng.Intn(2) == 0 {
		return "(" + g.strExpr(depth-1) + " + " + g.intExpr(depth-1) + ")"
	}
	return "(" + g.strExpr(depth-1) + " + " + g.strExpr(depth-1) + ")"
}

// stmt emits one random statement; loops are always bounded so every
// generated program terminates.
func (g *exprGen) stmt(b *strings.Builder, depth int) {
	switch g.rng.Intn(10) {
	case 0:
		fmt.Fprintf(b, "%s = %s;\n", g.pick(genIntVars), g.intExpr(2))
	case 1:
		fmt.Fprintf(b, "%s %s= %s;\n", g.pick(genIntVars), g.pick([]string{"+", "-", "*"}), g.intExpr(2))
	case 2:
		fmt.Fprintf(b, "%s = %s;\n", g.pick(genFloatVars), g.floatExpr(2))
	case 3:
		fmt.Fprintf(b, "%s = %s;\n", g.pick(genStrVars), g.strExpr(2))
	case 4:
		fmt.Fprintf(b, "put(r, %s, %d);\n", g.intExpr(2), g.rng.Intn(8))
	case 5:
		fmt.Fprintf(b, "cout << %s << \" \" << %s << endl;\n", g.intExpr(1), g.strExpr(1))
	case 6:
		if depth > 0 {
			fmt.Fprintf(b, "if (%s) {\n", g.intExpr(2))
			g.stmt(b, depth-1)
			b.WriteString("} else {\n")
			g.stmt(b, depth-1)
			b.WriteString("}\n")
		} else {
			fmt.Fprintf(b, "%s++;\n", g.pick(genIntVars))
		}
	case 7:
		if depth > 0 {
			lv := fmt.Sprintf("l%d", g.rng.Intn(1000))
			fmt.Fprintf(b, "for (int %s = 0; %s < %d; ++%s) {\n", lv, lv, 1+g.rng.Intn(4), lv)
			g.stmt(b, depth-1)
			if g.rng.Intn(3) == 0 {
				fmt.Fprintf(b, "if (%s == 1) { continue; }\n", lv)
			}
			if g.rng.Intn(3) == 0 {
				fmt.Fprintf(b, "if (%s > 2) { break; }\n", lv)
			}
			b.WriteString("}\n")
		} else {
			fmt.Fprintf(b, "%s--;\n", g.pick(genIntVars))
		}
	case 8:
		fmt.Fprintf(b, "%s = pow(%s, 2.0);\n", g.pick(genFloatVars), g.floatExpr(1))
	default:
		fmt.Fprintf(b, "put(r, %s, %d);\n", g.floatExpr(2), g.rng.Intn(8))
	}
}

// genProgram builds a complete run-once program whose result surface is the
// field f plus whatever cout produced.
func (g *exprGen) genProgram() string {
	kinds := []string{"int32", "float64"}
	kind := kinds[g.rng.Intn(len(kinds))]
	var b strings.Builder
	fmt.Fprintf(&b, "%s[] f;\nk:\n  local %s[] r;\n  %%{\n", kind, kind)
	b.WriteString("int i0 = 1; int i1 = -3; int i2 = 7;\n")
	b.WriteString("float f0 = 0.5; float f1 = 2.25;\n")
	b.WriteString("string s0 = \"x\";\n")
	n := 3 + g.rng.Intn(10)
	for j := 0; j < n; j++ {
		g.stmt(&b, 2)
	}
	b.WriteString("put(r, i0 + i1 + i2, 0);\n")
	b.WriteString("%}\n  store f(0) = r;\n")
	return b.String()
}

// TestDifferentialFuzzBackends generates random programs and requires the
// bytecode and closure back-ends to agree exactly: same compile result, same
// runtime error (or none), same cout bytes, and bit-identical field contents.
func TestDifferentialFuzzBackends(t *testing.T) {
	iters := 150
	if testing.Short() {
		iters = 30
	}
	g := &exprGen{rng: rand.New(rand.NewSource(0x2909))}
	for i := 0; i < iters; i++ {
		src := g.genProgram()
		run := func(be Backend) (string, string, string) {
			prog, err := CompileOptions("fuzz", src, Options{Backend: be})
			if err != nil {
				t.Fatalf("iter %d: compile: %v\n%s", i, err, src)
			}
			var out strings.Builder
			node, err := runtime.NewNode(prog, runtime.Options{Workers: 1, Output: &out})
			if err != nil {
				t.Fatalf("iter %d: node: %v", i, err)
			}
			_, rerr := node.Run()
			errStr := ""
			if rerr != nil {
				errStr = rerr.Error()
			}
			snap := ""
			if rerr == nil {
				s, serr := node.Snapshot("f", 0)
				if serr != nil {
					t.Fatalf("iter %d: snapshot: %v", i, serr)
				}
				snap = fmt.Sprint(s)
			}
			return errStr, out.String(), snap
		}
		bcErr, bcOut, bcSnap := run(BackendBytecode)
		clErr, clOut, clSnap := run(BackendClosure)
		if bcErr != clErr {
			t.Fatalf("iter %d: error surfaces diverged\nbytecode: %q\nclosure:  %q\nprogram:\n%s", i, bcErr, clErr, src)
		}
		if bcOut != clOut {
			t.Fatalf("iter %d: cout diverged\nbytecode: %q\nclosure:  %q\nprogram:\n%s", i, bcOut, clOut, src)
		}
		if bcSnap != clSnap {
			t.Fatalf("iter %d: field f diverged\nbytecode: %s\nclosure:  %s\nprogram:\n%s", i, bcSnap, clSnap, src)
		}
	}
}
