package lang

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/runtime"
)

// Property: the lexer and parser never panic — arbitrary byte soup either
// parses or returns a positioned error.
func TestQuickParserNeverPanics(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("parser panicked on %q: %v", src, r)
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: random token-shaped fragments inside a code block never panic
// the compiler either.
func TestQuickCompilerNeverPanics(t *testing.T) {
	fragments := []string{
		"int i = 0;", "i += 1;", "for (;;) { break; }", "put(arr, 1, 0);",
		"cout << 1 << endl;", "if (i < 3) { i = 4; } else { i = 5; }",
		"while (i > 0) { i--; }", "x = y;", "int i = get(arr, 0);",
		"stop;", "continue;", "float f = sqrt(2.0);", "z(1,2,3);",
	}
	f := func(picks []uint8) bool {
		var body strings.Builder
		for _, p := range picks {
			body.WriteString(fragments[int(p)%len(fragments)])
			body.WriteByte('\n')
		}
		src := "int32[] f age;\nk:\n local int32[] arr;\n %{\n" + body.String() + "%}\n"
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("compiler panicked on:\n%s\n%v", src, r)
			}
		}()
		_, _ = Compile("fuzz", src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: programs that do compile also run without panicking (errors are
// fine) under a bounded runtime.
func TestFragmentsRunSafely(t *testing.T) {
	srcs := []string{
		// division guarded by zero -> runtime error, not panic
		"int32[] f;\nk:\n local int32[] r;\n %{ int a = 1; int b = 0; put(r, a, 0); if (b != 0) { put(r, a/b, 1); } %}\n store f(0) = r;",
		// deep loop nesting
		"int32[] f;\nk:\n local int32[] r;\n %{ int s = 0; for (int i=0;i<3;++i) { for (int j=0;j<3;++j) { for (int q=0;q<3;++q) { s += 1; } } } put(r, s, 0); %}\n store f(0) = r;",
		// string concatenation in expressions
		"int32[] f;\nk:\n local int32[] r;\n %{ cout << \"a\" + \"b\" << endl; put(r, 1, 0); %}\n store f(0) = r;",
	}
	for i, src := range srcs {
		prog, err := Compile("frag", src)
		if err != nil {
			t.Fatalf("fragment %d: %v", i, err)
		}
		if _, err := runtime.Run(prog, runtime.Options{Workers: 1, MaxAge: 2}); err != nil {
			t.Fatalf("fragment %d: %v", i, err)
		}
	}
}
