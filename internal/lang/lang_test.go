package lang

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/field"
	"repro/internal/runtime"
	"repro/internal/workloads"
)

func readTestdata(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("int32[] m_data age; %{ value *= 2; // c\n %} /* block */ 3.5 \"s\\n\"")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	want := []string{"int32", "[", "]", "m_data", "age", ";", "%{", "value", "*=", "2", ";", "%}", "3.5", "s\n", ""}
	if len(texts) != len(want) {
		t.Fatalf("tokens %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("token %d = %q, want %q (all: %v)", i, texts[i], want[i], texts)
		}
	}
	if kinds[len(kinds)-1] != TEOF {
		t.Error("missing EOF")
	}
}

func TestLexErrors(t *testing.T) {
	for name, src := range map[string]string{
		"unterminated-string":  `"abc`,
		"unterminated-comment": "/* abc",
		"bad-escape":           `"\q"`,
		"bad-char":             "#",
		"bad-number":           "1.2.3",
	} {
		if _, err := Lex(src); err == nil {
			t.Errorf("%s: expected lex error", name)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("a at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("b at %d:%d", toks[1].Line, toks[1].Col)
	}
}

func TestParseMulSum(t *testing.T) {
	f, err := Parse(readTestdata(t, "mulsum.p2g"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Fields) != 2 || len(f.Kernels) != 4 {
		t.Fatalf("%d fields, %d kernels", len(f.Fields), len(f.Kernels))
	}
	if f.Fields[0].Name != "m_data" || !f.Fields[0].Aged || f.Fields[0].Rank != 1 || f.Fields[0].Kind != field.Int32 {
		t.Errorf("field decl %+v", f.Fields[0])
	}
	mul2 := f.Kernels[1]
	if mul2.Name != "mul2" || mul2.AgeVar != "a" || len(mul2.Indexes) != 1 || mul2.Indexes[0] != "x" {
		t.Errorf("mul2 header %+v", mul2)
	}
	if len(mul2.Fetches) != 1 || mul2.Fetches[0].Ref.Field != "m_data" || mul2.Fetches[0].Ref.Whole {
		t.Errorf("mul2 fetch %+v", mul2.Fetches)
	}
	plus5 := f.Kernels[2]
	if plus5.Stores[0].Ref.Age.Var != "a" || plus5.Stores[0].Ref.Age.Offset != 1 {
		t.Errorf("plus5 store age %+v", plus5.Stores[0].Ref.Age)
	}
	print := f.Kernels[3]
	if !print.Fetches[0].Ref.Whole {
		t.Error("print fetch should be whole-field")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no-rank":        "int32 m;",
		"bad-top":        "= 3;",
		"kernel-stmt":    "k:\n 3;",
		"second-age":     "int32[] f age;\nk:\n age a;\n age b;",
		"bad-index":      "int32[] f age;\nk:\n age a;\n fetch v = f(a)[+];",
		"bad-age":        "int32[] f age;\nk:\n fetch v = f(+)[0];",
		"unterminated":   "k:\n %{ int i = 0;",
		"missing-semi":   "int32[] f age",
		"bad-cout":       "k:\n %{ cout; %}",
		"bad-age-offset": "int32[] f age;\nk:\n age a;\n fetch v = f(a+b)[0];",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected parse error for %q", name, src)
		}
	}
}

// TestCompileMulSumGolden compiles the figure 5 source and checks the exact
// §V output sequence — the same golden values as the Go-native program.
func TestCompileMulSumGolden(t *testing.T) {
	prog, err := Compile("mulsum", readTestdata(t, "mulsum.p2g"))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	rep, err := runtime.Run(prog, runtime.Options{Workers: 1, MaxAge: 1, Output: &out})
	if err != nil {
		t.Fatal(err)
	}
	want := "10 11 12 13 14 \n20 22 24 26 28 \n25 27 29 31 33 \n50 54 58 62 66 \n"
	if out.String() != want {
		t.Errorf("output %q, want %q", out.String(), want)
	}
	if rep.Kernel("mul2").Instances != 10 || rep.Kernel("print").Instances != 2 {
		t.Errorf("instance counts: %v", rep.Kernels)
	}
}

func TestCompileMulSumParallelMatches(t *testing.T) {
	prog, err := Compile("mulsum", readTestdata(t, "mulsum.p2g"))
	if err != nil {
		t.Fatal(err)
	}
	n, err := runtime.NewNode(prog, runtime.Options{Workers: 8, MaxAge: 12})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	s, err := n.Snapshot("m_data", 12)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential reference: m(a+1) = m(a)*2+5.
	vals := []int32{10, 11, 12, 13, 14}
	for a := 0; a < 12; a++ {
		for i, v := range vals {
			vals[i] = v*2 + 5
		}
	}
	if !s.Equal(field.ArrayFromInt32(vals)) {
		t.Errorf("m_data(12) = %v, want %v", s, vals)
	}
}

// TestCompileKMeans runs the kernel-language K-means and checks it behaves
// like Lloyd's algorithm: memberships are valid, centroids move, and the
// computation is deterministic.
func TestCompileKMeans(t *testing.T) {
	prog, err := Compile("kmeans", readTestdata(t, "kmeans.p2g"))
	if err != nil {
		t.Fatal(err)
	}
	const iters = 5
	opts := runtime.Options{
		Workers: 4,
		KernelMaxAge: map[string]int{
			"assign": iters - 1,
			"refine": iters - 1,
			"print":  iters,
		},
	}
	var out strings.Builder
	opts.Output = &out
	node, err := runtime.NewNode(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := node.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stalled) != 0 {
		t.Fatalf("stalled: %v", rep.Stalled)
	}
	if got := rep.Kernel("assign").Instances; got != 60*iters {
		t.Errorf("assign instances = %d, want %d", got, 60*iters)
	}
	if got := rep.Kernel("refine").Instances; got != 4*iters {
		t.Errorf("refine instances = %d, want %d", got, 4*iters)
	}
	if got := rep.Kernel("print").Instances; got != iters+1 {
		t.Errorf("print instances = %d, want %d", got, iters+1)
	}
	// Memberships are cluster indices in range.
	ms, err := node.Snapshot("membership", iters-1)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Extent(0) != 60 {
		t.Fatalf("membership extent %d", ms.Extent(0))
	}
	for i := 0; i < 60; i++ {
		if m := ms.At(i).Int64(); m < 0 || m >= 4 {
			t.Fatalf("membership[%d] = %d out of range", i, m)
		}
	}
	if !strings.Contains(out.String(), "iteration 0 sum") || !strings.Contains(out.String(), "iteration 5 sum") {
		t.Errorf("print output %q", out.String())
	}

	// Determinism across worker counts.
	node2, err := runtime.NewNode(prog, runtime.Options{Workers: 1, KernelMaxAge: opts.KernelMaxAge})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node2.Run(); err != nil {
		t.Fatal(err)
	}
	c1, _ := node.Snapshot("centroids", iters)
	c2, _ := node2.Snapshot("centroids", iters)
	if !c1.Equal(c2) {
		t.Error("kernel-language K-means is nondeterministic across workers")
	}
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]string{
		"dup-field": "int32[] f age;\nint32[] f age;\nk:\n age a;",
		"wrong-age-var": `int32[] f age;
k:
  age a;
  index x;
  local int32 v;
  fetch v = f(b)[x];`,
		"unknown-index": `int32[] f age;
k:
  age a;
  local int32 v;
  fetch v = f(a)[x];`,
		"undefined-var":  "int32[] f age;\nk:\n %{ x = 3; %}",
		"read-undefined": "int32[] f age;\nk:\n %{ int y = zzz; %}",
		"assign-to-age":  "int32[] f age;\nk:\n age a;\n index x;\n local int32 v;\n fetch v = f(a)[x];\n %{ a = 3; %}",
		"put-non-array":  "int32[] f age;\nk:\n local int32 v;\n %{ put(v, 1, 0); %}",
		"get-non-array":  "int32[] f age;\nk:\n local int32 v;\n %{ int z = get(v, 0); %}",
		"unknown-func":   "int32[] f age;\nk:\n %{ int z = frob(1); %}",
		"redeclared":     "int32[] f age;\nk:\n %{ int i = 0; int i = 1; %}",
		"array-expr":     "int32[] f age;\nk:\n local int32[] arr;\n %{ int z = arr + 1; %}",
		"timer-compound": `timer t1;
int32[] f age;
k:
  %{ t1 += 3; %}`,
		"timer-bad-rhs": `timer t1;
int32[] f age;
k:
  %{ t1 = 5; %}`,
		"expired-non-timer": "int32[] f age;\nk:\n %{ int z = 0; if (expired(z, 10)) { z = 1; } %}",
	}
	for name, src := range cases {
		if _, err := Compile(name, src); err == nil {
			t.Errorf("%s: expected compile error", name)
		}
	}
}

// TestBlockLanguageSemantics exercises the interpreter: arithmetic,
// precedence, logic, loops, break/continue, floats, builtins.
func TestBlockLanguageSemantics(t *testing.T) {
	src := `
int32[] out;
calc:
  local int32[] r;
  %{
    int i = 2 + 3 * 4;          // 14
    put(r, i, 0);
    put(r, (2 + 3) * 4, 1);     // 20
    int acc = 0;
    for (int k = 0; k < 10; ++k) {
      if (k % 2 == 0) { continue; }
      if (k > 7) { break; }
      acc += k;                 // 1+3+5+7 = 16
    }
    put(r, acc, 2);
    float f = 7.0 / 2.0;
    put(r, f * 2.0, 3);         // 7 (converted to int32)
    put(r, min(3, 9) + max(3, 9), 4);   // 12
    put(r, abs(-5), 5);         // 5
    put(r, sqrt(49.0), 6);      // 7
    int w = 0;
    while (w < 4) { w++; }
    put(r, w, 7);               // 4
    bool b = 1 < 2 && !(3 < 2) || 0 > 1;
    if (b) { put(r, 1, 8); } else { put(r, 0, 8); }
    put(r, 17 % 5, 9);          // 2
    put(r, pow(2.0, 10.0), 10); // 1024
    put(r, floor(3.9), 11);     // 3
  %}
  store out(0) = r;
`
	prog, err := Compile("calc", src)
	if err != nil {
		t.Fatal(err)
	}
	n, err := runtime.NewNode(prog, runtime.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	s, _ := n.Snapshot("out", 0)
	want := []int32{14, 20, 16, 7, 12, 5, 7, 4, 1, 2, 1024, 3}
	got := s.Int32Slice()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("r[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestRuntimeBlockErrors(t *testing.T) {
	cases := map[string]string{
		"div-zero": "int32[] f;\nk:\n local int32[] r;\n %{ int z = 0; put(r, 1 / z, 0); %}\n store f(0) = r;",
		"mod-zero": "int32[] f;\nk:\n local int32[] r;\n %{ int z = 0; put(r, 1 % z, 0); %}\n store f(0) = r;",
		"neg-sqrt": "int32[] f;\nk:\n local int32[] r;\n %{ put(r, sqrt(-1.0), 0); %}\n store f(0) = r;",
	}
	for name, src := range cases {
		prog, err := Compile(name, src)
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		if _, err := runtime.Run(prog, runtime.Options{Workers: 1}); err == nil {
			t.Errorf("%s: expected runtime error", name)
		}
	}
}

func TestSourceKernelWithStop(t *testing.T) {
	src := `
int32[] data age;
reader:
  age a;
  local int32[] vals;
  %{
    if (a >= 3) {
      stop;
    } else {
      put(vals, a * 10, 0);
    }
  %}
  store data(a) = vals;
`
	prog, err := Compile("reader", src)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := runtime.Run(prog, runtime.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Kernel("reader").Instances; got != 4 {
		t.Errorf("reader instances = %d, want 4 (ages 0..3, last stops)", got)
	}
}

func TestDeadlineExpressions(t *testing.T) {
	src := `
timer t1;
int32[] out;
k:
  local int32[] r;
  %{
    t1 = now;
    if (expired(t1, 60000)) { put(r, 1, 0); } else { put(r, 0, 0); }
    reset(t1);
    int ms = now();
    if (ms > 0) { put(r, 1, 1); }
  %}
  store out(0) = r;
`
	prog, err := Compile("deadline", src)
	if err != nil {
		t.Fatal(err)
	}
	n, err := runtime.NewNode(prog, runtime.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	s, _ := n.Snapshot("out", 0)
	if s.At(0).Int32() != 0 {
		t.Error("freshly reset timer should not be expired")
	}
	if s.At(1).Int32() != 1 {
		t.Error("now() should be positive")
	}
}

func TestStringConcatAndCout(t *testing.T) {
	src := `
int32[] f;
k:
  local int32[] r;
  %{
    cout << "x=" << 1 + 2 << endl;
    put(r, 1, 0);
  %}
  store f(0) = r;
`
	prog, err := Compile("cout", src)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if _, err := runtime.Run(prog, runtime.Options{Workers: 1, Output: &out}); err != nil {
		t.Fatal(err)
	}
	if out.String() != "x=3\n" {
		t.Errorf("cout output %q", out.String())
	}
}

// TestCompileDCTStats runs the in-language DCT pipeline: slab fetches, cos()
// math and source-kernel termination, checked against the same DCT computed
// in Go.
func TestCompileDCTStats(t *testing.T) {
	prog, err := Compile("dctstats", readTestdata(t, "dctstats.p2g"))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	node, err := runtime.NewNode(prog, runtime.Options{Workers: 4, Output: &out})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := node.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Kernel("read").Instances; got != 4 {
		t.Errorf("read instances = %d, want 4 (3 frames + EOF)", got)
	}
	if got := rep.Kernel("dct").Instances; got != 12 {
		t.Errorf("dct instances = %d, want 12 (4 blocks x 3 frames)", got)
	}
	if got := rep.Kernel("stats").Instances; got != 4 {
		t.Errorf("stats instances = %d", got)
	}
	// Reference: recompute frame 0 block 0 in Go with the same LCG and
	// compare the stored DC coefficient.
	seed := int64(9901)
	var blk [64]float64
	for p := 0; p < 64; p++ {
		seed = (seed*1103515245 + 12345) % 2147483648
		blk[p] = float64(seed % 256)
	}
	var sum float64
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			sum += blk[x*8+y] - 128
		}
	}
	wantDC := int32(0.25 * 0.70710678118 * 0.70710678118 * sum / 16)
	dc, err := node.Snapshot("dc", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := dc.At(0).Int32(); got != wantDC {
		t.Errorf("dc(0)[0] = %d, want %d", got, wantDC)
	}
	for a := 0; a <= 3; a++ {
		if !strings.Contains(out.String(), "frame "+string(rune('0'+a))) {
			t.Errorf("missing stats output for frame %d in %q", a, out.String())
		}
	}
}

// TestSlabParsing checks the `[b][]` syntax lowers to a slab fetch.
func TestSlabParsing(t *testing.T) {
	f, err := Parse("float64[][] m age;\nk:\n age a;\n index b;\n local float64[] row;\n fetch row = m(a)[b][];")
	if err != nil {
		t.Fatal(err)
	}
	ref := f.Kernels[0].Fetches[0].Ref
	if len(ref.Index) != 2 || ref.Index[0].Var != "b" || !ref.Index[1].All {
		t.Fatalf("parsed ref %+v", ref)
	}
}

// TestCompileWavefront runs the kernel-language intra-prediction program and
// compares it with the Go-native workload's sequential reference.
func TestCompileWavefront(t *testing.T) {
	prog, err := Compile("wavefront", readTestdata(t, "wavefront.p2g"))
	if err != nil {
		t.Fatal(err)
	}
	node, err := runtime.NewNode(prog, runtime.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := node.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stalled) != 0 {
		t.Fatalf("stalled: %v", rep.Stalled)
	}
	const n = 10
	if got := rep.Kernel("predict").Instances; got != 3*n*n {
		t.Errorf("predict instances = %d, want %d", got, 3*n*n)
	}
	for a := 0; a < 3; a++ {
		in, _ := node.Snapshot("input", a)
		frame := make([][]int32, n)
		for x := range frame {
			frame[x] = make([]int32, n)
			for y := range frame[x] {
				frame[x][y] = in.At(x, y).Int32()
			}
		}
		want := workloads.WavefrontSequential(frame)
		pred, _ := node.Snapshot("pred", a)
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				if got := pred.At(x+1, y+1).Int32(); got != want[x][y] {
					t.Fatalf("frame %d block (%d,%d) = %d, want %d", a, x, y, got, want[x][y])
				}
			}
		}
	}
}

// TestIndexOffsetParsing checks `[x+1]` and `[x-1]` index coordinates.
func TestIndexOffsetParsing(t *testing.T) {
	f, err := Parse("int32[][] m age;\nk:\n age a;\n index x, y;\n local int32 v;\n fetch v = m(a)[x][y];\n store m(a)[x+1][y-1] = v;")
	if err != nil {
		t.Fatal(err)
	}
	st := f.Kernels[0].Stores[0].Ref
	if st.Index[0].Off != 1 || st.Index[1].Off != -1 {
		t.Fatalf("offsets %+v", st.Index)
	}
	if _, err := Parse("int32[] m age;\nk:\n age a;\n index x;\n local int32 v;\n fetch v = m(a)[x+q];"); err == nil {
		t.Error("non-integer offset should fail to parse")
	}
}
