package lang

import (
	"strings"
	"unicode"
)

// multi-character operators, longest first so maximal munch works.
var multiOps = []string{
	"<<=", ">>=", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+=", "-=", "*=", "/=", "%=", "++", "--",
}

// Lex tokenizes kernel-language source. Comments run from // to end of line
// and from /* to */.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	n := len(src)
	advance := func(k int) {
		for j := 0; j < k; j++ {
			if src[i+j] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += k
	}
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				advance(1)
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			start := Token{Line: line, Col: col}
			advance(2)
			for {
				if i+1 >= n {
					return nil, errAt(start, "unterminated block comment")
				}
				if src[i] == '*' && src[i+1] == '/' {
					advance(2)
					break
				}
				advance(1)
			}
		case c == '%' && i+1 < n && src[i+1] == '{':
			toks = append(toks, Token{Kind: TBlockStart, Text: "%{", Line: line, Col: col})
			advance(2)
		case c == '%' && i+1 < n && src[i+1] == '}':
			toks = append(toks, Token{Kind: TBlockEnd, Text: "%}", Line: line, Col: col})
			advance(2)
		case c == '"':
			start := Token{Line: line, Col: col}
			advance(1)
			var sb strings.Builder
			for {
				if i >= n {
					return nil, errAt(start, "unterminated string literal")
				}
				ch := src[i]
				if ch == '"' {
					advance(1)
					break
				}
				if ch == '\\' && i+1 < n {
					advance(1)
					switch src[i] {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					case '\\', '"':
						sb.WriteByte(src[i])
					default:
						return nil, errAt(start, "unknown escape \\%c", src[i])
					}
					advance(1)
					continue
				}
				sb.WriteByte(ch)
				advance(1)
			}
			toks = append(toks, Token{Kind: TString, Text: sb.String(), Line: start.Line, Col: start.Col})
		case unicode.IsDigit(rune(c)):
			start := Token{Line: line, Col: col}
			j := i
			isFloat := false
			for j < n && (unicode.IsDigit(rune(src[j])) || src[j] == '.') {
				if src[j] == '.' {
					if isFloat {
						return nil, errAt(start, "malformed number")
					}
					isFloat = true
				}
				j++
			}
			text := src[i:j]
			kind := TInt
			if isFloat {
				kind = TFloat
			}
			toks = append(toks, Token{Kind: kind, Text: text, Line: start.Line, Col: start.Col})
			advance(j - i)
		case unicode.IsLetter(rune(c)) || c == '_':
			start := Token{Line: line, Col: col}
			j := i
			for j < n && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, Token{Kind: TIdent, Text: src[i:j], Line: start.Line, Col: start.Col})
			advance(j - i)
		default:
			matched := false
			for _, op := range multiOps {
				if strings.HasPrefix(src[i:], op) {
					toks = append(toks, Token{Kind: TPunct, Text: op, Line: line, Col: col})
					advance(len(op))
					matched = true
					break
				}
			}
			if matched {
				continue
			}
			if strings.ContainsRune("+-*/%=<>!&|(){}[];,:.", rune(c)) {
				toks = append(toks, Token{Kind: TPunct, Text: string(c), Line: line, Col: col})
				advance(1)
				continue
			}
			return nil, errAt(Token{Line: line, Col: col}, "unexpected character %q", c)
		}
	}
	toks = append(toks, Token{Kind: TEOF, Line: line, Col: col})
	return toks, nil
}
