package lang

// Lowering from the code-block AST to register bytecode (bytecode.go).
//
// The lowering runs only after compileKernelBody has accepted the kernel, so
// every compile-time error path in here is defensive: a failure aborts the
// lowering (via panic/recover) and CompileFileOptions silently falls back to
// the closure body, which is correct by construction. The invariants the
// lowering maintains:
//
//   - Typed registers always hold canonical payloads for their static kind
//     (the same representation Value.Convert produces), so re-boxing with
//     field.IntValOf/FloatValOf/StrValOf is exact.
//   - Any value whose kind cannot be pinned at compile time lives in a boxed
//     V register, and all arithmetic on it goes through opArithV, which calls
//     the interpreter's own arith() — dynamic-kind semantics cannot drift.
//   - Variable registers are allocated monotonically and never reclaimed on
//     scope pop (mirroring the interpreter's slot numbering); temporaries
//     restart at the variable watermark at each statement.
//
// Locals whose runtime kind cannot be pinned (fetches from Any fields, whole
// or slab fetches into scalars) make the lowering fail rather than guess;
// those kernels keep the closure body.

import (
	"fmt"

	"repro/internal/field"
)

// regClass partitions values by the register file that holds them.
type regClass uint8

const (
	clI regClass = iota // int64 payloads: Uint8, Bool, Int32, Int64
	clF                 // float64 payloads: Float32, Float64
	clS                 // strings
	clV                 // boxed field.Value: Any or dynamically-kinded
)

func kindClass(k field.Kind) regClass {
	switch k {
	case field.Float32, field.Float64:
		return clF
	case field.String:
		return clS
	case field.Any, field.Invalid:
		return clV
	default:
		return clI
	}
}

// lval is a lowered expression value: a register plus its static kind. For
// clV the kind is dynamic (field.Any stands in for "unknown").
type lval struct {
	cl   regClass
	kind field.Kind
	reg  int32
}

// lslot is a declared block-local variable.
type lslot struct {
	cl   regClass
	kind field.Kind
	reg  int32
}

// lref classifies a resolved identifier, mirroring kcompiler.resolve.
type lref struct {
	kind varKind
	slot lslot
	li   int // kernel local index for vLocal/vArray
	typ  field.Kind
	pos  int // coordinate position for vIndex
}

type loopFrame struct {
	breaks    []int
	continues []int
}

// lowerFail carries a lowering error through panic/recover.
type lowerFail struct{ err error }

type lowerer struct {
	k      *KernelDef
	timers map[string]bool
	p      *bcProg

	scopes  []map[string]lslot
	localCl []regClass // effective class per kernel local

	varI, varF, varS, varV int32 // variable watermarks per class
	tI, tF, tS, tV         int32 // temporary tops per class

	loops   []*loopFrame
	orphans []int // break/continue jumps outside any loop
}

// lowerKernelBody lowers one kernel's code blocks to bytecode. Any failure —
// explicit or an unexpected panic — is returned as an error so the caller can
// fall back to the closure interpreter.
func lowerKernelBody(k *KernelDef, timers map[string]bool, fields map[string]FieldDecl) (p *bcProg, err error) {
	defer func() {
		if r := recover(); r != nil {
			p = nil
			if lf, ok := r.(lowerFail); ok {
				err = lf.err
			} else {
				err = fmt.Errorf("lang: lowering %s: %v", k.Name, r)
			}
		}
	}()
	lo := &lowerer{
		k:      k,
		timers: timers,
		p:      &bcProg{kernel: k.Name, nArr: len(k.Locals)},
	}
	lo.classifyLocals(fields)
	lo.push()
	for _, blk := range k.Blocks {
		for _, s := range blk.Stmts {
			lo.resetTmps()
			lo.stmtDiscard(s)
		}
	}
	lo.pop()
	lo.emit(opRet, 0, 0, 0, 0)
	return lo.p, nil
}

// classifyLocals decides the register class used to access each kernel local.
// A local stays typed only when every value the runtime can install in it has
// the declared kind with a canonical payload; otherwise it is accessed boxed,
// and shapes the lowering cannot represent at all (array values flowing into
// scalar registers) abort the lowering.
func (lo *lowerer) classifyLocals(fields map[string]FieldDecl) {
	lo.localCl = make([]regClass, len(lo.k.Locals))
	for li := range lo.k.Locals {
		l := &lo.k.Locals[li]
		cl := kindClass(l.Kind)
		if l.Rank > 0 {
			// Array locals: the class selects typed vs boxed element access.
			// String arrays must stay boxed (unset elements read as Invalid),
			// and Any arrays could hold array-valued elements, which typed
			// registers cannot represent.
			if l.Kind == field.Any {
				lo.failf(l.Tok, "local %q: Any arrays are not lowered", l.Name)
			}
			if l.Kind == field.String {
				cl = clV
			}
		}
		for _, f := range lo.k.Fetches {
			if f.Local != l.Name {
				continue
			}
			fd, ok := fields[f.Ref.Field]
			if !ok {
				lo.failf(f.Tok, "fetch from undeclared field %q", f.Ref.Field)
			}
			if fd.Kind == field.Any {
				// Any fields can hold values of every kind, including array
				// values; keep the closure body.
				lo.failf(f.Tok, "local %q: fetch from Any field is not lowered", l.Name)
			}
			if l.Rank == 0 {
				// Whole-field and slab fetches install array values into the
				// local, which no scalar register class can represent.
				if f.Ref.Whole {
					lo.failf(f.Tok, "local %q: whole-field fetch into scalar is not lowered", l.Name)
				}
				for _, ir := range f.Ref.Index {
					if ir.All {
						lo.failf(f.Tok, "local %q: slab fetch into scalar is not lowered", l.Name)
					}
				}
				// String fields report unset elements as Invalid values,
				// which only a boxed register preserves.
				if fd.Kind != l.Kind || fd.Kind == field.String {
					cl = clV
				}
			} else if fd.Kind != l.Kind {
				cl = clV
			}
		}
		lo.localCl[li] = cl
	}
}

// ---- infrastructure ----

func (lo *lowerer) failf(tok Token, format string, args ...any) {
	panic(lowerFail{err: errAt(tok, format, args...)})
}

func (lo *lowerer) push() { lo.scopes = append(lo.scopes, map[string]lslot{}) }
func (lo *lowerer) pop()  { lo.scopes = lo.scopes[:len(lo.scopes)-1] }

func (lo *lowerer) clsPtrs(cl regClass) (vp, tp *int32, np *int) {
	switch cl {
	case clI:
		return &lo.varI, &lo.tI, &lo.p.nI
	case clF:
		return &lo.varF, &lo.tF, &lo.p.nF
	case clS:
		return &lo.varS, &lo.tS, &lo.p.nS
	default:
		return &lo.varV, &lo.tV, &lo.p.nV
	}
}

// varReg allocates a variable register: monotonic, never reclaimed, so a
// variable's register outlives its scope exactly like an interpreter slot.
func (lo *lowerer) varReg(cl regClass) int32 {
	vp, tp, np := lo.clsPtrs(cl)
	r := *vp
	(*vp)++
	if *tp < *vp {
		*tp = *vp
	}
	if int(*vp) > *np {
		*np = int(*vp)
	}
	return r
}

// tmp allocates a temporary above the variable watermark; resetTmps recycles
// all temporaries at each statement boundary.
func (lo *lowerer) tmp(cl regClass) int32 {
	_, tp, np := lo.clsPtrs(cl)
	r := *tp
	(*tp)++
	if int(*tp) > *np {
		*np = int(*tp)
	}
	return r
}

// tmpBlockI allocates n contiguous int temporaries (array coordinates).
func (lo *lowerer) tmpBlockI(n int) int32 {
	base := lo.tI
	lo.tI += int32(n)
	if int(lo.tI) > lo.p.nI {
		lo.p.nI = int(lo.tI)
	}
	return base
}

func (lo *lowerer) resetTmps() {
	lo.tI, lo.tF, lo.tS, lo.tV = lo.varI, lo.varF, lo.varS, lo.varV
}

func (lo *lowerer) emit(op opcode, a, b, c, d int32) int {
	lo.p.code = append(lo.p.code, instr{op: op, a: a, b: b, c: c, d: d})
	return len(lo.p.code) - 1
}

func (lo *lowerer) here() int32 { return int32(len(lo.p.code)) }

func (lo *lowerer) emitJmp() int { return lo.emit(opJmp, 0, 0, 0, 0) }

// patch points a previously emitted jump at target: opJmp carries the target
// in a, the conditional jumps in b.
func (lo *lowerer) patch(pc int, target int32) {
	if pc < 0 {
		return
	}
	in := &lo.p.code[pc]
	if in.op == opJmp {
		in.a = target
	} else {
		in.b = target
	}
}

func (lo *lowerer) emitMov(cl regClass, dst, src int32) {
	if dst == src {
		return
	}
	switch cl {
	case clI:
		lo.emit(opMovI, dst, src, 0, 0)
	case clF:
		lo.emit(opMovF, dst, src, 0, 0)
	case clS:
		lo.emit(opMovS, dst, src, 0, 0)
	default:
		lo.emit(opMovV, dst, src, 0, 0)
	}
}

// emitRuntimeErr lowers an expression that unconditionally errors when
// reached (the interpreter reports these lazily at runtime, e.g. `%` on
// floats). Code after the opErr is unreachable; the dummy register keeps the
// lowering well-formed.
func (lo *lowerer) emitRuntimeErr(err error) lval {
	lo.emit(opErr, lo.p.errConst(err), 0, 0, 0)
	return lval{cl: clI, kind: field.Int64, reg: lo.tmp(clI)}
}

// resolve classifies an identifier with the same precedence as
// kcompiler.resolve: block scopes innermost-first, kernel locals, the age
// variable, index variables, timers, endl.
func (lo *lowerer) resolve(name string) lref {
	for i := len(lo.scopes) - 1; i >= 0; i-- {
		if sl, ok := lo.scopes[i][name]; ok {
			return lref{kind: vSlot, slot: sl, typ: sl.kind}
		}
	}
	for li := range lo.k.Locals {
		l := &lo.k.Locals[li]
		if l.Name == name {
			if l.Rank > 0 {
				return lref{kind: vArray, li: li, typ: l.Kind}
			}
			return lref{kind: vLocal, li: li, typ: l.Kind}
		}
	}
	if name == lo.k.AgeVar && name != "" {
		return lref{kind: vAge}
	}
	for pos, iv := range lo.k.Indexes {
		if iv == name {
			return lref{kind: vIndex, pos: pos}
		}
	}
	if lo.timers[name] {
		return lref{kind: vTimer}
	}
	if name == "endl" {
		return lref{kind: vEndl}
	}
	return lref{kind: vUnknown}
}

func (lo *lowerer) declare(tok Token, name string, k field.Kind) lslot {
	top := lo.scopes[len(lo.scopes)-1]
	if _, dup := top[name]; dup {
		lo.failf(tok, "variable %q redeclared in the same scope", name)
	}
	cl := kindClass(k)
	sl := lslot{cl: cl, kind: k, reg: lo.varReg(cl)}
	top[name] = sl
	return sl
}

// ---- statements ----

// stmtDiscard lowers a statement whose break/continue control is discarded by
// the interpreter (top-level statements, for-loop init and post clauses):
// loop controls inside it that escape any local loop jump to the end of the
// statement, which is exactly "ctrl ignored, continue after it".
func (lo *lowerer) stmtDiscard(s Stmt) {
	savedLoops, savedOrphans := lo.loops, lo.orphans
	lo.loops, lo.orphans = nil, nil
	lo.stmt(s)
	end := lo.here()
	for _, pc := range lo.orphans {
		lo.patch(pc, end)
	}
	lo.loops, lo.orphans = savedLoops, savedOrphans
}

func (lo *lowerer) stmt(s Stmt) {
	switch st := s.(type) {
	case DeclStmt:
		// The initializer is lowered before the declaration, so `int x = x;`
		// resolves the outer x exactly like the interpreter.
		if st.Init != nil {
			v := lo.expr(st.Init)
			sl := lo.declare(st.Tok, st.Name, st.Kind)
			lo.storeSlot(sl, v)
		} else {
			sl := lo.declare(st.Tok, st.Name, st.Kind)
			lo.storeZero(sl)
		}

	case AssignStmt:
		lo.assign(st)

	case IncStmt:
		lo.incStmt(st)

	case IfStmt:
		c := lo.expr(st.Cond)
		jf := lo.truthyJumpFalse(c)
		lo.blockStmt(st.Then)
		if st.Else != nil {
			jend := lo.emitJmp()
			lo.patch(jf, lo.here())
			lo.blockStmt(*st.Else)
			lo.patch(jend, lo.here())
		} else {
			lo.patch(jf, lo.here())
		}

	case WhileStmt:
		head := lo.here()
		c := lo.expr(st.Cond)
		jf := lo.truthyJumpFalse(c)
		lf := &loopFrame{}
		lo.loops = append(lo.loops, lf)
		lo.blockStmt(st.Body)
		lo.loops = lo.loops[:len(lo.loops)-1]
		lo.emit(opJmp, head, 0, 0, 0)
		end := lo.here()
		lo.patch(jf, end)
		for _, pc := range lf.breaks {
			lo.patch(pc, end)
		}
		for _, pc := range lf.continues {
			lo.patch(pc, head)
		}

	case ForStmt:
		lo.push()
		if st.Init != nil {
			lo.resetTmps()
			lo.stmtDiscard(st.Init)
		}
		head := lo.here()
		jf := -1
		if st.Cond != nil {
			lo.resetTmps()
			c := lo.expr(st.Cond)
			jf = lo.truthyJumpFalse(c)
		}
		lf := &loopFrame{}
		lo.loops = append(lo.loops, lf)
		lo.blockStmt(st.Body)
		lo.loops = lo.loops[:len(lo.loops)-1]
		postPos := lo.here()
		if st.Post != nil {
			lo.resetTmps()
			lo.stmtDiscard(st.Post)
		}
		lo.emit(opJmp, head, 0, 0, 0)
		end := lo.here()
		lo.patch(jf, end)
		for _, pc := range lf.breaks {
			lo.patch(pc, end)
		}
		for _, pc := range lf.continues {
			lo.patch(pc, postPos)
		}
		lo.pop()

	case BreakStmt:
		pc := lo.emitJmp()
		if len(lo.loops) > 0 {
			lf := lo.loops[len(lo.loops)-1]
			lf.breaks = append(lf.breaks, pc)
		} else {
			lo.orphans = append(lo.orphans, pc)
		}

	case ContinueStmt:
		pc := lo.emitJmp()
		if len(lo.loops) > 0 {
			lf := lo.loops[len(lo.loops)-1]
			lf.continues = append(lf.continues, pc)
		} else {
			lo.orphans = append(lo.orphans, pc)
		}

	case StopStmt:
		lo.emit(opStop, 0, 0, 0, 0)

	case CoutStmt:
		lo.emit(opCoutClear, 0, 0, 0, 0)
		for _, a := range st.Args {
			v := lo.expr(a)
			switch v.cl {
			case clI:
				if v.kind == field.Bool {
					lo.emit(opCoutB, v.reg, 0, 0, 0)
				} else {
					lo.emit(opCoutI, v.reg, 0, 0, 0)
				}
			case clF:
				lo.emit(opCoutF, v.reg, 0, 0, 0)
			case clS:
				lo.emit(opCoutS, v.reg, 0, 0, 0)
			default:
				lo.emit(opCoutV, v.reg, 0, 0, 0)
			}
		}
		lo.emit(opCoutFlush, 0, 0, 0, 0)

	case ExprStmt:
		lo.expr(st.X)

	case Block:
		lo.blockStmt(st)

	default:
		panic(lowerFail{err: fmt.Errorf("lang: unhandled statement %T", s)})
	}
}

func (lo *lowerer) blockStmt(b Block) {
	lo.push()
	for _, s := range b.Stmts {
		lo.resetTmps()
		lo.stmt(s)
	}
	lo.pop()
}

// assign lowers `name op= expr`, including the timer form `t1 = now`.
func (lo *lowerer) assign(st AssignStmt) {
	ref := lo.resolve(st.Name)
	if ref.kind == vTimer {
		if st.Op != "=" {
			lo.failf(st.Tok, "timers only support plain assignment")
		}
		if id, ok := st.Val.(Ident); !ok || id.Name != "now" {
			lo.failf(st.Tok, "timers can only be assigned `now`")
		}
		lo.emit(opResetTimer, lo.p.timerConst(st.Name), 0, 0, 0)
		return
	}
	if st.Op == "=" {
		v := lo.expr(st.Val)
		lo.writeVar(st.Tok, st.Name, ref, v)
		return
	}
	// Compound assignment: read the old value first, then evaluate the right
	// side, then combine — the interpreter's rmw order.
	old := lo.readRef(st.Tok, st.Name, ref)
	if ref.kind != vSlot && ref.kind != vLocal {
		lo.failf(st.Tok, "cannot modify %q", st.Name)
	}
	rhs := lo.expr(st.Val)
	nv := lo.arithLower(st.Tok, st.Op[:1], old, rhs)
	lo.writeVar(st.Tok, st.Name, ref, nv)
}

func (lo *lowerer) incStmt(st IncStmt) {
	ref := lo.resolve(st.Name)
	old := lo.readRef(st.Tok, st.Name, ref)
	if ref.kind != vSlot && ref.kind != vLocal {
		lo.failf(st.Tok, "cannot modify %q", st.Name)
	}
	delta := int64(1)
	if st.Op == "--" {
		delta = -1
	}
	var nv lval
	switch old.cl {
	case clF:
		d := lo.tmp(clF)
		lo.emit(opLdF, d, lo.p.floatConst(float64(delta)), 0, 0)
		dst := lo.tmp(clF)
		lo.emit(opAddF, dst, old.reg, d, 0)
		nv = lval{cl: clF, kind: field.Float64, reg: dst}
	case clI:
		d := lo.tmp(clI)
		lo.emit(opLdI, d, lo.p.intConst(delta), 0, 0)
		dst := lo.tmp(clI)
		lo.emit(opAddI, dst, old.reg, d, 0)
		nv = lval{cl: clI, kind: field.Int64, reg: dst}
	case clS:
		// String payloads read as integer 0, so the increment is the delta.
		dst := lo.tmp(clI)
		lo.emit(opLdI, dst, lo.p.intConst(delta), 0, 0)
		nv = lval{cl: clI, kind: field.Int64, reg: dst}
	default:
		dst := lo.tmp(clV)
		lo.emit(opIncV, dst, old.reg, int32(delta), 0)
		nv = lval{cl: clV, kind: field.Any, reg: dst}
	}
	lo.writeVar(st.Tok, st.Name, ref, nv)
}

// writeVar stores v into a resolved variable with Convert(declared kind)
// semantics.
func (lo *lowerer) writeVar(tok Token, name string, ref lref, v lval) {
	switch ref.kind {
	case vSlot:
		lo.storeSlot(ref.slot, v)
	case vLocal:
		lo.storeLocal(ref.li, ref.typ, v)
	case vAge, vIndex:
		lo.failf(tok, "%q is read-only", name)
	case vArray:
		lo.failf(tok, "assign to array %q with put()", name)
	default:
		lo.failf(tok, "undefined variable %q", name)
	}
}

func (lo *lowerer) storeSlot(sl lslot, v lval) {
	if sl.cl == clV {
		bv := lo.toBoxed(v)
		lo.emit(opConvV, sl.reg, bv.reg, int32(sl.kind), 0)
		return
	}
	cv := lo.convert(v, sl.kind)
	lo.emitMov(sl.cl, sl.reg, cv.reg)
}

func (lo *lowerer) storeZero(sl lslot) {
	switch sl.cl {
	case clI:
		lo.emit(opLdI, sl.reg, lo.p.intConst(0), 0, 0)
	case clF:
		lo.emit(opLdF, sl.reg, lo.p.floatConst(0), 0, 0)
	case clS:
		lo.emit(opLdS, sl.reg, lo.p.strConst(""), 0, 0)
	default:
		lo.emit(opZeroV, sl.reg, int32(sl.kind), 0, 0)
	}
}

func (lo *lowerer) storeLocal(li int, typ field.Kind, v lval) {
	switch lo.localCl[li] {
	case clI:
		cv := lo.convert(v, typ)
		lo.emit(opStLI, int32(li), cv.reg, int32(typ), 0)
	case clF:
		cv := lo.convert(v, typ)
		lo.emit(opStLF, int32(li), cv.reg, int32(typ), 0)
	case clS:
		cv := lo.convert(v, typ)
		lo.emit(opStLS, int32(li), cv.reg, 0, 0)
	default:
		bv := lo.toBoxed(v)
		t := lo.tmp(clV)
		lo.emit(opConvV, t, bv.reg, int32(typ), 0)
		lo.emit(opStLV, int32(li), t, 0, 0)
	}
}

// readRef lowers a read of a resolved identifier.
func (lo *lowerer) readRef(tok Token, name string, ref lref) lval {
	switch ref.kind {
	case vSlot:
		// Slot registers are stable, so the expression aliases the register
		// directly; no statement can overwrite it mid-expression.
		return lval{cl: ref.slot.cl, kind: ref.slot.kind, reg: ref.slot.reg}
	case vLocal:
		switch lo.localCl[ref.li] {
		case clI:
			dst := lo.tmp(clI)
			lo.emit(opLdLI, dst, int32(ref.li), 0, 0)
			return lval{cl: clI, kind: ref.typ, reg: dst}
		case clF:
			dst := lo.tmp(clF)
			lo.emit(opLdLF, dst, int32(ref.li), 0, 0)
			return lval{cl: clF, kind: ref.typ, reg: dst}
		case clS:
			dst := lo.tmp(clS)
			lo.emit(opLdLS, dst, int32(ref.li), 0, 0)
			return lval{cl: clS, kind: field.String, reg: dst}
		default:
			dst := lo.tmp(clV)
			lo.emit(opLdLV, dst, int32(ref.li), 0, 0)
			return lval{cl: clV, kind: field.Any, reg: dst}
		}
	case vAge:
		dst := lo.tmp(clI)
		lo.emit(opLdAge, dst, 0, 0, 0)
		return lval{cl: clI, kind: field.Int64, reg: dst}
	case vIndex:
		dst := lo.tmp(clI)
		lo.emit(opLdIdx, dst, int32(ref.pos), 0, 0)
		return lval{cl: clI, kind: field.Int64, reg: dst}
	case vEndl:
		dst := lo.tmp(clS)
		lo.emit(opLdS, dst, lo.p.strConst("\n"), 0, 0)
		return lval{cl: clS, kind: field.String, reg: dst}
	case vArray:
		lo.failf(tok, "array %q must be accessed with get()/put()/extent()", name)
	default:
		lo.failf(tok, "undefined variable %q", name)
	}
	panic("unreachable")
}

// ---- expressions ----

func (lo *lowerer) expr(x Expr) lval {
	switch ex := x.(type) {
	case IntLit:
		dst := lo.tmp(clI)
		lo.emit(opLdI, dst, lo.p.intConst(ex.V), 0, 0)
		return lval{cl: clI, kind: field.Int64, reg: dst}
	case FloatLit:
		dst := lo.tmp(clF)
		lo.emit(opLdF, dst, lo.p.floatConst(ex.V), 0, 0)
		return lval{cl: clF, kind: field.Float64, reg: dst}
	case StrLit:
		dst := lo.tmp(clS)
		lo.emit(opLdS, dst, lo.p.strConst(ex.V), 0, 0)
		return lval{cl: clS, kind: field.String, reg: dst}
	case Ident:
		return lo.readRef(ex.Tok, ex.Name, lo.resolve(ex.Name))
	case UnExpr:
		return lo.unary(ex)
	case BinExpr:
		if ex.Op == "&&" || ex.Op == "||" {
			return lo.shortCircuit(ex)
		}
		l := lo.expr(ex.L)
		r := lo.expr(ex.R)
		return lo.arithLower(ex.Tok, ex.Op, l, r)
	case CallExpr:
		return lo.call(ex)
	}
	panic(lowerFail{err: fmt.Errorf("lang: unhandled expression %T", x)})
}

func (lo *lowerer) unary(ex UnExpr) lval {
	v := lo.expr(ex.X)
	if ex.Op == "!" {
		dst := lo.tmp(clI)
		switch v.cl {
		case clI:
			lo.emit(opNotI, dst, v.reg, 0, 0)
		case clF:
			lo.emit(opNotF, dst, v.reg, 0, 0)
		case clS:
			// Strings are always falsy (their integer payload is 0).
			lo.emit(opLdI, dst, lo.p.intConst(1), 0, 0)
		default:
			lo.emit(opNotV, dst, v.reg, 0, 0)
		}
		return lval{cl: clI, kind: field.Bool, reg: dst}
	}
	// Unary minus.
	switch v.cl {
	case clF:
		dst := lo.tmp(clF)
		lo.emit(opNegF, dst, v.reg, 0, 0)
		return lval{cl: clF, kind: field.Float64, reg: dst}
	case clI:
		dst := lo.tmp(clI)
		lo.emit(opNegI, dst, v.reg, 0, 0)
		return lval{cl: clI, kind: field.Int64, reg: dst}
	case clS:
		dst := lo.tmp(clI)
		lo.emit(opLdI, dst, lo.p.intConst(0), 0, 0)
		return lval{cl: clI, kind: field.Int64, reg: dst}
	default:
		dst := lo.tmp(clV)
		lo.emit(opNegV, dst, v.reg, 0, 0)
		return lval{cl: clV, kind: field.Any, reg: dst}
	}
}

// shortCircuit lowers && and ||; the result is always Bool, like the
// interpreter's BoolVal results.
func (lo *lowerer) shortCircuit(ex BinExpr) lval {
	dst := lo.tmp(clI)
	if ex.Op == "&&" {
		l := lo.expr(ex.L)
		jf := lo.truthyJumpFalse(l)
		r := lo.expr(ex.R)
		lo.boolInto(dst, r)
		jend := lo.emitJmp()
		lo.patch(jf, lo.here())
		lo.emit(opLdI, dst, lo.p.intConst(0), 0, 0)
		lo.patch(jend, lo.here())
	} else {
		l := lo.expr(ex.L)
		jt := lo.truthyJumpTrue(l)
		r := lo.expr(ex.R)
		lo.boolInto(dst, r)
		jend := lo.emitJmp()
		lo.patch(jt, lo.here())
		lo.emit(opLdI, dst, lo.p.intConst(1), 0, 0)
		lo.patch(jend, lo.here())
	}
	return lval{cl: clI, kind: field.Bool, reg: dst}
}

// truthyJumpFalse emits a jump taken when v is falsy and returns its pc for
// patching (-1 when the jump can never be taken).
func (lo *lowerer) truthyJumpFalse(v lval) int {
	switch v.cl {
	case clI:
		return lo.emit(opJzI, v.reg, 0, 0, 0)
	case clF:
		return lo.emit(opJzF, v.reg, 0, 0, 0)
	case clS:
		// Strings are always falsy: unconditional jump.
		return lo.emitJmp()
	default:
		return lo.emit(opJzV, v.reg, 0, 0, 0)
	}
}

// truthyJumpTrue emits a jump taken when v is truthy (-1 when impossible).
func (lo *lowerer) truthyJumpTrue(v lval) int {
	switch v.cl {
	case clI:
		return lo.emit(opJnzI, v.reg, 0, 0, 0)
	case clF:
		t := lo.tmp(clI)
		lo.emit(opBoolF, t, v.reg, 0, 0)
		return lo.emit(opJnzI, t, 0, 0, 0)
	case clS:
		return -1
	default:
		t := lo.tmp(clI)
		lo.emit(opBoolV, t, v.reg, 0, 0)
		return lo.emit(opJnzI, t, 0, 0, 0)
	}
}

// boolInto normalizes v to 0/1 in the int register dst.
func (lo *lowerer) boolInto(dst int32, v lval) {
	switch v.cl {
	case clI:
		lo.emit(opBoolI, dst, v.reg, 0, 0)
	case clF:
		lo.emit(opBoolF, dst, v.reg, 0, 0)
	case clS:
		lo.emit(opLdI, dst, lo.p.intConst(0), 0, 0)
	default:
		lo.emit(opBoolV, dst, v.reg, 0, 0)
	}
}

// ---- arithmetic ----

func cmpOpI(op string) opcode {
	switch op {
	case "==":
		return opEqI
	case "!=":
		return opNeI
	case "<":
		return opLtI
	case "<=":
		return opLeI
	case ">":
		return opGtI
	default:
		return opGeI
	}
}

func cmpOpF(op string) opcode {
	switch op {
	case "==":
		return opEqF
	case "!=":
		return opNeF
	case "<":
		return opLtF
	case "<=":
		return opLeF
	case ">":
		return opGtF
	default:
		return opGeF
	}
}

func isCmpOp(op string) bool {
	switch op {
	case "==", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

// arithLower lowers a binary operator with the interpreter's arith()
// promotion rules: strings first (+, ==, != only), then float promotion, then
// int64. Any boxed operand routes through opArithV, which calls arith()
// itself at runtime.
func (lo *lowerer) arithLower(tok Token, op string, l, r lval) lval {
	if l.cl == clV || r.cl == clV {
		lb := lo.toBoxed(l)
		rb := lo.toBoxed(r)
		dst := lo.tmp(clV)
		lo.emit(opArithV, dst, lb.reg, rb.reg, lo.p.siteConst(op, tok))
		return lval{cl: clV, kind: field.Any, reg: dst}
	}
	if l.kind == field.String || r.kind == field.String {
		switch op {
		case "+":
			ls := lo.toStr(l)
			rs := lo.toStr(r)
			dst := lo.tmp(clS)
			lo.emit(opConcatS, dst, ls.reg, rs.reg, 0)
			return lval{cl: clS, kind: field.String, reg: dst}
		case "==", "!=":
			ls := lo.toStr(l)
			rs := lo.toStr(r)
			dst := lo.tmp(clI)
			if op == "==" {
				lo.emit(opEqS, dst, ls.reg, rs.reg, 0)
			} else {
				lo.emit(opNeS, dst, ls.reg, rs.reg, 0)
			}
			return lval{cl: clI, kind: field.Bool, reg: dst}
		default:
			return lo.emitRuntimeErr(errAt(tok, "operator %q not defined on strings", op))
		}
	}
	if l.kind.Float() || r.kind.Float() {
		la := lo.floatPayload(l)
		ra := lo.floatPayload(r)
		if isCmpOp(op) {
			dst := lo.tmp(clI)
			lo.emit(cmpOpF(op), dst, la.reg, ra.reg, 0)
			return lval{cl: clI, kind: field.Bool, reg: dst}
		}
		switch op {
		case "+", "-", "*":
			dst := lo.tmp(clF)
			var fop opcode
			switch op {
			case "+":
				fop = opAddF
			case "-":
				fop = opSubF
			default:
				fop = opMulF
			}
			lo.emit(fop, dst, la.reg, ra.reg, 0)
			return lval{cl: clF, kind: field.Float64, reg: dst}
		case "/":
			dst := lo.tmp(clF)
			lo.emit(opDivF, dst, la.reg, ra.reg, lo.p.errConst(errAt(tok, "division by zero")))
			return lval{cl: clF, kind: field.Float64, reg: dst}
		case "%":
			return lo.emitRuntimeErr(errAt(tok, "%% is not defined on floats"))
		default:
			return lo.emitRuntimeErr(errAt(tok, "unknown operator %q", op))
		}
	}
	// Integer path: both operands are int-class, payloads already Int64().
	if isCmpOp(op) {
		dst := lo.tmp(clI)
		lo.emit(cmpOpI(op), dst, l.reg, r.reg, 0)
		return lval{cl: clI, kind: field.Bool, reg: dst}
	}
	dst := lo.tmp(clI)
	switch op {
	case "+":
		lo.emit(opAddI, dst, l.reg, r.reg, 0)
	case "-":
		lo.emit(opSubI, dst, l.reg, r.reg, 0)
	case "*":
		lo.emit(opMulI, dst, l.reg, r.reg, 0)
	case "/":
		lo.emit(opDivI, dst, l.reg, r.reg, lo.p.errConst(errAt(tok, "division by zero")))
	case "%":
		lo.emit(opModI, dst, l.reg, r.reg, lo.p.errConst(errAt(tok, "modulo by zero")))
	default:
		return lo.emitRuntimeErr(errAt(tok, "unknown operator %q", op))
	}
	return lval{cl: clI, kind: field.Int64, reg: dst}
}

// ---- conversions ----

// convert produces v coerced to kind k (Value.Convert semantics) in k's
// register class. clV targets are handled by the callers via opConvV.
func (lo *lowerer) convert(v lval, k field.Kind) lval {
	if v.cl != clV && v.kind == k {
		return v
	}
	switch k {
	case field.Bool:
		dst := lo.tmp(clI)
		lo.boolIntoReg(dst, v)
		return lval{cl: clI, kind: field.Bool, reg: dst}
	case field.Int64:
		p := lo.intPayload(v)
		return lval{cl: clI, kind: k, reg: p.reg}
	case field.Int32:
		p := lo.intPayload(v)
		dst := lo.tmp(clI)
		lo.emit(opTrunc32, dst, p.reg, 0, 0)
		return lval{cl: clI, kind: k, reg: dst}
	case field.Uint8:
		p := lo.intPayload(v)
		dst := lo.tmp(clI)
		lo.emit(opTruncU8, dst, p.reg, 0, 0)
		return lval{cl: clI, kind: k, reg: dst}
	case field.Float32, field.Float64:
		p := lo.floatPayload(v)
		return lval{cl: clF, kind: k, reg: p.reg}
	case field.String:
		s := lo.toStr(v)
		return lval{cl: clS, kind: field.String, reg: s.reg}
	}
	panic(lowerFail{err: fmt.Errorf("lang: cannot convert to kind %v in registers", k)})
}

func (lo *lowerer) boolIntoReg(dst int32, v lval) {
	switch v.cl {
	case clI:
		lo.emit(opBoolI, dst, v.reg, 0, 0)
	case clF:
		lo.emit(opBoolF, dst, v.reg, 0, 0)
	case clS:
		lo.emit(opLdI, dst, lo.p.intConst(0), 0, 0)
	default:
		lo.emit(opBoolV, dst, v.reg, 0, 0)
	}
}

// intPayload produces Value.Int64() of v in an int register.
func (lo *lowerer) intPayload(v lval) lval {
	switch v.cl {
	case clI:
		return v
	case clF:
		dst := lo.tmp(clI)
		lo.emit(opF2I, dst, v.reg, 0, 0)
		return lval{cl: clI, kind: field.Int64, reg: dst}
	case clS:
		dst := lo.tmp(clI)
		lo.emit(opLdI, dst, lo.p.intConst(0), 0, 0)
		return lval{cl: clI, kind: field.Int64, reg: dst}
	default:
		dst := lo.tmp(clI)
		lo.emit(opUnboxVI, dst, v.reg, 0, 0)
		return lval{cl: clI, kind: field.Int64, reg: dst}
	}
}

// floatPayload produces Value.Float64() of v in a float register.
func (lo *lowerer) floatPayload(v lval) lval {
	switch v.cl {
	case clF:
		return v
	case clI:
		dst := lo.tmp(clF)
		lo.emit(opI2F, dst, v.reg, 0, 0)
		return lval{cl: clF, kind: field.Float64, reg: dst}
	case clS:
		dst := lo.tmp(clF)
		lo.emit(opLdF, dst, lo.p.floatConst(0), 0, 0)
		return lval{cl: clF, kind: field.Float64, reg: dst}
	default:
		dst := lo.tmp(clF)
		lo.emit(opUnboxVF, dst, v.reg, 0, 0)
		return lval{cl: clF, kind: field.Float64, reg: dst}
	}
}

// toStr produces Value.String() of v in a string register.
func (lo *lowerer) toStr(v lval) lval {
	switch v.cl {
	case clS:
		return v
	case clI:
		dst := lo.tmp(clS)
		if v.kind == field.Bool {
			lo.emit(opB2S, dst, v.reg, 0, 0)
		} else {
			lo.emit(opI2S, dst, v.reg, 0, 0)
		}
		return lval{cl: clS, kind: field.String, reg: dst}
	case clF:
		dst := lo.tmp(clS)
		lo.emit(opF2S, dst, v.reg, 0, 0)
		return lval{cl: clS, kind: field.String, reg: dst}
	default:
		dst := lo.tmp(clS)
		lo.emit(opV2S, dst, v.reg, 0, 0)
		return lval{cl: clS, kind: field.String, reg: dst}
	}
}

// toBoxed produces v as a boxed field.Value in a V register, preserving its
// static kind exactly (payloads are canonical, so no conversion is applied).
func (lo *lowerer) toBoxed(v lval) lval {
	switch v.cl {
	case clV:
		return v
	case clI:
		dst := lo.tmp(clV)
		lo.emit(opBoxI, dst, v.reg, int32(v.kind), 0)
		return lval{cl: clV, kind: v.kind, reg: dst}
	case clF:
		dst := lo.tmp(clV)
		lo.emit(opBoxF, dst, v.reg, int32(v.kind), 0)
		return lval{cl: clV, kind: v.kind, reg: dst}
	default:
		dst := lo.tmp(clV)
		lo.emit(opBoxS, dst, v.reg, int32(v.kind), 0)
		return lval{cl: clV, kind: v.kind, reg: dst}
	}
}

// ---- builtin calls ----

func (lo *lowerer) call(ex CallExpr) lval {
	argIdent := func(i int) string {
		if i >= len(ex.Args) {
			lo.failf(ex.Tok, "%s: missing argument %d", ex.Name, i+1)
		}
		id, ok := ex.Args[i].(Ident)
		if !ok {
			lo.failf(ex.Tok, "%s: argument %d must be a name", ex.Name, i+1)
		}
		return id.Name
	}
	wantArgs := func(n int) {
		if len(ex.Args) != n {
			lo.failf(ex.Tok, "%s expects %d argument(s), got %d", ex.Name, n, len(ex.Args))
		}
	}

	switch ex.Name {
	case "put": // put(arr, value, idx...)
		name := argIdent(0)
		ref := lo.resolve(name)
		if ref.kind != vArray {
			lo.failf(ex.Tok, "put: %q is not an array local", name)
		}
		if len(ex.Args) < 3 {
			lo.failf(ex.Tok, "put expects (array, value, index...)")
		}
		val := lo.expr(ex.Args[1])
		n := len(ex.Args) - 2
		base := lo.tmpBlockI(n)
		for i, a := range ex.Args[2:] {
			iv := lo.expr(a)
			p := lo.intPayload(iv)
			lo.emitMov(clI, base+int32(i), p.reg)
		}
		switch lo.localCl[ref.li] {
		case clI:
			// The register carries the payload; FlatSetInt applies the same
			// width truncation as slab.set, but Bool normalization needs the
			// truth value, not the integer payload.
			var pv lval
			if ref.typ == field.Bool {
				pv = lo.convert(val, field.Bool)
			} else {
				pv = lo.intPayload(val)
			}
			lo.emit(opPutI, int32(ref.li), pv.reg, base, int32(n))
		case clF:
			pv := lo.floatPayload(val)
			lo.emit(opPutF, int32(ref.li), pv.reg, base, int32(n))
		default:
			bv := lo.toBoxed(val)
			lo.emit(opPutV, int32(ref.li), bv.reg, base, int32(n))
		}
		return val

	case "get": // get(arr, idx...)
		name := argIdent(0)
		ref := lo.resolve(name)
		if ref.kind != vArray {
			lo.failf(ex.Tok, "get: %q is not an array local", name)
		}
		if len(ex.Args) < 2 {
			lo.failf(ex.Tok, "get expects (array, index...)")
		}
		n := len(ex.Args) - 1
		base := lo.tmpBlockI(n)
		for i, a := range ex.Args[1:] {
			iv := lo.expr(a)
			p := lo.intPayload(iv)
			lo.emitMov(clI, base+int32(i), p.reg)
		}
		switch lo.localCl[ref.li] {
		case clI:
			dst := lo.tmp(clI)
			lo.emit(opGetI, dst, int32(ref.li), base, int32(n))
			return lval{cl: clI, kind: ref.typ, reg: dst}
		case clF:
			dst := lo.tmp(clF)
			lo.emit(opGetF, dst, int32(ref.li), base, int32(n))
			return lval{cl: clF, kind: ref.typ, reg: dst}
		default:
			dst := lo.tmp(clV)
			lo.emit(opGetV, dst, int32(ref.li), base, int32(n))
			return lval{cl: clV, kind: field.Any, reg: dst}
		}

	case "extent": // extent(arr, dim)
		name := argIdent(0)
		ref := lo.resolve(name)
		if ref.kind != vArray {
			lo.failf(ex.Tok, "extent: %q is not an array local", name)
		}
		wantArgs(2)
		dim := lo.expr(ex.Args[1])
		p := lo.intPayload(dim)
		dst := lo.tmp(clI)
		lo.emit(opExtent, dst, int32(ref.li), p.reg, 0)
		return lval{cl: clI, kind: field.Int64, reg: dst}

	case "sqrt", "floor", "cos", "sin":
		wantArgs(1)
		arg := lo.expr(ex.Args[0])
		fa := lo.floatPayload(arg)
		dst := lo.tmp(clF)
		switch ex.Name {
		case "sqrt":
			lo.emit(opSqrtF, dst, fa.reg, 0, lo.p.errConst(errAt(ex.Tok, "sqrt of negative value")))
		case "floor":
			lo.emit(opFloorF, dst, fa.reg, 0, 0)
		case "cos":
			lo.emit(opCosF, dst, fa.reg, 0, 0)
		default:
			lo.emit(opSinF, dst, fa.reg, 0, 0)
		}
		return lval{cl: clF, kind: field.Float64, reg: dst}

	case "abs":
		wantArgs(1)
		arg := lo.expr(ex.Args[0])
		switch arg.cl {
		case clV:
			dst := lo.tmp(clV)
			lo.emit(opAbsV, dst, arg.reg, 0, 0)
			return lval{cl: clV, kind: field.Any, reg: dst}
		case clF:
			dst := lo.tmp(clF)
			lo.emit(opAbsF, dst, arg.reg, 0, 0)
			return lval{cl: clF, kind: field.Float64, reg: dst}
		case clS:
			// abs(string): integer payload 0.
			dst := lo.tmp(clI)
			lo.emit(opLdI, dst, lo.p.intConst(0), 0, 0)
			return lval{cl: clI, kind: field.Int64, reg: dst}
		default:
			dst := lo.tmp(clI)
			lo.emit(opAbsI, dst, arg.reg, 0, 0)
			return lval{cl: clI, kind: field.Int64, reg: dst}
		}

	case "min", "max":
		wantArgs(2)
		a := lo.expr(ex.Args[0])
		b := lo.expr(ex.Args[1])
		return lo.minMax(ex.Name, a, b)

	case "pow":
		wantArgs(2)
		a := lo.expr(ex.Args[0])
		b := lo.expr(ex.Args[1])
		fa := lo.floatPayload(a)
		fb := lo.floatPayload(b)
		dst := lo.tmp(clF)
		lo.emit(opPowF, dst, fa.reg, fb.reg, 0)
		return lval{cl: clF, kind: field.Float64, reg: dst}

	case "now":
		wantArgs(0)
		dst := lo.tmp(clI)
		lo.emit(opNow, dst, 0, 0, 0)
		return lval{cl: clI, kind: field.Int64, reg: dst}

	case "expired": // expired(timer, ms)
		name := argIdent(0)
		if lo.resolve(name).kind != vTimer {
			lo.failf(ex.Tok, "expired: %q is not a declared timer", name)
		}
		wantArgs(2)
		ms := lo.expr(ex.Args[1])
		p := lo.intPayload(ms)
		dst := lo.tmp(clI)
		lo.emit(opExpired, dst, lo.p.timerConst(name), p.reg, 0)
		return lval{cl: clI, kind: field.Bool, reg: dst}

	case "reset": // reset(timer)
		name := argIdent(0)
		if lo.resolve(name).kind != vTimer {
			lo.failf(ex.Tok, "reset: %q is not a declared timer", name)
		}
		wantArgs(1)
		lo.emit(opResetTimer, lo.p.timerConst(name), 0, 0, 0)
		dst := lo.tmp(clI)
		lo.emit(opLdI, dst, lo.p.intConst(1), 0, 0)
		return lval{cl: clI, kind: field.Bool, reg: dst}
	}
	lo.failf(ex.Tok, "unknown function %q", ex.Name)
	panic("unreachable")
}

// minMax lowers min/max with the interpreter's kind rules: float promotion if
// either side is floating, otherwise the raw winning operand. The raw-operand
// int path returns the operand itself (kind included), so mixed static kinds
// must go through the boxed helper.
func (lo *lowerer) minMax(name string, a, b lval) lval {
	vop, iop, fop := opMinV, opMinI, opMinF
	if name == "max" {
		vop, iop, fop = opMaxV, opMaxI, opMaxF
	}
	if a.cl == clV || b.cl == clV {
		ab := lo.toBoxed(a)
		bb := lo.toBoxed(b)
		dst := lo.tmp(clV)
		lo.emit(vop, dst, ab.reg, bb.reg, 0)
		return lval{cl: clV, kind: field.Any, reg: dst}
	}
	if a.cl == clF || b.cl == clF {
		fa := lo.floatPayload(a)
		fb := lo.floatPayload(b)
		dst := lo.tmp(clF)
		lo.emit(fop, dst, fa.reg, fb.reg, 0)
		return lval{cl: clF, kind: field.Float64, reg: dst}
	}
	if a.cl == clS && b.cl == clS {
		// Both payloads are 0, so the comparison never favors the first
		// operand: the result is always the second.
		return b
	}
	if a.cl == clI && b.cl == clI && a.kind == b.kind {
		dst := lo.tmp(clI)
		lo.emit(iop, dst, a.reg, b.reg, 0)
		return lval{cl: clI, kind: a.kind, reg: dst}
	}
	// Mixed int/string kinds: the winning operand's kind is data-dependent.
	ab := lo.toBoxed(a)
	bb := lo.toBoxed(b)
	dst := lo.tmp(clV)
	lo.emit(vop, dst, ab.reg, bb.reg, 0)
	return lval{cl: clV, kind: field.Any, reg: dst}
}
