package lang

import (
	"strconv"

	"repro/internal/field"
)

// typeKind resolves a type name usable in declarations; "int" and "float"
// are aliases for the widest kinds, as in the paper's C-like blocks.
func typeKind(name string) field.Kind {
	switch name {
	case "int":
		return field.Int64
	case "float", "double":
		return field.Float64
	}
	return field.KindByName(name)
}

type parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses one kernel-language source file.
func Parse(src string) (*File, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.file()
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) peek() Token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(text string) bool {
	if p.cur().Kind == TPunct && p.cur().Text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) (Token, error) {
	t := p.cur()
	if (t.Kind == TPunct || t.Kind == TIdent) && t.Text == text {
		p.pos++
		return t, nil
	}
	return t, errAt(t, "expected %q, found %s", text, t)
}

func (p *parser) ident() (Token, error) {
	t := p.cur()
	if t.Kind != TIdent {
		return t, errAt(t, "expected identifier, found %s", t)
	}
	p.pos++
	return t, nil
}

func (p *parser) file() (*File, error) {
	f := &File{}
	for p.cur().Kind != TEOF {
		t := p.cur()
		switch {
		case t.Kind == TIdent && t.Text == "timer":
			p.next()
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(";"); err != nil {
				return nil, err
			}
			f.Timers = append(f.Timers, TimerDecl{Tok: t, Name: name.Text})
		case t.Kind == TIdent && typeKind(t.Text) != field.Invalid:
			fd, err := p.fieldDecl()
			if err != nil {
				return nil, err
			}
			f.Fields = append(f.Fields, fd)
		case t.Kind == TIdent && p.peek().Kind == TPunct && p.peek().Text == ":":
			k, err := p.kernel()
			if err != nil {
				return nil, err
			}
			f.Kernels = append(f.Kernels, k)
		default:
			return nil, errAt(t, "expected field declaration, timer or kernel, found %s", t)
		}
	}
	return f, nil
}

// fieldDecl parses `int32[] name age;` — rank is the number of [] pairs.
func (p *parser) fieldDecl() (FieldDecl, error) {
	t := p.next() // type name
	kind := typeKind(t.Text)
	rank := 0
	for p.accept("[") {
		if _, err := p.expect("]"); err != nil {
			return FieldDecl{}, err
		}
		rank++
	}
	if rank == 0 {
		return FieldDecl{}, errAt(t, "field declarations need at least one [] dimension")
	}
	name, err := p.ident()
	if err != nil {
		return FieldDecl{}, err
	}
	aged := false
	if p.cur().Kind == TIdent && p.cur().Text == "age" {
		p.next()
		aged = true
	}
	if _, err := p.expect(";"); err != nil {
		return FieldDecl{}, err
	}
	return FieldDecl{Tok: t, Kind: kind, Rank: rank, Name: name.Text, Aged: aged}, nil
}

// kernel parses `name:` followed by kernel statements until the next
// top-level declaration.
func (p *parser) kernel() (KernelDef, error) {
	nameTok := p.next() // ident
	p.next()            // colon
	k := KernelDef{Tok: nameTok, Name: nameTok.Text}
	for {
		t := p.cur()
		if t.Kind == TEOF {
			return k, nil
		}
		if t.Kind == TBlockStart {
			blk, err := p.codeBlock()
			if err != nil {
				return k, err
			}
			k.Blocks = append(k.Blocks, blk)
			continue
		}
		if t.Kind != TIdent {
			return k, errAt(t, "unexpected %s in kernel %s", t, k.Name)
		}
		switch t.Text {
		case "age":
			p.next()
			v, err := p.ident()
			if err != nil {
				return k, err
			}
			if k.AgeVar != "" {
				return k, errAt(t, "kernel %s declares a second age variable", k.Name)
			}
			k.AgeVar = v.Text
			if _, err := p.expect(";"); err != nil {
				return k, err
			}
		case "index":
			p.next()
			for {
				v, err := p.ident()
				if err != nil {
					return k, err
				}
				k.Indexes = append(k.Indexes, v.Text)
				if !p.accept(",") {
					break
				}
			}
			if _, err := p.expect(";"); err != nil {
				return k, err
			}
		case "local":
			p.next()
			tt := p.cur()
			kind := typeKind(tt.Text)
			if tt.Kind != TIdent || kind == field.Invalid {
				return k, errAt(tt, "expected type after local, found %s", tt)
			}
			p.next()
			rank := 0
			for p.accept("[") {
				if _, err := p.expect("]"); err != nil {
					return k, err
				}
				rank++
			}
			v, err := p.ident()
			if err != nil {
				return k, err
			}
			if _, err := p.expect(";"); err != nil {
				return k, err
			}
			k.Locals = append(k.Locals, LocalDecl{Tok: tt, Kind: kind, Rank: rank, Name: v.Text})
		case "fetch":
			p.next()
			local, err := p.ident()
			if err != nil {
				return k, err
			}
			if _, err := p.expect("="); err != nil {
				return k, err
			}
			ref, err := p.fieldRef()
			if err != nil {
				return k, err
			}
			if _, err := p.expect(";"); err != nil {
				return k, err
			}
			k.Fetches = append(k.Fetches, FetchDecl{Tok: t, Local: local.Text, Ref: ref})
		case "store":
			p.next()
			ref, err := p.fieldRef()
			if err != nil {
				return k, err
			}
			if _, err := p.expect("="); err != nil {
				return k, err
			}
			local, err := p.ident()
			if err != nil {
				return k, err
			}
			if _, err := p.expect(";"); err != nil {
				return k, err
			}
			k.Stores = append(k.Stores, StoreDecl{Tok: t, Ref: ref, Local: local.Text})
		default:
			// Next kernel (`ident :`) or top-level declaration ends this one.
			if p.peek().Kind == TPunct && p.peek().Text == ":" {
				return k, nil
			}
			if typeKind(t.Text) != field.Invalid || t.Text == "timer" {
				return k, nil
			}
			return k, errAt(t, "unexpected %s in kernel %s", t, k.Name)
		}
	}
}

// fieldRef parses `name(age)[i][j]`.
func (p *parser) fieldRef() (FieldRef, error) {
	name, err := p.ident()
	if err != nil {
		return FieldRef{}, err
	}
	ref := FieldRef{Tok: name, Field: name.Text}
	if _, err := p.expect("("); err != nil {
		return ref, err
	}
	age, err := p.ageRef()
	if err != nil {
		return ref, err
	}
	ref.Age = age
	if _, err := p.expect(")"); err != nil {
		return ref, err
	}
	for p.accept("[") {
		t := p.cur()
		var ir IndexRef
		switch {
		case t.Kind == TPunct && t.Text == "]":
			ir = IndexRef{Tok: t, All: true} // slab: spans the dimension
		case t.Kind == TIdent:
			ir = IndexRef{Tok: t, Var: t.Text}
			p.next()
			if p.cur().Kind == TPunct && (p.cur().Text == "+" || p.cur().Text == "-") {
				neg := p.next().Text == "-"
				ot := p.cur()
				if ot.Kind != TInt {
					return ref, errAt(ot, "expected integer index offset, found %s", ot)
				}
				p.next()
				v, _ := strconv.Atoi(ot.Text)
				if neg {
					v = -v
				}
				ir.Off = v
			}
		case t.Kind == TInt:
			v, _ := strconv.Atoi(t.Text)
			ir = IndexRef{Tok: t, Lit: v}
			p.next()
		default:
			return ref, errAt(t, "expected index variable, literal or ] for a slab, found %s", t)
		}
		ref.Index = append(ref.Index, ir)
		if _, err := p.expect("]"); err != nil {
			return ref, err
		}
	}
	ref.Whole = len(ref.Index) == 0
	return ref, nil
}

// ageRef parses `a`, `a+1`, `a-1` or `0`.
func (p *parser) ageRef() (AgeRef, error) {
	t := p.cur()
	switch t.Kind {
	case TInt:
		p.next()
		v, _ := strconv.Atoi(t.Text)
		return AgeRef{Tok: t, Offset: v}, nil
	case TIdent:
		p.next()
		ref := AgeRef{Tok: t, Var: t.Text}
		if p.accept("+") || func() bool {
			if p.cur().Kind == TPunct && p.cur().Text == "-" {
				p.next()
				ref.Offset = -1
				return true
			}
			return false
		}() {
			ot := p.cur()
			if ot.Kind != TInt {
				return ref, errAt(ot, "expected integer age offset, found %s", ot)
			}
			p.next()
			v, _ := strconv.Atoi(ot.Text)
			if ref.Offset < 0 {
				ref.Offset = -v
			} else {
				ref.Offset = v
			}
		}
		return ref, nil
	default:
		return AgeRef{}, errAt(t, "expected age expression, found %s", t)
	}
}
