// Package lang implements the P2G kernel language of the paper's figure 5:
// a lexer, parser, semantic analysis and a compiler that lowers programs to
// the core program model, with the C-like native code blocks executed by a
// closure-compiled interpreter.
//
// The paper's prototype compiled kernel programs to C++ and linked the
// native blocks with gcc; the language semantics — field and kernel
// declarations, fetch/store statements, aging, implicit parallelism — are
// unchanged here, only the execution vehicle of the block bodies differs
// (see DESIGN.md, substitution table).
package lang

import "fmt"

// TokenKind enumerates lexical token types.
type TokenKind uint8

// Token kinds.
const (
	TEOF TokenKind = iota
	TIdent
	TInt
	TFloat
	TString
	TPunct      // single/multi char operators and punctuation
	TBlockStart // %{
	TBlockEnd   // %}
)

// Token is one lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TEOF:
		return "end of file"
	case TBlockStart:
		return "%{"
	case TBlockEnd:
		return "%}"
	case TString:
		return fmt.Sprintf("%q", t.Text)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// Error is a positioned kernel-language error.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(tok Token, format string, args ...any) error {
	return &Error{Line: tok.Line, Col: tok.Col, Msg: fmt.Sprintf(format, args...)}
}
