package lang

// The bytecode VM: a single switch-dispatch loop over bcProg.code operating
// on per-invocation register files. Frames come from a per-kernel sync.Pool,
// so steady-state body execution allocates nothing on the hot path (cold
// paths — implicit array grow, boxed Any arithmetic, runtime errors — may
// allocate, exactly like the closure interpreter they replicate).

import (
	"fmt"
	"math"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/field"
)

// bcFrame holds one invocation's register files and scratch state.
type bcFrame struct {
	i    []int64
	f    []float64
	s    []string
	v    []field.Value
	arrs []*field.Array // per-local resolved array cache
	buf  []byte         // cout assembly buffer
}

// body wraps the program as a core kernel body.
func (p *bcProg) body() func(*core.Ctx) error {
	p.frames.New = func() any {
		return &bcFrame{
			i:    make([]int64, p.nI),
			f:    make([]float64, p.nF),
			s:    make([]string, p.nS),
			v:    make([]field.Value, p.nV),
			arrs: make([]*field.Array, p.nArr),
		}
	}
	return func(ctx *core.Ctx) error {
		fr := p.frames.Get().(*bcFrame)
		err := p.exec(ctx, fr)
		// Drop references before pooling: strings and boxed values would pin
		// memory, and cached array pointers belong to a Ctx that will be
		// reset. A frame abandoned by a panic is simply not pooled; the
		// runtime's runBody recovers the panic either way.
		clear(fr.s)
		clear(fr.v)
		clear(fr.arrs)
		fr.buf = fr.buf[:0]
		p.frames.Put(fr)
		return err
	}
}

// arr resolves the array local li through the frame cache. The first touch
// goes through Ctx.LocalArray, which materializes the default and marks the
// local bound with the same semantics as the interpreter's ctx.Array calls.
func (p *bcProg) arr(ctx *core.Ctx, fr *bcFrame, li int32) *field.Array {
	a := fr.arrs[li]
	if a == nil {
		a = ctx.LocalArray(int(li))
		fr.arrs[li] = a
	}
	return a
}

// coldIdx converts coordinate registers for the boxed At/Put cold path.
func coldIdx(regs []int64) []int {
	out := make([]int, len(regs))
	for i, v := range regs {
		out[i] = int(v)
	}
	return out
}

func (p *bcProg) exec(ctx *core.Ctx, fr *bcFrame) error {
	code := p.code
	ri, rf, rs, rv := fr.i, fr.f, fr.s, fr.v
	for pc := 0; ; {
		in := code[pc]
		pc++
		switch in.op {
		case opRet:
			return nil
		case opJmp:
			pc = int(in.a)
		case opJzI:
			if ri[in.a] == 0 {
				pc = int(in.b)
			}
		case opJnzI:
			if ri[in.a] != 0 {
				pc = int(in.b)
			}
		case opJzF:
			if rf[in.a] == 0 {
				pc = int(in.b)
			}
		case opJzV:
			if !rv[in.a].Bool() {
				pc = int(in.b)
			}
		case opErr:
			return p.errs[in.a]
		case opStop:
			ctx.Stop()

		case opLdI:
			ri[in.a] = p.ints[in.b]
		case opLdF:
			rf[in.a] = p.floats[in.b]
		case opLdS:
			rs[in.a] = p.strs[in.b]
		case opZeroV:
			rv[in.a] = field.Zero(field.Kind(in.b))
		case opMovI:
			ri[in.a] = ri[in.b]
		case opMovF:
			rf[in.a] = rf[in.b]
		case opMovS:
			rs[in.a] = rs[in.b]
		case opMovV:
			rv[in.a] = rv[in.b]

		case opI2F:
			rf[in.a] = float64(ri[in.b])
		case opF2I:
			ri[in.a] = int64(rf[in.b])
		case opTrunc32:
			ri[in.a] = int64(int32(ri[in.b]))
		case opTruncU8:
			ri[in.a] = int64(uint8(ri[in.b]))
		case opBoolI:
			ri[in.a] = b2i(ri[in.b] != 0)
		case opBoolF:
			ri[in.a] = b2i(rf[in.b] != 0)
		case opBoolV:
			ri[in.a] = b2i(rv[in.b].Bool())
		case opNotI:
			ri[in.a] = b2i(ri[in.b] == 0)
		case opNotF:
			ri[in.a] = b2i(rf[in.b] == 0)
		case opNotV:
			ri[in.a] = b2i(!rv[in.b].Bool())
		case opI2S:
			rs[in.a] = strconv.FormatInt(ri[in.b], 10)
		case opF2S:
			rs[in.a] = strconv.FormatFloat(rf[in.b], 'g', -1, 64)
		case opB2S:
			if ri[in.b] != 0 {
				rs[in.a] = "true"
			} else {
				rs[in.a] = "false"
			}
		case opV2S:
			rs[in.a] = rv[in.b].String()
		case opBoxI:
			rv[in.a] = field.IntValOf(field.Kind(in.c), ri[in.b])
		case opBoxF:
			rv[in.a] = field.FloatValOf(field.Kind(in.c), rf[in.b])
		case opBoxS:
			rv[in.a] = field.StrValOf(field.Kind(in.c), rs[in.b])
		case opConvV:
			rv[in.a] = rv[in.b].Convert(field.Kind(in.c))
		case opUnboxVI:
			ri[in.a] = rv[in.b].Int64()
		case opUnboxVF:
			rf[in.a] = rv[in.b].Float64()

		case opAddI:
			ri[in.a] = ri[in.b] + ri[in.c]
		case opSubI:
			ri[in.a] = ri[in.b] - ri[in.c]
		case opMulI:
			ri[in.a] = ri[in.b] * ri[in.c]
		case opDivI:
			if ri[in.c] == 0 {
				return p.errs[in.d]
			}
			ri[in.a] = ri[in.b] / ri[in.c]
		case opModI:
			if ri[in.c] == 0 {
				return p.errs[in.d]
			}
			ri[in.a] = ri[in.b] % ri[in.c]
		case opNegI:
			ri[in.a] = -ri[in.b]

		case opAddF:
			rf[in.a] = rf[in.b] + rf[in.c]
		case opSubF:
			rf[in.a] = rf[in.b] - rf[in.c]
		case opMulF:
			rf[in.a] = rf[in.b] * rf[in.c]
		case opDivF:
			if rf[in.c] == 0 {
				return p.errs[in.d]
			}
			rf[in.a] = rf[in.b] / rf[in.c]
		case opNegF:
			rf[in.a] = -rf[in.b]

		case opConcatS:
			rs[in.a] = rs[in.b] + rs[in.c]

		case opEqI:
			ri[in.a] = b2i(ri[in.b] == ri[in.c])
		case opNeI:
			ri[in.a] = b2i(ri[in.b] != ri[in.c])
		case opLtI:
			ri[in.a] = b2i(ri[in.b] < ri[in.c])
		case opLeI:
			ri[in.a] = b2i(ri[in.b] <= ri[in.c])
		case opGtI:
			ri[in.a] = b2i(ri[in.b] > ri[in.c])
		case opGeI:
			ri[in.a] = b2i(ri[in.b] >= ri[in.c])
		// Float comparisons replicate cmpResult(compareFloat(a, b)): a total
		// order in which NaN compares equal to everything, unlike IEEE.
		case opEqF:
			ri[in.a] = b2i(!(rf[in.b] < rf[in.c]) && !(rf[in.b] > rf[in.c]))
		case opNeF:
			ri[in.a] = b2i(rf[in.b] < rf[in.c] || rf[in.b] > rf[in.c])
		case opLtF:
			ri[in.a] = b2i(rf[in.b] < rf[in.c])
		case opLeF:
			ri[in.a] = b2i(!(rf[in.b] > rf[in.c]))
		case opGtF:
			ri[in.a] = b2i(rf[in.b] > rf[in.c])
		case opGeF:
			ri[in.a] = b2i(!(rf[in.b] < rf[in.c]))
		case opEqS:
			ri[in.a] = b2i(rs[in.b] == rs[in.c])
		case opNeS:
			ri[in.a] = b2i(rs[in.b] != rs[in.c])

		case opArithV:
			site := &p.sites[in.d]
			nv, err := arith(site.tok, site.op, rv[in.b], rv[in.c])
			if err != nil {
				return err
			}
			rv[in.a] = nv
		case opIncV:
			v := rv[in.b]
			if v.Kind().Float() {
				rv[in.a] = field.Float64Val(v.Float64() + float64(in.c))
			} else {
				rv[in.a] = field.Int64Val(v.Int64() + int64(in.c))
			}
		case opNegV:
			v := rv[in.b]
			if v.Kind().Float() {
				rv[in.a] = field.Float64Val(-v.Float64())
			} else {
				rv[in.a] = field.Int64Val(-v.Int64())
			}
		case opAbsV:
			v := rv[in.b]
			if v.Kind().Float() {
				rv[in.a] = field.Float64Val(math.Abs(v.Float64()))
			} else {
				x := v.Int64()
				if x < 0 {
					x = -x
				}
				rv[in.a] = field.Int64Val(x)
			}
		case opMinV:
			a, b := rv[in.b], rv[in.c]
			if a.Kind().Float() || b.Kind().Float() {
				rv[in.a] = field.Float64Val(math.Min(a.Float64(), b.Float64()))
			} else if a.Int64() < b.Int64() {
				rv[in.a] = a
			} else {
				rv[in.a] = b
			}
		case opMaxV:
			a, b := rv[in.b], rv[in.c]
			if a.Kind().Float() || b.Kind().Float() {
				rv[in.a] = field.Float64Val(math.Max(a.Float64(), b.Float64()))
			} else if a.Int64() > b.Int64() {
				rv[in.a] = a
			} else {
				rv[in.a] = b
			}

		case opSqrtF:
			if rf[in.b] < 0 {
				return p.errs[in.d]
			}
			rf[in.a] = math.Sqrt(rf[in.b])
		case opFloorF:
			rf[in.a] = math.Floor(rf[in.b])
		case opCosF:
			rf[in.a] = math.Cos(rf[in.b])
		case opSinF:
			rf[in.a] = math.Sin(rf[in.b])
		case opPowF:
			rf[in.a] = math.Pow(rf[in.b], rf[in.c])
		case opAbsI:
			x := ri[in.b]
			if x < 0 {
				x = -x
			}
			ri[in.a] = x
		case opAbsF:
			rf[in.a] = math.Abs(rf[in.b])
		case opMinI:
			if ri[in.b] < ri[in.c] {
				ri[in.a] = ri[in.b]
			} else {
				ri[in.a] = ri[in.c]
			}
		case opMaxI:
			if ri[in.b] > ri[in.c] {
				ri[in.a] = ri[in.b]
			} else {
				ri[in.a] = ri[in.c]
			}
		case opMinF:
			rf[in.a] = math.Min(rf[in.b], rf[in.c])
		case opMaxF:
			rf[in.a] = math.Max(rf[in.b], rf[in.c])

		case opLdLI:
			ri[in.a] = ctx.LocalValue(int(in.b)).Int64()
		case opLdLF:
			rf[in.a] = ctx.LocalValue(int(in.b)).Float64()
		case opLdLS:
			rs[in.a] = ctx.LocalValue(int(in.b)).Str()
		case opLdLV:
			rv[in.a] = ctx.LocalValue(int(in.b))
		case opStLI:
			ctx.SetLocalValue(int(in.a), field.IntValOf(field.Kind(in.c), ri[in.b]))
		case opStLF:
			ctx.SetLocalValue(int(in.a), field.FloatValOf(field.Kind(in.c), rf[in.b]))
		case opStLS:
			ctx.SetLocalValue(int(in.a), field.StringVal(rs[in.b]))
		case opStLV:
			ctx.SetLocalValue(int(in.a), rv[in.b])
		case opLdAge:
			ri[in.a] = int64(ctx.Age())
		case opLdIdx:
			ri[in.a] = int64(ctx.Coord(int(in.b)))

		case opGetI:
			a := p.arr(ctx, fr, in.b)
			idx := ri[in.c : in.c+in.d]
			off := a.FlatOffset64(idx)
			if off < 0 {
				a.At(coldIdx(idx)...) // panics with the interpreter's message
			}
			ri[in.a] = a.FlatGetInt(off)
		case opGetF:
			a := p.arr(ctx, fr, in.b)
			idx := ri[in.c : in.c+in.d]
			off := a.FlatOffset64(idx)
			if off < 0 {
				a.At(coldIdx(idx)...)
			}
			rf[in.a] = a.FlatGetFloat(off)
		case opGetV:
			a := p.arr(ctx, fr, in.b)
			idx := ri[in.c : in.c+in.d]
			off := a.FlatOffset64(idx)
			if off < 0 {
				a.At(coldIdx(idx)...)
			}
			rv[in.a] = a.AtFlat(off)
		case opPutI:
			a := p.arr(ctx, fr, in.a)
			idx := ri[in.c : in.c+in.d]
			if off := a.FlatOffset64(idx); off >= 0 {
				a.FlatSetInt(off, ri[in.b])
			} else {
				// Grow, negative-index and rank-mismatch cases share the
				// interpreter's boxed Put path (and its panics).
				a.Put(field.Int64Val(ri[in.b]), coldIdx(idx)...)
			}
		case opPutF:
			a := p.arr(ctx, fr, in.a)
			idx := ri[in.c : in.c+in.d]
			if off := a.FlatOffset64(idx); off >= 0 {
				a.FlatSetFloat(off, rf[in.b])
			} else {
				a.Put(field.Float64Val(rf[in.b]), coldIdx(idx)...)
			}
		case opPutV:
			a := p.arr(ctx, fr, in.a)
			idx := ri[in.c : in.c+in.d]
			if off := a.FlatOffset64(idx); off >= 0 {
				a.SetFlat(rv[in.b], off)
			} else {
				a.Put(rv[in.b], coldIdx(idx)...)
			}
		case opExtent:
			a := p.arr(ctx, fr, in.b)
			ri[in.a] = int64(a.Extent(int(ri[in.c])))

		case opNow:
			ri[in.a] = ctx.Now().UnixMilli()
		case opExpired:
			exp, err := ctx.Expired(p.timerNames[in.b], time.Duration(ri[in.c])*time.Millisecond)
			if err != nil {
				return err
			}
			ri[in.a] = b2i(exp)
		case opResetTimer:
			ctx.ResetTimer(p.timerNames[in.a])

		case opCoutClear:
			fr.buf = fr.buf[:0]
		case opCoutI:
			fr.buf = strconv.AppendInt(fr.buf, ri[in.a], 10)
		case opCoutF:
			fr.buf = strconv.AppendFloat(fr.buf, rf[in.a], 'g', -1, 64)
		case opCoutB:
			if ri[in.a] != 0 {
				fr.buf = append(fr.buf, "true"...)
			} else {
				fr.buf = append(fr.buf, "false"...)
			}
		case opCoutS:
			fr.buf = append(fr.buf, rs[in.a]...)
		case opCoutV:
			fr.buf = append(fr.buf, rv[in.a].String()...)
		case opCoutFlush:
			ctx.Printf("%s", fr.buf)

		default:
			return fmt.Errorf("lang: corrupt bytecode: opcode %d at pc %d", in.op, pc-1)
		}
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
