package mjpeg

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// WriteAVI wraps already-encoded JPEG frames in a classic RIFF AVI container
// with the MJPG FourCC, producing files standard players and ffmpeg accept.
// All frames must share the given dimensions.
func WriteAVI(w io.Writer, frames [][]byte, width, height, fps int) error {
	if fps <= 0 {
		fps = 25
	}
	if len(frames) == 0 {
		return fmt.Errorf("mjpeg: no frames to mux")
	}

	le := binary.LittleEndian
	u32 := func(b *bytes.Buffer, v uint32) { _ = binary.Write(b, le, v) }
	u16 := func(b *bytes.Buffer, v uint16) { _ = binary.Write(b, le, v) }

	maxFrame := 0
	for _, f := range frames {
		if len(f) > maxFrame {
			maxFrame = len(f)
		}
	}

	// avih — MainAVIHeader.
	avih := &bytes.Buffer{}
	u32(avih, uint32(1_000_000/fps)) // dwMicroSecPerFrame
	u32(avih, uint32(maxFrame*fps))  // dwMaxBytesPerSec
	u32(avih, 0)                     // dwPaddingGranularity
	u32(avih, 0x10)                  // dwFlags: AVIF_HASINDEX
	u32(avih, uint32(len(frames)))   // dwTotalFrames
	u32(avih, 0)                     // dwInitialFrames
	u32(avih, 1)                     // dwStreams
	u32(avih, uint32(maxFrame))      // dwSuggestedBufferSize
	u32(avih, uint32(width))
	u32(avih, uint32(height))
	for i := 0; i < 4; i++ {
		u32(avih, 0) // dwReserved
	}

	// strh — AVIStreamHeader.
	strh := &bytes.Buffer{}
	strh.WriteString("vids")
	strh.WriteString("MJPG")
	u32(strh, 0)                   // dwFlags
	u16(strh, 0)                   // wPriority
	u16(strh, 0)                   // wLanguage
	u32(strh, 0)                   // dwInitialFrames
	u32(strh, 1)                   // dwScale
	u32(strh, uint32(fps))         // dwRate
	u32(strh, 0)                   // dwStart
	u32(strh, uint32(len(frames))) // dwLength
	u32(strh, uint32(maxFrame))    // dwSuggestedBufferSize
	u32(strh, 0xFFFFFFFF)          // dwQuality
	u32(strh, 0)                   // dwSampleSize
	u16(strh, 0)                   // rcFrame
	u16(strh, 0)
	u16(strh, uint16(width))
	u16(strh, uint16(height))

	// strf — BITMAPINFOHEADER.
	strf := &bytes.Buffer{}
	u32(strf, 40)
	u32(strf, uint32(width))
	u32(strf, uint32(height))
	u16(strf, 1)  // biPlanes
	u16(strf, 24) // biBitCount
	strf.WriteString("MJPG")
	u32(strf, uint32(width*height*3)) // biSizeImage
	u32(strf, 0)
	u32(strf, 0)
	u32(strf, 0)
	u32(strf, 0)

	chunk := func(fourcc string, payload []byte) []byte {
		b := &bytes.Buffer{}
		b.WriteString(fourcc)
		u32(b, uint32(len(payload)))
		b.Write(payload)
		if len(payload)%2 == 1 {
			b.WriteByte(0)
		}
		return b.Bytes()
	}
	list := func(kind string, payload []byte) []byte {
		b := &bytes.Buffer{}
		b.WriteString("LIST")
		u32(b, uint32(len(payload)+4))
		b.WriteString(kind)
		b.Write(payload)
		return b.Bytes()
	}

	strl := list("strl", append(chunk("strh", strh.Bytes()), chunk("strf", strf.Bytes())...))
	hdrl := list("hdrl", append(chunk("avih", avih.Bytes()), strl...))

	// movi chunks and the idx1 index (offsets relative to the 'movi'
	// fourcc).
	movi := &bytes.Buffer{}
	idx := &bytes.Buffer{}
	offset := uint32(4)
	for _, f := range frames {
		c := chunk("00dc", f)
		movi.Write(c)
		idx.WriteString("00dc")
		u32(idx, 0x10) // AVIIF_KEYFRAME
		u32(idx, offset)
		u32(idx, uint32(len(f)))
		offset += uint32(len(c))
	}
	moviList := list("movi", movi.Bytes())
	idx1 := chunk("idx1", idx.Bytes())

	body := &bytes.Buffer{}
	body.WriteString("AVI ")
	body.Write(hdrl)
	body.Write(moviList)
	body.Write(idx1)

	header := &bytes.Buffer{}
	header.WriteString("RIFF")
	u32(header, uint32(body.Len()))
	if _, err := w.Write(header.Bytes()); err != nil {
		return err
	}
	_, err := w.Write(body.Bytes())
	return err
}

// ReadAVIFrames extracts the MJPG frame payloads from an AVI produced by
// WriteAVI (or any AVI with 00dc chunks). Used to verify the muxer.
func ReadAVIFrames(data []byte) ([][]byte, error) {
	if len(data) < 12 || string(data[0:4]) != "RIFF" || string(data[8:12]) != "AVI " {
		return nil, fmt.Errorf("mjpeg: not a RIFF AVI file")
	}
	var frames [][]byte
	le := binary.LittleEndian
	pos := 12
	var walk func(end int) error
	walk = func(end int) error {
		for pos+8 <= end {
			fourcc := string(data[pos : pos+4])
			size := int(le.Uint32(data[pos+4 : pos+8]))
			pos += 8
			if pos+size > len(data) {
				return fmt.Errorf("mjpeg: truncated chunk %q", fourcc)
			}
			if fourcc == "LIST" {
				pos += 4 // list kind
				if err := walk(pos + size - 4); err != nil {
					return err
				}
				continue
			}
			if fourcc == "00dc" {
				frames = append(frames, data[pos:pos+size])
			}
			pos += size
			if size%2 == 1 {
				pos++
			}
		}
		return nil
	}
	if err := walk(len(data)); err != nil {
		return nil, err
	}
	return frames, nil
}
