package mjpeg

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/video"
)

func TestAVIRoundTrip(t *testing.T) {
	enc := &Encoder{Quality: 70}
	src := video.NewSynthetic(32, 32, 3, 5)
	var frames [][]byte
	for {
		f, err := src.Next()
		if err != nil {
			break
		}
		frames = append(frames, enc.EncodeFrame(f))
	}
	var buf bytes.Buffer
	if err := WriteAVI(&buf, frames, 32, 32, 25); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if string(data[0:4]) != "RIFF" || string(data[8:12]) != "AVI " {
		t.Fatal("missing RIFF/AVI header")
	}
	// RIFF size covers the rest of the file.
	if int(binary.LittleEndian.Uint32(data[4:8])) != len(data)-8 {
		t.Errorf("RIFF size %d, file %d", binary.LittleEndian.Uint32(data[4:8]), len(data))
	}
	got, err := ReadAVIFrames(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(frames) {
		t.Fatalf("%d frames out, want %d", len(got), len(frames))
	}
	for i := range got {
		if !bytes.Equal(got[i], frames[i]) {
			t.Fatalf("frame %d payload changed", i)
		}
		if _, err := DecodeFrameJPEG(got[i]); err != nil {
			t.Fatalf("frame %d no longer decodes: %v", i, err)
		}
	}
	// Structural spot checks: stream fourcc and index present.
	if !bytes.Contains(data, []byte("MJPG")) || !bytes.Contains(data, []byte("idx1")) {
		t.Error("missing MJPG handler or idx1 index")
	}
}

func TestAVIOddSizedFramesArePadded(t *testing.T) {
	frames := [][]byte{{0xff, 0xd8, 0xff}, {1, 2, 3, 4}}
	var buf bytes.Buffer
	if err := WriteAVI(&buf, frames, 8, 8, 30); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAVIFrames(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !bytes.Equal(got[0], frames[0]) || !bytes.Equal(got[1], frames[1]) {
		t.Fatalf("odd-size round trip: %v", got)
	}
}

func TestAVIErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAVI(&buf, nil, 8, 8, 25); err == nil {
		t.Error("no frames should error")
	}
	if _, err := ReadAVIFrames([]byte("not an avi")); err == nil {
		t.Error("garbage should not parse")
	}
	// Truncated chunk.
	var ok bytes.Buffer
	if err := WriteAVI(&ok, [][]byte{{1, 2, 3}}, 8, 8, 25); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAVIFrames(ok.Bytes()[:ok.Len()-6]); err == nil {
		t.Error("truncated AVI should error")
	}
	// Zero fps falls back to a default instead of dividing by zero.
	if err := WriteAVI(&bytes.Buffer{}, [][]byte{{1}}, 8, 8, 0); err != nil {
		t.Errorf("zero fps: %v", err)
	}
}
