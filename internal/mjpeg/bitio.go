package mjpeg

import (
	"bytes"
	"fmt"
)

// BitWriter writes an MSB-first bit stream with JPEG byte stuffing: every
// 0xFF data byte is followed by a 0x00 so entropy-coded data can never be
// mistaken for a marker.
type BitWriter struct {
	buf  bytes.Buffer
	acc  uint32
	nbit uint
}

// WriteBits appends the low n bits of v, most significant first. n must be
// between 0 and 24.
func (w *BitWriter) WriteBits(v uint32, n uint) {
	if n > 24 {
		panic(fmt.Sprintf("mjpeg: WriteBits of %d bits", n))
	}
	w.acc = w.acc<<n | (v & (1<<n - 1))
	w.nbit += n
	for w.nbit >= 8 {
		w.nbit -= 8
		b := byte(w.acc >> w.nbit)
		w.buf.WriteByte(b)
		if b == 0xff {
			w.buf.WriteByte(0x00)
		}
	}
}

// Flush pads the final partial byte with 1 bits (the JPEG convention) and
// returns the accumulated stream.
func (w *BitWriter) Flush() []byte {
	if w.nbit > 0 {
		pad := 8 - w.nbit
		w.WriteBits(1<<pad-1, pad)
	}
	return w.buf.Bytes()
}

// Len returns the number of complete bytes buffered so far.
func (w *BitWriter) Len() int { return w.buf.Len() }

// BitReader reads an MSB-first bit stream with JPEG byte unstuffing. Hitting
// a marker (0xFF followed by non-zero) or the end of data yields ErrEndOfData.
type BitReader struct {
	data []byte
	pos  int
	acc  uint32
	nbit uint
}

// ErrEndOfData reports that the entropy-coded segment ended (marker or EOF).
var ErrEndOfData = fmt.Errorf("mjpeg: end of entropy-coded data")

// NewBitReader reads bits from data.
func NewBitReader(data []byte) *BitReader { return &BitReader{data: data} }

func (r *BitReader) fill() error {
	for r.nbit < 24 {
		if r.pos >= len(r.data) {
			if r.nbit == 0 {
				return ErrEndOfData
			}
			return nil
		}
		b := r.data[r.pos]
		if b == 0xff {
			if r.pos+1 >= len(r.data) || r.data[r.pos+1] != 0x00 {
				// Marker: stop before it.
				if r.nbit == 0 {
					return ErrEndOfData
				}
				return nil
			}
			r.pos += 2 // consume the stuffed 0x00
		} else {
			r.pos++
		}
		r.acc = r.acc<<8 | uint32(b)
		r.nbit += 8
	}
	return nil
}

// ReadBit reads a single bit.
func (r *BitReader) ReadBit() (uint32, error) {
	return r.ReadBits(1)
}

// ReadBits reads n bits MSB-first (n between 0 and 16).
func (r *BitReader) ReadBits(n uint) (uint32, error) {
	if n == 0 {
		return 0, nil
	}
	if n > 16 {
		panic(fmt.Sprintf("mjpeg: ReadBits of %d bits", n))
	}
	if err := r.fill(); err != nil {
		return 0, err
	}
	if r.nbit < n {
		return 0, ErrEndOfData
	}
	r.nbit -= n
	v := r.acc >> r.nbit & (1<<n - 1)
	return v, nil
}

// Offset returns the byte offset just past the last byte pulled into the bit
// accumulator; after entropy decoding it points at (or just before) the next
// marker.
func (r *BitReader) Offset() int { return r.pos }
