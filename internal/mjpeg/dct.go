// Package mjpeg implements a baseline JPEG / Motion JPEG codec from first
// principles: forward and inverse DCT (a naive transform matching the
// paper's, plus the AAN fast DCT the paper cites as an optimization),
// quantization, zigzag scan, run-length and Huffman entropy coding, JFIF
// frame assembly, and a decoder used to verify the encoder end to end.
//
// The package exposes the block-level operations separately so the P2G
// workload (package workloads) can run exactly the same code inside yDCT /
// uDCT / vDCT / VLC kernels that the standalone baseline encoder runs in a
// single thread.
package mjpeg

import "math"

// BlockSize is the macroblock edge: JPEG operates on 8x8 blocks.
const BlockSize = 8

// Block is one 8x8 macroblock in row-major order: pixel samples before the
// transform, frequency coefficients after.
type Block [64]int32

// cosTable[x][u] = cos((2x+1) u π / 16), shared by the naive DCT and IDCT.
var cosTable [8][8]float64

func init() {
	for x := 0; x < 8; x++ {
		for u := 0; u < 8; u++ {
			cosTable[x][u] = math.Cos(float64(2*x+1) * float64(u) * math.Pi / 16)
		}
	}
}

func alpha(u int) float64 {
	if u == 0 {
		return math.Sqrt2 / 2
	}
	return 1
}

// DCTNaive computes the forward 8x8 DCT-II by the textbook quadruple loop —
// the same "naive DCT calculation" the paper's encoder uses (§VIII-A). Input
// samples are level-shifted by -128. The result is written to out.
func DCTNaive(in *Block, out *[64]float64) {
	var shifted [64]float64
	for i, v := range in {
		shifted[i] = float64(v) - 128
	}
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			var sum float64
			for x := 0; x < 8; x++ {
				for y := 0; y < 8; y++ {
					sum += shifted[x*8+y] * cosTable[x][u] * cosTable[y][v]
				}
			}
			out[u*8+v] = 0.25 * alpha(u) * alpha(v) * sum
		}
	}
}

// aanFinalScale[u][v] undoes the scaling the AAN butterfly network leaves on
// coefficient (u,v), so DCTFast produces the same values as DCTNaive.
var aanFinalScale [8][8]float64

func init() {
	// aanFactor[k] = cos(k*π/16) * sqrt(2) for k>0, 1 for k=0.
	var f [8]float64
	f[0] = 1
	for k := 1; k < 8; k++ {
		f[k] = math.Cos(float64(k)*math.Pi/16) * math.Sqrt2
	}
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			aanFinalScale[u][v] = 1 / (f[u] * f[v] * 8)
		}
	}
}

// DCTFast computes the forward 8x8 DCT with the Arai–Agui–Nakajima (AAN)
// scheme the paper references as FastDCT [2]: a row/column pass of 1-D AAN
// butterflies followed by a per-coefficient rescale. It produces the same
// output as DCTNaive up to floating-point rounding.
func DCTFast(in *Block, out *[64]float64) {
	var d [64]float64
	for i, v := range in {
		d[i] = float64(v) - 128
	}
	for r := 0; r < 8; r++ {
		aan1D(d[r*8:r*8+8:r*8+8], 1)
	}
	for c := 0; c < 8; c++ {
		aan1D(d[c:c+57:64], 8)
	}
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			out[u*8+v] = d[u*8+v] * aanFinalScale[u][v]
		}
	}
}

// aan1D applies the 8-point AAN forward butterfly in place over d with the
// given stride (1 for rows, 8 for columns).
func aan1D(d []float64, stride int) {
	at := func(i int) float64 { return d[i*stride] }
	set := func(i int, v float64) { d[i*stride] = v }

	tmp0 := at(0) + at(7)
	tmp7 := at(0) - at(7)
	tmp1 := at(1) + at(6)
	tmp6 := at(1) - at(6)
	tmp2 := at(2) + at(5)
	tmp5 := at(2) - at(5)
	tmp3 := at(3) + at(4)
	tmp4 := at(3) - at(4)

	// Even part.
	tmp10 := tmp0 + tmp3
	tmp13 := tmp0 - tmp3
	tmp11 := tmp1 + tmp2
	tmp12 := tmp1 - tmp2
	set(0, tmp10+tmp11)
	set(4, tmp10-tmp11)
	z1 := (tmp12 + tmp13) * 0.707106781
	set(2, tmp13+z1)
	set(6, tmp13-z1)

	// Odd part.
	tmp10 = tmp4 + tmp5
	tmp11 = tmp5 + tmp6
	tmp12 = tmp6 + tmp7
	z5 := (tmp10 - tmp12) * 0.382683433
	z2 := 0.541196100*tmp10 + z5
	z4 := 1.306562965*tmp12 + z5
	z3 := tmp11 * 0.707106781
	z11 := tmp7 + z3
	z13 := tmp7 - z3
	set(5, z13+z2)
	set(3, z13-z2)
	set(1, z11+z4)
	set(7, z11-z4)
}

// IDCT computes the inverse 8x8 DCT-II (naive form) and re-applies the +128
// level shift, clamping to [0,255]. Used by the decoder to verify round
// trips.
func IDCT(coeffs *Block, out *Block) {
	var f [64]float64
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			var sum float64
			for u := 0; u < 8; u++ {
				for v := 0; v < 8; v++ {
					sum += alpha(u) * alpha(v) * float64(coeffs[u*8+v]) * cosTable[x][u] * cosTable[y][v]
				}
			}
			f[x*8+y] = 0.25 * sum
		}
	}
	for i, v := range f {
		p := int32(math.Round(v + 128))
		if p < 0 {
			p = 0
		}
		if p > 255 {
			p = 255
		}
		out[i] = p
	}
}
