package mjpeg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBlock(rng *rand.Rand) *Block {
	var b Block
	for i := range b {
		b[i] = int32(rng.Intn(256))
	}
	return &b
}

func TestDCTFlatBlock(t *testing.T) {
	var b Block
	for i := range b {
		b[i] = 128
	}
	var out [64]float64
	DCTNaive(&b, &out)
	for i, v := range out {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("flat 128 block: coeff %d = %v, want 0", i, v)
		}
	}
	// A constant block at 255 has only a DC term: 8*(255-128) = 1016.
	for i := range b {
		b[i] = 255
	}
	DCTNaive(&b, &out)
	if math.Abs(out[0]-8*127) > 1e-9 {
		t.Errorf("DC of constant 255 block = %v, want %v", out[0], 8.0*127)
	}
	for i := 1; i < 64; i++ {
		if math.Abs(out[i]) > 1e-9 {
			t.Errorf("AC coeff %d of constant block = %v", i, out[i])
		}
	}
}

// TestDCTParseval checks energy preservation: the DCT is orthonormal, so the
// sum of squares is preserved (with the level shift applied).
func TestDCTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		b := randBlock(rng)
		var out [64]float64
		DCTNaive(b, &out)
		var es, ec float64
		for i := range b {
			d := float64(b[i]) - 128
			es += d * d
			ec += out[i] * out[i]
		}
		if math.Abs(es-ec) > 1e-6*(1+es) {
			t.Fatalf("Parseval violated: spatial %v vs coeff %v", es, ec)
		}
	}
}

// TestFastDCTMatchesNaive validates the AAN butterfly network against the
// textbook definition on random blocks.
func TestFastDCTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		b := randBlock(rng)
		var naive, fast [64]float64
		DCTNaive(b, &naive)
		DCTFast(b, &fast)
		for i := range naive {
			if math.Abs(naive[i]-fast[i]) > 1e-6 {
				t.Fatalf("trial %d coeff %d: naive %v fast %v", trial, i, naive[i], fast[i])
			}
		}
	}
}

// TestDCTRoundTrip checks DCT → IDCT identity on random pixel blocks (exact
// integers after rounding, since no quantization is applied).
func TestDCTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		b := randBlock(rng)
		var f [64]float64
		DCTNaive(b, &f)
		var coeff, back Block
		for i, v := range f {
			coeff[i] = int32(math.Round(v * 16)) // keep 4 fractional bits
		}
		// IDCT expects unscaled coefficients; rescale by dequantizing with
		// a table of all 1s after dividing by 16 — easier: run IDCT on
		// rounded coefficients and allow ±1 error.
		for i, v := range f {
			coeff[i] = int32(math.Round(v))
		}
		IDCT(&coeff, &back)
		for i := range b {
			if d := int32(math.Abs(float64(b[i] - back[i]))); d > 4 {
				t.Fatalf("trial %d pixel %d: %d -> %d", trial, i, b[i], back[i])
			}
		}
	}
}

// Property: quantize(dequantize(q)) is the identity for in-range values.
func TestQuickQuantRoundTrip(t *testing.T) {
	qt := LumaQuant(75)
	f := func(raw [64]int16) bool {
		var q, dq, q2 Block
		var fl [64]float64
		for i, v := range raw {
			q[i] = int32(v % 128)
		}
		Dequantize(&q, qt, &dq)
		for i, v := range dq {
			fl[i] = float64(v)
		}
		Quantize(&fl, qt, &q2)
		return q == q2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuantQualityMonotone(t *testing.T) {
	q10 := LumaQuant(10)
	q50 := LumaQuant(50)
	q95 := LumaQuant(95)
	for i := 0; i < 64; i++ {
		if q10[i] < q50[i] || q50[i] < q95[i] {
			t.Fatalf("coeff %d: quality scaling not monotone (%d, %d, %d)", i, q10[i], q50[i], q95[i])
		}
	}
	// Quality 50 reproduces the base table.
	for i := range baseLumaQuant {
		if q50[i] != baseLumaQuant[i] {
			t.Fatalf("quality 50 differs from base at %d", i)
		}
	}
	// Extremes are clamped.
	if ScaleQuant(&baseLumaQuant, -5)[0] != ScaleQuant(&baseLumaQuant, 1)[0] {
		t.Error("quality below 1 should clamp")
	}
	if ScaleQuant(&baseLumaQuant, 1000)[0] != ScaleQuant(&baseLumaQuant, 100)[0] {
		t.Error("quality above 100 should clamp")
	}
	for _, v := range ScaleQuant(&baseLumaQuant, 100) {
		if v < 1 {
			t.Error("table values must stay >= 1")
		}
	}
}

func TestZigzagIsPermutation(t *testing.T) {
	seen := [64]bool{}
	for _, z := range Zigzag {
		if z < 0 || z > 63 || seen[z] {
			t.Fatalf("zigzag is not a permutation")
		}
		seen[z] = true
	}
	// Spot-check the canonical start and end of the pattern.
	want := []int{0, 1, 8, 16, 9, 2, 3, 10}
	for i, w := range want {
		if Zigzag[i] != w {
			t.Fatalf("zigzag[%d] = %d, want %d", i, Zigzag[i], w)
		}
	}
	if Zigzag[63] != 63 {
		t.Fatal("zigzag must end at 63")
	}
}

func TestExtractAssembleRoundTrip(t *testing.T) {
	for _, dims := range [][2]int{{16, 16}, {24, 8}, {20, 12}, {9, 9}} {
		w, h := dims[0], dims[1]
		plane := make([]byte, w*h)
		for i := range plane {
			plane[i] = byte(i * 7)
		}
		blocks := ExtractBlocks(plane, w, h)
		if len(blocks) != ((w+7)/8)*((h+7)/8) {
			t.Fatalf("%dx%d: %d blocks", w, h, len(blocks))
		}
		back := AssemblePlane(blocks, w, h)
		for i := range plane {
			if plane[i] != back[i] {
				t.Fatalf("%dx%d: pixel %d changed", w, h, i)
			}
		}
	}
}

func TestExtractBlocksPadding(t *testing.T) {
	// 9x9 plane: the padded region replicates edge pixels.
	w, h := 9, 9
	plane := make([]byte, w*h)
	for i := range plane {
		plane[i] = byte(i)
	}
	blocks := ExtractBlocks(plane, w, h)
	// Block (0,1) covers x in [8,16); x>=9 replicates column 8.
	b := blocks[1]
	if b[0] != int32(plane[8]) || b[1] != int32(plane[8]) || b[7] != int32(plane[8]) {
		t.Error("horizontal padding should replicate last column")
	}
}
