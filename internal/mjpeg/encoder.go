package mjpeg

import (
	"fmt"
	"io"

	"repro/internal/video"
)

// DefaultQuality is the IJG-style quality factor used when an Encoder does
// not specify one.
const DefaultQuality = 75

// Encoder is a baseline MJPEG encoder. The zero value encodes at
// DefaultQuality with the naive DCT, matching the paper's configuration.
type Encoder struct {
	// Quality is the IJG quality factor in [1,100]; 0 selects
	// DefaultQuality.
	Quality int
	// FastDCT selects the AAN transform instead of the naive one.
	FastDCT bool
}

func (e *Encoder) quality() int {
	if e.Quality == 0 {
		return DefaultQuality
	}
	return e.Quality
}

// Tables returns the luma and chroma quantization tables for the encoder's
// quality setting.
func (e *Encoder) Tables() (luma, chroma *QuantTable) {
	q := e.quality()
	return LumaQuant(q), ChromaQuant(q)
}

// SplitYUV splits a frame into per-component macroblock slices — the work of
// the paper's read/splitYUV kernel. Component order is Y, U, V.
func SplitYUV(f *video.Frame) [3][]Block {
	return [3][]Block{
		ExtractBlocks(f.Y, f.W, f.H),
		ExtractBlocks(f.U, f.W/2, f.H/2),
		ExtractBlocks(f.V, f.W/2, f.H/2),
	}
}

// EncodeFrame compresses one frame to a standalone JFIF image: split,
// per-block DCT+quantization, entropy coding — the whole pipeline the P2G
// version spreads across kernels.
func (e *Encoder) EncodeFrame(f *video.Frame) []byte {
	qY, qC := e.Tables()
	in := SplitYUV(f)
	var coeffs [3][]Block
	for ci := range in {
		qt := qY
		if ci > 0 {
			qt = qC
		}
		out := make([]Block, len(in[ci]))
		for i := range in[ci] {
			DCTQuantBlock(&in[ci][i], qt, e.FastDCT, &out[i])
		}
		coeffs[ci] = out
	}
	return EncodeFrameJPEG(&coeffs, f.W, f.H, qY, qC)
}

// EncodeStream runs the standalone single-threaded MJPEG encoder over a
// video source, writing concatenated JFIF images to w. It returns the number
// of frames encoded. This is the baseline the paper compares P2G against
// (§VIII-A: 19–30 s for 50 CIF frames).
func (e *Encoder) EncodeStream(src video.Source, w io.Writer) (int, error) {
	frames := 0
	for {
		f, err := src.Next()
		if err == io.EOF {
			return frames, nil
		}
		if err != nil {
			return frames, fmt.Errorf("mjpeg: reading frame %d: %w", frames, err)
		}
		if _, err := w.Write(e.EncodeFrame(f)); err != nil {
			return frames, fmt.Errorf("mjpeg: writing frame %d: %w", frames, err)
		}
		frames++
	}
}

// Reconstruct inverts the lossy pipeline of a decoded image — dequantize,
// inverse DCT, reassemble planes — returning the frame a player would
// display. Used to measure encoder fidelity (PSNR against the source).
func (d *Decoded) Reconstruct() *video.Frame {
	f := video.NewFrame(d.W, d.H)
	planes := [3]struct {
		data []byte
		w, h int
	}{
		{f.Y, d.W, d.H},
		{f.U, d.W / 2, d.H / 2},
		{f.V, d.W / 2, d.H / 2},
	}
	for ci := range d.Coeffs {
		qt := &d.QTabs[0]
		if ci > 0 {
			qt = &d.QTabs[1]
		}
		spatial := make([]Block, len(d.Coeffs[ci]))
		for i := range d.Coeffs[ci] {
			var dq Block
			Dequantize(&d.Coeffs[ci][i], qt, &dq)
			IDCT(&dq, &spatial[i])
		}
		copy(planes[ci].data, AssemblePlane(spatial, planes[ci].w, planes[ci].h))
	}
	return f
}
