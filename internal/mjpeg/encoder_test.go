package mjpeg

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/video"
)

func TestEncodeDecodeFrameRoundTrip(t *testing.T) {
	f, err := video.NewSynthetic(64, 48, 1, 11).Next()
	if err != nil {
		t.Fatal(err)
	}
	e := &Encoder{Quality: 90}
	jpg := e.EncodeFrame(f)
	if len(jpg) < 100 {
		t.Fatalf("suspiciously small JPEG: %d bytes", len(jpg))
	}
	if jpg[0] != 0xff || jpg[1] != 0xd8 || jpg[len(jpg)-2] != 0xff || jpg[len(jpg)-1] != 0xd9 {
		t.Fatal("missing SOI/EOI framing")
	}
	d, err := DecodeFrameJPEG(jpg)
	if err != nil {
		t.Fatal(err)
	}
	if d.W != 64 || d.H != 48 {
		t.Fatalf("decoded dims %dx%d", d.W, d.H)
	}
	if len(d.Coeffs[0]) != 48 || len(d.Coeffs[1]) != 12 || len(d.Coeffs[2]) != 12 {
		t.Fatalf("block counts %d/%d/%d", len(d.Coeffs[0]), len(d.Coeffs[1]), len(d.Coeffs[2]))
	}
}

// TestCoefficientsSurviveExactly verifies the entropy layer is lossless: the
// quantized coefficients that enter EncodeFrameJPEG come back bit-exact from
// the decoder.
func TestCoefficientsSurviveExactly(t *testing.T) {
	f, _ := video.NewSynthetic(32, 32, 1, 5).Next()
	e := &Encoder{Quality: 50}
	qY, qC := e.Tables()
	in := SplitYUV(f)
	var coeffs [3][]Block
	for ci := range in {
		qt := qY
		if ci > 0 {
			qt = qC
		}
		out := make([]Block, len(in[ci]))
		for i := range in[ci] {
			DCTQuantBlock(&in[ci][i], qt, false, &out[i])
		}
		coeffs[ci] = out
	}
	d, err := DecodeFrameJPEG(EncodeFrameJPEG(&coeffs, f.W, f.H, qY, qC))
	if err != nil {
		t.Fatal(err)
	}
	for ci := range coeffs {
		for i := range coeffs[ci] {
			if d.Coeffs[ci][i] != coeffs[ci][i] {
				t.Fatalf("component %d block %d: coefficients changed", ci, i)
			}
		}
	}
	// Quant tables survive too.
	for i := 0; i < 64; i++ {
		if d.QTabs[0][i] != qY[i] || d.QTabs[1][i] != qC[i] {
			t.Fatal("quant tables changed in transit")
		}
	}
}

func TestReconstructPSNR(t *testing.T) {
	f, _ := video.NewSynthetic(96, 64, 1, 3).Next()
	for _, q := range []int{50, 90} {
		e := &Encoder{Quality: q}
		d, err := DecodeFrameJPEG(e.EncodeFrame(f))
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		rec := d.Reconstruct()
		p := video.PSNR(f, rec)
		if p < 25 {
			t.Errorf("q=%d: PSNR %.1f dB is too low for a working codec", q, p)
		}
		t.Logf("quality %d: PSNR %.2f dB, %d bytes", q, p, len(e.EncodeFrame(f)))
	}
	// Higher quality must not reduce fidelity.
	dLow, _ := DecodeFrameJPEG((&Encoder{Quality: 20}).EncodeFrame(f))
	dHigh, _ := DecodeFrameJPEG((&Encoder{Quality: 95}).EncodeFrame(f))
	if video.PSNR(f, dHigh.Reconstruct()) <= video.PSNR(f, dLow.Reconstruct()) {
		t.Error("quality 95 should reconstruct better than quality 20")
	}
}

func TestFastDCTEncodesEquivalently(t *testing.T) {
	f, _ := video.NewSynthetic(64, 32, 1, 9).Next()
	slow := (&Encoder{Quality: 75}).EncodeFrame(f)
	fast := (&Encoder{Quality: 75, FastDCT: true}).EncodeFrame(f)
	// The AAN transform matches the naive one to ~1e-6, so quantized
	// outputs should be byte-identical except for rare rounding knife
	// edges; require exact equality on this deterministic input.
	if !bytes.Equal(slow, fast) {
		ds, _ := DecodeFrameJPEG(slow)
		df, _ := DecodeFrameJPEG(fast)
		diff := 0
		for ci := range ds.Coeffs {
			for i := range ds.Coeffs[ci] {
				if ds.Coeffs[ci][i] != df.Coeffs[ci][i] {
					diff++
				}
			}
		}
		t.Errorf("fast and naive DCT encodings differ in %d blocks", diff)
	}
}

func TestEncodeStreamMJPEG(t *testing.T) {
	const frames = 4
	src := video.NewSynthetic(48, 32, frames, 21)
	var buf bytes.Buffer
	e := &Encoder{Quality: 75}
	n, err := e.EncodeStream(src, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != frames {
		t.Fatalf("encoded %d frames, want %d", n, frames)
	}
	split := SplitFrames(buf.Bytes())
	if len(split) != frames {
		t.Fatalf("stream splits into %d frames", len(split))
	}
	for i, fr := range split {
		if _, err := DecodeFrameJPEG(fr); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":      {},
		"no-soi":     {0x00, 0x11, 0x22, 0x33},
		"truncated":  {0xff, 0xd8, 0xff, 0xdb},
		"no-eoi":     append([]byte{0xff, 0xd8}, []byte{0xff, 0xe0, 0x00, 0x04, 0x00, 0x00}...),
		"bad-marker": {0xff, 0xd8, 0xff, 0x01, 0x00, 0x02},
	}
	for name, data := range cases {
		if _, err := DecodeFrameJPEG(data); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestSplitFramesIgnoresGarbage(t *testing.T) {
	f, _ := video.NewSynthetic(16, 16, 1, 1).Next()
	jpg := (&Encoder{}).EncodeFrame(f)
	stream := append([]byte{1, 2, 3}, jpg...)
	stream = append(stream, 0xde, 0xad)
	stream = append(stream, jpg...)
	frames := SplitFrames(stream)
	if len(frames) != 2 {
		t.Fatalf("split %d frames, want 2", len(frames))
	}
	for _, fr := range frames {
		if !bytes.Equal(fr, jpg) {
			t.Error("frame boundaries wrong")
		}
	}
}

func TestEncoderDefaults(t *testing.T) {
	e := &Encoder{}
	if e.quality() != DefaultQuality {
		t.Error("zero quality should select the default")
	}
	qY, qC := e.Tables()
	if qY == nil || qC == nil {
		t.Fatal("tables")
	}
	if strings.Contains("x", "y") { // keep strings import honest
		t.Fatal("unreachable")
	}
}
