package mjpeg

import "fmt"

// HuffSpec is a JPEG Huffman table specification in DHT form: Bits[i] counts
// codes of length i+1, Vals lists the symbols in canonical order.
type HuffSpec struct {
	Bits [16]byte
	Vals []byte
}

// The standard (Annex K) Huffman table specifications.
var (
	SpecDCLuma = HuffSpec{
		Bits: [16]byte{0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0},
		Vals: []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11},
	}
	SpecDCChroma = HuffSpec{
		Bits: [16]byte{0, 3, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0},
		Vals: []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11},
	}
	SpecACLuma = HuffSpec{
		Bits: [16]byte{0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 0x7d},
		Vals: []byte{
			0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12,
			0x21, 0x31, 0x41, 0x06, 0x13, 0x51, 0x61, 0x07,
			0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xa1, 0x08,
			0x23, 0x42, 0xb1, 0xc1, 0x15, 0x52, 0xd1, 0xf0,
			0x24, 0x33, 0x62, 0x72, 0x82, 0x09, 0x0a, 0x16,
			0x17, 0x18, 0x19, 0x1a, 0x25, 0x26, 0x27, 0x28,
			0x29, 0x2a, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39,
			0x3a, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49,
			0x4a, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59,
			0x5a, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69,
			0x6a, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79,
			0x7a, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89,
			0x8a, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98,
			0x99, 0x9a, 0xa2, 0xa3, 0xa4, 0xa5, 0xa6, 0xa7,
			0xa8, 0xa9, 0xaa, 0xb2, 0xb3, 0xb4, 0xb5, 0xb6,
			0xb7, 0xb8, 0xb9, 0xba, 0xc2, 0xc3, 0xc4, 0xc5,
			0xc6, 0xc7, 0xc8, 0xc9, 0xca, 0xd2, 0xd3, 0xd4,
			0xd5, 0xd6, 0xd7, 0xd8, 0xd9, 0xda, 0xe1, 0xe2,
			0xe3, 0xe4, 0xe5, 0xe6, 0xe7, 0xe8, 0xe9, 0xea,
			0xf1, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8,
			0xf9, 0xfa,
		},
	}
	SpecACChroma = HuffSpec{
		Bits: [16]byte{0, 2, 1, 2, 4, 4, 3, 4, 7, 5, 4, 4, 0, 1, 2, 0x77},
		Vals: []byte{
			0x00, 0x01, 0x02, 0x03, 0x11, 0x04, 0x05, 0x21,
			0x31, 0x06, 0x12, 0x41, 0x51, 0x07, 0x61, 0x71,
			0x13, 0x22, 0x32, 0x81, 0x08, 0x14, 0x42, 0x91,
			0xa1, 0xb1, 0xc1, 0x09, 0x23, 0x33, 0x52, 0xf0,
			0x15, 0x62, 0x72, 0xd1, 0x0a, 0x16, 0x24, 0x34,
			0xe1, 0x25, 0xf1, 0x17, 0x18, 0x19, 0x1a, 0x26,
			0x27, 0x28, 0x29, 0x2a, 0x35, 0x36, 0x37, 0x38,
			0x39, 0x3a, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48,
			0x49, 0x4a, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58,
			0x59, 0x5a, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68,
			0x69, 0x6a, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78,
			0x79, 0x7a, 0x82, 0x83, 0x84, 0x85, 0x86, 0x87,
			0x88, 0x89, 0x8a, 0x92, 0x93, 0x94, 0x95, 0x96,
			0x97, 0x98, 0x99, 0x9a, 0xa2, 0xa3, 0xa4, 0xa5,
			0xa6, 0xa7, 0xa8, 0xa9, 0xaa, 0xb2, 0xb3, 0xb4,
			0xb5, 0xb6, 0xb7, 0xb8, 0xb9, 0xba, 0xc2, 0xc3,
			0xc4, 0xc5, 0xc6, 0xc7, 0xc8, 0xc9, 0xca, 0xd2,
			0xd3, 0xd4, 0xd5, 0xd6, 0xd7, 0xd8, 0xd9, 0xda,
			0xe2, 0xe3, 0xe4, 0xe5, 0xe6, 0xe7, 0xe8, 0xe9,
			0xea, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8,
			0xf9, 0xfa,
		},
	}
)

// HuffEncoder maps symbols to canonical Huffman codes.
type HuffEncoder struct {
	code [256]uint32
	size [256]uint8
}

// NewHuffEncoder builds the canonical code assignment from a specification.
func NewHuffEncoder(spec *HuffSpec) *HuffEncoder {
	e := &HuffEncoder{}
	code := uint32(0)
	k := 0
	for l := 1; l <= 16; l++ {
		for i := 0; i < int(spec.Bits[l-1]); i++ {
			sym := spec.Vals[k]
			e.code[sym] = code
			e.size[sym] = uint8(l)
			code++
			k++
		}
		code <<= 1
	}
	return e
}

// Emit writes the code for sym. Symbols absent from the table panic — they
// indicate a corrupted encoder state, never valid data.
func (e *HuffEncoder) Emit(w *BitWriter, sym byte) {
	if e.size[sym] == 0 {
		panic(fmt.Sprintf("mjpeg: symbol %#x has no Huffman code", sym))
	}
	w.WriteBits(e.code[sym], uint(e.size[sym]))
}

// HuffDecoder decodes canonical Huffman codes by length-indexed range
// lookup (the standard JPEG decoding procedure).
type HuffDecoder struct {
	minCode [17]int32
	maxCode [17]int32 // -1 when no codes of that length
	valPtr  [17]int
	vals    []byte
}

// NewHuffDecoder builds the decoding tables from a specification.
func NewHuffDecoder(spec *HuffSpec) *HuffDecoder {
	d := &HuffDecoder{vals: spec.Vals}
	code := int32(0)
	k := 0
	for l := 1; l <= 16; l++ {
		if spec.Bits[l-1] == 0 {
			d.maxCode[l] = -1
			code <<= 1
			continue
		}
		d.valPtr[l] = k
		d.minCode[l] = code
		code += int32(spec.Bits[l-1])
		k += int(spec.Bits[l-1])
		d.maxCode[l] = code - 1
		code <<= 1
	}
	return d
}

// Decode reads one symbol from the bit stream.
func (d *HuffDecoder) Decode(r *BitReader) (byte, error) {
	code := int32(0)
	for l := 1; l <= 16; l++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | int32(b)
		if d.maxCode[l] >= 0 && code <= d.maxCode[l] {
			return d.vals[d.valPtr[l]+int(code-d.minCode[l])], nil
		}
	}
	return 0, fmt.Errorf("mjpeg: invalid Huffman code")
}

// bitLen returns the JPEG "size" category of v (number of bits needed for
// |v|).
func bitLen(v int32) uint {
	if v < 0 {
		v = -v
	}
	n := uint(0)
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}

// EncodeBlock entropy-codes one quantized macroblock: DC difference against
// pred, then run-length/Huffman coded AC coefficients in zigzag order. It
// returns the block's DC value for use as the next prediction.
func EncodeBlock(w *BitWriter, blk *Block, pred int32, dc, ac *HuffEncoder) int32 {
	diff := blk[0] - pred
	size := bitLen(diff)
	dc.Emit(w, byte(size))
	if size > 0 {
		v := diff
		if v < 0 {
			v += 1<<size - 1
		}
		w.WriteBits(uint32(v), size)
	}
	run := 0
	for k := 1; k < 64; k++ {
		c := blk[Zigzag[k]]
		if c == 0 {
			run++
			continue
		}
		for run >= 16 {
			ac.Emit(w, 0xf0) // ZRL
			run -= 16
		}
		s := bitLen(c)
		ac.Emit(w, byte(run<<4|int(s)))
		v := c
		if v < 0 {
			v += 1<<s - 1
		}
		w.WriteBits(uint32(v), s)
		run = 0
	}
	if run > 0 {
		ac.Emit(w, 0x00) // EOB
	}
	return blk[0]
}

// extend undoes the JPEG magnitude encoding.
func extend(v uint32, size uint) int32 {
	if size == 0 {
		return 0
	}
	x := int32(v)
	if x < 1<<(size-1) {
		x -= 1<<size - 1
	}
	return x
}

// DecodeBlock reverses EncodeBlock, returning the block's DC value for the
// next prediction.
func DecodeBlock(r *BitReader, blk *Block, pred int32, dc, ac *HuffDecoder) (int32, error) {
	*blk = Block{}
	sym, err := dc.Decode(r)
	if err != nil {
		return 0, err
	}
	size := uint(sym)
	bits, err := r.ReadBits(size)
	if err != nil {
		return 0, err
	}
	blk[0] = pred + extend(bits, size)
	for k := 1; k < 64; {
		sym, err := ac.Decode(r)
		if err != nil {
			return 0, err
		}
		if sym == 0x00 { // EOB
			break
		}
		if sym == 0xf0 { // ZRL
			k += 16
			continue
		}
		run := int(sym >> 4)
		s := uint(sym & 0x0f)
		k += run
		if k >= 64 {
			return 0, fmt.Errorf("mjpeg: AC run overflows block")
		}
		bits, err := r.ReadBits(s)
		if err != nil {
			return 0, err
		}
		blk[Zigzag[k]] = extend(bits, s)
		k++
	}
	return blk[0], nil
}
