package mjpeg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHuffSpecCounts(t *testing.T) {
	for name, spec := range map[string]*HuffSpec{
		"dc-luma": &SpecDCLuma, "dc-chroma": &SpecDCChroma,
		"ac-luma": &SpecACLuma, "ac-chroma": &SpecACChroma,
	} {
		total := 0
		for _, b := range spec.Bits {
			total += int(b)
		}
		if total != len(spec.Vals) {
			t.Errorf("%s: bits sum %d != %d values", name, total, len(spec.Vals))
		}
	}
	if len(SpecACLuma.Vals) != 162 || len(SpecACChroma.Vals) != 162 {
		t.Error("AC tables must have 162 symbols")
	}
	if len(SpecDCLuma.Vals) != 12 {
		t.Error("DC tables must have 12 symbols")
	}
}

func TestHuffCodesArePrefixFree(t *testing.T) {
	for name, spec := range map[string]*HuffSpec{
		"ac-luma": &SpecACLuma, "ac-chroma": &SpecACChroma, "dc-luma": &SpecDCLuma,
	} {
		e := NewHuffEncoder(spec)
		type code struct {
			bits uint32
			size uint8
		}
		var codes []code
		for _, sym := range spec.Vals {
			codes = append(codes, code{e.code[sym], e.size[sym]})
		}
		for i := range codes {
			for j := range codes {
				if i == j {
					continue
				}
				a, b := codes[i], codes[j]
				if a.size > b.size {
					a, b = b, a
				}
				if b.bits>>(b.size-a.size) == a.bits && a.size == codes[i].size && b.size == codes[j].size {
					// Only a violation when the shorter is a strict prefix.
					if a.size != b.size {
						t.Fatalf("%s: code %d is a prefix of code %d", name, i, j)
					}
					if a.bits == b.bits {
						t.Fatalf("%s: duplicate code", name)
					}
				}
			}
		}
	}
}

func TestHuffEncodeDecodeSymbols(t *testing.T) {
	for _, spec := range []*HuffSpec{&SpecDCLuma, &SpecDCChroma, &SpecACLuma, &SpecACChroma} {
		enc := NewHuffEncoder(spec)
		dec := NewHuffDecoder(spec)
		w := &BitWriter{}
		for _, sym := range spec.Vals {
			enc.Emit(w, sym)
		}
		r := NewBitReader(w.Flush())
		for i, want := range spec.Vals {
			got, err := dec.Decode(r)
			if err != nil {
				t.Fatalf("symbol %d: %v", i, err)
			}
			if got != want {
				t.Fatalf("symbol %d: decoded %#x, want %#x", i, got, want)
			}
		}
	}
}

func TestHuffEmitUnknownSymbolPanics(t *testing.T) {
	enc := NewHuffEncoder(&SpecDCLuma) // only symbols 0..11
	defer func() {
		if recover() == nil {
			t.Error("expected panic for uncoded symbol")
		}
	}()
	enc.Emit(&BitWriter{}, 0x99)
}

func TestBitWriterStuffing(t *testing.T) {
	w := &BitWriter{}
	w.WriteBits(0xff, 8)
	w.WriteBits(0xab, 8)
	out := w.Flush()
	if len(out) != 3 || out[0] != 0xff || out[1] != 0x00 || out[2] != 0xab {
		t.Fatalf("stuffing output % x", out)
	}
	r := NewBitReader(out)
	v, err := r.ReadBits(16)
	if err != nil || v != 0xffab {
		t.Fatalf("unstuffed read = %#x, %v", v, err)
	}
}

func TestBitWriterFlushPadsWithOnes(t *testing.T) {
	w := &BitWriter{}
	w.WriteBits(0, 1) // single 0 bit
	out := w.Flush()
	if len(out) != 1 || out[0] != 0x7f {
		t.Fatalf("padded byte = %#x, want 0x7f", out[0])
	}
}

func TestBitReaderStopsAtMarker(t *testing.T) {
	r := NewBitReader([]byte{0xab, 0xff, 0xd9})
	if v, err := r.ReadBits(8); err != nil || v != 0xab {
		t.Fatalf("first byte: %#x %v", v, err)
	}
	if _, err := r.ReadBits(8); err != ErrEndOfData {
		t.Fatalf("expected ErrEndOfData at marker, got %v", err)
	}
}

// Property: random bit sequences round-trip through writer and reader.
func TestQuickBitIORoundTrip(t *testing.T) {
	f := func(chunks []uint16, widths []uint8) bool {
		w := &BitWriter{}
		type item struct {
			v uint32
			n uint
		}
		var items []item
		for i, c := range chunks {
			n := uint(1)
			if i < len(widths) {
				n = uint(widths[i]%16) + 1
			}
			v := uint32(c) & (1<<n - 1)
			items = append(items, item{v, n})
			w.WriteBits(v, n)
		}
		r := NewBitReader(w.Flush())
		for _, it := range items {
			v, err := r.ReadBits(it.n)
			if err != nil || v != it.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: blocks round-trip through EncodeBlock/DecodeBlock with chained DC
// prediction.
func TestQuickBlockEntropyRoundTrip(t *testing.T) {
	dcE, acE := NewHuffEncoder(&SpecDCLuma), NewHuffEncoder(&SpecACLuma)
	dcD, acD := NewHuffDecoder(&SpecDCLuma), NewHuffDecoder(&SpecACLuma)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		nblocks := 1 + rng.Intn(5)
		blocks := make([]Block, nblocks)
		for b := range blocks {
			// Sparse blocks, as quantized DCT output is.
			for k := 0; k < 64; k++ {
				switch rng.Intn(8) {
				case 0:
					blocks[b][k] = int32(rng.Intn(2047)) - 1023
				case 1:
					blocks[b][k] = int32(rng.Intn(15)) - 7
				}
			}
		}
		w := &BitWriter{}
		pred := int32(0)
		for b := range blocks {
			pred = EncodeBlock(w, &blocks[b], pred, dcE, acE)
		}
		r := NewBitReader(w.Flush())
		pred = 0
		for b := range blocks {
			var got Block
			var err error
			pred, err = DecodeBlock(r, &got, pred, dcD, acD)
			if err != nil {
				t.Fatalf("trial %d block %d: %v", trial, b, err)
			}
			if got != blocks[b] {
				t.Fatalf("trial %d block %d: round-trip mismatch\n got %v\nwant %v", trial, b, got, blocks[b])
			}
		}
	}
}

func TestEncodeBlockZRLAndEOB(t *testing.T) {
	// A block with one coefficient far into the zigzag exercises ZRL runs;
	// trailing zeros exercise EOB.
	var b Block
	b[0] = 5
	b[Zigzag[40]] = -3
	dcE, acE := NewHuffEncoder(&SpecDCLuma), NewHuffEncoder(&SpecACLuma)
	dcD, acD := NewHuffDecoder(&SpecDCLuma), NewHuffDecoder(&SpecACLuma)
	w := &BitWriter{}
	EncodeBlock(w, &b, 0, dcE, acE)
	var got Block
	if _, err := DecodeBlock(NewBitReader(w.Flush()), &got, 0, dcD, acD); err != nil {
		t.Fatal(err)
	}
	if got != b {
		t.Fatalf("ZRL/EOB round trip: got %v want %v", got, b)
	}
	// A block whose last zigzag coefficient is non-zero needs no EOB.
	var c Block
	c[63] = 2
	w = &BitWriter{}
	EncodeBlock(w, &c, 0, dcE, acE)
	if _, err := DecodeBlock(NewBitReader(w.Flush()), &got, 0, dcD, acD); err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatal("no-EOB round trip failed")
	}
}

func TestBitLen(t *testing.T) {
	cases := map[int32]uint{0: 0, 1: 1, -1: 1, 2: 2, 3: 2, -3: 2, 4: 3, 255: 8, -256: 9, 1023: 10}
	for v, want := range cases {
		if got := bitLen(v); got != want {
			t.Errorf("bitLen(%d) = %d, want %d", v, got, want)
		}
	}
}
