package mjpeg

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// JPEG marker bytes used by this codec.
const (
	mSOI  = 0xd8
	mEOI  = 0xd9
	mAPP0 = 0xe0
	mDQT  = 0xdb
	mSOF0 = 0xc0
	mDHT  = 0xc4
	mSOS  = 0xda
)

func writeSegment(buf *bytes.Buffer, marker byte, payload []byte) {
	buf.WriteByte(0xff)
	buf.WriteByte(marker)
	var ln [2]byte
	binary.BigEndian.PutUint16(ln[:], uint16(len(payload)+2))
	buf.Write(ln[:])
	buf.Write(payload)
}

// componentSpec describes the three fixed components of our 4:2:0 frames.
type componentSpec struct {
	id       byte
	sampling byte // h<<4 | v
	qtab     byte
	dctab    byte
	actab    byte
}

var components = [3]componentSpec{
	{id: 1, sampling: 0x22, qtab: 0, dctab: 0, actab: 0}, // Y
	{id: 2, sampling: 0x11, qtab: 1, dctab: 1, actab: 1}, // U
	{id: 3, sampling: 0x11, qtab: 1, dctab: 1, actab: 1}, // V
}

// EncodeFrameJPEG assembles one baseline JFIF image from quantized
// coefficient blocks (Y, U, V in row-major block order) using
// non-interleaved scans, one per component — the natural layout for the
// paper's per-component result fields.
func EncodeFrameJPEG(coeffs *[3][]Block, w, h int, qLuma, qChroma *QuantTable) []byte {
	var n [3]int
	for ci := range coeffs {
		n[ci] = len(coeffs[ci])
	}
	return encodeFrame(w, h, qLuma, qChroma, n, func(ci, i int) *Block { return &coeffs[ci][i] })
}

// EncodeFrameJPEGFlat is EncodeFrameJPEG over flat coefficient storage: each
// component holds 64 int32 per macroblock in row-major block order. Blocks
// are viewed in place (no []Block materialization), which is the layout the
// P2G workload's typed result fields use. Output is bit-identical to
// EncodeFrameJPEG on the same coefficients.
func EncodeFrameJPEGFlat(coeffs *[3][]int32, w, h int, qLuma, qChroma *QuantTable) []byte {
	var n [3]int
	for ci := range coeffs {
		n[ci] = len(coeffs[ci]) / 64
	}
	return encodeFrame(w, h, qLuma, qChroma, n, func(ci, i int) *Block {
		return (*Block)(coeffs[ci][i*64 : i*64+64])
	})
}

// encodeFrame assembles the JFIF image from per-component block accessors,
// shared by the boxed and flat entry points.
func encodeFrame(w, h int, qLuma, qChroma *QuantTable, nblocks [3]int, block func(ci, i int) *Block) []byte {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, mSOI})

	app0 := []byte{'J', 'F', 'I', 'F', 0, 1, 1, 0, 0, 1, 0, 1, 0, 0}
	writeSegment(&buf, mAPP0, app0)

	for i, qt := range []*QuantTable{qLuma, qChroma} {
		payload := make([]byte, 65)
		payload[0] = byte(i) // Pq=0 (8-bit), Tq=i
		for k := 0; k < 64; k++ {
			payload[1+k] = byte(qt[Zigzag[k]])
		}
		writeSegment(&buf, mDQT, payload)
	}

	sof := []byte{8, byte(h >> 8), byte(h), byte(w >> 8), byte(w), 3}
	for _, c := range components {
		sof = append(sof, c.id, c.sampling, c.qtab)
	}
	writeSegment(&buf, mSOF0, sof)

	for _, ht := range []struct {
		class byte
		id    byte
		spec  *HuffSpec
	}{
		{0, 0, &SpecDCLuma}, {1, 0, &SpecACLuma},
		{0, 1, &SpecDCChroma}, {1, 1, &SpecACChroma},
	} {
		payload := append([]byte{ht.class<<4 | ht.id}, ht.spec.Bits[:]...)
		payload = append(payload, ht.spec.Vals...)
		writeSegment(&buf, mDHT, payload)
	}

	encoders := [2][2]*HuffEncoder{
		{NewHuffEncoder(&SpecDCLuma), NewHuffEncoder(&SpecACLuma)},
		{NewHuffEncoder(&SpecDCChroma), NewHuffEncoder(&SpecACChroma)},
	}
	for ci, c := range components {
		sos := []byte{1, c.id, c.dctab<<4 | c.actab, 0, 63, 0}
		writeSegment(&buf, mSOS, sos)
		dc, ac := encoders[c.dctab][0], encoders[c.actab][1]
		bw := &BitWriter{}
		pred := int32(0)
		for i := 0; i < nblocks[ci]; i++ {
			pred = EncodeBlock(bw, block(ci, i), pred, dc, ac)
		}
		buf.Write(bw.Flush())
	}

	buf.Write([]byte{0xff, mEOI})
	return buf.Bytes()
}

// Decoded is a parsed baseline JPEG produced by this package's encoder.
type Decoded struct {
	W, H   int
	Coeffs [3][]Block // quantized coefficients per component
	QTabs  [2]QuantTable
}

// DecodeFrameJPEG parses one image produced by EncodeFrameJPEG back into
// quantized coefficient blocks. It understands exactly the subset of JPEG
// this package emits (baseline, 4:2:0, non-interleaved scans) and is used to
// verify encoder output end to end.
func DecodeFrameJPEG(data []byte) (*Decoded, error) {
	if len(data) < 4 || data[0] != 0xff || data[1] != mSOI {
		return nil, fmt.Errorf("mjpeg: missing SOI")
	}
	d := &Decoded{}
	var huffDC, huffAC [2]*HuffDecoder
	scans := 0
	pos := 2
	for pos+2 <= len(data) {
		if data[pos] != 0xff {
			return nil, fmt.Errorf("mjpeg: expected marker at %d, found %#x", pos, data[pos])
		}
		marker := data[pos+1]
		if marker == mEOI {
			if scans != 3 {
				return nil, fmt.Errorf("mjpeg: EOI after %d scans", scans)
			}
			return d, nil
		}
		if pos+4 > len(data) {
			break
		}
		ln := int(binary.BigEndian.Uint16(data[pos+2 : pos+4]))
		seg := data[pos+4 : pos+2+ln]
		pos += 2 + ln
		switch marker {
		case mAPP0:
			// informational only
		case mDQT:
			id := seg[0] & 0x0f
			if id > 1 || len(seg) < 65 {
				return nil, fmt.Errorf("mjpeg: bad DQT")
			}
			for k := 0; k < 64; k++ {
				d.QTabs[id][Zigzag[k]] = int32(seg[1+k])
			}
		case mSOF0:
			d.H = int(binary.BigEndian.Uint16(seg[1:3]))
			d.W = int(binary.BigEndian.Uint16(seg[3:5]))
			if seg[5] != 3 {
				return nil, fmt.Errorf("mjpeg: expected 3 components, got %d", seg[5])
			}
		case mDHT:
			class, id := seg[0]>>4, seg[0]&0x0f
			if id > 1 {
				return nil, fmt.Errorf("mjpeg: huffman table id %d", id)
			}
			spec := &HuffSpec{}
			copy(spec.Bits[:], seg[1:17])
			spec.Vals = append([]byte(nil), seg[17:]...)
			if class == 0 {
				huffDC[id] = NewHuffDecoder(spec)
			} else {
				huffAC[id] = NewHuffDecoder(spec)
			}
		case mSOS:
			if seg[0] != 1 {
				return nil, fmt.Errorf("mjpeg: interleaved scans unsupported")
			}
			compID := seg[1]
			ci := int(compID) - 1
			if ci < 0 || ci > 2 {
				return nil, fmt.Errorf("mjpeg: component id %d", compID)
			}
			tabs := seg[2]
			dcDec, acDec := huffDC[tabs>>4], huffAC[tabs&0x0f]
			if dcDec == nil || acDec == nil {
				return nil, fmt.Errorf("mjpeg: scan references undefined huffman tables")
			}
			cw, ch := d.W, d.H
			if ci > 0 {
				cw, ch = (d.W+1)/2, (d.H+1)/2
			}
			nblocks := ((cw + 7) / 8) * ((ch + 7) / 8)
			br := NewBitReader(data[pos:])
			pred := int32(0)
			blocks := make([]Block, nblocks)
			for i := 0; i < nblocks; i++ {
				var err error
				pred, err = DecodeBlock(br, &blocks[i], pred, dcDec, acDec)
				if err != nil {
					return nil, fmt.Errorf("mjpeg: scan %d block %d: %w", ci, i, err)
				}
			}
			d.Coeffs[ci] = blocks
			// Skip to the next marker after the entropy data.
			pos += br.Offset()
			for pos+1 < len(data) && !(data[pos] == 0xff && data[pos+1] != 0x00) {
				pos++
			}
			scans++
		default:
			return nil, fmt.Errorf("mjpeg: unexpected marker %#x", marker)
		}
	}
	return nil, fmt.Errorf("mjpeg: missing EOI")
}

// SplitFrames splits a concatenated MJPEG stream into individual JPEG
// images by SOI/EOI framing.
func SplitFrames(stream []byte) [][]byte {
	var frames [][]byte
	start := -1
	for i := 0; i+1 < len(stream); i++ {
		if stream[i] != 0xff {
			continue
		}
		switch stream[i+1] {
		case mSOI:
			if start < 0 {
				start = i
			}
		case mEOI:
			if start >= 0 {
				frames = append(frames, stream[start:i+2])
				start = -1
			}
		}
	}
	return frames
}
