package mjpeg

// Standard JPEG (Annex K) base quantization tables, row-major.
var (
	baseLumaQuant = [64]int32{
		16, 11, 10, 16, 24, 40, 51, 61,
		12, 12, 14, 19, 26, 58, 60, 55,
		14, 13, 16, 24, 40, 57, 69, 56,
		14, 17, 22, 29, 51, 87, 80, 62,
		18, 22, 37, 56, 68, 109, 103, 77,
		24, 35, 55, 64, 81, 104, 113, 92,
		49, 64, 78, 87, 103, 121, 120, 101,
		72, 92, 95, 98, 112, 100, 103, 99,
	}
	baseChromaQuant = [64]int32{
		17, 18, 24, 47, 99, 99, 99, 99,
		18, 21, 26, 66, 99, 99, 99, 99,
		24, 26, 56, 99, 99, 99, 99, 99,
		47, 66, 99, 99, 99, 99, 99, 99,
		99, 99, 99, 99, 99, 99, 99, 99,
		99, 99, 99, 99, 99, 99, 99, 99,
		99, 99, 99, 99, 99, 99, 99, 99,
		99, 99, 99, 99, 99, 99, 99, 99,
	}
)

// Zigzag maps zigzag positions to row-major block offsets (Zigzag[k] is the
// row-major index of the k-th coefficient in scan order).
var Zigzag = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// QuantTable is a row-major quantization table scaled to a quality setting.
type QuantTable [64]int32

// ScaleQuant derives a quantization table from a base table and an IJG-style
// quality factor in [1,100]: 50 reproduces the base table, higher is finer.
func ScaleQuant(base *[64]int32, quality int) *QuantTable {
	if quality < 1 {
		quality = 1
	}
	if quality > 100 {
		quality = 100
	}
	var scale int32
	if quality < 50 {
		scale = int32(5000 / quality)
	} else {
		scale = int32(200 - 2*quality)
	}
	var t QuantTable
	for i, b := range base {
		v := (b*scale + 50) / 100
		if v < 1 {
			v = 1
		}
		if v > 255 {
			v = 255
		}
		t[i] = v
	}
	return &t
}

// LumaQuant returns the luminance table at the given quality.
func LumaQuant(quality int) *QuantTable { return ScaleQuant(&baseLumaQuant, quality) }

// ChromaQuant returns the chrominance table at the given quality.
func ChromaQuant(quality int) *QuantTable { return ScaleQuant(&baseChromaQuant, quality) }

// Quantize divides DCT coefficients by the table with round-to-nearest,
// writing quantized coefficients into out.
func Quantize(coeffs *[64]float64, qt *QuantTable, out *Block) {
	for i, c := range coeffs {
		q := float64(qt[i])
		if c >= 0 {
			out[i] = int32(c/q + 0.5)
		} else {
			out[i] = -int32(-c/q + 0.5)
		}
	}
}

// Dequantize multiplies quantized coefficients back by the table.
func Dequantize(in *Block, qt *QuantTable, out *Block) {
	for i, c := range in {
		out[i] = c * qt[i]
	}
}

// DCTQuantBlock performs the compute-intensive half of JPEG encoding for one
// macroblock — forward DCT then quantization — using the naive or the AAN
// fast transform. This is exactly the work of the paper's yDCT/uDCT/vDCT
// kernel instances.
func DCTQuantBlock(in *Block, qt *QuantTable, fast bool, out *Block) {
	var f [64]float64
	if fast {
		DCTFast(in, &f)
	} else {
		DCTNaive(in, &f)
	}
	Quantize(&f, qt, out)
}

// ExtractBlocks splits a plane into 8x8 macroblocks in row-major block order.
// Planes whose dimensions are not multiples of 8 are edge-padded by
// replicating the last row/column, the conventional JPEG treatment.
func ExtractBlocks(plane []byte, w, h int) []Block {
	bw, bh := (w+7)/8, (h+7)/8
	blocks := make([]Block, bw*bh)
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			b := &blocks[by*bw+bx]
			for y := 0; y < 8; y++ {
				sy := by*8 + y
				if sy >= h {
					sy = h - 1
				}
				for x := 0; x < 8; x++ {
					sx := bx*8 + x
					if sx >= w {
						sx = w - 1
					}
					b[y*8+x] = int32(plane[sy*w+sx])
				}
			}
		}
	}
	return blocks
}

// NumBlocks returns the number of 8x8 macroblocks covering a w x h plane.
func NumBlocks(w, h int) int { return ((w + 7) / 8) * ((h + 7) / 8) }

// ExtractBlocksU8 is ExtractBlocks writing into caller-provided flat storage:
// dst receives NumBlocks(w,h) rows of 64 bytes, one macroblock per row in
// row-major block order, with the same edge-padding rule. Sample values are
// identical to ExtractBlocks (pixels are bytes; the level shift happens in
// the DCT), so the two feed the transform identical inputs.
func ExtractBlocksU8(plane []byte, w, h int, dst []uint8) {
	bw, bh := (w+7)/8, (h+7)/8
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			b := dst[(by*bw+bx)*64 : (by*bw+bx)*64+64]
			for y := 0; y < 8; y++ {
				sy := by*8 + y
				if sy >= h {
					sy = h - 1
				}
				row := plane[sy*w : sy*w+w]
				for x := 0; x < 8; x++ {
					sx := bx*8 + x
					if sx >= w {
						sx = w - 1
					}
					b[y*8+x] = row[sx]
				}
			}
		}
	}
}

// AssemblePlane is the inverse of ExtractBlocks: it writes spatial blocks
// back into a w x h plane, discarding padding.
func AssemblePlane(blocks []Block, w, h int) []byte {
	bw := (w + 7) / 8
	plane := make([]byte, w*h)
	for i := range blocks {
		bx, by := i%bw, i/bw
		for y := 0; y < 8; y++ {
			sy := by*8 + y
			if sy >= h {
				continue
			}
			for x := 0; x < 8; x++ {
				sx := bx*8 + x
				if sx >= w {
					continue
				}
				plane[sy*w+sx] = byte(blocks[i][y*8+x])
			}
		}
	}
	return plane
}
