// Package obs is the observability substrate of the P2G reproduction: a
// lock-free metrics registry (counters, gauges, fixed-bucket latency
// histograms), a bounded-ring kernel-instance tracer exportable as Chrome
// trace_event JSON, and live introspection HTTP endpoints (/metricz,
// /statusz, /tracez) mounted by the cmd binaries.
//
// The paper's evaluation (Tables II-III, figures 9-10) is built entirely on
// per-kernel instrumentation; this package turns that post-hoc accounting
// into a live measurement substrate, in the spirit of Thrill's built-in
// stats layer and TaskTorrent's task-level profiling. Everything is
// stdlib-only and nil-safe: methods on nil metrics and a nil *Registry are
// no-ops, so instrumentation can be threaded unconditionally through hot
// paths and costs a nil check when disabled.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d. Safe on a nil receiver.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc increments the counter by one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value; zero on a nil receiver.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (queue depth, memory, backlog).
type Gauge struct{ v atomic.Int64 }

// Set stores the current value. Safe on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by d. Safe on a nil receiver.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// SetMax raises the gauge to v if v is larger (a monotonic high-water mark).
// Unlike Set, concurrent reporters cannot regress the value, which is what
// per-shard backlog high-water gauges need. Safe on a nil receiver.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value; zero on a nil receiver.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count of latency histograms: bucket i
// counts observations with value < 1µs·2^i, the last bucket is a catch-all.
// 2^26 µs ≈ 67s comfortably covers any single dispatch.
const histBuckets = 27

// Histogram is a fixed-bucket latency histogram with exponential
// (power-of-two microsecond) bucket bounds. All updates are single atomic
// adds; there is no locking anywhere.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sumNs   atomic.Int64
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	i := bits.Len64(uint64(us)) // 0 for <1µs, 1 for 1µs, ...
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// Observe records one duration. Safe on a nil receiver.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(d.Nanoseconds())
}

// Overflow returns how many observations landed in the catch-all last
// bucket (value >= 2^26 µs). A non-zero overflow means quantile estimates
// above it are mean-based; /statusz surfaces the total so the skew is
// visible. Zero on a nil receiver.
func (h *Histogram) Overflow() int64 {
	if h == nil {
		return 0
	}
	return h.buckets[histBuckets-1].Load()
}

// Count returns the number of observations; zero on a nil receiver.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// SumNs returns the sum of all observed durations in nanoseconds.
func (h *Histogram) SumNs() int64 {
	if h == nil {
		return 0
	}
	return h.sumNs.Load()
}

// Snapshot copies the histogram state. The result is self-consistent enough
// for reporting (buckets are read while writers may run; totals can be off
// by in-flight observations).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.SumNs = h.sumNs.Load()
	s.Buckets = make([]int64, histBuckets)
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is the gob/JSON-friendly frozen form of a Histogram.
type HistogramSnapshot struct {
	Count   int64
	SumNs   int64
	Buckets []int64
}

// BucketBoundUS returns the upper bound (exclusive) of bucket i in
// microseconds; the last bucket has no bound (returns -1).
func BucketBoundUS(i int) int64 {
	if i >= histBuckets-1 {
		return -1
	}
	return 1 << i
}

// Quantile estimates the q-quantile (0..1) from the bucket counts, assuming
// observations sit at their bucket's upper bound.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	var cum int64
	for i, n := range s.Buckets {
		cum += n
		if cum > rank {
			b := BucketBoundUS(i)
			if b < 0 { // catch-all: fall back to the mean
				return time.Duration(s.SumNs / s.Count)
			}
			return time.Duration(b) * time.Microsecond
		}
	}
	return time.Duration(s.SumNs / s.Count)
}

// merge adds other's buckets into s (resizing as needed) and returns s.
func (s HistogramSnapshot) merge(other HistogramSnapshot) HistogramSnapshot {
	s.Count += other.Count
	s.SumNs += other.SumNs
	if len(s.Buckets) < len(other.Buckets) {
		s.Buckets = append(s.Buckets, make([]int64, len(other.Buckets)-len(s.Buckets))...)
	}
	for i, n := range other.Buckets {
		s.Buckets[i] += n
	}
	return s
}

// Registry is a named-metric registry. Registration (get-or-create) takes a
// lock-free fast path once a metric exists; updates on the returned handles
// are plain atomics. A nil *Registry hands out nil metrics, whose methods
// are no-ops, so callers thread registries unconditionally.
type Registry struct {
	counters sync.Map // name -> *Counter
	gauges   sync.Map // name -> *Gauge
	hists    sync.Map // name -> *Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if v, ok := r.counters.Load(name); ok {
		return v.(*Counter)
	}
	v, _ := r.counters.LoadOrStore(name, &Counter{})
	return v.(*Counter)
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if v, ok := r.gauges.Load(name); ok {
		return v.(*Gauge)
	}
	v, _ := r.gauges.LoadOrStore(name, &Gauge{})
	return v.(*Gauge)
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	if v, ok := r.hists.Load(name); ok {
		return v.(*Histogram)
	}
	v, _ := r.hists.LoadOrStore(name, &Histogram{})
	return v.(*Histogram)
}

// Label renders a metric name with one label in the conventional
// `name{key="value"}` form, so flat registry names read naturally in
// /metricz output.
func Label(name, key, value string) string {
	return name + `{` + key + `="` + value + `"}`
}

// SplitLabel splits a `name{key="value"}` metric name into its base name and
// label value; names without a label return the value "".
func SplitLabel(full string) (name, value string) {
	i := strings.IndexByte(full, '{')
	if i < 0 {
		return full, ""
	}
	name = full[:i]
	rest := full[i:]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return name, ""
	}
	rest = rest[j+1:]
	k := strings.IndexByte(rest, '"')
	if k < 0 {
		return name, ""
	}
	return name, rest[:k]
}

// MetricsSnapshot is a frozen copy of a registry, suitable for gob transfer
// inside worker heartbeats and for merging into a cluster view.
type MetricsSnapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Snapshot freezes the registry's current values. Returns nil on a nil
// registry.
func (r *Registry) Snapshot() *MetricsSnapshot {
	if r == nil {
		return nil
	}
	s := &MetricsSnapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	r.counters.Range(func(k, v any) bool {
		s.Counters[k.(string)] = v.(*Counter).Load()
		return true
	})
	r.gauges.Range(func(k, v any) bool {
		s.Gauges[k.(string)] = v.(*Gauge).Load()
		return true
	})
	r.hists.Range(func(k, v any) bool {
		s.Histograms[k.(string)] = v.(*Histogram).Snapshot()
		return true
	})
	return s
}

// Merge folds other into s: counters, gauges and histogram buckets sum.
// (Summing gauges matches the cluster-view use: total queue depth / memory
// across workers.) A nil other is a no-op.
func (s *MetricsSnapshot) Merge(other *MetricsSnapshot) {
	if s == nil || other == nil {
		return
	}
	for k, v := range other.Counters {
		s.Counters[k] += v
	}
	for k, v := range other.Gauges {
		s.Gauges[k] += v
	}
	for k, v := range other.Histograms {
		s.Histograms[k] = s.Histograms[k].merge(v)
	}
}

// WriteText renders the snapshot in a flat, Prometheus-like text format:
// one `name value` line per counter/gauge, and `_count`/`_sum_ns`/`_p50_us`/
// `_p99_us` lines per histogram, sorted by name.
func (s *MetricsSnapshot) WriteText(w io.Writer) error {
	if s == nil {
		_, err := io.WriteString(w, "# metrics disabled\n")
		return err
	}
	lines := make([]string, 0, len(s.Counters)+len(s.Gauges)+4*len(s.Histograms))
	for k, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", k, v))
	}
	for k, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %d", k, v))
	}
	for k, h := range s.Histograms {
		lines = append(lines,
			fmt.Sprintf("%s_count %d", k, h.Count),
			fmt.Sprintf("%s_sum_ns %d", k, h.SumNs),
			fmt.Sprintf("%s_p50_us %d", k, h.Quantile(0.5).Microseconds()),
			fmt.Sprintf("%s_p99_us %d", k, h.Quantile(0.99).Microseconds()))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := io.WriteString(w, l+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// WriteText renders the registry's current values (see
// MetricsSnapshot.WriteText).
func (r *Registry) WriteText(w io.Writer) error { return r.Snapshot().WriteText(w) }

// OverflowTotal sums the catch-all bucket counts of every histogram in the
// snapshot: the number of observations recorded but too large to place in a
// bounded bucket.
func (s *MetricsSnapshot) OverflowTotal() int64 {
	if s == nil {
		return 0
	}
	var total int64
	for _, h := range s.Histograms {
		if n := len(h.Buckets); n > 0 {
			total += h.Buckets[n-1]
		}
	}
	return total
}

// promName splits a flat registry name into its Prometheus base name and
// label pairs: `kernel_time_ns_total{kernel="dct"}` -> ("kernel_time_ns_total",
// `kernel="dct"`). Suffixes (_bucket, _sum, ...) are then spliced before the
// brace by the writer.
func promName(full string) (base, labels string) {
	i := strings.IndexByte(full, '{')
	if i < 0 {
		return full, ""
	}
	base = full[:i]
	labels = strings.TrimSuffix(strings.TrimPrefix(full[i:], "{"), "}")
	return base, labels
}

// promLine renders one sample line, re-homing the metric-family labels (and
// an optional extra label, used for `le`) inside the braces after suffix.
func promLine(w io.Writer, base, suffix, labels, extra string, value string) error {
	name := base + suffix
	switch {
	case labels == "" && extra == "":
		_, err := fmt.Fprintf(w, "%s %s\n", name, value)
		return err
	case labels == "":
		_, err := fmt.Fprintf(w, "%s{%s} %s\n", name, extra, value)
		return err
	case extra == "":
		_, err := fmt.Fprintf(w, "%s{%s} %s\n", name, labels, value)
		return err
	default:
		_, err := fmt.Fprintf(w, "%s{%s,%s} %s\n", name, labels, extra, value)
		return err
	}
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): `# TYPE` headers per metric family, labels inside
// braces, histogram buckets cumulative with `le` upper bounds in seconds.
// Metric families are emitted sorted by name so scrapes diff cleanly.
func (s *MetricsSnapshot) WritePrometheus(w io.Writer) error {
	if s == nil {
		_, err := io.WriteString(w, "# metrics disabled\n")
		return err
	}
	// Group samples by family so each gets exactly one TYPE header.
	families := map[string]string{} // base -> prometheus type
	members := map[string][]string{}
	for k := range s.Counters {
		base, _ := promName(k)
		families[base] = "counter"
		members[base] = append(members[base], k)
	}
	for k := range s.Gauges {
		base, _ := promName(k)
		families[base] = "gauge"
		members[base] = append(members[base], k)
	}
	for k := range s.Histograms {
		base, _ := promName(k)
		families[base] = "histogram"
		members[base] = append(members[base], k)
	}
	bases := make([]string, 0, len(families))
	for b := range families {
		bases = append(bases, b)
	}
	sort.Strings(bases)
	for _, base := range bases {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, families[base]); err != nil {
			return err
		}
		ms := members[base]
		sort.Strings(ms)
		for _, full := range ms {
			_, labels := promName(full)
			switch families[base] {
			case "counter":
				if err := promLine(w, base, "", labels, "", fmt.Sprintf("%d", s.Counters[full])); err != nil {
					return err
				}
			case "gauge":
				if err := promLine(w, base, "", labels, "", fmt.Sprintf("%d", s.Gauges[full])); err != nil {
					return err
				}
			case "histogram":
				h := s.Histograms[full]
				var cum int64
				for i, n := range h.Buckets {
					cum += n
					le := "+Inf"
					if b := BucketBoundUS(i); b >= 0 {
						le = strconv.FormatFloat(float64(b)/1e6, 'g', -1, 64)
					}
					if err := promLine(w, base, "_bucket", labels, `le="`+le+`"`, fmt.Sprintf("%d", cum)); err != nil {
						return err
					}
				}
				if len(h.Buckets) == 0 { // empty histogram still needs +Inf
					if err := promLine(w, base, "_bucket", labels, `le="+Inf"`, "0"); err != nil {
						return err
					}
				}
				if err := promLine(w, base, "_sum", labels, "", strconv.FormatFloat(float64(h.SumNs)/1e9, 'g', -1, 64)); err != nil {
					return err
				}
				if err := promLine(w, base, "_count", labels, "", fmt.Sprintf("%d", h.Count)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// WritePrometheus renders the registry's current values in Prometheus text
// exposition format (see MetricsSnapshot.WritePrometheus).
func (r *Registry) WritePrometheus(w io.Writer) error { return r.Snapshot().WritePrometheus(w) }

// Canonical metric names used across the runtime, distributed layer and
// scheduler. Per-kernel metrics attach the kernel name with Label(...,
// "kernel", name).
const (
	// Runtime (one execution node).
	MDispatchesTotal  = "runtime_dispatches_total"    // counter: kernel instances dispatched
	MFetchNs          = "runtime_fetch_ns"            // histogram: per-dispatch fetch+context time
	MKernelNs         = "runtime_kernel_ns"           // histogram: per-dispatch kernel-body time
	MStoreNs          = "runtime_store_ns"            // histogram: per-dispatch store+event time
	MReadyQueueDepth  = "runtime_ready_queue_depth"   // gauge: instances in the ready queue
	MEventBacklog     = "runtime_event_backlog"       // gauge: analyzer events waiting
	MFieldMemElems    = "runtime_field_mem_elems"     // gauge: live field element slots
	MOutstandingInsts = "runtime_outstanding_insts"   // gauge: dispatched, not yet committed
	MKernelInstances  = "kernel_instances_total"      // counter per kernel: instances dispatched
	MKernelDispatchNs = "kernel_dispatch_ns_total"    // counter per kernel: dispatch overhead
	MKernelTimeNs     = "kernel_time_ns_total"        // counter per kernel: kernel-body time
	MKernelStoreOps   = "kernel_store_ops_total"      // counter per kernel: fired store statements
	MTraceDropped     = "runtime_trace_dropped_total" // counter: spans evicted from the trace ring

	// Scheduler fast path (work-stealing deques, batched analyzer events).
	MStealsTotal       = "runtime_steals_total"        // counter: batches taken from a peer worker's deque
	MEventBatchesTotal = "runtime_event_batches_total" // counter: event batches received by the analyzer
	MWorkerQueueDepth  = "runtime_worker_queue_depth"  // gauge per worker: instances queued in that worker's deque

	// Sharded dependency analyzer (attach Label(..., "shard", i)).
	MAnalyzerShardEvents     = "runtime_analyzer_shard_events_total" // counter per shard: events processed by that shard
	MAnalyzerShardBacklogMax = "runtime_analyzer_shard_backlog_max"  // gauge per shard: high-water event backlog (batches)

	// Transport (one connection end).
	MTransportSentMsgs  = "transport_sent_msgs_total"
	MTransportRecvMsgs  = "transport_recv_msgs_total"
	MTransportSentBytes = "transport_sent_bytes_total"
	MTransportRecvBytes = "transport_recv_bytes_total"

	// Distributed store framing (dist worker send path and master broker).
	MDistFramesTotal     = "dist_frames_total"      // counter: store frames emitted
	MDistFrameBytesTotal = "dist_frame_bytes_total" // counter: encoded frame payload bytes

	// Distributed liveness and recovery (master-side failure detection).
	MDistWorkerDeaths = "dist_worker_deaths_total"        // counter: workers declared dead
	MDistFailovers    = "dist_failovers_total"            // counter: recoveries (reassign + replay) performed
	MDistReplayedGens = "dist_replayed_generations_total" // counter: field generations replayed to rebuilt workers
	MDistFrameStores  = "dist_frame_stores_total"         // counter: store notices carried inside frames

	// Stage timers: the fixed per-instance latency decomposition the
	// attribution report is built on (ISSUE 6 / paper §VIII-B). The first
	// five are per-kernel histograms (attach Label(..., "kernel", name));
	// idle is per node, flight per connection direction.
	MStageReadyWaitNs = "stage_ready_wait_ns" // histogram per kernel: instance created -> dependencies satisfied (analyzer-ready wait)
	MStageQueueWaitNs = "stage_queue_wait_ns" // histogram per kernel: ready -> a worker picks the instance up
	MStageFetchNs     = "stage_fetch_ns"      // histogram per kernel: context construction + fetches
	MStageExecNs      = "stage_exec_ns"       // histogram per kernel: kernel body
	MStageStoreNs     = "stage_store_ns"      // histogram per kernel: store application + event emission
	MStageIdleNs      = "stage_idle_ns"       // histogram per node: worker blocked waiting for ready work
	MStageAnalyzeNs   = "stage_analyze_ns"    // histogram per analyzer shard: event-processing busy time
	MStageFlightNs    = "stage_flight_ns"     // histogram: dist message send -> receive (clock-offset corrected)
)
