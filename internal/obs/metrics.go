// Package obs is the observability substrate of the P2G reproduction: a
// lock-free metrics registry (counters, gauges, fixed-bucket latency
// histograms), a bounded-ring kernel-instance tracer exportable as Chrome
// trace_event JSON, and live introspection HTTP endpoints (/metricz,
// /statusz, /tracez) mounted by the cmd binaries.
//
// The paper's evaluation (Tables II-III, figures 9-10) is built entirely on
// per-kernel instrumentation; this package turns that post-hoc accounting
// into a live measurement substrate, in the spirit of Thrill's built-in
// stats layer and TaskTorrent's task-level profiling. Everything is
// stdlib-only and nil-safe: methods on nil metrics and a nil *Registry are
// no-ops, so instrumentation can be threaded unconditionally through hot
// paths and costs a nil check when disabled.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d. Safe on a nil receiver.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc increments the counter by one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value; zero on a nil receiver.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (queue depth, memory, backlog).
type Gauge struct{ v atomic.Int64 }

// Set stores the current value. Safe on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by d. Safe on a nil receiver.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Load returns the current value; zero on a nil receiver.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count of latency histograms: bucket i
// counts observations with value < 1µs·2^i, the last bucket is a catch-all.
// 2^26 µs ≈ 67s comfortably covers any single dispatch.
const histBuckets = 27

// Histogram is a fixed-bucket latency histogram with exponential
// (power-of-two microsecond) bucket bounds. All updates are single atomic
// adds; there is no locking anywhere.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sumNs   atomic.Int64
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	i := bits.Len64(uint64(us)) // 0 for <1µs, 1 for 1µs, ...
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// Observe records one duration. Safe on a nil receiver.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(d.Nanoseconds())
}

// Count returns the number of observations; zero on a nil receiver.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// SumNs returns the sum of all observed durations in nanoseconds.
func (h *Histogram) SumNs() int64 {
	if h == nil {
		return 0
	}
	return h.sumNs.Load()
}

// Snapshot copies the histogram state. The result is self-consistent enough
// for reporting (buckets are read while writers may run; totals can be off
// by in-flight observations).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.SumNs = h.sumNs.Load()
	s.Buckets = make([]int64, histBuckets)
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is the gob/JSON-friendly frozen form of a Histogram.
type HistogramSnapshot struct {
	Count   int64
	SumNs   int64
	Buckets []int64
}

// BucketBoundUS returns the upper bound (exclusive) of bucket i in
// microseconds; the last bucket has no bound (returns -1).
func BucketBoundUS(i int) int64 {
	if i >= histBuckets-1 {
		return -1
	}
	return 1 << i
}

// Quantile estimates the q-quantile (0..1) from the bucket counts, assuming
// observations sit at their bucket's upper bound.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	var cum int64
	for i, n := range s.Buckets {
		cum += n
		if cum > rank {
			b := BucketBoundUS(i)
			if b < 0 { // catch-all: fall back to the mean
				return time.Duration(s.SumNs / s.Count)
			}
			return time.Duration(b) * time.Microsecond
		}
	}
	return time.Duration(s.SumNs / s.Count)
}

// merge adds other's buckets into s (resizing as needed) and returns s.
func (s HistogramSnapshot) merge(other HistogramSnapshot) HistogramSnapshot {
	s.Count += other.Count
	s.SumNs += other.SumNs
	if len(s.Buckets) < len(other.Buckets) {
		s.Buckets = append(s.Buckets, make([]int64, len(other.Buckets)-len(s.Buckets))...)
	}
	for i, n := range other.Buckets {
		s.Buckets[i] += n
	}
	return s
}

// Registry is a named-metric registry. Registration (get-or-create) takes a
// lock-free fast path once a metric exists; updates on the returned handles
// are plain atomics. A nil *Registry hands out nil metrics, whose methods
// are no-ops, so callers thread registries unconditionally.
type Registry struct {
	counters sync.Map // name -> *Counter
	gauges   sync.Map // name -> *Gauge
	hists    sync.Map // name -> *Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if v, ok := r.counters.Load(name); ok {
		return v.(*Counter)
	}
	v, _ := r.counters.LoadOrStore(name, &Counter{})
	return v.(*Counter)
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if v, ok := r.gauges.Load(name); ok {
		return v.(*Gauge)
	}
	v, _ := r.gauges.LoadOrStore(name, &Gauge{})
	return v.(*Gauge)
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	if v, ok := r.hists.Load(name); ok {
		return v.(*Histogram)
	}
	v, _ := r.hists.LoadOrStore(name, &Histogram{})
	return v.(*Histogram)
}

// Label renders a metric name with one label in the conventional
// `name{key="value"}` form, so flat registry names read naturally in
// /metricz output.
func Label(name, key, value string) string {
	return name + `{` + key + `="` + value + `"}`
}

// SplitLabel splits a `name{key="value"}` metric name into its base name and
// label value; names without a label return the value "".
func SplitLabel(full string) (name, value string) {
	i := strings.IndexByte(full, '{')
	if i < 0 {
		return full, ""
	}
	name = full[:i]
	rest := full[i:]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return name, ""
	}
	rest = rest[j+1:]
	k := strings.IndexByte(rest, '"')
	if k < 0 {
		return name, ""
	}
	return name, rest[:k]
}

// MetricsSnapshot is a frozen copy of a registry, suitable for gob transfer
// inside worker heartbeats and for merging into a cluster view.
type MetricsSnapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Snapshot freezes the registry's current values. Returns nil on a nil
// registry.
func (r *Registry) Snapshot() *MetricsSnapshot {
	if r == nil {
		return nil
	}
	s := &MetricsSnapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	r.counters.Range(func(k, v any) bool {
		s.Counters[k.(string)] = v.(*Counter).Load()
		return true
	})
	r.gauges.Range(func(k, v any) bool {
		s.Gauges[k.(string)] = v.(*Gauge).Load()
		return true
	})
	r.hists.Range(func(k, v any) bool {
		s.Histograms[k.(string)] = v.(*Histogram).Snapshot()
		return true
	})
	return s
}

// Merge folds other into s: counters, gauges and histogram buckets sum.
// (Summing gauges matches the cluster-view use: total queue depth / memory
// across workers.) A nil other is a no-op.
func (s *MetricsSnapshot) Merge(other *MetricsSnapshot) {
	if s == nil || other == nil {
		return
	}
	for k, v := range other.Counters {
		s.Counters[k] += v
	}
	for k, v := range other.Gauges {
		s.Gauges[k] += v
	}
	for k, v := range other.Histograms {
		s.Histograms[k] = s.Histograms[k].merge(v)
	}
}

// WriteText renders the snapshot in a flat, Prometheus-like text format:
// one `name value` line per counter/gauge, and `_count`/`_sum_ns`/`_p50_us`/
// `_p99_us` lines per histogram, sorted by name.
func (s *MetricsSnapshot) WriteText(w io.Writer) error {
	if s == nil {
		_, err := io.WriteString(w, "# metrics disabled\n")
		return err
	}
	lines := make([]string, 0, len(s.Counters)+len(s.Gauges)+4*len(s.Histograms))
	for k, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", k, v))
	}
	for k, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %d", k, v))
	}
	for k, h := range s.Histograms {
		lines = append(lines,
			fmt.Sprintf("%s_count %d", k, h.Count),
			fmt.Sprintf("%s_sum_ns %d", k, h.SumNs),
			fmt.Sprintf("%s_p50_us %d", k, h.Quantile(0.5).Microseconds()),
			fmt.Sprintf("%s_p99_us %d", k, h.Quantile(0.99).Microseconds()))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := io.WriteString(w, l+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// WriteText renders the registry's current values (see
// MetricsSnapshot.WriteText).
func (r *Registry) WriteText(w io.Writer) error { return r.Snapshot().WriteText(w) }

// Canonical metric names used across the runtime, distributed layer and
// scheduler. Per-kernel metrics attach the kernel name with Label(...,
// "kernel", name).
const (
	// Runtime (one execution node).
	MDispatchesTotal  = "runtime_dispatches_total"    // counter: kernel instances dispatched
	MFetchNs          = "runtime_fetch_ns"            // histogram: per-dispatch fetch+context time
	MKernelNs         = "runtime_kernel_ns"           // histogram: per-dispatch kernel-body time
	MStoreNs          = "runtime_store_ns"            // histogram: per-dispatch store+event time
	MReadyQueueDepth  = "runtime_ready_queue_depth"   // gauge: instances in the ready queue
	MEventBacklog     = "runtime_event_backlog"       // gauge: analyzer events waiting
	MFieldMemElems    = "runtime_field_mem_elems"     // gauge: live field element slots
	MOutstandingInsts = "runtime_outstanding_insts"   // gauge: dispatched, not yet committed
	MKernelInstances  = "kernel_instances_total"      // counter per kernel: instances dispatched
	MKernelDispatchNs = "kernel_dispatch_ns_total"    // counter per kernel: dispatch overhead
	MKernelTimeNs     = "kernel_time_ns_total"        // counter per kernel: kernel-body time
	MKernelStoreOps   = "kernel_store_ops_total"      // counter per kernel: fired store statements
	MTraceDropped     = "runtime_trace_dropped_total" // counter: spans evicted from the trace ring

	// Scheduler fast path (work-stealing deques, batched analyzer events).
	MStealsTotal       = "runtime_steals_total"        // counter: batches taken from a peer worker's deque
	MEventBatchesTotal = "runtime_event_batches_total" // counter: event batches received by the analyzer
	MWorkerQueueDepth  = "runtime_worker_queue_depth"  // gauge per worker: instances queued in that worker's deque

	// Transport (one connection end).
	MTransportSentMsgs  = "transport_sent_msgs_total"
	MTransportRecvMsgs  = "transport_recv_msgs_total"
	MTransportSentBytes = "transport_sent_bytes_total"
	MTransportRecvBytes = "transport_recv_bytes_total"

	// Distributed store framing (dist worker send path and master broker).
	MDistFramesTotal     = "dist_frames_total"       // counter: store frames emitted
	MDistFrameBytesTotal = "dist_frame_bytes_total"  // counter: encoded frame payload bytes
	MDistFrameStores     = "dist_frame_stores_total" // counter: store notices carried inside frames
)
