package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentCounters hammers one counter, one gauge and one histogram
// from many goroutines; run under -race this doubles as the lock-freedom
// soundness check the issue asks for.
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c")
			h := r.Histogram("h")
			ga := r.Gauge("g")
			for i := 0; i < perG; i++ {
				c.Inc()
				ga.Add(1)
				h.Observe(3 * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	const want = goroutines * perG
	if got := r.Counter("c").Load(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := r.Gauge("g").Load(); got != want {
		t.Errorf("gauge = %d, want %d", got, want)
	}
	h := r.Histogram("h")
	if h.Count() != want {
		t.Errorf("hist count = %d, want %d", h.Count(), want)
	}
	if got := h.SumNs(); got != want*3000 {
		t.Errorf("hist sum = %d, want %d", got, want*3000)
	}
	s := h.Snapshot()
	if s.Buckets[bucketOf(3*time.Microsecond)] != want {
		t.Errorf("all observations should land in one bucket: %v", s.Buckets)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Load() != 0 {
		t.Error("nil counter should load 0")
	}
	r.Gauge("g").Set(7)
	r.Histogram("h").Observe(time.Second)
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot should be nil")
	}
	var sb strings.Builder
	if err := r.Snapshot().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "disabled") {
		t.Errorf("nil snapshot text = %q", sb.String())
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{1024 * time.Microsecond, 11},
		{24 * time.Hour, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	if BucketBoundUS(histBuckets-1) != -1 {
		t.Error("last bucket must be unbounded")
	}
	if BucketBoundUS(3) != 8 {
		t.Errorf("BucketBoundUS(3) = %d, want 8", BucketBoundUS(3))
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(10 * time.Microsecond) // bucket bound 16µs
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000 * time.Microsecond) // bucket bound 1024µs
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q != 16*time.Microsecond {
		t.Errorf("p50 = %v, want 16µs", q)
	}
	if q := s.Quantile(0.99); q != 1024*time.Microsecond {
		t.Errorf("p99 = %v, want 1024µs", q)
	}
}

func TestLabelRoundTrip(t *testing.T) {
	full := Label("kernel_instances_total", "kernel", "mul2")
	if full != `kernel_instances_total{kernel="mul2"}` {
		t.Fatalf("Label = %q", full)
	}
	name, val := SplitLabel(full)
	if name != "kernel_instances_total" || val != "mul2" {
		t.Errorf("SplitLabel = %q, %q", name, val)
	}
	name, val = SplitLabel("plain_metric")
	if name != "plain_metric" || val != "" {
		t.Errorf("SplitLabel(plain) = %q, %q", name, val)
	}
}

func TestSnapshotMergeAndText(t *testing.T) {
	a := NewRegistry()
	a.Counter("c").Add(2)
	a.Gauge("g").Set(5)
	a.Histogram("h").Observe(time.Microsecond)
	b := NewRegistry()
	b.Counter("c").Add(3)
	b.Counter("only_b").Add(1)
	b.Gauge("g").Set(7)
	b.Histogram("h").Observe(time.Microsecond)

	m := a.Snapshot()
	m.Merge(b.Snapshot())
	if m.Counters["c"] != 5 || m.Counters["only_b"] != 1 {
		t.Errorf("merged counters = %v", m.Counters)
	}
	if m.Gauges["g"] != 12 {
		t.Errorf("merged gauge = %d, want 12", m.Gauges["g"])
	}
	if m.Histograms["h"].Count != 2 {
		t.Errorf("merged hist count = %d, want 2", m.Histograms["h"].Count)
	}

	var sb strings.Builder
	if err := m.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{"c 5", "g 12", "h_count 2", "h_sum_ns", "h_p50_us", "h_p99_us"} {
		if !strings.Contains(text, want) {
			t.Errorf("text output missing %q:\n%s", want, text)
		}
	}
}
