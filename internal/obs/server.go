package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"
)

// Server exposes live introspection endpoints over HTTP:
//
//	/metricz      flat text dump of the metrics registry; Prometheus text
//	              exposition with ?format=prometheus or an Accept header
//	              asking for it (content negotiation)
//	/statusz      JSON snapshot from the status callback (node or cluster
//	              view), augmented with an "obs" health section (trace-ring
//	              drops, histogram overflow)
//	/tracez       Chrome trace_event JSON dump of the tracer ring
//	/debug/pprof  the standard net/http/pprof profiler endpoints
//
// Start and Stop are idempotent-guarded: a second Start fails, a Stop
// before Start or a second Stop is a no-op, and Stop does not return until
// the serving goroutine has exited (no leak).
type Server struct {
	addr   string
	reg    *Registry
	tracer *Tracer
	status func() any

	mu      sync.Mutex
	ln      net.Listener
	srv     *http.Server
	done    chan struct{}
	started bool
	stopped bool
}

// NewServer creates an unstarted introspection server. Any of reg, tracer
// and status may be nil; the corresponding endpoint reports that the source
// is disabled.
func NewServer(addr string, reg *Registry, tracer *Tracer, status func() any) *Server {
	return &Server{addr: addr, reg: reg, tracer: tracer, status: status}
}

// Start binds the listener and serves in a background goroutine. It returns
// an error if the server was already started (or already stopped) or the
// address cannot be bound.
func (s *Server) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return fmt.Errorf("obs: server already started")
	}
	if s.stopped {
		return fmt.Errorf("obs: server already stopped")
	}
	ln, err := net.Listen("tcp", s.addr)
	if err != nil {
		return fmt.Errorf("obs: listening on %s: %w", s.addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metricz", s.handleMetricz)
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/tracez", s.handleTracez)
	// The server runs on its own mux (never http.DefaultServeMux), so the
	// pprof handlers must be mounted explicitly.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.ln = ln
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	s.done = make(chan struct{})
	s.started = true
	go func(srv *http.Server, ln net.Listener, done chan struct{}) {
		srv.Serve(ln) // returns http.ErrServerClosed on Stop
		close(done)
	}(s.srv, ln, s.done)
	return nil
}

// Addr returns the bound listen address ("" before Start), so callers can
// pass port 0 and discover the ephemeral port.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Stop closes the server and waits for the serving goroutine to exit. Safe
// to call multiple times and before Start.
func (s *Server) Stop() {
	s.mu.Lock()
	if s.stopped || !s.started {
		s.stopped = true
		s.mu.Unlock()
		return
	}
	s.stopped = true
	srv, done := s.srv, s.done
	s.mu.Unlock()
	srv.Close()
	<-done
}

// wantsPrometheus decides the /metricz output format: explicit
// ?format=prometheus wins, otherwise an Accept header naming the Prometheus
// or OpenMetrics text exposition selects it.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus", "openmetrics":
		return true
	case "text", "flat":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "application/openmetrics-text") ||
		strings.Contains(accept, "version=0.0.4")
}

func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snap.WritePrometheus(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	snap.WriteText(w)
}

// obsHealth reports the observability layer's own data-loss indicators, so
// silent span eviction or histogram overflow shows up on /statusz instead of
// skewing analyses invisibly.
func (s *Server) obsHealth() map[string]any {
	h := map[string]any{
		"trace_spans":        s.tracer.Len(),
		"trace_dropped":      s.tracer.Dropped(),
		"histogram_overflow": s.reg.Snapshot().OverflowTotal(),
	}
	return h
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	var v any
	if s.status != nil {
		v = s.status()
	}
	if v == nil {
		v = map[string]string{"status": "no status source"}
	}
	// Merge the obs health section into the status object when it is one
	// (keeping the caller's keys at the top level); wrap it otherwise.
	out := map[string]any{}
	if raw, err := json.Marshal(v); err == nil && len(raw) > 0 && raw[0] == '{' && json.Unmarshal(raw, &out) == nil {
		out["obs"] = s.obsHealth()
		v = out
	} else {
		v = map[string]any{"status": v, "obs": s.obsHealth()}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleTracez(w http.ResponseWriter, _ *http.Request) {
	if s.tracer == nil {
		http.Error(w, "tracing disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.tracer.WriteChromeTrace(w)
}
