package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("runtime_dispatches_total").Add(42)
	tr := NewTracer(8)
	tr.Record(Span{Name: "k", Ph: PhaseComplete, TS: 10, Dur: 5})
	status := func() any { return map[string]any{"phase": "running", "workers": 2} }

	s := NewServer("127.0.0.1:0", reg, tr, status)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	base := "http://" + s.Addr()

	code, body := get(t, base+"/metricz")
	if code != 200 || !strings.Contains(body, "runtime_dispatches_total 42") {
		t.Errorf("/metricz = %d %q", code, body)
	}

	code, body = get(t, base+"/statusz")
	if code != 200 {
		t.Fatalf("/statusz code = %d", code)
	}
	var st map[string]any
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/statusz not JSON: %v", err)
	}
	if st["phase"] != "running" {
		t.Errorf("/statusz = %v", st)
	}

	code, body = get(t, base+"/tracez")
	if code != 200 {
		t.Fatalf("/tracez code = %d", code)
	}
	var f struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &f); err != nil {
		t.Fatalf("/tracez not JSON: %v", err)
	}
	if len(f.TraceEvents) != 1 {
		t.Errorf("/tracez events = %d, want 1", len(f.TraceEvents))
	}
}

func TestServerDoubleStartStop(t *testing.T) {
	s := NewServer("127.0.0.1:0", nil, nil, nil)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err == nil {
		t.Error("second Start should fail")
	}
	s.Stop()
	s.Stop() // second Stop is a no-op
	if err := s.Start(); err == nil {
		t.Error("Start after Stop should fail")
	}

	var unstarted Server
	unstarted.Stop() // Stop before Start is a no-op
}

// TestServerNoGoroutineLeak starts and stops servers repeatedly and checks
// the goroutine count settles back to the baseline (the stdlib-only
// goleak-style check the issue asks for).
func TestServerNoGoroutineLeak(t *testing.T) {
	// Warm up the net/http internals that spawn long-lived goroutines once.
	s0 := NewServer("127.0.0.1:0", nil, nil, nil)
	if err := s0.Start(); err != nil {
		t.Fatal(err)
	}
	get(t, "http://"+s0.Addr()+"/metricz")
	s0.Stop()
	http.DefaultClient.CloseIdleConnections()
	time.Sleep(20 * time.Millisecond)

	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		s := NewServer("127.0.0.1:0", NewRegistry(), NewTracer(4), nil)
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		get(t, fmt.Sprintf("http://%s/statusz", s.Addr()))
		s.Stop()
	}
	http.DefaultClient.CloseIdleConnections()

	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: before=%d after=%d (leak)", before, runtime.NumGoroutine())
}

// TestMetriczContentNegotiation covers the /metricz dual format: flat
// name-value text by default, Prometheus exposition when asked for via query
// parameter or Accept header.
func TestMetriczContentNegotiation(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("runtime_dispatches_total").Add(7)
	reg.Histogram(Label(MStageExecNs, "kernel", "dct")).Observe(3 * time.Millisecond)

	s := NewServer("127.0.0.1:0", reg, nil, nil)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	base := "http://" + s.Addr()

	// Default: flat text.
	code, body := get(t, base+"/metricz")
	if code != 200 || !strings.Contains(body, "runtime_dispatches_total 7") {
		t.Errorf("flat /metricz = %d %q", code, body)
	}
	if strings.Contains(body, "# TYPE") {
		t.Errorf("flat /metricz contains exposition headers:\n%s", body)
	}

	// ?format=prometheus: exposition text with family headers, cumulative
	// buckets and seconds units.
	resp, err := http.Get(base + "/metricz?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body = string(raw)
	if got := resp.Header.Get("Content-Type"); !strings.Contains(got, "version=0.0.4") {
		t.Errorf("prometheus Content-Type = %q", got)
	}
	for _, want := range []string{
		"# TYPE runtime_dispatches_total counter",
		"runtime_dispatches_total 7",
		"# TYPE stage_exec_ns histogram",
		`stage_exec_ns_bucket{kernel="dct",le="+Inf"} 1`,
		`stage_exec_ns_count{kernel="dct"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prometheus /metricz missing %q:\n%s", want, body)
		}
	}

	// Accept header negotiation picks the exposition format too.
	req, _ := http.NewRequest("GET", base+"/metricz", nil)
	req.Header.Set("Accept", "text/plain; version=0.0.4")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !strings.Contains(string(raw2), "# TYPE runtime_dispatches_total counter") {
		t.Errorf("Accept-negotiated /metricz not exposition:\n%s", raw2)
	}

	// ?format=flat forces the plain dump even with an exposition Accept.
	req3, _ := http.NewRequest("GET", base+"/metricz?format=flat", nil)
	req3.Header.Set("Accept", "application/openmetrics-text")
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	raw3, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if strings.Contains(string(raw3), "# TYPE") {
		t.Errorf("format=flat still produced exposition:\n%s", raw3)
	}
}

// TestServerPprof checks the profiler endpoints ride on the guarded obs mux.
func TestServerPprof(t *testing.T) {
	s := NewServer("127.0.0.1:0", NewRegistry(), nil, nil)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	base := "http://" + s.Addr()

	code, body := get(t, base+"/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d %q", code, body)
	}
	code, _ = get(t, base+"/debug/pprof/goroutine?debug=1")
	if code != 200 {
		t.Errorf("/debug/pprof/goroutine = %d", code)
	}
	code, _ = get(t, base+"/debug/pprof/cmdline")
	if code != 200 {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
}

// TestStatuszObsHealth checks the server merges its own health block — span
// counts, drop counts, histogram overflow — into the caller's status object.
func TestStatuszObsHealth(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_ns")
	h.Observe(time.Duration(1) << 40) // beyond the last bucket: overflow
	tr := NewTracer(2)
	for i := 0; i < 5; i++ {
		tr.Record(Span{Name: "s", Ph: PhaseComplete, TS: int64(i), Dur: 1})
	}
	s := NewServer("127.0.0.1:0", reg, tr, func() any {
		return map[string]any{"phase": "running"}
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	code, body := get(t, "http://"+s.Addr()+"/statusz")
	if code != 200 {
		t.Fatalf("/statusz = %d", code)
	}
	var st struct {
		Phase string `json:"phase"`
		Obs   struct {
			TraceSpans        int64 `json:"trace_spans"`
			TraceDropped      int64 `json:"trace_dropped"`
			HistogramOverflow int64 `json:"histogram_overflow"`
		} `json:"obs"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/statusz not JSON: %v\n%s", err, body)
	}
	if st.Phase != "running" {
		t.Errorf("caller status clobbered: %s", body)
	}
	if st.Obs.TraceSpans != 2 {
		t.Errorf("trace_spans = %d, want 2 (ring capacity)", st.Obs.TraceSpans)
	}
	if st.Obs.TraceDropped != 3 {
		t.Errorf("trace_dropped = %d, want 3", st.Obs.TraceDropped)
	}
	if st.Obs.HistogramOverflow != 1 {
		t.Errorf("histogram_overflow = %d, want 1", st.Obs.HistogramOverflow)
	}
}

// TestServerConcurrentScrape hammers every endpoint while a writer keeps the
// registry and tracer hot; under -race this is the data-race check for the
// whole introspection surface.
func TestServerConcurrentScrape(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(64)
	s := NewServer("127.0.0.1:0", reg, tr, func() any {
		return map[string]any{"phase": "running"}
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	base := "http://" + s.Addr()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: counters, labeled histograms, spans
		defer wg.Done()
		h := reg.Histogram(Label(MStageExecNs, "kernel", "k"))
		c := reg.Counter("runtime_dispatches_total")
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Inc()
			h.Observe(time.Duration(i%1000) * time.Microsecond)
			tr.Record(Span{Name: "k", Ph: PhaseComplete, TS: int64(i), Dur: 2})
		}
	}()

	urls := []string{
		base + "/metricz",
		base + "/metricz?format=prometheus",
		base + "/statusz",
		base + "/tracez",
		base + "/debug/pprof/goroutine?debug=1",
	}
	for _, u := range urls {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if code, _ := get(t, u); code != 200 {
					t.Errorf("%s = %d", u, code)
					return
				}
			}
		}(u)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Scrapers finish, then the writer is told to stop.
	time.AfterFunc(5*time.Second, func() { close(stop) })
	for i := 0; i < 5; i++ {
		if code, _ := get(t, base+"/metricz"); code != 200 {
			t.Fatalf("scrape %d failed", i)
		}
	}
	select {
	case <-stop:
	default:
		close(stop)
	}
	<-done
}
