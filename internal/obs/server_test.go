package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("runtime_dispatches_total").Add(42)
	tr := NewTracer(8)
	tr.Record(Span{Name: "k", Ph: PhaseComplete, TS: 10, Dur: 5})
	status := func() any { return map[string]any{"phase": "running", "workers": 2} }

	s := NewServer("127.0.0.1:0", reg, tr, status)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	base := "http://" + s.Addr()

	code, body := get(t, base+"/metricz")
	if code != 200 || !strings.Contains(body, "runtime_dispatches_total 42") {
		t.Errorf("/metricz = %d %q", code, body)
	}

	code, body = get(t, base+"/statusz")
	if code != 200 {
		t.Fatalf("/statusz code = %d", code)
	}
	var st map[string]any
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/statusz not JSON: %v", err)
	}
	if st["phase"] != "running" {
		t.Errorf("/statusz = %v", st)
	}

	code, body = get(t, base+"/tracez")
	if code != 200 {
		t.Fatalf("/tracez code = %d", code)
	}
	var f struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &f); err != nil {
		t.Fatalf("/tracez not JSON: %v", err)
	}
	if len(f.TraceEvents) != 1 {
		t.Errorf("/tracez events = %d, want 1", len(f.TraceEvents))
	}
}

func TestServerDoubleStartStop(t *testing.T) {
	s := NewServer("127.0.0.1:0", nil, nil, nil)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err == nil {
		t.Error("second Start should fail")
	}
	s.Stop()
	s.Stop() // second Stop is a no-op
	if err := s.Start(); err == nil {
		t.Error("Start after Stop should fail")
	}

	var unstarted Server
	unstarted.Stop() // Stop before Start is a no-op
}

// TestServerNoGoroutineLeak starts and stops servers repeatedly and checks
// the goroutine count settles back to the baseline (the stdlib-only
// goleak-style check the issue asks for).
func TestServerNoGoroutineLeak(t *testing.T) {
	// Warm up the net/http internals that spawn long-lived goroutines once.
	s0 := NewServer("127.0.0.1:0", nil, nil, nil)
	if err := s0.Start(); err != nil {
		t.Fatal(err)
	}
	get(t, "http://"+s0.Addr()+"/metricz")
	s0.Stop()
	http.DefaultClient.CloseIdleConnections()
	time.Sleep(20 * time.Millisecond)

	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		s := NewServer("127.0.0.1:0", NewRegistry(), NewTracer(4), nil)
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		get(t, fmt.Sprintf("http://%s/statusz", s.Addr()))
		s.Stop()
	}
	http.DefaultClient.CloseIdleConnections()

	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: before=%d after=%d (leak)", before, runtime.NumGoroutine())
}
