package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"strconv"
	"sync"
	"time"
)

// Span phases, mirroring the Chrome trace_event "ph" field.
const (
	PhaseComplete = 'X' // a kernel-instance dispatch with a duration
	PhaseInstant  = 'i' // a lifecycle tick (commit, kernel-age done)
)

// Flow roles for spans that participate in a cross-node causal trace: a
// store frame's journey worker→broker→worker is stitched into one Chrome
// flow arrow by tagging the emitting, forwarding and injecting spans.
const (
	FlowStart  = 's' // origin of the causal chain (frame emitted)
	FlowStep   = 't' // intermediate hop (master broker forward)
	FlowFinish = 'f' // terminal hop (frame injected at the destination)
)

// Span is one recorded kernel-instance lifecycle event. A complete span
// covers one dispatch (ready → fetched → executed → stored) with the phase
// breakdown in WaitNs/FetchNs/KernelNs/StoreNs; instant spans mark the
// analyzer-side lifecycle ticks (instance committed, kernel-age done).
type Span struct {
	Name  string // kernel name
	Cat   string // "kernel", "commit", "lifecycle"
	Ph    byte   // PhaseComplete or PhaseInstant
	TS    int64  // nanoseconds since the tracer started
	Dur   int64  // span duration in nanoseconds (complete spans)
	TID   int    // worker goroutine id (0 = analyzer)
	Age   int    // kernel age coordinate
	Index []int  // index-variable coordinates (shared, do not mutate)

	// Dispatch phase breakdown, nanoseconds (complete spans only).
	WaitNs   int64 // ready-queue wait before the dispatch began
	FetchNs  int64 // context construction + fetches
	KernelNs int64 // kernel body
	StoreNs  int64 // store application + event emission

	// Causal trace linkage (cross-node store frames). Trace is the frame's
	// cluster-unique id (0 = not part of a flow); Flow tags this span's
	// role in the chain (FlowStart/FlowStep/FlowFinish, 0 = none).
	Trace uint64
	Flow  byte
}

// Tracer records Spans into a bounded ring buffer: when full, the oldest
// spans are overwritten and counted as dropped. All methods are safe on a
// nil receiver (no-ops), so tracing costs one nil check when disabled.
type Tracer struct {
	start time.Time
	pid   int

	mu      sync.Mutex
	buf     []Span
	next    uint64 // total spans ever recorded
	dropped *Counter
}

// DefaultTraceCapacity bounds the ring when NewTracer is given no capacity.
const DefaultTraceCapacity = 1 << 16

// NewTracer creates a tracer whose ring holds capacity spans (<=0 selects
// DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{start: time.Now(), pid: 1, buf: make([]Span, 0, capacity)}
}

// SetPID sets the Chrome-trace process id emitted for this tracer's spans
// (distributed deployments give each node its own pid lane).
func (t *Tracer) SetPID(pid int) {
	if t != nil {
		t.pid = pid
	}
}

// CountDropped reports ring evictions on the given counter.
func (t *Tracer) CountDropped(c *Counter) {
	if t != nil {
		t.dropped = c
	}
}

// Now returns nanoseconds since the tracer started; zero on a nil receiver.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return time.Since(t.start).Nanoseconds()
}

// StartTime returns the wall-clock instant the tracer started (its TS==0
// origin); the zero time on a nil receiver.
func (t *Tracer) StartTime() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// StartUnixNs returns the tracer's start instant as UnixNano, the anchor
// merged cluster traces align node timelines with. Zero on a nil receiver.
func (t *Tracer) StartUnixNs() int64 {
	if t == nil {
		return 0
	}
	return t.start.UnixNano()
}

// Len returns the number of spans currently retained in the ring.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Since converts a wall-clock instant into tracer-relative nanoseconds.
func (t *Tracer) Since(at time.Time) int64 {
	if t == nil {
		return 0
	}
	return at.Sub(t.start).Nanoseconds()
}

// Record appends one span, evicting the oldest when the ring is full.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, s)
	} else {
		t.buf[t.next%uint64(cap(t.buf))] = s
		t.dropped.Add(1)
	}
	t.next++
	t.mu.Unlock()
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.buf))
	if len(t.buf) < cap(t.buf) {
		copy(out, t.buf)
		return out
	}
	head := int(t.next % uint64(cap(t.buf))) // oldest retained span
	n := copy(out, t.buf[head:])
	copy(out[n:], t.buf[:head])
	return out
}

// Dropped returns how many spans were evicted from the ring.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.buf) < cap(t.buf) {
		return 0
	}
	return int64(t.next) - int64(cap(t.buf))
}

// chromeEvent is the trace_event JSON wire form
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`  // instant-event scope
	ID   string         `json:"id,omitempty"` // flow-event binding id
	BP   string         `json:"bp,omitempty"` // flow binding point ("e" = enclosing slice)
	Args map[string]any `json:"args,omitempty"`
}

// chromeTraceFile is the top-level trace_event JSON object.
type chromeTraceFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace serializes the retained spans as Chrome trace_event JSON,
// loadable in chrome://tracing and Perfetto. Each complete span becomes one
// slice named after its kernel, carrying age, index and the dispatch phase
// breakdown as args.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(t.chromeFile()); err != nil {
		return err
	}
	return bw.Flush()
}

// appendSpanEvents converts one span into trace_event form and appends it to
// dst: the slice or instant event itself, plus a flow event when the span is
// tagged as a causal-chain endpoint. tsUS is the event timestamp on the
// output timeline in microseconds (the caller owns clock alignment).
func appendSpanEvents(dst []chromeEvent, s Span, pid int, tsUS float64) []chromeEvent {
	ev := chromeEvent{
		Name: s.Name,
		Cat:  s.Cat,
		Ph:   string(rune(s.Ph)),
		TS:   tsUS,
		PID:  pid,
		TID:  s.TID,
		Args: map[string]any{"age": s.Age},
	}
	if len(s.Index) > 0 {
		ev.Args["index"] = s.Index
	}
	switch s.Ph {
	case PhaseComplete:
		ev.Dur = float64(s.Dur) / 1e3
		ev.Args["wait_us"] = float64(s.WaitNs) / 1e3
		ev.Args["fetch_us"] = float64(s.FetchNs) / 1e3
		ev.Args["kernel_us"] = float64(s.KernelNs) / 1e3
		ev.Args["store_us"] = float64(s.StoreNs) / 1e3
	case PhaseInstant:
		ev.S = "t" // thread-scoped tick
	}
	if s.Trace != 0 {
		ev.Args["trace"] = strconv.FormatUint(s.Trace, 16)
	}
	dst = append(dst, ev)
	if s.Trace != 0 && s.Flow != 0 {
		// Flow events with the same cat/name/id draw one causal arrow
		// across processes; placing them mid-slice keeps the binding
		// inside the slice's duration.
		fl := chromeEvent{
			Name: "frame",
			Cat:  "dist.flow",
			Ph:   string(rune(s.Flow)),
			TS:   tsUS + ev.Dur/2,
			PID:  pid,
			TID:  s.TID,
			ID:   strconv.FormatUint(s.Trace, 16),
		}
		if s.Flow == FlowFinish {
			fl.BP = "e" // bind to the enclosing slice, not the next one
		}
		dst = append(dst, fl)
	}
	return dst
}

func (t *Tracer) chromeFile() chromeTraceFile {
	spans := t.Spans()
	f := chromeTraceFile{TraceEvents: make([]chromeEvent, 0, len(spans)), DisplayTimeUnit: "ms"}
	pid := 1
	if t != nil {
		pid = t.pid
	}
	for _, s := range spans {
		f.TraceEvents = appendSpanEvents(f.TraceEvents, s, pid, float64(s.TS)/1e3)
	}
	return f
}

// NodeTrace bundles one node's span buffer with the alignment data needed to
// merge it into a cluster-wide trace: the tracer's wall-clock start on that
// node's own clock, and the node's estimated clock offset relative to the
// reference (master) clock as measured during the dist handshake.
type NodeTrace struct {
	Node        string // display name ("master", worker id)
	PID         int    // Chrome-trace process lane
	StartUnixNs int64  // tracer start, UnixNano on the node's own clock
	OffsetNs    int64  // node clock minus reference clock (0 = reference/unsynced)
	Dropped     int64  // spans evicted from the node's ring
	Spans       []Span
}

// NodeTrace snapshots this tracer as a mergeable bundle. Safe on a nil
// receiver (returns an empty bundle carrying only the name and pid).
func (t *Tracer) NodeTrace(node string, pid int) NodeTrace {
	return NodeTrace{
		Node:        node,
		PID:         pid,
		StartUnixNs: t.StartUnixNs(),
		Dropped:     t.Dropped(),
		Spans:       t.Spans(),
	}
}

// WriteMergedChromeTrace merges span bundles from several nodes into one
// Chrome trace_event file on a common timeline: each node's timestamps are
// rebased to the reference clock (UnixNano − OffsetNs), the earliest tracer
// start across nodes becomes t=0, and each node gets its own pid lane with a
// process_name metadata record. Spans tagged with a Trace id emit flow
// events, so a frame's worker→broker→worker journey renders as one arrow.
func WriteMergedChromeTrace(w io.Writer, nodes []NodeTrace) error {
	var base int64
	haveBase := false
	for _, n := range nodes {
		if len(n.Spans) == 0 {
			continue
		}
		ref := n.StartUnixNs - n.OffsetNs
		if !haveBase || ref < base {
			base, haveBase = ref, true
		}
	}
	f := chromeTraceFile{DisplayTimeUnit: "ms"}
	for _, n := range nodes {
		if len(n.Spans) == 0 {
			continue
		}
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			PID:  n.PID,
			Args: map[string]any{"name": n.Node},
		})
		start := n.StartUnixNs - n.OffsetNs - base
		for _, s := range n.Spans {
			f.TraceEvents = appendSpanEvents(f.TraceEvents, s, n.PID, float64(start+s.TS)/1e3)
		}
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(f); err != nil {
		return err
	}
	return bw.Flush()
}
