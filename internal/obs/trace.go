package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Span phases, mirroring the Chrome trace_event "ph" field.
const (
	PhaseComplete = 'X' // a kernel-instance dispatch with a duration
	PhaseInstant  = 'i' // a lifecycle tick (commit, kernel-age done)
)

// Span is one recorded kernel-instance lifecycle event. A complete span
// covers one dispatch (ready → fetched → executed → stored) with the phase
// breakdown in WaitNs/FetchNs/KernelNs/StoreNs; instant spans mark the
// analyzer-side lifecycle ticks (instance committed, kernel-age done).
type Span struct {
	Name  string // kernel name
	Cat   string // "kernel", "commit", "lifecycle"
	Ph    byte   // PhaseComplete or PhaseInstant
	TS    int64  // nanoseconds since the tracer started
	Dur   int64  // span duration in nanoseconds (complete spans)
	TID   int    // worker goroutine id (0 = analyzer)
	Age   int    // kernel age coordinate
	Index []int  // index-variable coordinates (shared, do not mutate)

	// Dispatch phase breakdown, nanoseconds (complete spans only).
	WaitNs   int64 // ready-queue wait before the dispatch began
	FetchNs  int64 // context construction + fetches
	KernelNs int64 // kernel body
	StoreNs  int64 // store application + event emission
}

// Tracer records Spans into a bounded ring buffer: when full, the oldest
// spans are overwritten and counted as dropped. All methods are safe on a
// nil receiver (no-ops), so tracing costs one nil check when disabled.
type Tracer struct {
	start time.Time
	pid   int

	mu      sync.Mutex
	buf     []Span
	next    uint64 // total spans ever recorded
	dropped *Counter
}

// DefaultTraceCapacity bounds the ring when NewTracer is given no capacity.
const DefaultTraceCapacity = 1 << 16

// NewTracer creates a tracer whose ring holds capacity spans (<=0 selects
// DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{start: time.Now(), pid: 1, buf: make([]Span, 0, capacity)}
}

// SetPID sets the Chrome-trace process id emitted for this tracer's spans
// (distributed deployments give each node its own pid lane).
func (t *Tracer) SetPID(pid int) {
	if t != nil {
		t.pid = pid
	}
}

// CountDropped reports ring evictions on the given counter.
func (t *Tracer) CountDropped(c *Counter) {
	if t != nil {
		t.dropped = c
	}
}

// Now returns nanoseconds since the tracer started; zero on a nil receiver.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return time.Since(t.start).Nanoseconds()
}

// Since converts a wall-clock instant into tracer-relative nanoseconds.
func (t *Tracer) Since(at time.Time) int64 {
	if t == nil {
		return 0
	}
	return at.Sub(t.start).Nanoseconds()
}

// Record appends one span, evicting the oldest when the ring is full.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, s)
	} else {
		t.buf[t.next%uint64(cap(t.buf))] = s
		t.dropped.Add(1)
	}
	t.next++
	t.mu.Unlock()
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.buf))
	if len(t.buf) < cap(t.buf) {
		copy(out, t.buf)
		return out
	}
	head := int(t.next % uint64(cap(t.buf))) // oldest retained span
	n := copy(out, t.buf[head:])
	copy(out[n:], t.buf[:head])
	return out
}

// Dropped returns how many spans were evicted from the ring.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.buf) < cap(t.buf) {
		return 0
	}
	return int64(t.next) - int64(cap(t.buf))
}

// chromeEvent is the trace_event JSON wire form
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

// chromeTraceFile is the top-level trace_event JSON object.
type chromeTraceFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace serializes the retained spans as Chrome trace_event JSON,
// loadable in chrome://tracing and Perfetto. Each complete span becomes one
// slice named after its kernel, carrying age, index and the dispatch phase
// breakdown as args.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(t.chromeFile()); err != nil {
		return err
	}
	return bw.Flush()
}

func (t *Tracer) chromeFile() chromeTraceFile {
	spans := t.Spans()
	f := chromeTraceFile{TraceEvents: make([]chromeEvent, 0, len(spans)), DisplayTimeUnit: "ms"}
	pid := 1
	if t != nil {
		pid = t.pid
	}
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   string(rune(s.Ph)),
			TS:   float64(s.TS) / 1e3,
			PID:  pid,
			TID:  s.TID,
			Args: map[string]any{"age": s.Age},
		}
		if len(s.Index) > 0 {
			ev.Args["index"] = s.Index
		}
		switch s.Ph {
		case PhaseComplete:
			ev.Dur = float64(s.Dur) / 1e3
			ev.Args["wait_us"] = float64(s.WaitNs) / 1e3
			ev.Args["fetch_us"] = float64(s.FetchNs) / 1e3
			ev.Args["kernel_us"] = float64(s.KernelNs) / 1e3
			ev.Args["store_us"] = float64(s.StoreNs) / 1e3
		case PhaseInstant:
			ev.S = "t" // thread-scoped tick
		}
		f.TraceEvents = append(f.TraceEvents, ev)
	}
	return f
}
