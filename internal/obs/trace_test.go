package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// TestTracerWraparound fills a small ring past capacity and checks that the
// oldest spans are evicted, order is preserved and drops are counted.
func TestTracerWraparound(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 20; i++ {
		tr.Record(Span{Name: fmt.Sprintf("s%d", i), Ph: PhaseComplete, TS: int64(i)})
	}
	spans := tr.Spans()
	if len(spans) != 8 {
		t.Fatalf("retained %d spans, want 8", len(spans))
	}
	for i, s := range spans {
		if want := fmt.Sprintf("s%d", 12+i); s.Name != want {
			t.Errorf("span[%d] = %q, want %q", i, s.Name, want)
		}
	}
	if tr.Dropped() != 12 {
		t.Errorf("dropped = %d, want 12", tr.Dropped())
	}
}

func TestTracerDroppedCounter(t *testing.T) {
	tr := NewTracer(2)
	var c Counter
	tr.CountDropped(&c)
	for i := 0; i < 5; i++ {
		tr.Record(Span{Name: "x"})
	}
	if c.Load() != 3 {
		t.Errorf("dropped counter = %d, want 3", c.Load())
	}
}

func TestTracerConcurrentRecord(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Record(Span{Name: "k", TID: g, TS: tr.Now()})
			}
		}(g)
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 64 {
		t.Errorf("retained %d spans, want 64", got)
	}
	if tr.Dropped() != 8*100-64 {
		t.Errorf("dropped = %d, want %d", tr.Dropped(), 8*100-64)
	}
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	tr.Record(Span{Name: "x"})
	if tr.Now() != 0 || tr.Spans() != nil || tr.Dropped() != 0 {
		t.Error("nil tracer must be inert")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("nil tracer output is not valid JSON: %v", err)
	}
}

// TestChromeTraceRoundTrip checks the exported JSON parses as a trace_event
// file whose slices carry name, phase, timestamps and the age/index args.
func TestChromeTraceRoundTrip(t *testing.T) {
	tr := NewTracer(16)
	tr.SetPID(3)
	tr.Record(Span{
		Name: "yDCT", Cat: "kernel", Ph: PhaseComplete,
		TS: 1500, Dur: 2500, TID: 2, Age: 4, Index: []int{7, 1},
		WaitNs: 100, FetchNs: 400, KernelNs: 2000, StoreNs: 100,
	})
	tr.Record(Span{Name: "yDCT", Cat: "commit", Ph: PhaseInstant, TS: 5000, Age: 4, Index: []int{7, 1}})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(f.TraceEvents))
	}
	x := f.TraceEvents[0]
	if x.Name != "yDCT" || x.Ph != "X" || x.PID != 3 || x.TID != 2 {
		t.Errorf("slice header wrong: %+v", x)
	}
	if x.TS != 1.5 || x.Dur != 2.5 { // ns → µs
		t.Errorf("ts/dur = %v/%v, want 1.5/2.5", x.TS, x.Dur)
	}
	if age, ok := x.Args["age"].(float64); !ok || age != 4 {
		t.Errorf("age arg = %v", x.Args["age"])
	}
	idx, ok := x.Args["index"].([]any)
	if !ok || len(idx) != 2 || idx[0].(float64) != 7 {
		t.Errorf("index arg = %v", x.Args["index"])
	}
	if x.Args["kernel_us"].(float64) != 2 {
		t.Errorf("kernel_us arg = %v", x.Args["kernel_us"])
	}
	i := f.TraceEvents[1]
	if i.Ph != "i" || i.Cat != "commit" {
		t.Errorf("instant event wrong: %+v", i)
	}
}
