package runtime

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// event is the message kernel instances send to the dependency analyzer. The
// paper's prototype is "a push-based system using event subscriptions on
// field operations": store statements emit events, and the analyzer — running
// in its own dedicated goroutine — derives every new valid combination of age
// and index variables that became runnable. Workers buffer events locally and
// flush them in batches (one channel send per batch); see workerState.
type event struct {
	isDone bool

	// store event fields
	fs  *fieldState
	age int
	// Element coordinates are inlined (coordKey already limits coordinates
	// to four 16-bit dimensions) so emitting a store event never allocates;
	// elemBig is the escape hatch for deeper manually-built coordinates.
	elemBuf [4]int32
	elemN   uint8
	elemBig []int
	whole   bool
	grew    bool
	extents []int

	// done event fields
	t       *ageTracker
	inst    *instState
	stores  int
	stopped bool

	// remote-done event: a remote kernel finished the given age.
	remoteDone *kernelState

	// stop ends a NoAutoQuiesce node.
	stop bool
}

// setElem records element coordinates inline when they fit the buffer.
func (ev *event) setElem(idx []int) {
	if len(idx) <= len(ev.elemBuf) {
		fits := true
		for i, c := range idx {
			if c != int(int32(c)) {
				fits = false
				break
			}
			ev.elemBuf[i] = int32(c)
		}
		if fits {
			ev.elemN = uint8(len(idx))
			return
		}
	}
	ev.elemBig = append([]int(nil), idx...)
}

// elem decodes the element coordinates into dst scratch (valid only for
// non-whole store events).
func (ev *event) elem(dst *[4]int) []int {
	if ev.elemBig != nil {
		return ev.elemBig
	}
	for i := 0; i < int(ev.elemN); i++ {
		dst[i] = int(ev.elemBuf[i])
	}
	return dst[:ev.elemN]
}

type actionKind uint8

const (
	actFieldComplete actionKind = iota
	actTrackerComplete
)

type action struct {
	kind actionKind
	fs   *fieldState
	age  int
	t    *ageTracker
}

// analyzer is the dependency analyzer half of the low-level scheduler. It is
// single-threaded by design (the paper's §VIII-B attributes the K-means
// scaling limit to exactly this serial component).
type analyzer struct {
	n             *Node
	actions       []action
	stopRequested bool
	// outstanding counts instances handed to the ready queue whose done
	// event has not yet been processed. Quiescence is outstanding == 0
	// with no pending events or unflushed ready instances.
	outstanding int
	dirty       map[*ageTracker]struct{}

	// High-water marks for the report's queue columns (backlog counts event
	// batches, the channel's unit).
	maxQueue   int
	maxBacklog int

	// Scratch buffers for precompiled index evaluation, so satisfaction
	// checks never allocate coordinate slices.
	idxBuf    []int
	elemBuf   [4]int
	satCoords []int
	satConstr []bool
}

// scratch returns an index-evaluation buffer of length k.
func (an *analyzer) scratch(k int) []int {
	if cap(an.idxBuf) < k {
		an.idxBuf = make([]int, k)
	}
	return an.idxBuf[:k]
}

func newAnalyzer(n *Node) *analyzer {
	return &analyzer{n: n, dirty: make(map[*ageTracker]struct{})}
}

// run is the analyzer main loop. It returns once the node quiesces (no
// runnable or running instances remain) or a kernel failed.
func (an *analyzer) run() {
	an.bootstrap()
	for !an.stopRequested {
		// Drain everything currently available.
		draining := true
		for draining && !an.stopRequested {
			select {
			case evs, ok := <-an.n.events:
				if !ok {
					return
				}
				an.handleBatch(evs)
			default:
				draining = false
			}
		}
		if an.n.failed() || an.stopRequested {
			break
		}
		// Lull: flush partially filled dispatch batches, then check for
		// quiescence. Distributed nodes (NoAutoQuiesce) keep waiting for
		// remote events instead of terminating.
		an.flushDirty()
		if an.outstanding == 0 && !an.n.opts.NoAutoQuiesce {
			break
		}
		evs, ok := <-an.n.events
		if !ok {
			return
		}
		an.handleBatch(evs)
	}
	an.shutdown()
}

// handleBatch processes one flushed batch of events and recycles the slice.
func (an *analyzer) handleBatch(evs []event) {
	if backlog := len(an.n.events); backlog > an.maxBacklog {
		an.maxBacklog = backlog
	}
	for i := range evs {
		if an.stopRequested {
			break
		}
		an.handle(&evs[i])
	}
	putEventBuf(evs)
}

// shutdown closes the ready queue (workers exit once they drain it) and
// consumes remaining events until the node closes the channel after all
// workers have stopped; this prevents workers from blocking on a full event
// channel during teardown.
func (an *analyzer) shutdown() {
	an.n.sched.Close()
	an.n.closeEventsWhenWorkersExit()
	for evs := range an.n.events {
		putEventBuf(evs)
	}
}

// bootstrap creates the trackers that exist before any event: run-once
// kernels and age 0 of source kernels.
func (an *analyzer) bootstrap() {
	for _, ks := range an.n.order {
		if ks.remote {
			continue
		}
		switch {
		case ks.decl.RunOnce():
			an.ensureTracker(ks, 0)
		case ks.decl.Source():
			an.sourceTracker(ks, 0)
		}
	}
	an.drainActions()
	an.flushDirty()
}

func (an *analyzer) handle(ev *event) {
	switch {
	case ev.stop:
		an.stopRequested = true
	case ev.remoteDone != nil:
		an.handleRemoteDone(ev.remoteDone, ev.age)
	case ev.isDone:
		an.handleDone(ev)
	default:
		an.handleStore(ev)
	}
	an.drainActions()
}

// handleRemoteDone propagates a remote kernel-age completion: every field
// generation it stores to counts the producer as done (the producer half of
// onTrackerComplete; consumer/GC accounting is meaningless for remote
// kernels).
func (an *analyzer) handleRemoteDone(ks *kernelState, age int) {
	for i := range ks.decl.Stores {
		ss := &ks.decl.Stores[i]
		g := ss.Age.Eval(age)
		fs := an.n.fields[ss.Field]
		fa := an.fieldAge(fs, g)
		fa.producersDone++
		if fa.producersDone == fa.expected && !fa.complete {
			fa.complete = true
			fs.f.MarkComplete(g)
			an.push(action{kind: actFieldComplete, fs: fs, age: g})
		}
	}
}

func (an *analyzer) drainActions() {
	for len(an.actions) > 0 {
		a := an.actions[0]
		an.actions = an.actions[1:]
		switch a.kind {
		case actFieldComplete:
			an.onFieldComplete(a.fs, a.age)
		case actTrackerComplete:
			an.onTrackerComplete(a.t)
		}
	}
}

func (an *analyzer) push(a action) { an.actions = append(an.actions, a) }

// fieldAge returns (creating on demand) the completeness state of one field
// generation. A generation with no relevant producers completes immediately:
// no store can ever reach it, so consumers see an empty, final extent.
func (an *analyzer) fieldAge(fs *fieldState, g int) *fieldAgeState {
	if fa := fs.ages[g]; fa != nil {
		return fa
	}
	expected := 0
	for _, pe := range fs.producers {
		ae := pe.store.Age
		if ae.HasVar {
			if g-ae.Offset >= 0 {
				expected++
			}
		} else if ae.Offset == g {
			expected++
		}
	}
	fa := &fieldAgeState{expected: expected}
	fs.ages[g] = fa
	if expected == 0 {
		fa.complete = true
		fs.f.MarkComplete(g)
		an.push(action{kind: actFieldComplete, fs: fs, age: g})
	}
	return fa
}

// ensureTracker returns the tracker for (kernel, age), creating it — with a
// full satisfaction scan over current field state — when it does not exist.
// Source kernels are excluded (their trackers are created sequentially by the
// continuation rule) as are ages outside [0, MaxAge].
func (an *analyzer) ensureTracker(ks *kernelState, age int) (*ageTracker, bool) {
	if age < 0 || age > an.n.opts.MaxAge || age > an.n.kernelMaxAge(ks) {
		return nil, false
	}
	if t := ks.ages[age]; t != nil {
		return t, false
	}
	if ks.remote || ks.decl.Source() || (ks.decl.RunOnce() && age != 0) {
		return nil, false
	}
	t := &ageTracker{
		ks:      ks,
		age:     age,
		extents: make([]int, len(ks.binds)),
		inst:    make(map[int64]*instState),
	}
	ks.ages[age] = t
	bindDone := 0
	for i, b := range ks.binds {
		ga := b.age.Eval(age)
		t.extents[i] = b.fs.f.Extent(ga, b.dim)
		if an.fieldAge(b.fs, ga).complete {
			bindDone++
		}
	}
	t.bindsDone = bindDone
	t.domainFinal = bindDone == len(ks.binds)
	if len(ks.binds) == 0 {
		an.createInstance(t, nil)
	} else {
		from := make([]int, len(ks.binds))
		newCells(from, t.extents, func(c []int) { an.createInstance(t, c) })
	}
	an.maybeTrackerDone(t)
	return t, true
}

// sourceTracker creates the single-instance tracker for a source kernel at
// the given age; the instance is immediately runnable.
func (an *analyzer) sourceTracker(ks *kernelState, age int) {
	if age > an.n.opts.MaxAge || age > an.n.kernelMaxAge(ks) || ks.ages[age] != nil {
		return
	}
	t := &ageTracker{ks: ks, age: age, inst: make(map[int64]*instState), domainFinal: true}
	ks.ages[age] = t
	an.createInstance(t, nil)
}

// createInstance registers one instance and computes its initial fetch
// satisfaction from current field state. Instance structs are recycled
// through instPool when tracing is off (the tracer retains coords).
func (an *analyzer) createInstance(t *ageTracker, coords []int) {
	var is *instState
	if an.n.tracer == nil {
		is = instPool.Get().(*instState)
		is.coords = append(is.coords[:0], coords...)
		is.mask, is.st, is.readyNs, is.createdNs = 0, instWaiting, 0, 0
	} else {
		is = &instState{coords: append([]int(nil), coords...)}
	}
	if an.n.stamp {
		is.createdNs = an.n.nowNs()
	}
	t.inst[coordKey(coords)] = is
	t.total++
	ks := t.ks
	for i := range ks.fetchPlans {
		fp := &ks.fetchPlans[i]
		g := fp.fe.Age.Eval(t.age)
		bit := uint32(1) << uint(i)
		if fp.whole || fp.slab != nil {
			if an.fieldAge(fp.fs, g).complete {
				an.setBit(t, is, bit)
			}
		} else {
			idx := evalTerms(an.scratch(len(fp.terms)), fp.terms, is.coords)
			if _, ok := fp.fs.f.At(g, idx...); ok {
				an.setBit(t, is, bit)
			}
		}
	}
	if ks.fullMask == 0 {
		an.setBit(t, is, 0) // no fetches: immediately runnable
	}
}

// setBit records that one fetch of one instance is satisfied; when all
// fetches are satisfied the instance joins the tracker's pending batch.
func (an *analyzer) setBit(t *ageTracker, is *instState, bit uint32) {
	if is.st != instWaiting {
		return
	}
	if bit != 0 {
		if is.mask&bit != 0 {
			return
		}
		is.mask |= bit
	}
	if is.mask == t.ks.fullMask {
		is.st = instQueued
		if an.n.stamp {
			is.readyNs = an.n.nowNs()
			t.ks.stageReady.Observe(time.Duration(is.readyNs - is.createdNs))
		}
		t.pending = append(t.pending, is)
		an.dirty[t] = struct{}{}
		if len(t.pending) >= int(t.ks.gran.Load()) {
			an.flushPending(t, false)
		}
	}
}

// flushPending moves ready instances into dispatch batches of the kernel's
// granularity; partial batches are flushed only when partial is true (at
// analyzer lulls, so stragglers are never stranded). Batches come from
// batchPool, and the pending slice is compacted in place (copy-down with the
// tail nilled) so neither consumed entries nor their backing array leak.
func (an *analyzer) flushPending(t *ageTracker, partial bool) {
	g := int(t.ks.gran.Load())
	for len(t.pending) >= g || (partial && len(t.pending) > 0) {
		n := g
		if n > len(t.pending) {
			n = len(t.pending)
		}
		b := getBatch()
		b.tracker = t
		b.insts = append(b.insts[:0], t.pending[:n]...)
		rem := copy(t.pending, t.pending[n:])
		for i := rem; i < len(t.pending); i++ {
			t.pending[i] = nil
		}
		t.pending = t.pending[:rem]
		an.outstanding += n
		an.n.outstandingMirror.Add(int64(n))
		an.n.sched.Push(b)
	}
	if len(t.pending) == 0 {
		delete(an.dirty, t)
	}
	if depth := an.n.sched.Len(); depth > an.maxQueue {
		an.maxQueue = depth
	}
	an.updateGauges()
}

// updateGauges refreshes the node's scheduler gauges; all handles are nil
// (no-ops) unless detailed metrics are enabled.
func (an *analyzer) updateGauges() {
	n := an.n
	if n.gQueue == nil {
		return
	}
	n.gQueue.Set(int64(n.sched.Len()))
	n.gBacklog.Set(int64(len(n.events)))
	n.gOutstand.Set(int64(an.outstanding))
}

func (an *analyzer) flushDirty() {
	for t := range an.dirty {
		an.flushPending(t, true)
	}
}

func (an *analyzer) maybeTrackerDone(t *ageTracker) {
	if t.completed || !t.domainFinal || t.done != t.total || len(t.pending) != 0 {
		return
	}
	t.completed = true
	an.push(action{kind: actTrackerComplete, t: t})
}

// handleDone processes a finished instance: continuation for source kernels,
// adaptive granularity, and kernel-age completion.
func (an *analyzer) handleDone(ev *event) {
	an.outstanding--
	an.n.outstandingMirror.Add(-1)
	ev.inst.st = instDone
	t := ev.t
	t.done++
	ks := t.ks
	if tr := an.n.tracer; tr != nil {
		tr.Record(obs.Span{
			Name: ks.decl.Name, Cat: "commit", Ph: obs.PhaseInstant,
			TS: tr.Now(), Age: t.age, Index: ev.inst.coords,
		})
	}
	an.updateGauges()
	if ks.decl.Source() {
		if ev.stopped || ev.stores == 0 {
			ks.sourceStopped = true
		} else {
			an.sourceTracker(ks, t.age+1)
		}
	}
	if an.n.opts.Adaptive {
		an.adapt(ks)
	}
	an.maybeTrackerDone(t)
	an.drainActions()
}

// adapt implements the low-level scheduler's dynamic data-granularity
// decision (§V-A): when dispatch overhead is not clearly dominated by kernel
// time, instances are combined into larger slices.
func (an *analyzer) adapt(ks *kernelState) {
	n := ks.ownInstances()
	g := ks.gran.Load()
	if n == 0 || n%128 != 0 || g >= 256 {
		return
	}
	// Means come from the timed instances only (timing is sampled when the
	// node runs without a tracer or registry).
	timed := ks.timedInsts.Load()
	if timed == 0 {
		return
	}
	disp := ks.ownDispatchNs() / timed
	kern := ks.ownKernelNs() / timed
	if kern < 2*disp {
		g *= 2
		if g > 256 {
			g = 256
		}
		ks.gran.Store(g)
	}
}

// handleStore processes a store event: domain growth for kernels whose index
// range the field defines, then fetch satisfaction for consumers.
func (an *analyzer) handleStore(ev *event) {
	an.fieldAge(ev.fs, ev.age)
	if ev.grew {
		for _, re := range ev.fs.rangeOf {
			an.forTrackers(re.ks, re.age, ev.age, true, func(t *ageTracker) {
				an.growTracker(t, re.varIdx, ev.extents[re.dim])
			})
		}
	}
	var elem []int
	if !ev.whole {
		elem = ev.elem(&an.elemBuf)
	}
	for _, ce := range ev.fs.consumers {
		if ce.fetch.Whole() || ce.fetch.Slab() {
			continue // whole/slab fetches are satisfied by completeness, not stores
		}
		an.forTrackers(ce.ks, ce.fetch.Age, ev.age, true, func(t *ageTracker) {
			if ev.whole {
				an.scanSatisfy(t, ce)
			} else {
				an.satisfyElem(t, ce, elem)
			}
		})
	}
}

// forTrackers visits the trackers of ks whose fetch/store age expression ae
// maps to field generation g. For age-variable expressions that is a single
// tracker (created on demand when ensure is true); for absolute expressions
// it is every existing tracker. Freshly created trackers are not visited —
// their creation scan already covers current field state.
func (an *analyzer) forTrackers(ks *kernelState, ae core.AgeExpr, g int, ensure bool, visit func(*ageTracker)) {
	if ae.HasVar {
		a := g - ae.Offset
		var t *ageTracker
		var created bool
		if ensure {
			t, created = an.ensureTracker(ks, a)
		} else {
			t = ks.ages[a]
		}
		if t != nil && !created {
			visit(t)
		}
		return
	}
	if ae.Offset != g {
		return
	}
	for _, t := range ks.ages {
		visit(t)
	}
}

// growTracker extends the domain of one index variable and creates the new
// instances (the paper's "implicit resize can lead to additional kernel
// instances being dispatched").
func (an *analyzer) growTracker(t *ageTracker, varIdx, newExt int) {
	if t.completed || newExt <= t.extents[varIdx] {
		return
	}
	from := append([]int(nil), t.extents...)
	t.extents[varIdx] = newExt
	newCells(from, t.extents, func(c []int) { an.createInstance(t, c) })
}

// satisfyElem marks the fetch bit of every instance whose fetch coordinates
// match a stored element. Index variables not mentioned in the fetch are
// unconstrained and enumerated over the current domain.
func (an *analyzer) satisfyElem(t *ageTracker, ce consEdge, elem []int) {
	if t.completed {
		return
	}
	nv := len(t.ks.decl.IndexVars)
	if cap(an.satCoords) < nv {
		an.satCoords = make([]int, nv)
		an.satConstr = make([]bool, nv)
	}
	coords, constrained := an.satCoords[:nv], an.satConstr[:nv]
	for i := 0; i < nv; i++ {
		coords[i], constrained[i] = 0, false
	}
	for d, term := range ce.terms {
		if term.v >= 0 {
			vi := term.v
			c := elem[d] - term.off
			if c < 0 || c >= t.extents[vi] {
				return // instance does not exist (yet); creation scans cover it
			}
			if constrained[vi] && coords[vi] != c {
				return // e.g. fetch f(a)[x][x] with mismatched coordinates
			}
			coords[vi] = c
			constrained[vi] = true
		} else if term.off != elem[d] {
			return
		}
	}
	an.enumerate(t, coords, constrained, 0, ce.fetchBit)
}

func (an *analyzer) enumerate(t *ageTracker, coords []int, constrained []bool, d int, bit uint32) {
	if d == len(coords) {
		if is := t.inst[coordKey(coords)]; is != nil {
			an.setBit(t, is, bit)
		}
		return
	}
	if constrained[d] {
		an.enumerate(t, coords, constrained, d+1, bit)
		return
	}
	for c := 0; c < t.extents[d]; c++ {
		coords[d] = c
		an.enumerate(t, coords, constrained, d+1, bit)
	}
	coords[d] = 0
}

// scanSatisfy re-checks one element fetch against current field contents for
// every instance that still misses it (used after whole-field stores, which
// cover many elements with one event).
func (an *analyzer) scanSatisfy(t *ageTracker, ce consEdge) {
	if t.completed {
		return
	}
	g := ce.fetch.Age.Eval(t.age)
	fs := an.n.fields[ce.fetch.Field]
	for _, is := range t.inst {
		if is.st != instWaiting || is.mask&ce.fetchBit != 0 {
			continue
		}
		idx := evalTerms(an.scratch(len(ce.terms)), ce.terms, is.coords)
		if _, ok := fs.f.At(g, idx...); ok {
			an.setBit(t, is, ce.fetchBit)
		}
	}
}

// onTrackerComplete propagates a finished kernel-age: producer accounting on
// stored fields, consumer accounting (garbage collection) on fetched fields.
func (an *analyzer) onTrackerComplete(t *ageTracker) {
	ks := t.ks
	if cb := an.n.opts.OnKernelDone; cb != nil {
		cb(ks.decl.Name, t.age)
	}
	if tr := an.n.tracer; tr != nil {
		tr.Record(obs.Span{
			Name: ks.decl.Name + " done", Cat: "lifecycle", Ph: obs.PhaseInstant,
			TS: tr.Now(), Age: t.age,
		})
	}
	if an.n.gFieldMem != nil {
		an.n.gFieldMem.Set(int64(an.n.FieldMemoryElems()))
	}
	for i := range ks.decl.Stores {
		ss := &ks.decl.Stores[i]
		g := ss.Age.Eval(t.age)
		fs := an.n.fields[ss.Field]
		fa := an.fieldAge(fs, g)
		fa.producersDone++
		if fa.producersDone == fa.expected && !fa.complete {
			fa.complete = true
			fs.f.MarkComplete(g)
			an.push(action{kind: actFieldComplete, fs: fs, age: g})
		}
	}
	for i := range ks.decl.Fetches {
		fe := &ks.decl.Fetches[i]
		if !fe.Age.HasVar {
			continue // absolute-age fetches pin the generation forever
		}
		g := fe.Age.Eval(t.age)
		fs := an.n.fields[fe.Field]
		fa := an.fieldAge(fs, g)
		fa.consumersDone++
		an.gcCheck(fs, g, fa)
	}
	if an.n.tracer == nil {
		// Recycle the instance structs (safe: every instance is done, so no
		// worker or batch will read them again). With tracing on they must
		// survive — recorded spans alias their coords.
		for _, is := range t.inst {
			instPool.Put(is)
		}
	}
	t.inst = nil // instances are no longer needed; free the memory
}

// onFieldComplete propagates a complete field generation: whole-field fetches
// become satisfiable, and index domains bound to the field become final.
func (an *analyzer) onFieldComplete(fs *fieldState, g int) {
	for _, ce := range fs.consumers {
		if !ce.fetch.Whole() && !ce.fetch.Slab() {
			continue
		}
		an.forTrackers(ce.ks, ce.fetch.Age, g, true, func(t *ageTracker) {
			if t.completed {
				return
			}
			for _, is := range t.inst {
				an.setBit(t, is, ce.fetchBit)
			}
		})
	}
	for _, re := range fs.rangeOf {
		reVar := re.varIdx
		an.forTrackers(re.ks, re.age, g, true, func(t *ageTracker) {
			if t.completed {
				return
			}
			// Sync the final extent (stores processed earlier already
			// grew the domain; this is a no-op safeguard).
			an.growTracker(t, reVar, fs.f.Extent(g, re.dim))
			t.bindsDone++
			if t.bindsDone == len(t.ks.binds) {
				t.domainFinal = true
				an.maybeTrackerDone(t)
			}
		})
	}
	fa := fs.ages[g]
	an.gcCheck(fs, g, fa)
}

// gcCheck garbage collects a field generation once it is complete and every
// age-variable consumer kernel-age has finished with it (§IX: "garbage
// collecting old ages"). Generations read through absolute-age fetches are
// pinned forever.
func (an *analyzer) gcCheck(fs *fieldState, g int, fa *fieldAgeState) {
	if !an.n.opts.GC || fa == nil || fa.collected {
		return
	}
	if !fa.complete || fs.absConsumers > 0 || fs.agedConsumers == 0 {
		return
	}
	if fa.consumersDone >= fs.agedConsumers {
		fa.collected = true
		fs.f.DropAge(g)
	}
}

// stalled describes every kernel-age that never completed — the node
// quiesced with unsatisfied dependencies (a programming error such as
// fetching an element nobody stores).
func (an *analyzer) stalled() []string {
	var out []string
	for _, ks := range an.n.order {
		for age, t := range ks.ages {
			if !t.completed {
				out = append(out, fmt.Sprintf("%s(age=%d): %d/%d instances done, domainFinal=%v",
					ks.decl.Name, age, t.done, t.total, t.domainFinal))
			}
		}
	}
	sort.Strings(out)
	return out
}

func varIndex(vars []string, name string) int {
	for i, v := range vars {
		if v == name {
			return i
		}
	}
	panic(fmt.Sprintf("p2g: unknown index variable %q", name))
}
