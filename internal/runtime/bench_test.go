package runtime

import (
	"testing"

	"repro/internal/core"
	"repro/internal/field"
)

// benchNode builds a one-kernel node whose input element is pre-stored, so
// exec can be driven directly: this isolates the dispatch fast path (frame
// checkout, plan-driven fetch, body, event emission) from the analyzer.
func benchNode(b testing.TB, indexed bool) (*Node, *ageTracker, *instState) {
	b.Helper()
	pb := core.NewBuilder("bench")
	pb.Field("in", field.Int32, 1, true)
	k := pb.Kernel("consume").Local("v", field.Int32, 0)
	if indexed {
		k.Age("a").Index("x").Fetch("v", "in", core.AgeVar(0), core.Idx("x"))
	} else {
		k.Fetch("v", "in", core.AgeAt(0), core.Lit(0))
	}
	k.Body(func(c *core.Ctx) error {
		_ = c.Int32("v")
		return nil
	})
	prog, err := pb.Build()
	if err != nil {
		b.Fatal(err)
	}
	n, err := NewNode(prog, Options{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := n.fields["in"].f.Store(0, field.Int32Val(3), 0); err != nil {
		b.Fatal(err)
	}
	ks := n.kernels["consume"]
	t := &ageTracker{ks: ks, age: 0}
	is := &instState{}
	if indexed {
		is.coords = []int{0}
	}
	return n, t, is
}

// BenchmarkDispatchInstance measures one dispatch through the precompiled
// plan with no index variables; the acceptance target is 0 allocs/op.
func BenchmarkDispatchInstance(b *testing.B) {
	n, t, is := benchNode(b, false)
	w := newWorkerState(n, 0)
	n.exec(t, is, w) // warm the frame pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range w.bufs {
			w.bufs[j] = w.bufs[j][:0]
		}
		n.exec(t, is, w)
	}
}

// BenchmarkDispatchInstanceIndexed is the same measurement through an
// age-variable, index-variable element fetch (coordinates evaluate into the
// frame's scratch).
func BenchmarkDispatchInstanceIndexed(b *testing.B) {
	n, t, is := benchNode(b, true)
	w := newWorkerState(n, 0)
	n.exec(t, is, w)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range w.bufs {
			w.bufs[j] = w.bufs[j][:0]
		}
		n.exec(t, is, w)
	}
}
