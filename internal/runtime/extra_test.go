package runtime

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/deadline"
	"repro/internal/field"
)

// TestOuterProductDomain exercises instances whose index variables are bound
// by *different* fields: one store event satisfies a whole stripe of
// instances (the analyzer's unconstrained-variable enumeration).
func TestOuterProductDomain(t *testing.T) {
	b := core.NewBuilder("outer")
	b.Field("rows", field.Int32, 1, true)
	b.Field("cols", field.Int32, 1, true)
	b.Field("prod", field.Int32, 2, true)

	b.Kernel("mkrows").
		Local("r", field.Int32, 1).
		StoreAll("rows", core.AgeAt(0), "r").
		Body(func(c *core.Ctx) error {
			for i := 0; i < 3; i++ {
				c.Array("r").Put(field.Int32Val(int32(i+1)), i)
			}
			return nil
		})
	b.Kernel("mkcols").
		Local("r", field.Int32, 1).
		StoreAll("cols", core.AgeAt(0), "r").
		Body(func(c *core.Ctx) error {
			for i := 0; i < 4; i++ {
				c.Array("r").Put(field.Int32Val(int32(10*(i+1))), i)
			}
			return nil
		})
	b.Kernel("mul").Index("x", "y").
		Local("a", field.Int32, 0).
		Local("b", field.Int32, 0).
		Local("p", field.Int32, 0).
		Fetch("a", "rows", core.AgeAt(0), core.Idx("x")).
		Fetch("b", "cols", core.AgeAt(0), core.Idx("y")).
		Store("prod", core.AgeAt(0), []core.IndexSpec{core.Idx("x"), core.Idx("y")}, "p").
		Body(func(c *core.Ctx) error {
			c.SetInt32("p", c.Int32("a")*c.Int32("b"))
			return nil
		})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(p, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Kernel("mul").Instances; got != 12 {
		t.Fatalf("mul instances = %d, want 12 (3x4 outer product)", got)
	}
	s, _ := n.Snapshot("prod", 0)
	for x := 0; x < 3; x++ {
		for y := 0; y < 4; y++ {
			want := int32((x + 1) * 10 * (y + 1))
			if got := s.At(x, y).Int32(); got != want {
				t.Errorf("prod[%d][%d] = %d, want %d", x, y, got, want)
			}
		}
	}
	if len(rep.Stalled) != 0 {
		t.Errorf("stalled: %v", rep.Stalled)
	}
}

// TestDeadlineAlternatePathDeterministic drives the §V-B mechanism with a
// fake clock: the first ages take the primary path, later ages (after the
// clock advances past the budget) take the alternate path.
func TestDeadlineAlternatePathDeterministic(t *testing.T) {
	clk := deadline.NewFakeClock()
	b := core.NewBuilder("dl")
	b.Timer("t1")
	b.Field("in", field.Int32, 1, true)
	b.Field("fast", field.Int32, 1, true)
	b.Field("slow", field.Int32, 1, true)

	b.Kernel("src").Age("a").
		Local("v", field.Int32, 1).
		StoreAll("in", core.AgeVar(0), "v").
		Body(func(c *core.Ctx) error {
			if c.Age() >= 6 {
				return nil
			}
			c.Array("v").Put(field.Int32Val(int32(c.Age())), 0)
			// Advance the fake clock one "frame time" per age; the
			// source is sequential so this is deterministic.
			clk.Advance(10 * time.Millisecond)
			return nil
		})
	b.Kernel("enc").Age("a").Index("x").
		Local("v", field.Int32, 0).
		Local("hi", field.Int32, 0).
		Local("lo", field.Int32, 0).
		Fetch("v", "in", core.AgeVar(0), core.Idx("x")).
		Store("fast", core.AgeVar(0), []core.IndexSpec{core.Idx("x")}, "lo").
		Store("slow", core.AgeVar(0), []core.IndexSpec{core.Idx("x")}, "hi").
		Body(func(c *core.Ctx) error {
			late, err := c.Expired("t1", 35*time.Millisecond)
			if err != nil {
				return err
			}
			if late {
				c.SetInt32("lo", c.Int32("v"))
			} else {
				c.SetInt32("hi", c.Int32("v"))
			}
			return nil
		})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(p, Options{Workers: 1, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	// Ages 0..2 ran with elapsed <= 30ms (primary path); from age 3 the
	// budget is blown (elapsed 40ms+) and the alternate path fires.
	for a := 0; a < 6; a++ {
		hi, _ := n.Snapshot("slow", a)
		lo, _ := n.Snapshot("fast", a)
		_, hiWritten := hiAt(hi)
		_, loWritten := hiAt(lo)
		wantPrimary := a < 3
		if wantPrimary && (!hiWritten || loWritten) {
			t.Errorf("age %d should take the primary path (hi=%v lo=%v)", a, hiWritten, loWritten)
		}
		if !wantPrimary && (hiWritten || !loWritten) {
			t.Errorf("age %d should take the alternate path (hi=%v lo=%v)", a, hiWritten, loWritten)
		}
	}
}

func hiAt(a *field.Array) (int32, bool) {
	if a.Len() == 0 {
		return 0, false
	}
	v := a.AtFlat(0)
	return v.Int32(), !v.IsZero()
}

// TestGCWithAdaptive combines garbage collection with adaptive granularity
// over a long pipeline; results must stay correct and memory bounded.
func TestGCWithAdaptive(t *testing.T) {
	n, err := NewNode(mulSum(t), Options{Workers: 2, MaxAge: 200, GC: true, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stalled) != 0 {
		t.Fatalf("stalled: %v", rep.Stalled)
	}
	if got := rep.Kernel("mul2").Instances; got != 5*201 {
		t.Errorf("mul2 instances = %d", got)
	}
	// Old generations were collected: live memory is far below the
	// 2 fields x 201 ages x 5 elements an uncollected run retains.
	if rep.FieldMemElems > 200 {
		t.Errorf("GC left %d elements live", rep.FieldMemElems)
	}
	// The generation beyond the age bound survives: its consumers
	// (mul2/print at age 201) never ran, so GC must keep it.
	m, _ := expectedMulSum(201)
	last, _ := n.Snapshot("m_data", 201)
	if !last.Equal(field.ArrayFromInt32(m[201])) {
		t.Errorf("m_data(201) = %v, want %v", last, m[201])
	}
}

// TestMergeReports verifies the aggregation used by distributed
// repartitioning.
func TestMergeReports(t *testing.T) {
	a := &Report{Wall: time.Second, Kernels: []KernelStats{
		{Name: "k", Instances: 5, KernelTotal: time.Millisecond, StoreOps: 5},
	}}
	b := &Report{Wall: 2 * time.Second, Stalled: []string{"x"}, Kernels: []KernelStats{
		{Name: "k", Instances: 7, KernelTotal: 3 * time.Millisecond, StoreOps: 7},
		{Name: "j", Instances: 1},
	}}
	m := MergeReports(a, nil, b)
	if m.Wall != 2*time.Second {
		t.Errorf("wall %v", m.Wall)
	}
	if k := m.Kernel("k"); k.Instances != 12 || k.KernelTotal != 4*time.Millisecond || k.StoreOps != 12 {
		t.Errorf("merged k = %+v", k)
	}
	if m.Kernel("j").Instances != 1 || len(m.Stalled) != 1 {
		t.Error("merge shape")
	}
}

// TestStatementStringsWithSlab covers the All coordinate rendering.
func TestStatementStringsWithSlab(t *testing.T) {
	f := core.FetchStmt{Local: "blk", Field: "frames", Age: core.AgeVar(0),
		Index: []core.IndexSpec{core.Idx("b"), core.All()}}
	if got := f.String(); got != "fetch blk = frames(a)[b][];" {
		t.Errorf("slab fetch string %q", got)
	}
	if !f.Slab() || f.SlabRank() != 1 || f.Whole() {
		t.Error("slab classification")
	}
	if !strings.Contains(f.String(), "[]") {
		t.Error("slab rendering")
	}
}
