package runtime

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"

	"repro/internal/field"
)

// Store frames: the batched wire form of store notices. A frame carries every
// store of one field generation that a node produced since the last flush,
// encoded back-to-back in the typed wire format v1 (internal/field/wire.go),
// so a generation crosses the dist transport as one typed block instead of a
// gob-encoded boxed Value per store. The header names the field and age once;
// each entry then holds only its addressing mode (element coordinates, whole,
// or slab selector) and the raw typed payload.
//
// Layout:
//
//	frame := version(1B) | len(field) uvarint | field bytes | age varint | entry*
//	entry := mode(1B) | mode header | wire value (self-delimiting)
//	  mode 0 (element): rank uvarint, rank coordinates (varint each)
//	  mode 1 (whole):   no header
//	  mode 2 (slab):    rank uvarint, per dim: fixed(1B), index varint if fixed
//
// Entries run to the end of the buffer; wire values are self-delimiting so no
// per-entry length prefix is needed. Decode is overflow-guarded: ranks are
// bounded and every count is checked against the remaining bytes before
// allocation.

// storeFrameVersion is the frame header version byte. The value format inside
// entries is versioned separately (wire format v1). Version 2 inserts a
// causal trace id (uvarint) after the age, threading the cluster-wide trace
// through the frame itself so every hop of a generation's journey can tag
// its spans; version-1 frames remain decodable.
const (
	storeFrameVersion       = 1
	storeFrameVersionTraced = 2
)

// Entry addressing modes.
const (
	frameModeElem byte = iota
	frameModeWhole
	frameModeSlab
)

// frameMaxRank bounds coordinate and selector ranks during decode, mirroring
// the wire format's array-rank guard.
const frameMaxRank = 64

// StoreFrame accumulates store notices for one field generation into a single
// wire frame. The zero value is unusable; call Reset first. A StoreFrame is
// not safe for concurrent use (the dist batcher serializes access).
//
// Large typed-slab payloads are recorded scatter-gather style: instead of
// copying the slab bytes into buf, Add appends only the wire header and keeps
// a segment referencing the slab directly. Segments() exposes the frame as a
// net.Buffers vector so a transport can writev it straight to the socket;
// AppendTo flattens it when a contiguous copy is needed. Either way the bytes
// are identical to the all-copying encoder.
type StoreFrame struct {
	buf      []byte
	entries  int
	segs     []frameSeg
	segBytes int
}

// frameSeg is one zero-copy payload segment: data (aliasing a field slab, not
// owned by the frame) belongs between buf[:bufOff] and buf[bufOff:]. Offsets
// are recorded instead of sub-slices of buf because buf may grow (and move)
// as later entries append.
type frameSeg struct {
	bufOff int
	data   []byte
}

// frameSegMin is the minimum payload size Add records as a segment; smaller
// payloads copy inline, where the two extra vector entries would cost more
// than the copy.
const frameSegMin = 64

// Reset re-targets the frame at one field generation, dropping any previous
// contents but keeping the buffer capacity.
func (f *StoreFrame) Reset(fieldName string, age int) {
	f.buf = append(f.buf[:0], storeFrameVersion)
	f.buf = binary.AppendUvarint(f.buf, uint64(len(fieldName)))
	f.buf = append(f.buf, fieldName...)
	f.buf = binary.AppendVarint(f.buf, int64(age))
	f.entries = 0
	f.clearSegs()
}

func (f *StoreFrame) clearSegs() {
	for i := range f.segs {
		f.segs[i].data = nil // drop the slab references
	}
	f.segs = f.segs[:0]
	f.segBytes = 0
}

// ResetTraced is Reset with a causal trace id embedded in the header
// (version-2 frame). A zero trace falls back to the version-1 layout, so
// untraced deployments emit bytes identical to before.
func (f *StoreFrame) ResetTraced(fieldName string, age int, trace uint64) {
	if trace == 0 {
		f.Reset(fieldName, age)
		return
	}
	f.buf = append(f.buf[:0], storeFrameVersionTraced)
	f.buf = binary.AppendUvarint(f.buf, uint64(len(fieldName)))
	f.buf = append(f.buf, fieldName...)
	f.buf = binary.AppendVarint(f.buf, int64(age))
	f.buf = binary.AppendUvarint(f.buf, trace)
	f.entries = 0
	f.clearSegs()
}

// StoreFrameTrace parses only the frame header and returns its causal trace
// id (0 for version-1 frames, malformed input, or an untraced frame).
func StoreFrameTrace(frame []byte) uint64 {
	c := &frameCursor{buf: frame}
	ver, err := c.byte()
	if err != nil || ver != storeFrameVersionTraced {
		return 0
	}
	nameLen, err := c.uvarint()
	if err != nil || nameLen > uint64(len(frame)-c.off) {
		return 0
	}
	c.off += int(nameLen)
	if _, err := c.varint(); err != nil {
		return 0
	}
	trace, err := c.uvarint()
	if err != nil {
		return 0
	}
	return trace
}

// Add appends one store notice. The notice must target the generation the
// frame was Reset to; mixing generations corrupts nothing but delivers the
// stores to the wrong age, so callers key frames by (field, age).
func (f *StoreFrame) Add(sn StoreNotice) error {
	switch {
	case sn.Whole:
		f.buf = append(f.buf, frameModeWhole)
	case sn.Sel != nil:
		f.buf = append(f.buf, frameModeSlab)
		f.buf = binary.AppendUvarint(f.buf, uint64(len(sn.Sel)))
		for _, sd := range sn.Sel {
			if sd.Fixed {
				f.buf = append(f.buf, 1)
				f.buf = binary.AppendVarint(f.buf, int64(sd.Index))
			} else {
				f.buf = append(f.buf, 0)
			}
		}
	default:
		f.buf = append(f.buf, frameModeElem)
		f.buf = binary.AppendUvarint(f.buf, uint64(len(sn.Elem)))
		for _, i := range sn.Elem {
			f.buf = binary.AppendVarint(f.buf, int64(i))
		}
	}
	// Scatter-gather: large typed-slab payloads keep their bytes in the
	// slab and record a segment instead of copying into buf. The segment
	// aliases sn.Value's backing; the caller must keep the value alive
	// until the frame is flattened or sent (the dist batcher holds the
	// cloned notice value via the segment slice itself).
	if buf, payload, ok := field.SplitWireArray(f.buf, sn.Value); ok && len(payload) >= frameSegMin {
		f.buf = buf
		f.segs = append(f.segs, frameSeg{bufOff: len(f.buf), data: payload})
		f.segBytes += len(payload)
		f.entries++
		return nil
	}
	var err error
	f.buf, err = field.AppendWireValue(f.buf, sn.Value)
	if err != nil {
		return fmt.Errorf("p2g: encoding store frame for %s: %w", sn.Field, err)
	}
	f.entries++
	return nil
}

// Entries returns the number of stores added since the last Reset.
func (f *StoreFrame) Entries() int { return f.entries }

// Len returns the current encoded size in bytes, including segment bytes.
func (f *StoreFrame) Len() int { return len(f.buf) + f.segBytes }

// Bytes returns the encoded frame. With no pending segments the slice
// aliases the frame's buffer and is invalidated by the next Reset or Add;
// with segments it is a freshly flattened copy (transports that can writev
// should use Segments instead).
func (f *StoreFrame) Bytes() []byte {
	if len(f.segs) == 0 {
		return f.buf
	}
	return f.AppendTo(make([]byte, 0, f.Len()))
}

// AppendTo appends the full encoded frame to dst — buffer bytes interleaved
// with the zero-copy segments in offset order — and returns the extended
// slice. The result is bit-identical to an all-copying encode.
func (f *StoreFrame) AppendTo(dst []byte) []byte {
	prev := 0
	for _, s := range f.segs {
		dst = append(dst, f.buf[prev:s.bufOff]...)
		dst = append(dst, s.data...)
		prev = s.bufOff
	}
	return append(dst, f.buf[prev:]...)
}

// Segments returns the frame as an ordered vector of byte slices suitable for
// net.Buffers writev-style transmission. The slices alias the frame buffer
// and the referenced slabs: they are invalidated by the next Reset or Add and
// must be fully written before the frame is recycled.
func (f *StoreFrame) Segments() net.Buffers {
	segs := make(net.Buffers, 0, 2*len(f.segs)+1)
	prev := 0
	for _, s := range f.segs {
		if s.bufOff > prev {
			segs = append(segs, f.buf[prev:s.bufOff])
		}
		segs = append(segs, s.data)
		prev = s.bufOff
	}
	if prev < len(f.buf) {
		segs = append(segs, f.buf[prev:])
	}
	return segs
}

// maxPooledFrameBytes caps the buffer capacity PutStoreFrame keeps: a frame
// whose buffer grew beyond it (one huge generation) is dropped instead of
// pinning that memory in the pool for the rest of the run.
const maxPooledFrameBytes = 256 << 10

var framePool = sync.Pool{New: func() any { return new(StoreFrame) }}

// GetStoreFrame checks a StoreFrame out of the process-wide pool. The frame
// must still be Reset before use.
func GetStoreFrame() *StoreFrame { return framePool.Get().(*StoreFrame) }

// poolable reports whether PutStoreFrame will keep the frame: buffers that
// grew past maxPooledFrameBytes are dropped instead of pinning memory.
func (f *StoreFrame) poolable() bool { return cap(f.buf) <= maxPooledFrameBytes }

// PutStoreFrame returns a frame to the pool, dropping slab references so
// recycled frames never pin field memory, and dropping the frame entirely
// when its buffer has grown past maxPooledFrameBytes.
func PutStoreFrame(f *StoreFrame) {
	f.clearSegs()
	f.entries = 0
	if !f.poolable() {
		return // let the oversized buffer be collected
	}
	f.buf = f.buf[:0]
	framePool.Put(f)
}

// frameCursor is a bounds-checked decode cursor.
type frameCursor struct {
	buf []byte
	off int
}

var errFrameShort = fmt.Errorf("p2g: truncated store frame")

func (c *frameCursor) byte() (byte, error) {
	if c.off >= len(c.buf) {
		return 0, errFrameShort
	}
	b := c.buf[c.off]
	c.off++
	return b, nil
}

func (c *frameCursor) uvarint() (uint64, error) {
	x, n := binary.Uvarint(c.buf[c.off:])
	if n <= 0 {
		return 0, errFrameShort
	}
	c.off += n
	return x, nil
}

func (c *frameCursor) varint() (int64, error) {
	x, n := binary.Varint(c.buf[c.off:])
	if n <= 0 {
		return 0, errFrameShort
	}
	c.off += n
	return x, nil
}

// DecodeStoreFrame decodes a frame produced by StoreFrame, invoking apply for
// each store notice in encoding order. Decode stops at the first apply error.
// The notices passed to apply reference memory decoded from the frame, not
// the frame buffer itself, so apply may retain them.
func DecodeStoreFrame(frame []byte, apply func(StoreNotice) error) error {
	c := &frameCursor{buf: frame}
	ver, err := c.byte()
	if err != nil {
		return err
	}
	if ver != storeFrameVersion && ver != storeFrameVersionTraced {
		return fmt.Errorf("p2g: unknown store frame version %d", ver)
	}
	nameLen, err := c.uvarint()
	if err != nil {
		return err
	}
	if nameLen > uint64(len(frame)-c.off) {
		return errFrameShort
	}
	fieldName := string(frame[c.off : c.off+int(nameLen)])
	c.off += int(nameLen)
	age64, err := c.varint()
	if err != nil {
		return err
	}
	age := int(age64)
	if ver == storeFrameVersionTraced {
		if _, err := c.uvarint(); err != nil { // trace id: tagging only, skip
			return err
		}
	}

	for c.off < len(frame) {
		mode, err := c.byte()
		if err != nil {
			return err
		}
		sn := StoreNotice{Field: fieldName, Age: age}
		switch mode {
		case frameModeElem:
			rank, err := c.uvarint()
			if err != nil {
				return err
			}
			if rank > frameMaxRank || rank > uint64(len(frame)-c.off) {
				return fmt.Errorf("p2g: store frame coordinate rank %d out of range", rank)
			}
			if rank > 0 {
				sn.Elem = make([]int, rank)
				for d := range sn.Elem {
					x, err := c.varint()
					if err != nil {
						return err
					}
					sn.Elem[d] = int(x)
				}
			}
		case frameModeWhole:
			sn.Whole = true
		case frameModeSlab:
			rank, err := c.uvarint()
			if err != nil {
				return err
			}
			if rank == 0 || rank > frameMaxRank || rank > uint64(len(frame)-c.off) {
				return fmt.Errorf("p2g: store frame selector rank %d out of range", rank)
			}
			sn.Sel = make([]field.SlabDim, rank)
			for d := range sn.Sel {
				fixed, err := c.byte()
				if err != nil {
					return err
				}
				if fixed != 0 {
					x, err := c.varint()
					if err != nil {
						return err
					}
					sn.Sel[d] = field.SlabDim{Fixed: true, Index: int(x)}
				}
			}
		default:
			return fmt.Errorf("p2g: unknown store frame entry mode %d", mode)
		}
		v, n, err := field.DecodeWireValue(frame[c.off:])
		if err != nil {
			return err
		}
		c.off += n
		sn.Value = v
		if err := apply(sn); err != nil {
			return err
		}
	}
	return nil
}

// InjectStoreFrame applies a batched store frame received from a remote node:
// each entry is written to the local field replica and the analyzer notified,
// exactly as InjectStore does for a single notice.
func (n *Node) InjectStoreFrame(frame []byte) error {
	return DecodeStoreFrame(frame, n.InjectStore)
}
