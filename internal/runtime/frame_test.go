package runtime

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/core"
	"repro/internal/field"
)

func randFrameArray(r *rand.Rand) *field.Array {
	kinds := []field.Kind{field.Int32, field.Int64, field.Float64, field.Uint8, field.Bool}
	k := kinds[r.Intn(len(kinds))]
	rank := 1 + r.Intn(3)
	extents := make([]int, rank)
	n := 1
	for d := range extents {
		extents[d] = 1 + r.Intn(4)
		n *= extents[d]
	}
	a := field.NewArray(k, extents...)
	for i := 0; i < n; i++ {
		switch k {
		case field.Float64:
			a.SetFlat(field.Float64Val(r.NormFloat64()), i)
		case field.Bool:
			a.SetFlat(field.BoolVal(r.Intn(2) == 0), i)
		default:
			a.SetFlat(field.Int64Val(r.Int63n(200)), i)
		}
	}
	return a
}

func randFrameValue(r *rand.Rand) field.Value {
	switch r.Intn(6) {
	case 0:
		return field.Int32Val(int32(r.Int31() - r.Int31()))
	case 1:
		return field.Int64Val(r.Int63() - r.Int63())
	case 2:
		return field.Float64Val(r.NormFloat64())
	case 3:
		return field.BoolVal(r.Intn(2) == 0)
	case 4:
		return field.StringVal(fmt.Sprintf("s%d", r.Intn(1000)))
	default:
		return field.ArrayVal(randFrameArray(r))
	}
}

func randFrameNotice(r *rand.Rand, fieldName string, age int) StoreNotice {
	sn := StoreNotice{Field: fieldName, Age: age}
	switch r.Intn(3) {
	case 0: // element store, rank 0..3
		rank := r.Intn(4)
		for d := 0; d < rank; d++ {
			sn.Elem = append(sn.Elem, r.Intn(100)-5)
		}
		sn.Value = randFrameValue(r)
	case 1: // whole-field store
		sn.Whole = true
		sn.Value = field.ArrayVal(randFrameArray(r))
	default: // slab store, rank 1..3
		rank := 1 + r.Intn(3)
		for d := 0; d < rank; d++ {
			if r.Intn(2) == 0 {
				sn.Sel = append(sn.Sel, field.SlabDim{Fixed: true, Index: r.Intn(50)})
			} else {
				sn.Sel = append(sn.Sel, field.SlabDim{})
			}
		}
		sn.Value = field.ArrayVal(randFrameArray(r))
	}
	return sn
}

func noticesEqual(a, b StoreNotice) bool {
	if a.Field != b.Field || a.Age != b.Age || a.Whole != b.Whole {
		return false
	}
	if !slices.Equal(a.Elem, b.Elem) || !slices.Equal(a.Sel, b.Sel) {
		return false
	}
	if a.Value.IsArray() != b.Value.IsArray() {
		return false
	}
	if a.Value.IsArray() {
		return a.Value.Array().Equal(b.Value.Array())
	}
	return a.Value.Equal(b.Value)
}

// TestStoreFrameScatterGather: a frame holding payloads above the segment
// threshold must record them scatter-gather, and every assembled form —
// Bytes, AppendTo, flattened Segments — must be identical to each other and
// decode back to the original notices.
func TestStoreFrameScatterGather(t *testing.T) {
	big := field.NewArray(field.Float64, 256) // 2 KiB payload: well above frameSegMin
	for i := 0; i < big.Len(); i++ {
		big.SetFlat(field.Float64Val(float64(i)*0.25), i)
	}
	small := field.ArrayFromUint8([]uint8{1, 2, 3}) // below frameSegMin: copies inline
	notices := []StoreNotice{
		{Field: "f", Age: 3, Whole: true, Value: field.ArrayVal(big)},
		{Field: "f", Age: 3, Elem: []int{7}, Value: field.Int32Val(42)},
		{Field: "f", Age: 3, Sel: []field.SlabDim{{Fixed: true, Index: 1}}, Value: field.ArrayVal(small)},
		{Field: "f", Age: 3, Whole: true, Value: field.ArrayVal(big)},
	}
	var f StoreFrame
	f.Reset("f", 3)
	for _, sn := range notices {
		if err := f.Add(sn); err != nil {
			t.Fatal(err)
		}
	}
	if len(f.segs) != 2 {
		t.Fatalf("recorded %d segments, want 2 (the big payloads)", len(f.segs))
	}
	flat := f.AppendTo(nil)
	if f.Len() != len(flat) {
		t.Errorf("Len() = %d, flattened size %d", f.Len(), len(flat))
	}
	if !slices.Equal(f.Bytes(), flat) {
		t.Error("Bytes() differs from AppendTo")
	}
	var fromSegs []byte
	for _, s := range f.Segments() {
		fromSegs = append(fromSegs, s...)
	}
	if !slices.Equal(fromSegs, flat) {
		t.Error("flattened Segments() differ from AppendTo")
	}
	var got []StoreNotice
	if err := DecodeStoreFrame(flat, func(sn StoreNotice) error {
		got = append(got, sn)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(notices) {
		t.Fatalf("decoded %d notices, want %d", len(got), len(notices))
	}
	for i := range notices {
		if !noticesEqual(got[i], notices[i]) {
			t.Fatalf("notice %d: got %+v, want %+v", i, got[i], notices[i])
		}
	}
}

// TestStoreFrameScatterVsCopyBytes: for random notice sequences, the
// scatter-gather frame must flatten to exactly the bytes a pure
// AppendWireValue encoding would produce (segments are a transport detail,
// never a wire format change).
func TestStoreFrameScatterVsCopyBytes(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for iter := 0; iter < 100; iter++ {
		var f StoreFrame
		f.Reset("f", 1)
		ref := append([]byte(nil), f.buf...) // header
		for i := 0; i < 1+r.Intn(6); i++ {
			sn := randFrameNotice(r, "f", 1)
			if err := f.Add(sn); err != nil {
				t.Fatal(err)
			}
			// Reference: the always-copying encoding of the same entry.
			var g StoreFrame
			g.Reset("f", 1)
			hdr := len(g.buf)
			var err error
			g.buf, err = appendFrameEntryCopy(g.buf, sn)
			if err != nil {
				t.Fatal(err)
			}
			ref = append(ref, g.buf[hdr:]...)
		}
		if !slices.Equal(f.AppendTo(nil), ref) {
			t.Fatalf("iter %d: scatter-gather bytes differ from copy encoding", iter)
		}
	}
}

// appendFrameEntryCopy encodes one entry with the pure copying path, exactly
// as Add did before scatter-gather segments existed.
func appendFrameEntryCopy(buf []byte, sn StoreNotice) ([]byte, error) {
	var g StoreFrame
	g.buf = buf
	switch {
	case sn.Whole:
		g.buf = append(g.buf, frameModeWhole)
	case sn.Sel != nil:
		g.buf = append(g.buf, frameModeSlab)
		g.buf = binary.AppendUvarint(g.buf, uint64(len(sn.Sel)))
		for _, sd := range sn.Sel {
			if sd.Fixed {
				g.buf = append(g.buf, 1)
				g.buf = binary.AppendVarint(g.buf, int64(sd.Index))
			} else {
				g.buf = append(g.buf, 0)
			}
		}
	default:
		g.buf = append(g.buf, frameModeElem)
		g.buf = binary.AppendUvarint(g.buf, uint64(len(sn.Elem)))
		for _, i := range sn.Elem {
			g.buf = binary.AppendVarint(g.buf, int64(i))
		}
	}
	return field.AppendWireValue(g.buf, sn.Value)
}

// TestPutStoreFrameCap: pooled frames must drop slab references on return,
// and oversized buffers must not be retained.
func TestPutStoreFrameCap(t *testing.T) {
	f := GetStoreFrame()
	f.Reset("f", 0)
	big := field.NewArray(field.Uint8, 1024)
	if err := f.Add(StoreNotice{Field: "f", Age: 0, Whole: true, Value: field.ArrayVal(big)}); err != nil {
		t.Fatal(err)
	}
	if len(f.segs) == 0 {
		t.Fatal("large payload did not record a segment")
	}
	if !f.poolable() {
		t.Fatal("small frame reported unpoolable")
	}
	PutStoreFrame(f)
	if len(f.segs) != 0 || f.segBytes != 0 {
		t.Fatal("PutStoreFrame kept slab references")
	}

	over := &StoreFrame{buf: make([]byte, 0, maxPooledFrameBytes+1)}
	if over.poolable() {
		t.Fatalf("frame with %d-byte buffer reported poolable (cap %d)", cap(over.buf), maxPooledFrameBytes)
	}
	PutStoreFrame(over) // must not panic; the buffer is simply dropped

	at := &StoreFrame{buf: make([]byte, 0, maxPooledFrameBytes)}
	if !at.poolable() {
		t.Fatal("frame exactly at the cap reported unpoolable")
	}
}

// TestStoreFrameRoundTrip pushes random store notices (all three addressing
// modes, random kinds/ranks/extents) through encode → decode and requires
// the decoded sequence to match exactly.
func TestStoreFrameRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		fieldName := fmt.Sprintf("f%d", r.Intn(5))
		age := r.Intn(40) // ages are varint-encoded; negatives don't occur in programs
		var f StoreFrame
		f.Reset(fieldName, age)
		var want []StoreNotice
		for i := 0; i < 1+r.Intn(8); i++ {
			sn := randFrameNotice(r, fieldName, age)
			want = append(want, sn)
			if err := f.Add(sn); err != nil {
				t.Fatal(err)
			}
		}
		if f.Entries() != len(want) {
			t.Fatalf("entries = %d, want %d", f.Entries(), len(want))
		}
		var got []StoreNotice
		if err := DecodeStoreFrame(f.Bytes(), func(sn StoreNotice) error {
			got = append(got, sn)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("decoded %d notices, want %d", len(got), len(want))
		}
		for i := range want {
			if !noticesEqual(got[i], want[i]) {
				t.Fatalf("notice %d: got %+v, want %+v", i, got[i], want[i])
			}
		}
	}
}

// TestStoreFrameTruncated decodes every prefix of a valid frame: a prefix
// must either fail cleanly or decode to a prefix of the original notices —
// never crash, never invent entries.
func TestStoreFrameTruncated(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	var f StoreFrame
	f.Reset("trunc", 3)
	var want []StoreNotice
	for i := 0; i < 6; i++ {
		sn := randFrameNotice(r, "trunc", 3)
		want = append(want, sn)
		if err := f.Add(sn); err != nil {
			t.Fatal(err)
		}
	}
	full := f.Bytes()
	for cut := 0; cut < len(full); cut++ {
		var got []StoreNotice
		err := DecodeStoreFrame(full[:cut], func(sn StoreNotice) error {
			got = append(got, sn)
			return nil
		})
		if err == nil && cut < len(full) {
			// A clean prefix decode is only legal at an entry boundary.
			if len(got) >= len(want) {
				t.Fatalf("cut %d: decoded %d notices from a strict prefix", cut, len(got))
			}
		}
		for i := range got {
			if i < len(want) && !noticesEqual(got[i], want[i]) {
				t.Fatalf("cut %d: notice %d diverged", cut, i)
			}
		}
	}
}

// TestStoreFrameCorrupt exercises the decoder's guard rails on hostile input.
func TestStoreFrameCorrupt(t *testing.T) {
	var f StoreFrame
	f.Reset("c", 0)
	if err := f.Add(StoreNotice{Field: "c", Age: 0, Elem: []int{1}, Value: field.Int32Val(7)}); err != nil {
		t.Fatal(err)
	}
	valid := append([]byte(nil), f.Bytes()...)

	nop := func(StoreNotice) error { return nil }
	cases := map[string][]byte{
		"empty":        {},
		"bad version":  {99},
		"huge name":    {storeFrameVersion, 0xff, 0xff, 0xff, 0x7f},
		"name overrun": {storeFrameVersion, 40, 'x'},
	}
	for name, data := range cases {
		if err := DecodeStoreFrame(data, nop); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}
	// Corrupt the entry mode byte: header is ver|len|"c"|age, so the mode
	// byte sits at offset 4.
	bad := append([]byte(nil), valid...)
	bad[4] = 77
	if err := DecodeStoreFrame(bad, nop); err == nil {
		t.Error("bad mode byte: decode succeeded")
	}
	// Oversized element rank.
	var g StoreFrame
	g.Reset("c", 0)
	hdr := len(g.Bytes())
	overRank := append(append([]byte(nil), valid[:hdr]...), frameModeElem, 0xff, 0xff, 0x7f)
	if err := DecodeStoreFrame(overRank, nop); err == nil {
		t.Error("oversized rank: decode succeeded")
	}
	// An apply error stops the decode and propagates.
	wantErr := fmt.Errorf("stop")
	if err := DecodeStoreFrame(valid, func(StoreNotice) error { return wantErr }); err != wantErr {
		t.Errorf("apply error = %v, want %v", err, wantErr)
	}
}

// frameEquivProg is a program whose kernels are all remote, mirroring the
// master's shadow node: three versioned fields of different kinds and ranks.
func frameEquivProg(t *testing.T) *core.Program {
	t.Helper()
	b := core.NewBuilder("frames")
	b.Field("fi", field.Int32, 1, true)
	b.Field("ff", field.Float64, 2, true)
	b.Field("fu", field.Uint8, 2, true)
	nop := func(c *core.Ctx) error { return nil }
	b.Kernel("s1").Local("v", field.Int32, 1).StoreAll("fi", core.AgeAt(0), "v").Body(nop)
	b.Kernel("s2").Local("v", field.Float64, 2).StoreAll("ff", core.AgeAt(0), "v").Body(nop)
	b.Kernel("s3").Local("v", field.Uint8, 2).StoreAll("fu", core.AgeAt(0), "v").Body(nop)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newShadow(t *testing.T, prog *core.Program) (*Node, func()) {
	t.Helper()
	remote := map[string]bool{"s1": true, "s2": true, "s3": true}
	n, err := NewNode(prog, Options{Workers: 1, RemoteKernels: remote, NoAutoQuiesce: true})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = n.Run()
	}()
	return n, func() {
		n.Stop()
		<-done
	}
}

// TestInjectStoreFrameMatchesInjectStore applies the same store sequence to
// two shadow nodes — one notice-by-notice via InjectStore, one batched via
// InjectStoreFrame — and requires identical field state.
func TestInjectStoreFrameMatchesInjectStore(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	prog := frameEquivProg(t)
	direct, stopDirect := newShadow(t, prog)
	framed, stopFramed := newShadow(t, prog)

	// One generation per (field, addressing mode): element stores into fi,
	// a whole-field store into ff, slab stores into fu.
	var notices []StoreNotice
	for i := 0; i < 10; i++ {
		notices = append(notices, StoreNotice{
			Field: "fi", Age: 0, Elem: []int{i},
			Value: field.Int32Val(int32(r.Intn(1000))),
		})
	}
	whole := field.NewArray(field.Float64, 4, 3)
	for i := 0; i < whole.Len(); i++ {
		whole.SetFlat(field.Float64Val(r.NormFloat64()), i)
	}
	notices = append(notices, StoreNotice{Field: "ff", Age: 0, Whole: true, Value: field.ArrayVal(whole)})
	for i := 0; i < 4; i++ {
		row := field.NewArray(field.Uint8, 8)
		for j := 0; j < 8; j++ {
			row.SetFlat(field.Int64Val(r.Int63n(256)), j)
		}
		notices = append(notices, StoreNotice{
			Field: "fu", Age: 0,
			Sel:   []field.SlabDim{{Fixed: true, Index: i}, {}},
			Value: field.ArrayVal(row),
		})
	}

	frames := map[string]*StoreFrame{}
	for _, sn := range notices {
		if err := direct.InjectStore(sn); err != nil {
			t.Fatal(err)
		}
		f := frames[sn.Field]
		if f == nil {
			f = &StoreFrame{}
			f.Reset(sn.Field, sn.Age)
			frames[sn.Field] = f
		}
		if err := f.Add(sn); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range frames {
		if err := framed.InjectStoreFrame(f.Bytes()); err != nil {
			t.Fatal(err)
		}
	}
	stopDirect()
	stopFramed()

	for _, fieldName := range []string{"fi", "ff", "fu"} {
		want, err := direct.Snapshot(fieldName, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := framed.Snapshot(fieldName, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("%s: framed %v, direct %v", fieldName, got, want)
		}
	}
	// Unknown-field frames surface the InjectStore error.
	var bad StoreFrame
	bad.Reset("nope", 0)
	if err := bad.Add(StoreNotice{Field: "nope", Age: 0, Elem: []int{0}, Value: field.Int32Val(1)}); err != nil {
		t.Fatal(err)
	}
	n, stop := newShadow(t, prog)
	defer stop()
	if err := n.InjectStoreFrame(bad.Bytes()); err == nil {
		t.Error("frame for unknown field injected cleanly")
	}
}

// TestStoreFrameTraced covers the version-2 header: a nonzero trace id
// round-trips through StoreFrameTrace and does not disturb the notice
// payload; trace id 0 falls back to the version-1 layout byte for byte.
func TestStoreFrameTraced(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for iter := 0; iter < 100; iter++ {
		fieldName := fmt.Sprintf("f%d", r.Intn(5))
		age := r.Intn(40)
		trace := uint64(r.Int63()) | 1 // nonzero
		var traced StoreFrame
		traced.ResetTraced(fieldName, age, trace)
		var want []StoreNotice
		for i := 0; i < 1+r.Intn(8); i++ {
			sn := randFrameNotice(r, fieldName, age)
			want = append(want, sn)
			if err := traced.Add(sn); err != nil {
				t.Fatal(err)
			}
		}
		if got := StoreFrameTrace(traced.Bytes()); got != trace {
			t.Fatalf("StoreFrameTrace = %#x, want %#x", got, trace)
		}
		var got []StoreNotice
		if err := DecodeStoreFrame(traced.Bytes(), func(sn StoreNotice) error {
			got = append(got, sn)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("decoded %d notices, want %d", len(got), len(want))
		}
		for i := range want {
			if !noticesEqual(got[i], want[i]) {
				t.Fatalf("notice %d: got %+v, want %+v", i, got[i], want[i])
			}
		}
	}
}

// TestStoreFrameTraceZeroIsV1 pins the compatibility guarantee: with trace
// id 0, ResetTraced produces exactly the version-1 bytes, and version-1
// frames report trace 0.
func TestStoreFrameTraceZeroIsV1(t *testing.T) {
	sn := StoreNotice{Field: "f", Age: 3, Elem: []int{1}, Value: field.Int32Val(9)}
	var v1, v2 StoreFrame
	v1.Reset("f", 3)
	v2.ResetTraced("f", 3, 0)
	if err := v1.Add(sn); err != nil {
		t.Fatal(err)
	}
	if err := v2.Add(sn); err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(v1.Bytes(), v2.Bytes()) {
		t.Errorf("trace 0 changed the wire bytes:\nv1 %x\nv2 %x", v1.Bytes(), v2.Bytes())
	}
	if got := StoreFrameTrace(v1.Bytes()); got != 0 {
		t.Errorf("v1 frame trace = %#x, want 0", got)
	}
	if got := StoreFrameTrace(nil); got != 0 {
		t.Errorf("nil frame trace = %#x, want 0", got)
	}
	if got := StoreFrameTrace([]byte{0xff, 0x01}); got != 0 {
		t.Errorf("garbage frame trace = %#x, want 0", got)
	}
}
