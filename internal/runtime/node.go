package runtime

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	goruntime "runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/deadline"
	"repro/internal/field"
	"repro/internal/obs"
)

// Options configures an execution node.
type Options struct {
	// Workers is the number of worker goroutines dispatching kernel
	// instances; the dependency analyzer always runs in its own goroutine
	// on top of these, mirroring the paper's dedicated analyzer thread.
	// Zero selects 1.
	Workers int
	// MaxAge bounds execution: no kernel instance with age > MaxAge is
	// dispatched. Zero or negative means unbounded. Programs with no
	// termination condition (the paper's mul/sum example "runs
	// indefinitely") need a bound.
	MaxAge int
	// KernelMaxAge bounds individual kernels: no instance of the named
	// kernel runs at an age beyond its bound. This is the scheduler-level
	// "break-point" the paper introduces to stop K-means after a fixed
	// number of iterations (§VIII-B).
	KernelMaxAge map[string]int
	// Granularity sets the initial data-granularity (instances combined
	// per dispatch) per kernel name; unlisted kernels use 1, the finest
	// granularity, as the paper encourages programmers to express.
	Granularity map[string]int
	// Adaptive lets the low-level scheduler coarsen granularity at runtime
	// when dispatch overhead is not dominated by kernel time (§V-A).
	Adaptive bool
	// GC enables garbage collection of field generations whose consumers
	// have all completed (§IX).
	GC bool
	// Output receives kernel Printf output (the kernel language's cout).
	Output io.Writer
	// Clock drives deadline timers; nil selects the real clock.
	Clock deadline.Clock
	// EventBuffer sizes the analyzer's event channel (in event batches;
	// workers flush store/done events in batches of up to 64, so the
	// default of 1024 batches buffers ~65k events). Zero selects 1024.
	EventBuffer int
	// Scheduler selects the ready-queue implementation: SchedStealing (the
	// default work-stealing per-worker deques) or SchedGlobal (the reference
	// single mutex+condvar queue, kept for A/B benchmarking).
	Scheduler SchedulerKind
	// Analyzer selects the dependency-analyzer implementation:
	// AnalyzerSharded (the default; state sharded by (kernel, age) across
	// per-shard event channels) or AnalyzerSerial (the single-goroutine
	// reference analyzer, kept for A/B benchmarking).
	Analyzer AnalyzerKind
	// AnalyzerShards is the shard count for AnalyzerSharded; zero picks
	// max(1, min(8, GOMAXPROCS/2)), and values are capped at 64 (the shard
	// routing mask is a uint64).
	AnalyzerShards int
	// FetchCopy disables read-only fetch views and restores the copying
	// fetch path (every whole-generation and slab fetch snapshots into a
	// per-instance Array). Views are safe because generations are
	// write-once and completeness-gated; the copy path is kept as the A/B
	// reference (`p2gbench -fetchcopy`).
	FetchCopy bool

	// Metrics, when set, receives the node's full instrumentation: the
	// per-kernel counters behind the Report plus dispatch/fetch/store
	// latency histograms and queue-depth, event-backlog and field-memory
	// gauges (see internal/obs for metric names). When nil, the node keeps
	// a private registry holding only the per-kernel counters the Report
	// projects, and the detailed metrics are disabled.
	Metrics *obs.Registry
	// Tracer, when set, records one lifecycle span per kernel instance
	// (ready → fetched → executed → stored → committed, with age and index
	// coordinates) into its bounded ring, exportable as Chrome trace_event
	// JSON. Nil disables tracing at the cost of one nil check per dispatch.
	Tracer *obs.Tracer

	// RemoteKernels marks kernels of the program that execute on other
	// nodes of a distributed deployment: the local analyzer creates no
	// instances for them, but accounts for their completions — injected
	// with InjectRemoteDone — when deciding field completeness.
	RemoteKernels map[string]bool
	// NoAutoQuiesce keeps the node running when it has no local work, so
	// remote events can still arrive; the node then stops only on Stop().
	// Required (and only meaningful) for distributed operation.
	NoAutoQuiesce bool
	// OnStore, when set, observes every successful local store with its
	// data — the publish half of the distributed pub-sub layer. It is
	// called from worker goroutines.
	OnStore func(StoreNotice)
	// OnKernelDone, when set, observes every completed local kernel-age —
	// the producer-done notifications remote nodes need for completeness.
	// It is called from the analyzer goroutine.
	OnKernelDone func(kernel string, age int)
	// MergeStores relaxes write-once enforcement on every field (see
	// field.SetMergeStores): duplicate stores are silently skipped rather
	// than erroring. The distributed runtime enables it under failover so
	// that replayed generations and re-executed deterministic kernels merge
	// into identical state; genuine write-twice program errors are masked
	// while it is on.
	MergeStores bool
}

// StoreNotice describes one store operation for distribution to peers.
type StoreNotice struct {
	Field string
	Age   int
	// Elem is the element coordinates for an element store; nil with
	// Whole set for a whole-field store.
	Elem  []int
	Whole bool
	// Sel is the slab selector for a slab store (fixed dimensions pinned,
	// free dimensions covered by the array payload); nil otherwise.
	Sel []field.SlabDim
	// Value carries the element value, or the whole/slab array (as an array
	// value) for whole-field and slab stores.
	Value field.Value
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.MaxAge <= 0 {
		o.MaxAge = math.MaxInt
	}
	if o.EventBuffer <= 0 {
		o.EventBuffer = 1024
	}
	if o.AnalyzerShards <= 0 {
		o.AnalyzerShards = goruntime.GOMAXPROCS(0) / 2
		if o.AnalyzerShards > 8 {
			o.AnalyzerShards = 8
		}
	}
	if o.AnalyzerShards < 1 {
		o.AnalyzerShards = 1
	}
	if o.AnalyzerShards > 64 {
		o.AnalyzerShards = 64
	}
	return o
}

// Node is a single P2G execution node: program state, fields, the dependency
// analyzer and a worker pool. Create one with NewNode, execute with Run, then
// inspect fields and instrumentation.
type Node struct {
	prog *core.Program
	opts Options

	fields  map[string]*fieldState
	kernels map[string]*kernelState
	order   []*kernelState

	timers *deadline.TimerSet
	sched  scheduler
	// events feeds the serial analyzer; under the sharded analyzer (sh is
	// non-nil) workers route events to per-shard channels instead.
	events chan []event
	sh     *shardedAnalyzer
	out    *lockedWriter

	wg        sync.WaitGroup
	closeOnce sync.Once

	// injectMu guards the events channel against sends racing its close
	// during shutdown (InjectStore and friends run on caller goroutines).
	injectMu     sync.RWMutex
	eventsClosed bool

	outstandingMirror atomic.Int64

	errMu  sync.Mutex
	runErr error

	report *Report

	// Observability: reg is always non-nil (Options.Metrics or a private
	// registry) and holds the per-kernel counters the Report projects; the
	// detailed handles below are nil unless Options.Metrics was set.
	// mSteals and mEventBatches always live in the registry (the Report
	// surfaces them), baseline-subtracted like the per-kernel counters.
	reg           *obs.Registry
	tracer        *obs.Tracer
	mDispatches   *obs.Counter
	mSteals       counterWithBaseline
	mEventBatches counterWithBaseline
	hFetch        *obs.Histogram
	hKernel       *obs.Histogram
	hStore        *obs.Histogram
	gQueue        *obs.Gauge
	gBacklog      *obs.Gauge
	gFieldMem     *obs.Gauge
	gOutstand     *obs.Gauge

	// Stage-timer clock: instance lifecycle stamps (createdNs, readyNs) are
	// nanoseconds since clock. When tracing is on, clock is the tracer's
	// start so stamps double as span timestamps; stamp gates the stamping
	// work entirely (false = tracing and stage metrics both off, the
	// allocation-free zero-overhead path).
	clock time.Time
	stamp bool
	// hIdle accumulates per-worker blocked-on-empty-queue time; together
	// with the per-kernel busy stages it makes attribution sum to the run's
	// worker-seconds (Report.Stages).
	hIdle histWithBase
}

// nowNs returns nanoseconds since the node's stage clock.
func (n *Node) nowNs() int64 { return time.Since(n.clock).Nanoseconds() }

// lockedWriter serializes kernel Printf output from concurrent workers.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	if lw.w == nil {
		return len(p), nil
	}
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// NewNode validates the program and builds the node's static plan: field
// states with producer/consumer edges and kernel states with index-variable
// range bindings.
func NewNode(p *core.Program, opts Options) (*Node, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	n := &Node{
		prog:    p,
		opts:    opts,
		fields:  make(map[string]*fieldState, len(p.Fields)),
		kernels: make(map[string]*kernelState, len(p.Kernels)),
		timers:  deadline.NewTimerSet(opts.Clock, p.Timers...),
		out:     &lockedWriter{w: opts.Output},
		reg:     opts.Metrics,
		tracer:  opts.Tracer,
	}
	// Stage stamps share the tracer's clock when tracing, so readyNs feeds
	// both span wait times and the ready-wait histogram consistently.
	if opts.Tracer != nil {
		n.clock = opts.Tracer.StartTime()
	} else {
		n.clock = time.Now()
	}
	n.stamp = opts.Tracer != nil || opts.Metrics != nil
	var gWorkerDepth []*obs.Gauge
	if n.reg == nil {
		// Private registry: the per-kernel counters always live in a
		// registry so the Report is a projection of it, but the detailed
		// node metrics below stay disabled (nil handles are no-ops).
		n.reg = obs.NewRegistry()
	} else {
		n.hIdle = newHistBase(n.reg.Histogram(obs.MStageIdleNs))
		n.mDispatches = n.reg.Counter(obs.MDispatchesTotal)
		n.hFetch = n.reg.Histogram(obs.MFetchNs)
		n.hKernel = n.reg.Histogram(obs.MKernelNs)
		n.hStore = n.reg.Histogram(obs.MStoreNs)
		n.gQueue = n.reg.Gauge(obs.MReadyQueueDepth)
		n.gBacklog = n.reg.Gauge(obs.MEventBacklog)
		n.gFieldMem = n.reg.Gauge(obs.MFieldMemElems)
		n.gOutstand = n.reg.Gauge(obs.MOutstandingInsts)
		gWorkerDepth = make([]*obs.Gauge, opts.Workers)
		for i := range gWorkerDepth {
			gWorkerDepth[i] = n.reg.Gauge(obs.Label(obs.MWorkerQueueDepth, "worker", strconv.Itoa(i)))
		}
	}
	n.mSteals = newBaselined(n.reg.Counter(obs.MStealsTotal))
	n.mEventBatches = newBaselined(n.reg.Counter(obs.MEventBatchesTotal))
	switch opts.Scheduler {
	case SchedGlobal:
		n.sched = newReadyQueue()
	default:
		n.sched = newStealScheduler(opts.Workers, n.mSteals.c, gWorkerDepth)
	}
	n.tracer.CountDropped(n.reg.Counter(obs.MTraceDropped))
	for _, fd := range p.Fields {
		fl := field.New(fd.Name, fd.Kind, fd.Rank, fd.Aged)
		if opts.MergeStores {
			fl.SetMergeStores(true)
		}
		n.fields[fd.Name] = &fieldState{
			decl: fd,
			f:    fl,
			ages: make(map[int]*fieldAgeState),
		}
	}
	for name := range opts.RemoteKernels {
		if p.Kernel(name) == nil {
			return nil, fmt.Errorf("p2g: remote kernel %q is not part of the program", name)
		}
	}
	if opts.GC && len(opts.RemoteKernels) > 0 {
		return nil, fmt.Errorf("p2g: field garbage collection cannot be combined with remote kernels (remote consumers are invisible to the local GC)")
	}
	for _, kd := range p.Kernels {
		ks := &kernelState{
			decl: kd, ages: make(map[int]*ageTracker), remote: opts.RemoteKernels[kd.Name],
			instances:  newBaselined(n.reg.Counter(obs.Label(obs.MKernelInstances, "kernel", kd.Name))),
			dispatchNs: newBaselined(n.reg.Counter(obs.Label(obs.MKernelDispatchNs, "kernel", kd.Name))),
			kernelNs:   newBaselined(n.reg.Counter(obs.Label(obs.MKernelTimeNs, "kernel", kd.Name))),
			storeOps:   newBaselined(n.reg.Counter(obs.Label(obs.MKernelStoreOps, "kernel", kd.Name))),
		}
		if opts.Metrics != nil {
			ks.stageReady = newHistBase(n.reg.Histogram(obs.Label(obs.MStageReadyWaitNs, "kernel", kd.Name)))
			ks.stageQueue = newHistBase(n.reg.Histogram(obs.Label(obs.MStageQueueWaitNs, "kernel", kd.Name)))
			ks.stageFetch = newHistBase(n.reg.Histogram(obs.Label(obs.MStageFetchNs, "kernel", kd.Name)))
			ks.stageExec = newHistBase(n.reg.Histogram(obs.Label(obs.MStageExecNs, "kernel", kd.Name)))
			ks.stageStore = newHistBase(n.reg.Histogram(obs.Label(obs.MStageStoreNs, "kernel", kd.Name)))
		}
		ks.gran.Store(1)
		if g, ok := opts.Granularity[kd.Name]; ok && g > 0 {
			ks.gran.Store(int32(g))
		}
		if len(kd.Fetches) > 32 {
			return nil, fmt.Errorf("p2g: kernel %q has %d fetches; the runtime supports at most 32", kd.Name, len(kd.Fetches))
		}
		ks.fullMask = uint32(1)<<uint(len(kd.Fetches)) - 1
		ks.idx = len(n.order)
		n.kernels[kd.Name] = ks
		n.order = append(n.order, ks)
	}
	// Edges and range bindings.
	for _, ks := range n.order {
		kd := ks.decl
		ks.binds = make([]varBind, len(kd.IndexVars))
		boundVars := make(map[string]bool, len(kd.IndexVars))
		for i := range kd.Fetches {
			fe := &kd.Fetches[i]
			fs := n.fields[fe.Field]
			ce := consEdge{ks: ks, fetch: fe, fetchBit: uint32(1) << uint(i)}
			if !fe.Whole() && !fe.Slab() {
				ce.terms = compileIndex(fe.Index, kd.IndexVars)
			}
			fs.consumers = append(fs.consumers, ce)
			if fe.Age.HasVar {
				fs.agedConsumers++
			} else {
				fs.absConsumers++
			}
			for d, spec := range fe.Index {
				if spec.Kind != core.IndexVarKind || spec.Off != 0 || boundVars[spec.Var] {
					continue
				}
				boundVars[spec.Var] = true
				vi := varIndex(kd.IndexVars, spec.Var)
				ks.binds[vi] = varBind{fs: fs, dim: d, age: fe.Age}
				fs.rangeOf = append(fs.rangeOf, rangeEdge{ks: ks, varIdx: vi, dim: d, age: fe.Age})
			}
		}
		for i := range kd.Stores {
			ss := &kd.Stores[i]
			fs := n.fields[ss.Field]
			fs.producers = append(fs.producers, prodEdge{ks: ks, store: ss})
		}
	}
	// Dispatch plans: resolve every fetch/store to its field state and
	// precompile the index expressions, then size a pool of reusable
	// execution frames (context + coordinate/selector scratch) per kernel.
	// This is what makes the dispatch hot path allocation-free.
	for _, ks := range n.order {
		kd := ks.decl
		maxIdx, maxSel := 0, 0
		ks.fetchPlans = make([]fetchPlan, len(kd.Fetches))
		for i := range kd.Fetches {
			fe := &kd.Fetches[i]
			fp := fetchPlan{fe: fe, fs: n.fields[fe.Field]}
			switch {
			case fe.Whole():
				fp.whole = true
				fp.viewable = !opts.FetchCopy
			case fe.Slab():
				fp.slab = make([]slabTerm, len(fe.Index))
				for d, spec := range fe.Index {
					if spec.Kind == core.IndexAllKind {
						continue // zero value spans the whole dimension
					}
					fp.slab[d] = slabTerm{fixed: true, term: compileSpec(spec, kd.IndexVars)}
				}
				if len(fp.slab) > maxSel {
					maxSel = len(fp.slab)
				}
				// A slab selector is viewable when its fixed dimensions are
				// a prefix: the free suffix then addresses one contiguous
				// row range of the generation slab.
				fp.viewable = !opts.FetchCopy
				free := false
				for _, st := range fp.slab {
					if st.fixed && free {
						fp.viewable = false
						break
					}
					if !st.fixed {
						free = true
					}
				}
			default:
				fp.terms = compileIndex(fe.Index, kd.IndexVars)
				if len(fp.terms) > maxIdx {
					maxIdx = len(fp.terms)
				}
				ks.needsInstMap = true
			}
			ks.fetchPlans[i] = fp
		}
		ks.storePlans = make([]storePlan, len(kd.Stores))
		for i := range kd.Stores {
			ss := &kd.Stores[i]
			sp := storePlan{ss: ss, fs: n.fields[ss.Field]}
			switch {
			case ss.Whole():
			case ss.Slab():
				sp.slab = make([]slabTerm, len(ss.Index))
				for d, spec := range ss.Index {
					if spec.Kind == core.IndexAllKind {
						continue // zero value spans the whole dimension
					}
					sp.slab[d] = slabTerm{fixed: true, term: compileSpec(spec, kd.IndexVars)}
				}
				if len(sp.slab) > maxSel {
					maxSel = len(sp.slab)
				}
			default:
				sp.terms = compileIndex(ss.Index, kd.IndexVars)
				if len(sp.terms) > maxIdx {
					maxIdx = len(sp.terms)
				}
			}
			ks.storePlans[i] = sp
		}
		kd, nIdx, nSel := kd, maxIdx, maxSel
		ks.frames = &sync.Pool{New: func() any {
			return &execFrame{
				ctx: core.NewReusableCtx(kd, n.timers, n.out),
				idx: make([]int, nIdx),
				sel: make([]field.SlabDim, nSel),
			}
		}}
	}
	// Store-event routing tables (sharded analyzer): which shards a store to
	// generation g can concern. Remote kernels never have local trackers, so
	// their edges route nowhere.
	for _, fs := range n.fields {
		seenElem := make(map[shardRoute]bool)
		for _, ce := range fs.consumers {
			if ce.terms == nil || ce.ks.remote {
				continue
			}
			if !ce.fetch.Age.HasVar {
				fs.elemBroadcast = true
				continue
			}
			r := shardRoute{ks: ce.ks, off: ce.fetch.Age.Offset}
			if !seenElem[r] {
				seenElem[r] = true
				fs.elemRoutes = append(fs.elemRoutes, r)
			}
		}
		seenGrow := make(map[shardRoute]bool)
		for _, re := range fs.rangeOf {
			if re.ks.remote {
				continue
			}
			if !re.age.HasVar {
				fs.growBroadcast = true
				continue
			}
			r := shardRoute{ks: re.ks, off: re.age.Offset}
			if !seenGrow[r] {
				seenGrow[r] = true
				fs.growRoutes = append(fs.growRoutes, r)
			}
		}
	}
	if opts.Analyzer == AnalyzerSharded {
		n.sh = newShardedAnalyzer(n, opts.AnalyzerShards)
	} else {
		// The serial analyzer's event channel; the sharded analyzer routes
		// through per-shard channels instead and never touches it.
		n.events = make(chan []event, opts.EventBuffer)
	}
	return n, nil
}

// execFrame is the reusable per-dispatch state a worker checks out of a
// kernel's frame pool: the instance context plus coordinate and slab-selector
// scratch sized for the kernel's largest index expressions. views holds the
// tokens of slab views acquired by the current dispatch; they are released
// after the store loop, when nothing can read the aliased slabs anymore.
type execFrame struct {
	ctx   *core.Ctx
	idx   []int
	sel   []field.SlabDim
	views []field.ViewToken
}

// releaseViews drops every view token acquired by the current dispatch.
func (fr *execFrame) releaseViews() {
	for i := range fr.views {
		fr.views[i].Release()
	}
	fr.views = fr.views[:0]
}

// Run executes the program to quiescence and returns the instrumentation
// report. Run may be called once per node.
func (n *Node) Run() (*Report, error) {
	start := time.Now()
	for i := 0; i < n.opts.Workers; i++ {
		n.wg.Add(1)
		go n.worker(i)
	}
	var stats analyzerStats
	if n.sh != nil {
		n.sh.run()
		n.wg.Wait()
		stats = n.sh.stats(n.failed())
	} else {
		an := newAnalyzer(n)
		an.run()
		n.wg.Wait()
		stats = an.stats(n.failed())
	}
	n.report = n.buildReport(time.Since(start), stats)
	return n.report, n.runErr
}

// Run builds a node and executes the program in one call. The node is not
// exposed, so no field state outlives the call: remaining generations are
// released to the slab pools before returning, and back-to-back runs reuse
// each other's storage.
func Run(p *core.Program, opts Options) (*Report, error) {
	n, err := NewNode(p, opts)
	if err != nil {
		return nil, err
	}
	rep, runErr := n.Run()
	n.Release()
	return rep, runErr
}

// closeEventsWhenWorkersExit arranges for the event channel(s) to close once
// all workers have stopped, letting the analyzer drain without deadlock.
func (n *Node) closeEventsWhenWorkersExit() {
	n.closeOnce.Do(func() {
		go func() {
			n.wg.Wait()
			n.injectMu.Lock()
			n.eventsClosed = true
			if n.sh != nil {
				for _, s := range n.sh.shards {
					close(s.ch)
				}
			} else {
				close(n.events)
			}
			n.injectMu.Unlock()
		}()
	})
}

// inject delivers an externally produced event unless the node has shut
// down. It reports whether the event was accepted. External events arrive one
// at a time, so each rides in its own (pooled) single-event batch.
func (n *Node) inject(ev event) bool {
	n.injectMu.RLock()
	defer n.injectMu.RUnlock()
	if n.eventsClosed {
		return false
	}
	if n.sh != nil {
		n.injectSharded(ev)
		return true
	}
	evs := getEventBuf()
	evs = append(evs, ev)
	n.mEventBatches.Add(1)
	n.events <- evs
	return true
}

// injectSharded routes an injected event to the shard(s) it concerns: done
// events to the tracker's owner, remote-done and completeness bookkeeping to
// shard 0, stop to everyone, and store events along the precompiled routing
// tables. Caller holds injectMu.RLock with eventsClosed false.
func (n *Node) injectSharded(ev event) {
	sh := n.sh
	send := func(shard int) {
		evs := getEventBuf()
		evs = append(evs, ev)
		n.mEventBatches.Add(1)
		sh.pending.Add(1)
		sh.activity.Add(1)
		sh.shards[shard].ch <- evs
	}
	switch {
	case ev.stop:
		for i := range sh.shards {
			send(i)
		}
	case ev.remoteDone != nil:
		send(0)
	case ev.isDone:
		send(sh.shardOf(ev.t.ks, ev.t.age))
	default:
		sh.injectEnsure(ev.fs, ev.age)
		mask := sh.shardMaskForStore(ev.fs, ev.age, ev.grew)
		for mask != 0 {
			i := bits.TrailingZeros64(mask)
			mask &^= 1 << uint(i)
			send(i)
		}
	}
}

// InjectStore applies a store received from a remote node: the value is
// written to the local field replica and the analyzer is notified exactly as
// for a local store.
func (n *Node) InjectStore(sn StoreNotice) error {
	fs, ok := n.fields[sn.Field]
	if !ok {
		return fmt.Errorf("p2g: remote store to unknown field %q", sn.Field)
	}
	var res field.StoreResult
	var err error
	switch {
	case sn.Whole:
		arr := sn.Value.Array()
		if arr == nil {
			return fmt.Errorf("p2g: remote whole-field store to %q without array payload", sn.Field)
		}
		res, err = fs.f.StoreAll(sn.Age, arr)
	case sn.Sel != nil:
		arr := sn.Value.Array()
		if arr == nil {
			return fmt.Errorf("p2g: remote slab store to %q without array payload", sn.Field)
		}
		res, err = fs.f.StoreSlice(sn.Age, sn.Sel, arr)
	default:
		res, err = fs.f.Store(sn.Age, sn.Value, sn.Elem...)
	}
	if err != nil {
		return err
	}
	whole := sn.Whole || sn.Sel != nil
	ev := event{fs: fs, age: sn.Age, whole: whole, grew: res.Grew, extents: res.Extents}
	if !whole {
		ev.setElem(sn.Elem)
	}
	n.inject(ev)
	return nil
}

// InjectRemoteDone records that a remote kernel finished all instances of
// one age; its stores' target generations count the producer as done.
func (n *Node) InjectRemoteDone(kernel string, age int) error {
	ks, ok := n.kernels[kernel]
	if !ok {
		return fmt.Errorf("p2g: remote done for unknown kernel %q", kernel)
	}
	n.inject(event{remoteDone: ks, age: age})
	return nil
}

// Stop ends a NoAutoQuiesce node: the analyzer shuts down after draining
// in-flight work.
func (n *Node) Stop() {
	n.inject(event{stop: true})
}

// Idle reports whether the node currently has no dispatched instances and no
// backlogged events. Distributed masters poll this (twice, with stable event
// counts) to detect global quiescence.
func (n *Node) Idle() bool {
	if n.sh != nil {
		// pending counts every unit of in-flight work: buffered batches,
		// control messages, and ready-but-not-done instances.
		return n.sh.pending.Load() == 0
	}
	return n.outstandingMirror.Load() == 0 && len(n.events) == 0
}

func (n *Node) fail(err error) {
	n.errMu.Lock()
	defer n.errMu.Unlock()
	if n.runErr == nil {
		n.runErr = err
	}
}

func (n *Node) failed() bool {
	n.errMu.Lock()
	defer n.errMu.Unlock()
	return n.runErr != nil
}

// kernelMaxAge returns the per-kernel age bound, or MaxAge when none is set.
func (n *Node) kernelMaxAge(ks *kernelState) int {
	if a, ok := n.opts.KernelMaxAge[ks.decl.Name]; ok {
		return a
	}
	return n.opts.MaxAge
}

// Timers exposes the node's deadline timers.
func (n *Node) Timers() *deadline.TimerSet { return n.timers }

// Metrics exposes the node's metrics registry: Options.Metrics when one was
// supplied, otherwise the private registry backing the Report.
func (n *Node) Metrics() *obs.Registry { return n.reg }

// Snapshot returns a copy of a field generation after (or during) a run.
func (n *Node) Snapshot(fieldName string, age int) (*field.Array, error) {
	fs, ok := n.fields[fieldName]
	if !ok {
		return nil, fmt.Errorf("p2g: unknown field %q", fieldName)
	}
	return fs.f.Snapshot(age), nil
}

// Release returns every field generation still live at end of run to the
// slab pools. Mid-run garbage collection only recycles ages whose consumers
// all finished; the youngest generations survive to the end and would
// otherwise be lost to the GC. Call it once final state has been read —
// snapshots are copies and stay valid — after which the node must not run.
func (n *Node) Release() {
	for _, fs := range n.fields {
		fs.f.Release()
	}
}

// FieldMemoryElems reports the total allocated field elements across live
// generations; used by the garbage-collection tests and report.
func (n *Node) FieldMemoryElems() int {
	total := 0
	for _, fs := range n.fields {
		total += fs.f.MemoryElems()
	}
	return total
}

// eventFlushThreshold bounds a worker's local event buffer: the buffer is
// flushed to the analyzer when it reaches this many events, and always before
// the worker blocks on an empty ready queue (otherwise the analyzer could
// wait forever for a done event sitting in a sleeping worker's buffer).
const eventFlushThreshold = 64

// workerState is one worker goroutine's dispatch state: its scheduler slot
// and the local analyzer-event buffers awaiting the next batched flush — one
// buffer per analyzer shard (a single buffer under the serial analyzer).
type workerState struct {
	n    *Node
	id   int // 0-based scheduler slot; tracer lane is id+1 (analyzer is 0)
	bufs [][]event

	// timeAll forces per-instance timing (tracer spans and stage histograms
	// need every instance); otherwise exec samples one instance in
	// timeSampleEvery, paced by tick.
	timeAll bool
	tick    uint

	// frames caches one checked-out execution frame per kernel (indexed by
	// kernelState.idx) so consecutive dispatches skip the sync.Pool, whose
	// dequeue CAS is measurable on the dispatch path. Frames return to their
	// kernel's pool when the worker exits.
	frames []*execFrame
}

// timeSampleEvery is the uninstrumented dispatch path's timing sample rate:
// one instance in this many gets the full time.Now() stamping. Must be a
// power of two (sampling uses a mask).
const timeSampleEvery = 8

func newWorkerState(n *Node, id int) *workerState {
	nb := 1
	if n.sh != nil {
		nb = len(n.sh.shards)
	}
	w := &workerState{n: n, id: id, bufs: make([][]event, nb), timeAll: n.stamp, frames: make([]*execFrame, len(n.order))}
	for i := range w.bufs {
		w.bufs[i] = getEventBuf()
	}
	return w
}

// emit routes one analyzer event to its shard buffer(s). Under the sharded
// analyzer a store event reaches only the shards whose trackers can depend on
// it; an event with an empty route set is dropped here, before it costs a
// channel send or an analyzer wakeup.
func (w *workerState) emit(ev *event) {
	sh := w.n.sh
	if sh == nil {
		w.add(0, ev)
		return
	}
	if ev.isDone {
		w.add(sh.shardOf(ev.t.ks, ev.t.age), ev)
		return
	}
	mask := sh.shardMaskForStore(ev.fs, ev.age, ev.grew)
	for mask != 0 {
		i := bits.TrailingZeros64(mask)
		mask &^= 1 << uint(i)
		w.add(i, ev)
	}
}

// add buffers one event for one shard, flushing at the batching threshold.
// The quiescence count covers a buffer from its first event: the increment
// happens here (empty -> non-empty) and the matching decrement only after the
// flushed batch is fully processed.
func (w *workerState) add(shard int, ev *event) {
	if w.n.sh != nil && len(w.bufs[shard]) == 0 {
		w.n.sh.pending.Add(1)
		w.n.sh.activity.Add(1)
	}
	w.bufs[shard] = append(w.bufs[shard], *ev)
	if len(w.bufs[shard]) >= eventFlushThreshold {
		w.flushShard(shard)
	}
}

// flushShard hands one shard's buffered events to its analyzer as one batch
// (a single channel send) and starts a fresh pooled buffer.
func (w *workerState) flushShard(shard int) {
	if len(w.bufs[shard]) == 0 {
		return
	}
	w.n.mEventBatches.Add(1)
	if w.n.sh != nil {
		w.n.sh.shards[shard].ch <- w.bufs[shard]
	} else {
		w.n.events <- w.bufs[shard]
	}
	w.bufs[shard] = getEventBuf()
}

// flush hands every non-empty buffer to its analyzer shard.
func (w *workerState) flush() {
	for i := range w.bufs {
		w.flushShard(i)
	}
}

// worker is one worker goroutine: it pops batches oldest-age-first and
// executes each instance, buffering store and done events and flushing them
// to the analyzer in batches. The flush-before-block order matters for
// liveness: a worker only blocks in Pop after its buffer has been handed to
// the analyzer, so the done events the analyzer needs to produce more work
// are never stranded.
func (n *Node) worker(id int) {
	defer n.wg.Done()
	w := newWorkerState(n, id)
	defer func() {
		for i, fr := range w.frames {
			if fr != nil {
				n.order[i].frames.Put(fr)
			}
		}
	}()
	for {
		b, ok := n.sched.TryPop(id)
		if !ok {
			w.flush()
			if n.hIdle.enabled() {
				// Blocked on an empty queue: the idle stage of the
				// attribution report (worker-seconds not spent dispatching).
				idleFrom := time.Now()
				b, ok = n.sched.Pop(id)
				n.hIdle.Observe(time.Since(idleFrom))
			} else {
				b, ok = n.sched.Pop(id)
			}
			if !ok {
				return
			}
		}
		for _, is := range b.insts {
			n.exec(b.tracker, is, w)
		}
		releaseBatch(b)
	}
}

// exec runs one kernel instance through its precompiled dispatch plan: check
// out a pooled execution frame, perform fetches, run the body, apply stores,
// buffer events. Dispatch time (everything but the body) and kernel time (the
// body) feed the Table II/III instrumentation. The path allocates nothing for
// element fetches/stores: coordinates evaluate into the frame's scratch.
func (n *Node) exec(t *ageTracker, is *instState, w *workerState) {
	ks := t.ks
	kd := ks.decl
	timed := w.timeAll
	if !timed {
		w.tick++
		// Sample the timing stamps; the extra seed check keeps kernels with
		// fewer instances than the sample period from reporting zero.
		timed = w.tick&(timeSampleEvery-1) == 0 || ks.timedInsts.Load() == 0
	}
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}

	fr := w.frames[ks.idx]
	if fr == nil {
		fr = ks.frames.Get().(*execFrame)
		w.frames[ks.idx] = fr
	}
	ctx := fr.ctx
	ctx.Reset(t.age, is.coords)
	for i := range ks.fetchPlans {
		fp := &ks.fetchPlans[i]
		fe := fp.fe
		g := fe.Age.Eval(t.age)
		switch {
		case fp.whole:
			dst := ctx.FetchDest(fe.Local)
			if fp.viewable {
				if tok, ok := fp.fs.f.FetchViewAll(g, dst); ok {
					fr.views = append(fr.views, tok)
					ctx.BindFetched(fe.Local, field.ArrayVal(dst))
					continue
				}
			}
			fp.fs.f.SnapshotInto(g, dst)
			ctx.BindFetched(fe.Local, field.ArrayVal(dst))
		case fp.slab != nil:
			sel := fr.sel[:len(fp.slab)]
			for d, st := range fp.slab {
				if st.fixed {
					sel[d] = field.SlabDim{Fixed: true, Index: st.term.eval(is.coords)}
				} else {
					sel[d] = field.SlabDim{}
				}
			}
			dst := ctx.FetchDest(fe.Local)
			if fp.viewable {
				if tok, ok := fp.fs.f.FetchViewSlice(g, sel, dst); ok {
					fr.views = append(fr.views, tok)
					ctx.BindFetched(fe.Local, field.ArrayVal(dst))
					continue
				}
			}
			fp.fs.f.FetchSlice(g, sel, dst)
			ctx.BindFetched(fe.Local, field.ArrayVal(dst))
		default:
			idx := evalTerms(fr.idx[:len(fp.terms)], fp.terms, is.coords)
			v, ok := fp.fs.f.At(g, idx...)
			if !ok {
				n.fail(fmt.Errorf("p2g: internal error: %s dispatched before %s(%d)%v was written", kd.Name, fe.Field, g, idx))
				w.emit(&event{isDone: true, t: t, inst: is})
				fr.releaseViews()
				fr.ctx.Reset(0, nil)
				return
			}
			ctx.BindFetched(fe.Local, v)
		}
	}

	var t1 time.Time
	if timed {
		t1 = time.Now()
	}
	err := n.runBody(kd, ctx)
	var t2 time.Time
	if timed {
		t2 = time.Now()
	}

	stores := 0
	if err != nil {
		n.fail(fmt.Errorf("p2g: kernel %s(age=%d): %w", kd.Name, t.age, err))
	} else {
		for i := range ks.storePlans {
			sp := &ks.storePlans[i]
			ss := sp.ss
			if !ctx.Bound(ss.Local) {
				continue
			}
			g := ss.Age.Eval(t.age)
			ev := event{fs: sp.fs, age: g}
			var res field.StoreResult
			var serr error
			var sel []field.SlabDim
			switch {
			case sp.slab != nil:
				sel = fr.sel[:len(sp.slab)]
				for d, st := range sp.slab {
					if st.fixed {
						sel[d] = field.SlabDim{Fixed: true, Index: st.term.eval(is.coords)}
					} else {
						sel[d] = field.SlabDim{}
					}
				}
				res, serr = sp.fs.f.StoreSlice(g, sel, ctx.Get(ss.Local).Array())
				// A slab store covers a whole sub-region at once; the
				// analyzer handles it like a whole store (scanSatisfy
				// re-checks element fetches against field contents).
				ev.whole = true
			case sp.terms == nil:
				res, serr = sp.fs.f.StoreAll(g, ctx.Get(ss.Local).Array())
				ev.whole = true
			default:
				idx := evalTerms(fr.idx[:len(sp.terms)], sp.terms, is.coords)
				res, serr = sp.fs.f.Store(g, ctx.Get(ss.Local), idx...)
				ev.setElem(idx)
			}
			if serr != nil {
				n.fail(fmt.Errorf("p2g: kernel %s(age=%d): %w", kd.Name, t.age, serr))
				break
			}
			stores++
			if n.opts.OnStore != nil {
				val := ctx.Get(ss.Local)
				var elem []int
				var selCopy []field.SlabDim
				switch {
				case sp.slab != nil:
					val = field.ArrayVal(val.Array().Clone())
					selCopy = append([]field.SlabDim(nil), sel...)
				case sp.terms == nil:
					val = field.ArrayVal(val.Array().Clone())
				default:
					elem = append([]int(nil), fr.idx[:len(sp.terms)]...)
				}
				n.opts.OnStore(StoreNotice{Field: ss.Field, Age: g, Elem: elem, Whole: sp.terms == nil && sp.slab == nil, Sel: selCopy, Value: val})
			}
			ev.grew = res.Grew
			ev.extents = res.Extents
			w.emit(&ev)
		}
	}
	ks.instances.Add(1)
	ks.storeOps.Add(int64(stores))

	if timed {
		t3 := time.Now()
		ks.timedInsts.Add(1)
		ks.dispatchNs.Add(int64(t1.Sub(t0) + t3.Sub(t2)))
		ks.kernelNs.Add(int64(t2.Sub(t1)))

		// Detailed metrics and tracing (nil handles are no-ops; with a
		// registry or tracer attached timeAll covers every instance, so
		// the histograms and spans below are never sampled).
		n.mDispatches.Add(1)
		n.hFetch.Observe(t1.Sub(t0))
		n.hKernel.Observe(t2.Sub(t1))
		n.hStore.Observe(t3.Sub(t2))
		if n.stamp {
			// t0 on the node's stage clock; with tracing on this equals the
			// span timestamp, so queue wait is identical in both views.
			ts := t0.Sub(n.clock).Nanoseconds()
			wait := int64(0)
			if is.readyNs > 0 && ts > is.readyNs {
				wait = ts - is.readyNs
			}
			ks.stageQueue.Observe(time.Duration(wait))
			ks.stageFetch.Observe(t1.Sub(t0))
			ks.stageExec.Observe(t2.Sub(t1))
			ks.stageStore.Observe(t3.Sub(t2))
			if tr := n.tracer; tr != nil {
				tr.Record(obs.Span{
					Name: kd.Name, Cat: "kernel", Ph: obs.PhaseComplete,
					TS: ts, Dur: t3.Sub(t0).Nanoseconds(), TID: w.id + 1,
					Age: t.age, Index: is.coords,
					WaitNs:   wait,
					FetchNs:  t1.Sub(t0).Nanoseconds(),
					KernelNs: t2.Sub(t1).Nanoseconds(),
					StoreNs:  t3.Sub(t2).Nanoseconds(),
				})
			}
		}
	}

	done := event{isDone: true, t: t, inst: is, stores: stores, stopped: ctx.Stopped()}
	w.emit(&done)
	// The frame stays checked out in w.frames; drop the slab views (stores
	// are applied, nothing reads the aliased generations anymore) and clear
	// the context so the cached frame does not pin fetched values between
	// dispatches.
	fr.releaseViews()
	fr.ctx.Reset(0, nil)
}

// runBody executes the kernel body, converting panics into errors so a buggy
// kernel fails the run instead of crashing the node.
func (n *Node) runBody(kd *core.KernelDecl, ctx *core.Ctx) (err error) {
	if kd.Body == nil {
		return nil
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return kd.Body(ctx)
}
