package runtime

import "sync"

// Pools backing the allocation-free dispatch path. All three are
// process-global (not per-node): the pooled objects carry no node identity,
// and sharing them lets concurrent nodes (tests, the distributed layer)
// amortize each other's warm-up.

// eventsPool recycles the event slices workers flush to the analyzer. The
// pool stores *[]event so checkouts do not box a slice header.
var eventsPool = sync.Pool{
	New: func() any {
		s := make([]event, 0, eventFlushThreshold)
		return &s
	},
}

// getEventBuf returns an empty event buffer with batching capacity.
func getEventBuf() []event {
	return *eventsPool.Get().(*[]event)
}

// putEventBuf clears a processed batch (events hold tracker and field-state
// pointers) and returns it to the pool.
func putEventBuf(evs []event) {
	for i := range evs {
		evs[i] = event{}
	}
	evs = evs[:0]
	eventsPool.Put(&evs)
}

// batchPool recycles dispatch batches and their instance slices between the
// analyzer's flushPending and the workers.
var batchPool = sync.Pool{New: func() any { return new(batch) }}

func getBatch() *batch { return batchPool.Get().(*batch) }

// releaseBatch clears a consumed batch so pooled batches do not pin trackers
// or instances, and returns it for reuse.
func releaseBatch(b *batch) {
	for i := range b.insts {
		b.insts[i] = nil
	}
	b.insts = b.insts[:0]
	b.tracker = nil
	batchPool.Put(b)
}

// instPool recycles instance states. Recycling is only safe when tracing is
// disabled: the tracer's span ring retains is.coords past the instance's
// lifetime, and a recycled instance would rewrite those coordinates in place.
// The analyzer gates its use of the pool on tracer == nil.
var instPool = sync.Pool{New: func() any { return new(instState) }}
