// Package runtime implements a P2G execution node: the paper's low-level
// scheduler (LLS). It consists of a dependency analyzer running in a
// dedicated goroutine — exactly as the prototype in the paper runs its
// analyzer in a dedicated thread — plus a pool of worker goroutines that
// dispatch kernel instances from age-ordered ready queues.
//
// The analyzer receives store/resize/done events from running kernel
// instances, derives every new valid combination of age and index variables
// that became runnable, and enqueues them. Ready instances are dispatched
// oldest-age-first so that aging cycles (mul2/plus5) cannot starve younger
// work, and each instance is dispatched exactly once (write-once semantics
// make re-execution meaningless).
//
// Two ready-queue implementations exist: the work-stealing per-worker deques
// of sched.go (the default) and the single global priority queue below (the
// reference implementation, selectable with Options.Scheduler for A/B
// comparison).
package runtime

import (
	"container/heap"
	"sync"
)

// batch is the unit of dispatch: one or more kernel instances of the same
// kernel and age, combined by the data-granularity coarsening described in
// §V-A of the paper. With granularity 1 every batch holds a single instance.
type batch struct {
	tracker *ageTracker
	insts   []*instState
}

// ageHeap is a min-heap of ages with non-empty buckets.
type ageHeap []int

func (h ageHeap) Len() int           { return len(h) }
func (h ageHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h ageHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *ageHeap) Push(x any)        { *h = append(*h, x.(int)) }
func (h *ageHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// readyQueue is the node-wide priority queue of dispatchable batches, ordered
// by age (oldest first) and FIFO within an age. Pop blocks until a batch is
// available or the queue is closed.
type readyQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	buckets map[int][]*batch
	ages    ageHeap
	closed  bool
	queued  int
}

func newReadyQueue() *readyQueue {
	q := &readyQueue{buckets: make(map[int][]*batch)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues a batch at its tracker's age.
func (q *readyQueue) Push(b *batch) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	age := b.tracker.age
	if _, ok := q.buckets[age]; !ok {
		heap.Push(&q.ages, age)
	}
	q.buckets[age] = append(q.buckets[age], b)
	q.queued += len(b.insts)
	q.cond.Signal()
}

// PushBulk enqueues many batches under one lock acquisition with a single
// consumer broadcast (see scheduler.PushBulk).
func (q *readyQueue) PushBulk(bs []*batch) {
	if len(bs) == 0 {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	for _, b := range bs {
		age := b.tracker.age
		if _, ok := q.buckets[age]; !ok {
			heap.Push(&q.ages, age)
		}
		q.buckets[age] = append(q.buckets[age], b)
		q.queued += len(b.insts)
	}
	q.cond.Broadcast()
}

// popLocked removes the oldest-age batch, or nil when the queue is empty.
// Caller holds mu.
func (q *readyQueue) popLocked() *batch {
	for len(q.ages) > 0 {
		age := q.ages[0]
		bucket := q.buckets[age]
		if len(bucket) == 0 {
			heap.Pop(&q.ages)
			delete(q.buckets, age)
			continue
		}
		b := bucket[0]
		// Nil the popped slot: the age bucket keeps its backing array alive
		// for FIFO reslicing, and without this every popped batch would be
		// retained for the life of the bucket.
		bucket[0] = nil
		q.buckets[age] = bucket[1:]
		q.queued -= len(b.insts)
		return b
	}
	return nil
}

// Pop removes the oldest-age batch, blocking until one is available. The
// second result is false once the queue is closed and drained. The worker
// argument is unused (this is the global reference queue).
func (q *readyQueue) Pop(int) (*batch, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if b := q.popLocked(); b != nil {
			return b, true
		}
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
}

// TryPop removes the oldest-age batch without blocking; false when the queue
// is currently empty.
func (q *readyQueue) TryPop(int) (*batch, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.popLocked()
	return b, b != nil
}

// Close wakes all blocked consumers; queued batches may still be popped.
func (q *readyQueue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// Len returns the number of queued instances (not batches).
func (q *readyQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queued
}
