//go:build race

package runtime

// raceEnabled reports whether the race detector is active; allocation-count
// assertions skip under it because instrumentation allocates.
const raceEnabled = true
