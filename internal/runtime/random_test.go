package runtime

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/field"
)

// TestRandomPipelines builds randomized multi-stage element-wise pipelines —
// random stage counts, widths, age offsets, fan-in — runs them on the real
// node with random worker counts and granularities, and checks every field
// generation against a direct sequential evaluation. This is the broadest
// correctness net over the dependency analyzer: domain growth, completeness
// propagation, aging edges and scheduling order all have to be right for
// every topology drawn.
func TestRandomPipelines(t *testing.T) {
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial) * 7919))
			runRandomPipeline(t, rng)
		})
	}
}

type stage struct {
	mulAdd [2]int64 // value' = value*mul + add
	// srcA, srcB: indices of upstream fields (srcB = -1 for unary).
	srcA, srcB int
	// delay: the age offset of the store (0 or 1); fetches are at age a.
	delay int
}

func runRandomPipeline(t *testing.T, rng *rand.Rand) {
	t.Helper()
	width := 1 + rng.Intn(6)
	nStages := 1 + rng.Intn(5)
	maxAge := 1 + rng.Intn(5)

	// Field 0 is the seed; field i+1 is produced by stage i.
	stages := make([]stage, nStages)
	for i := range stages {
		s := stage{
			mulAdd: [2]int64{int64(1 + rng.Intn(3)), int64(rng.Intn(7))},
			srcA:   rng.Intn(i + 1),
			srcB:   -1,
			delay:  0,
		}
		if rng.Intn(3) == 0 {
			s.srcB = rng.Intn(i + 1)
		}
		// At least one stage must close an aging cycle back to field 0 to
		// keep the program alive across ages; give each stage a chance.
		if rng.Intn(4) == 0 {
			s.delay = 1
		}
		stages[i] = s
	}

	b := core.NewBuilder("random")
	for i := 0; i <= nStages; i++ {
		b.Field(fmt.Sprintf("f%d", i), field.Int64, 1, true)
	}
	seed := make([]int64, width)
	for i := range seed {
		seed[i] = int64(rng.Intn(100))
	}
	b.Kernel("init").
		Local("vals", field.Int64, 1).
		StoreAll("f0", core.AgeAt(0), "vals").
		Body(func(c *core.Ctx) error {
			for i, v := range seed {
				c.Array("vals").Put(field.Int64Val(v), i)
			}
			return nil
		})
	// A driver keeps f0 alive for later ages: f0(a+1)[x] = f_last(a)[x] + 1.
	last := fmt.Sprintf("f%d", nStages)
	b.Kernel("driver").Age("a").Index("x").
		Local("v", field.Int64, 0).
		Fetch("v", last, core.AgeVar(0), core.Idx("x")).
		Store("f0", core.AgeVar(1), []core.IndexSpec{core.Idx("x")}, "v").
		Body(func(c *core.Ctx) error {
			c.SetInt64("v", c.Int64("v")+1)
			return nil
		})
	for i, s := range stages {
		s := s
		kb := b.Kernel(fmt.Sprintf("stage%d", i)).Age("a").Index("x").
			Local("a1", field.Int64, 0).
			Fetch("a1", fmt.Sprintf("f%d", s.srcA), core.AgeVar(0), core.Idx("x"))
		if s.srcB >= 0 {
			kb.Local("a2", field.Int64, 0).
				Fetch("a2", fmt.Sprintf("f%d", s.srcB), core.AgeVar(0), core.Idx("x"))
		}
		kb.Local("out", field.Int64, 0).
			Store(fmt.Sprintf("f%d", i+1), core.AgeVar(s.delay), []core.IndexSpec{core.Idx("x")}, "out").
			Body(func(c *core.Ctx) error {
				v := c.Int64("a1")*s.mulAdd[0] + s.mulAdd[1]
				if s.srcB >= 0 {
					v += c.Int64("a2")
				}
				c.SetInt64("out", v)
				return nil
			})
	}
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("building random program: %v", err)
	}

	// The delayed stores make some generations arrive from two ages; that
	// can violate write-once (stage with delay 1 and the same target as a
	// delay-0 producer). Our generator gives each field exactly one
	// producer kernel, except f0 (init + driver, different ages). Check
	// schedulability and skip genuinely unsatisfiable draws.
	workers := 1 + rng.Intn(8)
	opts := Options{Workers: workers, MaxAge: maxAge}
	if rng.Intn(2) == 0 {
		opts.Granularity = map[string]int{"stage0": 1 + rng.Intn(4)}
	}
	node, err := NewNode(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.Run(); err != nil {
		t.Fatalf("run (workers=%d): %v", workers, err)
	}

	// Sequential reference: evaluate generation by generation.
	ref := make([]map[int][]int64, nStages+1) // field -> age -> values
	for i := range ref {
		ref[i] = map[int][]int64{}
	}
	ref[0][0] = append([]int64(nil), seed...)
	for a := 0; ; a++ {
		if _, ok := ref[0][a]; !ok {
			break
		}
		for i, s := range stages {
			src, ok := ref[s.srcA][a]
			if !ok {
				continue
			}
			var srcB []int64
			if s.srcB >= 0 {
				srcB, ok = ref[s.srcB][a]
				if !ok {
					continue // the real instance never becomes runnable either
				}
			}
			out := make([]int64, width)
			for x := 0; x < width; x++ {
				v := src[x]*s.mulAdd[0] + s.mulAdd[1]
				if srcB != nil {
					v += srcB[x]
				}
				out[x] = v
			}
			ref[i+1][a+s.delay] = out
		}
		// Driver.
		if lastVals, ok := ref[nStages][a]; ok && a+1 <= maxAge {
			next := make([]int64, width)
			for x := range lastVals {
				next[x] = lastVals[x] + 1
			}
			ref[0][a+1] = next
		}
		if a > maxAge+1 {
			break
		}
	}

	// Compare every generation the reference produced within the bound.
	for fi := 0; fi <= nStages; fi++ {
		for a, want := range ref[fi] {
			if a > maxAge {
				continue
			}
			// Generations whose producing kernel ran beyond maxAge are
			// absent; skip unproduced ones.
			s, err := node.Snapshot(fmt.Sprintf("f%d", fi), a)
			if err != nil {
				t.Fatal(err)
			}
			if s.Extent(0) == 0 {
				continue // bounded out
			}
			if s.Extent(0) != width {
				t.Fatalf("f%d(%d) extent %d, want %d", fi, a, s.Extent(0), width)
			}
			for x := 0; x < width; x++ {
				if got := s.At(x).Int64(); got != want[x] {
					t.Fatalf("f%d(%d)[%d] = %d, want %d (workers=%d)", fi, a, x, got, want[x], workers)
				}
			}
		}
	}
}
