package runtime

import (
	"fmt"
	"sort"

	"repro/internal/field"
)

// Generation replay: after a worker failure, the master re-sends a rebuilt
// worker the stores it would have received from the start of the run. The
// master's shadow node holds every forwarded generation, so replay is a pure
// re-encode of shadow state into the existing StoreFrame wire format —
// idempotent by construction, because write-once fields make a replayed store
// either the first write of its position (applied) or a duplicate (merged
// away under MergeStores).

// FieldAges returns the live ages of one field in ascending order. It is the
// replay iteration order: generations replay oldest-first so growth patterns
// on the receiver match the original run.
func (n *Node) FieldAges(fieldName string) ([]int, error) {
	fs, ok := n.fields[fieldName]
	if !ok {
		return nil, fmt.Errorf("p2g: unknown field %q", fieldName)
	}
	ages := fs.f.Ages()
	sort.Ints(ages)
	return ages, nil
}

// EncodeGenerationFrame re-encodes one field generation of this node into a
// StoreFrame for replay to a rebuilt worker. A fully-written generation
// becomes a single whole-field entry; a partially-written one is walked
// element-wise so unwritten positions stay unwritten on the receiver (a
// whole-field store would mark them written with zero values, and a consumer
// probing At would then see a different world than the original run). A
// generation with no writes returns (nil, nil) — there is nothing to replay.
//
// The returned frame comes from the frame pool; the caller owns it and should
// PutStoreFrame it after sending.
func (n *Node) EncodeGenerationFrame(fieldName string, age int) (*StoreFrame, error) {
	fs, ok := n.fields[fieldName]
	if !ok {
		return nil, fmt.Errorf("p2g: unknown field %q", fieldName)
	}
	f := fs.f
	writes := f.Writes(age)
	if writes == 0 {
		return nil, nil
	}
	rank := f.Rank()
	extents := make([]int, rank)
	total := 1
	for d := 0; d < rank; d++ {
		extents[d] = f.Extent(age, d)
		total *= extents[d]
	}
	fr := GetStoreFrame()
	fr.Reset(fieldName, age)
	if writes == total {
		arr := f.Snapshot(age)
		if err := fr.Add(StoreNotice{Field: fieldName, Age: age, Whole: true, Value: field.ArrayVal(arr)}); err != nil {
			PutStoreFrame(fr)
			return nil, err
		}
		return fr, nil
	}
	// Partially-written generation: element-wise walk over the extent box,
	// emitting only positions that were actually written.
	idx := make([]int, rank)
	for flat := 0; flat < total; flat++ {
		if v, ok := f.At(age, idx...); ok {
			elem := append([]int(nil), idx...)
			if err := fr.Add(StoreNotice{Field: fieldName, Age: age, Elem: elem, Value: v}); err != nil {
				PutStoreFrame(fr)
				return nil, err
			}
		}
		for d := rank - 1; d >= 0; d-- {
			idx[d]++
			if idx[d] < extents[d] {
				break
			}
			idx[d] = 0
		}
	}
	return fr, nil
}
