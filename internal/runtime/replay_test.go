package runtime

import (
	"testing"

	"repro/internal/field"
)

// TestEncodeGenerationFrame covers the replay encoder's three shapes — a
// fully written generation collapses to one whole-store entry, a partially
// written one is encoded element-wise (exactly the written positions), and an
// age with no writes yields no frame at all — plus the round trip: frames
// injected into a merge-tolerant node (twice, as a failover replay might
// race re-execution) must reproduce the source state exactly.
func TestEncodeGenerationFrame(t *testing.T) {
	prog := frameEquivProg(t)
	src, stopSrc := newShadow(t, prog)

	// fi(0): partial — elements 0, 2, 4 of what grows to an extent-5 gen.
	for _, i := range []int{0, 2, 4} {
		if err := src.InjectStore(StoreNotice{Field: "fi", Age: 0, Elem: []int{i}, Value: field.Int32Val(int32(10 + i))}); err != nil {
			t.Fatal(err)
		}
	}
	// fi(1): fully written element by element — must encode as one whole store.
	for i := 0; i < 3; i++ {
		if err := src.InjectStore(StoreNotice{Field: "fi", Age: 1, Elem: []int{i}, Value: field.Int32Val(int32(i))}); err != nil {
			t.Fatal(err)
		}
	}
	// ff(0): stored whole.
	whole := field.NewArray(field.Float64, 2, 3)
	for i := 0; i < whole.Len(); i++ {
		whole.SetFlat(field.Float64Val(float64(i)/2), i)
	}
	if err := src.InjectStore(StoreNotice{Field: "ff", Age: 0, Whole: true, Value: field.ArrayVal(whole)}); err != nil {
		t.Fatal(err)
	}
	stopSrc()

	if ages, err := src.FieldAges("fi"); err != nil || len(ages) != 2 || ages[0] != 0 || ages[1] != 1 {
		t.Fatalf("FieldAges(fi) = %v, %v", ages, err)
	}
	if _, err := src.FieldAges("zzz"); err == nil {
		t.Fatal("FieldAges on unknown field succeeded")
	}
	if fr, err := src.EncodeGenerationFrame("fu", 7); err != nil || fr != nil {
		t.Fatalf("empty generation encoded to %v, %v; want nil frame", fr, err)
	}
	if _, err := src.EncodeGenerationFrame("zzz", 0); err == nil {
		t.Fatal("encoding unknown field succeeded")
	}

	type genCase struct {
		field     string
		age       int
		entries   int
		wantWhole bool
	}
	cases := []genCase{
		{"fi", 0, 3, false},
		{"fi", 1, 1, true},
		{"ff", 0, 1, true},
	}

	// Destination configured exactly like a rebuilt failover worker: all
	// kernels remote, merge-tolerant stores. Every frame is injected twice —
	// replay must be idempotent.
	remote := map[string]bool{"s1": true, "s2": true, "s3": true}
	dst, err := NewNode(prog, Options{Workers: 1, RemoteKernels: remote, NoAutoQuiesce: true, MergeStores: true})
	if err != nil {
		t.Fatal(err)
	}
	dstDone := make(chan struct{})
	go func() {
		defer close(dstDone)
		_, _ = dst.Run()
	}()

	for _, tc := range cases {
		fr, err := src.EncodeGenerationFrame(tc.field, tc.age)
		if err != nil {
			t.Fatalf("%s(%d): %v", tc.field, tc.age, err)
		}
		if fr == nil {
			t.Fatalf("%s(%d): no frame", tc.field, tc.age)
		}
		var n int
		var sawWhole bool
		if err := DecodeStoreFrame(fr.Bytes(), func(sn StoreNotice) error {
			n++
			sawWhole = sawWhole || sn.Whole
			return nil
		}); err != nil {
			t.Fatalf("%s(%d): decode: %v", tc.field, tc.age, err)
		}
		if n != tc.entries || sawWhole != tc.wantWhole {
			t.Errorf("%s(%d): %d entries (whole=%v), want %d (whole=%v)",
				tc.field, tc.age, n, sawWhole, tc.entries, tc.wantWhole)
		}
		if err := dst.InjectStoreFrame(fr.Bytes()); err != nil {
			t.Fatalf("%s(%d): inject: %v", tc.field, tc.age, err)
		}
		if err := dst.InjectStoreFrame(fr.Bytes()); err != nil {
			t.Fatalf("%s(%d): duplicate inject: %v", tc.field, tc.age, err)
		}
		PutStoreFrame(fr)
	}
	dst.Stop()
	<-dstDone

	for _, tc := range cases {
		want, err := src.Snapshot(tc.field, tc.age)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dst.Snapshot(tc.field, tc.age)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("%s(%d): replayed %v, source %v", tc.field, tc.age, got, want)
		}
	}
	dst.Release()
}
