package runtime

import (
	"fmt"
	"strings"
	"time"
)

// KernelStats holds per-kernel instrumentation: the number of instances
// dispatched, total dispatch overhead (context construction, fetches, store
// application and event emission) and total time in kernel code. These are
// the three columns of the paper's Tables II and III.
type KernelStats struct {
	Name          string
	Instances     int64
	DispatchTotal time.Duration
	KernelTotal   time.Duration
	// StoreOps counts store statements that actually fired; with the
	// per-instance done event they make up the analyzer's event load.
	StoreOps int64
}

// DispatchPer returns the mean dispatch overhead per instance.
func (s KernelStats) DispatchPer() time.Duration {
	if s.Instances == 0 {
		return 0
	}
	return s.DispatchTotal / time.Duration(s.Instances)
}

// KernelPer returns the mean kernel-code time per instance.
func (s KernelStats) KernelPer() time.Duration {
	if s.Instances == 0 {
		return 0
	}
	return s.KernelTotal / time.Duration(s.Instances)
}

// Report summarizes one run of an execution node. It is a projection of the
// node's metrics registry (internal/obs): every number here is read from
// registry counters, so live /metricz scrapes and the post-run report can
// never disagree.
type Report struct {
	// Wall is the end-to-end running time (what figures 9 and 10 plot).
	Wall time.Duration
	// Kernels lists per-kernel instrumentation in declaration order.
	Kernels []KernelStats
	// Stalled lists kernel-ages that never completed; non-empty means the
	// program quiesced with unsatisfied dependencies.
	Stalled []string
	// FieldMemElems is the number of field element slots still allocated
	// at the end of the run (after garbage collection, if enabled).
	FieldMemElems int

	// Scheduler queue high-water marks: the deepest the ready queue got
	// (instances) and the largest analyzer event backlog observed (in event
	// batches, the channel's unit). Under the sharded analyzer both are the
	// maximum across shards, so concurrent shards cannot understate them.
	MaxQueueDepth   int
	MaxEventBacklog int

	// AnalyzerShards is the shard count of the sharded dependency analyzer
	// (0 when the serial reference analyzer ran). ShardEvents counts the
	// events each shard processed and ShardMaxBacklog each shard's event
	// backlog high-water mark; together they show how evenly the
	// (kernel, age) hash spread the analyzer load.
	AnalyzerShards  int
	ShardEvents     []int64
	ShardMaxBacklog []int

	// Scheduler fast-path counters: batches taken from a peer's deque by the
	// work-stealing scheduler (always zero under SchedGlobal) and event
	// batches delivered to the analyzer.
	Steals       int64
	EventBatches int64

	// Transport counters, filled in by the distributed layer (zero for
	// purely local runs): protocol messages and encoded bytes exchanged
	// with the master.
	SentMsgs  int64
	RecvMsgs  int64
	SentBytes int64
	RecvBytes int64

	// Stages is the per-stage latency attribution (nil unless the node ran
	// with a caller-supplied metrics registry): where the run's
	// worker-seconds and instance lifetimes went, decomposed into the fixed
	// stage model of ISSUE 6 / the paper's §VIII-B analysis.
	Stages *StageTotals
}

// StageTotals attributes a run's time to the fixed stage model. Two groups:
//
//   - Worker-clock stages (FetchNs, ExecNs, StoreNs, IdleNs): what each
//     worker goroutine was doing; they sum to ~workers × wall, which is what
//     Coverage checks.
//   - Instance-clock stages (ReadyWaitNs, QueueWaitNs, FlightNs): latency an
//     instance experienced while workers were free to do other things; they
//     diagnose where pipelines stall (analyzer, scheduler, network) but do
//     not sum with the worker-clock group.
type StageTotals struct {
	// Workers is the worker-goroutine count behind the worker-clock stages
	// (summed across nodes after MergeReports).
	Workers int

	ReadyWaitNs int64 // instance created -> dependencies satisfied (analyzer-ready wait)
	QueueWaitNs int64 // ready -> picked up by a worker (queue wait)
	FetchNs     int64 // context construction + fetches
	ExecNs      int64 // kernel bodies
	StoreNs     int64 // store application + event emission
	IdleNs      int64 // workers blocked on an empty ready queue
	FlightNs    int64 // dist messages in flight (clock-offset corrected)

	// Analyzer-clock lane (sharded analyzer only; zero under the serial
	// reference analyzer): AnalyzeNs sums every shard's event/control
	// processing busy time, AnalyzeMaxShardNs is the busiest single shard,
	// and WallNs is the run's wall time — their ratio is a measured analyzer
	// occupancy, replacing the inferred ready-wait heuristic.
	AnalyzeNs         int64
	AnalyzeMaxShardNs int64
	WallNs            int64
}

// BusyNs is the dispatching part of the worker-clock stages.
func (s *StageTotals) BusyNs() int64 { return s.FetchNs + s.ExecNs + s.StoreNs }

// AttributedNs is the total worker-clock time the stage model accounts for.
func (s *StageTotals) AttributedNs() int64 { return s.BusyNs() + s.IdleNs }

// Coverage reports the fraction of the run's worker-seconds (wall × Workers)
// the worker-clock stages attribute; close to 1.0 means the stage model
// explains the run. When Workers exceeds GOMAXPROCS the denominator
// over-counts the CPU actually available — time a worker spends runnable but
// descheduled lands in no stage — so coverage is only a tight bound when the
// host has a core per worker.
func (s *StageTotals) Coverage(wall time.Duration) float64 {
	denom := float64(wall.Nanoseconds()) * float64(s.Workers)
	if denom <= 0 {
		return 0
	}
	return float64(s.AttributedNs()) / denom
}

// AnalyzerSaturated flags the paper's §VIII-B signature: the dependency
// analyzer is the bottleneck and adding workers will not help. With the
// sharded analyzer's measured busy fractions available, the flag is direct:
// the busiest shard was occupied more than 75% of the wall time while workers
// sat idle longer than they dispatched. Without measurements (serial
// analyzer) it falls back to the inferred heuristic: instances spend far
// longer waiting to be marked ready than workers spend dispatching them
// (ready-wait > 2× busy and idle > busy).
func (s *StageTotals) AnalyzerSaturated() bool {
	busy := s.BusyNs()
	if s.AnalyzeMaxShardNs > 0 && s.WallNs > 0 {
		return 4*s.AnalyzeMaxShardNs > 3*s.WallNs && s.IdleNs > busy
	}
	return s.ReadyWaitNs > 2*busy && s.IdleNs > busy
}

// add folds other's totals into s. Busy time sums; the busiest-shard mark and
// wall take the maximum (per-node walls overlap, they do not concatenate).
func (s *StageTotals) add(other *StageTotals) {
	s.Workers += other.Workers
	s.ReadyWaitNs += other.ReadyWaitNs
	s.QueueWaitNs += other.QueueWaitNs
	s.FetchNs += other.FetchNs
	s.ExecNs += other.ExecNs
	s.StoreNs += other.StoreNs
	s.IdleNs += other.IdleNs
	s.FlightNs += other.FlightNs
	s.AnalyzeNs += other.AnalyzeNs
	if other.AnalyzeMaxShardNs > s.AnalyzeMaxShardNs {
		s.AnalyzeMaxShardNs = other.AnalyzeMaxShardNs
	}
	if other.WallNs > s.WallNs {
		s.WallNs = other.WallNs
	}
}

// analyzerStats is the analyzer-side summary buildReport consumes, produced
// by both implementations (analyzer.stats, shardedAnalyzer.stats) so the
// report code is analyzer-agnostic. The high-water marks are already
// aggregated (maximum across shards).
type analyzerStats struct {
	maxQueue   int
	maxBacklog int
	stalled    []string

	shards          int // 0 for the serial analyzer
	shardEvents     []int64
	shardBacklogMax []int
	analyzeNs       []int64 // per-shard event/control busy time
}

// stats summarizes the serial analyzer for the report.
func (an *analyzer) stats(failed bool) analyzerStats {
	st := analyzerStats{maxQueue: an.maxQueue, maxBacklog: an.maxBacklog}
	if !failed {
		st.stalled = an.stalled()
	}
	return st
}

// stats summarizes the sharded analyzer for the report, max-aggregating the
// per-shard high-water marks (a sum would be meaningless for marks taken on
// concurrent shards, and taking one shard's value would understate the run).
func (sa *shardedAnalyzer) stats(failed bool) analyzerStats {
	st := analyzerStats{shards: len(sa.shards)}
	for _, s := range sa.shards {
		if s.maxQueue > st.maxQueue {
			st.maxQueue = s.maxQueue
		}
		if s.maxBacklog > st.maxBacklog {
			st.maxBacklog = s.maxBacklog
		}
		st.shardEvents = append(st.shardEvents, s.events.Own())
		st.shardBacklogMax = append(st.shardBacklogMax, s.maxBacklog)
		st.analyzeNs = append(st.analyzeNs, s.busyNs)
	}
	if !failed {
		st.stalled = sa.stalled()
	}
	return st
}

func (n *Node) buildReport(wall time.Duration, an analyzerStats) *Report {
	r := &Report{
		Wall:            wall,
		FieldMemElems:   n.FieldMemoryElems(),
		MaxQueueDepth:   an.maxQueue,
		MaxEventBacklog: an.maxBacklog,
		AnalyzerShards:  an.shards,
		ShardEvents:     an.shardEvents,
		ShardMaxBacklog: an.shardBacklogMax,
		Steals:          n.mSteals.Own(),
		EventBatches:    n.mEventBatches.Own(),
		Stalled:         an.stalled,
	}
	n.gFieldMem.Set(int64(r.FieldMemElems))
	for _, ks := range n.order {
		inst := ks.ownInstances()
		disp, kern := ks.ownDispatchNs(), ks.ownKernelNs()
		// Without a tracer or registry, timing is sampled (timeSampleEvery):
		// extrapolate the totals from the sampled mean so DispatchPer and
		// KernelPer stay per-instance means either way.
		if timed := ks.timedInsts.Load(); timed > 0 && timed < inst {
			disp = disp * inst / timed
			kern = kern * inst / timed
		}
		r.Kernels = append(r.Kernels, KernelStats{
			Name:          ks.decl.Name,
			Instances:     inst,
			DispatchTotal: time.Duration(disp),
			KernelTotal:   time.Duration(kern),
			StoreOps:      ks.ownStoreOps(),
		})
	}
	if n.hIdle.enabled() {
		st := &StageTotals{Workers: n.opts.Workers, IdleNs: n.hIdle.OwnNs(), WallNs: wall.Nanoseconds()}
		for _, ks := range n.order {
			st.ReadyWaitNs += ks.stageReady.OwnNs()
			st.QueueWaitNs += ks.stageQueue.OwnNs()
			st.FetchNs += ks.stageFetch.OwnNs()
			st.ExecNs += ks.stageExec.OwnNs()
			st.StoreNs += ks.stageStore.OwnNs()
		}
		for _, ns := range an.analyzeNs {
			st.AnalyzeNs += ns
			if ns > st.AnalyzeMaxShardNs {
				st.AnalyzeMaxShardNs = ns
			}
		}
		r.Stages = st
	}
	return r
}

// MergeReports combines per-node reports into one aggregate: instance counts,
// times, field memory and transport traffic sum per kernel/node, wall time
// and queue high-water marks take the maximum. Used by the distributed
// master to feed a whole-cluster profile back into repartitioning.
func MergeReports(reports ...*Report) *Report {
	merged := &Report{}
	idx := map[string]int{}
	for _, r := range reports {
		if r == nil {
			continue
		}
		if r.Wall > merged.Wall {
			merged.Wall = r.Wall
		}
		merged.Stalled = append(merged.Stalled, r.Stalled...)
		merged.FieldMemElems += r.FieldMemElems
		if r.MaxQueueDepth > merged.MaxQueueDepth {
			merged.MaxQueueDepth = r.MaxQueueDepth
		}
		if r.MaxEventBacklog > merged.MaxEventBacklog {
			merged.MaxEventBacklog = r.MaxEventBacklog
		}
		if r.AnalyzerShards > merged.AnalyzerShards {
			merged.AnalyzerShards = r.AnalyzerShards
		}
		for i, ev := range r.ShardEvents {
			if i < len(merged.ShardEvents) {
				merged.ShardEvents[i] += ev
			} else {
				merged.ShardEvents = append(merged.ShardEvents, ev)
			}
		}
		for i, bl := range r.ShardMaxBacklog {
			if i < len(merged.ShardMaxBacklog) {
				if bl > merged.ShardMaxBacklog[i] {
					merged.ShardMaxBacklog[i] = bl
				}
			} else {
				merged.ShardMaxBacklog = append(merged.ShardMaxBacklog, bl)
			}
		}
		merged.Steals += r.Steals
		merged.EventBatches += r.EventBatches
		merged.SentMsgs += r.SentMsgs
		merged.RecvMsgs += r.RecvMsgs
		merged.SentBytes += r.SentBytes
		merged.RecvBytes += r.RecvBytes
		if r.Stages != nil {
			if merged.Stages == nil {
				merged.Stages = &StageTotals{}
			}
			merged.Stages.add(r.Stages)
		}
		for _, k := range r.Kernels {
			i, ok := idx[k.Name]
			if !ok {
				idx[k.Name] = len(merged.Kernels)
				merged.Kernels = append(merged.Kernels, k)
				continue
			}
			m := &merged.Kernels[i]
			m.Instances += k.Instances
			m.DispatchTotal += k.DispatchTotal
			m.KernelTotal += k.KernelTotal
			m.StoreOps += k.StoreOps
		}
	}
	return merged
}

// Kernel returns the stats row for the named kernel, or a zero row.
func (r *Report) Kernel(name string) KernelStats {
	for _, k := range r.Kernels {
		if k.Name == name {
			return k
		}
	}
	return KernelStats{}
}

// TotalInstances sums dispatched instances across kernels.
func (r *Report) TotalInstances() int64 {
	var t int64
	for _, k := range r.Kernels {
		t += k.Instances
	}
	return t
}

// fmtMicros renders a duration as microseconds with the unit attached, so
// header and row cells can share one column width.
func fmtMicros(d time.Duration) string {
	return fmt.Sprintf("%.2f µs", float64(d)/1e3)
}

// Table renders the report in the layout of the paper's micro-benchmark
// tables: kernel, instances, mean dispatch time, mean kernel time. Header
// and rows use identical column widths, so the columns stay aligned. Queue
// and transport summary lines follow when the run recorded them.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %10s %16s %16s\n", "Kernel", "Instances", "Dispatch Time", "Kernel Time")
	for _, k := range r.Kernels {
		fmt.Fprintf(&b, "%-16s %10d %16s %16s\n",
			k.Name, k.Instances, fmtMicros(k.DispatchPer()), fmtMicros(k.KernelPer()))
	}
	if r.MaxQueueDepth > 0 || r.MaxEventBacklog > 0 {
		fmt.Fprintf(&b, "queue: max depth %d insts, max event backlog %d batches, %d steals, %d event batches\n",
			r.MaxQueueDepth, r.MaxEventBacklog, r.Steals, r.EventBatches)
	}
	if r.AnalyzerShards > 0 {
		fmt.Fprintf(&b, "analyzer: %d shards, events per shard %v, max backlog per shard %v\n",
			r.AnalyzerShards, r.ShardEvents, r.ShardMaxBacklog)
	}
	if r.SentMsgs > 0 || r.RecvMsgs > 0 {
		fmt.Fprintf(&b, "transport: sent %d msgs / %d B, received %d msgs / %d B\n",
			r.SentMsgs, r.SentBytes, r.RecvMsgs, r.RecvBytes)
	}
	if r.Stages != nil {
		b.WriteString(r.Attribution())
	}
	return b.String()
}

// fmtMillis renders a duration as milliseconds for the attribution table.
func fmtMillis(ns int64) string {
	return fmt.Sprintf("%.2f ms", float64(ns)/1e6)
}

// Attribution renders the per-stage latency attribution: the worker-clock
// stages with their share of the run's worker-seconds, the instance-clock
// wait stages, and the analyzer-saturation flag (§VIII-B). Empty when the
// run collected no stage timers.
func (r *Report) Attribution() string {
	s := r.Stages
	if s == nil {
		return ""
	}
	var b strings.Builder
	workerNs := r.Wall.Nanoseconds() * int64(s.Workers)
	pct := func(ns int64) string {
		if workerNs <= 0 {
			return "    -"
		}
		return fmt.Sprintf("%4.1f%%", 100*float64(ns)/float64(workerNs))
	}
	fmt.Fprintf(&b, "stage attribution (wall %v, %d workers = %s of worker time):\n",
		r.Wall.Round(time.Microsecond), s.Workers, fmtMillis(workerNs))
	fmt.Fprintf(&b, "  %-12s %14s %s of worker time\n", "fetch", fmtMillis(s.FetchNs), pct(s.FetchNs))
	fmt.Fprintf(&b, "  %-12s %14s %s of worker time\n", "exec", fmtMillis(s.ExecNs), pct(s.ExecNs))
	fmt.Fprintf(&b, "  %-12s %14s %s of worker time\n", "store", fmtMillis(s.StoreNs), pct(s.StoreNs))
	fmt.Fprintf(&b, "  %-12s %14s %s of worker time\n", "idle", fmtMillis(s.IdleNs), pct(s.IdleNs))
	fmt.Fprintf(&b, "  %-12s %14s %s attributed\n", "total", fmtMillis(s.AttributedNs()),
		pct(s.AttributedNs()))
	fmt.Fprintf(&b, "  %-12s %14s (instance-clock: analyzer-ready wait)\n", "ready-wait", fmtMillis(s.ReadyWaitNs))
	fmt.Fprintf(&b, "  %-12s %14s (instance-clock: ready-queue wait)\n", "queue-wait", fmtMillis(s.QueueWaitNs))
	if s.AnalyzeNs > 0 {
		occ := "    -"
		if s.WallNs > 0 {
			occ = fmt.Sprintf("%4.1f%%", 100*float64(s.AnalyzeMaxShardNs)/float64(s.WallNs))
		}
		fmt.Fprintf(&b, "  %-12s %14s (analyzer-clock: shard busy time, busiest shard %s of wall)\n",
			"analyze", fmtMillis(s.AnalyzeNs), occ)
	}
	if s.FlightNs > 0 {
		fmt.Fprintf(&b, "  %-12s %14s (instance-clock: dist transport flight)\n", "flight", fmtMillis(s.FlightNs))
	}
	if s.AnalyzerSaturated() {
		b.WriteString("  WARNING: analyzer saturated — ready-wait dominates dispatch time while workers idle (§VIII-B); adding workers will not scale\n")
	}
	return b.String()
}
