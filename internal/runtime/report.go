package runtime

import (
	"fmt"
	"strings"
	"time"
)

// KernelStats holds per-kernel instrumentation: the number of instances
// dispatched, total dispatch overhead (context construction, fetches, store
// application and event emission) and total time in kernel code. These are
// the three columns of the paper's Tables II and III.
type KernelStats struct {
	Name          string
	Instances     int64
	DispatchTotal time.Duration
	KernelTotal   time.Duration
	// StoreOps counts store statements that actually fired; with the
	// per-instance done event they make up the analyzer's event load.
	StoreOps int64
}

// DispatchPer returns the mean dispatch overhead per instance.
func (s KernelStats) DispatchPer() time.Duration {
	if s.Instances == 0 {
		return 0
	}
	return s.DispatchTotal / time.Duration(s.Instances)
}

// KernelPer returns the mean kernel-code time per instance.
func (s KernelStats) KernelPer() time.Duration {
	if s.Instances == 0 {
		return 0
	}
	return s.KernelTotal / time.Duration(s.Instances)
}

// Report summarizes one run of an execution node. It is a projection of the
// node's metrics registry (internal/obs): every number here is read from
// registry counters, so live /metricz scrapes and the post-run report can
// never disagree.
type Report struct {
	// Wall is the end-to-end running time (what figures 9 and 10 plot).
	Wall time.Duration
	// Kernels lists per-kernel instrumentation in declaration order.
	Kernels []KernelStats
	// Stalled lists kernel-ages that never completed; non-empty means the
	// program quiesced with unsatisfied dependencies.
	Stalled []string
	// FieldMemElems is the number of field element slots still allocated
	// at the end of the run (after garbage collection, if enabled).
	FieldMemElems int

	// Scheduler queue high-water marks: the deepest the ready queue got
	// (instances) and the largest analyzer event backlog observed (in event
	// batches, the channel's unit).
	MaxQueueDepth   int
	MaxEventBacklog int

	// Scheduler fast-path counters: batches taken from a peer's deque by the
	// work-stealing scheduler (always zero under SchedGlobal) and event
	// batches delivered to the analyzer.
	Steals       int64
	EventBatches int64

	// Transport counters, filled in by the distributed layer (zero for
	// purely local runs): protocol messages and encoded bytes exchanged
	// with the master.
	SentMsgs  int64
	RecvMsgs  int64
	SentBytes int64
	RecvBytes int64
}

func (n *Node) buildReport(wall time.Duration, an *analyzer) *Report {
	r := &Report{
		Wall:            wall,
		FieldMemElems:   n.FieldMemoryElems(),
		MaxQueueDepth:   an.maxQueue,
		MaxEventBacklog: an.maxBacklog,
		Steals:          n.mSteals.Own(),
		EventBatches:    n.mEventBatches.Own(),
	}
	n.gFieldMem.Set(int64(r.FieldMemElems))
	for _, ks := range n.order {
		r.Kernels = append(r.Kernels, KernelStats{
			Name:          ks.decl.Name,
			Instances:     ks.ownInstances(),
			DispatchTotal: time.Duration(ks.ownDispatchNs()),
			KernelTotal:   time.Duration(ks.ownKernelNs()),
			StoreOps:      ks.ownStoreOps(),
		})
	}
	if !n.failed() {
		r.Stalled = an.stalled()
	}
	return r
}

// MergeReports combines per-node reports into one aggregate: instance counts,
// times, field memory and transport traffic sum per kernel/node, wall time
// and queue high-water marks take the maximum. Used by the distributed
// master to feed a whole-cluster profile back into repartitioning.
func MergeReports(reports ...*Report) *Report {
	merged := &Report{}
	idx := map[string]int{}
	for _, r := range reports {
		if r == nil {
			continue
		}
		if r.Wall > merged.Wall {
			merged.Wall = r.Wall
		}
		merged.Stalled = append(merged.Stalled, r.Stalled...)
		merged.FieldMemElems += r.FieldMemElems
		if r.MaxQueueDepth > merged.MaxQueueDepth {
			merged.MaxQueueDepth = r.MaxQueueDepth
		}
		if r.MaxEventBacklog > merged.MaxEventBacklog {
			merged.MaxEventBacklog = r.MaxEventBacklog
		}
		merged.Steals += r.Steals
		merged.EventBatches += r.EventBatches
		merged.SentMsgs += r.SentMsgs
		merged.RecvMsgs += r.RecvMsgs
		merged.SentBytes += r.SentBytes
		merged.RecvBytes += r.RecvBytes
		for _, k := range r.Kernels {
			i, ok := idx[k.Name]
			if !ok {
				idx[k.Name] = len(merged.Kernels)
				merged.Kernels = append(merged.Kernels, k)
				continue
			}
			m := &merged.Kernels[i]
			m.Instances += k.Instances
			m.DispatchTotal += k.DispatchTotal
			m.KernelTotal += k.KernelTotal
			m.StoreOps += k.StoreOps
		}
	}
	return merged
}

// Kernel returns the stats row for the named kernel, or a zero row.
func (r *Report) Kernel(name string) KernelStats {
	for _, k := range r.Kernels {
		if k.Name == name {
			return k
		}
	}
	return KernelStats{}
}

// TotalInstances sums dispatched instances across kernels.
func (r *Report) TotalInstances() int64 {
	var t int64
	for _, k := range r.Kernels {
		t += k.Instances
	}
	return t
}

// fmtMicros renders a duration as microseconds with the unit attached, so
// header and row cells can share one column width.
func fmtMicros(d time.Duration) string {
	return fmt.Sprintf("%.2f µs", float64(d)/1e3)
}

// Table renders the report in the layout of the paper's micro-benchmark
// tables: kernel, instances, mean dispatch time, mean kernel time. Header
// and rows use identical column widths, so the columns stay aligned. Queue
// and transport summary lines follow when the run recorded them.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %10s %16s %16s\n", "Kernel", "Instances", "Dispatch Time", "Kernel Time")
	for _, k := range r.Kernels {
		fmt.Fprintf(&b, "%-16s %10d %16s %16s\n",
			k.Name, k.Instances, fmtMicros(k.DispatchPer()), fmtMicros(k.KernelPer()))
	}
	if r.MaxQueueDepth > 0 || r.MaxEventBacklog > 0 {
		fmt.Fprintf(&b, "queue: max depth %d insts, max event backlog %d batches, %d steals, %d event batches\n",
			r.MaxQueueDepth, r.MaxEventBacklog, r.Steals, r.EventBatches)
	}
	if r.SentMsgs > 0 || r.RecvMsgs > 0 {
		fmt.Fprintf(&b, "transport: sent %d msgs / %d B, received %d msgs / %d B\n",
			r.SentMsgs, r.SentBytes, r.RecvMsgs, r.RecvBytes)
	}
	return b.String()
}
