package runtime

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestTableGolden pins the exact table layout: header and row cells share
// column widths, so the Dispatch/Kernel columns cannot drift.
func TestTableGolden(t *testing.T) {
	r := &Report{
		Kernels: []KernelStats{
			{Name: "mul2", Instances: 500, DispatchTotal: 500 * 12340 * time.Nanosecond, KernelTotal: 500 * 1230 * time.Nanosecond},
			{Name: "print", Instances: 1, DispatchTotal: 2160 * time.Microsecond, KernelTotal: 170 * time.Microsecond},
		},
	}
	want := "" +
		"Kernel            Instances    Dispatch Time      Kernel Time\n" +
		"mul2                    500         12.34 µs          1.23 µs\n" +
		"print                     1       2160.00 µs        170.00 µs\n"
	if got := r.Table(); got != want {
		t.Errorf("Table() =\n%s\nwant:\n%s", got, want)
	}
}

// TestTableSummaryLines checks the queue and transport footers appear when
// the run recorded them.
func TestTableSummaryLines(t *testing.T) {
	r := &Report{
		Kernels:         []KernelStats{{Name: "k", Instances: 1}},
		MaxQueueDepth:   7,
		MaxEventBacklog: 3,
		Steals:          2,
		EventBatches:    5,
		SentMsgs:        10, SentBytes: 2048, RecvMsgs: 4, RecvBytes: 512,
	}
	got := r.Table()
	for _, want := range []string{
		"queue: max depth 7 insts, max event backlog 3 batches, 2 steals, 5 event batches",
		"transport: sent 10 msgs / 2048 B, received 4 msgs / 512 B",
	} {
		if !bytes.Contains([]byte(got), []byte(want)) {
			t.Errorf("Table() missing %q:\n%s", want, got)
		}
	}
}

// TestMergeReportsFieldMem covers the former bug where the merged
// FieldMemElems was always zero, plus the new transport/queue columns.
func TestMergeReportsFieldMem(t *testing.T) {
	a := &Report{
		Wall: 2 * time.Second, FieldMemElems: 100,
		MaxQueueDepth: 5, MaxEventBacklog: 2,
		Steals: 3, EventBatches: 7,
		SentMsgs: 10, RecvMsgs: 20, SentBytes: 1000, RecvBytes: 2000,
		Kernels: []KernelStats{{Name: "k", Instances: 3}},
	}
	b := &Report{
		Wall: 3 * time.Second, FieldMemElems: 42,
		MaxQueueDepth: 9, MaxEventBacklog: 1,
		Steals: 1, EventBatches: 2,
		SentMsgs: 1, RecvMsgs: 2, SentBytes: 30, RecvBytes: 40,
		Kernels: []KernelStats{{Name: "k", Instances: 4}},
	}
	m := MergeReports(a, nil, b)
	if m.FieldMemElems != 142 {
		t.Errorf("merged FieldMemElems = %d, want 142", m.FieldMemElems)
	}
	if m.Wall != 3*time.Second {
		t.Errorf("merged Wall = %v, want max 3s", m.Wall)
	}
	if m.MaxQueueDepth != 9 || m.MaxEventBacklog != 2 {
		t.Errorf("merged queue columns = %d/%d, want 9/2", m.MaxQueueDepth, m.MaxEventBacklog)
	}
	if m.Steals != 4 || m.EventBatches != 9 {
		t.Errorf("merged scheduler counters = %d steals/%d batches, want 4/9", m.Steals, m.EventBatches)
	}
	if m.SentMsgs != 11 || m.RecvMsgs != 22 || m.SentBytes != 1030 || m.RecvBytes != 2040 {
		t.Errorf("merged transport = %+v", m)
	}
	if m.Kernel("k").Instances != 7 {
		t.Errorf("merged instances = %d, want 7", m.Kernel("k").Instances)
	}
}

// TestReportProjectsRegistry runs a program with an external registry and
// checks the report and the registry agree exactly — the report is a
// projection, not a second set of books.
func TestReportProjectsRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	rep, err := Run(mulSum(t), Options{Workers: 2, MaxAge: 3, Output: io.Discard, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range rep.Kernels {
		c := reg.Counter(obs.Label(obs.MKernelInstances, "kernel", k.Name))
		if c.Load() != k.Instances {
			t.Errorf("kernel %s: registry %d vs report %d", k.Name, c.Load(), k.Instances)
		}
	}
	if got := reg.Counter(obs.MDispatchesTotal).Load(); got != rep.TotalInstances() {
		t.Errorf("dispatches counter = %d, want %d", got, rep.TotalInstances())
	}
	if got := reg.Histogram(obs.MKernelNs).Count(); got != rep.TotalInstances() {
		t.Errorf("kernel histogram count = %d, want %d", got, rep.TotalInstances())
	}
	if got := reg.Gauge(obs.MFieldMemElems).Load(); got != int64(rep.FieldMemElems) {
		t.Errorf("field mem gauge = %d, report %d", got, rep.FieldMemElems)
	}
	if rep.MaxQueueDepth <= 0 {
		t.Errorf("MaxQueueDepth = %d, want > 0", rep.MaxQueueDepth)
	}
}

// TestSharedRegistryTwoRuns reuses one registry across two nodes: the
// second report must count only its own instances (baseline subtraction).
func TestSharedRegistryTwoRuns(t *testing.T) {
	reg := obs.NewRegistry()
	r1, err := Run(mulSum(t), Options{Workers: 1, MaxAge: 2, Output: io.Discard, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(mulSum(t), Options{Workers: 1, MaxAge: 2, Output: io.Discard, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalInstances() != r2.TotalInstances() {
		t.Errorf("reports differ across identical runs: %d vs %d", r1.TotalInstances(), r2.TotalInstances())
	}
	want := r1.TotalInstances() + r2.TotalInstances()
	if got := reg.Counter(obs.MDispatchesTotal).Load(); got != want {
		t.Errorf("shared registry total = %d, want %d", got, want)
	}
}

// TestTraceRoundTripRun runs a real program with tracing and checks the
// exported file is valid Chrome trace_event JSON with one complete slice per
// kernel instance, each carrying kernel name, age and index args.
func TestTraceRoundTripRun(t *testing.T) {
	tr := obs.NewTracer(1 << 14)
	rep, err := Run(mulSum(t), Options{Workers: 2, MaxAge: 3, Output: io.Discard, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Cat  string         `json:"cat"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var slices, commits int64
	kernels := map[string]bool{}
	for _, ev := range f.TraceEvents {
		switch {
		case ev.Ph == "X" && ev.Cat == "kernel":
			slices++
			kernels[ev.Name] = true
			if _, ok := ev.Args["age"]; !ok {
				t.Fatalf("slice %q missing age arg", ev.Name)
			}
			if ev.Name == "mul2" {
				if _, ok := ev.Args["index"]; !ok {
					t.Fatalf("indexed kernel slice missing index arg")
				}
			}
		case ev.Ph == "i" && ev.Cat == "commit":
			commits++
		}
	}
	if want := rep.TotalInstances(); slices != want || commits != want {
		t.Errorf("trace has %d slices / %d commits, want %d each", slices, commits, want)
	}
	for _, k := range rep.Kernels {
		if k.Instances > 0 && !kernels[k.Name] {
			t.Errorf("no slice for kernel %q", k.Name)
		}
	}
}
