package runtime

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/field"
)

// mulSum builds the paper's figure 5 program. The print kernel emits exactly
// the sequences from §V: {10..14} {20,22,...} for age 0, and so on.
func mulSum(t testing.TB) *core.Program {
	t.Helper()
	b := core.NewBuilder("mulsum")
	b.Field("m_data", field.Int32, 1, true)
	b.Field("p_data", field.Int32, 1, true)

	b.Kernel("init").
		Local("values", field.Int32, 1).
		StoreAll("m_data", core.AgeAt(0), "values").
		Body(func(c *core.Ctx) error {
			vs := c.Array("values")
			for i := 0; i < 5; i++ {
				vs.Put(field.Int32Val(int32(i+10)), i)
			}
			return nil
		})

	b.Kernel("mul2").Age("a").Index("x").
		Local("value", field.Int32, 0).
		Fetch("value", "m_data", core.AgeVar(0), core.Idx("x")).
		Store("p_data", core.AgeVar(0), []core.IndexSpec{core.Idx("x")}, "value").
		Body(func(c *core.Ctx) error {
			c.SetInt32("value", c.Int32("value")*2)
			return nil
		})

	b.Kernel("plus5").Age("a").Index("x").
		Local("value", field.Int32, 0).
		Fetch("value", "p_data", core.AgeVar(0), core.Idx("x")).
		Store("m_data", core.AgeVar(1), []core.IndexSpec{core.Idx("x")}, "value").
		Body(func(c *core.Ctx) error {
			c.SetInt32("value", c.Int32("value")+5)
			return nil
		})

	b.Kernel("print").Age("a").
		Local("m", field.Int32, 1).
		Local("p", field.Int32, 1).
		FetchAll("m", "m_data", core.AgeVar(0)).
		FetchAll("p", "p_data", core.AgeVar(0)).
		Body(func(c *core.Ctx) error {
			m, p := c.Array("m"), c.Array("p")
			var sb strings.Builder
			for i := 0; i < m.Extent(0); i++ {
				fmt.Fprintf(&sb, "%d ", m.At(i).Int32())
			}
			sb.WriteByte('\n')
			for i := 0; i < p.Extent(0); i++ {
				fmt.Fprintf(&sb, "%d ", p.At(i).Int32())
			}
			sb.WriteByte('\n')
			c.Printf("%s", sb.String())
			return nil
		})

	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestMul2Plus5Golden reproduces the exact output sequence from §V of the
// paper: the first age prints {10..14},{20,22,24,26,28} and the second
// {25,27,29,31,33},{50,54,58,62,66}.
func TestMul2Plus5Golden(t *testing.T) {
	var out strings.Builder
	rep, err := Run(mulSum(t), Options{Workers: 1, MaxAge: 1, Output: &out})
	if err != nil {
		t.Fatal(err)
	}
	want := "10 11 12 13 14 \n20 22 24 26 28 \n25 27 29 31 33 \n50 54 58 62 66 \n"
	if out.String() != want {
		t.Errorf("output:\n%q\nwant:\n%q", out.String(), want)
	}
	if got := rep.Kernel("init").Instances; got != 1 {
		t.Errorf("init instances = %d", got)
	}
	if got := rep.Kernel("mul2").Instances; got != 10 {
		t.Errorf("mul2 instances = %d, want 10 (5 per age x 2 ages)", got)
	}
	if got := rep.Kernel("plus5").Instances; got != 10 {
		t.Errorf("plus5 instances = %d", got)
	}
	if got := rep.Kernel("print").Instances; got != 2 {
		t.Errorf("print instances = %d", got)
	}
	if len(rep.Stalled) != 0 {
		t.Errorf("stalled: %v", rep.Stalled)
	}
}

// expectedMulSum computes m_data/p_data generations sequentially.
func expectedMulSum(ages int) (m, p [][]int32) {
	cur := []int32{10, 11, 12, 13, 14}
	for a := 0; a <= ages; a++ {
		m = append(m, append([]int32(nil), cur...))
		pd := make([]int32, len(cur))
		for i, v := range cur {
			pd[i] = v * 2
		}
		p = append(p, pd)
		next := make([]int32, len(pd))
		for i, v := range pd {
			next[i] = v + 5
		}
		cur = next
	}
	return
}

func checkMulSumFields(t *testing.T, n *Node, maxAge int) {
	t.Helper()
	m, p := expectedMulSum(maxAge)
	for a := 0; a <= maxAge; a++ {
		ms, err := n.Snapshot("m_data", a)
		if err != nil {
			t.Fatal(err)
		}
		ps, err := n.Snapshot("p_data", a)
		if err != nil {
			t.Fatal(err)
		}
		if !ms.Equal(field.ArrayFromInt32(m[a])) {
			t.Errorf("m_data(%d) = %v, want %v", a, ms, m[a])
		}
		if !ps.Equal(field.ArrayFromInt32(p[a])) {
			t.Errorf("p_data(%d) = %v, want %v", a, ps, p[a])
		}
	}
}

// TestMul2Plus5ParallelDeterminism runs the cyclic program across worker
// counts and asserts the field contents are identical — the determinism the
// write-once semantics guarantee regardless of scheduling.
func TestMul2Plus5ParallelDeterminism(t *testing.T) {
	const maxAge = 20
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			n, err := NewNode(mulSum(t), Options{Workers: workers, MaxAge: maxAge})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := n.Run()
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Stalled) != 0 {
				t.Fatalf("stalled: %v", rep.Stalled)
			}
			checkMulSumFields(t, n, maxAge)
		})
	}
}

func TestGranularityCoarseningEquivalence(t *testing.T) {
	const maxAge = 10
	for _, gran := range []int{2, 5, 64} {
		t.Run(fmt.Sprintf("gran=%d", gran), func(t *testing.T) {
			n, err := NewNode(mulSum(t), Options{
				Workers:     4,
				MaxAge:      maxAge,
				Granularity: map[string]int{"mul2": gran, "plus5": gran},
			})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := n.Run()
			if err != nil {
				t.Fatal(err)
			}
			if got := rep.Kernel("mul2").Instances; got != int64(5*(maxAge+1)) {
				t.Errorf("mul2 instances = %d", got)
			}
			checkMulSumFields(t, n, maxAge)
		})
	}
}

func TestAdaptiveGranularity(t *testing.T) {
	n, err := NewNode(mulSum(t), Options{Workers: 4, MaxAge: 40, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stalled) != 0 {
		t.Fatalf("stalled: %v", rep.Stalled)
	}
	checkMulSumFields(t, n, 40)
}

// TestFusedProgramEquivalence verifies the fig. 4 Age=3 task-combining
// transform end to end: the fused program produces identical fields.
func TestFusedProgramEquivalence(t *testing.T) {
	fp, err := core.Fuse(mulSum(t), "mul2", "plus5")
	if err != nil {
		t.Fatal(err)
	}
	const maxAge = 15
	n, err := NewNode(fp, Options{Workers: 4, MaxAge: maxAge})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stalled) != 0 {
		t.Fatalf("stalled: %v", rep.Stalled)
	}
	checkMulSumFields(t, n, maxAge)
	if got := rep.Kernel("mul2+plus5").Instances; got != int64(5*(maxAge+1)) {
		t.Errorf("fused instances = %d", got)
	}
}

// TestSourceKernel verifies the continuation rule: a source kernel runs
// sequentially by age until it stops storing (the paper's read/splitYUV loop:
// 51 instances for 50 frames).
func TestSourceKernel(t *testing.T) {
	b := core.NewBuilder("src")
	b.Field("frames", field.Int32, 1, true)
	b.Field("out", field.Int32, 1, true)
	const frames = 50
	b.Kernel("read").Age("a").
		Local("frame", field.Int32, 1).
		StoreAll("frames", core.AgeVar(0), "frame").
		Body(func(c *core.Ctx) error {
			if c.Age() >= frames {
				return nil // EOF: store nothing
			}
			fr := c.Array("frame")
			for i := 0; i < 4; i++ {
				fr.Put(field.Int32Val(int32(c.Age()*10+i)), i)
			}
			return nil
		})
	b.Kernel("enc").Age("a").Index("x").
		Local("v", field.Int32, 0).
		Fetch("v", "frames", core.AgeVar(0), core.Idx("x")).
		Store("out", core.AgeVar(0), []core.IndexSpec{core.Idx("x")}, "v").
		Body(func(c *core.Ctx) error {
			c.SetInt32("v", c.Int32("v")+1)
			return nil
		})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(p, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Kernel("read").Instances; got != frames+1 {
		t.Errorf("read instances = %d, want %d (one extra EOF instance)", got, frames+1)
	}
	if got := rep.Kernel("enc").Instances; got != frames*4 {
		t.Errorf("enc instances = %d, want %d", got, frames*4)
	}
	if len(rep.Stalled) != 0 {
		t.Errorf("stalled: %v", rep.Stalled)
	}
	s, _ := n.Snapshot("out", 7)
	if !s.Equal(field.ArrayFromInt32([]int32{71, 72, 73, 74})) {
		t.Errorf("out(7) = %v", s)
	}
}

// TestEmptyGenerationCompletes checks the end-of-stream rule: a consumer with
// a whole-field fetch still runs on the empty final generation (the paper's
// 51st VLC/write instance).
func TestEmptyGenerationCompletes(t *testing.T) {
	b := core.NewBuilder("eos")
	b.Field("data", field.Int32, 1, true)
	var sizes []int
	var mu strings.Builder
	_ = mu
	b.Kernel("src").Age("a").
		Local("vals", field.Int32, 1).
		StoreAll("data", core.AgeVar(0), "vals").
		Body(func(c *core.Ctx) error {
			if c.Age() >= 3 {
				return nil
			}
			c.Array("vals").Put(field.Int32Val(int32(c.Age())), 0)
			return nil
		})
	b.Kernel("sink").Age("a").
		Local("d", field.Int32, 1).
		FetchAll("d", "data", core.AgeVar(0)).
		Body(func(c *core.Ctx) error {
			sizes = append(sizes, c.Array("d").Extent(0))
			return nil
		})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(p, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Kernel("sink").Instances; got != 4 {
		t.Fatalf("sink instances = %d, want 4 (ages 0..3, last empty)", got)
	}
	want := []int{1, 1, 1, 0}
	for i, w := range want {
		if sizes[i] != w {
			t.Errorf("sink age %d saw extent %d, want %d", i, sizes[i], w)
		}
	}
}

// TestAbsoluteAgeFetch exercises the K-means pattern: a constant dataset
// stored once at age 0 and fetched by every age of an iterating kernel.
func TestAbsoluteAgeFetch(t *testing.T) {
	b := core.NewBuilder("abs")
	b.Field("data", field.Int32, 1, true)
	b.Field("acc", field.Int32, 1, true)
	b.Kernel("init").
		Local("d", field.Int32, 1).
		StoreAll("data", core.AgeAt(0), "d").
		Body(func(c *core.Ctx) error {
			for i := 0; i < 8; i++ {
				c.Array("d").Put(field.Int32Val(int32(i)), i)
			}
			return nil
		})
	b.Kernel("seed").
		Local("s", field.Int32, 1).
		StoreAll("acc", core.AgeAt(0), "s").
		Body(func(c *core.Ctx) error {
			c.Array("s").Put(field.Int32Val(0), 0)
			return nil
		})
	// step(a): acc(a+1)[x] = acc(a)[0] + data(0)[x] summed... simplified:
	// each age adds the constant dataset element to a running value.
	b.Kernel("step").Age("a").Index("x").
		Local("base", field.Int32, 0).
		Local("v", field.Int32, 0).
		Local("outv", field.Int32, 0).
		Fetch("base", "acc", core.AgeVar(0), core.Lit(0)).
		Fetch("v", "data", core.AgeAt(0), core.Idx("x")).
		Store("acc", core.AgeVar(1), []core.IndexSpec{core.Lit(0)}, "outv").
		Body(func(c *core.Ctx) error {
			if c.Index("x") == 0 {
				c.SetInt32("outv", c.Int32("base")+1)
			}
			return nil
		})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(p, Options{Workers: 4, MaxAge: 5})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	// step has 8 instances per age (range of x from data(0)), ages 0..5.
	if got := rep.Kernel("step").Instances; got != 48 {
		t.Errorf("step instances = %d, want 48", got)
	}
	s, _ := n.Snapshot("acc", 5)
	if s.At(0).Int32() != 5 {
		t.Errorf("acc(5)[0] = %v, want 5", s.At(0))
	}
}

// TestRunOnceWithIndexVars exercises a run-once kernel whose domain grows
// with an absolute-age field written element by element.
func TestRunOnceWithIndexVars(t *testing.T) {
	b := core.NewBuilder("grid")
	b.Field("m", field.Int32, 2, true)
	b.Field("out", field.Int32, 2, true)
	b.Kernel("fill").
		Local("v", field.Int32, 0).
		Store("m", core.AgeAt(0), []core.IndexSpec{core.Lit(0), core.Lit(0)}, "v").
		Body(func(c *core.Ctx) error {
			c.SetInt32("v", 1)
			return nil
		})
	b.Kernel("fill2").
		Local("v", field.Int32, 0).
		Store("m", core.AgeAt(0), []core.IndexSpec{core.Lit(2), core.Lit(3)}, "v").
		Body(func(c *core.Ctx) error {
			c.SetInt32("v", 7)
			return nil
		})
	b.Kernel("scale").Index("x", "y").
		Local("v", field.Int32, 0).
		Fetch("v", "m", core.AgeAt(0), core.Idx("x"), core.Idx("y")).
		Store("out", core.AgeAt(0), []core.IndexSpec{core.Idx("x"), core.Idx("y")}, "v").
		Body(func(c *core.Ctx) error {
			c.SetInt32("v", c.Int32("v")*10)
			return nil
		})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(p, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Only 2 of the 12 domain cells are ever written, so only 2 scale
	// instances can run; the rest wait forever and the run reports them.
	if got := rep.Kernel("scale").Instances; got != 2 {
		t.Errorf("scale instances = %d, want 2", got)
	}
	if len(rep.Stalled) == 0 {
		t.Error("expected stalled kernel-ages (10 unwritten cells)")
	}
	out, _ := n.Snapshot("out", 0)
	if out.At(0, 0).Int32() != 10 || out.At(2, 3).Int32() != 70 {
		t.Errorf("out = %v", out)
	}
}

func TestMaxAgeBoundsInfinitePrograms(t *testing.T) {
	rep, err := Run(mulSum(t), Options{Workers: 2, MaxAge: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Kernel("print").Instances; got != 4 {
		t.Errorf("print instances = %d, want 4 (ages 0..3)", got)
	}
}

func TestStallDetection(t *testing.T) {
	b := core.NewBuilder("stall")
	b.Field("f", field.Int32, 1, true)
	b.Field("g", field.Int32, 1, true)
	b.Kernel("init").
		Local("v", field.Int32, 0).
		Store("f", core.AgeAt(0), []core.IndexSpec{core.Lit(0)}, "v").
		Body(func(c *core.Ctx) error { c.SetInt32("v", 1); return nil })
	// waiter fetches element 5, which nobody ever writes.
	b.Kernel("waiter").Age("a").
		Local("v", field.Int32, 0).
		Fetch("v", "f", core.AgeVar(0), core.Lit(5)).
		Store("g", core.AgeVar(0), []core.IndexSpec{core.Lit(0)}, "v").
		Body(nil)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(p, Options{Workers: 2, MaxAge: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stalled) == 0 {
		t.Fatal("expected a stalled kernel-age")
	}
	if !strings.Contains(rep.Stalled[0], "waiter") {
		t.Errorf("stalled = %v", rep.Stalled)
	}
}

func TestKernelErrorPropagates(t *testing.T) {
	b := core.NewBuilder("err")
	b.Field("f", field.Int32, 1, true)
	sentinel := errors.New("boom")
	b.Kernel("bad").
		Local("v", field.Int32, 0).
		Store("f", core.AgeAt(0), []core.IndexSpec{core.Lit(0)}, "v").
		Body(func(c *core.Ctx) error { return sentinel })
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(p, Options{Workers: 2}); !errors.Is(err, sentinel) {
		t.Fatalf("Run error = %v, want wrapped sentinel", err)
	}
}

func TestKernelPanicBecomesError(t *testing.T) {
	b := core.NewBuilder("panic")
	b.Field("f", field.Int32, 1, true)
	b.Kernel("bad").
		Local("v", field.Int32, 0).
		Store("f", core.AgeAt(0), []core.IndexSpec{core.Lit(0)}, "v").
		Body(func(c *core.Ctx) error { panic("kaboom") })
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(p, Options{Workers: 2})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("Run error = %v, want panic message", err)
	}
}

func TestWriteOnceViolationFailsRun(t *testing.T) {
	b := core.NewBuilder("dup")
	b.Field("f", field.Int32, 1, true)
	mk := func(name string) {
		b.Kernel(name).
			Local("v", field.Int32, 0).
			Store("f", core.AgeAt(0), []core.IndexSpec{core.Lit(0)}, "v").
			Body(func(c *core.Ctx) error { c.SetInt32("v", 1); return nil })
	}
	mk("w1")
	mk("w2")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(p, Options{Workers: 2})
	if !errors.Is(err, field.ErrWriteTwice) {
		t.Fatalf("Run error = %v, want write-once violation", err)
	}
}

func TestGarbageCollection(t *testing.T) {
	const maxAge = 40
	withGC, err := NewNode(mulSum(t), Options{Workers: 2, MaxAge: maxAge, GC: true})
	if err != nil {
		t.Fatal(err)
	}
	repGC, err := withGC.Run()
	if err != nil {
		t.Fatal(err)
	}
	without, err := NewNode(mulSum(t), Options{Workers: 2, MaxAge: maxAge})
	if err != nil {
		t.Fatal(err)
	}
	repNo, err := without.Run()
	if err != nil {
		t.Fatal(err)
	}
	if repGC.FieldMemElems >= repNo.FieldMemElems {
		t.Errorf("GC kept %d elems, no-GC kept %d; GC should retain fewer",
			repGC.FieldMemElems, repNo.FieldMemElems)
	}
	// GC must not change results that are still live (the last ages are
	// never collected because their consumers only complete at the end).
	if repGC.Kernel("print").Instances != repNo.Kernel("print").Instances {
		t.Error("GC changed instance counts")
	}
}

func TestReportTableFormat(t *testing.T) {
	rep, err := Run(mulSum(t), Options{Workers: 1, MaxAge: 1})
	if err != nil {
		t.Fatal(err)
	}
	tbl := rep.Table()
	for _, want := range []string{"Kernel", "Instances", "Dispatch Time", "Kernel Time", "mul2", "plus5", "print", "init"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
	if rep.TotalInstances() != 1+10+10+2 {
		t.Errorf("total instances = %d", rep.TotalInstances())
	}
	if rep.Kernel("nope").Instances != 0 {
		t.Error("unknown kernel should return zero row")
	}
	if (KernelStats{}).DispatchPer() != 0 || (KernelStats{}).KernelPer() != 0 {
		t.Error("zero-instance stats should not divide by zero")
	}
}

func TestSnapshotUnknownField(t *testing.T) {
	n, err := NewNode(mulSum(t), Options{MaxAge: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Snapshot("zzz", 0); err == nil {
		t.Error("unknown field should error")
	}
}

func TestTooManyFetchesRejected(t *testing.T) {
	b := core.NewBuilder("wide")
	b.Field("f", field.Int32, 1, true)
	kb := b.Kernel("k").Age("a")
	for i := 0; i < 33; i++ {
		name := fmt.Sprintf("v%d", i)
		kb.Local(name, field.Int32, 0).Fetch(name, "f", core.AgeVar(0), core.Lit(i))
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewNode(p, Options{}); err == nil {
		t.Error("33 fetches should be rejected")
	}
}

func TestKernelMaxAge(t *testing.T) {
	rep, err := Run(mulSum(t), Options{
		Workers:      2,
		MaxAge:       5,
		KernelMaxAge: map[string]int{"print": 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Kernel("print").Instances; got != 3 {
		t.Errorf("print instances = %d, want 3 (per-kernel bound at age 2)", got)
	}
	if got := rep.Kernel("mul2").Instances; got != 30 {
		t.Errorf("mul2 instances = %d, want 30 (global bound at age 5)", got)
	}
}
