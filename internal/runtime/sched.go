package runtime

import (
	"container/heap"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// SchedulerKind selects the ready-queue implementation of the low-level
// scheduler (Options.Scheduler).
type SchedulerKind uint8

const (
	// SchedStealing is the default: per-worker age-aware deques with work
	// stealing. The analyzer spreads batches across the deques round-robin;
	// each worker pops its own oldest-age batch locally and steals the
	// globally oldest batch from a peer when its deque is dry or holds only
	// work younger than the age epoch.
	SchedStealing SchedulerKind = iota
	// SchedGlobal is the reference implementation: the single mutex+condvar
	// priority queue all workers contend on. Kept selectable for A/B
	// benchmarking against the stealing scheduler.
	SchedGlobal
)

// scheduler is the dispatch half of the low-level scheduler: the analyzer
// pushes ready batches, workers pop them oldest-age-first. Pop blocks;
// TryPop does not (workers use it to flush buffered analyzer events before
// they would block).
type scheduler interface {
	Push(b *batch)
	// PushBulk enqueues many batches with amortized synchronization: one
	// epoch update and one waiter wakeup for the whole group. The sharded
	// analyzer uses it for instance-creation bursts.
	PushBulk(bs []*batch)
	// TryPop returns a batch without blocking, or false when no work is
	// currently available (which does not imply the queue is closed).
	TryPop(worker int) (*batch, bool)
	// Pop blocks until a batch is available; false once the queue is closed
	// and drained.
	Pop(worker int) (*batch, bool)
	Close()
	// Len returns the number of queued instances (not batches).
	Len() int
}

// emptyAge is the deque-min sentinel for "nothing queued".
const emptyAge = int64(math.MaxInt64)

// ageBucket is the FIFO of same-age batches inside one deque. Popping
// advances head and nils the slot so popped batches are not retained by the
// backing array for the bucket's lifetime.
type ageBucket struct {
	batches []*batch
	head    int
}

// workerDeque is one worker's age-ordered queue. The owning worker pops from
// it locally; peers steal from it when their own deques run dry. min is the
// age of the oldest queued batch (emptyAge when empty), published atomically
// so thieves can scan deques without taking every lock.
type workerDeque struct {
	mu      sync.Mutex
	buckets map[int]*ageBucket
	ages    ageHeap
	queued  int // instances
	min     atomic.Int64
	depth   *obs.Gauge // per-worker queue-depth gauge; nil-safe
}

func (d *workerDeque) push(age int, b *batch) {
	d.mu.Lock()
	bkt := d.buckets[age]
	if bkt == nil {
		bkt = &ageBucket{}
		d.buckets[age] = bkt
		heap.Push(&d.ages, age)
	}
	bkt.batches = append(bkt.batches, b)
	d.queued += len(b.insts)
	if int64(age) < d.min.Load() {
		d.min.Store(int64(age))
	}
	d.depth.Set(int64(d.queued))
	d.mu.Unlock()
}

// popOldest removes the oldest-age batch, or nil when the deque is empty
// (possible even right after min suggested otherwise — a racing consumer may
// have taken the work).
func (d *workerDeque) popOldest() *batch {
	d.mu.Lock()
	for len(d.ages) > 0 {
		age := d.ages[0]
		bkt := d.buckets[age]
		if bkt == nil || bkt.head >= len(bkt.batches) {
			heap.Pop(&d.ages)
			delete(d.buckets, age)
			continue
		}
		b := bkt.batches[bkt.head]
		bkt.batches[bkt.head] = nil
		bkt.head++
		if bkt.head >= len(bkt.batches) {
			heap.Pop(&d.ages)
			delete(d.buckets, age)
		}
		d.queued -= len(b.insts)
		d.publishMin()
		d.depth.Set(int64(d.queued))
		d.mu.Unlock()
		return b
	}
	d.min.Store(emptyAge)
	d.mu.Unlock()
	return nil
}

// publishMin refreshes the atomic min from the heap top. Caller holds mu.
func (d *workerDeque) publishMin() {
	for len(d.ages) > 0 {
		age := d.ages[0]
		if bkt := d.buckets[age]; bkt != nil && bkt.head < len(bkt.batches) {
			d.min.Store(int64(age))
			return
		}
		heap.Pop(&d.ages)
		delete(d.buckets, age)
	}
	d.min.Store(emptyAge)
}

// stealScheduler implements the work-stealing ready queue: one deque per
// worker plus an age epoch that preserves the paper's oldest-age-first
// dispatch order without a global lock on the hot path.
//
// The epoch is a lower bound on the oldest queued age. Pushes lower it
// (CAS-min after enqueueing); pops raise it when a scan over all deques
// proves every queued age is younger. A worker whose local oldest age is at
// the epoch pops locally without looking at anyone else — the common case —
// and otherwise scans the deques' published minimum ages for the globally
// oldest batch, stealing it from the peer that holds it. Because the epoch
// is advanced only by such proofs, a worker can never keep dispatching age
// N+1 work while a peer still holds age N work at or below the epoch; the
// only ordering slack is the instant between a batch being enqueued and its
// age being folded into the epoch, which is bounded by one dispatch.
type stealScheduler struct {
	deques  []*workerDeque
	epoch   atomic.Int64
	queued  atomic.Int64 // total queued instances
	rr      atomic.Uint32
	closed  atomic.Bool
	version atomic.Uint64 // bumped on every push; detects missed wakeups
	waiters atomic.Int32
	mu      sync.Mutex
	cond    *sync.Cond
	steals  *obs.Counter // nil-safe
}

// newStealScheduler creates the stealing scheduler. steals and depth may be
// nil (metrics disabled); depth, when set, holds one gauge per worker.
func newStealScheduler(workers int, steals *obs.Counter, depth []*obs.Gauge) *stealScheduler {
	if workers < 1 {
		workers = 1
	}
	s := &stealScheduler{deques: make([]*workerDeque, workers), steals: steals}
	for i := range s.deques {
		d := &workerDeque{buckets: make(map[int]*ageBucket)}
		d.min.Store(emptyAge)
		if depth != nil {
			d.depth = depth[i]
		}
		s.deques[i] = d
	}
	s.epoch.Store(emptyAge)
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *stealScheduler) Push(b *batch) {
	if s.closed.Load() {
		return
	}
	age := b.tracker.age
	d := s.deques[int(s.rr.Add(1))%len(s.deques)]
	d.push(age, b)
	s.queued.Add(int64(len(b.insts)))
	for {
		e := s.epoch.Load()
		if int64(age) >= e || s.epoch.CompareAndSwap(e, int64(age)) {
			break
		}
	}
	s.version.Add(1)
	if s.waiters.Load() > 0 {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// PushBulk enqueues a burst of batches: per-batch deque pushes (round-robin,
// like Push) but a single epoch CAS with the group's minimum age and a single
// waiter broadcast, so creation bursts do not pay per-batch wakeup cost.
func (s *stealScheduler) PushBulk(bs []*batch) {
	if len(bs) == 0 || s.closed.Load() {
		return
	}
	minAge := int64(math.MaxInt64)
	var insts int64
	for _, b := range bs {
		age := b.tracker.age
		if int64(age) < minAge {
			minAge = int64(age)
		}
		s.deques[int(s.rr.Add(1))%len(s.deques)].push(age, b)
		insts += int64(len(b.insts))
	}
	s.queued.Add(insts)
	for {
		e := s.epoch.Load()
		if minAge >= e || s.epoch.CompareAndSwap(e, minAge) {
			break
		}
	}
	s.version.Add(1)
	if s.waiters.Load() > 0 {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

func (s *stealScheduler) TryPop(worker int) (*batch, bool) {
	self := s.deques[worker]
	for {
		e := s.epoch.Load()
		// Fast path: local work at (or below) the epoch is globally oldest
		// — no peer can hold anything older than the epoch lower bound.
		if m := self.min.Load(); m != emptyAge && m <= e {
			if b := self.popOldest(); b != nil {
				s.queued.Add(-int64(len(b.insts)))
				return b, true
			}
			continue // lost a race with a thief; re-evaluate
		}
		// Slow path: locate the globally oldest deque.
		vi, oldest := -1, emptyAge
		for i, d := range s.deques {
			if m := d.min.Load(); m < oldest {
				oldest, vi = m, i
			}
		}
		if vi < 0 {
			return nil, false // everything is empty
		}
		if oldest > e {
			// Every queued age is younger than the epoch: raise it so
			// future pops take the fast path. CAS, so a concurrent push of
			// older work wins.
			s.epoch.CompareAndSwap(e, oldest)
		}
		if b := s.deques[vi].popOldest(); b != nil {
			s.queued.Add(-int64(len(b.insts)))
			if vi != worker {
				s.steals.Add(1)
			}
			return b, true
		}
		// The victim was drained under us; rescan.
	}
}

func (s *stealScheduler) Pop(worker int) (*batch, bool) {
	for {
		if b, ok := s.TryPop(worker); ok {
			return b, true
		}
		s.mu.Lock()
		v := s.version.Load()
		if b, ok := s.TryPop(worker); ok {
			s.mu.Unlock()
			return b, true
		}
		if s.closed.Load() {
			s.mu.Unlock()
			return nil, false
		}
		s.waiters.Add(1)
		for s.version.Load() == v && !s.closed.Load() {
			s.cond.Wait()
		}
		s.waiters.Add(-1)
		s.mu.Unlock()
	}
}

func (s *stealScheduler) Close() {
	s.closed.Store(true)
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *stealScheduler) Len() int { return int(s.queued.Load()) }
